file(REMOVE_RECURSE
  "libdpr_core.a"
)
