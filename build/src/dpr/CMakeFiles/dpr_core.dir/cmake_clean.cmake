file(REMOVE_RECURSE
  "CMakeFiles/dpr_core.dir/cluster_manager.cc.o"
  "CMakeFiles/dpr_core.dir/cluster_manager.cc.o.d"
  "CMakeFiles/dpr_core.dir/finder.cc.o"
  "CMakeFiles/dpr_core.dir/finder.cc.o.d"
  "CMakeFiles/dpr_core.dir/finder_service.cc.o"
  "CMakeFiles/dpr_core.dir/finder_service.cc.o.d"
  "CMakeFiles/dpr_core.dir/header.cc.o"
  "CMakeFiles/dpr_core.dir/header.cc.o.d"
  "CMakeFiles/dpr_core.dir/session.cc.o"
  "CMakeFiles/dpr_core.dir/session.cc.o.d"
  "CMakeFiles/dpr_core.dir/worker.cc.o"
  "CMakeFiles/dpr_core.dir/worker.cc.o.d"
  "libdpr_core.a"
  "libdpr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
