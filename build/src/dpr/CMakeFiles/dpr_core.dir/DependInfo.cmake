
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpr/cluster_manager.cc" "src/dpr/CMakeFiles/dpr_core.dir/cluster_manager.cc.o" "gcc" "src/dpr/CMakeFiles/dpr_core.dir/cluster_manager.cc.o.d"
  "/root/repo/src/dpr/finder.cc" "src/dpr/CMakeFiles/dpr_core.dir/finder.cc.o" "gcc" "src/dpr/CMakeFiles/dpr_core.dir/finder.cc.o.d"
  "/root/repo/src/dpr/finder_service.cc" "src/dpr/CMakeFiles/dpr_core.dir/finder_service.cc.o" "gcc" "src/dpr/CMakeFiles/dpr_core.dir/finder_service.cc.o.d"
  "/root/repo/src/dpr/header.cc" "src/dpr/CMakeFiles/dpr_core.dir/header.cc.o" "gcc" "src/dpr/CMakeFiles/dpr_core.dir/header.cc.o.d"
  "/root/repo/src/dpr/session.cc" "src/dpr/CMakeFiles/dpr_core.dir/session.cc.o" "gcc" "src/dpr/CMakeFiles/dpr_core.dir/session.cc.o.d"
  "/root/repo/src/dpr/worker.cc" "src/dpr/CMakeFiles/dpr_core.dir/worker.cc.o" "gcc" "src/dpr/CMakeFiles/dpr_core.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/dpr_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dpr_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
