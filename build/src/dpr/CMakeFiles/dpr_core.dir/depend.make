# Empty dependencies file for dpr_core.
# This may be replaced when dependencies are built.
