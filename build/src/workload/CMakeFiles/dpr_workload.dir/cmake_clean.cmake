file(REMOVE_RECURSE
  "CMakeFiles/dpr_workload.dir/ycsb.cc.o"
  "CMakeFiles/dpr_workload.dir/ycsb.cc.o.d"
  "libdpr_workload.a"
  "libdpr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
