# Empty compiler generated dependencies file for dpr_workload.
# This may be replaced when dependencies are built.
