file(REMOVE_RECURSE
  "libdpr_workload.a"
)
