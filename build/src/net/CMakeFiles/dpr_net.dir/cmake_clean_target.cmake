file(REMOVE_RECURSE
  "libdpr_net.a"
)
