file(REMOVE_RECURSE
  "CMakeFiles/dpr_net.dir/inmemory_net.cc.o"
  "CMakeFiles/dpr_net.dir/inmemory_net.cc.o.d"
  "CMakeFiles/dpr_net.dir/tcp_net.cc.o"
  "CMakeFiles/dpr_net.dir/tcp_net.cc.o.d"
  "libdpr_net.a"
  "libdpr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
