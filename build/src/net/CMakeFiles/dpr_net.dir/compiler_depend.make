# Empty compiler generated dependencies file for dpr_net.
# This may be replaced when dependencies are built.
