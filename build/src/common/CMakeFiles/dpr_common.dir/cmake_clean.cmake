file(REMOVE_RECURSE
  "CMakeFiles/dpr_common.dir/flags.cc.o"
  "CMakeFiles/dpr_common.dir/flags.cc.o.d"
  "CMakeFiles/dpr_common.dir/hash.cc.o"
  "CMakeFiles/dpr_common.dir/hash.cc.o.d"
  "CMakeFiles/dpr_common.dir/histogram.cc.o"
  "CMakeFiles/dpr_common.dir/histogram.cc.o.d"
  "CMakeFiles/dpr_common.dir/logging.cc.o"
  "CMakeFiles/dpr_common.dir/logging.cc.o.d"
  "CMakeFiles/dpr_common.dir/random.cc.o"
  "CMakeFiles/dpr_common.dir/random.cc.o.d"
  "CMakeFiles/dpr_common.dir/status.cc.o"
  "CMakeFiles/dpr_common.dir/status.cc.o.d"
  "libdpr_common.a"
  "libdpr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
