# Empty compiler generated dependencies file for dpr_common.
# This may be replaced when dependencies are built.
