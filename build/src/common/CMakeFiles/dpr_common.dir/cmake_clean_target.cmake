file(REMOVE_RECURSE
  "libdpr_common.a"
)
