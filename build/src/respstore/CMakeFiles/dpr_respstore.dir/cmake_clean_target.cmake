file(REMOVE_RECURSE
  "libdpr_respstore.a"
)
