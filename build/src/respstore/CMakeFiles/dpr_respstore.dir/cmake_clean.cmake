file(REMOVE_RECURSE
  "CMakeFiles/dpr_respstore.dir/resp_store.cc.o"
  "CMakeFiles/dpr_respstore.dir/resp_store.cc.o.d"
  "libdpr_respstore.a"
  "libdpr_respstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_respstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
