
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/respstore/resp_store.cc" "src/respstore/CMakeFiles/dpr_respstore.dir/resp_store.cc.o" "gcc" "src/respstore/CMakeFiles/dpr_respstore.dir/resp_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dpr_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
