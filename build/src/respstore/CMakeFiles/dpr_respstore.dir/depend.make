# Empty dependencies file for dpr_respstore.
# This may be replaced when dependencies are built.
