file(REMOVE_RECURSE
  "libdpr_storage.a"
)
