# Empty compiler generated dependencies file for dpr_storage.
# This may be replaced when dependencies are built.
