file(REMOVE_RECURSE
  "CMakeFiles/dpr_storage.dir/checkpoint_file.cc.o"
  "CMakeFiles/dpr_storage.dir/checkpoint_file.cc.o.d"
  "CMakeFiles/dpr_storage.dir/device.cc.o"
  "CMakeFiles/dpr_storage.dir/device.cc.o.d"
  "CMakeFiles/dpr_storage.dir/wal.cc.o"
  "CMakeFiles/dpr_storage.dir/wal.cc.o.d"
  "libdpr_storage.a"
  "libdpr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
