file(REMOVE_RECURSE
  "CMakeFiles/dpr_dfaster.dir/client.cc.o"
  "CMakeFiles/dpr_dfaster.dir/client.cc.o.d"
  "CMakeFiles/dpr_dfaster.dir/protocol.cc.o"
  "CMakeFiles/dpr_dfaster.dir/protocol.cc.o.d"
  "CMakeFiles/dpr_dfaster.dir/worker.cc.o"
  "CMakeFiles/dpr_dfaster.dir/worker.cc.o.d"
  "libdpr_dfaster.a"
  "libdpr_dfaster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_dfaster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
