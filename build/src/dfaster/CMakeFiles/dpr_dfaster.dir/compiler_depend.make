# Empty compiler generated dependencies file for dpr_dfaster.
# This may be replaced when dependencies are built.
