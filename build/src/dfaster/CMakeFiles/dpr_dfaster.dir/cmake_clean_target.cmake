file(REMOVE_RECURSE
  "libdpr_dfaster.a"
)
