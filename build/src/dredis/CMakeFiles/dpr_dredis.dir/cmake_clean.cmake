file(REMOVE_RECURSE
  "CMakeFiles/dpr_dredis.dir/client.cc.o"
  "CMakeFiles/dpr_dredis.dir/client.cc.o.d"
  "CMakeFiles/dpr_dredis.dir/dredis.cc.o"
  "CMakeFiles/dpr_dredis.dir/dredis.cc.o.d"
  "libdpr_dredis.a"
  "libdpr_dredis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_dredis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
