file(REMOVE_RECURSE
  "libdpr_dredis.a"
)
