# Empty dependencies file for dpr_dredis.
# This may be replaced when dependencies are built.
