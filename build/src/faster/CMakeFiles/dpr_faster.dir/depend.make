# Empty dependencies file for dpr_faster.
# This may be replaced when dependencies are built.
