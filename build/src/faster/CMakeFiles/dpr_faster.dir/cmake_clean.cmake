file(REMOVE_RECURSE
  "CMakeFiles/dpr_faster.dir/faster_store.cc.o"
  "CMakeFiles/dpr_faster.dir/faster_store.cc.o.d"
  "CMakeFiles/dpr_faster.dir/hash_index.cc.o"
  "CMakeFiles/dpr_faster.dir/hash_index.cc.o.d"
  "CMakeFiles/dpr_faster.dir/log_allocator.cc.o"
  "CMakeFiles/dpr_faster.dir/log_allocator.cc.o.d"
  "libdpr_faster.a"
  "libdpr_faster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_faster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
