file(REMOVE_RECURSE
  "libdpr_faster.a"
)
