# Empty compiler generated dependencies file for dpr_epoch.
# This may be replaced when dependencies are built.
