file(REMOVE_RECURSE
  "CMakeFiles/dpr_epoch.dir/light_epoch.cc.o"
  "CMakeFiles/dpr_epoch.dir/light_epoch.cc.o.d"
  "libdpr_epoch.a"
  "libdpr_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
