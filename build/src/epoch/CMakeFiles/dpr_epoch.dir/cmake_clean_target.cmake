file(REMOVE_RECURSE
  "libdpr_epoch.a"
)
