file(REMOVE_RECURSE
  "CMakeFiles/dpr_baseline.dir/commitlog_store.cc.o"
  "CMakeFiles/dpr_baseline.dir/commitlog_store.cc.o.d"
  "libdpr_baseline.a"
  "libdpr_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
