file(REMOVE_RECURSE
  "libdpr_baseline.a"
)
