# Empty compiler generated dependencies file for dpr_baseline.
# This may be replaced when dependencies are built.
