# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("epoch")
subdirs("storage")
subdirs("metadata")
subdirs("dpr")
subdirs("faster")
subdirs("net")
subdirs("respstore")
subdirs("baseline")
subdirs("dfaster")
subdirs("dredis")
subdirs("workload")
subdirs("harness")
