# Empty dependencies file for dpr_metadata.
# This may be replaced when dependencies are built.
