file(REMOVE_RECURSE
  "CMakeFiles/dpr_metadata.dir/metadata_store.cc.o"
  "CMakeFiles/dpr_metadata.dir/metadata_store.cc.o.d"
  "libdpr_metadata.a"
  "libdpr_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
