file(REMOVE_RECURSE
  "libdpr_metadata.a"
)
