# Empty compiler generated dependencies file for dpr_harness.
# This may be replaced when dependencies are built.
