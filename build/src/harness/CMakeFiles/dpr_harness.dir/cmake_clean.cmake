file(REMOVE_RECURSE
  "CMakeFiles/dpr_harness.dir/cluster.cc.o"
  "CMakeFiles/dpr_harness.dir/cluster.cc.o.d"
  "CMakeFiles/dpr_harness.dir/stats.cc.o"
  "CMakeFiles/dpr_harness.dir/stats.cc.o.d"
  "libdpr_harness.a"
  "libdpr_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
