file(REMOVE_RECURSE
  "libdpr_harness.a"
)
