# Empty dependencies file for bench_fig15_colocation.
# This may be replaced when dependencies are built.
