file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_colocation.dir/bench_fig15_colocation.cc.o"
  "CMakeFiles/bench_fig15_colocation.dir/bench_fig15_colocation.cc.o.d"
  "bench_fig15_colocation"
  "bench_fig15_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
