file(REMOVE_RECURSE
  "libdpr_bench_util.a"
)
