file(REMOVE_RECURSE
  "CMakeFiles/dpr_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/dpr_bench_util.dir/bench_util.cc.o.d"
  "libdpr_bench_util.a"
  "libdpr_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
