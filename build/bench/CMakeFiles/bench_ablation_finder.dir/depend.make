# Empty dependencies file for bench_ablation_finder.
# This may be replaced when dependencies are built.
