file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_finder.dir/bench_ablation_finder.cc.o"
  "CMakeFiles/bench_ablation_finder.dir/bench_ablation_finder.cc.o.d"
  "bench_ablation_finder"
  "bench_ablation_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
