# Empty compiler generated dependencies file for bench_fig17_dredis.
# This may be replaced when dependencies are built.
