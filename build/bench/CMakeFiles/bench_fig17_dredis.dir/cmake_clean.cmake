file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_dredis.dir/bench_fig17_dredis.cc.o"
  "CMakeFiles/bench_fig17_dredis.dir/bench_fig17_dredis.cc.o.d"
  "bench_fig17_dredis"
  "bench_fig17_dredis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_dredis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
