# Empty compiler generated dependencies file for bench_ablation_vmax.
# This may be replaced when dependencies are built.
