file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vmax.dir/bench_ablation_vmax.cc.o"
  "CMakeFiles/bench_ablation_vmax.dir/bench_ablation_vmax.cc.o.d"
  "bench_ablation_vmax"
  "bench_ablation_vmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
