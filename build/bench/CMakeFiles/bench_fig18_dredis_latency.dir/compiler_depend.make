# Empty compiler generated dependencies file for bench_fig18_dredis_latency.
# This may be replaced when dependencies are built.
