# Empty dependencies file for bench_fig19_recoverability.
# This may be replaced when dependencies are built.
