file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_recoverability.dir/bench_fig19_recoverability.cc.o"
  "CMakeFiles/bench_fig19_recoverability.dir/bench_fig19_recoverability.cc.o.d"
  "bench_fig19_recoverability"
  "bench_fig19_recoverability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_recoverability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
