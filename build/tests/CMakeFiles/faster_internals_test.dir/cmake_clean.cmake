file(REMOVE_RECURSE
  "CMakeFiles/faster_internals_test.dir/faster_internals_test.cc.o"
  "CMakeFiles/faster_internals_test.dir/faster_internals_test.cc.o.d"
  "faster_internals_test"
  "faster_internals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faster_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
