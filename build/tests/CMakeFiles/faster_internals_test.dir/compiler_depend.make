# Empty compiler generated dependencies file for faster_internals_test.
# This may be replaced when dependencies are built.
