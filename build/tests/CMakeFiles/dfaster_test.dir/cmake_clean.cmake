file(REMOVE_RECURSE
  "CMakeFiles/dfaster_test.dir/dfaster_test.cc.o"
  "CMakeFiles/dfaster_test.dir/dfaster_test.cc.o.d"
  "dfaster_test"
  "dfaster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfaster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
