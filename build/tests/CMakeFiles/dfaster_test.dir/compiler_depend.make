# Empty compiler generated dependencies file for dfaster_test.
# This may be replaced when dependencies are built.
