
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/codec_fuzz_test.cc" "tests/CMakeFiles/codec_fuzz_test.dir/codec_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/codec_fuzz_test.dir/codec_fuzz_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfaster/CMakeFiles/dpr_dfaster.dir/DependInfo.cmake"
  "/root/repo/build/src/respstore/CMakeFiles/dpr_respstore.dir/DependInfo.cmake"
  "/root/repo/build/src/faster/CMakeFiles/dpr_faster.dir/DependInfo.cmake"
  "/root/repo/build/src/dpr/CMakeFiles/dpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/dpr_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/epoch/CMakeFiles/dpr_epoch.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dpr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dpr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
