file(REMOVE_RECURSE
  "CMakeFiles/finder_service_test.dir/finder_service_test.cc.o"
  "CMakeFiles/finder_service_test.dir/finder_service_test.cc.o.d"
  "finder_service_test"
  "finder_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finder_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
