# Empty compiler generated dependencies file for finder_service_test.
# This may be replaced when dependencies are built.
