# Empty dependencies file for dpr_property_test.
# This may be replaced when dependencies are built.
