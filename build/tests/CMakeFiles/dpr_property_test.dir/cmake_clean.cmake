file(REMOVE_RECURSE
  "CMakeFiles/dpr_property_test.dir/dpr_property_test.cc.o"
  "CMakeFiles/dpr_property_test.dir/dpr_property_test.cc.o.d"
  "dpr_property_test"
  "dpr_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
