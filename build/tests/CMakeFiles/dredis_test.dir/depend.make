# Empty dependencies file for dredis_test.
# This may be replaced when dependencies are built.
