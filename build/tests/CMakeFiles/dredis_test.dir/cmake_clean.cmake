file(REMOVE_RECURSE
  "CMakeFiles/dredis_test.dir/dredis_test.cc.o"
  "CMakeFiles/dredis_test.dir/dredis_test.cc.o.d"
  "dredis_test"
  "dredis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dredis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
