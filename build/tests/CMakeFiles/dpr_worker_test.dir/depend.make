# Empty dependencies file for dpr_worker_test.
# This may be replaced when dependencies are built.
