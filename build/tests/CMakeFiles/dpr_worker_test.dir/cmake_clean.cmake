file(REMOVE_RECURSE
  "CMakeFiles/dpr_worker_test.dir/dpr_worker_test.cc.o"
  "CMakeFiles/dpr_worker_test.dir/dpr_worker_test.cc.o.d"
  "dpr_worker_test"
  "dpr_worker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_worker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
