# Empty compiler generated dependencies file for faster_model_test.
# This may be replaced when dependencies are built.
