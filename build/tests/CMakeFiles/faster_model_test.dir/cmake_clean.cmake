file(REMOVE_RECURSE
  "CMakeFiles/faster_model_test.dir/faster_model_test.cc.o"
  "CMakeFiles/faster_model_test.dir/faster_model_test.cc.o.d"
  "faster_model_test"
  "faster_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faster_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
