file(REMOVE_RECURSE
  "CMakeFiles/finder_test.dir/finder_test.cc.o"
  "CMakeFiles/finder_test.dir/finder_test.cc.o.d"
  "finder_test"
  "finder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
