# Empty compiler generated dependencies file for respstore_test.
# This may be replaced when dependencies are built.
