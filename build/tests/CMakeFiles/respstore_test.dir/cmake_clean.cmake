file(REMOVE_RECURSE
  "CMakeFiles/respstore_test.dir/respstore_test.cc.o"
  "CMakeFiles/respstore_test.dir/respstore_test.cc.o.d"
  "respstore_test"
  "respstore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/respstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
