# Empty dependencies file for cluster_manager_test.
# This may be replaced when dependencies are built.
