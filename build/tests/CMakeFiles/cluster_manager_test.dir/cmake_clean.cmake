file(REMOVE_RECURSE
  "CMakeFiles/cluster_manager_test.dir/cluster_manager_test.cc.o"
  "CMakeFiles/cluster_manager_test.dir/cluster_manager_test.cc.o.d"
  "cluster_manager_test"
  "cluster_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
