# Empty dependencies file for dredis_wrap.
# This may be replaced when dependencies are built.
