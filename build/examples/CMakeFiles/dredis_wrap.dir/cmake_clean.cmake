file(REMOVE_RECURSE
  "CMakeFiles/dredis_wrap.dir/dredis_wrap.cpp.o"
  "CMakeFiles/dredis_wrap.dir/dredis_wrap.cpp.o.d"
  "dredis_wrap"
  "dredis_wrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dredis_wrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
