# Empty dependencies file for multiprocess.
# This may be replaced when dependencies are built.
