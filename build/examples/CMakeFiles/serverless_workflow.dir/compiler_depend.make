# Empty compiler generated dependencies file for serverless_workflow.
# This may be replaced when dependencies are built.
