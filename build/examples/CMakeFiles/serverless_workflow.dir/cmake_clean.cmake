file(REMOVE_RECURSE
  "CMakeFiles/serverless_workflow.dir/serverless_workflow.cpp.o"
  "CMakeFiles/serverless_workflow.dir/serverless_workflow.cpp.o.d"
  "serverless_workflow"
  "serverless_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
