// Ownership validation and transfer (paper §5.3): virtual partitions,
// worker-local validation, checkpoint-boundary transfers, key migration,
// and transparent client re-routing.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include "common/sync.h"

#include "common/clock.h"
#include "harness/cluster.h"

namespace dpr {
namespace {

ClusterOptions Opts() {
  ClusterOptions options;
  options.num_workers = 2;
  options.backend = StorageBackend::kLocal;
  options.checkpoint_interval_us = 20000;
  options.finder_interval_us = 5000;
  return options;
}

uint32_t PartitionOnWorker(WorkerId worker, uint32_t num_workers) {
  for (uint32_t vp = 0; vp < YcsbWorkload::kNumPartitions; ++vp) {
    if (YcsbWorkload::DefaultOwner(vp, num_workers) == worker) return vp;
  }
  ADD_FAILURE() << "no partition on worker " << worker;
  return 0;
}

uint64_t KeyInPartition(uint32_t partition) {
  uint64_t key = 0;
  while (YcsbWorkload::PartitionOf(key) != partition) key++;
  return key;
}

TEST(OwnershipTest, WorkersValidateAgainstLocalView) {
  DFasterCluster cluster(Opts());
  ASSERT_TRUE(cluster.Start().ok());
  const uint32_t vp = PartitionOnWorker(0, 2);
  const uint64_t key = KeyInPartition(vp);
  EXPECT_TRUE(cluster.worker(0)->OwnsPartition(vp));
  EXPECT_FALSE(cluster.worker(1)->OwnsPartition(vp));

  // An op sent to the wrong worker is rejected per-op with kNotOwner.
  KvBatchRequest req;
  req.ops.push_back(KvOp{KvOp::Type::kUpsert, key, 1});
  KvBatchResponse resp;
  cluster.worker(1)->ExecuteBatch(req, &resp);
  ASSERT_EQ(resp.results.size(), 1u);
  EXPECT_EQ(resp.results[0].result, KvResult::kNotOwner);
}

TEST(OwnershipTest, TransferMigratesDataAndOwnership) {
  DFasterCluster cluster(Opts());
  ASSERT_TRUE(cluster.Start().ok());
  const uint32_t vp = PartitionOnWorker(0, 2);
  auto client = cluster.NewClient(4, 32);
  auto session = client->NewSession(1);
  // Write several keys of the partition.
  std::map<uint64_t, uint64_t> expected;
  uint64_t key = 0;
  while (expected.size() < 10) {
    if (YcsbWorkload::PartitionOf(key) == vp) {
      session->Upsert(key, key + 7);
      expected[key] = key + 7;
    }
    ++key;
  }
  ASSERT_TRUE(session->WaitForAll().ok());

  ASSERT_TRUE(cluster.TransferPartition(vp, 1).ok());
  EXPECT_EQ(cluster.OwnerOf(vp), 1u);
  EXPECT_FALSE(cluster.worker(0)->OwnsPartition(vp));
  EXPECT_TRUE(cluster.worker(1)->OwnsPartition(vp));

  // The data followed the partition; the client re-routes transparently.
  std::map<uint64_t, uint64_t> observed;
  Mutex mu;
  for (const auto& [k, v] : expected) {
    (void)v;
    session->Read(k, [&, k = k](KvResult r, uint64_t value) {
      MutexLock guard(mu);
      if (r == KvResult::kOk) observed[k] = value;
    });
  }
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_EQ(observed, expected);
}

TEST(OwnershipTest, TransferBackAndForth) {
  DFasterCluster cluster(Opts());
  ASSERT_TRUE(cluster.Start().ok());
  const uint32_t vp = PartitionOnWorker(0, 2);
  const uint64_t key = KeyInPartition(vp);
  auto client = cluster.NewClient(1, 8);
  auto session = client->NewSession(1);
  session->Upsert(key, 1);
  ASSERT_TRUE(session->WaitForAll().ok());
  ASSERT_TRUE(cluster.TransferPartition(vp, 1).ok());
  session->Upsert(key, 2);
  ASSERT_TRUE(session->WaitForAll().ok());
  ASSERT_TRUE(cluster.TransferPartition(vp, 0).ok());
  std::atomic<uint64_t> value{0};
  session->Read(key, [&](KvResult r, uint64_t v) {
    if (r == KvResult::kOk) value.store(v);
  });
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_EQ(value.load(), 2u);  // write at interim owner survived the moves
}

TEST(OwnershipTest, WritesDuringTransferAreNotLost) {
  DFasterCluster cluster(Opts());
  ASSERT_TRUE(cluster.Start().ok());
  const uint32_t vp = PartitionOnWorker(0, 2);
  const uint64_t key = KeyInPartition(vp);
  auto client = cluster.NewClient(1, 8);
  auto session = client->NewSession(1);
  session->Upsert(key, 1);
  ASSERT_TRUE(session->WaitForAll().ok());

  // Writer keeps updating while the transfer happens; every op must land
  // (possibly after re-route retries) and the last value must win.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> last_written{1};
  std::thread writer([&] {
    auto wclient = cluster.NewClient(1, 4);
    auto wsession = wclient->NewSession(2);
    for (uint64_t i = 2; !stop.load(); ++i) {
      std::atomic<bool> ok{false};
      wsession->Upsert(key, i, [&](KvResult r, uint64_t) {
        if (r == KvResult::kOk) ok.store(true);
      });
      (void)wsession->WaitForAll();
      if (ok.load()) last_written.store(i);
      SleepMicros(500);
    }
  });
  SleepMicros(5000);
  ASSERT_TRUE(cluster.TransferPartition(vp, 1).ok());
  SleepMicros(5000);
  stop.store(true);
  writer.join();

  std::atomic<uint64_t> value{0};
  session->Read(key, [&](KvResult r, uint64_t v) {
    if (r == KvResult::kOk) value.store(v);
  });
  ASSERT_TRUE(session->WaitForAll().ok());
  // The final read must see a value at least as new as the last
  // acknowledged write that happened strictly after the transfer.
  EXPECT_GE(value.load(), last_written.load());
}

TEST(OwnershipTest, CommitsContinueAfterTransfer) {
  DFasterCluster cluster(Opts());
  ASSERT_TRUE(cluster.Start().ok());
  const uint32_t vp = PartitionOnWorker(0, 2);
  ASSERT_TRUE(cluster.TransferPartition(vp, 1).ok());
  auto client = cluster.NewClient(4, 32);
  auto session = client->NewSession(1);
  const uint64_t key = KeyInPartition(vp);
  for (int i = 0; i < 20; ++i) session->Upsert(key, i);
  EXPECT_TRUE(session->WaitForCommit(20000).ok());
}

}  // namespace
}  // namespace dpr

namespace dpr {
namespace {

TEST(MembershipTest, ScaleOutThenDrainAndRemove) {
  DFasterCluster cluster(Opts());
  ASSERT_TRUE(cluster.Start().ok());

  // Seed some data across the original two workers.
  {
    auto client = cluster.NewClient(8, 64);
    auto session = client->NewSession(1);
    for (uint64_t k = 0; k < 200; ++k) session->Upsert(k, k + 1);
    ASSERT_TRUE(session->WaitForAll().ok());
  }

  // Scale out: add an empty worker and move every partition of worker 0
  // onto it.
  WorkerId new_id = kInvalidWorker;
  ASSERT_TRUE(cluster.AddWorker(&new_id).ok());
  EXPECT_EQ(new_id, 2u);
  EXPECT_EQ(cluster.worker(new_id)->OwnedPartitionCount(), 0u);
  for (uint32_t vp = 0; vp < YcsbWorkload::kNumPartitions; ++vp) {
    if (cluster.OwnerOf(vp) == 0) {
      ASSERT_TRUE(cluster.TransferPartition(vp, new_id).ok());
    }
  }
  EXPECT_EQ(cluster.worker(0)->OwnedPartitionCount(), 0u);
  EXPECT_GT(cluster.worker(new_id)->OwnedPartitionCount(), 0u);

  // A fresh client reads everything back through the new topology and gets
  // commits that include the new worker.
  auto client = cluster.NewClient(8, 64);
  auto session = client->NewSession(2);
  std::atomic<uint64_t> sum{0};
  for (uint64_t k = 0; k < 200; ++k) {
    session->Read(k, [&](KvResult r, uint64_t v) {
      if (r == KvResult::kOk) sum.fetch_add(v);
    });
  }
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_EQ(sum.load(), 200u * 201 / 2);
  for (uint64_t k = 0; k < 50; ++k) session->Upsert(k, k);
  ASSERT_TRUE(session->WaitForCommit(20000).ok());

  // The drained worker is now empty and can leave the cluster.
  ASSERT_TRUE(cluster.RemoveWorker(0).ok());
  // DPR progress continues without it.
  for (uint64_t k = 0; k < 50; ++k) session->Upsert(k, k * 2);
  ASSERT_TRUE(session->WaitForCommit(20000).ok());
}

TEST(MembershipTest, RemoveRefusedWhileOwningPartitions) {
  DFasterCluster cluster(Opts());
  ASSERT_TRUE(cluster.Start().ok());
  Status s = cluster.RemoveWorker(0);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace dpr
