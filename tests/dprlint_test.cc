// Unit tests for tools/dprlint/: the C++ lexer that feeds every check, and
// each check in the registry against positive/negative snippets. All
// hermetic — AnalyzeSources takes (path, content) pairs, so the path-scoped
// checks (net/, storage/, ckpt/) are exercised with synthetic paths.
#include "dprlint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lexer.h"

namespace dprlint {
namespace {

std::vector<std::string> Checks(const std::vector<Finding>& fs) {
  std::vector<std::string> ids;
  for (const Finding& f : fs) ids.push_back(f.check);
  return ids;
}

bool Has(const std::vector<Finding>& fs, const std::string& id) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.check == id; });
}

std::vector<Finding> Lint(const std::string& path, const std::string& src) {
  return AnalyzeSources({{path, src}});
}

// ------------------------------------------------------------------ lexer

TEST(Lexer, SeparatesCommentsFromCode) {
  LexedSource lx = Lex("int a; // trailing\n/* block */ int b;\n");
  ASSERT_GE(lx.line_count, 2);
  EXPECT_NE(lx.comments_by_line[1].find("trailing"), std::string::npos);
  EXPECT_NE(lx.comments_by_line[2].find("block"), std::string::npos);
  for (const Token& t : lx.tokens) {
    EXPECT_NE(t.text, "trailing");
    EXPECT_NE(t.text, "block");
  }
}

TEST(Lexer, BlockCommentsDoNotNest) {
  // Per the standard, the first */ terminates: `y` is code.
  LexedSource lx = Lex("/* outer /* inner */ int y; */\n");
  bool saw_y = false;
  for (const Token& t : lx.tokens)
    if (t.kind == Token::Kind::kIdent && t.text == "y") saw_y = true;
  EXPECT_TRUE(saw_y);
}

TEST(Lexer, RawStringsSwallowEverything) {
  LexedSource lx =
      Lex("const char* s = R\"x(std::mutex */ \" // not code)x\";\n");
  int strings = 0;
  for (const Token& t : lx.tokens) {
    if (t.kind == Token::Kind::kString) ++strings;
    EXPECT_NE(t.text, "mutex");
  }
  EXPECT_EQ(strings, 1);
  EXPECT_TRUE(lx.comments_by_line[1].empty());
}

TEST(Lexer, StringEmbeddedKeywordsAreNotCode) {
  LexedSource lx = Lex("const char* s = \"std::mutex m; \\\" still\";\n");
  for (const Token& t : lx.tokens) EXPECT_NE(t.text, "mutex");
}

TEST(Lexer, LineContinuationExtendsLineComments) {
  // The backslash-newline splices: `hidden` is comment text, not code.
  LexedSource lx = Lex("// spliced \\\nhidden\nint z;\n");
  for (const Token& t : lx.tokens) EXPECT_NE(t.text, "hidden");
  EXPECT_NE(lx.comments_by_line[2].find("hidden"), std::string::npos);
}

TEST(Lexer, PreprocessorLinesAreNotCodeTokens) {
  LexedSource lx = Lex("#define SLEEP(x) sleep_for(x)\nint w;\n");
  for (const Token& t : lx.tokens) {
    if (t.kind != Token::Kind::kPreproc) {
      EXPECT_NE(t.text, "sleep_for");
    }
  }
}

TEST(Lexer, DigitSeparatorsStayOneToken) {
  LexedSource lx = Lex("auto n = 1'000'000;\n");
  bool found = false;
  for (const Token& t : lx.tokens)
    if (t.kind == Token::Kind::kNumber && t.text == "1'000'000") found = true;
  EXPECT_TRUE(found);
}

// ------------------------------------------------------------ check: sync

TEST(SyncPrim, FlagsNakedPrimitive) {
  auto fs = Lint("a/b.cc", "#include <mutex>\nstd::mutex mu;\n");
  EXPECT_EQ(Checks(fs), std::vector<std::string>{"sync-prim"});
}

TEST(SyncPrim, ExemptsTheWrapperHeader) {
  EXPECT_TRUE(Lint("src/common/sync.h", "std::mutex mu;\n").empty());
}

TEST(SyncPrim, IgnoresCommentAndString) {
  EXPECT_TRUE(Lint("a/b.cc",
                  "// std::mutex in prose\n"
                  "const char* s = \"std::condition_variable\";\n")
                  .empty());
}

// ------------------------------------------------- checks: raw I/O + shim

TEST(RawCalls, NetWriteOnlyUnderNetDir) {
  const std::string src = "void F(int fd) { send(fd, \"x\", 1, 0); }\n";
  EXPECT_TRUE(Has(Lint("x/net/conn.cc", src), "net-raw-write"));
  EXPECT_FALSE(Has(Lint("x/other/conn.cc", src), "net-raw-write"));
}

TEST(RawCalls, MemberSpellingIsNotTheSyscall) {
  EXPECT_TRUE(
      Lint("x/net/conn.cc", "void F(S* s) { s->write(1); s.send(2); }\n")
          .empty());
}

TEST(RawCalls, SendmsgAndRingEnterCountAsNetWrites) {
  EXPECT_TRUE(Has(Lint("x/net/conn.cc",
                       "void F(int fd, msghdr* m) { sendmsg(fd, m, 0); }\n"),
                  "net-raw-write"));
  EXPECT_TRUE(Has(Lint("x/net/ring.cc",
                       "void F(int fd) { io_uring_enter(fd, 1, 0, 0); }\n"),
                  "net-raw-write"));
  // The UringRing helper's member spelling stays sanctioned.
  EXPECT_TRUE(Lint("x/net/ring.cc",
                   "void F(R* r) { r->io_uring_enter(1); }\n")
                  .empty());
}

TEST(RawCalls, StorageIoOutsideStorageDir) {
  const std::string src = "void F(int fd) { fsync(fd); }\n";
  EXPECT_TRUE(Has(Lint("src/faster/store.cc", src), "storage-raw-io"));
  EXPECT_TRUE(Lint("src/storage/device.cc", src).empty());
}

TEST(DeviceShim, FlagsRetiredMemberCalls) {
  auto fs = Lint("a.cc", "void F(D* d) { d->WriteAt(0, \"x\", 1); }\n");
  EXPECT_EQ(Checks(fs), std::vector<std::string>{"device-shim"});
}

// ------------------------------------------------- check: ckpt-interval

TEST(CkptInterval, FlagsFixedSleepOnlyInCheckpointDrivingFiles) {
  const std::string driving =
      "void Loop(S* s, unsigned long checkpoint_interval_us) {\n"
      "  SleepMicros(checkpoint_interval_us);\n"
      "  s->TryCommit(0);\n"
      "}\n";
  EXPECT_TRUE(Has(Lint("src/x/loop.cc", driving), "ckpt-interval"));
  // Same sleep, no checkpoint call in the file: not a rogue cadence loop.
  const std::string passive =
      "void Pace(unsigned long checkpoint_interval_us) {\n"
      "  SleepMicros(checkpoint_interval_us);\n"
      "}\n";
  EXPECT_TRUE(Lint("src/x/pace.cc", passive).empty());
  // The controller plane itself is exempt.
  EXPECT_TRUE(Lint("src/ckpt/cadence.cc", driving).empty());
}

TEST(CkptInterval, StatementScopedAcrossLines) {
  // Sleep call and interval expression on different lines of one statement
  // — the old same-line grep missed this spelling.
  const std::string src =
      "void Loop(S* s, Opts o) {\n"
      "  SleepMicros(\n"
      "      o.checkpoint_interval_us);\n"
      "  s->PerformCheckpoint(1);\n"
      "}\n";
  EXPECT_TRUE(Has(Lint("src/x/loop.cc", src), "ckpt-interval"));
}

// ------------------------------------------------- check: lock-blocking

namespace {
const char kLockPrelude[] =
    "struct Mutex {};\n"
    "struct MutexLock { explicit MutexLock(Mutex& m); };\n"
    "struct SyncIo { static int Write(int); static int Read(int); };\n"
    "void SleepMicros(unsigned long);\n"
    "Mutex mu_;\n";
}  // namespace

TEST(LockBlocking, FlagsSyncIoAndSleepUnderGuard) {
  auto fs = Lint("a.cc", std::string(kLockPrelude) +
                            "void F() {\n"
                            "  MutexLock g(mu_);\n"
                            "  SyncIo::Write(1);\n"
                            "  SleepMicros(10);\n"
                            "}\n");
  EXPECT_EQ(Checks(fs),
            (std::vector<std::string>{"lock-blocking", "lock-blocking"}));
}

TEST(LockBlocking, GuardScopeEndsAtBrace) {
  auto fs = Lint("a.cc", std::string(kLockPrelude) +
                            "void F() {\n"
                            "  { MutexLock g(mu_); }\n"
                            "  SyncIo::Write(1);\n"
                            "}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LockBlocking, LambdaBodyDoesNotInheritGuards) {
  // The lambda runs later, off-lock: its SyncIo call is not "under" g.
  auto fs = Lint("a.cc", std::string(kLockPrelude) +
                            "void Defer(int);\n"
                            "void F() {\n"
                            "  MutexLock g(mu_);\n"
                            "  auto fn = [] { SyncIo::Write(1); };\n"
                            "}\n");
  EXPECT_TRUE(fs.empty());
}

// ------------------------------------------------- check: status-discard

TEST(StatusDiscard, FlagsDroppedReturnAndAcceptsVoidCast) {
  auto fs = Lint("a.cc",
                "struct Status {};\n"
                "Status DoWork();\n"
                "void F() {\n"
                "  DoWork();\n"
                "  (void)DoWork();\n"
                "}\n");
  EXPECT_EQ(Checks(fs), std::vector<std::string>{"status-discard"});
  EXPECT_EQ(fs[0].line, 4);
}

TEST(StatusDiscard, HarvestsQualifiedAndMemberSpellings) {
  auto fs = Lint("a.cc",
                "struct Status {};\n"
                "struct Dev { Status Sync(); };\n"
                "void F(Dev* d) { d->Sync(); }\n");
  EXPECT_TRUE(Has(fs, "status-discard"));
}

TEST(StatusDiscard, AmbiguousNamesAreNotFlagged) {
  // `Poll` is also declared returning int elsewhere; bare-name evidence is
  // too weak, so the discard is allowed to pass.
  auto fs = AnalyzeSources(
      {{"a.h", "struct Status {};\nStatus Poll();\n"},
       {"b.h", "int Poll();\n"},
       {"c.cc", "void F() { Poll(); }\n"}});
  EXPECT_TRUE(fs.empty());
}

TEST(StatusDiscard, UsedReturnIsFine) {
  EXPECT_TRUE(Lint("a.cc",
                  "struct Status { bool ok(); };\n"
                  "Status DoWork();\n"
                  "bool F() { return DoWork().ok(); }\n"
                  "void G() { Status s = DoWork(); (void)s; }\n")
                  .empty());
}

// ------------------------------------------------ checks: atomic family

TEST(AtomicComment, RequiresInvariantCommentOnFields) {
  auto fs = Lint("src/x/s.h",
                "#include <atomic>\n"
                "struct S { std::atomic<int> hot_{0}; };\n");
  EXPECT_EQ(Checks(fs), std::vector<std::string>{"atomic-comment"});
}

TEST(AtomicComment, GroupCommentCoversContiguousRun) {
  EXPECT_TRUE(Lint("src/x/s.h",
                  "#include <atomic>\n"
                  "struct S {\n"
                  "  // relaxed: independent monotonic stat counters.\n"
                  "  std::atomic<int> a_{0};\n"
                  "  std::atomic<int> b_{0};\n"
                  "};\n")
                  .empty());
}

TEST(AtomicComment, SkipsTestAndBenchTrees) {
  const std::string src =
      "#include <atomic>\nstruct S { std::atomic<int> hot_{0}; };\n";
  EXPECT_TRUE(Lint("tests/s_test.cc", src).empty());
  EXPECT_TRUE(Lint("bench/s_bench.cc", src).empty());
}

TEST(AtomicRelaxed, AnnotatedDeclJustifiesUses) {
  // Uses of a field whose declaration documents the ordering are fine;
  // the same op on an undocumented cell is not.
  const std::string good =
      "#include <atomic>\n"
      "struct S {\n"
      "  // relaxed: stat counter, only atomicity matters.\n"
      "  std::atomic<int> n_{0};\n"
      "  int Get() { return n_.load(std::memory_order_relaxed); }\n"
      "};\n";
  EXPECT_TRUE(Lint("src/x/s.h", good).empty());
  const std::string bad =
      "#include <atomic>\n"
      "std::atomic<int>* Cell();\n"
      "int Get() { return Cell()->load(std::memory_order_relaxed); }\n";
  EXPECT_EQ(Checks(Lint("src/x/s.cc", bad)),
            std::vector<std::string>{"atomic-relaxed"});
}

TEST(AtomicRelaxed, AdjacentCommentJustifies) {
  EXPECT_TRUE(Lint("src/x/s.cc",
                  "#include <atomic>\n"
                  "std::atomic<int>* Cell();\n"
                  "int Get() {\n"
                  "  // relaxed: advisory read; the CAS below re-checks.\n"
                  "  return Cell()->load(std::memory_order_relaxed);\n"
                  "}\n")
                  .empty());
}

// ------------------------------------------------- check: callback-lock

TEST(CallbackLock, FlagsStoredCallbackInvokedUnderGuard) {
  auto fs = Lint("a.cc",
                "#include <functional>\n"
                "struct Mutex {};\n"
                "struct MutexLock { explicit MutexLock(Mutex& m); };\n"
                "struct S {\n"
                "  Mutex mu_;\n"
                "  std::function<void()> on_event_;\n"
                "  void Fire() {\n"
                "    MutexLock g(mu_);\n"
                "    on_event_();\n"
                "  }\n"
                "  void Ok() { on_event_(); }\n"
                "};\n");
  EXPECT_EQ(Checks(fs), std::vector<std::string>{"callback-lock"});
  EXPECT_EQ(fs[0].line, 9);
}

TEST(CallbackLock, TracksAliasedCallbackTypes) {
  auto fs = Lint("a.cc",
                "#include <functional>\n"
                "using DoneFn = std::function<void(int)>;\n"
                "struct Mutex {};\n"
                "struct MutexLock { explicit MutexLock(Mutex& m); };\n"
                "struct S {\n"
                "  Mutex mu_;\n"
                "  DoneFn done_;\n"
                "  void Fire() {\n"
                "    MutexLock g(mu_);\n"
                "    done_(1);\n"
                "  }\n"
                "};\n");
  EXPECT_TRUE(Has(fs, "callback-lock"));
}

// ------------------------------------------------------ escape hatches

TEST(Markers, LineAndBlockAboveAndFileScope) {
  const std::string line_marker =
      "#include <mutex>\n"
      "std::mutex mu;  // dprlint: allowed(sync-prim) interop with libfoo.\n";
  EXPECT_TRUE(Lint("a.cc", line_marker).empty());

  const std::string block_above =
      "#include <mutex>\n"
      "// dprlint: allowed(sync-prim) interop with libfoo; it hands us\n"
      "// a std::mutex to lock around its callbacks.\n"
      "std::mutex mu;\n";
  EXPECT_TRUE(Lint("a.cc", block_above).empty());

  const std::string file_scope =
      "// dprlint: allowed-file(sync-prim) FFI shim file, raw types only.\n"
      "#include <mutex>\n"
      "std::mutex a;\nstd::mutex b;\n";
  EXPECT_TRUE(Lint("a.cc", file_scope).empty());
}

TEST(Markers, SuppressOnlyTheNamedCheck) {
  // A sync-prim marker does not suppress the device-shim finding there.
  auto fs = Lint("a.cc",
                "void F(D* d) {\n"
                "  // dprlint: allowed(sync-prim) wrong id for this line.\n"
                "  d->WriteAt(0, \"x\", 1);\n"
                "}\n");
  EXPECT_TRUE(Has(fs, "device-shim"));
}

TEST(Markers, BadMarkersAreThemselvesFindings) {
  EXPECT_EQ(Checks(Lint("a.cc", "// dprlint: allowed(nope) why\nint x;\n")),
            std::vector<std::string>{"allow-syntax"});
  EXPECT_EQ(
      Checks(Lint("a.cc", "// dprlint: allowed(sync-prim)\nint x;\n")),
      std::vector<std::string>{"allow-syntax"});
}

// ---------------------------------------------------------- output shape

TEST(Output, JsonIsStableAndEscaped) {
  auto fs = Lint("a.cc", "#include <mutex>\nstd::mutex mu;\n");
  ASSERT_EQ(fs.size(), 1u);
  const std::string json = ToJson(fs);
  EXPECT_NE(json.find("\"check\":\"sync-prim\""), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":2"), std::string::npos);
}

TEST(Output, RegistryListsEveryReportableCheck) {
  std::vector<std::string> ids;
  for (const CheckInfo& c : Registry()) ids.push_back(c.id);
  for (const char* id :
       {"sync-prim", "net-raw-write", "storage-raw-io", "device-shim",
        "ckpt-interval", "lock-blocking", "status-discard", "atomic-comment",
        "atomic-relaxed", "callback-lock", "allow-syntax"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end()) << id;
  }
}

}  // namespace
}  // namespace dprlint
