// Whole-stack soak: concurrent client threads drive a D-FASTER cluster under
// periodic checkpoints while failures are injected; every session must see
// monotone commit points, recover cleanly, and finish with a fully-committed
// suffix. Exercises the full path: client batching/windowing -> transport ->
// DPR admission -> FASTER -> checkpoints -> finder -> rollback.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "harness/cluster.h"

namespace dpr {
namespace {

struct SoakParams {
  FinderKind finder;
  TransportKind transport;
  bool colocated;
};

class SoakTest : public ::testing::TestWithParam<SoakParams> {};

TEST_P(SoakTest, ConcurrentSessionsSurviveFailures) {
  const SoakParams params = GetParam();
  ClusterOptions options;
  options.num_workers = 2;
  options.backend = StorageBackend::kLocal;
  options.checkpoint_interval_us = 15000;
  options.finder_interval_us = 5000;
  options.finder = params.finder;
  options.transport = params.transport;
  DFasterCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());

  constexpr int kClientThreads = 3;
  constexpr uint64_t kRunMs = 1200;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_completed{0};
  std::atomic<int> recoveries{0};
  std::atomic<bool> violation{false};

  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      auto client = params.colocated
                        ? cluster.NewColocatedClient(t % 2, 4, 64)
                        : cluster.NewClient(4, 64);
      auto session = client->NewSession(100 + t);
      Random rng(t);
      uint64_t last_commit = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 64; ++i) {
          const uint64_t key = rng.Uniform(2048);
          if (rng.Bernoulli(0.5)) {
            session->Upsert(key, rng.Next(), [&](KvResult, uint64_t) {
              total_completed.fetch_add(1, std::memory_order_relaxed);
            });
          } else {
            session->Read(key, [&](KvResult, uint64_t) {
              total_completed.fetch_add(1, std::memory_order_relaxed);
            });
          }
        }
        if (!session->WaitForAll(20000).ok()) break;
        if (session->needs_failure_handling()) {
          DprSession::CommitPoint survivors;
          if (session->RecoverFromFailure(&survivors).ok()) {
            if (survivors.prefix_end < last_commit) violation.store(true);
            last_commit = survivors.prefix_end;
            recoveries.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          const uint64_t point = session->dpr().GetCommitPoint().prefix_end;
          if (point < last_commit) violation.store(true);
          last_commit = point;
        }
      }
      (void)session->WaitForAll(20000);
      if (session->needs_failure_handling()) {
        DprSession::CommitPoint survivors;
        (void)session->RecoverFromFailure(&survivors);
      }
    });
  }

  // Inject two failures mid-run.
  SleepMicros(kRunMs * 1000 / 3);
  ASSERT_TRUE(cluster.InjectFailure({0}).ok());
  SleepMicros(kRunMs * 1000 / 3);
  ASSERT_TRUE(cluster.InjectFailure({1}).ok());
  SleepMicros(kRunMs * 1000 / 3);
  stop.store(true);
  for (auto& t : clients) t.join();

  EXPECT_FALSE(violation.load()) << "commit point regressed";
  EXPECT_GT(total_completed.load(), 1000u);
  // At least one session observed each failure (they all interact steadily).
  EXPECT_GE(recoveries.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, SoakTest,
    ::testing::Values(
        SoakParams{FinderKind::kApprox, TransportKind::kInMemory, false},
        SoakParams{FinderKind::kExact, TransportKind::kInMemory, false},
        SoakParams{FinderKind::kHybrid, TransportKind::kInMemory, false},
        SoakParams{FinderKind::kApprox, TransportKind::kTcp, false},
        SoakParams{FinderKind::kApprox, TransportKind::kInMemory, true}),
    [](const auto& param_info) {
      std::string name;
      switch (param_info.param.finder) {
        case FinderKind::kApprox:
          name = "Approx";
          break;
        case FinderKind::kExact:
          name = "Exact";
          break;
        case FinderKind::kHybrid:
          name = "Hybrid";
          break;
      }
      name += param_info.param.transport == TransportKind::kTcp ? "Tcp" : "InMem";
      if (param_info.param.colocated) name += "Colocated";
      return name;
    });

}  // namespace
}  // namespace dpr
