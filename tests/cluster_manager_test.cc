// ClusterManager unit tests: world-line sequencing, recovery-cut
// bookkeeping, and rollback fan-out (using FASTER-backed workers).
#include "dpr/cluster_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "faster/faster_store.h"

namespace dpr {
namespace {

class ClusterManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metadata_ =
        std::make_unique<MetadataStore>(std::make_unique<MemoryDevice>());
    ASSERT_TRUE(metadata_->Recover().ok());
    finder_ = MakeDprFinder(
        {.kind = FinderKind::kApprox, .metadata = metadata_.get()});
    manager_ = std::make_unique<ClusterManager>(finder_.get());
    for (int i = 0; i < 2; ++i) {
      FasterOptions fo;
      fo.index_buckets = 256;
      fo.log_device = std::make_unique<MemoryDevice>();
      fo.meta_device = std::make_unique<MemoryDevice>();
      stores_.push_back(std::make_unique<FasterStore>(std::move(fo)));
      DprWorkerOptions wo;
      wo.worker_id = i;
      wo.finder = finder_.get();
      wo.checkpoint_interval_us = 0;
      workers_.push_back(
          std::make_unique<DprWorker>(stores_.back().get(), wo));
      ASSERT_TRUE(workers_.back()->Start().ok());
      manager_->RegisterWorker(workers_.back().get());
    }
  }

  void WriteAndCommit(int worker, uint64_t key, uint64_t value) {
    auto session = stores_[worker]->NewSession();
    ASSERT_TRUE(session->Upsert(key, value).ok());
    // The approximate finder's cut is Vmin across rows: every worker must
    // checkpoint for the cut to advance.
    for (size_t w = 0; w < workers_.size(); ++w) {
      ASSERT_TRUE(workers_[w]->TryCommit().ok());
      stores_[w]->WaitForCheckpoints();
    }
    ASSERT_TRUE(finder_->ComputeCut().ok());
  }

  std::unique_ptr<MetadataStore> metadata_;
  std::unique_ptr<DprFinder> finder_;
  std::unique_ptr<ClusterManager> manager_;
  std::vector<std::unique_ptr<FasterStore>> stores_;
  std::vector<std::unique_ptr<DprWorker>> workers_;
};

TEST_F(ClusterManagerTest, NoRecoveryInfoBeforeAnyFailure) {
  WorldLine wl;
  DprCut cut;
  manager_->GetRecoveryInfo(&wl, &cut);
  EXPECT_EQ(wl, kInitialWorldLine);
  EXPECT_TRUE(cut.empty());
  EXPECT_FALSE(manager_->GetRecoveryCut(2, &cut));
}

TEST_F(ClusterManagerTest, HandleFailureAdvancesWorldLineEverywhere) {
  WriteAndCommit(0, 1, 10);
  WriteAndCommit(1, 2, 20);
  ASSERT_TRUE(manager_->HandleFailure({0}).ok());
  EXPECT_EQ(finder_->CurrentWorldLine(), kInitialWorldLine + 1);
  EXPECT_EQ(workers_[0]->world_line(), kInitialWorldLine + 1);
  EXPECT_EQ(workers_[1]->world_line(), kInitialWorldLine + 1);
}

TEST_F(ClusterManagerTest, RecoveryCutsRecordedPerWorldLine) {
  WriteAndCommit(0, 1, 10);
  WriteAndCommit(1, 2, 20);
  ASSERT_TRUE(manager_->HandleFailure({0}).ok());
  DprCut first;
  ASSERT_TRUE(manager_->GetRecoveryCut(kInitialWorldLine + 1, &first));
  ASSERT_TRUE(manager_->HandleFailure({1}).ok());
  DprCut second;
  ASSERT_TRUE(manager_->GetRecoveryCut(kInitialWorldLine + 2, &second));
  // Cuts never regress across recoveries.
  for (const auto& [w, v] : first) {
    EXPECT_GE(CutVersion(second, w), v);
  }
  WorldLine latest;
  manager_->GetRecoveryInfo(&latest, nullptr);
  EXPECT_EQ(latest, kInitialWorldLine + 2);
}

TEST_F(ClusterManagerTest, CrashedWorkerRestoresCommittedData) {
  WriteAndCommit(0, 7, 77);
  ASSERT_TRUE(manager_->HandleFailure({0}).ok());
  auto session = stores_[0]->NewSession();
  uint64_t v = 0;
  ASSERT_TRUE(session->Read(7, &v).ok());
  EXPECT_EQ(v, 77u);
}

TEST_F(ClusterManagerTest, SurvivorRollsBackUncommittedData) {
  WriteAndCommit(1, 5, 50);  // committed on the survivor
  {
    auto session = stores_[1]->NewSession();
    ASSERT_TRUE(session->Upsert(5, 99).ok());  // uncommitted overwrite
  }
  ASSERT_TRUE(manager_->HandleFailure({0}).ok());  // 1 survives, rolls back
  auto session = stores_[1]->NewSession();
  uint64_t v = 0;
  ASSERT_TRUE(session->Read(5, &v).ok());
  EXPECT_EQ(v, 50u) << "uncommitted write must be rolled back";
}

TEST_F(ClusterManagerTest, UnregisteredWorkerIsLeftAlone) {
  WriteAndCommit(1, 5, 50);
  manager_->UnregisterWorker(1);
  {
    auto session = stores_[1]->NewSession();
    ASSERT_TRUE(session->Upsert(5, 99).ok());
  }
  ASSERT_TRUE(manager_->HandleFailure({0}).ok());
  // Worker 1 was not part of the recovery: its state and world-line are
  // untouched (the caller is responsible for membership consistency).
  EXPECT_EQ(workers_[1]->world_line(), kInitialWorldLine);
  auto session = stores_[1]->NewSession();
  uint64_t v = 0;
  ASSERT_TRUE(session->Read(5, &v).ok());
  EXPECT_EQ(v, 99u);
}

}  // namespace
}  // namespace dpr
