// Wrapper-semantics tests for the annotated sync primitives in
// common/sync.h and common/latch.h: mutual exclusion, try-lock, shared vs.
// exclusive access, condition-variable wakeup/timeout, and the lock-rank
// bookkeeping hooks. Rank *violations* are covered by lockrank_test.cc
// (death tests); this file stays on the happy path.
#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/latch.h"

namespace dpr {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;  // deliberately non-atomic: mu is the only protection
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock guard(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  std::thread other([&] {
    EXPECT_FALSE(mu.TryLock());
  });
  other.join();
  mu.Unlock();
  // Free again: try-lock succeeds and must be paired with Unlock.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, GuardReleasesAtScopeExit) {
  Mutex mu;
  {
    MutexLock guard(mu);
  }
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  // Two simultaneous readers must both be inside the shared section at once.
  std::atomic<int> readers_inside{0};
  std::atomic<bool> saw_both{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      ReaderMutexLock guard(mu);
      readers_inside.fetch_add(1);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (readers_inside.load() < 2 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
      if (readers_inside.load() == 2) saw_both.store(true);
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_TRUE(saw_both.load());

  // A held reader blocks writers but admits more readers.
  mu.LockShared();
  std::thread checker([&] {
    EXPECT_FALSE(mu.TryLock());
    ASSERT_TRUE(mu.TryLockShared());
    mu.UnlockShared();
  });
  checker.join();
  mu.UnlockShared();

  // A held writer blocks both flavors.
  WriterMutexLock writer(mu);
  std::thread blocked([&] {
    EXPECT_FALSE(mu.TryLock());
    EXPECT_FALSE(mu.TryLockShared());
  });
  blocked.join();
}

TEST(CondVarTest, NotifyWakesPredicateWait) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.Wait(mu, [&]() REQUIRES(mu) { return ready; });
    EXPECT_TRUE(ready);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
}

TEST(CondVarTest, WaitForTimesOutWithFalsePredicate) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const bool woke =
      cv.WaitFor(mu, std::chrono::milliseconds(20), [] { return false; });
  EXPECT_FALSE(woke);
}

TEST(SpinLatchTest, MutualExclusionAndTryLock) {
  SpinLatch latch;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SpinLatchGuard guard(latch);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);

  latch.Lock();
  std::thread other([&] { EXPECT_FALSE(latch.TryLock()); });
  other.join();
  latch.Unlock();
}

TEST(SharedSpinLatchTest, WriterDrainsReaders) {
  SharedSpinLatch latch;
  latch.LockShared();
  std::atomic<bool> writer_in{false};
  std::thread writer([&] {
    latch.LockExclusive();
    writer_in.store(true);
    latch.UnlockExclusive();
  });
  // Writer must not get in while the reader holds the latch.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(writer_in.load());
  latch.UnlockShared();
  writer.join();
  EXPECT_TRUE(writer_in.load());
}

TEST(LockRankHooksTest, HeldCountAndMinRankTrackRankedLocksOnly) {
  ASSERT_EQ(lockrank::HeldCount(), 0);
  Mutex unranked;  // kNone: invisible to the checker
  Mutex outer(LockRank::kServer, "test.outer");
  Mutex inner(LockRank::kStorage, "test.inner");

  MutexLock u(unranked);
  EXPECT_EQ(lockrank::HeldCount(), 0);
  {
    MutexLock a(outer);
    EXPECT_EQ(lockrank::HeldCount(), 1);
    EXPECT_EQ(lockrank::MinHeldRank(), static_cast<int>(LockRank::kServer));
    {
      MutexLock b(inner);
      EXPECT_EQ(lockrank::HeldCount(), 2);
      EXPECT_EQ(lockrank::MinHeldRank(), static_cast<int>(LockRank::kStorage));
    }
    EXPECT_EQ(lockrank::HeldCount(), 1);
  }
  EXPECT_EQ(lockrank::HeldCount(), 0);
}

TEST(LockRankHooksTest, RankStateIsPerThread) {
  Mutex outer(LockRank::kServer, "test.outer");
  MutexLock guard(outer);
  // Another thread holds nothing, so it may acquire any rank — including one
  // above what this thread holds.
  std::thread other([] {
    Mutex high(LockRank::kClusterRecovery, "test.high");
    MutexLock g(high);
    EXPECT_EQ(lockrank::HeldCount(), 1);
  });
  other.join();
  EXPECT_EQ(lockrank::HeldCount(), 1);
}

}  // namespace
}  // namespace dpr
