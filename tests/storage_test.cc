#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/clock.h"
#include "storage/checkpoint_file.h"
#include "storage/device.h"
#include "storage/wal.h"

namespace dpr {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/dpr_storage_test_" + name;
}

TEST(NullDeviceTest, AcceptsWritesTracksSize) {
  NullDevice dev;
  EXPECT_TRUE(SyncIo::Write(&dev, 100, "hello", 5).ok());
  EXPECT_EQ(dev.Size(), 105u);
  char buf[5];
  EXPECT_TRUE(SyncIo::Read(&dev, 100, buf, 5).ok());
  EXPECT_EQ(std::string(buf, 5), std::string(5, '\0'));
}

TEST(MemoryDeviceTest, ReadBackAndCrashSemantics) {
  MemoryDevice dev;
  ASSERT_TRUE(SyncIo::Write(&dev, 0, "durable", 7).ok());
  ASSERT_TRUE(SyncIo::Fsync(&dev).ok());
  ASSERT_TRUE(SyncIo::Write(&dev, 7, "volatile", 8).ok());
  dev.SimulateCrash();
  EXPECT_EQ(dev.Size(), 7u);
  char buf[7];
  ASSERT_TRUE(SyncIo::Read(&dev, 0, buf, 7).ok());
  EXPECT_EQ(std::string(buf, 7), "durable");
  EXPECT_FALSE(SyncIo::Read(&dev, 0, buf, 8).ok());  // past end
}

TEST(MemoryDeviceTest, OverwriteBeforeFlushSurvivesOnlyAfterFlush) {
  MemoryDevice dev;
  ASSERT_TRUE(SyncIo::Write(&dev, 0, "aaaa", 4).ok());
  ASSERT_TRUE(SyncIo::Fsync(&dev).ok());
  ASSERT_TRUE(SyncIo::Write(&dev, 0, "bbbb", 4).ok());
  dev.SimulateCrash();
  char buf[4];
  ASSERT_TRUE(SyncIo::Read(&dev, 0, buf, 4).ok());
  EXPECT_EQ(std::string(buf, 4), "aaaa");
}

TEST(FileDeviceTest, PersistsAcrossReopen) {
  const std::string path = TempPath("file_reopen");
  {
    std::unique_ptr<FileDevice> dev;
    ASSERT_TRUE(FileDevice::Open(path, /*reset=*/true, &dev).ok());
    ASSERT_TRUE(SyncIo::Write(dev.get(), 0, "persist me", 10).ok());
    ASSERT_TRUE(SyncIo::Fsync(dev.get()).ok());
  }
  {
    std::unique_ptr<FileDevice> dev;
    ASSERT_TRUE(FileDevice::Open(path, /*reset=*/false, &dev).ok());
    EXPECT_EQ(dev->Size(), 10u);
    char buf[10];
    ASSERT_TRUE(SyncIo::Read(dev.get(), 0, buf, 10).ok());
    EXPECT_EQ(std::string(buf, 10), "persist me");
  }
  remove(path.c_str());
}

TEST(FileDeviceTest, CrashDropsUnsyncedTail) {
  const std::string path = TempPath("file_crash");
  std::unique_ptr<FileDevice> dev;
  ASSERT_TRUE(FileDevice::Open(path, /*reset=*/true, &dev).ok());
  ASSERT_TRUE(SyncIo::Write(dev.get(), 0, "12345678", 8).ok());
  ASSERT_TRUE(SyncIo::Fsync(dev.get()).ok());
  ASSERT_TRUE(SyncIo::Write(dev.get(), 8, "rest", 4).ok());
  dev->SimulateCrash();
  EXPECT_EQ(dev->Size(), 8u);
  remove(path.c_str());
}

TEST(LatencyDeviceTest, FlushIsDelayed) {
  auto dev = std::make_unique<LatencyDevice>(
      std::make_unique<MemoryDevice>(), /*flush_latency_us=*/20000,
      /*per_mb_us=*/0);
  ASSERT_TRUE(SyncIo::Write(dev.get(), 0, "x", 1).ok());
  Stopwatch timer;
  ASSERT_TRUE(SyncIo::Fsync(dev.get()).ok());
  EXPECT_GE(timer.ElapsedMicros(), 15000u);
}

TEST(MakeDeviceTest, FactoryProducesWorkingDevices) {
  for (StorageBackend backend :
       {StorageBackend::kNull, StorageBackend::kLocal,
        StorageBackend::kCloud}) {
    auto dev = MakeDevice(backend);
    ASSERT_NE(dev, nullptr);
    EXPECT_TRUE(SyncIo::Write(dev.get(), 0, "probe", 5).ok());
    EXPECT_TRUE(SyncIo::Fsync(dev.get()).ok());
  }
}

TEST(WalTest, AppendReplayRoundTrip) {
  WriteAheadLog wal(std::make_unique<MemoryDevice>());
  ASSERT_TRUE(wal.Append("first").ok());
  ASSERT_TRUE(wal.Append("second").ok());
  ASSERT_TRUE(wal.Sync().ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(wal.Replay([&](uint64_t, Slice rec) {
    seen.push_back(rec.ToString());
  }).ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "first");
  EXPECT_EQ(seen[1], "second");
}

TEST(WalTest, CrashLosesUnsyncedSuffixOnly) {
  WriteAheadLog wal(std::make_unique<MemoryDevice>());
  ASSERT_TRUE(wal.Append("durable").ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.Append("lost").ok());
  wal.device()->SimulateCrash();
  std::vector<std::string> seen;
  ASSERT_TRUE(wal.Replay([&](uint64_t, Slice rec) {
    seen.push_back(rec.ToString());
  }).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "durable");
}

TEST(WalTest, TornTailRecordIsDropped) {
  auto device = std::make_unique<MemoryDevice>();
  MemoryDevice* raw = device.get();
  WriteAheadLog wal(std::move(device));
  ASSERT_TRUE(wal.Append("good").ok());
  uint64_t offset = 0;
  ASSERT_TRUE(wal.Append("to be torn", &offset).ok());
  ASSERT_TRUE(wal.Sync().ok());
  // Corrupt one byte of the second record's payload.
  char byte = 'X';
  ASSERT_TRUE(SyncIo::Write(raw, offset + 9, &byte, 1).ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(wal.Replay([&](uint64_t, Slice rec) {
    seen.push_back(rec.ToString());
  }).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "good");
}

TEST(WalTest, AppendAfterReplayContinuesAtTail) {
  WriteAheadLog wal(std::make_unique<MemoryDevice>());
  ASSERT_TRUE(wal.Append("a").ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.Replay([](uint64_t, Slice) {}).ok());
  ASSERT_TRUE(wal.Append("b").ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(wal.Replay([&](uint64_t, Slice rec) {
    seen.push_back(rec.ToString());
  }).ok());
  ASSERT_EQ(seen.size(), 2u);
}

TEST(WalTest, ResetDiscardsEverything) {
  WriteAheadLog wal(std::make_unique<MemoryDevice>());
  ASSERT_TRUE(wal.Append("gone").ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.Reset().ok());
  int count = 0;
  ASSERT_TRUE(wal.Replay([&](uint64_t, Slice) { count++; }).ok());
  EXPECT_EQ(count, 0);
}

TEST(CheckpointBlobTest, RoundTripWithToken) {
  MemoryDevice dev;
  ASSERT_TRUE(CheckpointBlob::Write(&dev, 0, 42, "snapshot bytes").ok());
  std::string payload;
  uint64_t token = 0;
  ASSERT_TRUE(CheckpointBlob::Read(&dev, 0, &payload, &token).ok());
  EXPECT_EQ(payload, "snapshot bytes");
  EXPECT_EQ(token, 42u);
}

TEST(CheckpointBlobTest, MissingBlobIsNotFound) {
  MemoryDevice dev;
  std::string payload;
  EXPECT_TRUE(CheckpointBlob::Read(&dev, 0, &payload, nullptr).IsNotFound());
}

TEST(CheckpointBlobTest, CorruptionDetected) {
  MemoryDevice dev;
  ASSERT_TRUE(CheckpointBlob::Write(&dev, 0, 7, "payload").ok());
  char byte = 'Z';
  ASSERT_TRUE(SyncIo::Write(&dev, 30, &byte, 1).ok());  // inside the payload
  std::string payload;
  Status s = CheckpointBlob::Read(&dev, 0, &payload, nullptr);
  EXPECT_EQ(s.code(), Status::Code::kCorruption);
}

}  // namespace
}  // namespace dpr
