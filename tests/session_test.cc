#include "dpr/session.h"

#include <gtest/gtest.h>

namespace dpr {
namespace {

DprResponseHeader Ok(Version executed, Version persisted,
                     WorldLine wl = kInitialWorldLine) {
  DprResponseHeader resp;
  resp.status = DprResponseHeader::BatchStatus::kOk;
  resp.world_line = wl;
  resp.executed_version = executed;
  resp.persisted_version = persisted;
  return resp;
}

TEST(DprSessionTest, HeaderCarriesVersionClockAndDeps) {
  DprSession session(7);
  EXPECT_EQ(session.MakeHeader().session_id, 7u);
  EXPECT_EQ(session.MakeHeader().version, kInvalidVersion);
  session.RecordBatch(0, 4, Ok(/*executed=*/3, /*persisted=*/0));
  session.RecordBatch(1, 2, Ok(/*executed=*/5, /*persisted=*/0));
  const DprRequestHeader header = session.MakeHeader();
  EXPECT_EQ(header.version, 5u);  // Vs = max version seen (Lamport clock)
  ASSERT_EQ(header.deps.size(), 2u);
  EXPECT_EQ(header.deps.at(0), 3u);
  EXPECT_EQ(header.deps.at(1), 5u);
}

TEST(DprSessionTest, CommittedDepsArePruned) {
  DprSession session(1);
  session.RecordBatch(0, 1, Ok(3, 0));
  session.RecordBatch(0, 1, Ok(3, 3));  // watermark catches up to v3
  EXPECT_TRUE(session.MakeHeader().deps.empty());
}

TEST(DprSessionTest, CommitPointAdvancesWithWatermarks) {
  DprSession session(1);
  session.RecordBatch(0, 10, Ok(2, 0));
  EXPECT_EQ(session.GetCommitPoint().prefix_end, 0u);
  session.ObserveWatermark(0, Ok(2, 2));
  const auto point = session.GetCommitPoint();
  EXPECT_EQ(point.prefix_end, 10u);
  EXPECT_TRUE(point.excluded.empty());
}

TEST(DprSessionTest, CrossWorkerPrefixBlocksOnEarliestUncommitted) {
  DprSession session(1);
  session.RecordBatch(0, 5, Ok(2, 0));   // ops 0-4 at worker 0 (v2)
  session.RecordBatch(1, 5, Ok(2, 0));   // ops 5-9 at worker 1 (v2)
  session.ObserveWatermark(1, Ok(2, 2));  // worker 1 committed, 0 not
  EXPECT_EQ(session.GetCommitPoint().prefix_end, 0u);
  session.ObserveWatermark(0, Ok(2, 2));
  EXPECT_EQ(session.GetCommitPoint().prefix_end, 10u);
}

TEST(DprSessionTest, RelaxedPendingSkippedAndListed) {
  DprSession session(1);
  session.RecordBatch(0, 2, Ok(1, 1));        // ops 0-1 committed
  const uint64_t p = session.IssuePending(1, 3);  // ops 2-4 in flight
  session.RecordBatch(0, 2, Ok(1, 1));        // ops 5-6 committed
  const auto point = session.GetCommitPoint();
  // Relaxed DPR: the prefix may pass over unresolved PENDING ops, naming
  // them in the exception list (paper §5.4, Fig. 7).
  EXPECT_EQ(point.prefix_end, 7u);
  EXPECT_EQ(point.excluded, (std::vector<uint64_t>{2, 3, 4}));
  // Once resolved and committed, they leave the exception list.
  session.ResolvePending(p, Ok(1, 1));
  const auto after = session.GetCommitPoint();
  EXPECT_EQ(after.prefix_end, 7u);
  EXPECT_TRUE(after.excluded.empty());
}

TEST(DprSessionTest, ResolvedUncommittedPendingStaysExcludedAndGates) {
  DprSession session(1);
  const uint64_t p = session.IssuePending(1, 1);  // op 0
  session.RecordBatch(0, 2, Ok(1, 1));            // ops 1-2 committed
  EXPECT_EQ(session.GetCommitPoint().prefix_end, 3u);
  // The pending op resolves into a version that is NOT yet committed: it
  // must stay on the exception list and the prefix must not regress.
  session.ResolvePending(p, Ok(5, 1));
  auto point = session.GetCommitPoint();
  EXPECT_EQ(point.prefix_end, 3u);
  EXPECT_EQ(point.excluded, (std::vector<uint64_t>{0}));
  // New committed work cannot advance the prefix past the gate...
  session.RecordBatch(0, 1, Ok(1, 1));
  EXPECT_EQ(session.GetCommitPoint().prefix_end, 3u);
  // ...until the pending op's version commits.
  session.ObserveWatermark(1, Ok(5, 5));
  point = session.GetCommitPoint();
  EXPECT_EQ(point.prefix_end, 4u);
  EXPECT_TRUE(point.excluded.empty());
}

TEST(DprSessionTest, FailedOpsCommitVacuously) {
  DprSession session(1);
  const uint64_t p = session.IssuePending(0, 2);
  DprResponseHeader vacuous;  // executed_version = 0
  session.ResolvePending(p, vacuous);
  const auto point = session.GetCommitPoint();
  EXPECT_EQ(point.prefix_end, 2u);
  EXPECT_TRUE(point.excluded.empty());
  EXPECT_TRUE(session.MakeHeader().deps.empty());
}

TEST(DprSessionTest, WorldLineShiftDetected) {
  DprSession session(1);
  EXPECT_FALSE(session.needs_failure_handling());
  DprResponseHeader resp;
  resp.status = DprResponseHeader::BatchStatus::kWorldLineShift;
  resp.world_line = 2;
  session.ObserveWatermark(0, resp);
  EXPECT_TRUE(session.needs_failure_handling());
  EXPECT_EQ(session.observed_world_line(), 2u);
}

TEST(DprSessionTest, HandleFailureComputesSurvivingPrefix) {
  DprSession session(1);
  session.RecordBatch(0, 3, Ok(1, 0));  // ops 0-2 in v1 at worker 0
  session.RecordBatch(1, 3, Ok(1, 0));  // ops 3-5 in v1 at worker 1
  session.RecordBatch(0, 3, Ok(2, 0));  // ops 6-8 in v2 at worker 0
  // Failure: the recovery cut covers v1 everywhere but not worker 0's v2.
  const DprCut cut{{0, 1}, {1, 1}};
  const auto survivors = session.HandleFailure(2, cut);
  EXPECT_EQ(survivors.prefix_end, 6u);
  EXPECT_TRUE(survivors.excluded.empty());
  EXPECT_EQ(session.world_line(), 2u);
  EXPECT_FALSE(session.needs_failure_handling());
  // The session continues on the new world-line with a clean slate.
  EXPECT_TRUE(session.MakeHeader().deps.empty());
  EXPECT_EQ(session.MakeHeader().world_line, 2u);
}

TEST(DprSessionTest, HandleFailureListsLostPending) {
  DprSession session(1);
  session.RecordBatch(0, 2, Ok(1, 1));  // ops 0-1 committed
  session.IssuePending(1, 2);           // ops 2-3 lost in flight
  session.RecordBatch(0, 2, Ok(1, 1));  // ops 4-5 committed
  const DprCut cut{{0, 1}, {1, 1}};
  const auto survivors = session.HandleFailure(2, cut);
  EXPECT_EQ(survivors.prefix_end, 6u);
  EXPECT_EQ(survivors.excluded, (std::vector<uint64_t>{2, 3}));
}

TEST(DprSessionTest, CommitPointIsMonotone) {
  DprSession session(1);
  uint64_t last = 0;
  for (int round = 0; round < 50; ++round) {
    session.RecordBatch(round % 3, 2,
                        Ok(1 + round / 3, round > 25 ? 100 : 0));
    const uint64_t point = session.GetCommitPoint().prefix_end;
    EXPECT_GE(point, last);
    last = point;
  }
}

TEST(DprSessionTest, VersionClockRetainedAcrossFailure) {
  DprSession session(1);
  session.RecordBatch(0, 1, Ok(9, 0));
  session.HandleFailure(2, DprCut{{0, 0}});
  // Vs survives: post-recovery versions continue above pre-failure ones.
  EXPECT_EQ(session.MakeHeader().version, 9u);
}

}  // namespace
}  // namespace dpr

namespace dpr {
namespace {

DprResponseHeader Committed(Version v) {
  DprResponseHeader resp;
  resp.status = DprResponseHeader::BatchStatus::kOk;
  resp.executed_version = v;
  resp.persisted_version = v;
  return resp;
}

TEST(StrictDprSessionTest, PendingGatesThePrefix) {
  DprSession session(1, {.strict = true});
  session.RecordBatch(0, 2, Committed(1));  // ops 0-1 committed
  const uint64_t p = session.IssuePending(1, 1);  // op 2 in flight
  session.RecordBatch(0, 2, Committed(1));  // ops 3-4 committed
  // Strict mode: no skipping, no exception list.
  auto point = session.GetCommitPoint();
  EXPECT_EQ(point.prefix_end, 2u);
  EXPECT_TRUE(point.excluded.empty());
  session.ResolvePending(p, Committed(1));
  point = session.GetCommitPoint();
  EXPECT_EQ(point.prefix_end, 5u);
  EXPECT_TRUE(point.excluded.empty());
}

TEST(StrictDprSessionTest, RelaxedAndStrictAgreeWithoutPendings) {
  DprSession strict(1, {.strict = true});
  DprSession relaxed(2, {.strict = false});
  for (int i = 0; i < 10; ++i) {
    strict.RecordBatch(i % 2, 3, Committed(1 + i / 4));
    relaxed.RecordBatch(i % 2, 3, Committed(1 + i / 4));
  }
  // Equivalence (§5.4): with every op resolved, relaxed DPR is just a
  // renaming of strict DPR.
  EXPECT_EQ(strict.GetCommitPoint().prefix_end,
            relaxed.GetCommitPoint().prefix_end);
}

TEST(StrictDprSessionTest, FailureHandlingRespectsStrictOrder) {
  DprSession session(1, {.strict = true});
  session.RecordBatch(0, 2, Committed(1));
  session.IssuePending(1, 1);               // lost in flight
  session.RecordBatch(0, 2, Committed(1));  // after the pending op
  const auto survivors = session.HandleFailure(2, DprCut{{0, 1}, {1, 1}});
  // Strictly, nothing after the lost op survives.
  EXPECT_EQ(survivors.prefix_end, 2u);
}

TEST(SessionOptionsTest, ExceptionListCapBoundsSkippedOps) {
  DprSession session(1, {.exception_list_cap = 1});
  session.RecordBatch(0, 1, Committed(1));        // op 0 committed
  const uint64_t p1 = session.IssuePending(0, 1);  // op 1 pending
  session.RecordBatch(0, 1, Committed(1));        // op 2 committed
  const uint64_t p3 = session.IssuePending(0, 1);  // op 3 pending
  session.RecordBatch(0, 1, Committed(1));        // op 4 committed
  // The prefix may skip one unresolved op (op 1) but stops before skipping
  // a second (op 3): the exception list is bounded at the cap.
  auto point = session.GetCommitPoint();
  EXPECT_EQ(point.prefix_end, 3u);
  EXPECT_EQ(point.excluded, (std::vector<uint64_t>{1}));
  // Resolving op 1 frees the budget: the prefix advances, skipping op 3.
  session.ResolvePending(p1, Committed(1));
  point = session.GetCommitPoint();
  EXPECT_EQ(point.prefix_end, 5u);
  EXPECT_EQ(point.excluded, (std::vector<uint64_t>{3}));
  session.ResolvePending(p3, Committed(1));
  point = session.GetCommitPoint();
  EXPECT_EQ(point.prefix_end, 5u);
  EXPECT_TRUE(point.excluded.empty());
}

TEST(SessionOptionsTest, ZeroCapEquivalentToStrict) {
  DprSession session(1, {.exception_list_cap = 0});
  session.RecordBatch(0, 2, Committed(1));        // ops 0-1 committed
  const uint64_t p = session.IssuePending(0, 1);  // op 2 pending
  session.RecordBatch(0, 2, Committed(1));        // ops 3-4 committed
  auto point = session.GetCommitPoint();
  EXPECT_EQ(point.prefix_end, 2u);
  EXPECT_TRUE(point.excluded.empty());
  session.ResolvePending(p, Committed(1));
  EXPECT_EQ(session.GetCommitPoint().prefix_end, 5u);
}

TEST(SessionOptionsTest, RejectPolicyIgnoresPreRecoveryStragglers) {
  DprSession session(1);  // default: WorldLinePolicy::kReject
  session.HandleFailure(2, DprCut{{0, 0}});
  session.RecordBatch(0, 1, Ok(/*executed=*/2, /*persisted=*/0, /*wl=*/2));
  // A pre-recovery straggler claims v7 persisted — on the OLD world-line,
  // which the rollback already erased. It must not advance anything.
  session.ObserveWatermark(0, Ok(7, 7, kInitialWorldLine));
  EXPECT_EQ(session.GetCommitPoint().prefix_end, 0u);
  EXPECT_EQ(session.MakeHeader().version, 2u);
}

TEST(SessionOptionsTest, TrustingPolicyExhibitsPrefixMixingAnomaly) {
  // The §4.2 (Fig. 5) anomaly the world-line check exists to prevent: with
  // the legacy kTrusting policy, a pre-recovery watermark "commits" a
  // post-recovery operation that nothing actually persisted.
  DprSession session(
      1, {.world_line_policy = SessionOptions::WorldLinePolicy::kTrusting});
  session.HandleFailure(2, DprCut{{0, 0}});
  session.RecordBatch(0, 1, Ok(/*executed=*/2, /*persisted=*/0, /*wl=*/2));
  session.ObserveWatermark(0, Ok(7, 7, kInitialWorldLine));
  EXPECT_EQ(session.GetCommitPoint().prefix_end, 1u);
}

}  // namespace
}  // namespace dpr
