// Unit tests for the HybridLog allocator, hash index, and record layout —
// the latch-free substrate under FasterStore.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "faster/hash_index.h"
#include "faster/log_allocator.h"
#include "faster/record.h"

namespace dpr {
namespace {

TEST(RecordHeaderTest, SizeIsAlignedAndIncludesValue) {
  EXPECT_EQ(RecordHeader::SizeWith(0), 24u);
  EXPECT_EQ(RecordHeader::SizeWith(1), 32u);
  EXPECT_EQ(RecordHeader::SizeWith(8), 32u);
  EXPECT_EQ(RecordHeader::SizeWith(9), 40u);
}

TEST(RecordHeaderTest, FlagsAreAtomicAndSticky) {
  RecordHeader rec;
  EXPECT_FALSE(rec.invalid());
  rec.SetFlag(RecordHeader::kTombstone);
  rec.SetFlag(RecordHeader::kInvalid);
  EXPECT_TRUE(rec.tombstone());
  EXPECT_TRUE(rec.invalid());
}

TEST(LogAllocatorTest, SequentialAllocationsAreContiguous) {
  LogAllocator log(/*page_bits=*/16);
  const LogAddress a = log.Allocate(32);
  const LogAddress b = log.Allocate(64);
  EXPECT_EQ(a, LogAllocator::kBeginAddress);
  EXPECT_EQ(b, a + 32);
  EXPECT_EQ(log.tail(), b + 64);
}

TEST(LogAllocatorTest, AllocationsAreZeroed) {
  LogAllocator log(/*page_bits=*/12);
  const LogAddress a = log.Allocate(256);
  const char* p = log.Resolve(a);
  for (int i = 0; i < 256; ++i) ASSERT_EQ(p[i], 0);
}

TEST(LogAllocatorTest, RecordsNeverSpanPages) {
  LogAllocator log(/*page_bits=*/12);  // 4 KiB pages
  const uint64_t page = 4096;
  for (int i = 0; i < 200; ++i) {
    const uint64_t size = 24 + 8 * (i % 100);
    const LogAddress a = log.Allocate(size);
    EXPECT_EQ(a >> 12, (a + size - 1) >> 12)
        << "allocation spans a page boundary";
    (void)page;
  }
}

TEST(LogAllocatorTest, ConcurrentAllocationsDisjoint) {
  LogAllocator log(/*page_bits=*/14);
  constexpr int kThreads = 4;
  constexpr int kAllocsPerThread = 5000;
  std::vector<std::vector<std::pair<LogAddress, uint64_t>>> ranges(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(t);
      for (int i = 0; i < kAllocsPerThread; ++i) {
        const uint64_t size = 24 + 8 * rng.Uniform(16);
        ranges[t].push_back({log.Allocate(size), size});
      }
    });
  }
  for (auto& t : threads) t.join();
  // No two allocations overlap.
  std::vector<std::pair<LogAddress, uint64_t>> all;
  for (auto& r : ranges) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  for (size_t i = 1; i < all.size(); ++i) {
    ASSERT_GE(all[i].first, all[i - 1].first + all[i - 1].second)
        << "overlapping allocations";
  }
}

TEST(LogAllocatorTest, RestoreToPositionsTail) {
  LogAllocator log(/*page_bits=*/12);
  log.Allocate(64);
  log.Clear();
  EXPECT_EQ(log.tail(), LogAllocator::kBeginAddress);
  log.RestoreTo(10000);
  EXPECT_EQ(log.tail(), 10000u);
  // Restored region is resolvable.
  EXPECT_NE(log.Resolve(9000), nullptr);
}

TEST(HashIndexTest, RoundsBucketsToPowerOfTwo) {
  HashIndex index(1000);
  EXPECT_EQ(index.bucket_count(), 1024u);
  HashIndex tiny(1);
  EXPECT_EQ(tiny.bucket_count(), 16u);
}

TEST(HashIndexTest, HeadsStartNull) {
  HashIndex index(64);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(index.Head(k), kNullAddress);
  }
}

TEST(HashIndexTest, CasInstallsAndDetectsRaces) {
  HashIndex index(64);
  LogAddress expected = kNullAddress;
  EXPECT_TRUE(index.CasHead(7, &expected, 100));
  EXPECT_EQ(index.Head(7), 100u);
  // Stale expected fails and reports the current head.
  expected = kNullAddress;
  EXPECT_FALSE(index.CasHead(7, &expected, 200));
  EXPECT_EQ(expected, 100u);
  EXPECT_TRUE(index.CasHead(7, &expected, 200));
  EXPECT_EQ(index.Head(7), 200u);
}

TEST(HashIndexTest, ConcurrentCasOneWinnerPerRound) {
  HashIndex index(16);
  constexpr int kThreads = 4;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      LogAddress expected = kNullAddress;
      if (index.CasHead(42, &expected, 1000 + t)) wins.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wins.load(), 1);
}

}  // namespace
}  // namespace dpr
