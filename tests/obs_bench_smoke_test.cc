// End-to-end --json_out smoke: runs a real bench binary in quick mode and
// validates the artifact it writes — it must parse, carry the
// {bench, config, series[], histograms{}} schema, and its histograms must
// round-trip through the JSON codec. The binary path is injected by CMake
// ($<TARGET_FILE:bench_fig13_tradeoff>).
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/histogram.h"
#include "gtest/gtest.h"
#include "obs/histogram_json.h"
#include "obs/json.h"

namespace dpr {
namespace {

TEST(ObsBenchSmokeTest, QuickBenchEmitsValidArtifact) {
  const std::string dir = ::testing::TempDir() + "obs_smoke_" +
                          std::to_string(::getpid());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string cmd =
      std::string(DPR_SMOKE_BENCH_PATH) +
      " --quick=true --duration_ms=250 --num_keys=5000 --client_threads=1"
      " --json_out=" + dir + " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  const std::string path = dir + "/BENCH_fig13_tradeoff.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();

  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(buf.str(), &doc).ok());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("bench")->string_value(), "fig13_tradeoff");

  const JsonValue* config = doc.Find("config");
  ASSERT_TRUE(config != nullptr && config->is_object());
  EXPECT_TRUE(config->Find("quick")->bool_value());
  EXPECT_EQ(config->Find("num_keys")->uint_value(), 5000u);

  // At least the throughput series, with numeric (x, y) points.
  const JsonValue* series = doc.Find("series");
  ASSERT_TRUE(series != nullptr && series->is_array());
  ASSERT_FALSE(series->array().empty());
  bool found_batch = false;
  for (const JsonValue& s : series->array()) {
    ASSERT_NE(s.Find("name"), nullptr);
    const JsonValue* points = s.Find("points");
    ASSERT_TRUE(points != nullptr && points->is_array());
    for (const JsonValue& p : points->array()) {
      ASSERT_TRUE(p.Find("x") != nullptr && p.Find("x")->is_number());
      ASSERT_TRUE(p.Find("y") != nullptr && p.Find("y")->is_number());
    }
    if (s.Find("name")->string_value() == "batch") {
      found_batch = true;
      EXPECT_FALSE(points->array().empty());
    }
  }
  EXPECT_TRUE(found_batch);

  // Latency histograms round-trip through the codec and merge cleanly.
  const JsonValue* hists = doc.Find("histograms");
  ASSERT_TRUE(hists != nullptr && hists->is_object());
  ASSERT_FALSE(hists->object().empty());
  Histogram merged;
  uint64_t expected_count = 0;
  for (const auto& [name, value] : hists->object()) {
    Histogram h;
    ASSERT_TRUE(HistogramFromJson(value, &h).ok()) << name;
    EXPECT_EQ(h.count(), value.Find("count")->uint_value()) << name;
    expected_count += h.count();
    merged.Merge(h);
  }
  EXPECT_EQ(merged.count(), expected_count);

  // The registry snapshot rode along: bench totals and plane counters.
  const JsonValue* counters = doc.Find("counters");
  ASSERT_TRUE(counters != nullptr && counters->is_object());
  EXPECT_NE(counters->Find("bench.ops_completed"), nullptr);
}

}  // namespace
}  // namespace dpr
