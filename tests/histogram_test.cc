// Pins the exact percentile semantics of Histogram against a sorted-vector
// oracle: nearest-rank (value at 1-based rank ceil(p/100 * count)), with
// p = 0 answering the exact minimum and p = 100 the exact maximum. Also pins
// the Merge/AbsorbCounts edge case where an empty side's min_ sentinel (and
// zero max_) must not leak. The pre-fix code failed all three: p = 0
// returned the first occupied bucket's upper bound, and the `+0.5` cast
// rounded ranks to nearest instead of up (p = 54 over 10 samples answered
// rank 5, not 6).
#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"

namespace dpr {
namespace {

/// Nearest-rank oracle over the raw samples. The histogram quantizes values
/// into buckets, so it may answer up to one bucket width above the oracle —
/// bound that error precisely per value instead of asserting equality.
uint64_t OracleRank(std::vector<uint64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  rank = std::clamp<uint64_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

/// The largest value the histogram may legitimately report for `value`: the
/// upper bound of the bucket the value lands in.
uint64_t BucketCeil(uint64_t value) {
  return Histogram::BucketUpperBound(Histogram::BucketFor(value));
}

TEST(HistogramOracleTest, ExactSmallValuesMatchOracleExactly) {
  // Values < 32 get one bucket each, so the histogram must agree with the
  // oracle exactly at every integer percentile.
  Histogram h;
  std::vector<uint64_t> samples = {3, 1, 4, 1, 5, 9, 2, 6, 5, 30};
  for (uint64_t v : samples) h.Record(v);
  std::sort(samples.begin(), samples.end());
  for (int p = 0; p <= 100; ++p) {
    EXPECT_EQ(h.Percentile(p), OracleRank(samples, p)) << "p=" << p;
  }
}

TEST(HistogramOracleTest, RankRoundsUpNotToNearest) {
  // Ten distinct one-per-bucket values. p=54 -> rank ceil(5.4) = 6 -> value
  // 6. The pre-fix +0.5 cast computed rank 5 and answered 5.
  Histogram h;
  for (uint64_t v = 1; v <= 10; ++v) h.Record(v);
  EXPECT_EQ(h.Percentile(54), 6u);
  EXPECT_EQ(h.Percentile(50), 5u);
  EXPECT_EQ(h.Percentile(51), 6u);
  // Tiny p must clamp to rank 1 (pre-fix: rank 0, skipping to the first
  // occupied bucket regardless of its position).
  EXPECT_EQ(h.Percentile(0.001), 1u);
}

TEST(HistogramOracleTest, PZeroIsExactMinimum) {
  Histogram h;
  h.Record(1000);
  h.Record(2000);
  // 1000 lands in a bucket whose upper bound is above 1000; p=0 must answer
  // the recorded minimum, not that bound (pre-fix: 1023).
  ASSERT_GT(BucketCeil(1000), 1000u);
  EXPECT_EQ(h.Percentile(0), 1000u);
  EXPECT_EQ(h.min(), 1000u);
}

TEST(HistogramOracleTest, PHundredIsExactMaximum) {
  Histogram h;
  h.Record(1000);
  h.Record(123456);
  EXPECT_EQ(h.Percentile(100), 123456u);
  EXPECT_EQ(h.Percentile(100.0 + 1e-9), 123456u);
}

TEST(HistogramOracleTest, LargeValuesWithinOneBucketOfOracle) {
  Histogram h;
  Random rng(42);
  std::vector<uint64_t> samples;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.Uniform(1 << 20);
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double p : {0.0, 0.1, 1.0, 25.0, 50.0, 54.0, 90.0, 99.0, 99.9, 100.0}) {
    const uint64_t oracle = OracleRank(samples, p);
    const uint64_t got = h.Percentile(p);
    EXPECT_GE(got, oracle) << "p=" << p;
    EXPECT_LE(got, BucketCeil(oracle)) << "p=" << p;
  }
}

TEST(HistogramOracleTest, MergeEmptyOtherIsNoOp) {
  Histogram h;
  h.Record(7);
  h.Record(5000);
  Histogram empty;
  h.Merge(empty);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 5000u);
  EXPECT_EQ(h.Percentile(0), 7u);
  EXPECT_EQ(h.Percentile(100), 5000u);
}

TEST(HistogramOracleTest, MergeIntoEmptyAdoptsOther) {
  Histogram h;
  Histogram other;
  other.Record(11);
  other.Record(13);
  h.Merge(other);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 11u);
  EXPECT_EQ(h.max(), 13u);
  EXPECT_EQ(h.sum(), 24u);
}

TEST(HistogramOracleTest, AbsorbCountsIgnoresEmptyShard) {
  Histogram h;
  h.Record(100);
  // An idle ShardedHistogram shard: zero counts, min sentinel, zero max.
  std::vector<uint64_t> zeros(Histogram::kNumBuckets, 0);
  h.AbsorbCounts(zeros.data(), Histogram::kNumBuckets, /*count=*/0,
                 /*sum=*/0, /*min=*/~0ull, /*max=*/0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 100u);
}

TEST(HistogramOracleTest, AbsorbCountsRoundTripsMerge) {
  // AbsorbCounts over raw buckets must agree with Merge over the object.
  Histogram a;
  Histogram b;
  Random rng(7);
  for (int i = 0; i < 500; ++i) a.Record(rng.Uniform(100000));
  for (int i = 0; i < 300; ++i) b.Record(1 + rng.Uniform(1000));
  Histogram via_merge = a;
  via_merge.Merge(b);
  Histogram via_absorb = a;
  std::vector<uint64_t> counts(Histogram::kNumBuckets);
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    counts[i] = b.bucket_count(i);
  }
  via_absorb.AbsorbCounts(counts.data(), Histogram::kNumBuckets, b.count(),
                          b.sum(), b.min(), b.max());
  EXPECT_EQ(via_merge.count(), via_absorb.count());
  EXPECT_EQ(via_merge.sum(), via_absorb.sum());
  EXPECT_EQ(via_merge.min(), via_absorb.min());
  EXPECT_EQ(via_merge.max(), via_absorb.max());
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(via_merge.Percentile(p), via_absorb.Percentile(p)) << p;
  }
}

}  // namespace
}  // namespace dpr
