// Backend-parameterized transport conformance suite.
//
// Both TCP backends (epoll event loop, io_uring ring loop) must keep the
// same observable contracts: request/response framing, pipelining, the
// O(io_threads + executor_threads) server thread count, bounded-executor
// read throttling, torn-frame poisoning, partial-write recovery under
// send-buffer pressure, read-backpressure hysteresis, and client fault
// probes. Every test here runs once per backend; the io_uring instantiation
// skips cleanly when the kernel lacks the feature set (the skip message says
// why), so the suite stays green on old kernels while still proving parity
// where the ring exists.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/coding.h"
#include "fault/fault_plane.h"
#include "net/frame.h"
#include "net/tcp_net.h"
#include "obs/metrics.h"

namespace dpr {
namespace {

void Echo(Slice request, std::string* response) {
  response->assign(request.data(), request.size());
  response->append("!");
}

class NetConformanceTest : public ::testing::TestWithParam<NetBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == NetBackend::kIoUring && !NetUringSupported()) {
      GTEST_SKIP() << "io_uring transport unsupported here (needs multishot "
                      "accept/recv + provided buffer rings, kernel ~6.0+); "
                      "epoll instantiation covers this contract";
    }
  }

  std::unique_ptr<RpcServer> MakeServer(TcpServerOptions options = {}) {
    options.backend = GetParam();
    return MakeTcpServer(0, options);
  }

  std::unique_ptr<RpcConnection> Connect(const std::string& address) {
    std::unique_ptr<RpcConnection> conn;
    Status s = ConnectTcp(address, TcpClientOptions{GetParam()}, &conn);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return conn;
  }
};

TEST_P(NetConformanceTest, RequestResponse) {
  auto server = MakeServer();
  ASSERT_TRUE(server->Start(Echo).ok());
  auto conn = Connect(server->address());
  ASSERT_NE(conn, nullptr);
  std::string response;
  ASSERT_TRUE(conn->Call("tcp ping", &response).ok());
  EXPECT_EQ(response, "tcp ping!");
  conn.reset();
  server->Stop();
}

TEST_P(NetConformanceTest, PipelinedCallsMatchResponses) {
  auto server = MakeServer();
  ASSERT_TRUE(server->Start([](Slice req, std::string* resp) {
    resp->assign(req.data(), req.size());
  }).ok());
  auto conn = Connect(server->address());
  ASSERT_NE(conn, nullptr);
  std::atomic<int> done{0};
  std::atomic<bool> mismatch{false};
  constexpr int kCalls = 200;
  for (int i = 0; i < kCalls; ++i) {
    const std::string msg = "msg" + std::to_string(i);
    conn->CallAsync(msg, [&, msg](Status s, Slice resp) {
      if (!s.ok() || resp != Slice(msg)) mismatch.store(true);
      done.fetch_add(1);
    });
  }
  Stopwatch timer;
  while (done.load() < kCalls && timer.ElapsedMillis() < 10000) {
    SleepMicros(1000);
  }
  EXPECT_EQ(done.load(), kCalls);
  EXPECT_FALSE(mismatch.load());
  conn.reset();
  server->Stop();
}

TEST_P(NetConformanceTest, MultipleClients) {
  auto server = MakeServer();
  ASSERT_TRUE(server->Start(Echo).ok());
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      auto conn = Connect(server->address());
      ASSERT_NE(conn, nullptr);
      for (int i = 0; i < 50; ++i) {
        std::string response;
        ASSERT_TRUE(conn->Call("c" + std::to_string(c), &response).ok());
        ASSERT_EQ(response, "c" + std::to_string(c) + "!");
      }
    });
  }
  for (auto& t : clients) t.join();
  server->Stop();
}

// --- fixed-thread-count machinery -----------------------------------------
//
// These helpers talk the wire format directly over raw blocking sockets so
// opening N connections adds zero threads on the *client* side; any growth
// in the process's thread count therefore belongs to the server.

int CountProcessThreads() {
  FILE* f = fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int threads = -1;
  while (fgets(line, sizeof(line), f) != nullptr) {
    if (sscanf(line, "Threads: %d", &threads) == 1) break;
  }
  fclose(f);
  return threads;
}

int RawConnect(const std::string& address) {
  const size_t colon = address.rfind(':');
  const int port = atoi(address.c_str() + colon + 1);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, address.substr(0, colon).c_str(), &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << strerror(errno);
  return fd;
}

// One synchronous request/response in the transport's frame format:
// [u32 payload-length][u64 request-id][payload].
void RawCall(int fd, uint64_t id, const std::string& payload,
             std::string* echo) {
  std::string frame;
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed64(&frame, id);
  frame.append(payload);
  ASSERT_TRUE(internal::TcpWriteFully(fd, frame.data(), frame.size()).ok());
  char header[12];
  ASSERT_TRUE(internal::TcpReadFully(fd, header, sizeof(header)).ok());
  const uint32_t len = DecodeFixed32(header);
  ASSERT_EQ(DecodeFixed64(header + 4), id);
  echo->resize(len);
  if (len > 0) {
    ASSERT_TRUE(internal::TcpReadFully(fd, echo->data(), len).ok());
  }
}

// The point of the loop architecture, on either backend: server-side thread
// count is O(io_threads + executor_threads), not O(connections). 64 live
// connections must not add a single thread beyond what the first used.
TEST_P(NetConformanceTest, ServerThreadCountIndependentOfConnectionCount) {
  auto server = MakeServer(TcpServerOptions{.io_threads = 2,
                                            .executor_threads = 2});
  ASSERT_TRUE(server->Start(Echo).ok());

  std::vector<int> fds;
  fds.push_back(RawConnect(server->address()));
  std::string echo;
  RawCall(fds[0], 1, "warmup", &echo);
  EXPECT_EQ(echo, "warmup!");
  const int baseline = CountProcessThreads();
  ASSERT_GT(baseline, 0);

  constexpr int kConns = 64;
  for (int i = 1; i < kConns; ++i) {
    fds.push_back(RawConnect(server->address()));
    RawCall(fds.back(), static_cast<uint64_t>(i) + 1,
            "conn" + std::to_string(i), &echo);
    ASSERT_EQ(echo, "conn" + std::to_string(i) + "!");
  }
  // Every connection is live and has served traffic; thread count is flat.
  EXPECT_EQ(CountProcessThreads(), baseline);

  for (int fd : fds) close(fd);
  server->Stop();
}

// A tiny executor intake forces the loop thread to park in Submit while
// the queue is full (the bounded-intake read throttle); every pipelined
// request must still complete.
TEST_P(NetConformanceTest, SmallExecutorStillServes) {
  auto server = MakeServer(TcpServerOptions{.io_threads = 1,
                                            .executor_threads = 1,
                                            .executor_queue_capacity = 4});
  ASSERT_TRUE(server->Start(Echo).ok());
  auto conn = Connect(server->address());
  ASSERT_NE(conn, nullptr);
  std::atomic<int> done{0};
  constexpr int kCalls = 100;  // far more than the executor's intake of 4
  for (int i = 0; i < kCalls; ++i) {
    conn->CallAsync("q" + std::to_string(i), [&](Status s, Slice) {
      EXPECT_TRUE(s.ok());
      done.fetch_add(1);
    });
  }
  Stopwatch timer;
  while (done.load() < kCalls && timer.ElapsedMillis() < 10000) {
    SleepMicros(1000);
  }
  EXPECT_EQ(done.load(), kCalls);
  conn.reset();
  server->Stop();
}

// End-to-end over the real framing layer: many pipelined frames large
// enough to overflow the send buffer repeatedly must all arrive intact and
// matched to their request ids. (On the uring backend the 128 KiB responses
// also span multiple provided buffers, exercising the carry path.)
TEST_P(NetConformanceTest, FramingSurvivesSendBufferPressure) {
  auto server = MakeServer();
  ASSERT_TRUE(server->Start([](Slice request, std::string* response) {
    response->assign(request.data(), request.size());
  }).ok());
  auto conn = Connect(server->address());
  ASSERT_NE(conn, nullptr);

  constexpr int kCalls = 64;
  const std::string blob(128 * 1024, 'z');
  std::atomic<int> done{0};
  std::vector<Status> statuses(kCalls);
  std::vector<std::string> echoes(kCalls);
  for (int i = 0; i < kCalls; ++i) {
    std::string request = std::to_string(i) + ":" + blob;
    conn->CallAsync(std::move(request), [&, i](Status s, Slice response) {
      statuses[i] = s;
      echoes[i].assign(response.data(), response.size());
      done.fetch_add(1);
    });
  }
  for (int spins = 0; done.load() < kCalls && spins < 10000; ++spins) {
    usleep(1000);
  }
  ASSERT_EQ(done.load(), kCalls);
  for (int i = 0; i < kCalls; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << i << ": " << statuses[i].ToString();
    EXPECT_EQ(echoes[i], std::to_string(i) + ":" + blob) << i;
  }
  conn.reset();
  server->Stop();
}

// A frame torn mid-flush (bytes on the wire, then a hard failure) must
// poison the client connection on either backend: the peer's stream
// position is corrupt, so the pending call fails and later calls are
// rejected outright instead of desynchronizing the stream. Driven over a
// socketpair with deliberately tiny kernel buffers so the flush reliably
// parks mid-frame.
TEST_P(NetConformanceTest, TornFrameMidFlushPoisonsConnection) {
  Counter* poisoned = MetricsRegistry::Default().counter("net.tcp.poisoned");
  const uint64_t poisoned_before = poisoned->value();

  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0) << strerror(errno);
  int tiny = 1;  // the kernel clamps to its floor (~4KB total)
  for (int fd : fds) {
    ASSERT_EQ(setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny)), 0);
    ASSERT_EQ(setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny)), 0);
  }
  std::unique_ptr<RpcConnection> conn =
      internal::WrapClientFdForTest(fds[0], GetParam());
  ASSERT_NE(conn, nullptr);

  // Far larger than the shrunken buffers: the flush lands part of the
  // frame, then parks waiting for buffer space that never comes.
  std::atomic<int> failures{0};
  conn->CallAsync(std::string(1024 * 1024, 'T'), [&](Status s, Slice) {
    EXPECT_FALSE(s.ok());
    failures.fetch_add(1);
  });
  usleep(20 * 1000);   // let the partial write happen
  close(fds[1]);       // mid-frame hard failure (EPIPE/ECONNRESET)

  for (int spins = 0; failures.load() < 1 && spins < 10000; ++spins) {
    usleep(1000);
  }
  ASSERT_EQ(failures.load(), 1);
  // The read side may fail the pending call a beat before the flush path
  // hits the torn-frame check; wait for the poison itself.
  for (int spins = 0;
       poisoned->value() < poisoned_before + 1 && spins < 10000; ++spins) {
    usleep(1000);
  }
  EXPECT_EQ(poisoned->value(), poisoned_before + 1);

  // The poisoned connection rejects new calls immediately.
  std::atomic<bool> rejected{false};
  conn->CallAsync("after poison", [&](Status s, Slice) {
    EXPECT_FALSE(s.ok());
    rejected.store(true);
  });
  for (int spins = 0; !rejected.load() && spins < 10000; ++spins) {
    usleep(1000);
  }
  EXPECT_TRUE(rejected.load());
}

// Read-backpressure integration: a server whose per-connection output
// budget is far smaller than the response volume must pause reads above
// the budget and resume below half of it (ReadGate) — and, crucially, every
// pipelined call still completes once the client drains.
TEST_P(NetConformanceTest, BackpressureHysteresisDrainsCompletely) {
  auto server = MakeServer(TcpServerOptions{
      .io_threads = 1,
      .executor_threads = 2,
      .max_output_queue_bytes = 32 * 1024});  // ~1.5 responses worth
  const std::string blob(20 * 1024, 'b');
  ASSERT_TRUE(server->Start([&blob](Slice req, std::string* resp) {
    resp->assign(req.data(), req.size());
    resp->append(blob);
  }).ok());
  auto conn = Connect(server->address());
  ASSERT_NE(conn, nullptr);

  constexpr int kCalls = 64;  // >1 MiB of responses through a 32 KiB budget
  std::atomic<int> done{0};
  std::atomic<bool> bad{false};
  for (int i = 0; i < kCalls; ++i) {
    const std::string tag = "bp" + std::to_string(i);
    conn->CallAsync(tag, [&, tag](Status s, Slice resp) {
      if (!s.ok() || resp.view() != tag + blob) bad.store(true);
      done.fetch_add(1);
    });
  }
  Stopwatch timer;
  while (done.load() < kCalls && timer.ElapsedMillis() < 15000) {
    SleepMicros(1000);
  }
  EXPECT_EQ(done.load(), kCalls);
  EXPECT_FALSE(bad.load());
  conn.reset();
  server->Stop();
}

// Client fault probes must fire on the submit path of whichever backend
// carries the call: an armed net.drop consumes the call with TimedOut
// before any bytes reach the wire.
TEST_P(NetConformanceTest, ClientFaultProbesFireOnSubmitPath) {
  auto server = MakeServer();
  ASSERT_TRUE(server->Start(Echo).ok());
  auto conn = Connect(server->address());
  ASSERT_NE(conn, nullptr);

  ScopedFaultPlane plane(/*seed=*/7);
  FaultPlane::Instance().Arm(
      {.point = faults::kNetDrop, .probability = 1.0, .max_fires = 1});

  std::string response;
  Status dropped = conn->Call("will drop", &response);
  EXPECT_TRUE(dropped.IsTimedOut()) << dropped.ToString();
  EXPECT_GE(FaultPlane::Instance().fires(faults::kNetDrop), 1u);

  // The rule is exhausted (max_fires = 1): the connection still works.
  ASSERT_TRUE(conn->Call("after drop", &response).ok());
  EXPECT_EQ(response, "after drop!");
  conn.reset();
  server->Stop();
}

// An explicit kIoUring request never yields a null transport: on kernels
// without support it falls back to epoll and counts the fallback.
TEST(NetBackendTest, ExplicitUringRequestAlwaysServes) {
  Counter* fallbacks =
      MetricsRegistry::Default().counter("net.uring.fallbacks");
  const uint64_t before = fallbacks->value();
  auto server =
      MakeTcpServer(0, TcpServerOptions{.backend = NetBackend::kIoUring});
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->Start(Echo).ok());
  std::unique_ptr<RpcConnection> conn;
  ASSERT_TRUE(ConnectTcp(server->address(),
                         TcpClientOptions{NetBackend::kIoUring}, &conn)
                  .ok());
  std::string response;
  ASSERT_TRUE(conn->Call("ping", &response).ok());
  EXPECT_EQ(response, "ping!");
  conn.reset();
  server->Stop();
  if (!NetUringSupported()) {
    EXPECT_GE(fallbacks->value(), before + 2);  // server + client
  } else {
    EXPECT_EQ(fallbacks->value(), before);
  }
}

TEST(NetBackendTest, ResolveNeverReturnsAuto) {
  for (NetBackend b :
       {NetBackend::kAuto, NetBackend::kEpoll, NetBackend::kIoUring}) {
    const NetBackend resolved = ResolveNetBackend(b);
    EXPECT_NE(resolved, NetBackend::kAuto);
    if (!NetUringSupported()) EXPECT_EQ(resolved, NetBackend::kEpoll);
  }
  EXPECT_EQ(ResolveNetBackend(NetBackend::kEpoll), NetBackend::kEpoll);
}

// The hysteresis itself, as the single shared constant both backends use:
// pause strictly above the budget, stay paused until strictly below half.
TEST(ReadGateTest, PauseResumeHysteresis) {
  internal::ReadGate gate;
  constexpr size_t kBudget = 1000;
  static_assert(internal::ResumeReadsBelow(kBudget) == kBudget / 2,
                "resume threshold is half the budget");

  EXPECT_FALSE(gate.Update(kBudget, kBudget));  // at budget: not paused
  EXPECT_FALSE(gate.paused);
  EXPECT_TRUE(gate.Update(kBudget + 1, kBudget));  // above: pause flips
  EXPECT_TRUE(gate.paused);
  // Draining to between half and full budget must NOT resume (no flapping).
  EXPECT_FALSE(gate.Update(kBudget / 2, kBudget));
  EXPECT_TRUE(gate.paused);
  EXPECT_FALSE(gate.Update(kBudget - 1, kBudget));
  EXPECT_TRUE(gate.paused);
  // Strictly below half: resume flips once.
  EXPECT_TRUE(gate.Update(kBudget / 2 - 1, kBudget));
  EXPECT_FALSE(gate.paused);
  EXPECT_FALSE(gate.Update(0, kBudget));
}

std::string BackendName(const ::testing::TestParamInfo<NetBackend>& info) {
  return info.param == NetBackend::kIoUring ? "IoUring" : "Epoll";
}

INSTANTIATE_TEST_SUITE_P(Backends, NetConformanceTest,
                         ::testing::Values(NetBackend::kEpoll,
                                           NetBackend::kIoUring),
                         BackendName);

}  // namespace
}  // namespace dpr
