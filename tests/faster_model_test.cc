// Randomized model checking for FasterStore: a reference std::map tracks the
// expected state per checkpoint token; random interleavings of operations,
// checkpoints, in-memory rollbacks, and crash-recoveries must always leave
// the store equal to the model at the restored token.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/random.h"
#include "faster/faster_store.h"

namespace dpr {
namespace {

class FasterModelFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FasterModelFuzz, RandomOpsCheckpointsRollbacksCrashes) {
  FasterOptions options;
  options.index_buckets = 256;  // force chain collisions
  options.page_bits = 14;       // small pages: exercise pads + spans
  options.log_device = std::make_unique<MemoryDevice>();
  options.meta_device = std::make_unique<MemoryDevice>();
  FasterStore store(std::move(options));

  Random rng(GetParam());
  constexpr uint64_t kKeySpace = 128;

  std::map<uint64_t, uint64_t> live;                       // current state
  std::map<Version, std::map<uint64_t, uint64_t>> images;  // token -> state
  images[0] = {};

  auto session = store.NewSession();
  int checkpoints = 0;
  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.80) {
      // Mutation: upsert / rmw / delete.
      const uint64_t key = rng.Uniform(kKeySpace);
      const double kind = rng.NextDouble();
      if (kind < 0.6) {
        const uint64_t value = rng.Next();
        ASSERT_TRUE(session->Upsert(key, value).ok());
        live[key] = value;
      } else if (kind < 0.85) {
        uint64_t result = 0;
        ASSERT_TRUE(session->Rmw(key, 3, &result).ok());
        live[key] = live.count(key) ? live[key] + 3 : 3;
        ASSERT_EQ(result, live[key]);
      } else {
        ASSERT_TRUE(session->Delete(key).ok());
        live.erase(key);
      }
    } else if (roll < 0.86) {
      // Point read must match the model exactly.
      const uint64_t key = rng.Uniform(kKeySpace);
      uint64_t value = 0;
      Status s = session->Read(key, &value);
      if (live.count(key)) {
        ASSERT_TRUE(s.ok()) << s.ToString();
        ASSERT_EQ(value, live[key]);
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else if (roll < 0.93 && checkpoints < 60) {
      // Checkpoint: capture the current model image at the token.
      Version token;
      Status s = store.PerformCheckpoint(store.CurrentVersion() + 1, nullptr,
                                         &token);
      if (s.ok()) {
        store.WaitForCheckpoints();
        images[token] = live;
        ++checkpoints;
      } else {
        ASSERT_TRUE(s.IsBusy()) << s.ToString();
      }
    } else if (roll < 0.97) {
      // In-memory rollback to a random earlier durable token.
      if (images.size() > 1) {
        auto it = images.begin();
        std::advance(it, rng.Uniform(images.size()));
        Version restored;
        session.reset();  // rollback is invoked quiesced here
        ASSERT_TRUE(store.RestoreCheckpoint(it->first, &restored).ok());
        session = store.NewSession();
        ASSERT_LE(restored, it->first);
        live = images.at(restored);
        // Tokens above the restore point are gone forever.
        images.erase(images.upper_bound(restored), images.end());
      }
    } else {
      // Crash: volatile state lost; recover to the latest durable token.
      session.reset();
      store.SimulateCrash();
      Version restored;
      ASSERT_TRUE(store.RestoreCheckpoint(~0ULL, &restored).ok());
      session = store.NewSession();
      ASSERT_TRUE(images.count(restored))
          << "recovered to unknown token " << restored;
      live = images.at(restored);
      images.erase(images.upper_bound(restored), images.end());
    }
  }

  // Final audit: every key agrees with the model.
  for (uint64_t key = 0; key < kKeySpace; ++key) {
    uint64_t value = 0;
    Status s = session->Read(key, &value);
    if (live.count(key)) {
      ASSERT_TRUE(s.ok()) << "key " << key << ": " << s.ToString();
      ASSERT_EQ(value, live[key]) << "key " << key;
    } else {
      ASSERT_TRUE(s.IsNotFound()) << "key " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FasterModelFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dpr
