// Protocol-level property tests: random multi-session traces over multiple
// DprWorkers (FASTER-backed) with random checkpoint timing and failures.
// Invariants checked:
//   (P1) commit points are monotone per session;
//   (P2) every DPR cut is closed under dependency (validated against an
//        independently-maintained precedence graph);
//   (P3) after any failure, each session's surviving prefix covers at least
//        everything previously reported committed (guarantees never renege);
//   (P4) progress: with repeated commits, every operation is eventually
//        accounted for — committed in the prefix or rolled back by a
//        failure (the paper's Progress property, §4.3).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/random.h"
#include "dpr/cluster_manager.h"
#include "dpr/finder.h"
#include "dpr/session.h"
#include "dpr/worker.h"
#include "faster/faster_store.h"

namespace dpr {
namespace {

struct Rig {
  std::unique_ptr<MetadataStore> metadata;
  std::unique_ptr<DprFinder> finder;
  std::unique_ptr<ClusterManager> manager;
  std::vector<std::unique_ptr<FasterStore>> stores;
  std::vector<std::unique_ptr<DprWorker>> workers;

  explicit Rig(int n, bool graph_finder) {
    metadata = std::make_unique<MetadataStore>(
        std::make_unique<MemoryDevice>());
    EXPECT_TRUE(metadata->Recover().ok());
    finder = MakeDprFinder(
        {.kind = graph_finder ? FinderKind::kExact : FinderKind::kApprox,
         .metadata = metadata.get()});
    manager = std::make_unique<ClusterManager>(finder.get());
    for (int i = 0; i < n; ++i) {
      FasterOptions fo;
      fo.index_buckets = 256;
      fo.log_device = std::make_unique<MemoryDevice>();
      fo.meta_device = std::make_unique<MemoryDevice>();
      stores.push_back(std::make_unique<FasterStore>(std::move(fo)));
      DprWorkerOptions wo;
      wo.worker_id = i;
      wo.finder = finder.get();
      wo.checkpoint_interval_us = 0;  // driven manually for determinism
      workers.push_back(
          std::make_unique<DprWorker>(stores.back().get(), wo));
      EXPECT_TRUE(workers.back()->Start().ok());
      manager->RegisterWorker(workers.back().get());
    }
  }
};

// One client op through worker `w` on session `s`, bookkeeping the session.
void DoOp(Rig& rig, DprSession& session, WorkerId w, uint64_t key) {
  DprRequestHeader header = session.MakeHeader();
  Version version = kInvalidVersion;
  Status admit = rig.workers[w]->BeginBatch(header, &version);
  if (admit.ok()) {
    auto store_session = rig.stores[w]->NewSession();
    EXPECT_TRUE(store_session->Upsert(key, key).ok());
    rig.workers[w]->EndBatch();
    DprResponseHeader resp;
    rig.workers[w]->FillResponse(version,
                                 DprResponseHeader::BatchStatus::kOk, &resp);
    session.RecordBatch(w, 1, resp);
  } else {
    DprResponseHeader resp;
    rig.workers[w]->FillResponse(
        kInvalidVersion,
        admit.IsAborted() ? DprResponseHeader::BatchStatus::kWorldLineShift
                          : DprResponseHeader::BatchStatus::kRetryLater,
        &resp);
    DprResponseHeader vacuous;
    session.RecordBatch(w, 1, vacuous);  // failed op commits vacuously
    session.ObserveWatermark(w, resp);
  }
}

void Ping(Rig& rig, DprSession& session, WorkerId w) {
  DprRequestHeader header = session.MakeHeader();
  Version version = kInvalidVersion;
  if (rig.workers[w]->BeginBatch(header, &version).ok()) {
    rig.workers[w]->EndBatch();
    DprResponseHeader resp;
    rig.workers[w]->FillResponse(version,
                                 DprResponseHeader::BatchStatus::kOk, &resp);
    session.ObserveWatermark(w, resp);
  }
}

// Independent dependency tracker: for each (worker, version), the set of
// (worker, version) pairs it must not commit without.
using Graph = std::map<WorkerVersion, DependencySet>;

class DprProtocolFuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(DprProtocolFuzz, InvariantsHoldUnderRandomTraces) {
  const auto [seed, graph_finder] = GetParam();
  Random rng(seed);
  constexpr int kWorkers = 3;
  constexpr int kSessions = 4;
  Rig rig(kWorkers, graph_finder);

  std::vector<std::unique_ptr<DprSession>> sessions;
  for (int i = 0; i < kSessions; ++i) {
    sessions.push_back(std::make_unique<DprSession>(i));
  }
  std::vector<uint64_t> last_commit_point(kSessions, 0);
  std::vector<uint64_t> rolled_back(kSessions, 0);
  // Shadow graph: session's last touched (worker,version) feeds edges.
  Graph shadow;
  std::vector<WorkerVersion> session_last(kSessions,
                                          WorkerVersion{kInvalidWorker, 0});

  for (int step = 0; step < 1200; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.70) {
      const int si = static_cast<int>(rng.Uniform(kSessions));
      const WorkerId w = static_cast<WorkerId>(rng.Uniform(kWorkers));
      DprSession& session = *sessions[si];
      if (session.needs_failure_handling()) continue;
      const Version before = rig.stores[w]->CurrentVersion();
      DoOp(rig, session, w, rng.Uniform(64));
      const Version v = rig.stores[w]->CurrentVersion();
      ASSERT_GE(v, before);
      // Record the shadow dependency edge.
      const WorkerVersion now{w, v};
      if (session_last[si].worker != kInvalidWorker &&
          !(session_last[si] == now)) {
        MergeDependency(&shadow[now],
                        session_last[si]);
      }
      session_last[si] = now;
    } else if (roll < 0.85) {
      const WorkerId w = static_cast<WorkerId>(rng.Uniform(kWorkers));
      Status s = rig.workers[w]->TryCommit();
      ASSERT_TRUE(s.ok() || s.IsBusy()) << s.ToString();
      rig.stores[w]->WaitForCheckpoints();
    } else if (roll < 0.97) {
      ASSERT_TRUE(rig.finder->ComputeCut().ok());
      // (P2) the cut is dependency-closed w.r.t. the shadow graph.
      DprCut cut;
      rig.finder->GetCut(nullptr, &cut);
      for (const auto& [wv, deps] : shadow) {
        if (wv.version <= CutVersion(cut, wv.worker)) {
          for (const auto& [dw, dv] : deps) {
            ASSERT_LE(dv, CutVersion(cut, dw))
                << "cut includes " << wv.worker << "-" << wv.version
                << " but not its dependency " << dw << "-" << dv;
          }
        }
      }
      // (P1) commit points are monotone.
      for (int si = 0; si < kSessions; ++si) {
        for (WorkerId w = 0; w < kWorkers; ++w) Ping(rig, *sessions[si], w);
        const uint64_t point = sessions[si]->GetCommitPoint().prefix_end;
        ASSERT_GE(point, last_commit_point[si]) << "session " << si;
        last_commit_point[si] = point;
      }
    } else {
      // Failure of a random worker.
      const WorkerId victim = static_cast<WorkerId>(rng.Uniform(kWorkers));
      ASSERT_TRUE(rig.manager->HandleFailure({victim}).ok());
      WorldLine wl;
      DprCut cut;
      rig.manager->GetRecoveryInfo(&wl, &cut);
      for (int si = 0; si < kSessions; ++si) {
        const uint64_t issued = sessions[si]->next_seqno();
        const auto survivors = sessions[si]->HandleFailure(wl, cut);
        // (P3) never renege on a reported guarantee.
        ASSERT_GE(survivors.prefix_end, last_commit_point[si])
            << "session " << si << " lost committed ops";
        rolled_back[si] +=
            issued - survivors.prefix_end + survivors.excluded.size();
        last_commit_point[si] = survivors.prefix_end;
        session_last[si] = WorkerVersion{kInvalidWorker, 0};
      }
      // Rolled-back shadow edges can never commit; drop them.
      for (auto it = shadow.begin(); it != shadow.end();) {
        if (it->first.version > CutVersion(cut, it->first.worker)) {
          it = shadow.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  // (P4) progress: commit everything outstanding, then every session's
  // entire order must be covered.
  for (int round = 0; round < 200; ++round) {
    for (WorkerId w = 0; w < kWorkers; ++w) {
      (void)rig.workers[w]->TryCommit();
      rig.stores[w]->WaitForCheckpoints();
    }
    ASSERT_TRUE(rig.finder->ComputeCut().ok());
    bool all_done = true;
    for (int si = 0; si < kSessions; ++si) {
      for (WorkerId w = 0; w < kWorkers; ++w) Ping(rig, *sessions[si], w);
      const auto point = sessions[si]->GetCommitPoint();
      // Every op is accounted for: committed in the prefix or rolled back
      // (rolled-back ops can be double-counted when the prefix later jumps
      // their seqno gap, hence >=).
      if (point.prefix_end + rolled_back[si] < sessions[si]->next_seqno() ||
          !point.excluded.empty()) {
        all_done = false;
      }
    }
    if (all_done) return;
  }
  FAIL() << "operations never committed (progress violation)";
}

INSTANTIATE_TEST_SUITE_P(
    Traces, DprProtocolFuzz,
    ::testing::Combine(::testing::Values(11, 22, 33, 44, 55),
                       ::testing::Bool()),
    [](const auto& param_info) {
      return std::string("seed") +
             std::to_string(std::get<0>(param_info.param)) +
             (std::get<1>(param_info.param) ? "_graph" : "_simple");
    });

}  // namespace
}  // namespace dpr
