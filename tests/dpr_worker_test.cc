#include "dpr/worker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <memory>
#include "common/sync.h"

#include "dpr/finder.h"

namespace dpr {
namespace {

/// Deterministic StateObject for protocol tests: versioned counter with
/// manually-released checkpoints.
class FakeStateObject : public StateObject {
 public:
  Status PerformCheckpoint(Version target, PersistCallback cb,
                           Version* out_token) override {
    MutexLock guard(mu_);
    if (pending_.has_value()) return Status::Busy("in flight");
    const Version token = version_;
    if (target <= token) return Status::InvalidArgument("bad target");
    version_ = target;
    pending_ = std::make_pair(token, std::move(cb));
    if (out_token != nullptr) *out_token = token;
    return Status::OK();
  }

  /// Makes the in-flight checkpoint durable.
  void ReleaseCheckpoint() {
    std::pair<Version, PersistCallback> job;
    {
      MutexLock guard(mu_);
      if (!pending_.has_value()) return;
      job = std::move(*pending_);
      pending_.reset();
      durable_ = job.first;
    }
    if (job.second) job.second(job.first);
  }

  Status RestoreCheckpoint(Version version, Version* restored) override {
    // Note: an in-flight checkpoint is deliberately left pending so tests
    // can exercise stale persistence callbacks that land after a rollback.
    MutexLock guard(mu_);
    restored_to_ = std::min(version, durable_);
    version_ = version_ + 1;
    if (restored != nullptr) *restored = restored_to_;
    return Status::OK();
  }

  Version CurrentVersion() const override {
    MutexLock guard(mu_);
    return version_;
  }

  void SimulateCrash() override {
    MutexLock guard(mu_);
    crashed_ = true;
  }

  Version restored_to() const {
    MutexLock guard(mu_);
    return restored_to_;
  }
  bool crashed() const {
    MutexLock guard(mu_);
    return crashed_;
  }

 private:
  mutable Mutex mu_;
  Version version_ = 1;
  Version durable_ = 0;
  Version restored_to_ = 0;
  bool crashed_ = false;
  std::optional<std::pair<Version, PersistCallback>> pending_;
};

class DprWorkerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metadata_ =
        std::make_unique<MetadataStore>(std::make_unique<MemoryDevice>());
    ASSERT_TRUE(metadata_->Recover().ok());
    finder_ = MakeDprFinder(
        {.kind = FinderKind::kExact, .metadata = metadata_.get()});
    DprWorkerOptions options;
    options.worker_id = 0;
    options.finder = finder_.get();
    options.checkpoint_interval_us = 0;  // manual commits
    options.vmax_fast_forward = false;
    worker_ = std::make_unique<DprWorker>(&state_, options);
    ASSERT_TRUE(worker_->Start().ok());
  }

  DprRequestHeader Header(WorldLine wl = kInitialWorldLine,
                          Version version = 0, DependencySet deps = {}) {
    DprRequestHeader h;
    h.session_id = 1;
    h.world_line = wl;
    h.version = version;
    h.deps = std::move(deps);
    return h;
  }

  FakeStateObject state_;
  std::unique_ptr<MetadataStore> metadata_;
  std::unique_ptr<DprFinder> finder_;
  std::unique_ptr<DprWorker> worker_;
};

TEST_F(DprWorkerTest, BatchExecutesInCurrentVersion) {
  Version v;
  ASSERT_TRUE(worker_->BeginBatch(Header(), &v).ok());
  EXPECT_EQ(v, 1u);
  worker_->EndBatch();
}

TEST_F(DprWorkerTest, FastForwardsToClientVersion) {
  // Progress rule (§3.2): a client that has seen v5 forces this worker to
  // commit up to v5 before executing.
  Version v;
  ASSERT_TRUE(worker_->BeginBatch(Header(kInitialWorldLine, 5), &v).ok());
  EXPECT_GE(v, 5u);
  worker_->EndBatch();
  state_.ReleaseCheckpoint();  // token 1 becomes durable
  EXPECT_EQ(finder_->MaxPersistedVersion(), 1u);
}

TEST_F(DprWorkerTest, CommitReportsVersionAndDeps) {
  Version v;
  ASSERT_TRUE(
      worker_->BeginBatch(Header(kInitialWorldLine, 0, {{2, 3}}), &v).ok());
  worker_->EndBatch();
  ASSERT_TRUE(worker_->TryCommit().ok());
  state_.ReleaseCheckpoint();
  // The dependency on worker 2's v3 must be in the durable graph.
  const auto graph = metadata_->GetGraph();
  ASSERT_TRUE(graph.count(WorkerVersion{0, 1}));
  EXPECT_EQ(graph.at(WorkerVersion{0, 1}).at(2), 3u);
}

TEST_F(DprWorkerTest, WatermarkAdvancesAfterCutIncludesUs) {
  Version v;
  ASSERT_TRUE(worker_->BeginBatch(Header(), &v).ok());
  worker_->EndBatch();
  ASSERT_TRUE(worker_->TryCommit().ok());
  state_.ReleaseCheckpoint();
  ASSERT_TRUE(finder_->ComputeCut().ok());
  worker_->RefreshPersistedWatermark();
  EXPECT_EQ(worker_->persisted_watermark(), 1u);
  DprResponseHeader resp;
  worker_->FillResponse(2, DprResponseHeader::BatchStatus::kOk, &resp);
  EXPECT_EQ(resp.persisted_version, 1u);
  EXPECT_EQ(resp.executed_version, 2u);
}

TEST_F(DprWorkerTest, StaleWorldLineBatchAborted) {
  ASSERT_TRUE(worker_->Rollback(2, 0).ok());
  Version v;
  Status s = worker_->BeginBatch(Header(/*wl=*/1), &v);
  EXPECT_TRUE(s.IsAborted());
}

TEST_F(DprWorkerTest, FutureWorldLineBatchDelayed) {
  Version v;
  Status s = worker_->BeginBatch(Header(/*wl=*/3), &v);
  EXPECT_TRUE(s.IsTransient()) << s.ToString();
}

TEST_F(DprWorkerTest, RollbackRestoresAndAdvancesWorldLine) {
  Version v;
  ASSERT_TRUE(worker_->BeginBatch(Header(), &v).ok());
  worker_->EndBatch();
  ASSERT_TRUE(worker_->TryCommit().ok());
  state_.ReleaseCheckpoint();
  ASSERT_TRUE(worker_->Rollback(2, 1).ok());
  EXPECT_EQ(worker_->world_line(), 2u);
  EXPECT_EQ(state_.restored_to(), 1u);
  // Post-rollback batches on the new world-line are admitted.
  ASSERT_TRUE(worker_->BeginBatch(Header(/*wl=*/2), &v).ok());
  worker_->EndBatch();
}

TEST_F(DprWorkerTest, CrashAndRestoreDropsVolatileState) {
  ASSERT_TRUE(worker_->CrashAndRestore(2, 0).ok());
  EXPECT_TRUE(state_.crashed());
  EXPECT_EQ(worker_->world_line(), 2u);
}

TEST_F(DprWorkerTest, CommitWhileCheckpointInFlightIsBusy) {
  ASSERT_TRUE(worker_->TryCommit().ok());
  EXPECT_TRUE(worker_->TryCommit().IsBusy());
  state_.ReleaseCheckpoint();
  EXPECT_TRUE(worker_->TryCommit().ok());
  state_.ReleaseCheckpoint();
}

TEST_F(DprWorkerTest, StaleCheckpointReportRejectedAfterRollback) {
  // Checkpoint starts pre-failure, persists post-rollback: its report must
  // be ignored by the finder (it carries the old world-line).
  ASSERT_TRUE(worker_->TryCommit().ok());
  WorldLine new_wl;
  DprCut cut;
  ASSERT_TRUE(finder_->BeginRecovery(&new_wl, &cut).ok());
  ASSERT_TRUE(finder_->EndRecovery().ok());
  ASSERT_TRUE(worker_->Rollback(new_wl, 0).ok());
  state_.ReleaseCheckpoint();  // fires the stale persistence callback
  EXPECT_EQ(finder_->MaxPersistedVersion(), 0u);
}

}  // namespace
}  // namespace dpr
