// Unit tests for the shared bounded request executor (net/executor.h): the
// queue really is bounded (Submit blocks, TrySubmit fails at capacity),
// Shutdown drains every accepted task, and across a Submit/Shutdown race a
// task either runs exactly once or was visibly rejected — never lost.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/sync.h"
#include "gtest/gtest.h"
#include "net/executor.h"

namespace dpr {
namespace {

// A manually-released gate tasks can park on, so tests control exactly when
// the single worker thread is busy.
class Gate {
 public:
  void Wait() {
    MutexLock lock(mu_);
    cv_.Wait(mu_, [this]() REQUIRES(mu_) { return open_; });
  }
  void Open() {
    {
      MutexLock lock(mu_);
      open_ = true;
    }
    cv_.NotifyAll();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool open_ GUARDED_BY(mu_) = false;
};

TEST(ExecutorTest, RunsEverySubmittedTask) {
  Executor executor({.threads = 3, .queue_capacity = 16});
  executor.Start();
  std::atomic<int> ran{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(executor.Submit([&] { ran.fetch_add(1); }));
  }
  executor.Shutdown();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ExecutorTest, TrySubmitFailsAtCapacity) {
  Executor executor({.threads = 1, .queue_capacity = 2});
  executor.Start();
  Gate gate;
  std::atomic<int> ran{0};
  // Occupy the only worker, then fill the queue to its capacity.
  ASSERT_TRUE(executor.Submit([&] {
    gate.Wait();
    ran.fetch_add(1);
  }));
  while (executor.queue_depth() > 0) SleepMicros(100);  // worker claimed it
  ASSERT_TRUE(executor.TrySubmit([&] { ran.fetch_add(1); }));
  ASSERT_TRUE(executor.TrySubmit([&] { ran.fetch_add(1); }));
  EXPECT_FALSE(executor.TrySubmit([&] { ran.fetch_add(1); }));
  gate.Open();
  executor.Shutdown();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ExecutorTest, SubmitBlocksUntilSpaceFrees) {
  Executor executor({.threads = 1, .queue_capacity = 1});
  executor.Start();
  Gate gate;
  std::atomic<int> ran{0};
  ASSERT_TRUE(executor.Submit([&] {
    gate.Wait();
    ran.fetch_add(1);
  }));
  while (executor.queue_depth() > 0) SleepMicros(100);
  ASSERT_TRUE(executor.Submit([&] { ran.fetch_add(1); }));  // fills the queue
  std::atomic<bool> third_accepted{false};
  std::thread blocked([&] {
    // Queue is full: this parks until the worker frees a slot.
    EXPECT_TRUE(executor.Submit([&] { ran.fetch_add(1); }));
    third_accepted.store(true);
  });
  SleepMicros(20 * 1000);
  EXPECT_FALSE(third_accepted.load());  // still parked while the gate holds
  gate.Open();
  blocked.join();
  EXPECT_TRUE(third_accepted.load());
  executor.Shutdown();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ExecutorTest, ShutdownDrainsAcceptedTasks) {
  Executor executor({.threads = 2, .queue_capacity = 128});
  executor.Start();
  Gate gate;
  std::atomic<int> ran{0};
  // Park both workers, then queue up work behind them.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(executor.Submit([&] { gate.Wait(); }));
  }
  constexpr int kQueued = 50;
  for (int i = 0; i < kQueued; ++i) {
    ASSERT_TRUE(executor.Submit([&] { ran.fetch_add(1); }));
  }
  std::thread stopper([&] { executor.Shutdown(); });
  SleepMicros(10 * 1000);
  gate.Open();
  stopper.join();
  // Every accepted task ran, even though Shutdown began with a full queue.
  EXPECT_EQ(ran.load(), kQueued);
}

TEST(ExecutorTest, SubmitAfterShutdownIsRejected) {
  Executor executor({.threads = 1, .queue_capacity = 4});
  executor.Start();
  executor.Shutdown();
  EXPECT_FALSE(executor.Submit([] {}));
  EXPECT_FALSE(executor.TrySubmit([] {}));
}

TEST(ExecutorTest, NoTaskLostAcrossSubmitShutdownRace) {
  Executor executor({.threads = 2, .queue_capacity = 8});
  executor.Start();
  std::atomic<int> accepted{0};
  std::atomic<int> ran{0};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (executor.Submit([&] { ran.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  SleepMicros(2 * 1000);
  executor.Shutdown();  // races the producers mid-stream
  for (auto& t : producers) t.join();
  // The exactly-once contract: accepted == ran, and rejected tasks are
  // visible to the caller (the remainder of kProducers * kPerProducer).
  EXPECT_EQ(ran.load(), accepted.load());
  EXPECT_LE(ran.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace dpr
