// Checkpoint plane (`ctest -L ckpt`): the cadence controller's decision
// logic, delta-checkpoint chains through crash/restore, covering restores
// over a chain gap, compaction interplay, and the flush-failure regression
// (a failed checkpoint flush must never wedge the pipeline).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/cadence.h"
#include "faster/faster_store.h"
#include "fault/fault_plane.h"
#include "obs/metrics.h"

namespace dpr {
namespace {

// ------------------------------------------------------- cadence controller

CkptPolicy AdaptivePolicy(uint64_t base_us = 100000) {
  return CkptPolicy{}.Resolve(base_us);
}

TEST(CkptPolicyTest, ResolveDerivesBounds) {
  CkptPolicy p = CkptPolicy{}.Resolve(100000);
  EXPECT_EQ(p.min_interval_us, 25000u);
  EXPECT_EQ(p.max_interval_us, 100000u);
  // Tiny base intervals floor the minimum at 1ms.
  EXPECT_EQ(CkptPolicy{}.Resolve(2000).min_interval_us, 1000u);
  // max is pulled up to min when the derivation inverts them.
  CkptPolicy inverted;
  inverted.min_interval_us = 50000;
  inverted.max_interval_us = 10000;
  EXPECT_EQ(inverted.Resolve(100000).max_interval_us, 50000u);
  // full_every == 0 means "every checkpoint full".
  CkptPolicy zero;
  zero.full_every = 0;
  EXPECT_EQ(zero.Resolve(100000).full_every, 1u);
}

TEST(CkptCadenceTest, FixedIntervalNeverSkipsNeverAdapts) {
  CkptCadenceController c(CkptPolicy::FixedInterval().Resolve(100000));
  uint64_t now = 1000;
  for (int i = 0; i < 5; ++i) {
    // Idle and hot signals alike: always a full checkpoint at the base
    // interval — byte-compatible with the historical fixed timer.
    CkptSignals s;
    s.dirty_bytes = (i % 2 == 0) ? 0 : (64u << 20);
    const CkptDecision d = c.Decide(s, now);
    EXPECT_EQ(d.action, CkptAction::kFull);
    EXPECT_EQ(d.next_delay_us, 100000u);
    now += d.next_delay_us;
  }
}

TEST(CkptCadenceTest, FirstCheckpointIssuesEvenWhenIdle) {
  CkptCadenceController c(AdaptivePolicy());
  // An idle shard still gets one initial checkpoint (the finder needs a
  // first reported version before the cut can ever cover this worker)...
  const CkptDecision first = c.Decide(CkptSignals{}, 1000);
  EXPECT_EQ(first.action, CkptAction::kFull);
  // ...and only then starts skipping, at the RPO ceiling.
  for (int i = 0; i < 3; ++i) {
    const CkptDecision d = c.Decide(CkptSignals{}, 1000 + (i + 1) * 100000);
    EXPECT_EQ(d.action, CkptAction::kSkip);
    EXPECT_EQ(d.next_delay_us, 100000u);
  }
}

TEST(CkptCadenceTest, FullEveryRotation) {
  CkptPolicy p;
  p.full_every = 4;
  CkptCadenceController c(p.Resolve(100000));
  uint64_t now = 1000;
  std::vector<CkptAction> actions;
  for (int i = 0; i < 9; ++i) {
    CkptSignals s;
    s.dirty_bytes = 4096;
    const CkptDecision d = c.Decide(s, now);
    actions.push_back(d.action);
    now += d.next_delay_us;
  }
  const std::vector<CkptAction> want = {
      CkptAction::kFull,  CkptAction::kDelta, CkptAction::kDelta,
      CkptAction::kDelta, CkptAction::kFull,  CkptAction::kDelta,
      CkptAction::kDelta, CkptAction::kDelta, CkptAction::kFull};
  EXPECT_EQ(actions, want);
}

TEST(CkptCadenceTest, HotShardClampsToMinInterval) {
  CkptCadenceController c(AdaptivePolicy());
  uint64_t now = 1000000;
  CkptDecision d{};
  for (int i = 0; i < 30; ++i) {
    // 16 MiB of fresh log every 10ms: the rate-derived interval
    // (1 MiB target / ~1678 B/us) is far below the floor.
    CkptSignals s;
    s.dirty_bytes = 16u << 20;
    s.committed_watermark = static_cast<uint64_t>(i);  // cut keeps moving
    d = c.Decide(s, now);
    now += 10000;
  }
  EXPECT_EQ(d.next_delay_us, 25000u);
  EXPECT_NE(d.action, CkptAction::kSkip);
}

TEST(CkptCadenceTest, TrickleIngestStretchesToRpoCeiling) {
  CkptCadenceController c(AdaptivePolicy());
  uint64_t now = 1000000;
  CkptDecision d{};
  for (int i = 0; i < 10; ++i) {
    CkptSignals s;
    s.dirty_bytes = 16;  // a few bytes per 100ms: interval wants to be huge
    s.committed_watermark = static_cast<uint64_t>(i);
    d = c.Decide(s, now);
    now += 100000;
  }
  EXPECT_EQ(d.next_delay_us, 100000u) << "never stretches past the RPO";
}

TEST(CkptCadenceTest, ExceptionListPressureHalvesInterval) {
  CkptCadenceController c(AdaptivePolicy());
  uint64_t now = 1000000;
  CkptDecision calm{};
  for (int i = 0; i < 40; ++i) {
    // Settle the rate-derived interval around 40ms, inside the clamps, so
    // the halving is observable (a ceiling-clamped interval stays clamped).
    CkptSignals s;
    s.dirty_bytes = 1u << 20;
    s.committed_watermark = static_cast<uint64_t>(i);
    calm = c.Decide(s, now);
    now += 40000;
  }
  ASSERT_GT(calm.next_delay_us, 25000u);
  ASSERT_LT(calm.next_delay_us, 100000u);
  CkptSignals pressured;
  pressured.dirty_bytes = 1u << 20;
  pressured.committed_watermark = 1000;
  pressured.exception_list_len = 65;  // above the default threshold of 64
  const CkptDecision d = c.Decide(pressured, now);
  EXPECT_LT(d.next_delay_us, calm.next_delay_us * 7 / 10);
}

TEST(CkptCadenceTest, StorageBacklogStretchesInterval) {
  CkptCadenceController c(AdaptivePolicy());
  uint64_t now = 1000000;
  CkptDecision calm{};
  for (int i = 0; i < 40; ++i) {
    // ~26 B/us: the rate-derived interval settles around 40ms, between
    // the clamps, so both pressure directions are observable.
    CkptSignals s;
    s.dirty_bytes = 1u << 20;
    s.committed_watermark = static_cast<uint64_t>(i);
    calm = c.Decide(s, now);
    now += 40000;
  }
  ASSERT_GT(calm.next_delay_us, 25000u);
  ASSERT_LT(calm.next_delay_us, 100000u);
  CkptSignals congested;
  congested.dirty_bytes = 1u << 20;
  congested.committed_watermark = 1000;
  congested.storage_queue_depth = 17;  // above the default threshold of 16
  const CkptDecision d = c.Decide(congested, now);
  // A congested fsync scheduler doubles the interval (EWMA drift aside).
  EXPECT_GT(d.next_delay_us, calm.next_delay_us + calm.next_delay_us / 2);
}

TEST(CkptCadenceTest, StaleCutTightensCadence) {
  CkptCadenceController c(AdaptivePolicy());
  uint64_t now = 1000000;
  CkptDecision calm{};
  for (int i = 0; i < 40; ++i) {
    CkptSignals s;
    s.dirty_bytes = 1u << 20;
    s.committed_watermark = static_cast<uint64_t>(i);  // cut keeps moving
    calm = c.Decide(s, now);
    now += 40000;
  }
  ASSERT_GT(calm.next_delay_us, 25000u);
  ASSERT_LT(calm.next_delay_us, 100000u);
  // Freeze the watermark and keep ticking: once it has been stale for more
  // than 4x the RPO ceiling (400ms), the controller halves the interval.
  CkptSignals stuck;
  stuck.dirty_bytes = 1u << 20;
  stuck.committed_watermark = 1000;
  CkptDecision d{};
  for (int i = 0; i < 12; ++i) {
    d = c.Decide(stuck, now);
    now += 40000;
  }
  EXPECT_LT(d.next_delay_us, calm.next_delay_us * 7 / 10);
}

// ------------------------------------------------------- delta-chain store

constexpr uint64_t kFaultScope = 77;

std::unique_ptr<FasterStore> NewStore(bool faulty_log = false,
                                      uint64_t buckets = 1 << 10) {
  FasterOptions options;
  options.index_buckets = buckets;
  if (faulty_log) {
    options.log_device = std::make_unique<FaultDevice>(
        std::make_unique<MemoryDevice>(), kFaultScope);
  } else {
    options.log_device = std::make_unique<MemoryDevice>();
  }
  options.meta_device = std::make_unique<MemoryDevice>();
  return std::make_unique<FasterStore>(std::move(options));
}

Version Checkpoint(FasterStore* store, bool image, bool delta,
                   bool expect_durable = true) {
  Version token = kInvalidVersion;
  std::atomic<bool> durable{false};
  Status s = store->PerformCheckpoint(
      store->CurrentVersion() + 1, [&](Version) { durable.store(true); },
      &token, CheckpointHints{.index_image = image, .delta = delta});
  EXPECT_TRUE(s.ok()) << s.ToString();
  store->WaitForCheckpoints();
  EXPECT_EQ(durable.load(), expect_durable);
  return token;
}

uint64_t CounterDelta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after, const std::string& name) {
  const auto bit = before.counters.find(name);
  const auto ait = after.counters.find(name);
  const uint64_t b = bit == before.counters.end() ? 0 : bit->second;
  const uint64_t a = ait == after.counters.end() ? 0 : ait->second;
  return a - b;
}

TEST(DeltaCheckpointTest, ChainRestoreReproducesEveryVersion) {
  auto store = NewStore();
  auto session = store->NewSession();
  // v1: keys 0..99 = 1000+k, full image base.
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(session->Upsert(k, 1000 + k).ok());
  }
  const Version t1 = Checkpoint(store.get(), /*image=*/true, /*delta=*/false);
  // v2: overwrite a subset, delta on t1.
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(session->Upsert(k, 2000 + k).ok());
  }
  const Version t2 = Checkpoint(store.get(), true, true);
  // v3: another subset and some fresh keys, delta on t2.
  for (uint64_t k = 10; k < 30; ++k) {
    ASSERT_TRUE(session->Upsert(k, 3000 + k).ok());
  }
  for (uint64_t k = 100; k < 110; ++k) {
    ASSERT_TRUE(session->Upsert(k, 3000 + k).ok());
  }
  const Version t3 = Checkpoint(store.get(), true, true);
  ASSERT_LT(t1, t2);
  ASSERT_LT(t2, t3);
  // Un-checkpointed writes that must vanish.
  ASSERT_TRUE(session->Upsert(0, uint64_t{9999}).ok());
  session.reset();

  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  store->SimulateCrash();
  Version restored = kInvalidVersion;
  ASSERT_TRUE(store->RestoreCheckpoint(t3, &restored).ok());
  EXPECT_EQ(restored, t3);
  const MetricsSnapshot after = MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(CounterDelta(before, after, "ckpt.chain_restores"), 1u)
      << "a full delta chain must restore from images, not a log scan";
  EXPECT_EQ(CounterDelta(before, after, "ckpt.scan_restores"), 0u);

  auto reader = store->NewSession();
  for (uint64_t k = 0; k < 110; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(reader->Read(k, &v).ok()) << "key " << k;
    uint64_t want = 1000 + k;
    if (k < 20) want = 2000 + k;
    if (k >= 10 && k < 30) want = 3000 + k;
    if (k >= 100) want = 3000 + k;
    EXPECT_EQ(v, want) << "key " << k;
  }
  // 100 v1 appends + 20 v2 + 30 v3 = 150 log records at the t3 stamp (the
  // counter tracks appended records, not live keys); the post-t3 write was
  // never stamped and must not be counted after the restore.
  EXPECT_EQ(store->approximate_record_count(), 150u)
      << "chain restore must reinstate the record counter from the image";
}

TEST(DeltaCheckpointTest, RestoreAtMidChainToken) {
  // Crash "between delta and base": the recovery cut lands on a delta in
  // the middle of the chain, so restore must walk back to the base and
  // NOT apply the newer delta above it.
  auto store = NewStore();
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(session->Upsert(k, 100 + k).ok());
  }
  Checkpoint(store.get(), true, false);
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(session->Upsert(k, 200 + k).ok());
  }
  const Version t2 = Checkpoint(store.get(), true, true);
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(session->Upsert(k, 300 + k).ok());
  }
  Checkpoint(store.get(), true, true);
  session.reset();

  store->SimulateCrash();
  Version restored = kInvalidVersion;
  ASSERT_TRUE(store->RestoreCheckpoint(t2, &restored).ok());
  EXPECT_EQ(restored, t2);
  auto reader = store->NewSession();
  for (uint64_t k = 0; k < 50; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(reader->Read(k, &v).ok()) << "key " << k;
    EXPECT_EQ(v, k < 10 ? 200 + k : 100 + k) << "key " << k;
  }
}

TEST(DeltaCheckpointTest, CoveringRestoreOverChainGap) {
  // A mid-chain checkpoint whose flush failed leaves a token gap; restoring
  // into the gap must anchor on the next durable checkpoint's chain and
  // purge only the overshoot.
  ScopedFaultPlane plane(/*seed=*/7);
  auto store = NewStore(/*faulty_log=*/true);
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(session->Upsert(k, 100 + k).ok());
  }
  Checkpoint(store.get(), true, false);
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(session->Upsert(k, 200 + k).ok());
  }
  const Version t2 = Checkpoint(store.get(), true, true);
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(session->Upsert(k, 300 + k).ok());
  }
  // t3's log flush fails: the token never becomes durable.
  FaultPlane::Instance().Arm({.point = faults::kDevWriteFail,
                              .scope = kFaultScope,
                              .max_fires = 64});
  const Version t3 = Checkpoint(store.get(), true, true,
                                /*expect_durable=*/false);
  FaultPlane::Instance().Disarm(faults::kDevWriteFail);
  ASSERT_EQ(store->LargestDurableToken(), t2);
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(session->Upsert(k, 400 + k).ok());
  }
  const Version t4 = Checkpoint(store.get(), true, true);
  ASSERT_EQ(store->LargestDurableToken(), t4);
  session.reset();

  store->SimulateCrash();
  Version restored = kInvalidVersion;
  ASSERT_TRUE(store->RestoreCheckpoint(t3, &restored).ok());
  // Covering restore: t3 sits in the gap, t4's flushed prefix covers it.
  EXPECT_EQ(restored, t3);
  auto reader = store->NewSession();
  for (uint64_t k = 0; k < 40; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(reader->Read(k, &v).ok()) << "key " << k;
    EXPECT_EQ(v, 300 + k) << "key " << k
                          << ": v3 writes survive, v4 overshoot purged";
  }
}

TEST(DeltaCheckpointTest, LegacyCheckpointsStillScanRestore) {
  // Image-less checkpoints (the historical record type) have no chain;
  // recovery must fall back to the full log scan and still be correct.
  auto store = NewStore();
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(session->Upsert(k, 5 + k).ok());
  }
  const Version t1 = Checkpoint(store.get(), /*image=*/false,
                                /*delta=*/false);
  session.reset();

  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  store->SimulateCrash();
  Version restored = kInvalidVersion;
  ASSERT_TRUE(store->RestoreCheckpoint(t1, &restored).ok());
  const MetricsSnapshot after = MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(CounterDelta(before, after, "ckpt.scan_restores"), 1u);
  EXPECT_EQ(CounterDelta(before, after, "ckpt.chain_restores"), 0u);
  auto reader = store->NewSession();
  for (uint64_t k = 0; k < 30; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(reader->Read(k, &v).ok());
    EXPECT_EQ(v, 5 + k);
  }
}

TEST(DeltaCheckpointTest, CrashBeforeFinishCompactionKeepsChainRestorable) {
  auto store = NewStore();
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 60; ++k) {
    ASSERT_TRUE(session->Upsert(k, 10 + k).ok());
  }
  const Version t1 = Checkpoint(store.get(), true, false);
  for (uint64_t k = 0; k < 60; ++k) {
    ASSERT_TRUE(session->Upsert(k, 20 + k).ok());
  }
  const Version t2 = Checkpoint(store.get(), true, true);
  // Compaction starts (copies live records, takes its forced-full
  // checkpoint) but the crash lands before FinishCompaction: nothing has
  // been reclaimed yet and every checkpoint must still restore.
  Version ct = kInvalidVersion;
  ASSERT_TRUE(store->StartCompaction(t1, &ct).ok());
  store->WaitForCheckpoints();
  session.reset();

  store->SimulateCrash();
  Version restored = kInvalidVersion;
  ASSERT_TRUE(store->RestoreCheckpoint(t2, &restored).ok());
  EXPECT_EQ(restored, t2);
  auto reader = store->NewSession();
  for (uint64_t k = 0; k < 60; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(reader->Read(k, &v).ok()) << "key " << k;
    EXPECT_EQ(v, 20 + k);
  }
}

TEST(DeltaCheckpointTest, ChainFromCompactionBaseAfterFinish) {
  auto store = NewStore();
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 60; ++k) {
    ASSERT_TRUE(session->Upsert(k, 10 + k).ok());
  }
  const Version t1 = Checkpoint(store.get(), true, false);
  for (uint64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(session->Upsert(k, 20 + k).ok());
  }
  Checkpoint(store.get(), true, true);
  Version ct = kInvalidVersion;
  ASSERT_TRUE(store->StartCompaction(t1, &ct).ok());
  store->WaitForCheckpoints();
  ASSERT_TRUE(store->FinishCompaction(ct, ct).ok());
  // Post-compaction deltas chain off the compaction's forced-full image —
  // the older checkpoints below it are gone.
  for (uint64_t k = 30; k < 60; ++k) {
    ASSERT_TRUE(session->Upsert(k, 30 + k).ok());
  }
  const Version t3 = Checkpoint(store.get(), true, true);
  session.reset();

  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  store->SimulateCrash();
  Version restored = kInvalidVersion;
  ASSERT_TRUE(store->RestoreCheckpoint(t3, &restored).ok());
  EXPECT_EQ(restored, t3);
  const MetricsSnapshot after = MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(CounterDelta(before, after, "ckpt.chain_restores"), 1u);
  auto reader = store->NewSession();
  for (uint64_t k = 0; k < 60; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(reader->Read(k, &v).ok()) << "key " << k;
    EXPECT_EQ(v, k < 30 ? 20 + k : 30 + k) << "key " << k;
  }
}

// ------------------------------------------- flush-failure regression (bug)

TEST(FlushFailureTest, FailedFlushDoesNotWedgePipeline) {
  // Regression: a failed checkpoint flush must (a) not advance
  // flushed_until_ or register the token, (b) never fire the persistence
  // callback, (c) reset checkpoint_active_/flush_in_progress_ so the NEXT
  // checkpoint is admitted and becomes durable, and (d) leave
  // WaitForCheckpoints returning promptly.
  ScopedFaultPlane plane(/*seed=*/11);
  auto store = NewStore(/*faulty_log=*/true);
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 32; ++k) {
    ASSERT_TRUE(session->Upsert(k, 7 + k).ok());
  }
  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  FaultPlane::Instance().Arm({.point = faults::kDevWriteFail,
                              .scope = kFaultScope,
                              .max_fires = 64});
  std::atomic<int> calls{0};
  Version t1 = kInvalidVersion;
  ASSERT_TRUE(store
                  ->PerformCheckpoint(
                      store->CurrentVersion() + 1,
                      [&](Version) { calls.fetch_add(1); }, &t1,
                      CheckpointHints{.index_image = true, .delta = false})
                  .ok());
  store->WaitForCheckpoints();  // (d) must return despite the failure
  FaultPlane::Instance().Disarm(faults::kDevWriteFail);
  EXPECT_EQ(calls.load(), 0) << "failed flush must not report durability";
  EXPECT_EQ(store->LargestDurableToken(), kInvalidVersion);

  // (c) the pipeline is not wedged: the next checkpoint goes through.
  ASSERT_TRUE(session->Upsert(1, uint64_t{99}).ok());
  const Version t2 = Checkpoint(store.get(), true, false);
  EXPECT_GT(t2, t1);
  EXPECT_EQ(store->LargestDurableToken(), t2);
  const MetricsSnapshot after = MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(CounterDelta(before, after, "faster.flush_failures"), 1u);
  // (satellite: gauge audit) the failure path must pop its queue entry.
  EXPECT_EQ(after.gauges.at("faster.flush_queue_depth"), 0);

  // And the durable state restores: the failed token's writes are covered
  // by t2's flush, so everything written before t2 survives.
  session.reset();
  store->SimulateCrash();
  Version restored = kInvalidVersion;
  ASSERT_TRUE(store->RestoreCheckpoint(t2, &restored).ok());
  EXPECT_EQ(restored, t2);
  auto reader = store->NewSession();
  uint64_t v = 0;
  ASSERT_TRUE(reader->Read(1, &v).ok());
  EXPECT_EQ(v, 99u);
  for (uint64_t k = 2; k < 32; ++k) {
    ASSERT_TRUE(reader->Read(k, &v).ok());
    EXPECT_EQ(v, 7 + k);
  }
}

}  // namespace
}  // namespace dpr
