#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/coding.h"
#include "common/sync.h"
#include "net/inmemory_net.h"
#include "net/tcp_net.h"

namespace dpr {
namespace {

class EchoFixture {
 public:
  static void Echo(Slice request, std::string* response) {
    response->assign(request.data(), request.size());
    response->append("!");
  }
};

TEST(InMemoryNetTest, RequestResponse) {
  InMemoryNetwork net;
  auto server = net.CreateServer("svc");
  ASSERT_TRUE(server->Start(EchoFixture::Echo).ok());
  auto conn = net.Connect("svc");
  std::string response;
  ASSERT_TRUE(conn->Call("hello", &response).ok());
  EXPECT_EQ(response, "hello!");
  server->Stop();
}

TEST(InMemoryNetTest, UnknownEndpointFails) {
  InMemoryNetwork net;
  auto conn = net.Connect("nope");
  std::string response;
  EXPECT_TRUE(conn->Call("x", &response).IsUnavailable());
}

TEST(InMemoryNetTest, ManyConcurrentCalls) {
  InMemoryNetwork net({.server_threads = 4});
  auto server = net.CreateServer("svc");
  ASSERT_TRUE(server->Start(EchoFixture::Echo).ok());
  auto conn = net.Connect("svc");
  std::atomic<int> done{0};
  constexpr int kCalls = 500;
  Mutex mu;
  CondVar cv;
  for (int i = 0; i < kCalls; ++i) {
    conn->CallAsync("m" + std::to_string(i), [&](Status s, Slice resp) {
      EXPECT_TRUE(s.ok());
      EXPECT_EQ(resp.view().back(), '!');
      if (done.fetch_add(1) + 1 == kCalls) cv.NotifyAll();
    });
  }
  MutexLock lock(mu);
  ASSERT_TRUE(cv.WaitFor(mu, std::chrono::seconds(10),
                         [&] { return done.load() == kCalls; }));
  server->Stop();
}

TEST(InMemoryNetTest, LatencyInjection) {
  InMemoryNetwork net({.server_threads = 1, .latency_us = 10000});
  auto server = net.CreateServer("svc");
  ASSERT_TRUE(server->Start(EchoFixture::Echo).ok());
  auto conn = net.Connect("svc");
  Stopwatch timer;
  std::string response;
  ASSERT_TRUE(conn->Call("x", &response).ok());
  EXPECT_GE(timer.ElapsedMicros(), 15000u);  // 2x one-way latency
  server->Stop();
}

TEST(InMemoryNetTest, StopFailsPendingCalls) {
  InMemoryNetwork net({.server_threads = 1});
  auto server = net.CreateServer("svc");
  std::atomic<bool> failed{false};
  ASSERT_TRUE(server->Start([](Slice, std::string* out) {
    SleepMicros(20000);
    *out = "late";
  }).ok());
  auto conn = net.Connect("svc");
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    conn->CallAsync("x", [&](Status s, Slice) {
      if (!s.ok()) failed.store(true);
      done.fetch_add(1);
    });
  }
  SleepMicros(5000);
  server->Stop();
  // All callbacks must eventually fire (ok or failed), none may hang.
  Stopwatch timer;
  while (done.load() < 4 && timer.ElapsedMillis() < 5000) SleepMicros(1000);
  EXPECT_EQ(done.load(), 4);
  EXPECT_TRUE(failed.load());
}

TEST(TcpNetTest, RequestResponseOverLoopback) {
  auto server = MakeTcpServer(0);
  ASSERT_TRUE(server->Start(EchoFixture::Echo).ok());
  std::unique_ptr<RpcConnection> conn;
  ASSERT_TRUE(ConnectTcp(server->address(), &conn).ok());
  std::string response;
  ASSERT_TRUE(conn->Call("tcp ping", &response).ok());
  EXPECT_EQ(response, "tcp ping!");
  conn.reset();
  server->Stop();
}

TEST(TcpNetTest, PipelinedCallsMatchResponses) {
  auto server = MakeTcpServer(0);
  ASSERT_TRUE(server->Start([](Slice req, std::string* resp) {
    resp->assign(req.data(), req.size());
  }).ok());
  std::unique_ptr<RpcConnection> conn;
  ASSERT_TRUE(ConnectTcp(server->address(), &conn).ok());
  std::atomic<int> done{0};
  std::atomic<bool> mismatch{false};
  constexpr int kCalls = 200;
  for (int i = 0; i < kCalls; ++i) {
    const std::string msg = "msg" + std::to_string(i);
    conn->CallAsync(msg, [&, msg](Status s, Slice resp) {
      if (!s.ok() || resp != Slice(msg)) mismatch.store(true);
      done.fetch_add(1);
    });
  }
  Stopwatch timer;
  while (done.load() < kCalls && timer.ElapsedMillis() < 10000) {
    SleepMicros(1000);
  }
  EXPECT_EQ(done.load(), kCalls);
  EXPECT_FALSE(mismatch.load());
  conn.reset();
  server->Stop();
}

TEST(TcpNetTest, MultipleClients) {
  auto server = MakeTcpServer(0);
  ASSERT_TRUE(server->Start(EchoFixture::Echo).ok());
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      std::unique_ptr<RpcConnection> conn;
      ASSERT_TRUE(ConnectTcp(server->address(), &conn).ok());
      for (int i = 0; i < 50; ++i) {
        std::string response;
        ASSERT_TRUE(conn->Call("c" + std::to_string(c), &response).ok());
        ASSERT_EQ(response, "c" + std::to_string(c) + "!");
      }
    });
  }
  for (auto& t : clients) t.join();
  server->Stop();
}

// Thread-count, bounded-executor, and torn-frame contracts are covered per
// backend in net_conformance_test.cc; only backend-independent connection
// setup behavior stays here.

TEST(TcpNetTest, ConnectToClosedPortFails) {
  std::unique_ptr<RpcConnection> conn;
  Status s = ConnectTcp("127.0.0.1:1", &conn);
  EXPECT_FALSE(s.ok());
}

TEST(TcpNetTest, BadAddressRejected) {
  std::unique_ptr<RpcConnection> conn;
  EXPECT_EQ(ConnectTcp("no-port-here", &conn).code(),
            Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace dpr
