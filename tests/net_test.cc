#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/coding.h"
#include "common/sync.h"
#include "net/inmemory_net.h"
#include "net/tcp_net.h"

namespace dpr {
namespace {

class EchoFixture {
 public:
  static void Echo(Slice request, std::string* response) {
    response->assign(request.data(), request.size());
    response->append("!");
  }
};

TEST(InMemoryNetTest, RequestResponse) {
  InMemoryNetwork net;
  auto server = net.CreateServer("svc");
  ASSERT_TRUE(server->Start(EchoFixture::Echo).ok());
  auto conn = net.Connect("svc");
  std::string response;
  ASSERT_TRUE(conn->Call("hello", &response).ok());
  EXPECT_EQ(response, "hello!");
  server->Stop();
}

TEST(InMemoryNetTest, UnknownEndpointFails) {
  InMemoryNetwork net;
  auto conn = net.Connect("nope");
  std::string response;
  EXPECT_TRUE(conn->Call("x", &response).IsUnavailable());
}

TEST(InMemoryNetTest, ManyConcurrentCalls) {
  InMemoryNetwork net({.server_threads = 4});
  auto server = net.CreateServer("svc");
  ASSERT_TRUE(server->Start(EchoFixture::Echo).ok());
  auto conn = net.Connect("svc");
  std::atomic<int> done{0};
  constexpr int kCalls = 500;
  Mutex mu;
  CondVar cv;
  for (int i = 0; i < kCalls; ++i) {
    conn->CallAsync("m" + std::to_string(i), [&](Status s, Slice resp) {
      EXPECT_TRUE(s.ok());
      EXPECT_EQ(resp.view().back(), '!');
      if (done.fetch_add(1) + 1 == kCalls) cv.NotifyAll();
    });
  }
  MutexLock lock(mu);
  ASSERT_TRUE(cv.WaitFor(mu, std::chrono::seconds(10),
                         [&] { return done.load() == kCalls; }));
  server->Stop();
}

TEST(InMemoryNetTest, LatencyInjection) {
  InMemoryNetwork net({.server_threads = 1, .latency_us = 10000});
  auto server = net.CreateServer("svc");
  ASSERT_TRUE(server->Start(EchoFixture::Echo).ok());
  auto conn = net.Connect("svc");
  Stopwatch timer;
  std::string response;
  ASSERT_TRUE(conn->Call("x", &response).ok());
  EXPECT_GE(timer.ElapsedMicros(), 15000u);  // 2x one-way latency
  server->Stop();
}

TEST(InMemoryNetTest, StopFailsPendingCalls) {
  InMemoryNetwork net({.server_threads = 1});
  auto server = net.CreateServer("svc");
  std::atomic<bool> failed{false};
  ASSERT_TRUE(server->Start([](Slice, std::string* out) {
    SleepMicros(20000);
    *out = "late";
  }).ok());
  auto conn = net.Connect("svc");
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    conn->CallAsync("x", [&](Status s, Slice) {
      if (!s.ok()) failed.store(true);
      done.fetch_add(1);
    });
  }
  SleepMicros(5000);
  server->Stop();
  // All callbacks must eventually fire (ok or failed), none may hang.
  Stopwatch timer;
  while (done.load() < 4 && timer.ElapsedMillis() < 5000) SleepMicros(1000);
  EXPECT_EQ(done.load(), 4);
  EXPECT_TRUE(failed.load());
}

TEST(TcpNetTest, RequestResponseOverLoopback) {
  auto server = MakeTcpServer(0);
  ASSERT_TRUE(server->Start(EchoFixture::Echo).ok());
  std::unique_ptr<RpcConnection> conn;
  ASSERT_TRUE(ConnectTcp(server->address(), &conn).ok());
  std::string response;
  ASSERT_TRUE(conn->Call("tcp ping", &response).ok());
  EXPECT_EQ(response, "tcp ping!");
  conn.reset();
  server->Stop();
}

TEST(TcpNetTest, PipelinedCallsMatchResponses) {
  auto server = MakeTcpServer(0);
  ASSERT_TRUE(server->Start([](Slice req, std::string* resp) {
    resp->assign(req.data(), req.size());
  }).ok());
  std::unique_ptr<RpcConnection> conn;
  ASSERT_TRUE(ConnectTcp(server->address(), &conn).ok());
  std::atomic<int> done{0};
  std::atomic<bool> mismatch{false};
  constexpr int kCalls = 200;
  for (int i = 0; i < kCalls; ++i) {
    const std::string msg = "msg" + std::to_string(i);
    conn->CallAsync(msg, [&, msg](Status s, Slice resp) {
      if (!s.ok() || resp != Slice(msg)) mismatch.store(true);
      done.fetch_add(1);
    });
  }
  Stopwatch timer;
  while (done.load() < kCalls && timer.ElapsedMillis() < 10000) {
    SleepMicros(1000);
  }
  EXPECT_EQ(done.load(), kCalls);
  EXPECT_FALSE(mismatch.load());
  conn.reset();
  server->Stop();
}

TEST(TcpNetTest, MultipleClients) {
  auto server = MakeTcpServer(0);
  ASSERT_TRUE(server->Start(EchoFixture::Echo).ok());
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      std::unique_ptr<RpcConnection> conn;
      ASSERT_TRUE(ConnectTcp(server->address(), &conn).ok());
      for (int i = 0; i < 50; ++i) {
        std::string response;
        ASSERT_TRUE(conn->Call("c" + std::to_string(c), &response).ok());
        ASSERT_EQ(response, "c" + std::to_string(c) + "!");
      }
    });
  }
  for (auto& t : clients) t.join();
  server->Stop();
}

// --- fixed-thread-count machinery -----------------------------------------
//
// These helpers talk the wire format directly over raw blocking sockets so
// opening N connections adds zero threads on the *client* side; any growth
// in the process's thread count therefore belongs to the server.

int CountProcessThreads() {
  FILE* f = fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int threads = -1;
  while (fgets(line, sizeof(line), f) != nullptr) {
    if (sscanf(line, "Threads: %d", &threads) == 1) break;
  }
  fclose(f);
  return threads;
}

int RawConnect(const std::string& address) {
  const size_t colon = address.rfind(':');
  const int port = atoi(address.c_str() + colon + 1);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, address.substr(0, colon).c_str(), &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << strerror(errno);
  return fd;
}

// One synchronous request/response in the transport's frame format:
// [u32 payload-length][u64 request-id][payload].
void RawCall(int fd, uint64_t id, const std::string& payload,
             std::string* echo) {
  std::string frame;
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed64(&frame, id);
  frame.append(payload);
  ASSERT_TRUE(internal::TcpWriteFully(fd, frame.data(), frame.size()).ok());
  char header[12];
  ASSERT_TRUE(internal::TcpReadFully(fd, header, sizeof(header)).ok());
  const uint32_t len = DecodeFixed32(header);
  ASSERT_EQ(DecodeFixed64(header + 4), id);
  echo->resize(len);
  if (len > 0) {
    ASSERT_TRUE(internal::TcpReadFully(fd, echo->data(), len).ok());
  }
}

// The point of the event-loop architecture: server-side thread count is
// O(io_threads + executor_threads), not O(connections). 64 live connections
// must not add a single thread beyond what the first connection used.
TEST(TcpNetTest, ServerThreadCountIndependentOfConnectionCount) {
  auto server = MakeTcpServer(0, TcpServerOptions{.io_threads = 2,
                                                  .executor_threads = 2});
  ASSERT_TRUE(server->Start(EchoFixture::Echo).ok());

  std::vector<int> fds;
  fds.push_back(RawConnect(server->address()));
  std::string echo;
  RawCall(fds[0], 1, "warmup", &echo);
  EXPECT_EQ(echo, "warmup!");
  const int baseline = CountProcessThreads();
  ASSERT_GT(baseline, 0);

  constexpr int kConns = 64;
  for (int i = 1; i < kConns; ++i) {
    fds.push_back(RawConnect(server->address()));
    RawCall(fds.back(), static_cast<uint64_t>(i) + 1,
            "conn" + std::to_string(i), &echo);
    ASSERT_EQ(echo, "conn" + std::to_string(i) + "!");
  }
  // Every connection is live and has served traffic; thread count is flat.
  EXPECT_EQ(CountProcessThreads(), baseline);

  for (int fd : fds) close(fd);
  server->Stop();
}

// A tiny executor intake forces the loop thread to park in Submit while
// the queue is full (the bounded-intake read throttle); every pipelined
// request must still complete.
TEST(TcpNetTest, ServerOptionsSmallExecutorStillServes) {
  auto server = MakeTcpServer(
      0, TcpServerOptions{.io_threads = 1,
                          .executor_threads = 1,
                          .executor_queue_capacity = 4});
  ASSERT_TRUE(server->Start(EchoFixture::Echo).ok());
  std::unique_ptr<RpcConnection> conn;
  ASSERT_TRUE(ConnectTcp(server->address(), &conn).ok());
  std::atomic<int> done{0};
  constexpr int kCalls = 100;  // far more than the executor's intake of 4
  for (int i = 0; i < kCalls; ++i) {
    conn->CallAsync("q" + std::to_string(i), [&](Status s, Slice) {
      EXPECT_TRUE(s.ok());
      done.fetch_add(1);
    });
  }
  Stopwatch timer;
  while (done.load() < kCalls && timer.ElapsedMillis() < 10000) {
    SleepMicros(1000);
  }
  EXPECT_EQ(done.load(), kCalls);
  conn.reset();
  server->Stop();
}

TEST(TcpNetTest, ConnectToClosedPortFails) {
  std::unique_ptr<RpcConnection> conn;
  Status s = ConnectTcp("127.0.0.1:1", &conn);
  EXPECT_FALSE(s.ok());
}

TEST(TcpNetTest, BadAddressRejected) {
  std::unique_ptr<RpcConnection> conn;
  EXPECT_EQ(ConnectTcp("no-port-here", &conn).code(),
            Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace dpr
