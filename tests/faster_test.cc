#include "faster/faster_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"

namespace dpr {
namespace {

std::unique_ptr<FasterStore> NewStore(uint64_t buckets = 1 << 12) {
  FasterOptions options;
  options.index_buckets = buckets;
  options.log_device = std::make_unique<MemoryDevice>();
  options.meta_device = std::make_unique<MemoryDevice>();
  return std::make_unique<FasterStore>(std::move(options));
}

Version Checkpoint(FasterStore* store) {
  Version token = kInvalidVersion;
  std::atomic<bool> durable{false};
  Status s = store->PerformCheckpoint(
      store->CurrentVersion() + 1,
      [&](Version) { durable.store(true); }, &token);
  EXPECT_TRUE(s.ok()) << s.ToString();
  store->WaitForCheckpoints();
  EXPECT_TRUE(durable.load());
  return token;
}

TEST(FasterStoreTest, UpsertReadRoundTrip) {
  auto store = NewStore();
  auto session = store->NewSession();
  ASSERT_TRUE(session->Upsert(42, uint64_t{7}).ok());
  uint64_t value = 0;
  ASSERT_TRUE(session->Read(42, &value).ok());
  EXPECT_EQ(value, 7u);
  EXPECT_TRUE(session->Read(43, &value).IsNotFound());
}

TEST(FasterStoreTest, VariableLengthValues) {
  auto store = NewStore();
  auto session = store->NewSession();
  const std::string big(1000, 'x');
  ASSERT_TRUE(session->Upsert(1, big).ok());
  std::string value;
  ASSERT_TRUE(session->Read(1, &value).ok());
  EXPECT_EQ(value, big);
  // Overwrite with a different size (forces RCU).
  ASSERT_TRUE(session->Upsert(1, "short").ok());
  ASSERT_TRUE(session->Read(1, &value).ok());
  EXPECT_EQ(value, "short");
}

TEST(FasterStoreTest, RejectsOversizedValue) {
  auto store = NewStore();
  auto session = store->NewSession();
  const std::string huge(5000, 'x');
  EXPECT_EQ(session->Upsert(1, huge).code(),
            Status::Code::kInvalidArgument);
}

TEST(FasterStoreTest, DeleteHidesKey) {
  auto store = NewStore();
  auto session = store->NewSession();
  ASSERT_TRUE(session->Upsert(5, uint64_t{1}).ok());
  ASSERT_TRUE(session->Delete(5).ok());
  uint64_t value;
  EXPECT_TRUE(session->Read(5, &value).IsNotFound());
  // Re-insert after delete.
  ASSERT_TRUE(session->Upsert(5, uint64_t{2}).ok());
  ASSERT_TRUE(session->Read(5, &value).ok());
  EXPECT_EQ(value, 2u);
}

TEST(FasterStoreTest, RmwInsertsAndAdds) {
  auto store = NewStore();
  auto session = store->NewSession();
  uint64_t result = 0;
  ASSERT_TRUE(session->Rmw(9, 5, &result).ok());
  EXPECT_EQ(result, 5u);
  ASSERT_TRUE(session->Rmw(9, 3, &result).ok());
  EXPECT_EQ(result, 8u);
}

TEST(FasterStoreTest, ManyKeysWithBucketCollisions) {
  // 16 buckets + 10k keys: every bucket chain carries many distinct keys.
  auto store = NewStore(/*buckets=*/16);
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_TRUE(session->Upsert(k, k * 3).ok());
  }
  for (uint64_t k = 0; k < 10000; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(session->Read(k, &v).ok());
    ASSERT_EQ(v, k * 3);
  }
}

TEST(FasterStoreTest, InPlaceUpdateInMutableRegion) {
  auto store = NewStore();
  auto session = store->NewSession();
  ASSERT_TRUE(session->Upsert(1, uint64_t{10}).ok());
  const LogAddress tail_before = store->tail_address();
  ASSERT_TRUE(session->Upsert(1, uint64_t{20}).ok());
  // Same 8-byte value in the mutable region: no new record appended.
  EXPECT_EQ(store->tail_address(), tail_before);
  uint64_t v;
  ASSERT_TRUE(session->Read(1, &v).ok());
  EXPECT_EQ(v, 20u);
}

TEST(FasterStoreTest, CheckpointForcesRcuForOldRecords) {
  auto store = NewStore();
  auto session = store->NewSession();
  ASSERT_TRUE(session->Upsert(1, uint64_t{10}).ok());
  Checkpoint(store.get());  // record is now below the read-only boundary
  const LogAddress tail_before = store->tail_address();
  ASSERT_TRUE(session->Upsert(1, uint64_t{20}).ok());
  EXPECT_GT(store->tail_address(), tail_before);  // fold-over forced RCU
  uint64_t v;
  ASSERT_TRUE(session->Read(1, &v).ok());
  EXPECT_EQ(v, 20u);
}

TEST(FasterStoreTest, ConcurrentUpsertsAndReads) {
  auto store = NewStore();
  constexpr int kThreads = 4;
  constexpr uint64_t kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = store->NewSession();
      Random rng(t);
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        const uint64_t key = rng.Uniform(512);
        if (rng.Bernoulli(0.5)) {
          ASSERT_TRUE(session->Upsert(key, key * 2).ok());
        } else {
          uint64_t v;
          Status s = session->Read(key, &v);
          if (s.ok()) {
          ASSERT_EQ(v, key * 2);
        }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(FasterStoreTest, ConcurrentRmwIsLossless) {
  auto store = NewStore();
  constexpr int kThreads = 4;
  constexpr uint64_t kAddsPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto session = store->NewSession();
      for (uint64_t i = 0; i < kAddsPerThread; ++i) {
        ASSERT_TRUE(session->Rmw(7, 1).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  auto session = store->NewSession();
  uint64_t v = 0;
  ASSERT_TRUE(session->Read(7, &v).ok());
  EXPECT_EQ(v, kThreads * kAddsPerThread);
}

TEST(FasterStoreTest, CheckpointTokenAndVersionAdvance) {
  auto store = NewStore();
  EXPECT_EQ(store->CurrentVersion(), 1u);
  auto session = store->NewSession();
  ASSERT_TRUE(session->Upsert(1, uint64_t{1}).ok());
  const Version token = Checkpoint(store.get());
  EXPECT_EQ(token, 1u);
  EXPECT_EQ(store->CurrentVersion(), 2u);
  EXPECT_EQ(store->LargestDurableToken(), 1u);
}

TEST(FasterStoreTest, CheckpointTargetsArbitraryHigherVersion) {
  auto store = NewStore();
  Version token;
  ASSERT_TRUE(store->PerformCheckpoint(7, nullptr, &token).ok());
  EXPECT_EQ(token, 1u);
  EXPECT_EQ(store->CurrentVersion(), 7u);  // Vmax-style fast-forward
  store->WaitForCheckpoints();
}

TEST(FasterStoreTest, SecondCheckpointWhileFlushingIsBusy) {
  FasterOptions options;
  options.index_buckets = 1 << 10;
  // Slow device so the first flush is still running.
  options.log_device = std::make_unique<LatencyDevice>(
      std::make_unique<MemoryDevice>(), 50000, 0);
  options.meta_device = std::make_unique<MemoryDevice>();
  FasterStore store(std::move(options));
  auto session = store.NewSession();
  ASSERT_TRUE(session->Upsert(1, uint64_t{1}).ok());
  ASSERT_TRUE(store.PerformCheckpoint(2, nullptr, nullptr).ok());
  EXPECT_TRUE(store.PerformCheckpoint(3, nullptr, nullptr).IsBusy());
  store.WaitForCheckpoints();
}

TEST(FasterStoreTest, CrashRecoveryRestoresDurablePrefix) {
  auto store = NewStore();
  {
    auto session = store->NewSession();
    for (uint64_t k = 0; k < 1000; ++k) {
      ASSERT_TRUE(session->Upsert(k, k + 100).ok());
    }
  }
  const Version token = Checkpoint(store.get());
  {
    auto session = store->NewSession();
    for (uint64_t k = 0; k < 1000; ++k) {
      ASSERT_TRUE(session->Upsert(k, k + 999).ok());  // lost updates
    }
  }
  store->SimulateCrash();
  {
    auto session = store->NewSession();
    uint64_t v;
    EXPECT_TRUE(session->Read(1, &v).IsUnavailable());
  }
  Version restored;
  ASSERT_TRUE(store->RestoreCheckpoint(token, &restored).ok());
  EXPECT_EQ(restored, token);
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 1000; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(session->Read(k, &v).ok());
    ASSERT_EQ(v, k + 100) << "key " << k;
  }
  EXPECT_GT(store->CurrentVersion(), token);
}

TEST(FasterStoreTest, InMemoryRollbackDiscardsSuffixVersions) {
  auto store = NewStore();
  auto session = store->NewSession();
  ASSERT_TRUE(session->Upsert(1, uint64_t{100}).ok());
  const Version token = Checkpoint(store.get());  // v1 durable
  ASSERT_TRUE(session->Upsert(1, uint64_t{200}).ok());  // v2, uncommitted
  ASSERT_TRUE(session->Upsert(2, uint64_t{300}).ok());  // v2, uncommitted
  Version restored;
  ASSERT_TRUE(store->RestoreCheckpoint(token, &restored).ok());
  EXPECT_EQ(restored, token);
  uint64_t v = 0;
  ASSERT_TRUE(session->Read(1, &v).ok());
  EXPECT_EQ(v, 100u);  // v2 update rolled back
  EXPECT_TRUE(session->Read(2, &v).IsNotFound());
  // Post-rollback writes land in a fresh version and stick.
  ASSERT_TRUE(session->Upsert(2, uint64_t{400}).ok());
  ASSERT_TRUE(session->Read(2, &v).ok());
  EXPECT_EQ(v, 400u);
}

TEST(FasterStoreTest, RollbackToMidTokenPicksLargestBelow) {
  auto store = NewStore();
  auto session = store->NewSession();
  ASSERT_TRUE(session->Upsert(1, uint64_t{1}).ok());
  Checkpoint(store.get());  // token 1
  ASSERT_TRUE(session->Upsert(1, uint64_t{2}).ok());
  Checkpoint(store.get());  // token 2
  ASSERT_TRUE(session->Upsert(1, uint64_t{3}).ok());
  Checkpoint(store.get());  // token 3
  Version restored;
  // Approximate cuts may name non-token versions; restore rounds down.
  ASSERT_TRUE(store->RestoreCheckpoint(2, &restored).ok());
  EXPECT_EQ(restored, 2u);
  uint64_t v;
  ASSERT_TRUE(session->Read(1, &v).ok());
  EXPECT_EQ(v, 2u);
}

TEST(FasterStoreTest, RollbackThenCrashRecoveryAgrees) {
  // Regression test for durable invalid marks: records rolled back in
  // memory must not resurrect via a later crash recovery.
  auto store = NewStore();
  auto session = store->NewSession();
  ASSERT_TRUE(session->Upsert(1, uint64_t{10}).ok());
  const Version t1 = Checkpoint(store.get());
  ASSERT_TRUE(session->Upsert(1, uint64_t{20}).ok());
  Checkpoint(store.get());  // t2 durable, then rolled back
  Version restored;
  ASSERT_TRUE(store->RestoreCheckpoint(t1, &restored).ok());
  ASSERT_EQ(restored, t1);
  ASSERT_TRUE(session->Upsert(2, uint64_t{30}).ok());
  Checkpoint(store.get());  // post-rollback durable state
  session.reset();
  store->SimulateCrash();
  ASSERT_TRUE(store->RestoreCheckpoint(~0ULL, &restored).ok());
  auto fresh = store->NewSession();
  uint64_t v = 0;
  ASSERT_TRUE(fresh->Read(1, &v).ok());
  EXPECT_EQ(v, 10u);  // the value from t2 must NOT come back
  ASSERT_TRUE(fresh->Read(2, &v).ok());
  EXPECT_EQ(v, 30u);
}

TEST(FasterStoreTest, NonBlockingRollbackWithConcurrentReaders) {
  auto store = NewStore();
  {
    auto session = store->NewSession();
    for (uint64_t k = 0; k < 256; ++k) {
      ASSERT_TRUE(session->Upsert(k, uint64_t{1}).ok());
    }
  }
  const Version token = Checkpoint(store.get());
  {
    auto session = store->NewSession();
    for (uint64_t k = 0; k < 256; ++k) {
      ASSERT_TRUE(session->Upsert(k, uint64_t{2}).ok());
    }
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> saw_bad_value{false};
  std::thread reader([&] {
    auto session = store->NewSession();
    Random rng(3);
    while (!stop.load()) {
      uint64_t v = 0;
      Status s = session->Read(rng.Uniform(256), &v);
      // Readers must only ever see v=1 (committed) or v=2 (pre-rollback) —
      // never torn/invalid data — and after rollback completes, only v=1.
      if (s.ok() && v != 1 && v != 2) saw_bad_value.store(true);
      session->Refresh();
    }
  });
  Version restored;
  ASSERT_TRUE(store->RestoreCheckpoint(token, &restored).ok());
  stop.store(true);
  reader.join();
  EXPECT_FALSE(saw_bad_value.load());
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 256; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(session->Read(k, &v).ok());
    ASSERT_EQ(v, 1u);
  }
}

TEST(FasterStoreTest, RestoreToZeroEmptiesStore) {
  auto store = NewStore();
  auto session = store->NewSession();
  ASSERT_TRUE(session->Upsert(1, uint64_t{1}).ok());
  Version restored;
  ASSERT_TRUE(store->RestoreCheckpoint(0, &restored).ok());
  EXPECT_EQ(restored, kInvalidVersion);
  uint64_t v;
  EXPECT_TRUE(session->Read(1, &v).IsNotFound());
}

TEST(FasterStoreTest, PageSpanningAllocations) {
  // Values near the page size force pad records and page transitions.
  FasterOptions options;
  options.index_buckets = 1 << 8;
  options.page_bits = 12;  // 4 KiB pages
  options.log_device = std::make_unique<MemoryDevice>();
  options.meta_device = std::make_unique<MemoryDevice>();
  FasterStore store(std::move(options));
  auto session = store.NewSession();
  const std::string big(1500, 'y');
  for (uint64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(session->Upsert(k, big).ok());
  }
  for (uint64_t k = 0; k < 64; ++k) {
    std::string v;
    ASSERT_TRUE(session->Read(k, &v).ok());
    ASSERT_EQ(v, big);
  }
  // And survive a crash-recovery cycle across page boundaries.
  Version token;
  ASSERT_TRUE(store.PerformCheckpoint(2, nullptr, &token).ok());
  store.WaitForCheckpoints();
  session.reset();
  store.SimulateCrash();
  Version restored;
  ASSERT_TRUE(store.RestoreCheckpoint(token, &restored).ok());
  auto fresh = store.NewSession();
  for (uint64_t k = 0; k < 64; ++k) {
    std::string v;
    ASSERT_TRUE(fresh->Read(k, &v).ok());
    ASSERT_EQ(v, big);
  }
}

}  // namespace
}  // namespace dpr
