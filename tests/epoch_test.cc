#include "epoch/light_epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dpr {
namespace {

TEST(LightEpochTest, ProtectPublishesCurrentEpoch) {
  LightEpoch epoch;
  EXPECT_FALSE(epoch.IsProtected());
  const uint64_t e = epoch.Protect();
  EXPECT_TRUE(epoch.IsProtected());
  EXPECT_EQ(e, epoch.current_epoch());
  epoch.Unprotect();
  EXPECT_FALSE(epoch.IsProtected());
}

TEST(LightEpochTest, BumpAdvancesEpoch) {
  LightEpoch epoch;
  const uint64_t before = epoch.current_epoch();
  epoch.BumpEpoch();
  EXPECT_EQ(epoch.current_epoch(), before + 1);
}

TEST(LightEpochTest, DrainActionRunsImmediatelyWithNoThreads) {
  LightEpoch epoch;
  std::atomic<int> ran{0};
  epoch.BumpEpoch([&] { ran.fetch_add(1); });
  epoch.TryDrain();
  EXPECT_EQ(ran.load(), 1);
}

TEST(LightEpochTest, DrainWaitsForProtectedThread) {
  LightEpoch epoch;
  epoch.Protect();  // this thread pins the old epoch
  std::atomic<int> ran{0};
  std::thread bumper(
      [&] { epoch.BumpEpoch([&] { ran.fetch_add(1); }); });
  bumper.join();
  // Our published epoch predates the bump; the action must not have run.
  EXPECT_EQ(ran.load(), 0);
  epoch.Refresh();  // we observe the new epoch -> action becomes safe
  EXPECT_EQ(ran.load(), 1);
  epoch.Unprotect();
}

TEST(LightEpochTest, ActionRunsExactlyOnce) {
  LightEpoch epoch;
  std::atomic<int> ran{0};
  epoch.Protect();
  epoch.BumpEpoch([&] { ran.fetch_add(1); });
  for (int i = 0; i < 10; ++i) epoch.Refresh();
  epoch.Unprotect();
  epoch.TryDrain();
  EXPECT_EQ(ran.load(), 1);
}

TEST(LightEpochTest, SafeEpochIsMinOfProtected) {
  LightEpoch epoch;
  epoch.Protect();
  const uint64_t pinned = epoch.current_epoch();
  std::thread other([&] {
    epoch.Protect();
    epoch.Refresh();
    epoch.Unprotect();
  });
  other.join();
  epoch.BumpEpoch();
  epoch.BumpEpoch();
  EXPECT_EQ(epoch.ComputeSafeEpoch(), pinned);
  epoch.Refresh();
  EXPECT_EQ(epoch.ComputeSafeEpoch(), epoch.current_epoch());
  epoch.Unprotect();
}

TEST(LightEpochTest, ManyThreadsManyBumps) {
  LightEpoch epoch;
  constexpr int kThreads = 8;
  constexpr int kBumpsPerThread = 50;
  std::atomic<int> ran{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      epoch.Protect();
      for (int i = 0; i < kBumpsPerThread; ++i) {
        epoch.BumpEpoch([&] { ran.fetch_add(1); });
        epoch.Refresh();
      }
      epoch.Unprotect();
    });
  }
  for (auto& t : threads) t.join();
  epoch.TryDrain();
  EXPECT_EQ(ran.load(), kThreads * kBumpsPerThread);
}

TEST(LightEpochTest, SlotReleasedOnUnprotect) {
  LightEpoch epoch;
  // Churn far more logical threads than kMaxThreads slots.
  for (int i = 0; i < 300; ++i) {
    std::thread worker([&] {
      epoch.Protect();
      epoch.Refresh();
      epoch.Unprotect();
    });
    worker.join();
  }
  SUCCEED();
}

TEST(LightEpochTest, PendingActionsRunAtDestruction) {
  std::atomic<int> ran{0};
  {
    LightEpoch epoch;
    epoch.Protect();
    epoch.BumpEpoch([&] { ran.fetch_add(1); });
    epoch.Unprotect();
  }
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace dpr
