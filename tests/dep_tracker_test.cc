// VersionDependencyTracker: the lock-striped worker-side ingest half of the
// tracking plane must be observationally equivalent to the single-map
// tracker it replaced — no recorded dependency may be lost or weakened, no
// matter how Record() and DrainUpTo() interleave across threads.
#include "dpr/dep_tracker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include "common/sync.h"
#include <thread>
#include <vector>

#include "dpr/types.h"

namespace dpr {
namespace {

TEST(DepTrackerTest, DrainMergesVersionsUpToToken) {
  VersionDependencyTracker tracker(4);
  tracker.Record(1, 5, {{1, 3}}, /*self=*/0);
  tracker.Record(2, 6, {{1, 7}, {2, 2}}, /*self=*/0);
  tracker.Record(3, 9, {{3, 1}}, /*self=*/0);

  DependencySet drained = tracker.DrainUpTo(6);
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[1], 7u);
  EXPECT_EQ(drained[2], 2u);

  // Version 9 stays staged until a later checkpoint covers it.
  EXPECT_EQ(tracker.stats().live_entries, 1u);
  drained = tracker.DrainUpTo(10);
  EXPECT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[3], 1u);
  EXPECT_EQ(tracker.stats().live_entries, 0u);
}

TEST(DepTrackerTest, SelfDependenciesAreImplicit) {
  VersionDependencyTracker tracker(4);
  tracker.Record(1, 2, {{0, 9}, {1, 4}}, /*self=*/0);
  DependencySet drained = tracker.DrainUpTo(2);
  EXPECT_EQ(drained.count(0), 0u);
  EXPECT_EQ(drained[1], 4u);
}

TEST(DepTrackerTest, BatchesWithoutCrossWorkerDepsTakeLockFreePath) {
  VersionDependencyTracker tracker(4);
  tracker.Record(1, 2, {}, /*self=*/0);
  tracker.Record(1, 2, {{0, 1}}, /*self=*/0);  // self-only: nothing to merge
  DepTrackerStats stats = tracker.stats();
  EXPECT_EQ(stats.empty_records, 2u);
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.live_entries, 0u);
  EXPECT_TRUE(tracker.DrainUpTo(100).empty());
}

TEST(DepTrackerTest, ClearDiscardsEverything) {
  VersionDependencyTracker tracker(2);
  tracker.Record(1, 3, {{1, 1}}, /*self=*/0);
  tracker.Record(2, 4, {{2, 5}}, /*self=*/0);
  tracker.Clear();
  EXPECT_EQ(tracker.stats().live_entries, 0u);
  EXPECT_TRUE(tracker.DrainUpTo(100).empty());
}

// Shard count rounds up to a power of two; 1 shard degenerates to the old
// single-map tracker and must still work.
TEST(DepTrackerTest, SingleShardStillCorrect) {
  VersionDependencyTracker tracker(1);
  EXPECT_EQ(tracker.stats().shards, 1u);
  tracker.Record(17, 1, {{1, 2}}, /*self=*/0);
  tracker.Record(99, 1, {{1, 5}}, /*self=*/0);
  DependencySet drained = tracker.DrainUpTo(1);
  EXPECT_EQ(drained[1], 5u);
}

// The equivalence check: N threads record random-ish dependency sets into
// both the striped tracker and a mutex-guarded reference map (the seed's
// data structure), while a drainer thread concurrently drains the tracker.
// Folding every drain together with a max-merge must yield exactly what the
// reference map folds to — dependencies can move between drains, but none
// may be lost or weakened.
TEST(DepTrackerTest, ConcurrentRecordAndDrainLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  constexpr Version kMaxVersion = 64;

  VersionDependencyTracker tracker(8);
  Mutex ref_mu;
  std::map<Version, DependencySet> reference;
  std::atomic<bool> done{false};

  DependencySet collected;
  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire)) {
      MergeDependencies(&collected, tracker.DrainUpTo(kMaxVersion));
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&, t] {
      const uint64_t session = 0x9e3779b9ull * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kPerThread; ++i) {
        const Version v = 1 + ((t * kPerThread + i) % kMaxVersion);
        DependencySet deps;
        if (i % 11 == 0) {
          deps[0] = static_cast<Version>(i + 1);  // self-only: lock-free path
        } else {
          deps[1 + (t % 3)] = static_cast<Version>((i % 97) + 1);
          if (i % 5 == 0) deps[7] = static_cast<Version>(i + 1);
        }
        tracker.Record(session + (i & 15), v, deps, /*self=*/0);
        {
          MutexLock guard(ref_mu);
          for (const auto& [dw, dv] : deps) {
            if (dw == 0) continue;
            MergeDependency(&reference[v], WorkerVersion{dw, dv});
          }
        }
      }
    });
  }
  for (auto& th : recorders) th.join();
  done.store(true, std::memory_order_release);
  drainer.join();
  MergeDependencies(&collected, tracker.DrainUpTo(kMaxVersion));

  DependencySet expected;
  for (const auto& [v, deps] : reference) {
    (void)v;
    MergeDependencies(&expected, deps);
  }
  EXPECT_EQ(collected, expected);

  DepTrackerStats stats = tracker.stats();
  EXPECT_EQ(stats.live_entries, 0u);
  EXPECT_GT(stats.records, 0u);
  EXPECT_GT(stats.empty_records, 0u);  // the i % 11 self-only batches
}

}  // namespace
}  // namespace dpr
