#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/flags.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/latch.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"

namespace dpr {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kIOError);
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::NotOwner().IsNotOwner());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_FALSE(Status::OK().IsNotFound());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::Corruption("bad"); };
  auto outer = [&]() -> Status {
    DPR_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), Status::Code::kCorruption);
}

TEST(StatusTest, NodiscardRejectsSilentDrop) {
  // Status and StatusOr are [[nodiscard]]; the sanctioned discard spelling
  // is an explicit (void) cast, which is what this test exercises.
  auto make = []() { return Status::IOError("disk"); };
  (void)make();
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_TRUE(ok.status().ok());

  StatusOr<int> err(Status::NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), Status::Code::kNotFound);
  EXPECT_EQ(err.status().message(), "missing");
}

TEST(StatusOrTest, OkStatusDegradesToNotFound) {
  // A StatusOr built from Status must never claim to hold a value.
  StatusOr<int> weird{Status::OK()};
  EXPECT_FALSE(weird.ok());
  EXPECT_EQ(weird.status().code(), Status::Code::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> holder(std::make_unique<int>(7));
  ASSERT_TRUE(holder.ok());
  std::unique_ptr<int> out = std::move(holder).value();
  EXPECT_EQ(*out, 7);
}

TEST(StatusOrTest, WorksWithReturnNotOkMacro) {
  auto fetch = [](bool good) -> StatusOr<int> {
    if (!good) return Status::IOError("nope");
    return 5;
  };
  auto use = [&](bool good) -> Status {
    StatusOr<int> got = fetch(good);
    DPR_RETURN_NOT_OK(got.status());
    EXPECT_EQ(got.value(), 5);
    return Status::OK();
  };
  EXPECT_TRUE(use(true).ok());
  EXPECT_EQ(use(false).code(), Status::Code::kIOError);
}

TEST(SliceTest, CompareAndEquality) {
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("abd"));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice().empty());
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  PutLengthPrefixed(&buf, "payload");
  Decoder dec(buf);
  uint32_t a;
  uint64_t b;
  Slice c;
  ASSERT_TRUE(dec.GetFixed32(&a));
  ASSERT_TRUE(dec.GetFixed64(&b));
  ASSERT_TRUE(dec.GetLengthPrefixed(&c));
  EXPECT_EQ(a, 0xdeadbeef);
  EXPECT_EQ(b, 0x0123456789abcdefULL);
  EXPECT_EQ(c, Slice("payload"));
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(CodingTest, DecoderRejectsUnderflow) {
  std::string buf;
  PutFixed32(&buf, 7);
  Decoder dec(buf);
  uint64_t v;
  EXPECT_FALSE(dec.GetFixed64(&v));
  Decoder dec2(buf);
  Slice s;
  EXPECT_FALSE(dec2.GetLengthPrefixed(&s));  // claims 7 bytes, has 0
}

TEST(HashTest, Crc32cKnownVector) {
  // CRC32C("123456789") = 0xe3069283 (iSCSI test vector).
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
}

TEST(HashTest, Crc32cDetectsCorruption) {
  std::string data = "The quick brown fox";
  const uint32_t crc = Crc32c(data.data(), data.size());
  data[3] ^= 1;
  EXPECT_NE(Crc32c(data.data(), data.size()), crc);
}

TEST(HashTest, HashBytesSpreads) {
  std::map<uint64_t, int> buckets;
  for (uint64_t i = 0; i < 10000; ++i) {
    buckets[HashBytes(&i, 8) % 16]++;
  }
  for (const auto& [b, count] : buckets) {
    EXPECT_GT(count, 400) << "bucket " << b;
    EXPECT_LT(count, 900) << "bucket " << b;
  }
}

TEST(RandomTest, DeterministicFromSeed) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(17), 17u);
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

class ZipfianTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfianTest, SamplesInRangeAndSkewed) {
  const double theta = GetParam();
  const uint64_t n = 1000;
  ZipfianGenerator gen(n, theta, 99, /*scramble=*/false);
  std::vector<uint64_t> counts(n, 0);
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    const uint64_t k = gen.Next();
    ASSERT_LT(k, n);
    counts[k]++;
  }
  // Rank-0 frequency should approximate 1/zeta(n, theta); check the shape:
  // rank 0 strictly dominates rank 99, and the head dominates the tail.
  EXPECT_GT(counts[0], counts[99]);
  uint64_t head = 0;
  uint64_t tail = 0;
  for (uint64_t i = 0; i < 10; ++i) head += counts[i];
  for (uint64_t i = n - 10; i < n; ++i) tail += counts[i];
  EXPECT_GT(head, tail * 2);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfianTest,
                         ::testing::Values(0.5, 0.9, 0.99));

TEST(ZipfianTest, ScrambleSpreadsHotKeys) {
  ZipfianGenerator gen(1 << 20, 0.99, 7, /*scramble=*/true);
  // With scrambling, the most frequent key should not be key 0.
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[gen.Next()]++;
  uint64_t hottest = 0;
  int best = 0;
  for (const auto& [k, c] : counts) {
    if (c > best) {
      best = c;
      hottest = k;
    }
  }
  EXPECT_NE(hottest, 0u);
  EXPECT_GT(best, 500);  // still heavily skewed
}

TEST(HistogramTest, PercentilesAndMerge) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Mean(), 500.5, 0.01);
  // Log-bucketed: allow ~7% relative error at p50.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500, 40);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 990, 70);

  Histogram other;
  other.Record(5000);
  h.Merge(other);
  EXPECT_EQ(h.count(), 1001u);
  EXPECT_EQ(h.max(), 5000u);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.min(), 0u);
}

TEST(FlagsTest, ParsesKeyValueAndBools) {
  const char* argv[] = {"prog", "--threads=8", "--name=test", "--verbose",
                        "--ratio=0.25"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("threads", 1), 8);
  EXPECT_EQ(flags.GetString("name", ""), "test");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 1.0), 0.25);
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(LatchTest, SpinLatchMutualExclusion) {
  SpinLatch latch;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SpinLatchGuard guard(latch);
        counter++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(LatchTest, SharedLatchAllowsReadersBlocksWriter) {
  SharedSpinLatch latch;
  latch.LockShared();
  latch.LockShared();  // multiple readers fine
  std::atomic<bool> writer_in{false};
  std::thread writer([&] {
    latch.LockExclusive();
    writer_in.store(true);
    latch.UnlockExclusive();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_in.load());
  latch.UnlockShared();
  latch.UnlockShared();
  writer.join();
  EXPECT_TRUE(writer_in.load());
}

}  // namespace
}  // namespace dpr
