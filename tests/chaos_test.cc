// Chaos-harness tests (tier-1 `chaos` label):
//   - 200 seeded fault schedules run end to end with every checker green
//     (monotone commit points, dependency-closed cuts, no reneged
//     guarantees, bounded drain, value-level prefix consistency);
//   - the replay contract: ChaosSchedule::Generate is a pure function of
//     the seed, so any printed seed regenerates the identical schedule;
//   - a threaded probe stress for the TSan job (DPR_SANITIZE=thread).
#include "harness/chaos.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "fault/fault_plane.h"
#include "harness/cluster.h"

namespace dpr {
namespace {

// Runs one seeded schedule and fails loudly with the replayable seed.
void RunSeed(uint64_t seed) {
  ChaosOptions options;
  options.seed = seed;
  ChaosReport report;
  const Status s = RunChaos(options, &report);
  ASSERT_TRUE(s.ok()) << report.violation;
  ASSERT_TRUE(report.violation.empty()) << report.violation;
  EXPECT_GT(report.ops, 0u) << "seed " << seed << " admitted no operations";
}

void RunSeedRange(uint64_t lo, uint64_t hi) {
  for (uint64_t seed = lo; seed <= hi; ++seed) RunSeed(seed);
}

// 200 seeds, sharded so a failure narrows the range (and each shard stays
// well under the ctest timeout).
TEST(ChaosQuickTest, Seeds1To50) { RunSeedRange(1, 50); }
TEST(ChaosQuickTest, Seeds51To100) { RunSeedRange(51, 100); }
TEST(ChaosQuickTest, Seeds101To150) { RunSeedRange(101, 150); }
TEST(ChaosQuickTest, Seeds151To200) { RunSeedRange(151, 200); }

TEST(ChaosReplayTest, GenerateIsAPureFunctionOfTheSeed) {
  for (const uint64_t seed :
       {1ull, 7ull, 42ull, 1234567ull, 0xdeadbeefull}) {
    ChaosOptions options;
    options.seed = seed;
    const std::string first = ChaosSchedule::Generate(options).ToString();
    const std::string second = ChaosSchedule::Generate(options).ToString();
    EXPECT_EQ(first, second) << "schedule for seed " << seed
                             << " is not replayable";
    EXPECT_NE(first.find("seed=" + std::to_string(seed)), std::string::npos);
  }
}

TEST(ChaosReplayTest, SeedsActuallyVaryTheSchedule) {
  std::set<std::string> distinct;
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    ChaosOptions options;
    options.seed = seed;
    distinct.insert(ChaosSchedule::Generate(options).ToString());
  }
  // Schedules embed the seed so all 32 differ trivially; the event lists
  // themselves must vary too, which this bounds from below.
  EXPECT_EQ(distinct.size(), 32u);
}

TEST(ChaosReplayTest, RerunReproducesIdenticalFaultSchedule) {
  ChaosOptions options;
  options.seed = 99;
  ChaosReport first;
  ChaosReport second;
  ASSERT_TRUE(RunChaos(options, &first).ok()) << first.violation;
  ASSERT_TRUE(RunChaos(options, &second).ok()) << second.violation;
  EXPECT_EQ(first.schedule.ToString(), second.schedule.ToString());
}

// Threaded probe stress for TSan: client threads hammer a cluster while
// benign rules (delay, duplicate, slow fsync) fire concurrently on the
// transport and device probe paths. No invariant beyond "completes and
// stays race-free" — the seeded schedules above own the semantics.
TEST(ChaosThreadedTest, ProbesAreThreadSafeUnderLoad) {
  ScopedFaultPlane plane(5);
  ClusterOptions options;
  options.num_workers = 2;
  options.checkpoint_interval_us = 10000;
  options.finder_interval_us = 5000;
  DFasterCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  FaultPlane::Instance().Arm(
      {.point = faults::kNetDelay, .probability = 0.05, .param = 200});
  FaultPlane::Instance().Arm(
      {.point = faults::kNetDuplicate, .probability = 0.02});
  FaultPlane::Instance().Arm(
      {.point = faults::kDevSlowFsync, .probability = 0.1, .param = 500});

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      auto client = cluster.NewClient(4, 32);
      auto session = client->NewSession(200 + t);
      Random rng(t);
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 32; ++i) {
          session->Upsert(rng.Uniform(512), rng.Next(),
                          [&](KvResult, uint64_t) {
                            completed.fetch_add(1, std::memory_order_relaxed);
                          });
        }
        if (!session->WaitForAll(20000).ok()) break;
        if (session->needs_failure_handling()) {
          DprSession::CommitPoint survivors;
          (void)session->RecoverFromFailure(&survivors);
        }
      }
      (void)session->WaitForAll(20000);
    });
  }
  SleepMicros(400 * 1000);
  stop.store(true);
  for (auto& t : clients) t.join();
  // Counters live on the armed rules: read them before disarming.
  const uint64_t delay_hits = FaultPlane::Instance().hits(faults::kNetDelay);
  FaultPlane::Instance().DisarmAll();
  EXPECT_GT(completed.load(), 0u);
  EXPECT_GT(delay_hits, 0u) << "the transport probes never ran";
}

}  // namespace
}  // namespace dpr
