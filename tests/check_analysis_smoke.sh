#!/usr/bin/env bash
# Smoke test for the scripts/check_analysis.sh lint layer (tier-1, label
# `analysis`): dprlint must pass on the real tree, every check ID must fire
# on a seeded violation, and the uniform `dprlint: allowed(<id>)` opt-out
# must suppress each. ctest exports DPRLINT=<built binary>; running this by
# hand needs a built dprlint (or check_analysis.sh finds one under build*/).
set -eu

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CHECK="$REPO_ROOT/scripts/check_analysis.sh"

echo "--- dprlint passes on the real tree"
"$CHECK" --lint-only

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# expect_finding <check-id> : the last seeded tree must produce exactly that
# check (grep on the [check-id] tag in the text output), and the gate must
# exit nonzero. expect_clean : the gate must pass.
expect_finding() {
  local id="$1"
  local out
  if out=$("$CHECK" --lint-only "$TMP" 2>&1); then
    echo "FAIL: lint accepted a seeded $id violation"
    echo "$out"
    exit 1
  fi
  if ! printf '%s\n' "$out" | grep -q "\[$id\]"; then
    echo "FAIL: expected a [$id] finding, got:"
    echo "$out"
    exit 1
  fi
}
expect_clean() {
  "$CHECK" --lint-only "$TMP"
}

echo "--- sync-prim fires on a naked std::mutex"
cat > "$TMP/bad.cc" <<'EOF'
#include <mutex>
std::mutex naked_mu;  // seeded violation
EOF
expect_finding sync-prim

echo "--- sync-prim honors the justified opt-out marker"
cat > "$TMP/bad.cc" <<'EOF'
#include <mutex>
// dprlint: allowed(sync-prim) third-party API interop needs the raw type.
std::mutex interop_mu;
EOF
expect_clean

echo "--- sync-prim ignores the spelling inside comments and strings"
cat > "$TMP/bad.cc" <<'EOF'
// a std::mutex mentioned in prose is fine
const char* kDoc = "std::mutex";
const char* kRaw = R"(std::lock_guard<std::mutex> g(mu);)";
EOF
expect_clean
rm -f "$TMP/bad.cc"

echo "--- net-raw-write fires on a raw send(2) under net/"
mkdir -p "$TMP/net"
cat > "$TMP/net/raw.cc" <<'EOF'
#include <sys/socket.h>
void Leak(int fd, const char* buf, unsigned long n) {
  (void)send(fd, buf, n, 0);  // seeded violation
}
EOF
expect_finding net-raw-write

echo "--- net-raw-write honors the justified opt-out marker"
cat > "$TMP/net/raw.cc" <<'EOF'
#include <sys/socket.h>
void Nudge(int fd, const char* buf, unsigned long n) {
  // dprlint: allowed(net-raw-write) control-plane nudge, not frame bytes.
  (void)send(fd, buf, n, 0);
}
EOF
expect_clean

echo "--- net-raw-write fires on a raw sendmsg(2) under net/"
cat > "$TMP/net/raw.cc" <<'EOF'
#include <sys/socket.h>
void Flush(int fd, msghdr* msg) {
  (void)sendmsg(fd, msg, 0);  // seeded violation
}
EOF
expect_finding net-raw-write

echo "--- net-raw-write fires on a hand-rolled io_uring_enter under net/"
cat > "$TMP/net/raw.cc" <<'EOF'
void Submit(int ring_fd) {
  (void)io_uring_enter(ring_fd, 1, 0, 0);  // seeded violation
}
EOF
expect_finding net-raw-write

echo "--- net-raw-write skips qualified ring-helper calls (ring.enter style)"
cat > "$TMP/net/raw.cc" <<'EOF'
struct Ring;
void Submit(Ring* ring) { (void)ring->io_uring_enter(1); }
EOF
expect_clean
rm -rf "$TMP/net"

echo "--- storage-raw-io fires on a raw pwrite(2) outside storage/"
cat > "$TMP/rawio.cc" <<'EOF'
#include <unistd.h>
void Leak(int fd, const char* buf, unsigned long n) {
  (void)pwrite(fd, buf, n, 0);  // seeded violation
  (void)fsync(fd);
}
EOF
expect_finding storage-raw-io

echo "--- storage-raw-io honors the file-scope opt-out marker"
cat > "$TMP/rawio.cc" <<'EOF'
// dprlint: allowed-file(storage-raw-io) bootstrap path before the engine.
#include <unistd.h>
void Nudge(int fd, const char* buf, unsigned long n) {
  (void)pwrite(fd, buf, n, 0);
  (void)fsync(fd);
}
EOF
expect_clean

echo "--- storage-raw-io exempts files under a storage/ backend directory"
mkdir -p "$TMP/storage"
mv "$TMP/rawio.cc" "$TMP/storage/engine.cc"
sed -i 's|// dprlint: allowed-file.*||' "$TMP/storage/engine.cc"
expect_clean
rm -rf "$TMP/storage"

echo "--- device-shim fires on a retired blocking Device member call"
cat > "$TMP/shim.cc" <<'EOF'
template <typename D> void Use(D* dev) {
  dev->WriteAt(0, "x", 1);  // seeded violation
}
EOF
expect_finding device-shim

echo "--- device-shim honors the justified opt-out marker"
cat > "$TMP/shim.cc" <<'EOF'
template <typename D> void Use(D* dev) {
  // dprlint: allowed(device-shim) unrelated API that shares the name.
  dev->WriteAt(0, "x", 1);
}
EOF
expect_clean
rm -f "$TMP/shim.cc"

echo "--- ckpt-interval fires on a fixed-interval checkpoint timer loop"
cat > "$TMP/timer.cc" <<'EOF'
struct Store;
bool stopped();
void SleepMicros(unsigned long us);
void Loop(Store* store, unsigned long checkpoint_interval_us) {
  while (!stopped()) {
    SleepMicros(checkpoint_interval_us);  // seeded violation
    store->TryCommit(0);
  }
}
EOF
expect_finding ckpt-interval

echo "--- ckpt-interval honors the justified opt-out marker"
cat > "$TMP/timer.cc" <<'EOF'
struct Store;
bool stopped();
void SleepMicros(unsigned long us);
void Loop(Store* store, unsigned long checkpoint_interval_us) {
  while (!stopped()) {
    // dprlint: allowed(ckpt-interval) GC pacing borrowing the constant.
    SleepMicros(checkpoint_interval_us);
    store->TryCommit(0);
  }
}
EOF
expect_clean

echo "--- ckpt-interval exempts the cadence controller plane itself"
mkdir -p "$TMP/ckpt"
mv "$TMP/timer.cc" "$TMP/ckpt/cadence.cc"
sed -i 's|// dprlint: allowed.*||' "$TMP/ckpt/cadence.cc"
expect_clean
rm -rf "$TMP/ckpt"

echo "--- ckpt-interval ignores sleeps in files that never drive checkpoints"
cat > "$TMP/pacer.cc" <<'EOF'
void SleepMicros(unsigned long us);
void Pace(unsigned long checkpoint_interval_us) {
  SleepMicros(checkpoint_interval_us);  // no checkpoint call in this file
}
EOF
expect_clean
rm -f "$TMP/pacer.cc"

echo "--- lock-blocking fires on SyncIo under a live guard"
cat > "$TMP/lock.cc" <<'EOF'
struct Mutex {};
struct MutexLock { explicit MutexLock(Mutex& m); };
struct SyncIo { static int Write(int); };
Mutex mu_;
void Hold() {
  MutexLock guard(mu_);
  SyncIo::Write(1);  // seeded violation
}
EOF
expect_finding lock-blocking

echo "--- lock-blocking honors the justified opt-out marker"
cat > "$TMP/lock.cc" <<'EOF'
struct Mutex {};
struct MutexLock { explicit MutexLock(Mutex& m); };
struct SyncIo { static int Write(int); };
Mutex mu_;
void Hold() {
  MutexLock guard(mu_);
  // dprlint: allowed(lock-blocking) the lock is this device's serializer.
  SyncIo::Write(1);
}
EOF
expect_clean
rm -f "$TMP/lock.cc"

echo "--- status-discard fires on a dropped Status return"
cat > "$TMP/status.cc" <<'EOF'
struct Status {};
Status DoWork();
void Caller() {
  DoWork();  // seeded violation: Status silently dropped
}
EOF
expect_finding status-discard

echo "--- status-discard accepts the (void) spelling and the marker"
cat > "$TMP/status.cc" <<'EOF'
struct Status {};
Status DoWork();
Status Other();
void Caller() {
  (void)DoWork();  // sanctioned discard spelling
  // dprlint: allowed(status-discard) best-effort probe; failure is fine.
  Other();
}
EOF
expect_clean
rm -f "$TMP/status.cc"

echo "--- atomic-comment fires on an undocumented atomic field"
cat > "$TMP/atomic.cc" <<'EOF'
#include <atomic>
struct S {
  std::atomic<int> hot_{0};
};
EOF
expect_finding atomic-comment

echo "--- atomic-relaxed fires on an unjustified relaxed operation"
cat > "$TMP/atomic.cc" <<'EOF'
#include <atomic>
std::atomic<int>* Cell();
int Peek() { return Cell()->load(std::memory_order_relaxed); }
EOF
expect_finding atomic-relaxed

echo "--- atomic checks honor the invariant comment (decl justifies uses)"
cat > "$TMP/atomic.cc" <<'EOF'
#include <atomic>
struct S {
  // relaxed: independent stat counter; only atomicity matters.
  std::atomic<int> hot_{0};
  int Peek() { return hot_.load(std::memory_order_relaxed); }
};
EOF
expect_clean
rm -f "$TMP/atomic.cc"

echo "--- callback-lock fires on a stored callback invoked under a guard"
cat > "$TMP/cb.cc" <<'EOF'
#include <functional>
struct Mutex {};
struct MutexLock { explicit MutexLock(Mutex& m); };
struct S {
  Mutex mu_;
  std::function<void()> on_event_;
  void Fire() {
    MutexLock guard(mu_);
    on_event_();  // seeded violation
  }
};
EOF
expect_finding callback-lock

echo "--- callback-lock honors the justified opt-out marker"
cat > "$TMP/cb.cc" <<'EOF'
#include <functional>
struct Mutex {};
struct MutexLock { explicit MutexLock(Mutex& m); };
struct S {
  Mutex mu_;
  std::function<void()> on_event_;
  void Fire() {
    MutexLock guard(mu_);
    // dprlint: allowed(callback-lock) contract: callee takes no locks.
    on_event_();
  }
};
EOF
expect_clean
rm -f "$TMP/cb.cc"

echo "--- allow-syntax fires on a marker with an unknown check ID"
cat > "$TMP/marker.cc" <<'EOF'
// dprlint: allowed(no-such-check) bogus marker must be reported.
int x;
EOF
expect_finding allow-syntax

echo "--- allow-syntax fires on a marker without a justification"
cat > "$TMP/marker.cc" <<'EOF'
#include <mutex>
// dprlint: allowed(sync-prim)
std::mutex mu;
EOF
expect_finding allow-syntax
rm -f "$TMP/marker.cc"

echo "PASS"
