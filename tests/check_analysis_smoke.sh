#!/usr/bin/env bash
# Smoke test for the scripts/check_analysis.sh lint layer (tier-1, label
# `analysis`): the lint must pass on the real tree, must fire on a seeded
# naked-primitive violation, and must honor the `sync-lint: allowed` opt-out.
set -eu

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CHECK="$REPO_ROOT/scripts/check_analysis.sh"

echo "--- lint passes on the real tree"
"$CHECK" --lint-only

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "--- lint fires on a seeded violation"
cat > "$TMP/bad.cc" <<'EOF'
#include <mutex>
std::mutex naked_mu;  // seeded violation: lint must flag this line
EOF
if "$CHECK" --lint-only "$TMP"; then
  echo "FAIL: lint accepted a seeded std::mutex outside common/sync.h"
  exit 1
fi

echo "--- lint honors the justified opt-out marker"
cat > "$TMP/bad.cc" <<'EOF'
#include <mutex>
std::mutex interop_mu;  // sync-lint: allowed (third-party API interop)
EOF
"$CHECK" --lint-only "$TMP"

echo "PASS"
