#!/usr/bin/env bash
# Smoke test for the scripts/check_analysis.sh lint layer (tier-1, label
# `analysis`): the lint must pass on the real tree, must fire on a seeded
# naked-primitive violation, and must honor the `sync-lint: allowed` opt-out.
set -eu

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CHECK="$REPO_ROOT/scripts/check_analysis.sh"

echo "--- lint passes on the real tree"
"$CHECK" --lint-only

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "--- lint fires on a seeded violation"
cat > "$TMP/bad.cc" <<'EOF'
#include <mutex>
std::mutex naked_mu;  // seeded violation: lint must flag this line
EOF
if "$CHECK" --lint-only "$TMP"; then
  echo "FAIL: lint accepted a seeded std::mutex outside common/sync.h"
  exit 1
fi

echo "--- lint honors the justified opt-out marker"
cat > "$TMP/bad.cc" <<'EOF'
#include <mutex>
std::mutex interop_mu;  // sync-lint: allowed (third-party API interop)
EOF
"$CHECK" --lint-only "$TMP"

echo "--- net lint fires on a raw send(2) under net/"
mkdir -p "$TMP/net"
cat > "$TMP/net/raw.cc" <<'EOF'
#include <sys/socket.h>
void Leak(int fd, const char* buf, unsigned long n) {
  (void)send(fd, buf, n, 0);  // seeded violation: bypasses the flush helpers
}
EOF
if "$CHECK" --lint-only "$TMP"; then
  echo "FAIL: net lint accepted a raw send(2) under net/"
  exit 1
fi

echo "--- net lint honors the justified opt-out marker"
cat > "$TMP/net/raw.cc" <<'EOF'
#include <sys/socket.h>
void Nudge(int fd, const char* buf, unsigned long n) {
  // net-lint: allowed — control-plane nudge, not frame bytes.
  (void)send(fd, buf, n, 0);
}
EOF
"$CHECK" --lint-only "$TMP"

echo "--- storage lint fires on a raw pwrite(2) outside storage/"
rm -rf "$TMP/net"
cat > "$TMP/rawio.cc" <<'EOF'
#include <unistd.h>
void Leak(int fd, const char* buf, unsigned long n) {
  (void)pwrite(fd, buf, n, 0);  // seeded violation: bypasses the IoEngine
  (void)fsync(fd);
}
EOF
if "$CHECK" --lint-only "$TMP"; then
  echo "FAIL: storage lint accepted a raw pwrite(2) outside storage/"
  exit 1
fi

echo "--- storage lint honors the justified opt-out marker"
cat > "$TMP/rawio.cc" <<'EOF'
#include <unistd.h>
void Nudge(int fd, const char* buf, unsigned long n) {
  // storage-lint: allowed — bootstrap write before the engine exists.
  (void)pwrite(fd, buf, n, 0);
  (void)fsync(fd);  // storage-lint: allowed (same bootstrap path)
}
EOF
"$CHECK" --lint-only "$TMP"

echo "--- storage lint exempts files under a storage/ backend directory"
mkdir -p "$TMP/storage"
mv "$TMP/rawio.cc" "$TMP/storage/engine.cc"
sed -i 's|// storage-lint: allowed.*||' "$TMP/storage/engine.cc"
"$CHECK" --lint-only "$TMP"

echo "--- shim lint fires on a retired blocking Device member call"
rm -rf "$TMP/storage"
cat > "$TMP/shim.cc" <<'EOF'
struct Dev;
void Leak(Dev* dev);
template <typename D> void Use(D* dev) {
  dev->WriteAt(0, "x", 1);  // seeded violation: blocking shim is retired
}
EOF
if "$CHECK" --lint-only "$TMP"; then
  echo "FAIL: shim lint accepted a Device::WriteAt member call"
  exit 1
fi

echo "--- shim lint honors the justified opt-out marker"
cat > "$TMP/shim.cc" <<'EOF'
template <typename D> void Use(D* dev) {
  // storage-lint: allowed — unrelated API that happens to share the name.
  dev->WriteAt(0, "x", 1);
}
EOF
"$CHECK" --lint-only "$TMP"

echo "--- ckpt lint fires on a fixed-interval checkpoint timer loop"
rm -f "$TMP/shim.cc"
cat > "$TMP/timer.cc" <<'EOF'
struct Store;
bool stopped();
void SleepMicros(unsigned long us);
void Fire(Store* store);
void Loop(Store* store, unsigned long checkpoint_interval_us) {
  while (!stopped()) {
    SleepMicros(checkpoint_interval_us);  // seeded violation: fixed cadence
    store->TryCommit(0);
  }
}
EOF
if "$CHECK" --lint-only "$TMP"; then
  echo "FAIL: ckpt lint accepted a fixed-interval checkpoint timer loop"
  exit 1
fi

echo "--- ckpt lint honors the justified opt-out marker"
cat > "$TMP/timer.cc" <<'EOF'
struct Store;
bool stopped();
void SleepMicros(unsigned long us);
void Loop(Store* store, unsigned long checkpoint_interval_us) {
  while (!stopped()) {
    // ckpt-lint: allowed — GC pacing borrowing the interval constant.
    SleepMicros(checkpoint_interval_us);
    store->TryCommit(0);
  }
}
EOF
"$CHECK" --lint-only "$TMP"

echo "--- ckpt lint exempts the cadence controller plane itself"
mkdir -p "$TMP/ckpt"
mv "$TMP/timer.cc" "$TMP/ckpt/cadence.cc"
sed -i 's|// ckpt-lint: allowed.*||' "$TMP/ckpt/cadence.cc"
"$CHECK" --lint-only "$TMP"

echo "--- ckpt lint ignores sleeps in files that never drive checkpoints"
rm -rf "$TMP/ckpt"
cat > "$TMP/pacer.cc" <<'EOF'
void SleepMicros(unsigned long us);
void Pace(unsigned long checkpoint_interval_us) {
  SleepMicros(checkpoint_interval_us);  // no checkpoint call in this file
}
EOF
"$CHECK" --lint-only "$TMP"

echo "PASS"
