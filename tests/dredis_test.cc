#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <cstring>

#include "common/clock.h"
#include "harness/cluster.h"

namespace dpr {
namespace {

RedisClusterOptions SmallOptions(RedisDeployment deployment) {
  RedisClusterOptions options;
  options.num_shards = 2;
  options.deployment = deployment;
  options.checkpoint_interval_us = 20000;
  options.finder_interval_us = 5000;
  return options;
}

class DRedisDeploymentTest
    : public ::testing::TestWithParam<RedisDeployment> {};

TEST_P(DRedisDeploymentTest, SetGetAcrossShards) {
  DRedisCluster cluster(SmallOptions(GetParam()));
  ASSERT_TRUE(cluster.Start().ok());
  auto client = cluster.NewClient(/*batch=*/4, /*window=*/64);
  auto session = client->NewSession(1);
  for (uint64_t k = 0; k < 100; ++k) session->Set(k, k * 2);
  ASSERT_TRUE(session->WaitForAll().ok());
  std::atomic<uint64_t> sum{0};
  std::atomic<int> errors{0};
  for (uint64_t k = 0; k < 100; ++k) {
    session->Get(k, [&](Status s, Slice value) {
      if (s.ok() && value.size() == 8) {
        uint64_t v;
        memcpy(&v, value.data(), 8);
        sum.fetch_add(v);
      } else {
        errors.fetch_add(1);
      }
    });
  }
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(sum.load(), 2u * (99 * 100 / 2));
}

INSTANTIATE_TEST_SUITE_P(Deployments, DRedisDeploymentTest,
                         ::testing::Values(RedisDeployment::kDirect,
                                           RedisDeployment::kPassThrough,
                                           RedisDeployment::kDpr),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case RedisDeployment::kDirect:
                               return "Redis";
                             case RedisDeployment::kPassThrough:
                               return "RedisProxy";
                             case RedisDeployment::kDpr:
                               return "DRedis";
                           }
                           return "Unknown";
                         });

TEST(DRedisTest, CommitsAdvanceViaBgSave) {
  DRedisCluster cluster(SmallOptions(RedisDeployment::kDpr));
  ASSERT_TRUE(cluster.Start().ok());
  auto client = cluster.NewClient(4, 64);
  auto session = client->NewSession(2);
  for (uint64_t k = 0; k < 50; ++k) session->Set(k, k);
  ASSERT_TRUE(session->WaitForAll().ok());
  const uint64_t target = session->dpr().next_seqno();
  // Checkpoints fire every 20 ms; the commit point must eventually cover
  // everything. Nudge with pings (empty batches piggyback watermarks).
  Stopwatch timer;
  for (;;) {
    const auto point = session->dpr().GetCommitPoint();
    if (point.prefix_end >= target && point.excluded.empty()) break;
    ASSERT_LT(timer.ElapsedMillis(), 20000u) << "commit never arrived";
    // Commit notifications piggyback on responses: touch every shard so the
    // session learns both watermarks.
    for (uint64_t k = 0; k < 2; ++k) {
      uint64_t key = 0;
      while (DRedisClient::ShardOf(key, 2) != k) key++;
      session->Get(key, nullptr);
    }
    ASSERT_TRUE(session->WaitForAll().ok());
    SleepMicros(5000);
  }
  // Snapshots actually exist on the unmodified stores.
  EXPECT_GT(cluster.store(0)->LastSave(), 0u);
  EXPECT_GT(cluster.store(1)->LastSave(), 0u);
}

TEST(DRedisTest, UnmodifiedStoreNeverSeesDprHeaders) {
  // The store executes raw command batches: after a full DPR session the
  // store's key count matches exactly the keys written (no header bytes
  // leaked into the command stream).
  DRedisCluster cluster(SmallOptions(RedisDeployment::kDpr));
  ASSERT_TRUE(cluster.Start().ok());
  auto client = cluster.NewClient(8, 64);
  auto session = client->NewSession(3);
  for (uint64_t k = 0; k < 64; ++k) session->Set(k, 1);
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_EQ(cluster.store(0)->size() + cluster.store(1)->size(), 64u);
}

}  // namespace
}  // namespace dpr

namespace dpr {
namespace {

TEST(DRedisFailureTest, CrashRollsBackToSnapshotCut) {
  DRedisCluster cluster(SmallOptions(RedisDeployment::kDpr));
  ASSERT_TRUE(cluster.Start().ok());
  auto client = cluster.NewClient(4, 64);
  auto session = client->NewSession(9);

  // Phase 1: write, then wait until everything is committed (covered by
  // durable BGSAVE snapshots on both shards).
  for (uint64_t k = 0; k < 40; ++k) session->Set(k, 1);
  ASSERT_TRUE(session->WaitForAll().ok());
  const uint64_t target = session->dpr().next_seqno();
  Stopwatch timer;
  for (;;) {
    const auto point = session->dpr().GetCommitPoint();
    if (point.prefix_end >= target && point.excluded.empty()) break;
    ASSERT_LT(timer.ElapsedMillis(), 20000u);
    for (uint64_t s = 0; s < 2; ++s) {
      uint64_t key = 0;
      while (DRedisClient::ShardOf(key, 2) != s) key++;
      session->Get(key, nullptr);
    }
    ASSERT_TRUE(session->WaitForAll().ok());
    SleepMicros(5000);
  }

  // Phase 2: more writes that may not be committed, then shard 0 crashes.
  for (uint64_t k = 0; k < 40; ++k) session->Set(k, 2);
  ASSERT_TRUE(session->WaitForAll().ok());
  ASSERT_TRUE(cluster.InjectFailure({0}).ok());

  // The session learns of the world-line shift and recovers its prefix.
  timer.Reset();
  while (!session->dpr().needs_failure_handling()) {
    ASSERT_LT(timer.ElapsedMillis(), 10000u);
    for (uint64_t k = 0; k < 4; ++k) session->Get(k, nullptr);
    ASSERT_TRUE(session->WaitForAll().ok());
    SleepMicros(2000);
  }
  WorldLine wl;
  DprCut cut;
  cluster.cluster_manager()->GetRecoveryInfo(&wl, &cut);
  const auto survivors = session->dpr().HandleFailure(wl, cut);
  EXPECT_GE(survivors.prefix_end, target);  // phase 1 never reneged

  // Phase 3: the wrapped, unmodified store keeps serving on the new
  // world-line and commits again.
  for (uint64_t k = 0; k < 40; ++k) session->Set(k, 3);
  ASSERT_TRUE(session->WaitForAll().ok());
  std::atomic<int> threes{0};
  for (uint64_t k = 0; k < 40; ++k) {
    session->Get(k, [&](Status s, Slice value) {
      uint64_t v = 0;
      if (s.ok() && value.size() == 8) memcpy(&v, value.data(), 8);
      if (v == 3) threes.fetch_add(1);
    });
  }
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_EQ(threes.load(), 40);
}

}  // namespace
}  // namespace dpr
