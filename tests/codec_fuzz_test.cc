// Decode-side fuzzing: every wire/disk codec must reject or cleanly consume
// arbitrary byte strings without crashing, and every valid encoding must
// round-trip exactly.
#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "dfaster/protocol.h"
#include "dpr/header.h"
#include "respstore/resp_store.h"

namespace dpr {
namespace {

std::string RandomBytes(Random& rng, size_t max_len) {
  std::string out;
  const size_t n = rng.Uniform(max_len + 1);
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng.Uniform(256)));
  }
  return out;
}

class CodecFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecFuzz, DecodersSurviveGarbage) {
  Random rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::string bytes = RandomBytes(rng, 256);
    {
      DprRequestHeader h;
      (void)h.DecodeFrom(bytes);
    }
    {
      DprResponseHeader h;
      (void)h.DecodeFrom(bytes);
    }
    {
      KvBatchRequest r;
      (void)r.DecodeFrom(bytes);
    }
    {
      KvBatchResponse r;
      (void)r.DecodeFrom(bytes);
    }
    {
      RespCommand c;
      size_t consumed;
      (void)c.DecodeFrom(bytes, &consumed);
    }
    {
      RespReply r;
      size_t consumed;
      (void)r.DecodeFrom(bytes, &consumed);
    }
  }
  SUCCEED();
}

TEST_P(CodecFuzz, ValidEncodingsRoundTrip) {
  Random rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    // Request header.
    DprRequestHeader req;
    req.session_id = rng.Next();
    req.world_line = rng.Uniform(100) + 1;
    req.version = rng.Next() % 10000;
    const int deps = static_cast<int>(rng.Uniform(5));
    for (int d = 0; d < deps; ++d) {
      req.deps[static_cast<WorkerId>(rng.Uniform(16))] = rng.Uniform(1000);
    }
    std::string buf;
    req.EncodeTo(&buf);
    DprRequestHeader decoded;
    size_t consumed = 0;
    ASSERT_TRUE(decoded.DecodeFrom(buf, &consumed));
    ASSERT_EQ(consumed, buf.size());
    ASSERT_EQ(decoded.session_id, req.session_id);
    ASSERT_EQ(decoded.world_line, req.world_line);
    ASSERT_EQ(decoded.version, req.version);
    ASSERT_EQ(decoded.deps, req.deps);

    // Batch with random ops.
    KvBatchRequest batch;
    batch.header = req;
    const int n = static_cast<int>(rng.Uniform(20));
    for (int o = 0; o < n; ++o) {
      batch.ops.push_back(
          KvOp{static_cast<KvOp::Type>(1 + rng.Uniform(4)), rng.Next(),
               rng.Next()});
    }
    std::string encoded;
    batch.EncodeTo(&encoded);
    KvBatchRequest round;
    ASSERT_TRUE(round.DecodeFrom(encoded));
    ASSERT_EQ(round.ops.size(), batch.ops.size());
    for (size_t o = 0; o < batch.ops.size(); ++o) {
      ASSERT_EQ(round.ops[o].key, batch.ops[o].key);
      ASSERT_EQ(round.ops[o].value, batch.ops[o].value);
      ASSERT_EQ(static_cast<int>(round.ops[o].type),
                static_cast<int>(batch.ops[o].type));
    }

    // Resp command stream.
    RespCommand cmd;
    cmd.op = static_cast<RespOp>(1 + rng.Uniform(7));
    cmd.key = RandomBytes(rng, 32);
    cmd.value = RandomBytes(rng, 64);
    std::string cbuf;
    cmd.EncodeTo(&cbuf);
    RespCommand cround;
    ASSERT_TRUE(cround.DecodeFrom(cbuf, &consumed));
    ASSERT_EQ(consumed, cbuf.size());
    ASSERT_EQ(cround.key, cmd.key);
    ASSERT_EQ(cround.value, cmd.value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(101, 202, 303));

TEST(CodecFuzzTest, TruncatedValidEncodingsRejected) {
  KvBatchRequest batch;
  batch.header.session_id = 1;
  batch.ops.push_back(KvOp{KvOp::Type::kUpsert, 1, 2});
  std::string encoded;
  batch.EncodeTo(&encoded);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    KvBatchRequest truncated;
    EXPECT_FALSE(truncated.DecodeFrom(Slice(encoded.data(), cut)))
        << "accepted a truncation at " << cut;
  }
}

}  // namespace
}  // namespace dpr
