// Regression tests for the TCP transport's short-write handling.
//
// The transport's write loop originally retried only EINTR: on a
// non-blocking socket whose send buffer filled mid-frame, send() returned
// EAGAIN and the loop aborted with the frame partially on the wire —
// permanently desynchronizing the length-prefixed stream (the peer parses
// the middle of the torn payload as the next frame header). These tests
// drive the exposed loop primitives over a socketpair with a deliberately
// tiny SO_SNDBUF so that every pre-fix run hits the torn-frame path.

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/tcp_net.h"
#include "obs/metrics.h"

namespace dpr {
namespace {

class SocketPair {
 public:
  SocketPair() {
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0) << strerror(errno);
  }
  ~SocketPair() {
    for (int fd : fds_) {
      if (fd >= 0) close(fd);
    }
  }

  int writer() const { return fds_[0]; }
  int reader() const { return fds_[1]; }

  void CloseWriter() {
    close(fds_[0]);
    fds_[0] = -1;
  }

  void CloseReader() {
    close(fds_[1]);
    fds_[1] = -1;
  }

  // Hands ownership of the writer end to the caller (e.g. to a wrapped
  // RpcConnection, whose destructor closes it).
  int ReleaseWriter() {
    const int fd = fds_[0];
    fds_[0] = -1;
    return fd;
  }

  // Shrinks both directions' kernel buffers so a frame larger than a few KB
  // cannot be accepted by a single send().
  void ShrinkBuffers() {
    int tiny = 1;  // the kernel clamps to its floor (~4KB total)
    for (int fd : fds_) {
      ASSERT_EQ(setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny)), 0);
      ASSERT_EQ(setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny)), 0);
    }
  }

  void SetNonBlocking(int fd) {
    const int flags = fcntl(fd, F_GETFL, 0);
    ASSERT_GE(flags, 0);
    ASSERT_EQ(fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0);
  }

 private:
  int fds_[2] = {-1, -1};
};

// A frame much larger than the shrunken send buffer: the first send()
// accepts only part of it, and with nobody reading yet, the next send()
// returns EAGAIN. Pre-fix, TcpWriteFully aborted there with a torn frame.
TEST(TcpPartialWrite, NonBlockingWriterDeliversFullFrame) {
  SocketPair pair;
  pair.ShrinkBuffers();
  pair.SetNonBlocking(pair.writer());

  const std::string frame(256 * 1024, 'x');
  std::thread drain([&] {
    // Give the writer time to fill the send buffer and hit EAGAIN before
    // draining — the pre-fix code has already failed by then.
    usleep(20 * 1000);
    std::string got(frame.size(), '\0');
    size_t transferred = 0;
    Status s =
        internal::TcpReadFully(pair.reader(), got.data(), got.size(),
                               &transferred);
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(transferred, frame.size());
    EXPECT_EQ(got, frame);
  });

  size_t written = 0;
  Status s =
      internal::TcpWriteFully(pair.writer(), frame.data(), frame.size(),
                              &written);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(written, frame.size());
  drain.join();
}

// Same shape on the read side: a non-blocking reader that outpaces the
// writer sees EAGAIN mid-message and must wait, not error out.
TEST(TcpPartialWrite, NonBlockingReaderWaitsForSlowWriter) {
  SocketPair pair;
  pair.ShrinkBuffers();
  pair.SetNonBlocking(pair.reader());

  const std::string frame(64 * 1024, 'y');
  std::thread dribble([&] {
    size_t sent = 0;
    while (sent < frame.size()) {
      const size_t chunk = std::min<size_t>(1024, frame.size() - sent);
      Status s = internal::TcpWriteFully(pair.writer(), frame.data() + sent,
                                         chunk);
      ASSERT_TRUE(s.ok()) << s.ToString();
      sent += chunk;
      usleep(500);
    }
  });

  std::string got(frame.size(), '\0');
  Status s = internal::TcpReadFully(pair.reader(), got.data(), got.size());
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(got, frame);
  dribble.join();
}

// A genuine failure must report how far the transfer got so the framing
// layer can distinguish "frame never started" (stream still aligned) from
// "frame torn" (connection must be poisoned).
TEST(TcpPartialWrite, TransferredReportsBytesBeforeFailure) {
  SocketPair pair;
  const std::string half = "partial";
  ASSERT_TRUE(
      internal::TcpWriteFully(pair.writer(), half.data(), half.size()).ok());
  pair.CloseWriter();

  std::string got(2 * half.size(), '\0');
  size_t transferred = 0;
  Status s = internal::TcpReadFully(pair.reader(), got.data(), got.size(),
                                    &transferred);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(transferred, half.size());
  EXPECT_EQ(got.substr(0, transferred), half);
}

// The vectored flush path has the same no-torn-frame contract as the
// single-buffer one: when sendmsg accepts only part of the batch and then
// reports EAGAIN, TcpWritevFully must resume from the partial iovec offsets
// until every byte of every buffer is delivered, in order.
TEST(TcpPartialWrite, VectoredWriteSurvivesEagainMidBatch) {
  SocketPair pair;
  pair.ShrinkBuffers();
  pair.SetNonBlocking(pair.writer());

  // Several distinct buffers so a partial write almost always stops inside
  // an iovec, not on a convenient boundary.
  constexpr int kBufs = 8;
  std::vector<std::string> bufs;
  std::string joined;
  for (int i = 0; i < kBufs; ++i) {
    bufs.emplace_back(32 * 1024, static_cast<char>('a' + i));
    joined += bufs.back();
  }
  struct iovec iov[kBufs];
  for (int i = 0; i < kBufs; ++i) {
    iov[i].iov_base = bufs[i].data();
    iov[i].iov_len = bufs[i].size();
  }

  std::thread drain([&] {
    usleep(20 * 1000);  // let the writer fill the send buffer and hit EAGAIN
    std::string got(joined.size(), '\0');
    Status s = internal::TcpReadFully(pair.reader(), got.data(), got.size());
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(got, joined);
  });

  size_t written = 0;
  Status s = internal::TcpWritevFully(pair.writer(), iov, kBufs, &written);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(written, joined.size());
  drain.join();
}

// The framing-layer consequences of these primitives (torn frames poisoning
// the connection, send-buffer pressure surviving end-to-end) are covered per
// transport backend in net_conformance_test.cc.

}  // namespace
}  // namespace dpr
