// Observability plane: JSON writer/parser, metrics registry, timeline,
// histogram JSON round-trip, bench artifact schema, and the registry
// mirroring done by the tracking plane.
#include <string>
#include <vector>

#include "ckpt/cadence.h"
#include "dpr/dep_tracker.h"
#include "dpr/session.h"
#include "faster/faster_store.h"
#include "fault/fault_plane.h"
#include "gtest/gtest.h"
#include "net/tcp_net.h"
#include "obs/bench_artifact.h"
#include "obs/histogram_json.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace dpr {
namespace {

// ------------------------------------------------------------- JsonWriter

TEST(JsonWriterTest, NestedScopesAndCommas) {
  JsonWriter w;
  w.BeginObject()
      .Key("a")
      .Int(-3)
      .Key("b")
      .BeginArray()
      .UInt(1)
      .Double(2.5)
      .String("x")
      .Bool(true)
      .Null()
      .EndArray()
      .Key("c")
      .BeginObject()
      .EndObject()
      .EndObject();
  EXPECT_EQ(w.str(), "{\"a\":-3,\"b\":[1,2.5,\"x\",true,null],\"c\":{}}");
}

TEST(JsonWriterTest, EscapesControlAndQuote) {
  JsonWriter w;
  w.BeginObject().Key("k\"ey").String("a\nb\tc\\d").EndObject();
  EXPECT_EQ(w.str(), "{\"k\\\"ey\":\"a\\nb\\tc\\\\d\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray().Double(0.0 / 0.0).Double(1e308 * 10).EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

// -------------------------------------------------------------- JsonValue

TEST(JsonValueTest, ParsesWriterOutput) {
  JsonWriter w;
  w.BeginObject()
      .Key("n")
      .UInt(18446744073709551615ull)
      .Key("s")
      .String("hi\n")
      .Key("arr")
      .BeginArray()
      .Int(1)
      .Int(2)
      .EndArray()
      .EndObject();
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(w.str(), &doc).ok());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("n")->uint_value(), 18446744073709551615ull);
  EXPECT_EQ(doc.Find("s")->string_value(), "hi\n");
  ASSERT_TRUE(doc.Find("arr")->is_array());
  EXPECT_EQ(doc.Find("arr")->array().size(), 2u);
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonValueTest, RejectsMalformedInput) {
  JsonValue doc;
  EXPECT_FALSE(JsonValue::Parse("{", &doc).ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}", &doc).ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]", &doc).ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated", &doc).ok());
  EXPECT_FALSE(JsonValue::Parse("{}trailing", &doc).ok());
}

// --------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  auto& reg = MetricsRegistry::Default();
  reg.ResetForTest();
  Counter* c = reg.counter("test.obs.counter");
  Gauge* g = reg.gauge("test.obs.gauge");
  ShardedHistogram* h = reg.histogram("test.obs.hist");
  // Same name -> same object (call sites cache the pointer).
  EXPECT_EQ(c, reg.counter("test.obs.counter"));
  c->Add(3);
  g->Set(-7);
  g->UpdateMax(-9);  // lower than current: no change
  EXPECT_EQ(g->value(), -7);
  g->UpdateMax(11);
  h->Record(100);
  h->Record(200);

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("test.obs.counter"), 3u);
  EXPECT_EQ(snap.gauges.at("test.obs.gauge"), 11);
  EXPECT_EQ(snap.histograms.at("test.obs.hist").count(), 2u);

  // Delta view: counters subtract, gauges stay absolute.
  c->Add(2);
  MetricsSnapshot later = reg.Snapshot();
  later.SubtractCounters(snap);
  EXPECT_EQ(later.counters.at("test.obs.counter"), 2u);
  EXPECT_EQ(later.gauges.at("test.obs.gauge"), 11);

  // Snapshot serializes to parseable JSON.
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(reg.Snapshot().ToJson(), &doc).ok());
  ASSERT_NE(doc.Find("counters"), nullptr);
  reg.ResetForTest();
  EXPECT_EQ(c->value(), 0u);
}

TEST(ShardedHistogramTest, SnapshotMatchesPlainHistogram) {
  ShardedHistogram sharded;
  Histogram plain;
  for (uint64_t v : {1ull, 5ull, 90ull, 1000ull, 123456ull}) {
    sharded.Record(v);
    plain.Record(v);
  }
  const Histogram snap = sharded.Snapshot();
  EXPECT_EQ(snap.count(), plain.count());
  EXPECT_EQ(snap.sum(), plain.sum());
  for (int p : {0, 50, 90, 99, 100}) {
    EXPECT_EQ(snap.Percentile(p), plain.Percentile(p)) << "p=" << p;
  }
}

// ----------------------------------------------------------------- Timeline

TEST(TimelineTest, SeriesOrderedByFirstAppearance) {
  Timeline tl;
  tl.RecordAt("b", 0.5, 2.0);
  tl.RecordAt("a", 1.0, 3.0, "note");
  tl.RecordAt("b", 1.5, 4.0);
  tl.Mark("fault", "crash worker 1");
  ASSERT_EQ(tl.events().size(), 4u);

  JsonWriter w;
  tl.WriteSeriesJson(&w);
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(w.str(), &doc).ok());
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.array().size(), 3u);
  EXPECT_EQ(doc.array()[0].Find("name")->string_value(), "b");
  EXPECT_EQ(doc.array()[1].Find("name")->string_value(), "a");
  EXPECT_EQ(doc.array()[2].Find("name")->string_value(), "fault");
  const auto& b_points = doc.array()[0].Find("points")->array();
  ASSERT_EQ(b_points.size(), 2u);
  EXPECT_DOUBLE_EQ(b_points[0].Find("x")->number(), 0.5);
  EXPECT_DOUBLE_EQ(b_points[1].Find("y")->number(), 4.0);
  EXPECT_EQ(doc.array()[1].Find("points")->array()[0].Find("label")
                ->string_value(),
            "note");
}

// ----------------------------------------------------- Histogram JSON codec

TEST(HistogramJsonTest, RoundTripPreservesMergeAndPercentiles) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.Record(i * 7 % 5000);
  JsonWriter w;
  HistogramToJson(h, &w);
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(w.str(), &doc).ok());
  Histogram back;
  ASSERT_TRUE(HistogramFromJson(doc, &back).ok());
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.sum(), h.sum());
  for (int p : {0, 50, 90, 99, 100}) {
    EXPECT_EQ(back.Percentile(p), h.Percentile(p)) << "p=" << p;
  }

  // Merging a reparsed histogram behaves like merging the original.
  Histogram extra;
  for (uint64_t i = 0; i < 100; ++i) extra.Record(1 << 20);
  Histogram merged_orig = extra;
  merged_orig.Merge(h);
  Histogram merged_back = extra;
  merged_back.Merge(back);
  EXPECT_EQ(merged_back.count(), merged_orig.count());
  for (int p : {0, 50, 99, 100}) {
    EXPECT_EQ(merged_back.Percentile(p), merged_orig.Percentile(p));
  }
}

TEST(HistogramJsonTest, EmptyAndCorruptInputs) {
  Histogram empty;
  JsonWriter w;
  HistogramToJson(empty, &w);
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(w.str(), &doc).ok());
  Histogram back;
  back.Record(42);  // must be reset by the decode
  ASSERT_TRUE(HistogramFromJson(doc, &back).ok());
  EXPECT_EQ(back.count(), 0u);

  JsonValue not_hist;
  ASSERT_TRUE(JsonValue::Parse("{\"count\":1}", &not_hist).ok());
  EXPECT_FALSE(HistogramFromJson(not_hist, &back).ok());
  JsonValue not_obj;
  ASSERT_TRUE(JsonValue::Parse("[1,2]", &not_obj).ok());
  EXPECT_FALSE(HistogramFromJson(not_obj, &back).ok());
}

// ------------------------------------------------------------ BenchArtifact

TEST(BenchArtifactTest, SchemaGolden) {
  MetricsRegistry::Default().ResetForTest();
  BenchArtifact artifact("unit");
  artifact.SetConfig("quick", true);
  artifact.SetConfig("threads", static_cast<uint64_t>(4));
  artifact.SetConfig("theta", 0.99);
  artifact.SetConfig("label", "ycsb-a");
  artifact.AddPoint("mops", 2, 1.5);
  artifact.AddPoint("mops", 4, 2.75, "note");
  Histogram lat;
  lat.Record(10);
  lat.Record(20);
  artifact.AddHistogram("op_latency_us", lat);
  artifact.AddCounter("custom.count", 7);
  artifact.AddGauge("custom.depth", -2);

  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(artifact.ToJson(), &doc).ok());
  // The contract consumed by plotting/regression tooling:
  //   {bench, config{}, series[{name, points[{x, y, label?}]}],
  //    histograms{name: {count,...,buckets}}, counters{}, gauges{}}
  EXPECT_EQ(doc.Find("bench")->string_value(), "unit");
  const JsonValue* config = doc.Find("config");
  ASSERT_TRUE(config != nullptr && config->is_object());
  EXPECT_TRUE(config->Find("quick")->bool_value());
  EXPECT_EQ(config->Find("threads")->uint_value(), 4u);
  EXPECT_DOUBLE_EQ(config->Find("theta")->number(), 0.99);
  EXPECT_EQ(config->Find("label")->string_value(), "ycsb-a");

  const JsonValue* series = doc.Find("series");
  ASSERT_TRUE(series != nullptr && series->is_array());
  ASSERT_EQ(series->array().size(), 1u);
  const JsonValue& mops = series->array()[0];
  EXPECT_EQ(mops.Find("name")->string_value(), "mops");
  ASSERT_EQ(mops.Find("points")->array().size(), 2u);
  EXPECT_DOUBLE_EQ(mops.Find("points")->array()[0].Find("x")->number(), 2.0);
  EXPECT_DOUBLE_EQ(mops.Find("points")->array()[1].Find("y")->number(), 2.75);
  EXPECT_EQ(mops.Find("points")->array()[1].Find("label")->string_value(),
            "note");

  const JsonValue* hists = doc.Find("histograms");
  ASSERT_TRUE(hists != nullptr && hists->is_object());
  Histogram back;
  ASSERT_TRUE(
      HistogramFromJson(*hists->Find("op_latency_us"), &back).ok());
  EXPECT_EQ(back.count(), 2u);

  EXPECT_EQ(doc.Find("counters")->Find("custom.count")->uint_value(), 7u);
  EXPECT_EQ(doc.Find("gauges")->Find("custom.depth")->number(), -2.0);
}

TEST(BenchArtifactTest, SnapshotMergesNonZeroMetrics) {
  auto& reg = MetricsRegistry::Default();
  reg.ResetForTest();
  reg.counter("t.live")->Add(5);
  reg.counter("t.zero");  // stays 0: dropped from the artifact
  reg.gauge("t.depth")->Set(3);
  reg.histogram("t.lat")->Record(17);
  reg.histogram("t.empty");

  BenchArtifact artifact("snap");
  artifact.AddSnapshot(reg.Snapshot());
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(artifact.ToJson(), &doc).ok());
  EXPECT_EQ(doc.Find("counters")->Find("t.live")->uint_value(), 5u);
  EXPECT_EQ(doc.Find("counters")->Find("t.zero"), nullptr);
  EXPECT_EQ(doc.Find("gauges")->Find("t.depth")->number(), 3.0);
  EXPECT_NE(doc.Find("histograms")->Find("t.lat"), nullptr);
  EXPECT_EQ(doc.Find("histograms")->Find("t.empty"), nullptr);
  reg.ResetForTest();
}

// ------------------------------------- tracking plane -> registry mirroring

TEST(RegistryMirrorTest, DepTrackerPublishesToRegistry) {
  auto& reg = MetricsRegistry::Default();
  reg.ResetForTest();
  VersionDependencyTracker tracker(16);
  DependencySet no_deps;
  DependencySet deps;
  deps[2] = 9;
  tracker.Record(1, 5, no_deps, /*self=*/0);
  tracker.Record(1, 5, deps, /*self=*/0);
  tracker.Record(2, 6, deps, /*self=*/0);
  (void)tracker.DrainUpTo(6);

  // The per-instance stats and the process-wide registry mirror agree.
  const DepTrackerStats local = tracker.stats();
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("dpr.dep_tracker.records"), local.records);
  EXPECT_EQ(snap.counters.at("dpr.dep_tracker.empty_records"),
            local.empty_records);
  EXPECT_EQ(snap.counters.at("dpr.dep_tracker.drains"), local.drains);
  EXPECT_EQ(snap.gauges.at("dpr.dep_tracker.live_entries"), 0);
  EXPECT_GE(snap.gauges.at("dpr.dep_tracker.live_entries_peak"), 1);
  reg.ResetForTest();
}

// The transport's event-loop rewrite publishes its health through the
// registry: epoll wakeups, frames coalesced per flush syscall, executor
// intake depth, and live-resource gauges that must return to zero once the
// server stops (loops joined, workers joined, connections closed).
TEST(RegistryMirrorTest, EventLoopTransportPublishesToRegistry) {
  auto& reg = MetricsRegistry::Default();
  reg.ResetForTest();

  // Pinned to the epoll backend: this test asserts the epoll-plane series
  // (net.loop.*, net.tcp.writev_*), which the io_uring backend does not
  // emit. The uring-plane series are covered below.
  TcpServerOptions options;
  options.io_threads = 2;
  options.executor_threads = 2;
  options.backend = NetBackend::kEpoll;
  auto server = MakeTcpServer(0, options);
  ASSERT_TRUE(server
                  ->Start([](Slice request, std::string* response) {
                    response->assign(request.data(), request.size());
                  })
                  .ok());
  std::unique_ptr<RpcConnection> conn;
  ASSERT_TRUE(
      ConnectTcp(server->address(), TcpClientOptions{NetBackend::kEpoll},
                 &conn)
          .ok());
  constexpr int kCalls = 64;
  for (int i = 0; i < kCalls; ++i) {
    std::string response;
    ASSERT_TRUE(conn->Call("ping" + std::to_string(i), &response).ok());
  }

  {
    const MetricsSnapshot snap = reg.Snapshot();
    // Event loop: the server woke at least once per served call batch, and
    // its fixed loop threads are live.
    EXPECT_GT(snap.counters.at("net.loop.wakeups"), 0u);
    EXPECT_EQ(snap.gauges.at("net.loop.threads"), 2);
    // Executor: one task per request ran; the intake drained back to empty.
    EXPECT_GE(snap.counters.at("net.executor.tasks"),
              static_cast<uint64_t>(kCalls));
    EXPECT_EQ(snap.gauges.at("net.executor.queue_depth"), 0);
    EXPECT_EQ(snap.gauges.at("net.executor.threads"), 2);
    // Coalescing flush: vectored syscalls happened, every server response
    // frame went through them, and syscalls never exceed frames.
    EXPECT_GT(snap.counters.at("net.tcp.writev_calls"), 0u);
    EXPECT_GE(snap.counters.at("net.tcp.writev_frames"),
              static_cast<uint64_t>(kCalls));
    EXPECT_LE(snap.counters.at("net.tcp.writev_calls"),
              snap.counters.at("net.tcp.writev_frames"));
    // Connection accounting.
    EXPECT_EQ(snap.counters.at("net.tcp.accepted"), 1u);
    EXPECT_EQ(snap.gauges.at("net.tcp.server_conns"), 1);
  }

  conn.reset();
  server->Stop();
  {
    const MetricsSnapshot snap = reg.Snapshot();
    // Every live-resource gauge returns to zero on clean shutdown.
    EXPECT_EQ(snap.gauges.at("net.loop.threads"), 0);
    EXPECT_EQ(snap.gauges.at("net.executor.threads"), 0);
    EXPECT_EQ(snap.gauges.at("net.tcp.server_conns"), 0);
    EXPECT_EQ(snap.gauges.at("net.tcp.output_queue_bytes"), 0);
  }
  reg.ResetForTest();
}

// The io_uring backend's ring-health series: SQE submit batches and CQE
// reaps move during traffic, and the shared framing counters (frames,
// accepted, conns gauge) behave identically to the epoll plane.
TEST(RegistryMirrorTest, UringTransportPublishesToRegistry) {
  if (!NetUringSupported()) {
    GTEST_SKIP() << "io_uring transport not supported on this kernel";
  }
  auto& reg = MetricsRegistry::Default();
  reg.ResetForTest();

  TcpServerOptions options;
  options.io_threads = 2;
  options.executor_threads = 2;
  options.backend = NetBackend::kIoUring;
  auto server = MakeTcpServer(0, options);
  ASSERT_TRUE(server
                  ->Start([](Slice request, std::string* response) {
                    response->assign(request.data(), request.size());
                  })
                  .ok());
  std::unique_ptr<RpcConnection> conn;
  ASSERT_TRUE(
      ConnectTcp(server->address(), TcpClientOptions{NetBackend::kIoUring},
                 &conn)
          .ok());
  constexpr int kCalls = 64;
  for (int i = 0; i < kCalls; ++i) {
    std::string response;
    ASSERT_TRUE(conn->Call("ping" + std::to_string(i), &response).ok());
  }

  {
    const MetricsSnapshot snap = reg.Snapshot();
    // Ring health: submissions were batched and completions reaped.
    EXPECT_GT(snap.counters.at("net.uring.sqe_batches"), 0u);
    EXPECT_GT(snap.counters.at("net.uring.cqe_reaped"), 0u);
    // No explicit-uring fallback happened (the kernel supports it here).
    EXPECT_EQ(snap.counters.at("net.uring.fallbacks"), 0u);
    // Shared framing counters move regardless of backend. Both directions
    // carry >= kCalls frames (requests client->server, responses back).
    EXPECT_GE(snap.counters.at("net.tcp.frames_sent"),
              static_cast<uint64_t>(kCalls));
    EXPECT_GE(snap.counters.at("net.tcp.frames_received"),
              static_cast<uint64_t>(kCalls));
    EXPECT_EQ(snap.counters.at("net.tcp.accepted"), 1u);
    EXPECT_EQ(snap.gauges.at("net.tcp.server_conns"), 1);
  }

  conn.reset();
  server->Stop();
  {
    const MetricsSnapshot snap = reg.Snapshot();
    EXPECT_EQ(snap.gauges.at("net.tcp.server_conns"), 0);
    EXPECT_EQ(snap.gauges.at("net.tcp.output_queue_bytes"), 0);
  }
  reg.ResetForTest();
}

// ----------------------------------- checkpoint plane gauges and counters

// Gauge-leak pins: point-in-time gauges on failure paths must re-zero, or
// dashboards show phantom backlog forever after one fault.

TEST(CkptGaugeTest, ExceptionListGaugeZeroAfterRollback) {
  auto& reg = MetricsRegistry::Default();
  reg.ResetForTest();
  DprSession session(/*session_id=*/1, SessionOptions{});
  // One withheld (PENDING) op, then a resolved-and-committed one: the
  // commit point skips the pending op into the exception list.
  const uint64_t pending = session.IssuePending(/*worker=*/0, 1);
  (void)pending;
  DprResponseHeader ok;
  ok.executed_version = 1;
  ok.persisted_version = 1;
  session.RecordBatch(/*worker=*/0, 1, ok);
  const auto point = session.GetCommitPoint();
  ASSERT_EQ(point.excluded.size(), 1u);
  ASSERT_EQ(reg.Snapshot().gauges.at("dpr.session.exception_list"), 1);
  // Rollback discards every segment; the occupancy gauge must re-zero with
  // them instead of leaking the pre-rollback count.
  DprCut cut;
  cut[0] = 1;
  (void)session.HandleFailure(/*new_world_line=*/2, cut);
  EXPECT_EQ(reg.Snapshot().gauges.at("dpr.session.exception_list"), 0);
  reg.ResetForTest();
}

TEST(CkptGaugeTest, FlushQueueDepthZeroAfterFailedFlush) {
  auto& reg = MetricsRegistry::Default();
  reg.ResetForTest();
  ScopedFaultPlane fault_plane(/*seed=*/3);
  constexpr uint64_t kScope = 91;
  FasterOptions options;
  options.index_buckets = 256;
  options.log_device = std::make_unique<FaultDevice>(
      std::make_unique<MemoryDevice>(), kScope);
  options.meta_device = std::make_unique<MemoryDevice>();
  FasterStore store(std::move(options));
  {
    auto session = store.NewSession();
    for (uint64_t k = 0; k < 16; ++k) {
      ASSERT_TRUE(session->Upsert(k, k).ok());
    }
  }
  FaultPlane::Instance().Arm({.point = faults::kDevWriteFail,
                              .scope = kScope,
                              .max_fires = 64});
  ASSERT_TRUE(store
                  .PerformCheckpoint(
                      store.CurrentVersion() + 1, nullptr, nullptr,
                      CheckpointHints{.index_image = true, .delta = false})
                  .ok());
  store.WaitForCheckpoints();
  FaultPlane::Instance().DisarmAll();
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("faster.flush_failures"), 1u);
  // The failed request left the queue; the depth gauge must not leak it.
  EXPECT_EQ(snap.gauges.at("faster.flush_queue_depth"), 0);
  reg.ResetForTest();
}

TEST(CkptGaugeTest, CheckpointCountersTrackImagesAndBytes) {
  auto& reg = MetricsRegistry::Default();
  reg.ResetForTest();
  FasterOptions options;
  options.index_buckets = 256;
  options.log_device = std::make_unique<MemoryDevice>();
  options.meta_device = std::make_unique<MemoryDevice>();
  FasterStore store(std::move(options));
  auto session = store.NewSession();
  auto checkpoint = [&](bool delta) {
    ASSERT_TRUE(store
                    .PerformCheckpoint(
                        store.CurrentVersion() + 1, nullptr, nullptr,
                        CheckpointHints{.index_image = true, .delta = delta})
                    .ok());
    store.WaitForCheckpoints();
  };
  for (uint64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(session->Upsert(k, k).ok());
  }
  checkpoint(/*delta=*/false);
  for (uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(session->Upsert(k, 100 + k).ok());
  }
  checkpoint(/*delta=*/true);
  checkpoint(/*delta=*/true);  // nothing dirtied: an empty delta, still valid

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("ckpt.full"), 1u);
  EXPECT_EQ(snap.counters.at("ckpt.delta"), 2u);
  EXPECT_EQ(snap.counters.at("faster.checkpoints_flushed"), 3u);
  // Every checkpoint persisted log bytes for its window plus a meta record;
  // the full image dominates the index-byte accounting.
  EXPECT_GT(snap.counters.at("ckpt.log_bytes_persisted"), 0u);
  EXPECT_GT(snap.counters.at("ckpt.index_bytes_persisted"), 0u);
  reg.ResetForTest();
}

TEST(CkptGaugeTest, CadenceControllerPublishesDecisions) {
  auto& reg = MetricsRegistry::Default();
  reg.ResetForTest();
  CkptCadenceController controller(CkptPolicy{}.Resolve(100000));
  CkptSignals dirty;
  dirty.dirty_bytes = 4096;
  (void)controller.Decide(dirty, 1000);             // initial full
  (void)controller.Decide(CkptSignals{}, 101000);   // idle: skip
  (void)controller.Decide(dirty, 201000);           // delta
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("ckpt.controller.decisions"), 3u);
  EXPECT_EQ(snap.counters.at("ckpt.controller.fulls"), 1u);
  EXPECT_EQ(snap.counters.at("ckpt.controller.skips"), 1u);
  EXPECT_EQ(snap.counters.at("ckpt.controller.deltas"), 1u);
  EXPECT_GT(snap.gauges.at("ckpt.controller.interval_us"), 0);
  reg.ResetForTest();
}

}  // namespace
}  // namespace dpr
