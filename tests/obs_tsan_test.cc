// Concurrency hammer for the metrics plane, meant to run under
// DPR_SANITIZE=thread (`ctest -L tsan`): many threads mutate counters,
// gauges, and sharded histograms through the registry while a reader takes
// snapshots. Everything on the write side is relaxed atomics; TSan verifies
// there is no unsynchronized plain access hiding in the plane.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace dpr {
namespace {

TEST(ObsTsanTest, ConcurrentMutationAndSnapshot) {
  auto& reg = MetricsRegistry::Default();
  reg.ResetForTest();
  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 20000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      // Half the threads register lazily mid-run: registration (mutex) must
      // be safe against concurrent snapshots and other registrations.
      Counter* ops = reg.counter("tsan.ops");
      Gauge* depth = reg.gauge("tsan.depth");
      ShardedHistogram* lat = reg.histogram(
          t % 2 == 0 ? "tsan.lat_even" : "tsan.lat_odd");
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        ops->Add();
        depth->Add(1);
        lat->Record(i & 1023);
        depth->Sub(1);
        reg.gauge("tsan.peak")->UpdateMax(static_cast<int64_t>(i));
      }
    });
  }

  std::thread reader([&reg, &stop] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = reg.Snapshot();
      const auto it = snap.counters.find("tsan.ops");
      if (it != snap.counters.end()) {
        EXPECT_GE(it->second, last);  // counters are monotone across snapshots
        last = it->second;
      }
      (void)snap.ToJson();
    }
  });

  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const MetricsSnapshot final_snap = reg.Snapshot();
  EXPECT_EQ(final_snap.counters.at("tsan.ops"), kThreads * kOpsPerThread);
  EXPECT_EQ(final_snap.gauges.at("tsan.depth"), 0);
  EXPECT_EQ(final_snap.histograms.at("tsan.lat_even").count() +
                final_snap.histograms.at("tsan.lat_odd").count(),
            kThreads * kOpsPerThread);
  reg.ResetForTest();
}

}  // namespace
}  // namespace dpr
