#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/clock.h"
#include "common/sync.h"
#include "dfaster/protocol.h"
#include "harness/cluster.h"

namespace dpr {
namespace {

TEST(KvProtocolTest, BatchCodecRoundTrip) {
  KvBatchRequest req;
  req.header.session_id = 9;
  req.header.world_line = 2;
  req.header.version = 5;
  req.header.deps = {{0, 3}, {1, 4}};
  req.ops.push_back(KvOp{KvOp::Type::kUpsert, 11, 22});
  req.ops.push_back(KvOp{KvOp::Type::kRead, 33, 0});
  std::string encoded;
  req.EncodeTo(&encoded);
  KvBatchRequest decoded;
  ASSERT_TRUE(decoded.DecodeFrom(encoded));
  EXPECT_EQ(decoded.header.session_id, 9u);
  EXPECT_EQ(decoded.header.deps, req.header.deps);
  ASSERT_EQ(decoded.ops.size(), 2u);
  EXPECT_EQ(decoded.ops[0].key, 11u);

  KvBatchResponse resp;
  resp.header.executed_version = 5;
  resp.results.push_back(KvOpResult{KvResult::kOk, 22});
  std::string out;
  resp.EncodeTo(&out);
  KvBatchResponse decoded_resp;
  ASSERT_TRUE(decoded_resp.DecodeFrom(out));
  EXPECT_EQ(decoded_resp.header.executed_version, 5u);
  ASSERT_EQ(decoded_resp.results.size(), 1u);
  EXPECT_EQ(decoded_resp.results[0].value, 22u);
}

TEST(KvProtocolTest, MalformedInputRejected) {
  KvBatchRequest req;
  EXPECT_FALSE(req.DecodeFrom("short"));
  KvBatchResponse resp;
  EXPECT_FALSE(resp.DecodeFrom(""));
}

ClusterOptions SmallCluster(uint32_t workers = 2) {
  ClusterOptions options;
  options.num_workers = workers;
  options.checkpoint_interval_us = 20000;
  options.finder_interval_us = 5000;
  // Real (memory-backed) durable devices: failure tests recover actual data.
  // (The null backend discards checkpoint bytes by design.)
  options.backend = StorageBackend::kLocal;
  return options;
}

TEST(DFasterClusterTest, BasicReadWriteAcrossShards) {
  DFasterCluster cluster(SmallCluster(3));
  ASSERT_TRUE(cluster.Start().ok());
  auto client = cluster.NewClient(/*batch=*/8, /*window=*/64);
  auto session = client->NewSession(1);
  std::map<uint64_t, uint64_t> expected;
  for (uint64_t k = 0; k < 200; ++k) {
    session->Upsert(k, k * 7);
    expected[k] = k * 7;
  }
  ASSERT_TRUE(session->WaitForAll().ok());
  std::map<uint64_t, uint64_t> observed;
  Mutex mu;
  for (uint64_t k = 0; k < 200; ++k) {
    session->Read(k, [&, k](KvResult r, uint64_t v) {
      MutexLock guard(mu);
      if (r == KvResult::kOk) observed[k] = v;
    });
  }
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_EQ(observed, expected);
}

TEST(DFasterClusterTest, WaitForCommitDelivers) {
  DFasterCluster cluster(SmallCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  auto client = cluster.NewClient(4, 64);
  auto session = client->NewSession(2);
  for (uint64_t k = 0; k < 50; ++k) session->Upsert(k, k);
  ASSERT_TRUE(session->WaitForCommit(20000).ok());
  const auto point = session->dpr().GetCommitPoint();
  EXPECT_GE(point.prefix_end, 50u);
  EXPECT_TRUE(point.excluded.empty());
}

TEST(DFasterClusterTest, CrossShardSessionCreatesDependencies) {
  DFasterCluster cluster(SmallCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  auto client = cluster.NewClient(/*batch=*/1, /*window=*/8);
  auto session = client->NewSession(3);
  // Alternate shards with batch=1 so every op is its own batch; versions
  // piggyback and the Lamport clock keeps the precedence graph monotone.
  uint64_t key_on_0 = 0;
  while (YcsbWorkload::ShardOf(key_on_0, 2) != 0) key_on_0++;
  uint64_t key_on_1 = 0;
  while (YcsbWorkload::ShardOf(key_on_1, 2) != 1) key_on_1++;
  for (int i = 0; i < 20; ++i) {
    session->Upsert(key_on_0, i);
    session->Upsert(key_on_1, i);
  }
  ASSERT_TRUE(session->WaitForCommit(20000).ok());
}

TEST(DFasterClusterTest, ColocatedClientLocalOps) {
  DFasterCluster cluster(SmallCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  auto client = cluster.NewColocatedClient(/*local=*/0, 4, 64);
  auto session = client->NewSession(4);
  YcsbWorkload workload({.num_keys = 1000, .seed = 3});
  for (int i = 0; i < 100; ++i) {
    session->Upsert(workload.NextKeyOnShard(0, 2), 42);  // all local
  }
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_EQ(session->ops_failed(), 0u);
  ASSERT_TRUE(session->WaitForCommit(20000).ok());
}

TEST(DFasterClusterTest, EventualAndNoneModesServeOps) {
  for (RecoverabilityMode mode :
       {RecoverabilityMode::kNone, RecoverabilityMode::kEventual}) {
    ClusterOptions options = SmallCluster(2);
    options.mode = mode;
    DFasterCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    auto client = cluster.NewClient(4, 32);
    auto session = client->NewSession(5);
    for (uint64_t k = 0; k < 64; ++k) session->Upsert(k, k);
    ASSERT_TRUE(session->WaitForAll().ok());
    EXPECT_EQ(session->ops_failed(), 0u);
  }
}

TEST(DFasterClusterTest, TcpTransportEndToEnd) {
  ClusterOptions options = SmallCluster(2);
  options.transport = TransportKind::kTcp;
  DFasterCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  auto client = cluster.NewClient(8, 64);
  auto session = client->NewSession(6);
  for (uint64_t k = 0; k < 100; ++k) session->Upsert(k, k + 1);
  ASSERT_TRUE(session->WaitForAll().ok());
  std::atomic<uint64_t> sum{0};
  for (uint64_t k = 0; k < 100; ++k) {
    session->Read(k, [&](KvResult r, uint64_t v) {
      if (r == KvResult::kOk) sum.fetch_add(v);
    });
  }
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_EQ(sum.load(), 100u * 101 / 2);
}

// ------------------------------------------------------------------ failures

TEST(DFasterFailureTest, FailureRollsBackToCutAndSessionsRecover) {
  DFasterCluster cluster(SmallCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  auto client = cluster.NewClient(/*batch=*/4, /*window=*/32);
  auto session = client->NewSession(7);

  // Phase 1: write and force commit.
  for (uint64_t k = 0; k < 40; ++k) session->Upsert(k, 1);
  ASSERT_TRUE(session->WaitForCommit(20000).ok());

  // Phase 2: more writes, not necessarily committed, then a failure.
  for (uint64_t k = 0; k < 40; ++k) session->Upsert(k, 2);
  ASSERT_TRUE(session->WaitForAll().ok());
  ASSERT_TRUE(cluster.InjectFailure({0}).ok());

  // The session learns of the failure on its next interaction.
  for (int i = 0; i < 100 && !session->needs_failure_handling(); ++i) {
    session->Read(i % 40, nullptr);
    Status s = session->WaitForAll();
    if (!s.ok()) break;
  }
  ASSERT_TRUE(session->needs_failure_handling());
  DprSession::CommitPoint survivors;
  ASSERT_TRUE(session->RecoverFromFailure(&survivors).ok());
  // Everything committed in phase 1 must survive.
  EXPECT_GE(survivors.prefix_end, 40u);

  // Phase 3: the session continues in the new world-line.
  for (uint64_t k = 0; k < 40; ++k) session->Upsert(k, 3);
  ASSERT_TRUE(session->WaitForCommit(20000).ok());
  std::atomic<int> threes{0};
  for (uint64_t k = 0; k < 40; ++k) {
    session->Read(k, [&](KvResult r, uint64_t v) {
      if (r == KvResult::kOk && v == 3) threes.fetch_add(1);
    });
  }
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_EQ(threes.load(), 40);
}

TEST(DFasterFailureTest, PrefixConsistencyAfterCrash) {
  // The recovered state must equal a replay of a per-session prefix: with a
  // single session doing sequential upserts of increasing values to one key
  // per shard, the recovered values must form a consistent prefix: if shard
  // 1's value survived at i, every shard's value must be >= the value it
  // had when the session wrote i there earlier... simplified: committed
  // prefix reported to the client must be durable.
  DFasterCluster cluster(SmallCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  auto client = cluster.NewClient(/*batch=*/1, /*window=*/4);
  auto session = client->NewSession(8);
  uint64_t key_on_0 = 0;
  while (YcsbWorkload::ShardOf(key_on_0, 2) != 0) key_on_0++;
  uint64_t key_on_1 = 0;
  while (YcsbWorkload::ShardOf(key_on_1, 2) != 1) key_on_1++;

  // Interleaved writes: op 2i writes i to shard 0, op 2i+1 writes i to 1.
  for (uint64_t i = 1; i <= 60; ++i) {
    session->Upsert(key_on_0, i);
    session->Upsert(key_on_1, i);
    if (i == 30) {
      ASSERT_TRUE(session->WaitForCommit(20000).ok());
    }
  }
  ASSERT_TRUE(session->WaitForAll().ok());
  const auto before = session->dpr().GetCommitPoint();

  ASSERT_TRUE(cluster.InjectFailure({0, 1}).ok());
  session->Read(key_on_0, nullptr);
  session->Read(key_on_1, nullptr);
  (void)session->WaitForAll();
  ASSERT_TRUE(session->needs_failure_handling());
  DprSession::CommitPoint survivors;
  ASSERT_TRUE(session->RecoverFromFailure(&survivors).ok());
  // Survivors must cover at least what was already reported committed.
  EXPECT_GE(survivors.prefix_end, before.prefix_end);

  // Read back both keys; values must correspond to a prefix of the session:
  // v0 == v1 or v0 == v1 + 1 (shard 0 written first in each round), and the
  // surviving prefix implies at least 30 rounds.
  std::atomic<uint64_t> v0{0};
  std::atomic<uint64_t> v1{0};
  session->Read(key_on_0, [&](KvResult r, uint64_t v) {
    if (r == KvResult::kOk) v0.store(v);
  });
  session->Read(key_on_1, [&](KvResult r, uint64_t v) {
    if (r == KvResult::kOk) v1.store(v);
  });
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_GE(v0.load(), 30u);
  EXPECT_GE(v1.load(), 30u);
  EXPECT_TRUE(v0.load() == v1.load() || v0.load() == v1.load() + 1)
      << "v0=" << v0.load() << " v1=" << v1.load();
}

TEST(DFasterFailureTest, NestedFailuresHandledAsSequences) {
  DFasterCluster cluster(SmallCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  auto client = cluster.NewClient(4, 32);
  auto session = client->NewSession(9);
  for (uint64_t k = 0; k < 30; ++k) session->Upsert(k, 1);
  ASSERT_TRUE(session->WaitForCommit(20000).ok());
  // Two failures in short succession (paper Fig. 16's nested scenario).
  ASSERT_TRUE(cluster.InjectFailure({0}).ok());
  ASSERT_TRUE(cluster.InjectFailure({1}).ok());
  session->Read(1, nullptr);
  (void)session->WaitForAll();
  ASSERT_TRUE(session->needs_failure_handling());
  DprSession::CommitPoint survivors;
  ASSERT_TRUE(session->RecoverFromFailure(&survivors).ok());
  EXPECT_GE(survivors.prefix_end, 30u);
  EXPECT_EQ(session->dpr().world_line(), kInitialWorldLine + 2);
  // Cluster still serves reads/writes.
  for (uint64_t k = 0; k < 30; ++k) session->Upsert(k, 2);
  ASSERT_TRUE(session->WaitForCommit(20000).ok());
}

}  // namespace
}  // namespace dpr
