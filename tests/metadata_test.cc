#include "metadata/metadata_store.h"

#include <gtest/gtest.h>

#include <memory>

namespace dpr {
namespace {

std::unique_ptr<MetadataStore> NewStore() {
  auto store =
      std::make_unique<MetadataStore>(std::make_unique<MemoryDevice>());
  EXPECT_TRUE(store->Recover().ok());
  return store;
}

TEST(MetadataStoreTest, UpsertAndAggregates) {
  auto store = NewStore();
  ASSERT_TRUE(store->UpsertWorker(1, 5).ok());
  ASSERT_TRUE(store->UpsertWorker(2, 3).ok());
  ASSERT_TRUE(store->UpsertWorker(3, 9).ok());
  EXPECT_EQ(store->MinPersistedVersion(), 3u);
  EXPECT_EQ(store->MaxPersistedVersion(), 9u);
  ASSERT_TRUE(store->UpsertWorker(2, 11).ok());
  EXPECT_EQ(store->MinPersistedVersion(), 5u);
  EXPECT_EQ(store->MaxPersistedVersion(), 11u);
}

TEST(MetadataStoreTest, RemoveWorkerDropsRow) {
  auto store = NewStore();
  ASSERT_TRUE(store->UpsertWorker(1, 5).ok());
  ASSERT_TRUE(store->UpsertWorker(2, 1).ok());
  ASSERT_TRUE(store->RemoveWorker(2).ok());
  EXPECT_EQ(store->MinPersistedVersion(), 5u);
  EXPECT_EQ(store->GetPersistedVersions().size(), 1u);
}

TEST(MetadataStoreTest, EmptyAggregatesAreInvalid) {
  auto store = NewStore();
  EXPECT_EQ(store->MinPersistedVersion(), kInvalidVersion);
  EXPECT_EQ(store->MaxPersistedVersion(), kInvalidVersion);
}

TEST(MetadataStoreTest, GraphNodesRoundTrip) {
  auto store = NewStore();
  DependencySet deps{{2, 4}, {3, 1}};
  ASSERT_TRUE(store->AddGraphNode(WorkerVersion{1, 5}, deps).ok());
  auto graph = store->GetGraph();
  ASSERT_EQ(graph.size(), 1u);
  EXPECT_EQ(graph.at(WorkerVersion{1, 5}), deps);
}

TEST(MetadataStoreTest, PruneGraphRemovesCommitted) {
  auto store = NewStore();
  ASSERT_TRUE(store->AddGraphNode(WorkerVersion{1, 1}, {}).ok());
  ASSERT_TRUE(store->AddGraphNode(WorkerVersion{1, 2}, {}).ok());
  ASSERT_TRUE(store->AddGraphNode(WorkerVersion{2, 1}, {}).ok());
  DprCut cut{{1, 1}, {2, 1}};
  ASSERT_TRUE(store->PruneGraph(cut).ok());
  auto graph = store->GetGraph();
  ASSERT_EQ(graph.size(), 1u);
  EXPECT_TRUE(graph.count(WorkerVersion{1, 2}));
}

TEST(MetadataStoreTest, CutIsAtomicAndVersioned) {
  auto store = NewStore();
  DprCut cut{{1, 3}, {2, 3}};
  ASSERT_TRUE(store->SetCut(2, cut).ok());
  WorldLine wl;
  DprCut read;
  store->GetCut(&wl, &read);
  EXPECT_EQ(wl, 2u);
  EXPECT_EQ(read, cut);
}

TEST(MetadataStoreTest, WorldLinePersists) {
  auto store = NewStore();
  ASSERT_TRUE(store->SetWorldLine(4).ok());
  EXPECT_EQ(store->GetWorldLine(), 4u);
}

TEST(MetadataStoreTest, OwnershipTable) {
  auto store = NewStore();
  ASSERT_TRUE(store->SetOwner(10, 1).ok());
  ASSERT_TRUE(store->SetOwner(11, 2).ok());
  ASSERT_TRUE(store->SetOwner(10, 3).ok());  // transfer
  auto ownership = store->GetOwnership();
  EXPECT_EQ(ownership.at(10), 3u);
  EXPECT_EQ(ownership.at(11), 2u);
}

TEST(MetadataStoreTest, SurvivesCrash) {
  auto store = NewStore();
  ASSERT_TRUE(store->UpsertWorker(1, 7).ok());
  ASSERT_TRUE(store->AddGraphNode(WorkerVersion{1, 7}, {{2, 3}}).ok());
  ASSERT_TRUE(store->SetCut(1, DprCut{{1, 5}}).ok());
  ASSERT_TRUE(store->SetWorldLine(2).ok());
  ASSERT_TRUE(store->SetOwner(0, 1).ok());

  store->SimulateCrash();

  EXPECT_EQ(store->GetPersistedVersions().at(1), 7u);
  EXPECT_EQ(store->GetGraph().size(), 1u);
  WorldLine wl;
  DprCut cut;
  store->GetCut(&wl, &cut);
  EXPECT_EQ(cut.at(1), 5u);
  EXPECT_EQ(store->GetWorldLine(), 2u);
  EXPECT_EQ(store->GetOwnership().at(0), 1u);
}

TEST(MetadataStoreTest, MemberAndMigrationRowsSurviveCrash) {
  auto store = NewStore();
  ASSERT_TRUE(store->SetMemberState(0, MemberState::kJoining).ok());
  ASSERT_TRUE(store->SetMemberState(0, MemberState::kActive).ok());
  ASSERT_TRUE(store->SetMemberState(1, MemberState::kJoining).ok());
  ASSERT_TRUE(store->SetMemberState(2, MemberState::kRemoved).ok());
  ASSERT_TRUE(store->SetMigration(7, /*source=*/0, /*target=*/1).ok());
  ASSERT_TRUE(store->SetMigration(9, /*source=*/2, /*target=*/0).ok());
  ASSERT_TRUE(store->ClearMigration(9).ok());

  store->SimulateCrash();

  auto members = store->GetMemberStates();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members.at(0), MemberState::kActive);
  EXPECT_EQ(members.at(1), MemberState::kJoining);
  EXPECT_EQ(members.at(2), MemberState::kRemoved);
  // The cleared migration stays gone; the in-flight one is still visible —
  // exactly what a restarted driver needs to detect the dual-ownership
  // window it crashed inside of.
  auto migrations = store->GetMigrations();
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_EQ(migrations.at(7).source, 0u);
  EXPECT_EQ(migrations.at(7).target, 1u);
}

TEST(MetadataStoreTest, MemberRowsAreLastWriterWins) {
  auto store = NewStore();
  ASSERT_TRUE(store->SetMemberState(5, MemberState::kJoining).ok());
  ASSERT_TRUE(store->SetMemberState(5, MemberState::kActive).ok());
  ASSERT_TRUE(store->SetMemberState(5, MemberState::kDraining).ok());
  store->SimulateCrash();
  EXPECT_EQ(store->GetMemberStates().at(5), MemberState::kDraining);
}

TEST(MetadataStoreTest, CrashLosesNothingAfterEveryOp) {
  // Every mutation syncs before returning, so any crash point preserves all
  // acknowledged mutations (durability property test).
  auto store = NewStore();
  for (uint64_t v = 1; v <= 20; ++v) {
    ASSERT_TRUE(store->UpsertWorker(1, v).ok());
    store->SimulateCrash();
    ASSERT_EQ(store->GetPersistedVersions().at(1), v);
  }
}

}  // namespace
}  // namespace dpr
