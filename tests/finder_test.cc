#include "dpr/finder.h"

#include <gtest/gtest.h>

#include <memory>

namespace dpr {
namespace {

class FinderTest : public ::testing::TestWithParam<FinderKind> {
 protected:
  void SetUp() override {
    metadata_ =
        std::make_unique<MetadataStore>(std::make_unique<MemoryDevice>());
    ASSERT_TRUE(metadata_->Recover().ok());
    finder_ = MakeDprFinder({.kind = GetParam(), .metadata = metadata_.get()});
  }

  Status Report(WorkerId w, Version v, DependencySet deps = {}) {
    return finder_->ReportPersistedVersion(finder_->CurrentWorldLine(),
                                           WorkerVersion{w, v}, deps);
  }

  DprCut Cut() {
    EXPECT_TRUE(finder_->ComputeCut().ok());
    DprCut cut;
    finder_->GetCut(nullptr, &cut);
    return cut;
  }

  std::unique_ptr<MetadataStore> metadata_;
  std::unique_ptr<DprFinder> finder_;
};

TEST_P(FinderTest, EmptyClusterHasNoCut) {
  EXPECT_TRUE(Cut().empty());
}

TEST_P(FinderTest, SingleWorkerAdvances) {
  ASSERT_TRUE(finder_->AddWorker(0, 0).ok());
  EXPECT_EQ(CutVersion(Cut(), 0), 0u);
  ASSERT_TRUE(Report(0, 1).ok());
  EXPECT_EQ(CutVersion(Cut(), 0), 1u);
  ASSERT_TRUE(Report(0, 2).ok());
  EXPECT_EQ(CutVersion(Cut(), 0), 2u);
}

TEST_P(FinderTest, IndependentWorkersBoundedByApproximation) {
  // With no cross-worker dependencies, the exact algorithm lets each worker
  // commit at its own pace; the approximate algorithm holds everyone at
  // Vmin. Either way the cut must be valid and monotone.
  ASSERT_TRUE(finder_->AddWorker(0, 0).ok());
  ASSERT_TRUE(finder_->AddWorker(1, 0).ok());
  ASSERT_TRUE(Report(0, 1).ok());
  ASSERT_TRUE(Report(0, 2).ok());
  ASSERT_TRUE(Report(0, 3).ok());
  ASSERT_TRUE(Report(1, 1).ok());
  const DprCut cut = Cut();
  if (GetParam() == FinderKind::kApprox) {
    EXPECT_EQ(CutVersion(cut, 0), 1u);
  } else {
    EXPECT_EQ(CutVersion(cut, 0), 3u);  // exact: no deps on worker 1
  }
  EXPECT_EQ(CutVersion(cut, 1), 1u);
}

TEST_P(FinderTest, DependencyBlocksUntilSupplierPersists) {
  ASSERT_TRUE(finder_->AddWorker(0, 0).ok());
  ASSERT_TRUE(finder_->AddWorker(1, 0).ok());
  // Worker 0's version 1 depends on worker 1's version 1 (a session touched
  // worker 1 then worker 0), but worker 1 has not persisted v1 yet.
  ASSERT_TRUE(Report(0, 1, {{1, 1}}).ok());
  EXPECT_EQ(CutVersion(Cut(), 0), 0u);
  ASSERT_TRUE(Report(1, 1).ok());
  const DprCut cut = Cut();
  EXPECT_EQ(CutVersion(cut, 0), 1u);
  EXPECT_EQ(CutVersion(cut, 1), 1u);
}

TEST_P(FinderTest, TransitiveDependencyChain) {
  ASSERT_TRUE(finder_->AddWorker(0, 0).ok());
  ASSERT_TRUE(finder_->AddWorker(1, 0).ok());
  ASSERT_TRUE(finder_->AddWorker(2, 0).ok());
  // 0-1 depends on 1-1 which depends on 2-1.
  ASSERT_TRUE(Report(0, 1, {{1, 1}}).ok());
  ASSERT_TRUE(Report(1, 1, {{2, 1}}).ok());
  EXPECT_EQ(CutVersion(Cut(), 0), 0u);
  EXPECT_EQ(CutVersion(Cut(), 1), 0u);
  ASSERT_TRUE(Report(2, 1).ok());
  const DprCut cut = Cut();
  EXPECT_EQ(CutVersion(cut, 0), 1u);
  EXPECT_EQ(CutVersion(cut, 1), 1u);
  EXPECT_EQ(CutVersion(cut, 2), 1u);
}

TEST_P(FinderTest, CutNeverRegresses) {
  ASSERT_TRUE(finder_->AddWorker(0, 0).ok());
  ASSERT_TRUE(finder_->AddWorker(1, 0).ok());
  ASSERT_TRUE(Report(0, 1).ok());
  ASSERT_TRUE(Report(1, 1).ok());
  DprCut first = Cut();
  ASSERT_TRUE(Report(0, 2).ok());
  DprCut second = Cut();
  for (const auto& [w, v] : first) {
    EXPECT_GE(CutVersion(second, w), v) << "worker " << w;
  }
}

TEST_P(FinderTest, MonotonicityInvariant) {
  // Property (§3.2): no version depends on a larger version number, so for
  // any reported set the cut computed must include every token whose full
  // dependency closure is persisted. We simulate the version clock: deps
  // always carry version numbers <= the reporting version.
  ASSERT_TRUE(finder_->AddWorker(0, 0).ok());
  ASSERT_TRUE(finder_->AddWorker(1, 0).ok());
  ASSERT_TRUE(finder_->AddWorker(2, 0).ok());
  for (Version v = 1; v <= 5; ++v) {
    for (WorkerId w = 0; w < 3; ++w) {
      DependencySet deps;
      if (v > 1) deps[(w + 1) % 3] = v - 1;
      ASSERT_TRUE(Report(w, v, deps).ok());
    }
  }
  const DprCut cut = Cut();
  for (WorkerId w = 0; w < 3; ++w) {
    EXPECT_EQ(CutVersion(cut, w), 5u);
  }
}

TEST_P(FinderTest, StaleWorldLineReportRejected) {
  ASSERT_TRUE(finder_->AddWorker(0, 0).ok());
  WorldLine wl;
  DprCut cut;
  ASSERT_TRUE(finder_->BeginRecovery(&wl, &cut).ok());
  ASSERT_TRUE(finder_->EndRecovery().ok());
  Status s = finder_->ReportPersistedVersion(wl - 1, WorkerVersion{0, 1}, {});
  EXPECT_TRUE(s.IsAborted());
}

TEST_P(FinderTest, RecoveryFreezesAndDiscardsAboveCut) {
  ASSERT_TRUE(finder_->AddWorker(0, 0).ok());
  ASSERT_TRUE(finder_->AddWorker(1, 0).ok());
  ASSERT_TRUE(Report(0, 1).ok());
  ASSERT_TRUE(Report(1, 1).ok());
  const DprCut committed = Cut();
  // These reports arrive but are not yet in the cut when failure strikes.
  ASSERT_TRUE(Report(0, 2).ok());
  WorldLine new_wl;
  DprCut recovery;
  ASSERT_TRUE(finder_->BeginRecovery(&new_wl, &recovery).ok());
  EXPECT_EQ(recovery, committed);
  EXPECT_EQ(new_wl, kInitialWorldLine + 1);
  // Reports from the old world-line are rejected.
  ASSERT_TRUE(finder_
                  ->ReportPersistedVersion(new_wl - 1, WorkerVersion{0, 3},
                                           {})
                  .IsAborted());
  ASSERT_TRUE(finder_->EndRecovery().ok());
  // Post-recovery reports on the new world-line advance again.
  ASSERT_TRUE(finder_->ReportPersistedVersion(new_wl, WorkerVersion{0, 3},
                                              {}).ok());
  ASSERT_TRUE(finder_->ReportPersistedVersion(new_wl, WorkerVersion{1, 3},
                                              {}).ok());
  const DprCut cut = Cut();
  EXPECT_EQ(CutVersion(cut, 0), 3u);
  EXPECT_EQ(CutVersion(cut, 1), 3u);
}

TEST_P(FinderTest, MaxPersistedVersionTracksVmax) {
  ASSERT_TRUE(finder_->AddWorker(0, 0).ok());
  ASSERT_TRUE(finder_->AddWorker(1, 0).ok());
  ASSERT_TRUE(Report(0, 4).ok());
  EXPECT_EQ(finder_->MaxPersistedVersion(), 4u);
  ASSERT_TRUE(Report(1, 9).ok());
  EXPECT_EQ(finder_->MaxPersistedVersion(), 9u);
}

TEST_P(FinderTest, SurvivesMetadataCrash) {
  ASSERT_TRUE(finder_->AddWorker(0, 0).ok());
  ASSERT_TRUE(Report(0, 2).ok());
  DprCut before = Cut();
  metadata_->SimulateCrash();
  // A freshly-constructed finder over the recovered metadata must see the
  // same committed cut (fault tolerance through the durable store).
  std::unique_ptr<DprFinder> reborn =
      MakeDprFinder({.kind = GetParam(), .metadata = metadata_.get()});
  DprCut after;
  reborn->GetCut(nullptr, &after);
  EXPECT_EQ(after, before);
}

INSTANTIATE_TEST_SUITE_P(AllFinders, FinderTest,
                         ::testing::Values(FinderKind::kApprox,
                                           FinderKind::kExact,
                                           FinderKind::kHybrid),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case FinderKind::kApprox:
                               return "Approx";
                             case FinderKind::kExact:
                               return "Exact";
                             case FinderKind::kHybrid:
                               return "Hybrid";
                           }
                           return "Unknown";
                         });

// --- algorithm-specific behaviour ---

TEST(GraphFinderTest, CoordinatorCrashReloadsDurableGraph) {
  MetadataStore metadata(std::make_unique<MemoryDevice>());
  ASSERT_TRUE(metadata.Recover().ok());
  auto finder =
      MakeDprFinder({.kind = FinderKind::kExact, .metadata = &metadata});
  ASSERT_TRUE(finder->AddWorker(0, 0).ok());
  ASSERT_TRUE(finder->AddWorker(1, 0).ok());
  ASSERT_TRUE(finder->ReportPersistedVersion(1, WorkerVersion{0, 1},
                                             {{1, 1}}).ok());
  finder->SimulateCoordinatorCrash();  // reloads from durable graph rows
  ASSERT_TRUE(
      finder->ReportPersistedVersion(1, WorkerVersion{1, 1}, {}).ok());
  ASSERT_TRUE(finder->ComputeCut().ok());
  DprCut cut;
  finder->GetCut(nullptr, &cut);
  EXPECT_EQ(CutVersion(cut, 0), 1u);  // dependency info survived the crash
}

TEST(HybridFinderTest, ApproximateFallbackUnsticksLostSubgraph) {
  MetadataStore metadata(std::make_unique<MemoryDevice>());
  ASSERT_TRUE(metadata.Recover().ok());
  auto finder =
      MakeDprFinder({.kind = FinderKind::kHybrid, .metadata = &metadata});
  ASSERT_TRUE(finder->AddWorker(0, 0).ok());
  ASSERT_TRUE(finder->AddWorker(1, 0).ok());
  ASSERT_TRUE(
      finder->ReportPersistedVersion(1, WorkerVersion{0, 2}, {}).ok());
  finder->SimulateCoordinatorCrash();  // in-memory graph lost, rows survive
  // Exact computation is now blind to worker 0's v1..v2 dependency info and
  // cannot advance it; once worker 1 catches up, Vmin unsticks the cut.
  ASSERT_TRUE(finder->ComputeCut().ok());
  DprCut cut;
  finder->GetCut(nullptr, &cut);
  EXPECT_EQ(CutVersion(cut, 0), 0u);
  ASSERT_TRUE(
      finder->ReportPersistedVersion(1, WorkerVersion{1, 2}, {}).ok());
  ASSERT_TRUE(finder->ComputeCut().ok());
  finder->GetCut(nullptr, &cut);
  EXPECT_EQ(CutVersion(cut, 0), 2u);  // Vmin-based fallback advanced it
  EXPECT_EQ(CutVersion(cut, 1), 2u);
}

TEST(SimpleFinderTest, UncoordinatedCommitsNeverFormCutWithoutClock) {
  // Fig. 3: staggered checkpoints with ever-growing dependencies never form
  // a cut. The approximate finder models this as Vmin staying at the slower
  // worker's version — the cut tracks the laggard, never the leader.
  MetadataStore metadata(std::make_unique<MemoryDevice>());
  ASSERT_TRUE(metadata.Recover().ok());
  auto finder =
      MakeDprFinder({.kind = FinderKind::kApprox, .metadata = &metadata});
  ASSERT_TRUE(finder->AddWorker(0, 0).ok());
  ASSERT_TRUE(finder->AddWorker(1, 0).ok());
  for (Version v = 1; v <= 10; ++v) {
    ASSERT_TRUE(finder->ReportPersistedVersion(1, WorkerVersion{0, v},
                                               {}).ok());
  }
  ASSERT_TRUE(finder->ComputeCut().ok());
  DprCut cut;
  finder->GetCut(nullptr, &cut);
  EXPECT_EQ(CutVersion(cut, 0), 0u);  // pinned by worker 1's silence
  EXPECT_EQ(CutVersion(cut, 1), 0u);
}

}  // namespace
}  // namespace dpr
