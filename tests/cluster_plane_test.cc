// Elastic cluster plane (DESIGN.md §4i): the membership state machine over
// durable metadata rows, live shard migration through the phased driver,
// client re-routing (including lazy endpoint resolution for workers that
// joined after the client), and cut monotonicity across moves.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/cut_monitor.h"
#include "cluster/membership.h"
#include "common/clock.h"
#include "common/sync.h"
#include "harness/cluster.h"
#include "metadata/metadata_store.h"

namespace dpr {
namespace {

// ------------------------------------------------------- membership machine

TEST(ClusterMembershipTest, LegalTransitionTable) {
  using MS = MemberState;
  // From absent, the only edge is a join (the `from` operand is ignored).
  EXPECT_TRUE(ClusterMembership::LegalTransition(false, MS::kActive,
                                                 MS::kJoining));
  EXPECT_FALSE(ClusterMembership::LegalTransition(false, MS::kJoining,
                                                  MS::kActive));
  EXPECT_FALSE(ClusterMembership::LegalTransition(false, MS::kJoining,
                                                  MS::kRemoved));
  // Forward edges.
  EXPECT_TRUE(ClusterMembership::LegalTransition(true, MS::kJoining,
                                                 MS::kActive));
  EXPECT_TRUE(ClusterMembership::LegalTransition(true, MS::kJoining,
                                                 MS::kRemoved));  // aborted
  EXPECT_TRUE(ClusterMembership::LegalTransition(true, MS::kActive,
                                                 MS::kDraining));
  EXPECT_TRUE(ClusterMembership::LegalTransition(true, MS::kDraining,
                                                 MS::kRemoved));
  // No going backwards, no skipping the drain, no leaving the tombstone.
  EXPECT_FALSE(ClusterMembership::LegalTransition(true, MS::kActive,
                                                  MS::kRemoved));
  EXPECT_FALSE(ClusterMembership::LegalTransition(true, MS::kDraining,
                                                  MS::kActive));
  EXPECT_FALSE(ClusterMembership::LegalTransition(true, MS::kJoining,
                                                  MS::kDraining));
  EXPECT_FALSE(ClusterMembership::LegalTransition(true, MS::kRemoved,
                                                  MS::kJoining));
  EXPECT_FALSE(ClusterMembership::LegalTransition(true, MS::kRemoved,
                                                  MS::kActive));
}

TEST(ClusterMembershipTest, TransitionsAreDurableAcrossCrash) {
  MetadataStore metadata(std::make_unique<MemoryDevice>());
  ASSERT_TRUE(metadata.Recover().ok());
  ClusterMembership membership(&metadata);

  ASSERT_TRUE(membership.Transition(0, MemberState::kJoining).ok());
  ASSERT_TRUE(membership.Transition(0, MemberState::kActive).ok());
  ASSERT_TRUE(membership.Transition(1, MemberState::kJoining).ok());
  ASSERT_TRUE(membership.Transition(2, MemberState::kJoining).ok());
  ASSERT_TRUE(membership.Transition(2, MemberState::kActive).ok());
  ASSERT_TRUE(membership.Transition(2, MemberState::kDraining).ok());
  ASSERT_TRUE(membership.Transition(2, MemberState::kRemoved).ok());

  // Illegal edges are rejected without touching the durable rows.
  EXPECT_EQ(membership.Transition(0, MemberState::kJoining).code(),
            Status::Code::kInvalidArgument);  // re-join an active member
  EXPECT_EQ(membership.Transition(2, MemberState::kJoining).code(),
            Status::Code::kInvalidArgument);  // revive a tombstone
  EXPECT_EQ(membership.Transition(1, MemberState::kDraining).code(),
            Status::Code::kInvalidArgument);  // drain a joiner

  metadata.SimulateCrash();

  MemberState st;
  ASSERT_TRUE(membership.StateOf(0, &st).ok());
  EXPECT_EQ(st, MemberState::kActive);
  ASSERT_TRUE(membership.StateOf(1, &st).ok());
  EXPECT_EQ(st, MemberState::kJoining);
  ASSERT_TRUE(membership.StateOf(2, &st).ok());
  EXPECT_EQ(st, MemberState::kRemoved);
  EXPECT_EQ(membership.StateOf(9, nullptr).code(), Status::Code::kNotFound);
  // The tombstone is still a wall after the crash.
  EXPECT_EQ(membership.Transition(2, MemberState::kActive).code(),
            Status::Code::kInvalidArgument);
  // Only worker 0 is active (1 is joining, 2 tombstoned).
  EXPECT_EQ(membership.ActiveMembers(), std::vector<WorkerId>{0});
}

// ----------------------------------------------------------- cut monotonicity

TEST(CutMonotonicityCheckerTest, AcceptsGrowthAndMembershipChurn) {
  CutMonotonicityChecker checker;
  EXPECT_TRUE(checker.Observe({{0, 1}, {1, 2}}).ok());
  EXPECT_TRUE(checker.Observe({{0, 3}, {1, 2}}).ok());  // growth
  EXPECT_TRUE(checker.Observe({{0, 3}}).ok());          // worker 1 left: fine
  EXPECT_TRUE(checker.Observe({{0, 3}, {2, 1}}).ok());  // worker 2 joined
  EXPECT_EQ(checker.observed(), 4u);
  EXPECT_EQ(checker.high_water(), (DprCut{{0, 3}, {1, 2}, {2, 1}}));
}

TEST(CutMonotonicityCheckerTest, FlagsRegression) {
  CutMonotonicityChecker checker;
  ASSERT_TRUE(checker.Observe({{0, 5}}).ok());
  Status s = checker.Observe({{0, 4}});
  EXPECT_EQ(s.code(), Status::Code::kCorruption);
  // The high water is not polluted by the bad cut.
  EXPECT_EQ(checker.high_water(), (DprCut{{0, 5}}));
}

// ------------------------------------------------------------- cluster level

ClusterOptions Opts() {
  ClusterOptions options;
  options.num_workers = 2;
  options.backend = StorageBackend::kLocal;
  options.checkpoint_interval_us = 20000;
  options.finder_interval_us = 5000;
  return options;
}

uint32_t PartitionOnWorker(const DFasterCluster& cluster, WorkerId worker) {
  for (uint32_t vp = 0; vp < YcsbWorkload::kNumPartitions; ++vp) {
    if (cluster.OwnerOf(vp) == worker) return vp;
  }
  ADD_FAILURE() << "no partition on worker " << worker;
  return 0;
}

uint64_t KeyInPartition(uint32_t partition) {
  uint64_t key = 0;
  while (YcsbWorkload::PartitionOf(key) != partition) key++;
  return key;
}

TEST(ClusterPlaneTest, FoundersAreSeededActive) {
  DFasterCluster cluster(Opts());
  ASSERT_TRUE(cluster.Start().ok());
  auto states = cluster.MemberStates();
  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states.at(0), MemberState::kActive);
  EXPECT_EQ(states.at(1), MemberState::kActive);
}

TEST(ClusterPlaneTest, JoinActivateDecommissionLifecycle) {
  DFasterCluster cluster(Opts());
  ASSERT_TRUE(cluster.Start().ok());

  // Seed data so the decommission below has real shards to drain.
  {
    auto client = cluster.NewClient(8, 64);
    auto session = client->NewSession(1);
    for (uint64_t k = 0; k < 100; ++k) session->Upsert(k, k + 1);
    ASSERT_TRUE(session->WaitForAll().ok());
  }

  WorkerId joiner = kInvalidWorker;
  ASSERT_TRUE(cluster.AddWorker(&joiner).ok());
  EXPECT_EQ(cluster.MemberStates().at(joiner), MemberState::kJoining);
  // A joiner owns nothing until shards are migrated onto it.
  EXPECT_EQ(cluster.worker(joiner)->OwnedPartitionCount(), 0u);

  const uint32_t vp = PartitionOnWorker(cluster, 0);
  ASSERT_TRUE(cluster.MigratePartition(vp, joiner).ok());
  EXPECT_EQ(cluster.OwnerOf(vp), joiner);
  // Dual-ownership window is closed: the durable migration row is gone.
  EXPECT_TRUE(cluster.metadata()->GetMigrations().empty());

  ASSERT_TRUE(cluster.ActivateWorker(joiner).ok());
  EXPECT_EQ(cluster.MemberStates().at(joiner), MemberState::kActive);

  // Decommission a founder: its shards drain to active members, the DPR row
  // drops, and the membership row lands on the tombstone.
  ASSERT_TRUE(cluster.DecommissionWorker(0).ok());
  EXPECT_EQ(cluster.MemberStates().at(0), MemberState::kRemoved);
  for (uint32_t p = 0; p < YcsbWorkload::kNumPartitions; ++p) {
    EXPECT_NE(cluster.OwnerOf(p), 0u) << "partition " << p << " not drained";
  }

  // Every pre-decommission write is still readable through the new topology.
  auto client = cluster.NewClient(8, 64);
  auto session = client->NewSession(2);
  std::atomic<uint64_t> sum{0};
  for (uint64_t k = 0; k < 100; ++k) {
    session->Read(k, [&](KvResult r, uint64_t v) {
      if (r == KvResult::kOk) sum.fetch_add(v);
    });
  }
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_EQ(sum.load(), 100u * 101 / 2);
  // And DPR commits keep flowing without the removed founder.
  for (uint64_t k = 0; k < 20; ++k) session->Upsert(k, k);
  EXPECT_TRUE(session->WaitForCommit(20000).ok());
}

TEST(ClusterPlaneTest, MigrationRejectsLeavingTarget) {
  DFasterCluster cluster(Opts());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(
      cluster.membership()->Transition(1, MemberState::kDraining).ok());
  const uint32_t vp = PartitionOnWorker(cluster, 0);
  EXPECT_EQ(cluster.MigratePartition(vp, 1).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(cluster.OwnerOf(vp), 0u);
}

TEST(ClusterPlaneTest, DecommissionRefusedWithoutDrainTarget) {
  DFasterCluster cluster(Opts());
  ASSERT_TRUE(cluster.Start().ok());
  // Drain worker 1's shards onto 0 by hand, then tombstone it.
  ASSERT_TRUE(cluster.DecommissionWorker(1).ok());
  // Worker 0 is now the only active member: nobody can take its shards.
  EXPECT_EQ(cluster.DecommissionWorker(0).code(),
            Status::Code::kUnavailable);
  // The failed decommission leaves it draining (the paper's operator would
  // re-add capacity and retry); its shards are untouched.
  EXPECT_EQ(cluster.MemberStates().at(0), MemberState::kDraining);
  EXPECT_GT(cluster.worker(0)->OwnedPartitionCount(), 0u);
}

TEST(ClusterPlaneTest, LazyClientReachesWorkerJoinedAfterIt) {
  DFasterCluster cluster(Opts());
  ASSERT_TRUE(cluster.Start().ok());
  // Client created while the cluster has two workers...
  auto client = cluster.NewClient(1, 8);
  auto session = client->NewSession(1);
  const uint32_t vp = PartitionOnWorker(cluster, 0);
  const uint64_t key = KeyInPartition(vp);
  session->Upsert(key, 41);
  ASSERT_TRUE(session->WaitForAll().ok());

  // ...then the partition moves to a worker the client has never heard of.
  WorkerId joiner = kInvalidWorker;
  ASSERT_TRUE(cluster.AddWorker(&joiner).ok());
  ASSERT_TRUE(cluster.MigratePartition(vp, joiner).ok());

  // The next ops hit kNotOwner at the old owner, refresh the ownership
  // cache, resolve the new endpoint lazily, and land on the joiner.
  session->Upsert(key, 42);
  ASSERT_TRUE(session->WaitForAll().ok());
  std::atomic<uint64_t> value{0};
  session->Read(key, [&](KvResult r, uint64_t v) {
    if (r == KvResult::kOk) value.store(v);
  });
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_EQ(value.load(), 42u);
  // WaitForCommit now spans the joiner too (KnownWorkers grew).
  EXPECT_TRUE(session->WaitForCommit(20000).ok());
}

TEST(ClusterPlaneTest, RefreshOwnershipUnderConcurrentFlips) {
  DFasterCluster cluster(Opts());
  ASSERT_TRUE(cluster.Start().ok());
  const uint32_t vp = PartitionOnWorker(cluster, 0);
  const uint64_t key = KeyInPartition(vp);

  // A writer hammers one key while the partition bounces between owners.
  // Every acknowledged write must survive; no write may succeed against a
  // stale owner (the final read must see the last acknowledged value).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> last_acked{0};
  std::thread writer([&] {
    auto wclient = cluster.NewClient(1, 4);
    auto wsession = wclient->NewSession(7);
    for (uint64_t i = 1; !stop.load(); ++i) {
      std::atomic<bool> ok{false};
      wsession->Upsert(key, i, [&](KvResult r, uint64_t) {
        if (r == KvResult::kOk) ok.store(true);
      });
      (void)wsession->WaitForAll();
      if (ok.load()) last_acked.store(i);
      SleepMicros(200);
    }
  });

  CutMonotonicityChecker monitor;
  for (int flip = 0; flip < 6; ++flip) {
    ASSERT_TRUE(cluster.MigratePartition(vp, flip % 2 == 0 ? 1 : 0).ok());
    // The tracking plane's cut never regresses across flips (P5).
    DprCut cut;
    cluster.finder()->GetCut(nullptr, &cut);
    ASSERT_TRUE(monitor.Observe(cut).ok());
  }
  stop.store(true);
  writer.join();

  auto client = cluster.NewClient(1, 8);
  auto session = client->NewSession(8);
  std::atomic<uint64_t> value{0};
  session->Read(key, [&](KvResult r, uint64_t v) {
    if (r == KvResult::kOk) value.store(v);
  });
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_GE(value.load(), last_acked.load());
  EXPECT_GE(monitor.observed(), 6u);
}

}  // namespace
}  // namespace dpr
