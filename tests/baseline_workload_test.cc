#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "baseline/commitlog_store.h"
#include "common/clock.h"
#include "workload/ycsb.h"

namespace dpr {
namespace {

// ----------------------------------------------------------- CommitLogStore

CommitLogStoreOptions WithSync(CommitLogSync sync) {
  CommitLogStoreOptions options;
  options.sync = sync;
  options.sync_period_us = 2000;
  return options;
}

TEST(CommitLogStoreTest, PutGetAllModes) {
  for (CommitLogSync sync : {CommitLogSync::kNone, CommitLogSync::kPeriodic,
                             CommitLogSync::kGroup}) {
    CommitLogStore store(WithSync(sync));
    ASSERT_TRUE(store.Put("k", "v").ok());
    std::string value;
    ASSERT_TRUE(store.Get("k", &value).ok());
    EXPECT_EQ(value, "v");
    EXPECT_TRUE(store.Get("missing", nullptr).IsNotFound());
  }
}

TEST(CommitLogStoreTest, GroupCommitSurvivesCrashImmediately) {
  CommitLogStore store(WithSync(CommitLogSync::kGroup));
  ASSERT_TRUE(store.Put("k", "v").ok());  // returns only after fsync
  store.SimulateCrash();
  ASSERT_TRUE(store.Recover().ok());
  std::string value;
  ASSERT_TRUE(store.Get("k", &value).ok());
  EXPECT_EQ(value, "v");
}

TEST(CommitLogStoreTest, PeriodicModeEventuallyDurable) {
  CommitLogStore store(WithSync(CommitLogSync::kPeriodic));
  ASSERT_TRUE(store.Put("k", "v").ok());
  // Wait out a few sync periods, then crash: the write must survive.
  SleepMicros(20000);
  store.SimulateCrash();
  ASSERT_TRUE(store.Recover().ok());
  std::string value;
  EXPECT_TRUE(store.Get("k", &value).ok());
}

TEST(CommitLogStoreTest, NoneModeLosesEverything) {
  CommitLogStore store(WithSync(CommitLogSync::kNone));
  ASSERT_TRUE(store.Put("k", "v").ok());
  store.SimulateCrash();
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_TRUE(store.Get("k", nullptr).IsNotFound());
}

TEST(CommitLogStoreTest, RecoverReplaysInOrder) {
  CommitLogStore store(WithSync(CommitLogSync::kGroup));
  ASSERT_TRUE(store.Put("k", "v1").ok());
  ASSERT_TRUE(store.Put("k", "v2").ok());
  store.SimulateCrash();
  ASSERT_TRUE(store.Recover().ok());
  std::string value;
  ASSERT_TRUE(store.Get("k", &value).ok());
  EXPECT_EQ(value, "v2");  // last write wins
}

// --------------------------------------------------------------------- YCSB

TEST(YcsbTest, DeterministicFromSeed) {
  YcsbOptions options;
  options.seed = 5;
  YcsbWorkload a(options);
  YcsbWorkload b(options);
  for (int i = 0; i < 1000; ++i) {
    const YcsbOp x = a.Next();
    const YcsbOp y = b.Next();
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(static_cast<int>(x.type), static_cast<int>(y.type));
  }
}

TEST(YcsbTest, MixMatchesConfiguredFractions) {
  YcsbOptions options;
  options.read_fraction = 0.9;
  options.rmw_fraction = 0.05;
  YcsbWorkload workload(options);
  std::map<YcsbOp::Type, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[workload.Next().type]++;
  EXPECT_NEAR(counts[YcsbOp::Type::kRead] / double(n), 0.9, 0.02);
  EXPECT_NEAR(counts[YcsbOp::Type::kRmw] / double(n), 0.05, 0.01);
  EXPECT_NEAR(counts[YcsbOp::Type::kUpsert] / double(n), 0.05, 0.01);
}

TEST(YcsbTest, KeysWithinKeyspace) {
  YcsbOptions options;
  options.num_keys = 1000;
  options.zipf_theta = 0.99;
  YcsbWorkload workload(options);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(workload.Next().key, 1000u);
  }
}

TEST(YcsbTest, ShardingIsBalancedAndStable) {
  std::map<uint32_t, int> counts;
  for (uint64_t k = 0; k < 80000; ++k) {
    const uint32_t shard = YcsbWorkload::ShardOf(k, 8);
    ASSERT_LT(shard, 8u);
    ASSERT_EQ(shard, YcsbWorkload::ShardOf(k, 8));  // stable
    counts[shard]++;
  }
  for (const auto& [shard, count] : counts) {
    EXPECT_NEAR(count, 10000, 1000) << "shard " << shard;
  }
}

TEST(YcsbTest, NextKeyOnShardRespectsShard) {
  YcsbOptions options;
  YcsbWorkload workload(options);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t key = workload.NextKeyOnShard(3, 8);
    ASSERT_EQ(YcsbWorkload::ShardOf(key, 8), 3u);
  }
}

}  // namespace
}  // namespace dpr
