// Tests for the async storage data path: out-of-order completions against
// the FileDevice durable watermark, group-commit fsync coalescing, crash
// simulation honoring only completed fsync groups, io_uring fallback, fault
// probe parity across engines, and DeviceSlice shared-root semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/sync.h"
#include "fault/fault_plane.h"
#include "storage/async_io.h"
#include "storage/device.h"
#include "storage/fsync_scheduler.h"

namespace dpr {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/dpr_storage_async_" + name;
}

/// Engine wrapper that holds every submission until released, then runs the
/// held ops in REVERSE submission order, one at a time — a deterministic
/// out-of-order completion schedule. `set_passthrough(true)` forwards
/// directly (used once reordering is no longer the point of the test).
class ReorderEngine : public IoEngine {
 public:
  explicit ReorderEngine(std::shared_ptr<IoEngine> inner)
      : inner_(std::move(inner)) {}

  void Submit(IoOp op) override {
    {
      MutexLock guard(mu_);
      if (!passthrough_) {
        held_.push_back(std::move(op));
        return;
      }
    }
    inner_->Submit(std::move(op));
  }

  void SubmitBatch(std::vector<IoOp> ops) override {
    for (auto& op : ops) Submit(std::move(op));
  }

  IoEngineKind kind() const override { return inner_->kind(); }

  /// Runs every held op in reverse order, waiting for each completion before
  /// submitting the next, so completions are strictly reversed.
  void ReleaseReversed() {
    std::vector<IoOp> batch;
    {
      MutexLock guard(mu_);
      batch.assign(std::make_move_iterator(held_.rbegin()),
                   std::make_move_iterator(held_.rend()));
      held_.clear();
    }
    for (auto& op : batch) {
      std::atomic<bool> done{false};
      IoCallback original = std::move(op.done);
      op.done = [&done, &original](Status s) {
        if (original) original(std::move(s));
        done.store(true, std::memory_order_release);
      };
      inner_->Submit(std::move(op));
      while (!done.load(std::memory_order_acquire)) SleepMicros(50);
    }
  }

  void set_passthrough(bool on) {
    MutexLock guard(mu_);
    passthrough_ = on;
  }

 private:
  std::shared_ptr<IoEngine> inner_;
  mutable Mutex mu_{LockRank::kStorageEngine, "test.reorder"};
  std::deque<IoOp> held_ GUARDED_BY(mu_);
  bool passthrough_ GUARDED_BY(mu_) = false;
};

/// Device wrapper that holds fsync submissions until the test releases them,
/// making group-commit dispatch rounds fully deterministic.
class GateDevice : public Device {
 public:
  explicit GateDevice(Device* base) : base_(base) {}

  void SubmitWrite(uint64_t offset, const void* data, size_t n,
                   IoCallback done) override {
    base_->SubmitWrite(offset, data, n, std::move(done));
  }
  void SubmitRead(uint64_t offset, void* buf, size_t n,
                  IoCallback done) override {
    base_->SubmitRead(offset, buf, n, std::move(done));
  }
  void SubmitFsync(IoCallback done) override {
    MutexLock guard(mu_);
    held_.push_back(std::move(done));
    ++fsync_submits_;
    cv_.NotifyAll();
  }
  uint64_t Size() const override { return base_->Size(); }
  void SimulateCrash() override { base_->SimulateCrash(); }
  void Truncate(uint64_t new_size) override { base_->Truncate(new_size); }

  void WaitForSubmits(uint64_t n) {
    MutexLock guard(mu_);
    while (fsync_submits_ < n) cv_.Wait(mu_);
  }

  /// Completes the oldest held fsync by running it on the base device.
  void ReleaseOne() {
    IoCallback done;
    {
      MutexLock guard(mu_);
      ASSERT_FALSE(held_.empty());
      done = std::move(held_.front());
      held_.pop_front();
    }
    base_->SubmitFsync(std::move(done));
  }

  uint64_t fsync_submits() const {
    MutexLock guard(mu_);
    return fsync_submits_;
  }

 private:
  Device* base_;
  mutable Mutex mu_{LockRank::kStorage, "test.gate"};
  CondVar cv_ GUARDED_BY(mu_);
  std::deque<IoCallback> held_ GUARDED_BY(mu_);
  uint64_t fsync_submits_ GUARDED_BY(mu_) = 0;
};

TEST(AsyncFileDeviceTest, OutOfOrderCompletionsOnDisjointRanges) {
  const std::string path = TempPath("out_of_order");
  auto reorder = std::make_shared<ReorderEngine>(
      MakeIoEngine({.kind = IoEngineKind::kThreadPool, .threads = 1}));
  std::unique_ptr<FileDevice> dev;
  ASSERT_TRUE(FileDevice::Open(path, /*reset=*/true, &dev, reorder).ok());

  // Three disjoint writes; the engine completes them in reverse order.
  std::atomic<int> completed{0};
  auto on_done = [&completed](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    completed.fetch_add(1);
  };
  dev->SubmitWrite(0, "AAAA", 4, on_done);
  dev->SubmitWrite(4, "BBBB", 4, on_done);
  dev->SubmitWrite(8, "CCCC", 4, on_done);
  reorder->ReleaseReversed();
  EXPECT_EQ(completed.load(), 3);
  EXPECT_EQ(dev->Size(), 12u);

  reorder->set_passthrough(true);
  ASSERT_TRUE(SyncIo::Fsync(dev.get()).ok());
  char buf[12];
  ASSERT_TRUE(SyncIo::Read(dev.get(), 0, buf, 12).ok());
  EXPECT_EQ(std::string(buf, 12), "AAAABBBBCCCC");
  dev.reset();
  remove(path.c_str());
}

TEST(AsyncFileDeviceTest, CrashHonorsOnlyCompletedFsyncGroups) {
  const std::string path = TempPath("fsync_watermark");
  auto reorder = std::make_shared<ReorderEngine>(
      MakeIoEngine({.kind = IoEngineKind::kThreadPool, .threads = 1}));
  std::unique_ptr<FileDevice> dev;
  ASSERT_TRUE(FileDevice::Open(path, /*reset=*/true, &dev, reorder).ok());

  // Group 1 completes fully: write then fsync, in order.
  dev->SubmitWrite(0, "AAAA", 4, {});
  reorder->ReleaseReversed();
  dev->SubmitFsync({});
  reorder->ReleaseReversed();

  // Group 2: the fsync is submitted while the write is still in flight, so
  // its watermark must not cover the write — even though (released in
  // reverse) the write's bytes reach the file before the fsync runs.
  std::atomic<bool> write_done{false};
  dev->SubmitWrite(4, "BBBB", 4,
                   [&write_done](Status) { write_done.store(true); });
  dev->SubmitFsync({});
  reorder->ReleaseReversed();  // fsync first, then the write
  EXPECT_TRUE(write_done.load());
  EXPECT_EQ(dev->Size(), 8u);

  // Only group 1 was durable; the crash rolls the uncovered write back.
  reorder->set_passthrough(true);
  dev->SimulateCrash();
  EXPECT_EQ(dev->Size(), 4u);
  char buf[4];
  ASSERT_TRUE(SyncIo::Read(dev.get(), 0, buf, 4).ok());
  EXPECT_EQ(std::string(buf, 4), "AAAA");
  dev.reset();
  remove(path.c_str());
}

TEST(GroupCommitSchedulerTest, CoalescesWaitersIntoOneFsync) {
  MemoryDevice base;
  GateDevice gate(&base);
  GroupCommitScheduler sched;

  ASSERT_TRUE(SyncIo::Write(&gate, 0, "AAAA", 4).ok());

  std::atomic<int> fired{0};
  auto waiter = [&fired](Status s) {
    EXPECT_TRUE(s.ok()) << s.ToString();
    fired.fetch_add(1);
  };

  // First waiter: dispatched into fsync #1, which we hold in flight.
  sched.RequestSync(&gate, waiter);
  gate.WaitForSubmits(1);

  // Five more waiters arrive while #1 is in flight: they must all join the
  // NEXT group, not the in-flight one.
  constexpr int kLateWaiters = 5;
  for (int i = 0; i < kLateWaiters; ++i) sched.RequestSync(&gate, waiter);

  gate.ReleaseOne();  // completes #1 -> waiter 1 fires, group 2 dispatches
  gate.WaitForSubmits(2);
  gate.ReleaseOne();  // completes #2 -> all five late waiters fire

  for (int spins = 0; fired.load() < 1 + kLateWaiters && spins < 20000;
       ++spins) {
    SleepMicros(100);
  }
  EXPECT_EQ(fired.load(), 1 + kLateWaiters);
  // Six durability requests were satisfied by exactly two device fsyncs.
  EXPECT_EQ(gate.fsync_submits(), 2u);
  EXPECT_EQ(sched.fsyncs_issued(), 2u);
  EXPECT_GE(sched.waiters_coalesced(), static_cast<uint64_t>(kLateWaiters));
}

TEST(GroupCommitSchedulerTest, SyncNowMakesDataDurable) {
  MemoryDevice dev;
  GroupCommitScheduler sched;
  ASSERT_TRUE(SyncIo::Write(&dev, 0, "durable", 7).ok());
  ASSERT_TRUE(sched.SyncNow(&dev).ok());
  dev.SimulateCrash();
  char buf[7];
  ASSERT_TRUE(SyncIo::Read(&dev, 0, buf, 7).ok());
  EXPECT_EQ(std::string(buf, 7), "durable");
  EXPECT_GE(sched.fsyncs_issued(), 1u);
}

TEST(IoEngineTest, IoUringSetupFailureFallsBackToThreadPool) {
  // A 1M-entry SQ is beyond any kernel's limit, so io_uring_setup fails and
  // the factory must hand back a working thread-pool engine instead.
  auto engine = MakeIoEngine(
      {.kind = IoEngineKind::kIoUring, .queue_depth = 1u << 20});
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->kind(), IoEngineKind::kThreadPool);

  const std::string path = TempPath("fallback");
  std::unique_ptr<FileDevice> dev;
  ASSERT_TRUE(FileDevice::Open(path, /*reset=*/true, &dev, engine).ok());
  ASSERT_TRUE(SyncIo::Write(dev.get(), 0, "still works", 11).ok());
  ASSERT_TRUE(SyncIo::Fsync(dev.get()).ok());
  char buf[11];
  ASSERT_TRUE(SyncIo::Read(dev.get(), 0, buf, 11).ok());
  EXPECT_EQ(std::string(buf, 11), "still works");
  dev.reset();
  remove(path.c_str());
}

TEST(IoEngineTest, ExplicitIoUringRunsWhenSupported) {
  if (!IoUringSupported()) {
    GTEST_SKIP() << "io_uring unavailable in this kernel/container";
  }
  auto engine = MakeIoEngine(
      {.kind = IoEngineKind::kIoUring, .queue_depth = 64});
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->kind(), IoEngineKind::kIoUring);

  const std::string path = TempPath("uring_roundtrip");
  std::unique_ptr<FileDevice> dev;
  ASSERT_TRUE(FileDevice::Open(path, /*reset=*/true, &dev, engine).ok());
  const std::string payload(64 * 1024, 'x');  // large enough to split/batch
  ASSERT_TRUE(SyncIo::Write(dev.get(), 0, payload.data(), payload.size()).ok());
  ASSERT_TRUE(SyncIo::Fsync(dev.get()).ok());
  std::string back(payload.size(), '\0');
  ASSERT_TRUE(SyncIo::Read(dev.get(), 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, payload);
  dev.reset();
  remove(path.c_str());
}

/// One probe sequence against a FaultDevice over `engine_kind`, recording
/// every observable outcome as a string; the parity test asserts the trace
/// is byte-identical under both engines.
std::vector<std::string> RunProbeSequence(IoEngineKind engine_kind,
                                          const std::string& tag) {
  constexpr uint64_t kScope = 7;
  std::vector<std::string> trace;
  const std::string path = TempPath("parity_" + tag);
  auto engine = MakeIoEngine({.kind = engine_kind, .queue_depth = 64});
  std::unique_ptr<FileDevice> file;
  EXPECT_TRUE(FileDevice::Open(path, /*reset=*/true, &file, engine).ok());
  FaultDevice dev(std::move(file), kScope);
  FaultPlane& fp = FaultPlane::Instance();

  // device.write_fail: the first write errors, the second goes through.
  fp.Arm({.point = faults::kDevWriteFail, .scope = kScope, .max_fires = 1});
  trace.push_back("write_fail#1: " + SyncIo::Write(&dev, 0, "AAAA", 4).ToString());
  trace.push_back("write_fail#2: " + SyncIo::Write(&dev, 0, "AAAA", 4).ToString());
  fp.Disarm(faults::kDevWriteFail);

  // device.torn_write: half the range lands, the caller sees an error.
  fp.Arm({.point = faults::kDevTornWrite, .scope = kScope, .max_fires = 1});
  trace.push_back("torn#1: " + SyncIo::Write(&dev, 4, "BBBBBBBB", 8).ToString());
  trace.push_back("size after tear: " + std::to_string(dev.Size()));
  trace.push_back("torn#2: " + SyncIo::Write(&dev, 4, "BBBBBBBB", 8).ToString());
  trace.push_back("size after retry: " + std::to_string(dev.Size()));
  fp.Disarm(faults::kDevTornWrite);

  // device.slow_fsync: the stall is observable on the submitting side.
  constexpr uint64_t kStallUs = 20000;
  fp.Arm({.point = faults::kDevSlowFsync,
          .scope = kScope,
          .max_fires = 1,
          .param = kStallUs});
  const uint64_t t0 = NowMicros();
  trace.push_back("slow_fsync: " + SyncIo::Fsync(&dev).ToString());
  trace.push_back(std::string("stalled: ") +
                  (NowMicros() - t0 >= kStallUs / 2 ? "yes" : "no"));
  fp.Disarm(faults::kDevSlowFsync);

  remove(path.c_str());
  return trace;
}

TEST(FaultParityTest, ProbesFireIdenticallyUnderBothEngines) {
  ScopedFaultPlane plane(/*seed=*/42);
  const std::vector<std::string> pool =
      RunProbeSequence(IoEngineKind::kThreadPool, "pool");
  const std::vector<std::string> uring =
      RunProbeSequence(IoEngineKind::kIoUring, "uring");

  // Pin the absolute behavior once...
  ASSERT_EQ(pool.size(), 8u);
  EXPECT_EQ(pool[0], "write_fail#1: IOError: injected write failure");
  EXPECT_EQ(pool[1], "write_fail#2: OK");
  EXPECT_EQ(pool[2], "torn#1: IOError: injected torn write");
  EXPECT_EQ(pool[3], "size after tear: 8");   // 4 + half of the torn 8
  EXPECT_EQ(pool[4], "torn#2: OK");
  EXPECT_EQ(pool[5], "size after retry: 12");
  EXPECT_EQ(pool[7], "stalled: yes");
  // ...then require the io_uring path (or its fallback, when the kernel
  // lacks io_uring) to behave byte-identically.
  EXPECT_EQ(pool, uring);
}

TEST(DeviceSliceTest, SlicesShareSyncRootAndBoundReads) {
  const std::string path = TempPath("slices");
  std::unique_ptr<FileDevice> base;
  ASSERT_TRUE(FileDevice::Open(path, /*reset=*/true, &base).ok());
  DeviceSlice a(base.get(), /*origin=*/0);
  DeviceSlice b(base.get(), /*origin=*/4096);

  ASSERT_TRUE(SyncIo::Write(&a, 0, "aaaa", 4).ok());
  ASSERT_TRUE(SyncIo::Write(&b, 0, "bbbb", 4).ok());
  EXPECT_EQ(a.Size(), 4u);
  EXPECT_EQ(b.Size(), 4u);
  EXPECT_EQ(a.SyncRoot(), base.get());
  EXPECT_EQ(a.SyncRoot(), b.SyncRoot());

  // Reads are bounded by the view's own watermark, not the base's.
  char buf[8];
  EXPECT_FALSE(SyncIo::Read(&a, 0, buf, 8).ok());
  ASSERT_TRUE(SyncIo::Read(&a, 0, buf, 4).ok());
  EXPECT_EQ(std::string(buf, 4), "aaaa");

  // The slice's bytes live at base origin + offset.
  ASSERT_TRUE(SyncIo::Fsync(base.get()).ok());
  ASSERT_TRUE(SyncIo::Read(base.get(), 4096, buf, 4).ok());
  EXPECT_EQ(std::string(buf, 4), "bbbb");

  // One SyncNow on either slice syncs the shared root.
  GroupCommitScheduler sched;
  ASSERT_TRUE(sched.SyncNow(&a).ok());
  EXPECT_EQ(sched.fsyncs_issued(), 1u);

  // Truncate resets only the view's watermark.
  b.Truncate(0);
  EXPECT_EQ(b.Size(), 0u);
  EXPECT_EQ(a.Size(), 4u);
  base.reset();
  remove(path.c_str());
}

}  // namespace
}  // namespace dpr
