// The DPR finder RPC service: a RemoteDprFinder stub must behave exactly
// like the in-process finder it proxies (used by multi-process shards).
#include "dpr/finder_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <utility>

#include "net/inmemory_net.h"
#include "net/tcp_net.h"

namespace dpr {
namespace {

class FinderServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metadata_ =
        std::make_unique<MetadataStore>(std::make_unique<MemoryDevice>());
    ASSERT_TRUE(metadata_->Recover().ok());
    local_ = MakeDprFinder(
        {.kind = FinderKind::kApprox, .metadata = metadata_.get()});
    server_ = std::make_unique<DprFinderServer>(local_.get(),
                                                net_.CreateServer("finder"));
    ASSERT_TRUE(server_->Start().ok());
    remote_ = std::make_unique<RemoteDprFinder>(net_.Connect("finder"));
  }

  InMemoryNetwork net_;
  std::unique_ptr<MetadataStore> metadata_;
  std::unique_ptr<DprFinder> local_;
  std::unique_ptr<DprFinderServer> server_;
  std::unique_ptr<RemoteDprFinder> remote_;
};

TEST_F(FinderServiceTest, AddReportComputeGetCut) {
  ASSERT_TRUE(remote_->AddWorker(0, 0).ok());
  ASSERT_TRUE(remote_->AddWorker(1, 0).ok());
  ASSERT_TRUE(remote_
                  ->ReportPersistedVersion(kInitialWorldLine,
                                           WorkerVersion{0, 2}, {{1, 1}})
                  .ok());
  ASSERT_TRUE(remote_
                  ->ReportPersistedVersion(kInitialWorldLine,
                                           WorkerVersion{1, 2}, {})
                  .ok());
  ASSERT_TRUE(remote_->ComputeCut().ok());
  WorldLine wl = 0;
  DprCut cut;
  remote_->GetCut(&wl, &cut);
  EXPECT_EQ(wl, kInitialWorldLine);
  EXPECT_EQ(CutVersion(cut, 0), 2u);
  EXPECT_EQ(CutVersion(cut, 1), 2u);
  // The remote stub and the local finder agree.
  DprCut local_cut;
  local_->GetCut(nullptr, &local_cut);
  EXPECT_EQ(cut, local_cut);
}

TEST_F(FinderServiceTest, AggregatesAndWorldLine) {
  ASSERT_TRUE(remote_->AddWorker(0, 0).ok());
  ASSERT_TRUE(remote_
                  ->ReportPersistedVersion(kInitialWorldLine,
                                           WorkerVersion{0, 9}, {})
                  .ok());
  EXPECT_EQ(remote_->MaxPersistedVersion(), 9u);
  EXPECT_EQ(remote_->CurrentWorldLine(), kInitialWorldLine);
}

TEST_F(FinderServiceTest, StaleReportStatusPropagates) {
  ASSERT_TRUE(remote_->AddWorker(0, 0).ok());
  Status s = remote_->ReportPersistedVersion(kInitialWorldLine + 5,
                                             WorkerVersion{0, 1}, {});
  EXPECT_TRUE(s.IsAborted());
}

TEST_F(FinderServiceTest, RecoverySequenceOverRpc) {
  ASSERT_TRUE(remote_->AddWorker(0, 0).ok());
  ASSERT_TRUE(remote_
                  ->ReportPersistedVersion(kInitialWorldLine,
                                           WorkerVersion{0, 3}, {})
                  .ok());
  ASSERT_TRUE(remote_->ComputeCut().ok());
  WorldLine new_wl = 0;
  DprCut recovery;
  ASSERT_TRUE(remote_->BeginRecovery(&new_wl, &recovery).ok());
  EXPECT_EQ(new_wl, kInitialWorldLine + 1);
  EXPECT_EQ(CutVersion(recovery, 0), 3u);
  ASSERT_TRUE(remote_->EndRecovery().ok());
  EXPECT_EQ(remote_->CurrentWorldLine(), new_wl);
}

TEST_F(FinderServiceTest, RemoveWorker) {
  ASSERT_TRUE(remote_->AddWorker(0, 0).ok());
  ASSERT_TRUE(remote_->AddWorker(1, 0).ok());
  ASSERT_TRUE(remote_->RemoveWorker(1).ok());
  EXPECT_EQ(metadata_->GetPersistedVersions().size(), 1u);
}

// Wraps a real connection and fails the next N calls with a transport
// error before they reach the wire — the retry loop in SendBatch must ride
// through without dropping a report.
class FlakyConnection : public RpcConnection {
 public:
  explicit FlakyConnection(std::unique_ptr<RpcConnection> inner)
      : inner_(std::move(inner)) {}

  void FailNext(int n) { fail_remaining_.store(n); }
  int failures_injected() const { return failures_injected_.load(); }

  void CallAsync(std::string request, ResponseCallback callback) override {
    int remaining = fail_remaining_.load();
    while (remaining > 0 &&
           !fail_remaining_.compare_exchange_weak(remaining, remaining - 1)) {
    }
    if (remaining > 0) {
      failures_injected_.fetch_add(1);
      callback(Status::Unavailable("injected transport failure"), Slice());
      return;
    }
    inner_->CallAsync(std::move(request), std::move(callback));
  }

 private:
  std::unique_ptr<RpcConnection> inner_;
  std::atomic<int> fail_remaining_{0};
  std::atomic<int> failures_injected_{0};
};

TEST_F(FinderServiceTest, BatchedReportsSurviveTransportFailure) {
  auto owned = std::make_unique<FlakyConnection>(net_.Connect("finder"));
  FlakyConnection* flaky = owned.get();
  RemoteDprFinderOptions options;
  options.flush_interval_us = 10 * 1000 * 1000;  // manual Flush only
  options.retry_backoff_us = 50;
  options.max_send_attempts = 8;
  RemoteDprFinder remote(std::move(owned), options);
  ASSERT_TRUE(remote.AddWorker(0, 0).ok());
  ASSERT_TRUE(remote.AddWorker(1, 0).ok());
  for (Version v = 1; v <= 6; ++v) {
    ASSERT_TRUE(remote
                    .ReportPersistedVersion(kInitialWorldLine,
                                            WorkerVersion{0, v}, {})
                    .ok());
    ASSERT_TRUE(remote
                    .ReportPersistedVersion(kInitialWorldLine,
                                            WorkerVersion{1, v}, {})
                    .ok());
  }
  flaky->FailNext(3);
  ASSERT_TRUE(remote.Flush().ok());
  EXPECT_EQ(flaky->failures_injected(), 3);

  const RemoteFinderStats stats = remote.stats();
  EXPECT_GE(stats.send_retries, 3u);
  EXPECT_EQ(stats.reports_enqueued, 12u);
  EXPECT_EQ(stats.reports_sent, 12u);
  EXPECT_EQ(stats.reports_rejected, 0u);
  EXPECT_EQ(stats.pending_depth, 0u);
  // The 12 reports coalesced rather than going one RPC each.
  EXPECT_GT(stats.ReportsPerBatch(), 1.0);

  // Every WorkerVersion arrived: the finder's cut reaches v=6 on both rows.
  ASSERT_TRUE(local_->ComputeCut().ok());
  DprCut cut;
  local_->GetCut(nullptr, &cut);
  EXPECT_EQ(CutVersion(cut, 0), 6u);
  EXPECT_EQ(CutVersion(cut, 1), 6u);
}

TEST_F(FinderServiceTest, ExhaustedRetriesRequeueWithoutLoss) {
  auto owned = std::make_unique<FlakyConnection>(net_.Connect("finder"));
  FlakyConnection* flaky = owned.get();
  RemoteDprFinderOptions options;
  options.flush_interval_us = 10 * 1000 * 1000;
  options.retry_backoff_us = 50;
  options.max_send_attempts = 2;
  RemoteDprFinder remote(std::move(owned), options);
  ASSERT_TRUE(remote.AddWorker(0, 0).ok());
  for (Version v = 1; v <= 5; ++v) {
    ASSERT_TRUE(remote
                    .ReportPersistedVersion(kInitialWorldLine,
                                            WorkerVersion{0, v}, {})
                    .ok());
  }
  // More consecutive failures than one flush's attempt budget: the flush
  // reports Unavailable but re-queues everything instead of dropping it.
  flaky->FailNext(4);
  Status s = remote.Flush();
  EXPECT_TRUE(s.IsTransient()) << s.ToString();
  EXPECT_EQ(remote.stats().pending_depth, 5u);
  s = remote.Flush();
  EXPECT_TRUE(s.IsTransient()) << s.ToString();
  // Transport healed: the next flush delivers the full backlog.
  ASSERT_TRUE(remote.Flush().ok());
  EXPECT_EQ(remote.stats().pending_depth, 0u);
  EXPECT_EQ(remote.stats().reports_sent, 5u);
  ASSERT_TRUE(local_->ComputeCut().ok());
  DprCut cut;
  local_->GetCut(nullptr, &cut);
  EXPECT_EQ(CutVersion(cut, 0), 5u);
}

TEST_F(FinderServiceTest, SnapshotInvalidatedWhenRetriedFlushLands) {
  auto owned = std::make_unique<FlakyConnection>(net_.Connect("finder"));
  FlakyConnection* flaky = owned.get();
  RemoteDprFinderOptions options;
  options.flush_interval_us = 10 * 1000 * 1000;  // manual Flush only
  options.snapshot_ttl_us = 10 * 1000 * 1000;    // cache never expires
  options.retry_backoff_us = 50;
  options.max_send_attempts = 8;
  RemoteDprFinder remote(std::move(owned), options);
  ASSERT_TRUE(remote.AddWorker(0, 0).ok());
  ASSERT_TRUE(remote
                  .ReportPersistedVersion(kInitialWorldLine,
                                          WorkerVersion{0, 1}, {})
                  .ok());
  ASSERT_TRUE(remote.Flush().ok());
  ASSERT_TRUE(local_->ComputeCut().ok());
  // Warm the snapshot: within the TTL, SafeVersion serves v=1 from cache.
  EXPECT_EQ(remote.SafeVersion(0), 1u);

  // Report v=2; the flush rides out injected transport failures and lands.
  ASSERT_TRUE(remote
                  .ReportPersistedVersion(kInitialWorldLine,
                                          WorkerVersion{0, 2}, {})
                  .ok());
  flaky->FailNext(3);
  ASSERT_TRUE(remote.Flush().ok());
  EXPECT_EQ(flaky->failures_injected(), 3);
  ASSERT_TRUE(local_->ComputeCut().ok());
  // The retried-but-successful send must invalidate the cached snapshot
  // even though its TTL has not expired: a client must never read its own
  // report as not-yet-persisted (stale read after own report).
  EXPECT_EQ(remote.SafeVersion(0), 2u);
}

TEST(FinderServiceTcpTest, WorksOverRealSockets) {
  MetadataStore metadata(std::make_unique<MemoryDevice>());
  ASSERT_TRUE(metadata.Recover().ok());
  auto local =
      MakeDprFinder({.kind = FinderKind::kApprox, .metadata = &metadata});
  DprFinderServer server(local.get(), MakeTcpServer(0));
  ASSERT_TRUE(server.Start().ok());
  std::unique_ptr<RpcConnection> conn;
  ASSERT_TRUE(ConnectTcp(server.address(), &conn).ok());
  RemoteDprFinder remote(std::move(conn));
  ASSERT_TRUE(remote.AddWorker(0, 0).ok());
  ASSERT_TRUE(remote
                  .ReportPersistedVersion(kInitialWorldLine,
                                          WorkerVersion{0, 1}, {})
                  .ok());
  ASSERT_TRUE(remote.ComputeCut().ok());
  EXPECT_EQ(remote.SafeVersion(0), 1u);
}

}  // namespace
}  // namespace dpr
