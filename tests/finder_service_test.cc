// The DPR finder RPC service: a RemoteDprFinder stub must behave exactly
// like the in-process finder it proxies (used by multi-process shards).
#include "dpr/finder_service.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/inmemory_net.h"
#include "net/tcp_net.h"

namespace dpr {
namespace {

class FinderServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metadata_ =
        std::make_unique<MetadataStore>(std::make_unique<MemoryDevice>());
    ASSERT_TRUE(metadata_->Recover().ok());
    local_ = std::make_unique<SimpleDprFinder>(metadata_.get());
    server_ = std::make_unique<DprFinderServer>(local_.get(),
                                                net_.CreateServer("finder"));
    ASSERT_TRUE(server_->Start().ok());
    remote_ = std::make_unique<RemoteDprFinder>(net_.Connect("finder"));
  }

  InMemoryNetwork net_;
  std::unique_ptr<MetadataStore> metadata_;
  std::unique_ptr<SimpleDprFinder> local_;
  std::unique_ptr<DprFinderServer> server_;
  std::unique_ptr<RemoteDprFinder> remote_;
};

TEST_F(FinderServiceTest, AddReportComputeGetCut) {
  ASSERT_TRUE(remote_->AddWorker(0, 0).ok());
  ASSERT_TRUE(remote_->AddWorker(1, 0).ok());
  ASSERT_TRUE(remote_
                  ->ReportPersistedVersion(kInitialWorldLine,
                                           WorkerVersion{0, 2}, {{1, 1}})
                  .ok());
  ASSERT_TRUE(remote_
                  ->ReportPersistedVersion(kInitialWorldLine,
                                           WorkerVersion{1, 2}, {})
                  .ok());
  ASSERT_TRUE(remote_->ComputeCut().ok());
  WorldLine wl = 0;
  DprCut cut;
  remote_->GetCut(&wl, &cut);
  EXPECT_EQ(wl, kInitialWorldLine);
  EXPECT_EQ(CutVersion(cut, 0), 2u);
  EXPECT_EQ(CutVersion(cut, 1), 2u);
  // The remote stub and the local finder agree.
  DprCut local_cut;
  local_->GetCut(nullptr, &local_cut);
  EXPECT_EQ(cut, local_cut);
}

TEST_F(FinderServiceTest, AggregatesAndWorldLine) {
  ASSERT_TRUE(remote_->AddWorker(0, 0).ok());
  ASSERT_TRUE(remote_
                  ->ReportPersistedVersion(kInitialWorldLine,
                                           WorkerVersion{0, 9}, {})
                  .ok());
  EXPECT_EQ(remote_->MaxPersistedVersion(), 9u);
  EXPECT_EQ(remote_->CurrentWorldLine(), kInitialWorldLine);
}

TEST_F(FinderServiceTest, StaleReportStatusPropagates) {
  ASSERT_TRUE(remote_->AddWorker(0, 0).ok());
  Status s = remote_->ReportPersistedVersion(kInitialWorldLine + 5,
                                             WorkerVersion{0, 1}, {});
  EXPECT_TRUE(s.IsAborted());
}

TEST_F(FinderServiceTest, RecoverySequenceOverRpc) {
  ASSERT_TRUE(remote_->AddWorker(0, 0).ok());
  ASSERT_TRUE(remote_
                  ->ReportPersistedVersion(kInitialWorldLine,
                                           WorkerVersion{0, 3}, {})
                  .ok());
  ASSERT_TRUE(remote_->ComputeCut().ok());
  WorldLine new_wl = 0;
  DprCut recovery;
  ASSERT_TRUE(remote_->BeginRecovery(&new_wl, &recovery).ok());
  EXPECT_EQ(new_wl, kInitialWorldLine + 1);
  EXPECT_EQ(CutVersion(recovery, 0), 3u);
  ASSERT_TRUE(remote_->EndRecovery().ok());
  EXPECT_EQ(remote_->CurrentWorldLine(), new_wl);
}

TEST_F(FinderServiceTest, RemoveWorker) {
  ASSERT_TRUE(remote_->AddWorker(0, 0).ok());
  ASSERT_TRUE(remote_->AddWorker(1, 0).ok());
  ASSERT_TRUE(remote_->RemoveWorker(1).ok());
  EXPECT_EQ(metadata_->GetPersistedVersions().size(), 1u);
}

TEST(FinderServiceTcpTest, WorksOverRealSockets) {
  MetadataStore metadata(std::make_unique<MemoryDevice>());
  ASSERT_TRUE(metadata.Recover().ok());
  SimpleDprFinder local(&metadata);
  DprFinderServer server(&local, MakeTcpServer(0));
  ASSERT_TRUE(server.Start().ok());
  std::unique_ptr<RpcConnection> conn;
  ASSERT_TRUE(ConnectTcp(server.address(), &conn).ok());
  RemoteDprFinder remote(std::move(conn));
  ASSERT_TRUE(remote.AddWorker(0, 0).ok());
  ASSERT_TRUE(remote
                  .ReportPersistedVersion(kInitialWorldLine,
                                          WorkerVersion{0, 1}, {})
                  .ok());
  ASSERT_TRUE(remote.ComputeCut().ok());
  EXPECT_EQ(remote.SafeVersion(0), 1u);
}

}  // namespace
}  // namespace dpr
