// Lock-rank checker tests: the happy path (strictly decreasing acquisition
// is accepted) and the death tests proving an inversion — the seed of a
// potential deadlock cycle — aborts deterministically with a diagnostic
// naming both locks. See LockRank in common/sync.h and DESIGN.md §4f.
#include <gtest/gtest.h>

#include <thread>

#include "common/latch.h"
#include "common/sync.h"

namespace dpr {
namespace {

TEST(LockRankTest, StrictlyDecreasingOrderIsAccepted) {
  Mutex cluster(LockRank::kClusterRecovery, "t.cluster");
  Mutex worker(LockRank::kWorkerVersionLatch, "t.worker");
  Mutex finder(LockRank::kFinderCompute, "t.finder");
  Mutex storage(LockRank::kStorage, "t.storage");
  MutexLock a(cluster);
  MutexLock b(worker);
  MutexLock c(finder);
  MutexLock d(storage);
  EXPECT_EQ(lockrank::HeldCount(), 4);
}

TEST(LockRankTest, UnrankedLocksAreExemptInBothDirections) {
  Mutex low(LockRank::kObs, "t.low");
  Mutex unranked;
  MutexLock a(low);
  // kNone after a ranked lock: fine, the checker skips it entirely...
  MutexLock b(unranked);
  // ...and it doesn't poison the held set either: the next ranked acquire
  // is still checked only against `low`.
  Mutex lower(LockRank::kNone, "t.none");
  MutexLock c(lower);
  EXPECT_EQ(lockrank::HeldCount(), 1);
}

TEST(LockRankTest, HandOverHandReleaseKeepsStateExact) {
  Mutex outer(LockRank::kServer, "t.outer");
  Mutex mid(LockRank::kSession, "t.mid");
  outer.Lock();
  mid.Lock();
  // Non-LIFO release (hand-over-hand): dropping the outer lock first must
  // leave only `mid` held, so a subsequent acquire checks against kSession.
  outer.Unlock();
  EXPECT_EQ(lockrank::HeldCount(), 1);
  EXPECT_EQ(lockrank::MinHeldRank(), static_cast<int>(LockRank::kSession));
  Mutex leaf(LockRank::kObs, "t.leaf");
  MutexLock g(leaf);
  EXPECT_EQ(lockrank::HeldCount(), 2);
  mid.Unlock();
}

TEST(LockRankTest, StacksDisabledByDefault) {
  // DPR_LOCKRANK_STACKS is not set in the test environment; capture is the
  // opt-in slow path and must stay off unless explicitly requested.
  EXPECT_FALSE(lockrank::StacksEnabled());
}

TEST(LockRankDeathTest, AscendingAcquireAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex storage(LockRank::kStorage, "t.storage");
  Mutex metadata(LockRank::kMetadata, "t.metadata");
  EXPECT_DEATH(
      {
        MutexLock a(storage);
        MutexLock b(metadata);  // rank 70 over rank 50: inversion
      },
      "lock rank inversion.*t\\.metadata.*t\\.storage");
}

TEST(LockRankDeathTest, EqualRankNestingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two locks that nest must carry distinct ranks, else an AB/BA cycle
  // between them would be unprovable — equal rank aborts just like ascent.
  Mutex a(LockRank::kSession, "t.a");
  Mutex b(LockRank::kSession, "t.b");
  EXPECT_DEATH(
      {
        MutexLock ga(a);
        MutexLock gb(b);
      },
      "lock rank inversion.*t\\.b.*t\\.a");
}

TEST(LockRankDeathTest, TryLockInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A successful try-lock that would invert ranks is still an ordering bug;
  // the non-blocking acquire path checks too.
  Mutex storage(LockRank::kStorage, "t.storage");
  Mutex server(LockRank::kServer, "t.server");
  EXPECT_DEATH(
      {
        MutexLock a(storage);
        if (server.TryLock()) server.Unlock();
      },
      "lock rank inversion.*t\\.server.*t\\.storage");
}

TEST(LockRankDeathTest, SharedAcquireFollowsSameDiscipline) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A reader participates in deadlock cycles exactly like a writer does.
  Mutex storage(LockRank::kStorage, "t.storage");
  SharedMutex gate(LockRank::kFinderIngestGate, "t.gate");
  EXPECT_DEATH(
      {
        MutexLock a(storage);
        ReaderMutexLock g(gate);
      },
      "lock rank inversion.*t\\.gate.*t\\.storage");
}

TEST(LockRankDeathTest, RankedSpinLatchParticipates) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex obs(LockRank::kObs, "t.obs");
  SpinLatch shard(LockRank::kDepTracker, "t.shard");
  EXPECT_DEATH(
      {
        MutexLock a(obs);
        SpinLatchGuard g(shard);
      },
      "lock rank inversion.*t\\.shard.*t\\.obs");
}

}  // namespace
}  // namespace dpr
