// Two-phase log compaction: GC strictly inside the DPR guarantee (the paper
// notes D-FASTER only garbage-collects log entries covered by the cut).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>

#include "common/random.h"
#include "faster/faster_store.h"

namespace dpr {
namespace {

std::unique_ptr<FasterStore> NewStore() {
  FasterOptions options;
  options.index_buckets = 512;
  options.page_bits = 14;  // 16 KiB pages so compaction spans several
  options.log_device = std::make_unique<MemoryDevice>();
  options.meta_device = std::make_unique<MemoryDevice>();
  return std::make_unique<FasterStore>(std::move(options));
}

Version Checkpoint(FasterStore* store) {
  Version token;
  EXPECT_TRUE(
      store->PerformCheckpoint(store->CurrentVersion() + 1, nullptr, &token)
          .ok());
  store->WaitForCheckpoints();
  return token;
}

TEST(CompactionTest, PreservesLiveDataAndReclaimsLog) {
  auto store = NewStore();
  auto session = store->NewSession();
  // Heavy overwrite churn: lots of garbage below the checkpoint.
  for (int round = 0; round < 20; ++round) {
    for (uint64_t k = 0; k < 200; ++k) {
      ASSERT_TRUE(session->Upsert(k, k + round).ok());
    }
    if (round % 5 == 4) Checkpoint(store.get());
  }
  const Version safe = Checkpoint(store.get());
  const LogAddress begin_before = store->begin_address();

  Version compaction_token;
  ASSERT_TRUE(store->StartCompaction(safe, &compaction_token).ok());
  // Premature finish is refused: the copies are not yet in the cut.
  EXPECT_TRUE(
      store->FinishCompaction(compaction_token, compaction_token - 1)
          .IsBusy());
  ASSERT_TRUE(
      store->FinishCompaction(compaction_token, compaction_token).ok());
  EXPECT_GT(store->begin_address(), begin_before);

  // All live data survives, served from above the new begin address.
  for (uint64_t k = 0; k < 200; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(session->Read(k, &v).ok()) << "key " << k;
    ASSERT_EQ(v, k + 19);
  }
}

TEST(CompactionTest, SurvivesCrashAfterCompaction) {
  auto store = NewStore();
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(session->Upsert(k, k + 1).ok());
  }
  const Version safe = Checkpoint(store.get());
  Version compaction_token;
  ASSERT_TRUE(store->StartCompaction(safe, &compaction_token).ok());
  ASSERT_TRUE(
      store->FinishCompaction(compaction_token, compaction_token).ok());
  // More writes + one more durable checkpoint on the compacted log.
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(session->Upsert(k + 1000, k).ok());
  }
  Checkpoint(store.get());

  session.reset();
  store->SimulateCrash();
  Version restored;
  ASSERT_TRUE(store->RestoreCheckpoint(~0ULL, &restored).ok());
  auto fresh = store->NewSession();
  for (uint64_t k = 0; k < 100; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(fresh->Read(k, &v).ok()) << "compacted key " << k;
    ASSERT_EQ(v, k + 1);
    ASSERT_TRUE(fresh->Read(k + 1000, &v).ok());
  }
}

TEST(CompactionTest, RollbackAfterStartKeepsOriginals) {
  // Copies are ordinary writes: when the compaction checkpoint is rolled
  // back before FinishCompaction, the originals (below the untouched begin)
  // still serve every key.
  auto store = NewStore();
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(session->Upsert(k, k + 5).ok());
  }
  const Version safe = Checkpoint(store.get());
  Version compaction_token;
  ASSERT_TRUE(store->StartCompaction(safe, &compaction_token).ok());
  // Disaster strikes: roll back to `safe` (the cut never covered the
  // compaction checkpoint). FinishCompaction must now be impossible.
  session.reset();
  Version restored;
  ASSERT_TRUE(store->RestoreCheckpoint(safe, &restored).ok());
  ASSERT_EQ(restored, safe);
  auto fresh = store->NewSession();
  for (uint64_t k = 0; k < 50; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(fresh->Read(k, &v).ok());
    ASSERT_EQ(v, k + 5);
  }
  EXPECT_EQ(store->begin_address(), LogAllocator::kBeginAddress);
}

TEST(CompactionTest, RejectsUnknownOrUndurableTokens) {
  auto store = NewStore();
  auto session = store->NewSession();
  ASSERT_TRUE(session->Upsert(1, uint64_t{1}).ok());
  Version compaction_token;
  EXPECT_TRUE(store->StartCompaction(99, &compaction_token).IsNotFound());
  EXPECT_TRUE(store->FinishCompaction(99, 100).IsNotFound());
}

TEST(CompactionTest, RepeatedCompactionUnderChurn) {
  auto store = NewStore();
  auto session = store->NewSession();
  Random rng(9);
  std::map<uint64_t, uint64_t> model;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 2000; ++i) {
      const uint64_t key = rng.Uniform(128);
      const uint64_t value = rng.Next();
      ASSERT_TRUE(session->Upsert(key, value).ok());
      model[key] = value;
    }
    const Version safe = Checkpoint(store.get());
    Version token;
    Status s = store->StartCompaction(safe, &token);
    if (s.ok()) {
      ASSERT_TRUE(store->FinishCompaction(token, token).ok());
    }
    for (const auto& [key, value] : model) {
      uint64_t v = 0;
      ASSERT_TRUE(session->Read(key, &v).ok());
      ASSERT_EQ(v, value);
    }
  }
}

}  // namespace
}  // namespace dpr

namespace dpr {
namespace {

TEST(CompactionTest, RollbackCancelsPendingCompaction) {
  auto store = NewStore();
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(session->Upsert(k, k).ok());
  }
  const Version safe = Checkpoint(store.get());
  Version token;
  ASSERT_TRUE(store->StartCompaction(safe, &token).ok());
  session.reset();
  Version restored;
  ASSERT_TRUE(store->RestoreCheckpoint(safe, &restored).ok());
  // The compaction checkpoint was rolled back: finishing it must fail even
  // with a large watermark, and the log begin must not move.
  EXPECT_TRUE(store->FinishCompaction(token, token + 100).IsNotFound());
  EXPECT_EQ(store->begin_address(), LogAllocator::kBeginAddress);
}

}  // namespace
}  // namespace dpr

#include "common/clock.h"
#include "harness/cluster.h"

namespace dpr {
namespace {

TEST(CompactionTest, WorkerAutoGcUnderChurnKeepsDataAndShrinksLog) {
  // End-to-end: a D-FASTER worker with watermark-driven GC compacts its log
  // during an overwrite-heavy workload without losing any data.
  ClusterOptions options;
  options.num_workers = 1;
  options.backend = StorageBackend::kLocal;
  options.checkpoint_interval_us = 10000;
  options.finder_interval_us = 5000;
  DFasterCluster cluster(options);
  // Patch in a compaction threshold by rebuilding the worker config is not
  // exposed; drive the store directly through the worker's DPR watermark
  // instead (the same logic GcLoop runs).
  ASSERT_TRUE(cluster.Start().ok());
  auto client = cluster.NewClient(16, 128);
  auto session = client->NewSession(1);
  for (int round = 0; round < 10; ++round) {
    for (uint64_t k = 0; k < 300; ++k) session->Upsert(k, k + round);
    ASSERT_TRUE(session->WaitForCommit(20000).ok());
  }
  FasterStore* store = cluster.worker(0)->store();
  const Version watermark = cluster.worker(0)->dpr_worker()->persisted_watermark();
  ASSERT_GT(watermark, 0u);
  // Largest durable token <= watermark is a valid safe point.
  Version safe = store->LargestDurableToken();
  if (safe > watermark) safe = watermark;
  Version token;
  Status s = store->StartCompaction(safe, &token);
  if (s.ok()) {
    // The compaction checkpoint commits via the normal DPR pipeline.
    Stopwatch timer;
    for (;;) {
      const Version wm = cluster.worker(0)->dpr_worker()->persisted_watermark();
      Status fin = store->FinishCompaction(token, wm);
      if (fin.ok()) break;
      ASSERT_TRUE(fin.IsBusy()) << fin.ToString();
      ASSERT_LT(timer.ElapsedMillis(), 20000u);
      SleepMicros(10000);
      cluster.worker(0)->dpr_worker()->RefreshPersistedWatermark();
    }
    EXPECT_GT(store->begin_address(), LogAllocator::kBeginAddress);
  }
  // Every key still readable with its final value.
  std::atomic<int> mismatches{0};
  for (uint64_t k = 0; k < 300; ++k) {
    session->Read(k, [&, k](KvResult r, uint64_t v) {
      if (r != KvResult::kOk || v != k + 9) mismatches.fetch_add(1);
    });
  }
  ASSERT_TRUE(session->WaitForAll().ok());
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace dpr
