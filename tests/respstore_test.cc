#include "respstore/resp_store.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

namespace dpr {
namespace {

RespCommand Set(const std::string& key, const std::string& value) {
  return RespCommand{RespOp::kSet, key, value};
}
RespCommand Get(const std::string& key) {
  return RespCommand{RespOp::kGet, key, ""};
}
RespCommand WithArg(RespOp op, uint64_t arg) {
  RespCommand cmd;
  cmd.op = op;
  cmd.value.assign(reinterpret_cast<const char*>(&arg), 8);
  return cmd;
}

std::unique_ptr<RespStore> NewStore(bool aof = false) {
  RespStoreOptions options;
  options.aof_enabled = aof;
  return std::make_unique<RespStore>(std::move(options));
}

TEST(RespStoreTest, SetGetDel) {
  auto store = NewStore();
  EXPECT_TRUE(store->Execute(Set("k", "v")).status.ok());
  RespReply reply = store->Execute(Get("k"));
  EXPECT_TRUE(reply.status.ok());
  EXPECT_EQ(reply.value, "v");
  EXPECT_TRUE(store->Execute({RespOp::kDel, "k", ""}).status.ok());
  EXPECT_TRUE(store->Execute(Get("k")).status.IsNotFound());
}

TEST(RespStoreTest, IncrCreatesAndAdds) {
  auto store = NewStore();
  uint64_t five = 5;
  RespCommand incr{RespOp::kIncr, "ctr",
                   std::string(reinterpret_cast<char*>(&five), 8)};
  RespReply r1 = store->Execute(incr);
  ASSERT_TRUE(r1.status.ok());
  uint64_t v;
  memcpy(&v, r1.value.data(), 8);
  EXPECT_EQ(v, 5u);
  RespReply r2 = store->Execute(incr);
  memcpy(&v, r2.value.data(), 8);
  EXPECT_EQ(v, 10u);
}

TEST(RespStoreTest, CommandBatchRoundTrip) {
  auto store = NewStore();
  std::string batch;
  Set("a", "1").EncodeTo(&batch);
  Set("b", "2").EncodeTo(&batch);
  Get("a").EncodeTo(&batch);
  Get("missing").EncodeTo(&batch);
  std::string replies;
  ASSERT_TRUE(store->ExecuteBatch(batch, &replies).ok());
  RespReply reply;
  size_t pos = 0;
  size_t consumed;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(reply.DecodeFrom(
        Slice(replies.data() + pos, replies.size() - pos), &consumed));
    pos += consumed;
    if (i == 2) {
      EXPECT_EQ(reply.value, "1");
    }
    if (i == 3) {
      EXPECT_TRUE(reply.status.IsNotFound());
    }
  }
  EXPECT_EQ(pos, replies.size());
}

TEST(RespStoreTest, MalformedBatchRejected) {
  auto store = NewStore();
  std::string replies;
  EXPECT_EQ(store->ExecuteBatch("garbage", &replies).code(),
            Status::Code::kCorruption);
}

TEST(RespStoreTest, BgSaveLastSaveRestore) {
  auto store = NewStore();
  store->Execute(Set("k", "v1"));
  EXPECT_EQ(store->LastSave(), 0u);
  store->Execute(WithArg(RespOp::kBgSave, 1));
  store->WaitForSave();
  EXPECT_EQ(store->LastSave(), 1u);
  store->Execute(Set("k", "v2"));  // not captured by snapshot 1
  store->Execute(WithArg(RespOp::kBgSave, 2));
  store->WaitForSave();
  EXPECT_EQ(store->LastSave(), 2u);
  // Restore to <= 1: snapshot 1 reloads, later snapshots durably discarded.
  RespReply reply = store->Execute(WithArg(RespOp::kRestore, 1));
  ASSERT_TRUE(reply.status.ok());
  EXPECT_EQ(store->Execute(Get("k")).value, "v1");
  EXPECT_EQ(store->LastSave(), 1u);
}

TEST(RespStoreTest, RestoreRoundsDownToLargestToken) {
  auto store = NewStore();
  store->Execute(Set("k", "v1"));
  store->Execute(WithArg(RespOp::kBgSave, 3));
  store->WaitForSave();
  store->Execute(Set("k", "v2"));
  RespReply reply = store->Execute(WithArg(RespOp::kRestore, 7));
  ASSERT_TRUE(reply.status.ok());
  uint64_t restored;
  memcpy(&restored, reply.value.data(), 8);
  EXPECT_EQ(restored, 3u);
  EXPECT_EQ(store->Execute(Get("k")).value, "v1");
}

TEST(RespStoreTest, RestoreToZeroEmpties) {
  auto store = NewStore();
  store->Execute(Set("k", "v"));
  ASSERT_TRUE(store->Execute(WithArg(RespOp::kRestore, 0)).status.ok());
  EXPECT_TRUE(store->Execute(Get("k")).status.IsNotFound());
  EXPECT_EQ(store->size(), 0u);
}

TEST(RespStoreTest, CrashKeepsOnlyDurableSnapshots) {
  auto store = NewStore();
  store->Execute(Set("k", "durable"));
  store->Execute(WithArg(RespOp::kBgSave, 1));
  store->WaitForSave();
  store->Execute(Set("k", "volatile"));
  store->SimulateCrash();
  EXPECT_EQ(store->size(), 0u);  // memory gone
  EXPECT_EQ(store->LastSave(), 1u);
  ASSERT_TRUE(store->Execute(WithArg(RespOp::kRestore, 1)).status.ok());
  EXPECT_EQ(store->Execute(Get("k")).value, "durable");
}

TEST(RespStoreTest, RollbackSurvivesCrash) {
  // LASTSAVE must never report a rolled-back token, even after a crash.
  auto store = NewStore();
  store->Execute(Set("k", "v1"));
  store->Execute(WithArg(RespOp::kBgSave, 1));
  store->WaitForSave();
  store->Execute(Set("k", "v2"));
  store->Execute(WithArg(RespOp::kBgSave, 2));
  store->WaitForSave();
  ASSERT_TRUE(store->Execute(WithArg(RespOp::kRestore, 1)).status.ok());
  store->SimulateCrash();
  EXPECT_EQ(store->LastSave(), 1u);
}

TEST(RespStoreTest, AofSyncsEveryWrite) {
  auto store = NewStore(/*aof=*/true);
  EXPECT_TRUE(store->Execute(Set("k", "v")).status.ok());
  // With appendfsync=always each write flushed; just verify no error and
  // read-back works.
  EXPECT_EQ(store->Execute(Get("k")).value, "v");
}

TEST(RespStoreTest, CommandCodecRoundTrip) {
  RespCommand cmd{RespOp::kSet, "key-bytes", std::string("\x00\x01\x02", 3)};
  std::string encoded;
  cmd.EncodeTo(&encoded);
  RespCommand decoded;
  size_t consumed = 0;
  ASSERT_TRUE(decoded.DecodeFrom(encoded, &consumed));
  EXPECT_EQ(consumed, encoded.size());
  EXPECT_EQ(decoded.op, RespOp::kSet);
  EXPECT_EQ(decoded.key, "key-bytes");
  EXPECT_EQ(decoded.value, cmd.value);
}

}  // namespace
}  // namespace dpr
