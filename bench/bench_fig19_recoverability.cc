// Figure 19: throughput impact of recoverability guarantees — {none,
// eventual, DPR, synchronous} across three systems: a Cassandra-like
// commit-log store, D-Redis, and D-FASTER. N/A combinations mirror the
// paper (Cassandra supports only eventual/sync; D-FASTER has no sync mode).
//
// Expected shape: within every system, DPR ~= eventual >> synchronous;
// "none" is the ceiling. Absolute numbers differ per system by design.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "baseline/commitlog_store.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/clock.h"
#include "harness/stats.h"

namespace dpr {
namespace {

// ---------------------------------------------------- Cassandra-like driver

double RunCommitLogStore(CommitLogSync sync, const BenchConfig& config) {
  // One store per "shard", clients call in directly (the recoverability
  // knob, not the network, is under test).
  std::vector<std::unique_ptr<CommitLogStore>> shards;
  for (int i = 0; i < 2; ++i) {
    CommitLogStoreOptions options;
    options.sync = sync;
    shards.push_back(std::make_unique<CommitLogStore>(std::move(options)));
  }
  std::atomic<bool> stop{false};
  std::vector<std::atomic<uint64_t>> completed(config.client_threads);
  std::vector<std::thread> threads;
  const Stopwatch timer;
  for (uint32_t t = 0; t < config.client_threads; ++t) {
    threads.emplace_back([&, t] {
      YcsbOptions wl;
      wl.num_keys = config.num_keys;
      wl.seed = 7 + t;
      YcsbWorkload workload(wl);
      std::string value;
      while (!stop.load(std::memory_order_relaxed)) {
        const YcsbOp op = workload.Next();
        char key[8];
        memcpy(key, &op.key, 8);
        CommitLogStore* shard =
            shards[YcsbWorkload::ShardOf(op.key, 2)].get();
        if (op.type == YcsbOp::Type::kRead) {
          (void)shard->Get(Slice(key, 8), &value);
        } else {
          char val[8];
          memcpy(val, &op.value, 8);
          (void)shard->Put(Slice(key, 8), Slice(val, 8));
        }
        completed[t].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  SleepMicros(config.duration_ms * 1000);
  stop.store(true);
  for (auto& t : threads) t.join();
  uint64_t total = 0;
  for (auto& c : completed) total += c.load();
  return total / timer.ElapsedSeconds() / 1e6;
}

// ------------------------------------------------------------ D-Redis modes

double RunDRedisMode(const std::string& mode, const BenchConfig& config) {
  RedisClusterOptions options;
  options.num_shards = 2;
  options.checkpoint_interval_us = 100000;
  if (mode == "dpr") {
    options.deployment = RedisDeployment::kDpr;
  } else {
    // Non-DPR modes run behind the pass-through proxy so that only the
    // recoverability level differs from the D-Redis configuration.
    options.deployment = RedisDeployment::kPassThrough;
    options.aof_sync = (mode == "sync");
  }
  DRedisCluster cluster(options);
  Status s = cluster.Start();
  DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());

  // "eventual": periodic background BGSAVE on the unmodified stores,
  // mirroring Redis's default RDB persistence.
  std::atomic<bool> stop_saver{false};
  std::thread saver;
  if (mode == "eventual") {
    saver = std::thread([&] {
      uint64_t token = 1;
      while (!stop_saver.load(std::memory_order_relaxed)) {
        SleepMicros(100000);
        for (int i = 0; i < 2; ++i) {
          RespCommand cmd;
          cmd.op = RespOp::kBgSave;
          cmd.value.assign(reinterpret_cast<const char*>(&token), 8);
          cluster.store(i)->Execute(cmd);
        }
        ++token;
      }
    });
  }

  DriverOptions driver;
  driver.num_client_threads = config.client_threads;
  driver.duration_ms = config.duration_ms;
  driver.workload.num_keys = config.num_keys;
  driver.batch_size = 64;
  driver.window = 1024;
  const RedisDriverResult result = RunRedisDriver(&cluster, driver);
  stop_saver.store(true);
  if (saver.joinable()) saver.join();
  return result.Mops();
}

// ----------------------------------------------------------- D-FASTER modes

double RunDFasterMode(RecoverabilityMode mode, const BenchConfig& config) {
  ClusterOptions options;
  options.num_workers = 2;
  options.mode = mode;
  options.backend = StorageBackend::kLocal;
  options.checkpoint_interval_us = 100000;
  DFasterCluster cluster(options);
  Status s = cluster.Start();
  DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  DriverOptions driver;
  driver.num_client_threads = config.client_threads;
  driver.duration_ms = config.duration_ms;
  driver.workload.num_keys = config.num_keys;
  driver.track_commits = mode == RecoverabilityMode::kDpr;
  const DriverResult result = RunYcsbDriver(&cluster, driver);
  return result.Mops();
}

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig19_recoverability");
  json.RecordConfig(config);
  printf("\n=== Figure 19: throughput vs recoverability guarantee ===\n");
  ResultTable table({"system", "none", "eventual", "dpr", "sync"});

  // Guarantee levels index the x axis: none=0, eventual=1, dpr=2, sync=3.
  const auto point = [&json](const std::string& system, double x,
                             const char* mode, double mops) {
    if (json.enabled()) json.artifact().AddPoint(system, x, mops, mode);
    return ResultTable::Fmt(mops);
  };

  table.AddRow({"cassandra-like", "n/a",
                point("cassandra-like", 1, "eventual",
                      RunCommitLogStore(CommitLogSync::kPeriodic, config)),
                "n/a",
                point("cassandra-like", 3, "sync",
                      RunCommitLogStore(CommitLogSync::kGroup, config))});

  table.AddRow(
      {"d-redis",
       point("d-redis", 0, "none", RunDRedisMode("none", config)),
       point("d-redis", 1, "eventual", RunDRedisMode("eventual", config)),
       point("d-redis", 2, "dpr", RunDRedisMode("dpr", config)),
       point("d-redis", 3, "sync", RunDRedisMode("sync", config))});

  table.AddRow(
      {"d-faster",
       point("d-faster", 0, "none",
             RunDFasterMode(RecoverabilityMode::kNone, config)),
       point("d-faster", 1, "eventual",
             RunDFasterMode(RecoverabilityMode::kEventual, config)),
       point("d-faster", 2, "dpr",
             RunDFasterMode(RecoverabilityMode::kDpr, config)),
       "n/a"});
  table.Print();
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig19_recoverability (quick=%d)\n",
         flags.GetBool("quick", true));
  dpr::Run(flags);
  return 0;
}
