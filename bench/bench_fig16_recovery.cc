// Figure 16: impact of recovery on throughput — a timeline of completed,
// committed, and aborted operations per second with a failure injected at
// 1/3 of the run and a nested double failure at 2/3.
//
// Expected shape: commit progress stalls briefly (~100s of ms) around each
// failure while operation throughput only dips; some operations abort in
// the rollback; the nested failure behaves as two failure-recovery
// sequences without extra recovery time.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"

namespace dpr {
namespace {

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig16_recovery");
  json.RecordConfig(config);
  const uint64_t total_ms = config.quick ? 9000 : 45000;
  ClusterOptions options;
  options.num_workers = 2;
  options.backend = StorageBackend::kLocal;
  options.checkpoint_interval_us = 100000;
  DFasterCluster cluster(options);
  Status s = cluster.Start();
  DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());

  DriverOptions driver;
  driver.num_client_threads = config.client_threads;
  driver.duration_ms = total_ms;
  driver.workload.num_keys = config.num_keys;
  driver.workload.zipf_theta = 0.99;

  const double t1 = total_ms / 3000.0;        // single failure
  const double t2 = 2 * total_ms / 3000.0;    // double (nested) failure
  std::vector<std::pair<double, std::function<void()>>> events = {
      {t1, [&] { (void)cluster.InjectFailure({0}); }},
      {t2, [&] { (void)cluster.InjectFailure({1}); }},
      {t2 + 0.2, [&] { (void)cluster.InjectFailure({0}); }},
  };
  printf("\n=== Figure 16: recovery timeline (failures at %.1fs, %.1fs, "
         "%.1fs) ===\n",
         t1, t2, t2 + 0.2);
  const auto samples =
      RunTimelineDriver(&cluster, driver, /*interval_ms=*/250, events);
  json.AddTimeline(samples);
  if (json.enabled()) {
    json.artifact().SetConfig("failure_t1_s", t1);
    json.artifact().SetConfig("failure_t2_s", t2);
  }
  printf("%8s  %14s  %14s  %12s\n", "t(s)", "completed Mops",
         "committed Mops", "aborted Mops");
  for (const auto& sample : samples) {
    printf("%8.2f  %14.3f  %14.3f  %12.3f\n", sample.t_seconds,
           sample.completed_mops, sample.committed_mops,
           sample.aborted_mops);
  }
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig16_recovery (quick=%d)\n", flags.GetBool("quick", true));
  dpr::Run(flags);
  return 0;
}
