// Figure 16: impact of recovery on throughput — a timeline of completed,
// committed, and aborted operations per second with a failure injected at
// 1/3 of the run and a nested double failure at 2/3, running on the async
// storage plane (file-backed devices, group-commit fsync) with the adaptive
// checkpoint cadence (src/ckpt/). Restores walk the delta chain, so the
// artifact carries ckpt.chain_restores / ckpt.scan_restores alongside the
// timeline. --ckpt_fixed reverts to the historical fixed full fold-overs
// for an A/B on recovery cost.
//
// Expected shape: commit progress stalls briefly (~100s of ms) around each
// failure while operation throughput only dips; some operations abort in
// the rollback; the nested failure behaves as two failure-recovery
// sequences without extra recovery time.
//
// --live_rescale instead runs the elastic variant: the cluster grows from
// 2 to 3 workers under load (DESIGN.md §4i) and the joiner is then killed,
// so recovery runs over live-migrated partitions — the ownership table and
// the delta chains both have to survive the flip.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dpr {
namespace {

ClusterOptions BaseOptions(const Flags& flags) {
  ClusterOptions options;
  options.num_workers = 2;
  options.mode = RecoverabilityMode::kDpr;
  options.backend = StorageBackend::kLocal;
  options.checkpoint_interval_us = 100000;  // paper: 100 ms RPO ceiling
  if (flags.GetBool("ckpt_fixed", false)) {
    options.ckpt = CkptPolicy::FixedInterval();
  }
  return options;
}

void PrintCkptCounters(const MetricsSnapshot& before) {
  MetricsSnapshot delta = MetricsRegistry::Default().Snapshot();
  delta.SubtractCounters(before);
  printf("checkpoint counters:\n");
  for (const auto& [name, value] : delta.counters) {
    if (name.rfind("ckpt.", 0) == 0 || name.rfind("faster.checkpoints", 0) == 0) {
      printf("  %-40s %llu\n", name.c_str(),
             static_cast<unsigned long long>(value));
    }
  }
}

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig16_recovery");
  json.RecordConfig(config);
  const uint64_t total_ms = config.quick ? 9000 : 45000;
  ClusterOptions options = BaseOptions(flags);
  DFasterCluster cluster(options);
  Status s = cluster.Start();
  DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());

  DriverOptions driver;
  driver.num_client_threads = config.client_threads;
  driver.duration_ms = total_ms;
  driver.workload.num_keys = config.num_keys;
  driver.workload.zipf_theta = 0.99;

  const double t1 = total_ms / 3000.0;        // single failure
  const double t2 = 2 * total_ms / 3000.0;    // double (nested) failure
  std::vector<std::pair<double, std::function<void()>>> events = {
      {t1, [&] { (void)cluster.InjectFailure({0}); }},
      {t2, [&] { (void)cluster.InjectFailure({1}); }},
      {t2 + 0.2, [&] { (void)cluster.InjectFailure({0}); }},
  };
  printf("\n=== Figure 16: recovery timeline (failures at %.1fs, %.1fs, "
         "%.1fs; cadence=%s) ===\n",
         t1, t2, t2 + 0.2, options.ckpt.adaptive ? "adaptive" : "fixed");
  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  const auto samples =
      RunTimelineDriver(&cluster, driver, /*interval_ms=*/250, events);
  json.AddTimeline(samples);
  if (json.enabled()) {
    json.artifact().SetConfig("failure_t1_s", t1);
    json.artifact().SetConfig("failure_t2_s", t2);
    json.artifact().SetConfig("ckpt_adaptive", options.ckpt.adaptive);
  }
  printf("%8s  %14s  %14s  %12s\n", "t(s)", "completed Mops",
         "committed Mops", "aborted Mops");
  for (const auto& sample : samples) {
    printf("%8.2f  %14.3f  %14.3f  %12.3f\n", sample.t_seconds,
           sample.completed_mops, sample.committed_mops,
           sample.aborted_mops);
  }
  PrintCkptCounters(before);
  json.Finish();
}

/// --live_rescale: grow 2 -> 3 under load, then kill the joiner. Recovery
/// has to restore partitions whose ownership flipped mid-run and whose
/// checkpoint chains started on another worker's cadence.
void RunLiveRescale(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig16_recovery");
  json.RecordConfig(config);

  ClusterOptions options = BaseOptions(flags);
  DFasterCluster cluster(options);
  Status s = cluster.Start();
  DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());

  DriverOptions driver;
  driver.num_client_threads = config.client_threads;
  // Room for the rescale, the failure, and the post-recovery tail —
  // restoring the joiner's migrated partitions can take a couple seconds.
  driver.duration_ms = std::max<uint64_t>(config.duration_ms, 8000);
  driver.workload.num_keys = config.num_keys;
  driver.workload.zipf_theta = 0.99;

  const double t_join = driver.duration_ms / 1000.0 * 0.2;
  const double t_fail = driver.duration_ms / 1000.0 * 0.45;
  printf("\n=== Figure 16b: join at %.1fs, kill the joiner at %.1fs "
         "(cadence=%s) ===\n",
         t_join, t_fail, options.ckpt.adaptive ? "adaptive" : "fixed");
  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  WorkerId joiner = kInvalidWorker;
  std::thread rescale;
  std::thread failure;
  std::vector<std::pair<double, std::function<void()>>> events;
  events.emplace_back(t_join, [&cluster, &rescale, &joiner] {
    // Off-thread so the timeline keeps sampling through every
    // dual-ownership window (same shape as fig10's --live_rescale).
    rescale = std::thread([&cluster, &joiner] {
      Status as = cluster.AddWorker(&joiner);
      DPR_CHECK_MSG(as.ok(), "%s", as.ToString().c_str());
      uint32_t moved = 0;
      for (uint32_t vp = 0; vp < YcsbWorkload::kNumPartitions; vp += 3) {
        Status ms = cluster.MigratePartition(vp, joiner);
        DPR_CHECK_MSG(ms.ok(), "migrate vp %u: %s", vp,
                      ms.ToString().c_str());
        ++moved;
      }
      Status act = cluster.ActivateWorker(joiner);
      DPR_CHECK_MSG(act.ok(), "%s", act.ToString().c_str());
      printf("[live_rescale] worker %u joined; %u partitions migrated\n",
             joiner, moved);
    });
  });
  events.emplace_back(t_fail, [&cluster, &rescale, &failure, &joiner] {
    // The migrations are sub-second; make completion explicit anyway so the
    // failure always lands on a fully-joined member. Recovery itself runs
    // off-thread: restoring the joiner's migrated partitions can take
    // seconds, and the dip during that window is the measurement.
    if (rescale.joinable()) rescale.join();
    DPR_CHECK(joiner != kInvalidWorker);
    failure = std::thread(
        [&cluster, &joiner] { (void)cluster.InjectFailure({joiner}); });
  });
  const auto samples = RunTimelineDriver(&cluster, driver, 100, events);
  if (rescale.joinable()) rescale.join();
  if (failure.joinable()) failure.join();

  json.AddTimeline(samples, "live_rescale");
  if (json.enabled()) {
    json.artifact().SetConfig("join_t_s", t_join);
    json.artifact().SetConfig("failure_t_s", t_fail);
    json.artifact().SetConfig("ckpt_adaptive", options.ckpt.adaptive);
  }
  printf("%8s  %14s  %14s  %12s\n", "t(s)", "completed Mops",
         "committed Mops", "aborted Mops");
  for (const auto& sample : samples) {
    printf("%8.2f  %14.3f  %14.3f  %12.3f\n", sample.t_seconds,
           sample.completed_mops, sample.committed_mops,
           sample.aborted_mops);
  }
  PrintCkptCounters(before);
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig16_recovery (quick=%d; --live_rescale kills a live-"
         "migrated joiner; --ckpt_fixed reverts to fixed full fold-overs)\n",
         flags.GetBool("quick", true) ? 1 : 0);
  if (flags.GetBool("live_rescale", false)) {
    dpr::RunLiveRescale(flags);
  } else {
    dpr::Run(flags);
  }
  return 0;
}
