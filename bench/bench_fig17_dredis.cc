// Figure 17: D-Redis vs Redis vs Redis+proxy throughput while scaling the
// shard count, in a saturated (w=8192, b=1024) and an unsaturated
// (w=1024, b=16) configuration.
//
// Expected shape: D-Redis matches Redis's throughput and scalability when
// saturated (DPR does not reduce peak throughput); when unsaturated it
// tracks the pass-through proxy (the extra hop, not DPR, costs latency).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "harness/stats.h"

namespace dpr {
namespace {

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig17_dredis");
  json.RecordConfig(config);
  const std::vector<uint32_t> shard_counts =
      config.quick ? std::vector<uint32_t>{1, 2, 4}
                   : std::vector<uint32_t>{2, 4, 6, 8};
  const std::vector<std::pair<std::string, RedisDeployment>> deployments = {
      {"redis", RedisDeployment::kDirect},
      {"redis+proxy", RedisDeployment::kPassThrough},
      {"d-redis", RedisDeployment::kDpr},
  };
  struct Mode {
    std::string name;
    uint32_t window;
    uint32_t batch;
  };
  const std::vector<Mode> modes = {{"saturated", 8192, 1024},
                                   {"unsaturated", 1024, 16}};
  for (const Mode& mode : modes) {
    printf("\n=== Figure 17%s: %s (w=%u, b=%u) ===\n",
           mode.name == "saturated" ? "a" : "b", mode.name.c_str(),
           mode.window, mode.batch);
    ResultTable table({"shards", "deployment", "Mops"});
    for (uint32_t shards : shard_counts) {
      for (const auto& [name, deployment] : deployments) {
        RedisClusterOptions options;
        options.num_shards = shards;
        options.deployment = deployment;
        // Paper §7.5: the 5-minute runs take ONE checkpoint; scale that to
        // one commit per measurement run.
        options.checkpoint_interval_us = config.duration_ms * 1000;
        DRedisCluster cluster(options);
        Status s = cluster.Start();
        DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
        DriverOptions driver;
        driver.num_client_threads = config.client_threads;
        driver.duration_ms = config.duration_ms;
        driver.workload.num_keys = config.num_keys;
        driver.batch_size = mode.batch;
        driver.window = mode.window;
        const RedisDriverResult result = RunRedisDriver(&cluster, driver);
        json.AddRedisResult(mode.name + "." + name, shards, result);
        table.AddRow({std::to_string(shards), name,
                      ResultTable::Fmt(result.Mops())});
      }
    }
    table.Print();
  }
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig17_dredis (quick=%d)\n", flags.GetBool("quick", true));
  dpr::Run(flags);
  return 0;
}
