// Transport bench: echo and KvBatch round-trip throughput/latency over the
// TCP transport while scaling the connection count (1 -> 256). Drives every
// connection with a pipelined async window, so the transport's syscall and
// wakeup count per frame — not the handler — is what saturates first. The
// committed baseline (bench/baselines/BENCH_net.json) was captured from the
// pre-event-loop transport (one blocking thread per accepted connection,
// one send(2) per frame); the event-loop rewrite is expected to beat it by
// >= 1.5x at 64+ connections on the same machine.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/sync.h"
#include "dfaster/protocol.h"
#include "harness/stats.h"
#include "net/tcp_net.h"
#include "obs/metrics.h"

namespace dpr {
namespace {

// Sample one op latency out of this many (per connection) so recording does
// not perturb the hot loop.
constexpr uint64_t kLatencySampleEvery = 64;

// One pipelined connection: keeps `window` calls in flight, reissuing from
// each response callback until the deadline, then drains.
class PipelinedClient {
 public:
  PipelinedClient(std::string address, std::string payload, uint32_t window,
                  NetBackend backend)
      : address_(std::move(address)),
        payload_(std::move(payload)),
        window_(window),
        backend_(backend) {}

  Status Connect() {
    return ConnectTcp(address_, TcpClientOptions{backend_}, &conn_);
  }

  void Run(uint64_t deadline_us) {
    deadline_us_ = deadline_us;
    for (uint32_t i = 0; i < window_; ++i) Issue();
  }

  // Blocks until every in-flight call has resolved.
  void Drain() {
    MutexLock lock(mu_);
    cv_.Wait(mu_, [this]() REQUIRES(mu_) { return in_flight_ == 0; });
  }

  uint64_t completed() const { return completed_; }
  uint64_t errors() const { return errors_; }
  const Histogram& latency() const { return latency_; }

 private:
  void Issue() {
    {
      MutexLock lock(mu_);
      ++in_flight_;
    }
    const uint64_t seq = issued_++;
    const uint64_t start_us =
        (seq % kLatencySampleEvery == 0) ? NowMicros() : 0;
    conn_->CallAsync(payload_, [this, start_us](Status s, Slice) {
      if (s.ok()) {
        ++completed_;
        if (start_us != 0) latency_.Record(NowMicros() - start_us);
      } else {
        ++errors_;
      }
      const bool reissue = s.ok() && NowMicros() < deadline_us_;
      if (reissue) {
        // Resolve the completed slot before reissuing so in_flight_ never
        // overstates the window.
        {
          MutexLock lock(mu_);
          --in_flight_;
        }
        Issue();
        return;
      }
      bool drained;
      {
        MutexLock lock(mu_);
        drained = --in_flight_ == 0;
      }
      if (drained) cv_.NotifyAll();
    });
  }

  const std::string address_;
  const std::string payload_;
  const uint32_t window_;
  const NetBackend backend_;
  std::unique_ptr<RpcConnection> conn_;
  uint64_t deadline_us_ = 0;
  // Touched only from the issuing thread and the connection's single
  // callback thread, never concurrently for the same slot.
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t errors_ = 0;
  Histogram latency_;
  Mutex mu_;
  CondVar cv_;
  uint64_t in_flight_ GUARDED_BY(mu_) = 0;
};

struct NetPoint {
  double mops = 0;
  double syscalls_per_frame = 0;
  Histogram latency;
};

uint64_t CounterOrZero(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

// Submission-side syscalls per frame moved, from registry counter deltas:
// epoll pays recv+writev per wakeup, the uring backend pays one
// io_uring_enter per SQE batch regardless of how many frames ride it.
double SyscallsPerFrame(const MetricsSnapshot& before,
                        const MetricsSnapshot& after) {
  MetricsSnapshot delta = after;
  delta.SubtractCounters(before);
  const uint64_t syscalls = CounterOrZero(delta, "net.tcp.recv_calls") +
                            CounterOrZero(delta, "net.tcp.writev_calls") +
                            CounterOrZero(delta, "net.uring.sqe_batches");
  const uint64_t frames = CounterOrZero(delta, "net.tcp.frames_sent") +
                          CounterOrZero(delta, "net.tcp.frames_received");
  return frames > 0 ? static_cast<double>(syscalls) / frames : 0;
}

NetPoint RunPoint(RpcServer* server, const std::string& payload,
                  uint32_t conns, uint32_t window, uint64_t duration_ms,
                  NetBackend backend) {
  std::vector<std::unique_ptr<PipelinedClient>> clients;
  clients.reserve(conns);
  for (uint32_t i = 0; i < conns; ++i) {
    auto client = std::make_unique<PipelinedClient>(server->address(),
                                                    payload, window, backend);
    Status s = client->Connect();
    DPR_CHECK_MSG(s.ok(), "connect: %s", s.ToString().c_str());
    clients.push_back(std::move(client));
  }
  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  Stopwatch timer;
  const uint64_t deadline_us = NowMicros() + duration_ms * 1000;
  for (auto& client : clients) client->Run(deadline_us);
  for (auto& client : clients) client->Drain();
  const double seconds = timer.ElapsedSeconds();
  const MetricsSnapshot after = MetricsRegistry::Default().Snapshot();

  NetPoint point;
  uint64_t completed = 0;
  for (auto& client : clients) {
    completed += client->completed();
    DPR_CHECK_MSG(client->errors() == 0, "transport errors during bench");
    point.latency.Merge(client->latency());
  }
  point.mops = seconds > 0 ? completed / seconds / 1e6 : 0;
  point.syscalls_per_frame = SyscallsPerFrame(before, after);
  return point;
}

std::string MakeKvPayload(uint32_t ops) {
  KvBatchRequest request;
  for (uint32_t i = 0; i < ops; ++i) {
    request.ops.push_back(KvOp{KvOp::Type::kUpsert, i, i * 2});
  }
  std::string encoded;
  request.EncodeTo(&encoded);
  return encoded;
}

void KvHandler(Slice request, std::string* response) {
  KvBatchRequest batch;
  KvBatchResponse result;
  if (batch.DecodeFrom(request)) {
    result.results.resize(batch.ops.size());
    for (size_t i = 0; i < batch.ops.size(); ++i) {
      result.results[i] = KvOpResult{KvResult::kOk, batch.ops[i].key};
    }
  }
  result.EncodeTo(response);
}

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "net");
  json.RecordConfig(config);
  const uint32_t window =
      static_cast<uint32_t>(flags.GetInt("window", 64));
  const uint32_t kv_ops =
      static_cast<uint32_t>(flags.GetInt("kv_ops", 32));
  const uint64_t duration_ms = flags.GetInt("duration_ms", 800);
  json.artifact().SetConfig("window", static_cast<uint64_t>(window));
  json.artifact().SetConfig("kv_ops", static_cast<uint64_t>(kv_ops));
  json.artifact().SetConfig("point_duration_ms", duration_ms);

  const std::vector<uint32_t> conn_counts =
      config.quick ? std::vector<uint32_t>{1, 4, 16, 64}
                   : std::vector<uint32_t>{1, 4, 16, 64, 128, 256};

  struct Mode {
    std::string name;
    std::string payload;
    RpcHandler handler;
  };
  std::vector<Mode> modes;
  modes.push_back({"echo", std::string(64, 'e'),
                   [](Slice request, std::string* response) {
                     response->assign(request.data(), request.size());
                   }});
  modes.push_back({"kv", MakeKvPayload(kv_ops), KvHandler});

  // Backend axis: epoll always; uring when this kernel supports it. Series
  // names carry the backend so one artifact holds both curves (the epoll
  // series keeps the historical unsuffixed names for baseline comparison).
  struct Backend {
    std::string suffix;  // "" for epoll (historical names), ".uring"
    NetBackend backend;
  };
  std::vector<Backend> backends = {{"", NetBackend::kEpoll}};
  if (NetUringSupported()) {
    backends.push_back({".uring", NetBackend::kIoUring});
  } else {
    printf("io_uring backend unsupported on this kernel; epoll only\n");
  }
  json.artifact().SetConfig("uring_supported",
                            static_cast<uint64_t>(NetUringSupported()));

  for (const Backend& be : backends) {
    const char* be_name = be.backend == NetBackend::kIoUring ? "uring"
                                                             : "epoll";
    for (const Mode& mode : modes) {
      printf("\n=== bench_net: %s/%s (payload=%zuB, window=%u) ===\n",
             mode.name.c_str(), be_name, mode.payload.size(), window);
      ResultTable table({"conns", "Mops", "sys/frame", "p50us", "p99us"});
      for (uint32_t conns : conn_counts) {
        TcpServerOptions server_options;
        server_options.backend = be.backend;
        auto server = MakeTcpServer(0, server_options);
        Status s = server->Start(mode.handler);
        DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
        const NetPoint point = RunPoint(server.get(), mode.payload, conns,
                                        window, duration_ms, be.backend);
        server->Stop();
        json.artifact().AddPoint(mode.name + ".tput" + be.suffix, conns,
                                 point.mops);
        json.artifact().AddPoint(mode.name + ".syscalls_per_frame" + be.suffix,
                                 conns, point.syscalls_per_frame);
        json.artifact().AddHistogram(mode.name + ".latency" + be.suffix + "@" +
                                         std::to_string(conns),
                                     point.latency);
        table.AddRow({std::to_string(conns), ResultTable::Fmt(point.mops, 3),
                      ResultTable::Fmt(point.syscalls_per_frame, 2),
                      std::to_string(point.latency.Percentile(50)),
                      std::to_string(point.latency.Percentile(99))});
      }
      table.Print();
    }
  }
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_net (quick=%d)\n", flags.GetBool("quick", true));
  dpr::Run(flags);
  return 0;
}
