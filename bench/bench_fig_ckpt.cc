// Checkpoint-plane figure: what the delta chain and the adaptive cadence
// buy (DESIGN.md §4j).
//
// Phase A — bytes persisted per checkpoint at equal RPO. The same workload
// is checkpointed the same number of times under two policies: every
// checkpoint a full index image (full_every=1, the historical fold-over)
// vs the delta chain (full_every=16). Recovery points are identical; only
// the persisted index bytes differ. Expected: the delta chain persists a
// small fraction of the full-image bytes per checkpoint.
//
// Phase B — fsyncs on idle vs hot shards. A controller-driven checkpoint
// loop runs for a fixed wall-clock window over an idle store and a hot
// store, once with the adaptive policy and once with the fixed-interval
// policy. Expected: the fixed timer flushes a checkpoint every interval
// regardless; the adaptive controller keeps idle-shard flushes near zero
// (one initial report, then skips) while ticking the hot shard at least
// as often.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ckpt/cadence.h"
#include "common/clock.h"
#include "common/logging.h"
#include "faster/faster_store.h"
#include "obs/metrics.h"

namespace dpr {
namespace {

std::unique_ptr<FasterStore> NewStore(uint64_t buckets) {
  FasterOptions options;
  options.index_buckets = buckets;
  options.log_device = std::make_unique<MemoryDevice>();
  options.meta_device = std::make_unique<MemoryDevice>();
  return std::make_unique<FasterStore>(std::move(options));
}

Version Checkpoint(FasterStore* store, bool delta) {
  Version token = kInvalidVersion;
  Status s = store->PerformCheckpoint(
      store->CurrentVersion() + 1, nullptr, &token,
      CheckpointHints{.index_image = true, .delta = delta});
  DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  store->WaitForCheckpoints();
  return token;
}

uint64_t CounterDelta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after, const std::string& name) {
  const auto bit = before.counters.find(name);
  const auto ait = after.counters.find(name);
  const uint64_t b = bit == before.counters.end() ? 0 : bit->second;
  const uint64_t a = ait == after.counters.end() ? 0 : ait->second;
  return a - b;
}

struct PhaseAResult {
  uint64_t checkpoints = 0;
  uint64_t index_bytes = 0;
  uint64_t log_bytes = 0;
};

PhaseAResult RunPhaseAConfig(uint32_t full_every, uint64_t preload_keys,
                             uint32_t rounds, uint32_t writes_per_round) {
  auto store = NewStore(/*buckets=*/1 << 16);
  auto session = store->NewSession();
  for (uint64_t k = 0; k < preload_keys; ++k) {
    DPR_CHECK(session->Upsert(k, k).ok());
  }
  // The preload fold-over is common to both configs and not measured.
  Checkpoint(store.get(), /*delta=*/false);

  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  uint64_t next_key = 0;
  for (uint32_t r = 0; r < rounds; ++r) {
    // Dirty a 10% working set between checkpoints — the incremental log
    // flush is identical across configs; the index image is what differs.
    for (uint32_t i = 0; i < writes_per_round; ++i) {
      const uint64_t key = next_key++ % std::max<uint64_t>(preload_keys / 10, 1);
      DPR_CHECK(session->Upsert(key, r).ok());
    }
    Checkpoint(store.get(), /*delta=*/full_every > 1 && r % full_every != 0);
  }
  const MetricsSnapshot after = MetricsRegistry::Default().Snapshot();
  PhaseAResult result;
  result.checkpoints = rounds;
  result.index_bytes =
      CounterDelta(before, after, "ckpt.index_bytes_persisted");
  result.log_bytes = CounterDelta(before, after, "ckpt.log_bytes_persisted");
  return result;
}

struct PhaseBResult {
  uint64_t flushed = 0;
  uint64_t skips = 0;
  uint64_t decisions = 0;
};

PhaseBResult RunPhaseBArm(const CkptPolicy& policy, bool hot,
                          uint64_t window_ms) {
  constexpr uint64_t kBaseIntervalUs = 10000;  // 10ms RPO for bench speed
  auto store = NewStore(/*buckets=*/1 << 12);
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 4096; ++k) {
    DPR_CHECK(session->Upsert(k, k).ok());
  }
  CkptCadenceController controller(policy.Resolve(kBaseIntervalUs));
  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  const Stopwatch timer;
  uint64_t writes = 0;
  while (timer.ElapsedMillis() < window_ms) {
    if (hot) {
      for (uint32_t i = 0; i < 2048; ++i) {
        ++writes;
        DPR_CHECK(session->Upsert(writes % 4096, writes).ok());
      }
    }
    // Same signal shape the harness workers sample (DFasterWorker::
    // CollectCkptSignals): un-flushed log span + the durability watermark.
    CkptSignals signals;
    const LogAddress tail = store->tail_address();
    const LogAddress ro = store->read_only_address();
    signals.dirty_bytes = tail > ro ? tail - ro : 0;
    signals.committed_watermark = store->LargestDurableToken();
    const CkptDecision decision = controller.Decide(signals, NowMicros());
    if (decision.action != CkptAction::kSkip) {
      Checkpoint(store.get(), decision.action == CkptAction::kDelta);
    }
    SleepMicros(std::min<uint64_t>(decision.next_delay_us, 100000));
  }
  const MetricsSnapshot after = MetricsRegistry::Default().Snapshot();
  PhaseBResult result;
  result.flushed = CounterDelta(before, after, "faster.checkpoints_flushed");
  result.skips = CounterDelta(before, after, "ckpt.controller.skips");
  result.decisions = CounterDelta(before, after, "ckpt.controller.decisions");
  return result;
}

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig_ckpt");
  json.RecordConfig(config);

  // --- Phase A: persisted bytes per checkpoint, full vs delta ---
  const uint64_t preload_keys = config.quick ? 50000 : 200000;
  const uint32_t rounds = config.quick ? 32 : 128;
  const uint32_t writes_per_round = 2048;
  printf("\n=== Checkpoint bytes at equal RPO (%u checkpoints, %llu keys) "
         "===\n",
         rounds, static_cast<unsigned long long>(preload_keys));
  ResultTable table({"config", "ckpts", "index KiB/ckpt", "log KiB/ckpt",
                     "total MiB"});
  struct { const char* name; uint32_t full_every; } configs[] = {
      {"full-every", 1}, {"delta-chain", 16}};
  double full_index_per_ckpt = 0;
  for (const auto& c : configs) {
    const PhaseAResult r =
        RunPhaseAConfig(c.full_every, preload_keys, rounds, writes_per_round);
    const double index_per = static_cast<double>(r.index_bytes) /
                             r.checkpoints / 1024.0;
    const double log_per =
        static_cast<double>(r.log_bytes) / r.checkpoints / 1024.0;
    if (c.full_every == 1) full_index_per_ckpt = index_per;
    table.AddRow({c.name, std::to_string(r.checkpoints),
                  ResultTable::Fmt(index_per), ResultTable::Fmt(log_per),
                  ResultTable::Fmt((r.index_bytes + r.log_bytes) / 1048576.0)});
    if (json.enabled()) {
      json.artifact().AddPoint("index_kib_per_ckpt", c.full_every, index_per);
      json.artifact().AddPoint("log_kib_per_ckpt", c.full_every, log_per);
    }
  }
  table.Print();
  if (full_index_per_ckpt > 0) {
    printf("(delta chain persists fewer index bytes per checkpoint at the "
           "same recovery points)\n");
  }

  // --- Phase B: idle/hot shard flushes, adaptive vs fixed cadence ---
  const uint64_t window_ms = config.quick ? 1200 : 5000;
  printf("\n=== Checkpoint flushes over %llums, 10ms RPO ===\n",
         static_cast<unsigned long long>(window_ms));
  ResultTable btable({"cadence", "shard", "flushed", "skips", "decisions"});
  struct { const char* name; CkptPolicy policy; } arms[] = {
      {"fixed", CkptPolicy::FixedInterval()}, {"adaptive", CkptPolicy{}}};
  for (const auto& arm : arms) {
    for (const bool hot : {false, true}) {
      const PhaseBResult r = RunPhaseBArm(arm.policy, hot, window_ms);
      btable.AddRow({arm.name, hot ? "hot" : "idle",
                     std::to_string(r.flushed), std::to_string(r.skips),
                     std::to_string(r.decisions)});
      if (json.enabled()) {
        const std::string series =
            std::string("flushed.") + arm.name + (hot ? ".hot" : ".idle");
        json.artifact().AddPoint(series, window_ms, r.flushed);
      }
    }
  }
  btable.Print();
  printf("(adaptive keeps idle-shard fsyncs near zero: one initial "
         "checkpoint, then skips)\n");
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig_ckpt (quick=%d)\n", flags.GetBool("quick", true) ? 1 : 0);
  dpr::Run(flags);
  return 0;
}
