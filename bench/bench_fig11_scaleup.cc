// Figure 11: scaling up D-FASTER — throughput vs client threads for
// {no checkpoints, uncoordinated checkpoints (no DPR), DPR}.
//
// Expected shape: all three scale with threads; checkpointing costs some
// throughput; DPR adds minimal overhead over uncoordinated checkpoints.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "harness/stats.h"

namespace dpr {
namespace {

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig11_scaleup");
  json.RecordConfig(config);
  const std::vector<uint32_t> thread_counts =
      config.quick ? std::vector<uint32_t>{1, 2, 4}
                   : std::vector<uint32_t>{2, 4, 8, 16};
  const std::vector<std::pair<std::string, RecoverabilityMode>> modes = {
      {"no-chkpt", RecoverabilityMode::kNone},
      {"no-dpr", RecoverabilityMode::kEventual},
      {"dpr", RecoverabilityMode::kDpr},
  };
  for (double theta : {0.0, 0.99}) {
    printf("\n=== Figure 11%s: scale-up, YCSB-A 50:50, %s ===\n",
           theta == 0.0 ? "a" : "b",
           theta == 0.0 ? "uniform" : "Zipfian(0.99)");
    ResultTable table({"client-threads", "config", "Mops"});
    for (uint32_t threads : thread_counts) {
      for (const auto& [name, mode] : modes) {
        ClusterOptions options;
        options.num_workers = 2;
        options.mode = mode;
        options.backend = StorageBackend::kNull;
        DFasterCluster cluster(options);
        Status s = cluster.Start();
        DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
        DriverOptions driver;
        driver.num_client_threads = threads;
        driver.duration_ms = config.duration_ms;
        driver.workload.num_keys = config.num_keys;
        driver.workload.zipf_theta = theta;
        driver.track_commits = mode == RecoverabilityMode::kDpr;
        const DriverResult result = RunYcsbDriver(&cluster, driver);
        json.AddDriverResult((theta == 0.0 ? "uniform." : "zipf.") + name,
                             threads, result);
        table.AddRow({std::to_string(threads), name,
                      ResultTable::Fmt(result.Mops())});
      }
    }
    table.Print();
  }
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig11_scaleup (quick=%d)\n", flags.GetBool("quick", true));
  dpr::Run(flags);
  return 0;
}
