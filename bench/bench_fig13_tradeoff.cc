// Figure 13: throughput-latency trade-off as batch size b sweeps 1..1024
// (100 ms checkpoints, w = 16b).
//
// Expected shape: throughput rises with b until saturation; beyond the sweet
// spot extra batching only adds latency.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "harness/stats.h"

namespace dpr {
namespace {

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig13_tradeoff");
  json.RecordConfig(config);
  const std::vector<uint32_t> batches =
      config.quick ? std::vector<uint32_t>{1, 8, 64, 512}
                   : std::vector<uint32_t>{1, 2, 4, 8, 16, 32, 64, 128, 256,
                                           512, 1024};
  printf("\n=== Figure 13: throughput-latency trade-off ===\n");
  ResultTable table({"b", "w", "Mops", "mean-latency-us", "p99-latency-us"});
  for (uint32_t b : batches) {
    ClusterOptions options;
    options.num_workers = 2;
    options.backend = StorageBackend::kLocal;
    options.checkpoint_interval_us = 100000;
    DFasterCluster cluster(options);
    Status s = cluster.Start();
    DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
    DriverOptions driver;
    driver.num_client_threads = config.client_threads;
    driver.duration_ms = config.duration_ms;
    driver.workload.num_keys = config.num_keys;
    driver.workload.zipf_theta = 0.99;
    driver.batch_size = b;
    driver.window = 16 * b;
    driver.latency_sample_rate = 0.01;
    const DriverResult result = RunYcsbDriver(&cluster, driver);
    json.AddDriverResult("batch", b, result);
    table.AddRow({std::to_string(b), std::to_string(16 * b),
                  ResultTable::Fmt(result.Mops()),
                  ResultTable::Fmt(result.op_latency_us.Mean(), 1),
                  std::to_string(result.op_latency_us.Percentile(99))});
  }
  table.Print();
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig13_tradeoff (quick=%d)\n", flags.GetBool("quick", true));
  dpr::Run(flags);
  return 0;
}
