// Figure 12: operation-completion and commit latency distributions for
// D-FASTER at batch sizes b=1024 and b=64 (0.1%-style sampling).
//
// Expected shape: commit latency ~ one checkpoint interval plus checkpoint
// persist time; operation latency is a few ms dominated by client batching;
// b=64 gives sub-millisecond op latency at reduced throughput.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "harness/stats.h"

namespace dpr {
namespace {

void PrintHistogram(const char* label, const Histogram& h) {
  printf("  %-28s %s\n", label, h.Summary().c_str());
}

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig12_latency");
  json.RecordConfig(config);
  for (uint32_t batch : {1024u, 64u}) {
    ClusterOptions options;
    options.num_workers = 2;
    options.backend = StorageBackend::kLocal;
    options.checkpoint_interval_us = 100000;
    DFasterCluster cluster(options);
    Status s = cluster.Start();
    DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
    DriverOptions driver;
    driver.num_client_threads = config.client_threads;
    driver.duration_ms = config.duration_ms * 2;
    driver.workload.num_keys = config.num_keys;
    driver.workload.zipf_theta = 0.99;
    driver.batch_size = batch;
    driver.window = 16 * batch;  // paper: w = 16b
    driver.latency_sample_rate = 0.005;
    const DriverResult result = RunYcsbDriver(&cluster, driver);
    json.AddDriverResult("batch", batch, result);
    printf("\n=== Figure 12: latency distribution, b=%u (%.2f Mops) ===\n",
           batch, result.Mops());
    PrintHistogram("operation latency:", result.op_latency_us);
    PrintHistogram("commit latency:", result.commit_latency_us);
  }
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig12_latency (quick=%d)\n", flags.GetBool("quick", true));
  dpr::Run(flags);
  return 0;
}
