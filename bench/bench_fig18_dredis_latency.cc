// Figure 18: latency distribution of Redis, D-Redis, and Redis+proxy in the
// unsaturated configuration.
//
// Expected shape: D-Redis latency tracks the pass-through proxy, both ~30%
// above plain Redis — the extra hop, not the DPR algorithm, dominates.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"

namespace dpr {
namespace {

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig18_dredis_latency");
  json.RecordConfig(config);
  const std::vector<std::pair<std::string, RedisDeployment>> deployments = {
      {"redis", RedisDeployment::kDirect},
      {"d-redis", RedisDeployment::kDpr},
      {"redis+proxy", RedisDeployment::kPassThrough},
  };
  printf("\n=== Figure 18: D-Redis latency distributions (unsaturated) "
         "===\n");
  for (const auto& [name, deployment] : deployments) {
    RedisClusterOptions options;
    options.num_shards = 2;
    options.deployment = deployment;
    // One commit per run, as in the paper's D-Redis evaluation (§7.5).
    options.checkpoint_interval_us = config.duration_ms * 1000;
    DRedisCluster cluster(options);
    Status s = cluster.Start();
    DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
    DriverOptions driver;
    driver.num_client_threads = config.client_threads;
    driver.duration_ms = config.duration_ms * 2;
    driver.workload.num_keys = config.num_keys;
    driver.batch_size = 16;
    driver.window = 256;
    driver.latency_sample_rate = 0.01;
    const RedisDriverResult result = RunRedisDriver(&cluster, driver);
    json.AddRedisResult(name, 2, result);
    printf("  %-12s %.2f Mops | %s\n", name.c_str(), result.Mops(),
           result.op_latency_us.Summary().c_str());
  }
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig18_dredis_latency (quick=%d)\n",
         flags.GetBool("quick", true));
  dpr::Run(flags);
  return 0;
}
