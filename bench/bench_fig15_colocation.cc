// Figure 15: co-location throughput — clients run on the worker nodes and a
// fraction p of their requests target the local shard through shared memory.
//
// Expected shape: throughput rises steeply with the local fraction (local
// ops skip the network entirely), and the advantage is largest at small
// batch sizes, where remote ops cannot amortize messaging costs.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "harness/stats.h"

namespace dpr {
namespace {

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig15_colocation");
  json.RecordConfig(config);
  const std::vector<double> local_fractions =
      config.quick ? std::vector<double>{0.0, 0.5, 0.9, 1.0}
                   : std::vector<double>{0.0, 0.25, 0.5, 0.75, 0.9, 0.99,
                                         1.0};
  const std::vector<uint32_t> batches =
      config.quick ? std::vector<uint32_t>{1, 16, 64}
                   : std::vector<uint32_t>{1, 8, 16, 64, 256, 1024};
  printf("\n=== Figure 15: co-location throughput ===\n");
  ResultTable table({"local-%", "b", "Mops"});
  for (double p : local_fractions) {
    for (uint32_t b : batches) {
      ClusterOptions options;
      options.num_workers = 2;
      options.backend = StorageBackend::kLocal;
      options.checkpoint_interval_us = 100000;
      DFasterCluster cluster(options);
      Status s = cluster.Start();
      DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
      DriverOptions driver;
      driver.num_client_threads = config.client_threads;
      driver.duration_ms = config.duration_ms;
      driver.workload.num_keys = config.num_keys;
      driver.workload.zipf_theta = 0.99;
      driver.batch_size = b;
      driver.window = 16 * b;
      driver.local_fraction = p;
      const DriverResult result = RunYcsbDriver(&cluster, driver);
      json.AddDriverResult("b" + std::to_string(b), p, result);
      table.AddRow({ResultTable::Fmt(p * 100, 0), std::to_string(b),
                    ResultTable::Fmt(result.Mops())});
    }
  }
  table.Print();
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig15_colocation (quick=%d)\n", flags.GetBool("quick", true));
  dpr::Run(flags);
  return 0;
}
