#ifndef DPR_BENCH_BENCH_UTIL_H_
#define DPR_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/histogram.h"
#include "harness/cluster.h"
#include "obs/bench_artifact.h"
#include "workload/ycsb.h"

namespace dpr {

/// Configuration for one YCSB measurement over a DFasterCluster — the
/// equivalent of one data point in the paper's §7 figures.
struct DriverOptions {
  uint32_t num_client_threads = 2;
  uint64_t duration_ms = 1500;
  uint32_t batch_size = 64;
  uint32_t window = 1024;  // paper default: w = 16b
  YcsbOptions workload;
  /// < 0: dedicated remote clients. >= 0: clients co-locate with workers
  /// (round-robin) and pick a local-shard key with this probability.
  double local_fraction = -1.0;
  /// Sampling rate for op/commit latency (paper: 0.1%). 0 disables.
  double latency_sample_rate = 0.0;
  /// Pre-load every key before measuring (avoids NotFound reads).
  bool preload = true;
  /// Track commit progress (pings at drain time). Disable for clusters
  /// running without DPR, where commits never arrive.
  bool track_commits = true;
};

struct DriverResult {
  uint64_t completed = 0;
  uint64_t committed = 0;
  double seconds = 0;
  Histogram op_latency_us;
  Histogram commit_latency_us;
  /// Tracking-plane counters snapshotted at the end of the run.
  TrackingPlaneStats tracking;

  double Mops() const {
    return seconds > 0 ? completed / seconds / 1e6 : 0.0;
  }
  double CommittedMops() const {
    return seconds > 0 ? committed / seconds / 1e6 : 0.0;
  }
};

/// Runs the YCSB driver against a started cluster for `duration_ms` and
/// aggregates counters across client threads.
DriverResult RunYcsbDriver(DFasterCluster* cluster,
                           const DriverOptions& options);

/// Per-interval throughput sample for timeline experiments (Fig. 16).
struct TimelineSample {
  double t_seconds;
  double completed_mops;
  double committed_mops;
  double aborted_mops;
};

/// Runs the driver while sampling throughput every `interval_ms`, invoking
/// `at` (if set) once at each scheduled event time (seconds) — used to
/// inject failures mid-run.
std::vector<TimelineSample> RunTimelineDriver(
    DFasterCluster* cluster, const DriverOptions& options,
    uint64_t interval_ms,
    const std::vector<std::pair<double, std::function<void()>>>& events);

/// Preloads all keys of the workload's key space with value = key.
void Preload(DFasterCluster* cluster, const YcsbOptions& workload,
             uint32_t batch_size, uint32_t window);

/// YCSB driver over a Redis-style cluster (Fig. 17-19). Only Set/Get.
struct RedisDriverResult {
  uint64_t completed = 0;
  double seconds = 0;
  Histogram op_latency_us;
  double Mops() const {
    return seconds > 0 ? completed / seconds / 1e6 : 0.0;
  }
};

RedisDriverResult RunRedisDriver(DRedisCluster* cluster,
                                 const DriverOptions& options);

/// Shared bench-binary scaffolding: parses --quick/--duration_ms/... flags.
struct BenchConfig {
  bool quick = true;
  uint64_t duration_ms = 1200;
  uint64_t num_keys = 100000;
  uint32_t client_threads = 2;
  /// Workload mix (paper §7.2 also ran RMW and read-mostly variants):
  /// --reads=0.9 --rmw=0.1 etc. Defaults to YCSB-A 50:50 read/blind-update.
  double read_fraction = 0.5;
  double rmw_fraction = 0.0;

  static BenchConfig FromFlags(const Flags& flags);
};

/// Shared --json_out plumbing for every bench binary: when the flag is set,
/// the run's data points, latency histograms, and a final metrics-registry
/// snapshot are serialized as BENCH_<name>.json (tables keep printing to
/// stdout either way). With the flag absent every Add* call is a no-op, so
/// benches instrument unconditionally.
class BenchJsonOutput {
 public:
  /// `bench_name` is the artifact's `bench` field; the output path comes
  /// from --json_out (a file path, or a directory to get the conventional
  /// BENCH_<name>.json name inside it).
  BenchJsonOutput(const Flags& flags, std::string bench_name);

  bool enabled() const { return !path_.empty(); }
  BenchArtifact& artifact() { return artifact_; }

  /// Stamps the shared config knobs (quick/duration/keys/threads/mix).
  void RecordConfig(const BenchConfig& config);

  /// One measurement: a point on `series` at `x` (y = completed Mops), a
  /// companion "<series>.committed" point when commits were tracked, and —
  /// when latency sampling was on — "<series>@x" op/commit histograms.
  void AddDriverResult(const std::string& series, double x,
                       const DriverResult& result);
  void AddRedisResult(const std::string& series, double x,
                      const RedisDriverResult& result);

  /// Timeline samples as completed/committed/aborted Mops series.
  void AddTimeline(const std::vector<TimelineSample>& samples,
                   const std::string& prefix = std::string());

  /// Attaches the global registry snapshot and writes the file. No-op
  /// (and OK) when --json_out was not given; dies on write failure so CI
  /// never silently drops an artifact.
  void Finish();

 private:
  std::string path_;
  BenchArtifact artifact_;
};

}  // namespace dpr

#endif  // DPR_BENCH_BENCH_UTIL_H_
