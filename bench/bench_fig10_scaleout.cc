// Figure 10: scaling out D-FASTER — throughput vs cluster size for the
// four storage configurations (no checkpoints, null, local SSD, cloud SSD),
// under uniform and Zipfian(0.99) YCSB-A 50:50.
//
// Expected shape (paper §7.2): throughput scales with workers; checkpointed
// configurations pay a ~20-40% tax vs no-checkpoints; slower storage costs a
// little more; Zipfian is faster than uniform (hot keys go in-place).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "harness/stats.h"

namespace dpr {
namespace {

struct BackendConfig {
  std::string name;
  RecoverabilityMode mode;
  StorageBackend backend;
};

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig10_scaleout");
  json.RecordConfig(config);
  std::vector<uint32_t> worker_counts =
      config.quick ? std::vector<uint32_t>{2, 4}
                   : std::vector<uint32_t>{2, 4, 6, 8};
  const std::vector<BackendConfig> backends = {
      {"no-chkpt", RecoverabilityMode::kNone, StorageBackend::kNull},
      {"null", RecoverabilityMode::kDpr, StorageBackend::kNull},
      {"local-ssd", RecoverabilityMode::kDpr, StorageBackend::kLocal},
      {"cloud-ssd", RecoverabilityMode::kDpr, StorageBackend::kCloud},
  };
  for (double theta : {0.0, 0.99}) {
    printf("\n=== Figure 10%s: scale-out, YCSB-A 50:50, %s ===\n",
           theta == 0.0 ? "a" : "b",
           theta == 0.0 ? "uniform" : "Zipfian(0.99)");
    ResultTable table({"workers", "config", "Mops", "committed-Mops"});
    for (uint32_t workers : worker_counts) {
      for (const auto& backend : backends) {
        ClusterOptions options;
        options.num_workers = workers;
        options.mode = backend.mode;
        options.backend = backend.backend;
        options.checkpoint_interval_us = 100000;  // paper: 100 ms
        DFasterCluster cluster(options);
        Status s = cluster.Start();
        DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());

        DriverOptions driver;
        driver.num_client_threads = config.client_threads;
        driver.duration_ms = config.duration_ms;
        driver.workload.num_keys = config.num_keys;
        driver.workload.read_fraction = config.read_fraction;
        driver.workload.rmw_fraction = config.rmw_fraction;
        driver.workload.zipf_theta = theta;
        driver.track_commits = backend.mode == RecoverabilityMode::kDpr;
        const DriverResult result = RunYcsbDriver(&cluster, driver);
        json.AddDriverResult(
            (theta == 0.0 ? "uniform." : "zipf.") + backend.name, workers,
            result);
        table.AddRow({std::to_string(workers), backend.name,
                      ResultTable::Fmt(result.Mops()),
                      backend.mode == RecoverabilityMode::kDpr
                          ? ResultTable::Fmt(result.CommittedMops())
                          : "n/a"});
      }
    }
    table.Print();
  }
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig10_scaleout (quick=%d; --quick=false for full sweep; "
         "--reads/--rmw change the mix)\n",
         flags.GetBool("quick", true) ? 1 : 0);
  dpr::Run(flags);
  return 0;
}
