// Figure 10: scaling out D-FASTER — throughput vs cluster size for the
// four storage configurations (no checkpoints, null, local SSD, cloud SSD),
// under uniform and Zipfian(0.99) YCSB-A 50:50.
//
// Expected shape (paper §7.2): throughput scales with workers; checkpointed
// configurations pay a ~20-40% tax vs no-checkpoints; slower storage costs a
// little more; Zipfian is faster than uniform (hot keys go in-place).
// --live_rescale instead runs the elastic-cluster experiment (DESIGN.md
// §4i): a fixed workload over 2 workers while a third joins mid-run and a
// third of the partitions live-migrate onto it. The timeline shows the
// dual-ownership dip and the post-rescale recovery; the JSON artifact
// carries the cluster.migration.* counters for the run.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "harness/stats.h"
#include "obs/metrics.h"

namespace dpr {
namespace {

struct BackendConfig {
  std::string name;
  RecoverabilityMode mode;
  StorageBackend backend;
};

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig10_scaleout");
  json.RecordConfig(config);
  std::vector<uint32_t> worker_counts =
      config.quick ? std::vector<uint32_t>{2, 4}
                   : std::vector<uint32_t>{2, 4, 6, 8};
  const std::vector<BackendConfig> backends = {
      {"no-chkpt", RecoverabilityMode::kNone, StorageBackend::kNull},
      {"null", RecoverabilityMode::kDpr, StorageBackend::kNull},
      {"local-ssd", RecoverabilityMode::kDpr, StorageBackend::kLocal},
      {"cloud-ssd", RecoverabilityMode::kDpr, StorageBackend::kCloud},
  };
  for (double theta : {0.0, 0.99}) {
    printf("\n=== Figure 10%s: scale-out, YCSB-A 50:50, %s ===\n",
           theta == 0.0 ? "a" : "b",
           theta == 0.0 ? "uniform" : "Zipfian(0.99)");
    ResultTable table({"workers", "config", "Mops", "committed-Mops"});
    for (uint32_t workers : worker_counts) {
      for (const auto& backend : backends) {
        ClusterOptions options;
        options.num_workers = workers;
        options.mode = backend.mode;
        options.backend = backend.backend;
        options.checkpoint_interval_us = 100000;  // paper: 100 ms
        DFasterCluster cluster(options);
        Status s = cluster.Start();
        DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());

        DriverOptions driver;
        driver.num_client_threads = config.client_threads;
        driver.duration_ms = config.duration_ms;
        driver.workload.num_keys = config.num_keys;
        driver.workload.read_fraction = config.read_fraction;
        driver.workload.rmw_fraction = config.rmw_fraction;
        driver.workload.zipf_theta = theta;
        driver.track_commits = backend.mode == RecoverabilityMode::kDpr;
        const DriverResult result = RunYcsbDriver(&cluster, driver);
        json.AddDriverResult(
            (theta == 0.0 ? "uniform." : "zipf.") + backend.name, workers,
            result);
        table.AddRow({std::to_string(workers), backend.name,
                      ResultTable::Fmt(result.Mops()),
                      backend.mode == RecoverabilityMode::kDpr
                          ? ResultTable::Fmt(result.CommittedMops())
                          : "n/a"});
      }
    }
    table.Print();
  }
  json.Finish();
}

/// --live_rescale: throughput timeline while the cluster grows under load.
void RunLiveRescale(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig10_scaleout");
  json.RecordConfig(config);

  ClusterOptions options;
  options.num_workers = 2;
  options.mode = RecoverabilityMode::kDpr;
  options.backend = StorageBackend::kLocal;
  options.checkpoint_interval_us = 100000;
  DFasterCluster cluster(options);
  Status s = cluster.Start();
  DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());

  DriverOptions driver;
  driver.num_client_threads = config.client_threads;
  // The timeline needs room on both sides of the rescale.
  driver.duration_ms = std::max<uint64_t>(config.duration_ms, 3000);
  driver.workload.num_keys = config.num_keys;
  driver.workload.read_fraction = config.read_fraction;
  driver.workload.rmw_fraction = config.rmw_fraction;

  printf("\n=== Figure 10c: live rescale 2 -> 3 workers under load ===\n");
  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  const double t_join = driver.duration_ms / 1000.0 * 0.35;
  // The rescale runs on its own thread so the timeline keeps sampling
  // through every dual-ownership window — the dip is the measurement.
  std::thread rescale;
  std::vector<std::pair<double, std::function<void()>>> events;
  events.emplace_back(t_join, [&cluster, &rescale] {
    rescale = std::thread([&cluster] {
      WorkerId joiner = kInvalidWorker;
      Status as = cluster.AddWorker(&joiner);
      DPR_CHECK_MSG(as.ok(), "%s", as.ToString().c_str());
      // Rebalance a third of the key space onto the joiner, one live move
      // at a time — clients keep writing through every dual-ownership
      // window and chase each flip via kNotOwner re-routes.
      uint32_t moved = 0;
      for (uint32_t vp = 0; vp < YcsbWorkload::kNumPartitions; vp += 3) {
        Status ms = cluster.MigratePartition(vp, joiner);
        DPR_CHECK_MSG(ms.ok(), "migrate vp %u: %s", vp,
                      ms.ToString().c_str());
        ++moved;
      }
      Status act = cluster.ActivateWorker(joiner);
      DPR_CHECK_MSG(act.ok(), "%s", act.ToString().c_str());
      printf("[live_rescale] worker %u joined; %u partitions migrated\n",
             joiner, moved);
    });
  });
  const auto samples = RunTimelineDriver(&cluster, driver, 100, events);
  if (rescale.joinable()) rescale.join();

  ResultTable table({"t(s)", "Mops", "committed-Mops"});
  for (const auto& sample : samples) {
    table.AddRow({ResultTable::Fmt(sample.t_seconds),
                  ResultTable::Fmt(sample.completed_mops),
                  ResultTable::Fmt(sample.committed_mops)});
  }
  table.Print();

  MetricsSnapshot delta = MetricsRegistry::Default().Snapshot();
  delta.SubtractCounters(before);
  printf("migration counters:\n");
  for (const auto& [name, value] : delta.counters) {
    if (name.rfind("cluster.migration.", 0) == 0) {
      printf("  %-40s %llu\n", name.c_str(),
             static_cast<unsigned long long>(value));
    }
  }
  json.AddTimeline(samples, "live_rescale");
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig10_scaleout (quick=%d; --quick=false for full sweep; "
         "--reads/--rmw change the mix; --live_rescale for the elastic "
         "grow-under-load timeline)\n",
         flags.GetBool("quick", true) ? 1 : 0);
  if (flags.GetBool("live_rescale", false)) {
    dpr::RunLiveRescale(flags);
  } else {
    dpr::Run(flags);
  }
  return 0;
}
