// Figure 14: impact of the storage backend on throughput as the checkpoint
// interval shrinks from 500 ms to 25 ms.
//
// Expected shape: backends differ little at long intervals; cloud-latency
// storage (checkpoint persist ~50 ms) degrades sharply once the interval
// approaches the persist time (thrashing at <= 50 ms).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "harness/stats.h"

namespace dpr {
namespace {

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig14_storage");
  json.RecordConfig(config);
  const std::vector<uint64_t> intervals_ms = {500, 250, 100, 50, 25};
  const std::vector<std::pair<std::string, StorageBackend>> backends = {
      {"null", StorageBackend::kNull},
      {"local-ssd", StorageBackend::kLocal},
      {"cloud-ssd", StorageBackend::kCloud},
  };
  printf("\n=== Figure 14: storage backend vs checkpoint interval ===\n");
  ResultTable table({"interval-ms", "backend", "Mops"});
  for (uint64_t interval : intervals_ms) {
    for (const auto& [name, backend] : backends) {
      ClusterOptions options;
      options.num_workers = 2;
      options.backend = backend;
      options.checkpoint_interval_us = interval * 1000;
      DFasterCluster cluster(options);
      Status s = cluster.Start();
      DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
      DriverOptions driver;
      driver.num_client_threads = config.client_threads;
      driver.duration_ms = config.duration_ms;
      driver.workload.num_keys = config.num_keys;
      driver.workload.zipf_theta = 0.99;
      const DriverResult result = RunYcsbDriver(&cluster, driver);
      json.AddDriverResult(name, interval, result);
      table.AddRow({std::to_string(interval), name,
                    ResultTable::Fmt(result.Mops())});
    }
  }
  table.Print();
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig14_storage (quick=%d)\n", flags.GetBool("quick", true));
  dpr::Run(flags);
  return 0;
}
