// Figure 14: impact of the storage backend on throughput as the checkpoint
// interval shrinks from 500 ms to 25 ms.
//
// Expected shape: backends differ little at long intervals; cloud-latency
// storage (checkpoint persist ~50 ms) degrades sharply once the interval
// approaches the persist time (thrashing at <= 50 ms).
// A second section benches the storage plane itself: N WAL-style shards
// packed onto one physical device (DeviceSlice), appending and fsyncing
// through the old per-shard path vs. the group-commit scheduler, under both
// I/O engines. Reports fsync counts, waiters coalesced, and the append
// stamp->durable latency distribution.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/logging.h"
#include "harness/stats.h"
#include "storage/async_io.h"
#include "storage/device.h"
#include "storage/fsync_scheduler.h"

namespace dpr {
namespace {

// ------------------------------------------------------ storage-plane bench

struct ShardLoadResult {
  uint64_t fsyncs = 0;     // device fsyncs actually issued
  uint64_t coalesced = 0;  // waiters absorbed into an already-pending group
  uint64_t appends = 0;
  double seconds = 0;
  Histogram durable_us;  // per-append stamp->durable latency

  double AppendsPerSec() const {
    return seconds > 0 ? appends / seconds : 0.0;
  }
};

/// `shards` writer threads share one FileDevice through DeviceSlice views,
/// each appending 256-byte records and waiting for durability after every
/// append — either with a private per-shard fsync (the old sync path) or as
/// group-commit waiters on the shared scheduler.
ShardLoadResult RunShardLoad(IoEngineKind engine_kind, bool group_commit,
                             uint32_t shards, uint32_t appends_per_shard) {
  const std::string path =
      "/tmp/dpr_bench_fig14_shards_" + std::to_string(getpid()) + ".bin";
  auto engine = MakeIoEngine({.kind = engine_kind});
  std::unique_ptr<FileDevice> base;
  Status s = FileDevice::Open(path, /*reset=*/true, &base, engine);
  DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  GroupCommitScheduler sched;
  constexpr uint64_t kSliceBytes = 16ull << 20;
  std::vector<std::unique_ptr<DeviceSlice>> slices;
  for (uint32_t i = 0; i < shards; ++i) {
    slices.push_back(std::make_unique<DeviceSlice>(base.get(), i * kSliceBytes));
  }

  ShardLoadResult result;
  std::vector<Histogram> per_thread(shards);
  std::vector<std::thread> threads;
  const uint64_t t_start = NowMicros();
  for (uint32_t i = 0; i < shards; ++i) {
    threads.emplace_back([&, i] {
      DeviceSlice* slice = slices[i].get();
      char record[256];
      memset(record, 'a' + (i % 26), sizeof(record));
      uint64_t offset = 0;
      for (uint32_t n = 0; n < appends_per_shard; ++n) {
        Status ws = SyncIo::Write(slice, offset, record, sizeof(record));
        DPR_CHECK_MSG(ws.ok(), "%s", ws.ToString().c_str());
        offset += sizeof(record);
        const uint64_t stamp = NowMicros();
        Status fs =
            group_commit ? sched.SyncNow(slice) : SyncIo::Fsync(slice);
        DPR_CHECK_MSG(fs.ok(), "%s", fs.ToString().c_str());
        per_thread[i].Record(NowMicros() - stamp);
      }
    });
  }
  for (auto& t : threads) t.join();
  result.seconds = (NowMicros() - t_start) / 1e6;
  result.appends = static_cast<uint64_t>(shards) * appends_per_shard;
  for (const auto& h : per_thread) result.durable_us.Merge(h);
  // The old path issues exactly one device fsync per append; the scheduler
  // counts its own.
  result.fsyncs = group_commit ? sched.fsyncs_issued() : result.appends;
  result.coalesced = group_commit ? sched.waiters_coalesced() : 0;
  base.reset();
  remove(path.c_str());
  return result;
}

void RunStoragePlane(const BenchConfig& config, BenchJsonOutput* json) {
  const uint32_t kShards = 4;
  const uint32_t appends = config.quick ? 200 : 2000;
  printf(
      "\n=== Storage plane: %u shards on one device, fsync-per-append vs "
      "group commit ===\n",
      kShards);
  ResultTable table({"engine", "mode", "fsyncs", "coalesced", "appends/s",
                     "p50-us", "p99-us"});
  std::vector<std::pair<std::string, IoEngineKind>> engines = {
      {"pool", IoEngineKind::kThreadPool}};
  if (IoUringSupported()) {
    engines.push_back({"uring", IoEngineKind::kIoUring});
  }
  for (const auto& [engine_name, engine_kind] : engines) {
    uint64_t naive_fsyncs = 0;
    for (bool group_commit : {false, true}) {
      const ShardLoadResult r =
          RunShardLoad(engine_kind, group_commit, kShards, appends);
      const std::string mode = group_commit ? "group-commit" : "per-shard";
      table.AddRow({engine_name, mode, std::to_string(r.fsyncs),
                    std::to_string(r.coalesced),
                    ResultTable::Fmt(r.AppendsPerSec()),
                    std::to_string(r.durable_us.Percentile(50)),
                    std::to_string(r.durable_us.Percentile(99))});
      const std::string prefix = "storage." + engine_name + "." + mode;
      json->artifact().AddPoint(prefix + ".fsyncs", kShards,
                                static_cast<double>(r.fsyncs));
      json->artifact().AddPoint(prefix + ".coalesced", kShards,
                                static_cast<double>(r.coalesced));
      json->artifact().AddPoint(prefix + ".appends_per_sec", kShards,
                                r.AppendsPerSec());
      json->artifact().AddPoint(prefix + ".stamp_to_durable.p50_us", kShards,
                                static_cast<double>(r.durable_us.Percentile(50)));
      json->artifact().AddPoint(prefix + ".stamp_to_durable.p99_us", kShards,
                                static_cast<double>(r.durable_us.Percentile(99)));
      if (group_commit) {
        const double reduction =
            r.fsyncs > 0 ? static_cast<double>(naive_fsyncs) / r.fsyncs : 0.0;
        printf("    %s: group commit reduced fsyncs %.1fx "
               "(%llu -> %llu for %llu durability waits)\n",
               engine_name.c_str(), reduction,
               static_cast<unsigned long long>(naive_fsyncs),
               static_cast<unsigned long long>(r.fsyncs),
               static_cast<unsigned long long>(r.appends));
        json->artifact().AddPoint("storage." + engine_name +
                                      ".fsync_reduction_x",
                                  kShards, reduction);
      } else {
        naive_fsyncs = r.fsyncs;
      }
    }
  }
  table.Print();
}

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "fig14_storage");
  json.RecordConfig(config);
  const std::vector<uint64_t> intervals_ms = {500, 250, 100, 50, 25};
  const std::vector<std::pair<std::string, StorageBackend>> backends = {
      {"null", StorageBackend::kNull},
      {"local-ssd", StorageBackend::kLocal},
      {"cloud-ssd", StorageBackend::kCloud},
  };
  printf("\n=== Figure 14: storage backend vs checkpoint interval ===\n");
  ResultTable table({"interval-ms", "backend", "Mops"});
  for (uint64_t interval : intervals_ms) {
    for (const auto& [name, backend] : backends) {
      ClusterOptions options;
      options.num_workers = 2;
      options.backend = backend;
      options.checkpoint_interval_us = interval * 1000;
      DFasterCluster cluster(options);
      Status s = cluster.Start();
      DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
      DriverOptions driver;
      driver.num_client_threads = config.client_threads;
      driver.duration_ms = config.duration_ms;
      driver.workload.num_keys = config.num_keys;
      driver.workload.zipf_theta = 0.99;
      const DriverResult result = RunYcsbDriver(&cluster, driver);
      json.AddDriverResult(name, interval, result);
      table.AddRow({std::to_string(interval), name,
                    ResultTable::Fmt(result.Mops())});
    }
  }
  table.Print();
  RunStoragePlane(config, &json);
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_fig14_storage (quick=%d)\n", flags.GetBool("quick", true));
  dpr::Run(flags);
  return 0;
}
