#include "bench_util.h"

#include <sys/stat.h>

#include <cstdio>
#include <deque>
#include "common/sync.h"
#include <thread>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "harness/stats.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

/// Registry mirrors of the driver aggregates, so a --json_out snapshot (or a
/// chaos failure dump) carries the bench totals alongside the plane metrics.
struct BenchMetricsRefs {
  Counter* ops_completed;
  Counter* ops_committed;
  Counter* ops_aborted;
};

const BenchMetricsRefs& BenchMetrics() {
  static const BenchMetricsRefs refs = [] {
    auto& r = MetricsRegistry::Default();
    return BenchMetricsRefs{r.counter("bench.ops_completed"),
                            r.counter("bench.ops_committed"),
                            r.counter("bench.ops_aborted")};
  }();
  return refs;
}

void PublishBenchCounters(const std::vector<std::unique_ptr<BenchCounters>>&
                              stats) {
  uint64_t completed = 0, committed = 0, aborted = 0;
  for (const auto& s : stats) {
    completed += s->completed.load(std::memory_order_relaxed);
    committed += s->committed.load(std::memory_order_relaxed);
    aborted += s->aborted.load(std::memory_order_relaxed);
  }
  BenchMetrics().ops_completed->Add(completed);
  BenchMetrics().ops_committed->Add(committed);
  BenchMetrics().ops_aborted->Add(aborted);
}

struct CommitSample {
  uint64_t start_us;
  uint64_t marker;  // commit covers the sample once prefix_end >= marker
};

class YcsbDriverThread {
 public:
  YcsbDriverThread(DFasterCluster* cluster, const DriverOptions& options,
                   uint32_t tid, BenchCounters* stats,
                   std::atomic<bool>* stop_flag)
      : options_(options),
        tid_(tid),
        stats_(stats),
        stop_(stop_flag),
        rng_(options.workload.seed + 7919 * tid) {
    YcsbOptions wl = options.workload;
    wl.seed += tid * 131;
    workload_ = std::make_unique<YcsbWorkload>(wl);
    // Pre-generate the op stream: key-popularity sampling (especially
    // Zipfian's pow()) must not be charged to the store on a shared core.
    pregen_.reserve(kPregenOps);
    for (uint32_t i = 0; i < kPregenOps; ++i) pregen_.push_back(workload_->Next());
    if (options_.latency_sample_rate > 0) {
      sample_stride_ = static_cast<uint64_t>(1.0 / options_.latency_sample_rate);
      if (sample_stride_ == 0) sample_stride_ = 1;
    }
    if (options_.local_fraction >= 0) {
      local_worker_ = tid % cluster->num_workers();
      client_ = cluster->NewColocatedClient(local_worker_,
                                            options_.batch_size,
                                            options_.window);
      local_keys_.reserve(kPregenOps);
      for (uint32_t i = 0; i < kPregenOps; ++i) {
        local_keys_.push_back(
            workload_->NextKeyOnShard(local_worker_, cluster->num_workers()));
      }
    } else {
      client_ = cluster->NewClient(options_.batch_size, options_.window);
    }
    session_ = client_->NewSession(1000 + tid);
    num_workers_ = cluster->num_workers();
  }

  void Run() {
    while (!stop_->load(std::memory_order_relaxed)) {
      for (int i = 0; i < 256 && !stop_->load(std::memory_order_relaxed);
           ++i) {
        IssueOne();
      }
      Maintain();
    }
    // Drain: resolve outstanding ops and absorb final commit state.
    (void)session_->WaitForAll(10000);
    Maintain();
  }

  /// Gives commits a grace period to arrive (pings workers for watermarks).
  void FinishCommits(uint64_t grace_ms) {
    const Stopwatch timer;
    uint64_t target = session_->dpr().next_seqno();
    while (timer.ElapsedMillis() < grace_ms) {
      const auto point = session_->dpr().GetCommitPoint();
      if (point.prefix_end >= target && point.excluded.empty()) break;
      if (session_->needs_failure_handling()) {
        HandleFailure();
        target = session_->dpr().next_seqno();
      }
      for (uint32_t w = 0; w < num_workers_; ++w) {
        // Empty read round-trips double as watermark pings.
        session_->Read(workload_->NextKeyOnShard(w, num_workers_), nullptr);
      }
      (void)session_->WaitForAll(2000);
      DrainSamplesAndPublish();
      SleepMicros(2000);
    }
    DrainSamplesAndPublish();
  }

  Histogram& op_latency() { return op_latency_; }
  Histogram& commit_latency() { return commit_latency_; }

 private:
  void IssueOne() {
    YcsbOp op = pregen_[issued_ % kPregenOps];
    if (options_.local_fraction >= 0) {
      if (rng_.NextDouble() < options_.local_fraction) {
        op.key = local_keys_[issued_ % kPregenOps];
      }
    }
    ++issued_;
    const bool sample = sample_stride_ > 0 && issued_ % sample_stride_ == 0;
    DFasterClient::Session::OpCallback callback;
    const uint64_t start_us = sample ? NowMicros() : 0;
    if (sample) {
      callback = [this, start_us](KvResult, uint64_t) {
        // Called from a transport thread; histograms merge per thread via
        // the sample queue below, so guard with the sample mutex.
        MutexLock guard(sample_mu_);
        op_latency_.Record(NowMicros() - start_us);
      };
    } else {
      callback = [this](KvResult, uint64_t) {
        stats_->completed.fetch_add(1, std::memory_order_relaxed);
      };
    }
    if (sample) {
      // count sampled ops too
      auto inner = std::move(callback);
      callback = [this, inner = std::move(inner)](KvResult r, uint64_t v) {
        inner(r, v);
        stats_->completed.fetch_add(1, std::memory_order_relaxed);
      };
    }
    switch (op.type) {
      case YcsbOp::Type::kRead:
        session_->Read(op.key, std::move(callback));
        break;
      case YcsbOp::Type::kUpsert:
        session_->Upsert(op.key, op.value, std::move(callback));
        break;
      case YcsbOp::Type::kRmw:
        session_->Rmw(op.key, 1, std::move(callback));
        break;
    }
    if (sample) {
      // A commit-latency sample covers everything dispatched so far plus
      // the current batch; flush so the marker includes this op.
      session_->Flush();
      MutexLock guard(sample_mu_);
      commit_samples_.push_back(
          CommitSample{start_us, session_->dpr().next_seqno()});
    }
  }

  void Maintain() {
    if (session_->needs_failure_handling()) HandleFailure();
    DrainSamplesAndPublish();
  }

  void DrainSamplesAndPublish() {
    const auto point = session_->dpr().GetCommitPoint();
    const uint64_t committed_now =
        point.prefix_end - point.excluded.size() + committed_base_;
    uint64_t prev = stats_->committed.load(std::memory_order_relaxed);
    if (committed_now > prev) {
      stats_->committed.store(committed_now, std::memory_order_relaxed);
    }
    if (options_.latency_sample_rate > 0) {
      const uint64_t now = NowMicros();
      MutexLock guard(sample_mu_);
      while (!commit_samples_.empty() &&
             commit_samples_.front().marker <= point.prefix_end) {
        commit_latency_.Record(now - commit_samples_.front().start_us);
        commit_samples_.pop_front();
      }
    }
  }

  void HandleFailure() {
    (void)session_->WaitForAll(5000);
    DprSession::CommitPoint survivors;
    Status s = session_->RecoverFromFailure(&survivors);
    if (!s.ok()) {
      SleepMicros(2000);
      return;  // recovery info not yet published; retry on next Maintain
    }
    const uint64_t issued = session_->dpr().next_seqno();
    // next_seqno resets semantics: HandleFailure keeps seqnos, so lost ops =
    // everything above the surviving prefix plus holes inside it.
    const uint64_t lost =
        issued - survivors.prefix_end + survivors.excluded.size();
    stats_->aborted.fetch_add(lost, std::memory_order_relaxed);
    committed_base_ = 0;  // prefix continues monotonically within dpr session
    {
      MutexLock guard(sample_mu_);
      commit_samples_.clear();
    }
  }

  const DriverOptions& options_;
  const uint32_t tid_;
  BenchCounters* stats_;
  std::atomic<bool>* stop_;
  Random rng_;
  std::unique_ptr<YcsbWorkload> workload_;
  std::unique_ptr<DFasterClient> client_;
  std::unique_ptr<DFasterClient::Session> session_;
  uint32_t num_workers_ = 1;
  uint32_t local_worker_ = 0;
  static constexpr uint32_t kPregenOps = 65536;
  std::vector<YcsbOp> pregen_;
  std::vector<uint64_t> local_keys_;
  uint64_t sample_stride_ = 0;
  uint64_t issued_ = 0;
  uint64_t committed_base_ = 0;

  Mutex sample_mu_;
  std::deque<CommitSample> commit_samples_ GUARDED_BY(sample_mu_);
  // Recorded under sample_mu_ while the run is live; the unlocked accessors
  // above are only called after the driver thread has joined.
  Histogram op_latency_;
  Histogram commit_latency_;
};

}  // namespace

void Preload(DFasterCluster* cluster, const YcsbOptions& workload,
             uint32_t batch_size, uint32_t window) {
  auto client = cluster->NewClient(batch_size, window);
  auto session = client->NewSession(1);
  for (uint64_t k = 0; k < workload.num_keys; ++k) {
    session->Upsert(k, k);
  }
  Status s = session->WaitForAll(60000);
  DPR_CHECK_MSG(s.ok(), "preload failed: %s", s.ToString().c_str());
}

DriverResult RunYcsbDriver(DFasterCluster* cluster,
                           const DriverOptions& options) {
  if (options.preload) {
    Preload(cluster, options.workload, options.batch_size, options.window);
  }
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<BenchCounters>> stats;
  std::vector<std::unique_ptr<YcsbDriverThread>> drivers;
  for (uint32_t t = 0; t < options.num_client_threads; ++t) {
    stats.push_back(std::make_unique<BenchCounters>());
    drivers.push_back(std::make_unique<YcsbDriverThread>(
        cluster, options, t, stats.back().get(), &stop));
  }
  std::vector<std::thread> threads;
  const Stopwatch timer;
  for (auto& driver : drivers) {
    threads.emplace_back([&driver] { driver->Run(); });
  }
  SleepMicros(options.duration_ms * 1000);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const double seconds = timer.ElapsedSeconds();
  // Let in-flight commits land so the committed count is meaningful.
  if (options.track_commits) {
    for (auto& driver : drivers) driver->FinishCommits(1500);
  }

  DriverResult result;
  result.seconds = seconds;
  for (uint32_t t = 0; t < options.num_client_threads; ++t) {
    result.completed += stats[t]->completed.load();
    result.committed += stats[t]->committed.load();
    result.op_latency_us.Merge(drivers[t]->op_latency());
    result.commit_latency_us.Merge(drivers[t]->commit_latency());
  }
  result.tracking = cluster->tracking_stats();
  PublishBenchCounters(stats);
  return result;
}

std::vector<TimelineSample> RunTimelineDriver(
    DFasterCluster* cluster, const DriverOptions& options,
    uint64_t interval_ms,
    const std::vector<std::pair<double, std::function<void()>>>& events) {
  if (options.preload) {
    Preload(cluster, options.workload, options.batch_size, options.window);
  }
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<BenchCounters>> stats;
  std::vector<std::unique_ptr<YcsbDriverThread>> drivers;
  for (uint32_t t = 0; t < options.num_client_threads; ++t) {
    stats.push_back(std::make_unique<BenchCounters>());
    drivers.push_back(std::make_unique<YcsbDriverThread>(
        cluster, options, t, stats.back().get(), &stop));
  }
  std::vector<std::thread> threads;
  for (auto& driver : drivers) {
    threads.emplace_back([&driver] { driver->Run(); });
  }

  std::vector<TimelineSample> samples;
  size_t next_event = 0;
  uint64_t last_completed = 0;
  uint64_t last_committed = 0;
  uint64_t last_aborted = 0;
  double last_t = 0.0;
  const Stopwatch timer;
  const double total_seconds = options.duration_ms / 1000.0;
  while (timer.ElapsedSeconds() < total_seconds) {
    SleepMicros(interval_ms * 1000);
    double t = timer.ElapsedSeconds();
    while (next_event < events.size() && events[next_event].first <= t) {
      events[next_event].second();
      ++next_event;
    }
    // Re-stamp after the events: a callback that blocks (an inline recovery)
    // must widen this sample's dt, not get charged to the old window.
    t = timer.ElapsedSeconds();
    uint64_t completed = 0;
    uint64_t committed = 0;
    uint64_t aborted = 0;
    for (auto& s : stats) {
      completed += s->completed.load(std::memory_order_relaxed);
      committed += s->committed.load(std::memory_order_relaxed);
      aborted += s->aborted.load(std::memory_order_relaxed);
    }
    // Actual elapsed time since the previous sample: an event callback that
    // blocks (a recovery, a rescale) must not inflate the next rate.
    const double dt = t - last_t;
    samples.push_back(TimelineSample{
        t, (completed - last_completed) / dt / 1e6,
        (committed - last_committed) / dt / 1e6,
        (aborted - last_aborted) / dt / 1e6});
    last_t = t;
    last_completed = completed;
    last_committed = committed;
    last_aborted = aborted;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  PublishBenchCounters(stats);
  return samples;
}

RedisDriverResult RunRedisDriver(DRedisCluster* cluster,
                                 const DriverOptions& options) {
  std::atomic<bool> stop{false};
  std::vector<std::atomic<uint64_t>> completed(options.num_client_threads);
  std::vector<Histogram> latencies(options.num_client_threads);
  std::vector<std::thread> threads;
  std::vector<Mutex> lat_mus(options.num_client_threads);
  const Stopwatch timer;
  for (uint32_t t = 0; t < options.num_client_threads; ++t) {
    threads.emplace_back([&, t] {
      auto client = cluster->NewClient(options.batch_size, options.window);
      auto session = client->NewSession(2000 + t);
      YcsbOptions wl = options.workload;
      wl.seed += t * 131;
      YcsbWorkload workload(wl);
      Random rng(wl.seed ^ 0xbadc0de);
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 256; ++i) {
          const YcsbOp op = workload.Next();
          const bool sample =
              options.latency_sample_rate > 0 &&
              rng.NextDouble() < options.latency_sample_rate;
          DRedisClient::Session::OpCallback callback;
          if (sample) {
            const uint64_t start = NowMicros();
            callback = [&, start, t](Status, Slice) {
              MutexLock guard(lat_mus[t]);
              latencies[t].Record(NowMicros() - start);
              completed[t].fetch_add(1, std::memory_order_relaxed);
            };
          } else {
            callback = [&, t](Status, Slice) {
              completed[t].fetch_add(1, std::memory_order_relaxed);
            };
          }
          if (op.type == YcsbOp::Type::kRead) {
            session->Get(op.key, std::move(callback));
          } else {
            session->Set(op.key, op.value, std::move(callback));
          }
        }
      }
      (void)session->WaitForAll(10000);
    });
  }
  SleepMicros(options.duration_ms * 1000);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  RedisDriverResult result;
  result.seconds = timer.ElapsedSeconds();
  for (uint32_t t = 0; t < options.num_client_threads; ++t) {
    result.completed += completed[t].load();
    result.op_latency_us.Merge(latencies[t]);
  }
  return result;
}

BenchJsonOutput::BenchJsonOutput(const Flags& flags, std::string bench_name)
    : artifact_(bench_name) {
  path_ = flags.GetString("json_out", "");
  if (path_.empty()) return;
  struct stat st;
  const bool is_dir =
      path_.back() == '/' ||
      (::stat(path_.c_str(), &st) == 0 && S_ISDIR(st.st_mode));
  if (is_dir) {
    if (path_.back() != '/') path_ += '/';
    path_ += "BENCH_" + bench_name + ".json";
  }
}

void BenchJsonOutput::RecordConfig(const BenchConfig& config) {
  if (!enabled()) return;
  artifact_.SetConfig("quick", config.quick);
  artifact_.SetConfig("duration_ms", config.duration_ms);
  artifact_.SetConfig("num_keys", config.num_keys);
  artifact_.SetConfig("client_threads",
                      static_cast<uint64_t>(config.client_threads));
  artifact_.SetConfig("read_fraction", config.read_fraction);
  artifact_.SetConfig("rmw_fraction", config.rmw_fraction);
}

namespace {

std::string HistogramName(const std::string& series, double x,
                          const char* which) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", x);
  return series + "@" + buf + "." + which;
}

}  // namespace

void BenchJsonOutput::AddDriverResult(const std::string& series, double x,
                                      const DriverResult& result) {
  if (!enabled()) return;
  artifact_.AddPoint(series, x, result.Mops());
  if (result.committed > 0) {
    artifact_.AddPoint(series + ".committed", x, result.CommittedMops());
  }
  if (result.op_latency_us.count() > 0) {
    artifact_.AddHistogram(HistogramName(series, x, "op_latency_us"),
                           result.op_latency_us);
  }
  if (result.commit_latency_us.count() > 0) {
    artifact_.AddHistogram(HistogramName(series, x, "commit_latency_us"),
                           result.commit_latency_us);
  }
}

void BenchJsonOutput::AddRedisResult(const std::string& series, double x,
                                     const RedisDriverResult& result) {
  if (!enabled()) return;
  artifact_.AddPoint(series, x, result.Mops());
  if (result.op_latency_us.count() > 0) {
    artifact_.AddHistogram(HistogramName(series, x, "op_latency_us"),
                           result.op_latency_us);
  }
}

void BenchJsonOutput::AddTimeline(const std::vector<TimelineSample>& samples,
                                  const std::string& prefix) {
  if (!enabled()) return;
  for (const auto& s : samples) {
    artifact_.AddPoint(prefix + "completed_mops", s.t_seconds,
                       s.completed_mops);
    artifact_.AddPoint(prefix + "committed_mops", s.t_seconds,
                       s.committed_mops);
    artifact_.AddPoint(prefix + "aborted_mops", s.t_seconds, s.aborted_mops);
  }
}

void BenchJsonOutput::Finish() {
  if (!enabled()) return;
  artifact_.AddSnapshot(MetricsRegistry::Default().Snapshot());
  const Status s = artifact_.WriteToFile(path_);
  DPR_CHECK_MSG(s.ok(), "--json_out write to %s failed: %s", path_.c_str(),
                s.ToString().c_str());
  std::printf("[bench] wrote %s\n", path_.c_str());
}

BenchConfig BenchConfig::FromFlags(const Flags& flags) {
  BenchConfig config;
  config.quick = flags.GetBool("quick", true);
  config.duration_ms =
      static_cast<uint64_t>(flags.GetInt("duration_ms", config.quick ? 1200 : 10000));
  config.num_keys = static_cast<uint64_t>(
      flags.GetInt("num_keys", config.quick ? 100000 : 1000000));
  config.client_threads = static_cast<uint32_t>(
      flags.GetInt("client_threads", 2));
  config.read_fraction = flags.GetDouble("reads", 0.5);
  config.rmw_fraction = flags.GetDouble("rmw", 0.0);
  return config;
}

}  // namespace dpr
