// Microbenchmarks (google-benchmark) for the core primitives: FASTER ops,
// epoch protection, DPR finder algorithms, header codecs, and hashing.
//
// Unlike the figure benches this binary hands argv to google-benchmark, so
// main() peels off the shared harness flags first: --quick shortens
// min-time, --json_out=<path|dir> writes BENCH_micro_core.json with one
// point per benchmark (ns/op and items/s) plus the registry snapshot.
#include <benchmark/benchmark.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "dpr/dep_tracker.h"
#include "dpr/finder.h"
#include "dpr/finder_service.h"
#include "dpr/header.h"
#include "epoch/light_epoch.h"
#include "faster/faster_store.h"
#include "net/inmemory_net.h"
#include "obs/bench_artifact.h"
#include "obs/metrics.h"

namespace dpr {
namespace {

std::unique_ptr<FasterStore> MakeStore() {
  FasterOptions options;
  options.index_buckets = 1 << 16;
  options.log_device = std::make_unique<NullDevice>();
  options.meta_device = std::make_unique<NullDevice>();
  return std::make_unique<FasterStore>(std::move(options));
}

void BM_FasterUpsert(benchmark::State& state) {
  auto store = MakeStore();
  auto session = store->NewSession();
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->Upsert(rng.Uniform(100000), rng.Next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FasterUpsert);

void BM_FasterRead(benchmark::State& state) {
  auto store = MakeStore();
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 100000; ++k) {
    benchmark::DoNotOptimize(session->Upsert(k, k));
  }
  Random rng(2);
  uint64_t value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->Read(rng.Uniform(100000), &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FasterRead);

void BM_FasterRmw(benchmark::State& state) {
  auto store = MakeStore();
  auto session = store->NewSession();
  Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->Rmw(rng.Uniform(1000), 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FasterRmw);

void BM_EpochProtectRefresh(benchmark::State& state) {
  LightEpoch epoch;
  epoch.Protect();
  for (auto _ : state) {
    benchmark::DoNotOptimize(epoch.Refresh());
  }
  epoch.Unprotect();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochProtectRefresh);

void BM_ZipfianNext(benchmark::State& state) {
  ZipfianGenerator gen(1 << 20, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext);

void BM_Crc32c(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

void BM_HeaderEncodeDecode(benchmark::State& state) {
  DprRequestHeader header;
  header.session_id = 1;
  header.version = 42;
  for (int w = 0; w < state.range(0); ++w) header.deps[w] = w + 1;
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    header.EncodeTo(&buf);
    DprRequestHeader decoded;
    benchmark::DoNotOptimize(decoded.DecodeFrom(buf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeaderEncodeDecode)->Arg(2)->Arg(8);

// DPR finder report+cut cycle: the per-checkpoint protocol cost.
template <FinderKind kKind>
void BM_FinderReportAndCut(benchmark::State& state) {
  MetadataStore metadata(std::make_unique<NullDevice>());
  (void)metadata.Recover();
  auto finder = MakeDprFinder({.kind = kKind, .metadata = &metadata});
  const int workers = static_cast<int>(state.range(0));
  for (int w = 0; w < workers; ++w) (void)finder->AddWorker(w, 0);
  Version version = 1;
  for (auto _ : state) {
    for (int w = 0; w < workers; ++w) {
      DependencySet deps;
      if (version > 1) deps[(w + 1) % workers] = version - 1;
      (void)finder->ReportPersistedVersion(
          finder->CurrentWorldLine(), WorkerVersion{uint32_t(w), version},
          deps);
    }
    (void)finder->ComputeCut();
    ++version;
  }
  state.SetItemsProcessed(state.iterations() * workers);
}
BENCHMARK_TEMPLATE(BM_FinderReportAndCut, FinderKind::kApprox)
    ->Arg(8)
    ->Arg(64);
BENCHMARK_TEMPLATE(BM_FinderReportAndCut, FinderKind::kExact)
    ->Arg(8)
    ->Arg(64);
BENCHMARK_TEMPLATE(BM_FinderReportAndCut, FinderKind::kHybrid)
    ->Arg(8)
    ->Arg(64);

// Sharded dependency tracking under concurrent batch admission (the
// BeginBatch hot path). Each thread plays a distinct client session, so
// records spread across stripes; the tracker is periodically drained the
// way a checkpoint would.
void BM_DepTrackerRecord(benchmark::State& state) {
  static VersionDependencyTracker tracker(16);
  const uint64_t session = 0x9e3779b97f4a7c15ull *
                           static_cast<uint64_t>(state.thread_index() + 1);
  DependencySet deps;
  deps[1] = 5;  // one cross-worker dependency: the locked (striped) path
  Version v = 1;
  for (auto _ : state) {
    tracker.Record(session + (v & 7), v, deps, /*self=*/0);
    if ((++v & 4095) == 0) {
      benchmark::DoNotOptimize(tracker.DrainUpTo(v));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DepTrackerRecord)->Threads(1)->Threads(8);

// Batches with no cross-worker dependencies take the lock-free path.
void BM_DepTrackerRecordNoDeps(benchmark::State& state) {
  static VersionDependencyTracker tracker(16);
  const uint64_t session = 0x9e3779b97f4a7c15ull *
                           static_cast<uint64_t>(state.thread_index() + 1);
  const DependencySet empty;
  Version v = 1;
  for (auto _ : state) {
    tracker.Record(session, v++, empty, /*self=*/0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DepTrackerRecordNoDeps)->Threads(1)->Threads(8);

// Asynchronous batched reporting through the remote finder client: reports
// enqueue locally and the background flusher coalesces them into
// kReportBatch RPCs; reports_per_batch > 1 means batching is effective.
void BM_RemoteFinderBatchedReport(benchmark::State& state) {
  MetadataStore metadata(std::make_unique<NullDevice>());
  (void)metadata.Recover();
  auto local =
      MakeDprFinder({.kind = FinderKind::kApprox, .metadata = &metadata});
  InMemoryNetOptions net_options;
  InMemoryNetwork net(net_options);
  DprFinderServer server(local.get(), net.CreateServer("finder"));
  (void)server.Start();
  RemoteDprFinderOptions remote_options;
  remote_options.flush_interval_us = 200;
  RemoteDprFinder remote(net.Connect(server.address()), remote_options);
  (void)remote.AddWorker(0, 0);
  Version v = 1;
  for (auto _ : state) {
    (void)remote.ReportPersistedVersion(kInitialWorldLine,
                                        WorkerVersion{0, v++},
                                        DependencySet());
  }
  (void)remote.Flush();
  const RemoteFinderStats stats = remote.stats();
  state.counters["reports_per_batch"] = stats.ReportsPerBatch();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemoteFinderBatchedReport);

/// Console reporter that additionally folds every finished run into the
/// artifact: series "ns_per_op" and "items_per_second", one point per
/// benchmark (x = run index, label = benchmark name).
class ArtifactReporter : public benchmark::ConsoleReporter {
 public:
  explicit ArtifactReporter(BenchArtifact* artifact) : artifact_(artifact) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    if (artifact_ == nullptr) return;
    for (const Run& run : reports) {
      if (run.error_occurred || run.iterations == 0) continue;
      const std::string name = run.benchmark_name();
      const double ns_per_op =
          run.real_accumulated_time / static_cast<double>(run.iterations) *
          1e9;
      artifact_->AddPoint("ns_per_op", index_, ns_per_op, name);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        artifact_->AddPoint("items_per_second", index_, items->second.value,
                            name);
      }
      ++index_;
    }
  }

 private:
  BenchArtifact* artifact_;
  double index_ = 0;
};

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  // Peel the harness flags off before google-benchmark sees argv.
  std::string json_out;
  bool quick = false;
  std::vector<char*> bench_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--quick") == 0 ||
               std::strcmp(argv[i], "--quick=true") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--quick=false") == 0) {
      // explicit full run: keep google-benchmark's default min time
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  std::string min_time = "--benchmark_min_time=0.05";
  if (quick) bench_argv.push_back(min_time.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());

  dpr::BenchArtifact artifact("micro_core");
  artifact.SetConfig("quick", quick);
  dpr::ArtifactReporter reporter(json_out.empty() ? nullptr : &artifact);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_out.empty()) {
    struct stat st;
    if (json_out.back() == '/' ||
        (::stat(json_out.c_str(), &st) == 0 && S_ISDIR(st.st_mode))) {
      if (json_out.back() != '/') json_out += '/';
      json_out += "BENCH_micro_core.json";
    }
    artifact.AddSnapshot(dpr::MetricsRegistry::Default().Snapshot());
    const dpr::Status s = artifact.WriteToFile(json_out);
    if (!s.ok()) {
      fprintf(stderr, "--json_out write to %s failed: %s\n", json_out.c_str(),
              s.ToString().c_str());
      return 1;
    }
    printf("[bench] wrote %s\n", json_out.c_str());
  }
  return 0;
}
