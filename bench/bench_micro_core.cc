// Microbenchmarks (google-benchmark) for the core primitives: FASTER ops,
// epoch protection, DPR finder algorithms, header codecs, and hashing.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/hash.h"
#include "common/random.h"
#include "dpr/finder.h"
#include "dpr/header.h"
#include "epoch/light_epoch.h"
#include "faster/faster_store.h"

namespace dpr {
namespace {

std::unique_ptr<FasterStore> MakeStore() {
  FasterOptions options;
  options.index_buckets = 1 << 16;
  options.log_device = std::make_unique<NullDevice>();
  options.meta_device = std::make_unique<NullDevice>();
  return std::make_unique<FasterStore>(std::move(options));
}

void BM_FasterUpsert(benchmark::State& state) {
  auto store = MakeStore();
  auto session = store->NewSession();
  Random rng(1);
  for (auto _ : state) {
    session->Upsert(rng.Uniform(100000), rng.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FasterUpsert);

void BM_FasterRead(benchmark::State& state) {
  auto store = MakeStore();
  auto session = store->NewSession();
  for (uint64_t k = 0; k < 100000; ++k) session->Upsert(k, k);
  Random rng(2);
  uint64_t value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->Read(rng.Uniform(100000), &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FasterRead);

void BM_FasterRmw(benchmark::State& state) {
  auto store = MakeStore();
  auto session = store->NewSession();
  Random rng(3);
  for (auto _ : state) {
    session->Rmw(rng.Uniform(1000), 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FasterRmw);

void BM_EpochProtectRefresh(benchmark::State& state) {
  LightEpoch epoch;
  epoch.Protect();
  for (auto _ : state) {
    benchmark::DoNotOptimize(epoch.Refresh());
  }
  epoch.Unprotect();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochProtectRefresh);

void BM_ZipfianNext(benchmark::State& state) {
  ZipfianGenerator gen(1 << 20, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext);

void BM_Crc32c(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

void BM_HeaderEncodeDecode(benchmark::State& state) {
  DprRequestHeader header;
  header.session_id = 1;
  header.version = 42;
  for (int w = 0; w < state.range(0); ++w) header.deps[w] = w + 1;
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    header.EncodeTo(&buf);
    DprRequestHeader decoded;
    benchmark::DoNotOptimize(decoded.DecodeFrom(buf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeaderEncodeDecode)->Arg(2)->Arg(8);

// DPR finder report+cut cycle: the per-checkpoint protocol cost.
template <typename FinderT>
void BM_FinderReportAndCut(benchmark::State& state) {
  MetadataStore metadata(std::make_unique<NullDevice>());
  (void)metadata.Recover();
  FinderT finder(&metadata);
  const int workers = static_cast<int>(state.range(0));
  for (int w = 0; w < workers; ++w) (void)finder.AddWorker(w, 0);
  Version version = 1;
  for (auto _ : state) {
    for (int w = 0; w < workers; ++w) {
      DependencySet deps;
      if (version > 1) deps[(w + 1) % workers] = version - 1;
      (void)finder.ReportPersistedVersion(
          finder.CurrentWorldLine(), WorkerVersion{uint32_t(w), version},
          deps);
    }
    (void)finder.ComputeCut();
    ++version;
  }
  state.SetItemsProcessed(state.iterations() * workers);
}
BENCHMARK_TEMPLATE(BM_FinderReportAndCut, SimpleDprFinder)->Arg(8)->Arg(64);
BENCHMARK_TEMPLATE(BM_FinderReportAndCut, GraphDprFinder)->Arg(8)->Arg(64);
BENCHMARK_TEMPLATE(BM_FinderReportAndCut, HybridDprFinder)->Arg(8)->Arg(64);

}  // namespace
}  // namespace dpr

BENCHMARK_MAIN();
