// Tracking-plane observability: runs YCSB-A over a DPR cluster with the
// finder in-process and again deployed behind the batching RPC client
// (ClusterOptions::remote_finder), printing the TrackingPlaneStats counters
// for each. Under load the remote deployment should show
// reports-per-batch > 1 (reports coalesce instead of one RPC per
// checkpoint) and the dependency tracker should show mostly lock-free
// records for single-shard sessions.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "harness/stats.h"

namespace dpr {
namespace {

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "tracking_plane");
  json.RecordConfig(config);
  for (bool remote : {false, true}) {
    ClusterOptions options;
    options.num_workers = 2;
    options.mode = RecoverabilityMode::kDpr;
    options.backend = StorageBackend::kNull;
    options.checkpoint_interval_us = 10000;  // frequent reports
    options.remote_finder = remote;
    DFasterCluster cluster(options);
    Status s = cluster.Start();
    DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());

    DriverOptions driver;
    driver.num_client_threads = config.client_threads;
    driver.duration_ms = config.duration_ms;
    driver.workload.num_keys = config.num_keys;
    driver.workload.read_fraction = config.read_fraction;
    driver.workload.rmw_fraction = config.rmw_fraction;
    const DriverResult result = RunYcsbDriver(&cluster, driver);
    json.AddDriverResult(remote ? "remote" : "local", remote ? 1 : 0, result);
    printf("\n[%s finder] %.3f Mops completed, %.3f Mops committed\n",
           remote ? "remote" : "local", result.Mops(),
           result.CommittedMops());
    result.tracking.Print(remote ? "remote" : "local");
    // Recovery goes through the same plane the workers report to (with
    // remote_finder, BeginRecovery/EndRecovery travel over the RPC client).
    s = cluster.InjectFailure({0});
    printf("  recovery    : inject worker-0 failure -> %s, world-line=%llu\n",
           s.ok() ? "recovered" : s.ToString().c_str(),
           static_cast<unsigned long long>(cluster.finder()->CurrentWorldLine()));
    cluster.Stop();
  }
  json.Finish();
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_tracking_plane (--duration_ms/--threads control load)\n");
  dpr::Run(flags);
  return 0;
}
