// Ablation (paper §3.3-3.4): exact vs approximate vs hybrid DPR finders.
// Measures, per algorithm and cluster size: (a) protocol cost — wall time of
// a report+cut round and metadata bytes durably written; (b) precision —
// how far the computed cut trails the persisted frontier when workers
// progress at uneven paces (the approximate algorithm's false dependencies).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/logging.h"
#include "dpr/finder.h"
#include "harness/stats.h"

namespace dpr {
namespace {

std::unique_ptr<DprFinder> Make(const std::string& kind,
                                MetadataStore* metadata) {
  FinderOptions options;
  options.metadata = metadata;
  if (kind == "exact") {
    options.kind = FinderKind::kExact;
  } else if (kind == "approx") {
    options.kind = FinderKind::kApprox;
  } else {
    options.kind = FinderKind::kHybrid;
  }
  return MakeDprFinder(options);
}

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "ablation_finder");
  json.RecordConfig(config);
  const std::vector<uint32_t> cluster_sizes =
      config.quick ? std::vector<uint32_t>{8, 32}
                   : std::vector<uint32_t>{8, 32, 128, 512};
  const int rounds = config.quick ? 200 : 2000;

  printf("\n=== Ablation: DPR finder algorithms ===\n");
  ResultTable table({"workers", "finder", "us/round", "metadata-KB",
                     "cut-lag(max)", "cut-lag(uneven)"});
  for (uint32_t workers : cluster_sizes) {
    for (const std::string kind : {"exact", "approx", "hybrid"}) {
      MetadataStore metadata(std::make_unique<MemoryDevice>());
      DPR_CHECK(metadata.Recover().ok());
      auto finder = Make(kind, &metadata);
      for (uint32_t w = 0; w < workers; ++w) {
        DPR_CHECK(finder->AddWorker(w, 0).ok());
      }
      // (a) protocol cost: every worker reports a version with a chain
      // dependency, then one cut round runs.
      const Stopwatch timer;
      Version version = 1;
      for (int r = 0; r < rounds; ++r) {
        for (uint32_t w = 0; w < workers; ++w) {
          DependencySet deps;
          if (version > 1) deps[(w + 1) % workers] = version - 1;
          DPR_CHECK(finder
                        ->ReportPersistedVersion(
                            finder->CurrentWorldLine(),
                            WorkerVersion{w, version}, deps)
                        .ok());
        }
        DPR_CHECK(finder->ComputeCut().ok());
        ++version;
      }
      const double us_per_round =
          static_cast<double>(timer.ElapsedMicros()) / rounds;
      const double metadata_kb = metadata.WalBytes() / 1024.0;
      // Everyone reported `version-1`; a precise finder commits it all.
      DprCut cut;
      finder->GetCut(nullptr, &cut);
      Version min_cut = ~0ULL;
      for (const auto& [w, v] : cut) min_cut = std::min(min_cut, v);
      const uint64_t lag_even = (version - 1) - min_cut;

      // (b) precision under uneven progress: worker 0 stops reporting while
      // the others advance 10 more versions (no cross dependencies).
      for (Version extra = version; extra < version + 10; ++extra) {
        for (uint32_t w = 1; w < workers; ++w) {
          DPR_CHECK(finder
                        ->ReportPersistedVersion(finder->CurrentWorldLine(),
                                                 WorkerVersion{w, extra}, {})
                        .ok());
        }
      }
      DPR_CHECK(finder->ComputeCut().ok());
      finder->GetCut(nullptr, &cut);
      // Lag of worker 1 (a fast worker) behind its own persisted frontier:
      // exact commits it immediately; approximate pins it at worker 0's pace
      // (the false dependency of §3.4).
      const uint64_t lag_uneven = (version + 9) - CutVersion(cut, 1);
      if (json.enabled()) {
        json.artifact().AddPoint(kind + ".us_per_round", workers,
                                 us_per_round);
        json.artifact().AddPoint(kind + ".metadata_kb", workers, metadata_kb);
        json.artifact().AddPoint(kind + ".cut_lag_uneven", workers,
                                 static_cast<double>(lag_uneven));
      }
      table.AddRow({std::to_string(workers), kind,
                    ResultTable::Fmt(us_per_round, 1),
                    ResultTable::Fmt(metadata_kb, 0),
                    std::to_string(lag_even), std::to_string(lag_uneven)});
    }
  }
  table.Print();
  json.Finish();
  printf("(cut-lag in versions; uneven-lag shows the approximate finder's "
         "false dependency on the slowest worker)\n");
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_ablation_finder (quick=%d)\n", flags.GetBool("quick", true));
  dpr::Run(flags);
  return 0;
}
