// Chaos soak: many seeded fault schedules, each much longer than the
// tier-1 quick runs, with the full checker suite on. Not a throughput
// benchmark — the metric is "seeds survived"; any violation prints the
// seed needed to replay it (./build/tests/chaos_test stays green on the
// quick range, this binary sweeps deeper).
//
//   ./build/bench/bench_chaos                     # quick: 50 seeds x 1000 steps
//   ./build/bench/bench_chaos --quick=false       # soak: 500 seeds x 3000 steps
//   ./build/bench/bench_chaos --seed=1337 --seeds=1 --steps=5000  # one deep run
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "harness/chaos.h"
#include "harness/stats.h"
#include "obs/metrics.h"

namespace dpr {
namespace {

/// On a violation the registry snapshot goes to disk next to the replay
/// seed: CHAOS_METRICS_<seed>.json captures what the tracking plane looked
/// like when the invariant broke (staged depths, cut age, retry counts).
void DumpMetricsForSeed(uint64_t seed) {
  const std::string path =
      "CHAOS_METRICS_" + std::to_string(seed) + ".json";
  const std::string json = MetricsRegistry::Default().Snapshot().ToJson();
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "could not write %s\n", path.c_str());
    return;
  }
  fwrite(json.data(), 1, json.size(), f);
  fputc('\n', f);
  fclose(f);
  fprintf(stderr, "metrics snapshot for seed %llu: %s\n",
          static_cast<unsigned long long>(seed), path.c_str());
}

int Run(const Flags& flags) {
  const bool quick = flags.GetBool("quick", true);
  BenchJsonOutput json(flags, "chaos");
  const uint64_t first_seed =
      static_cast<uint64_t>(flags.GetInt("seed", 1000));
  const uint64_t num_seeds = static_cast<uint64_t>(
      flags.GetInt("seeds", quick ? 50 : 500));
  const uint32_t steps = static_cast<uint32_t>(
      flags.GetInt("steps", quick ? 1000 : 3000));

  printf("\n=== Chaos soak: %llu seeds x %u steps ===\n",
         static_cast<unsigned long long>(num_seeds), steps);
  ResultTable table({"seeds", "ops", "commits", "recoveries", "violations",
                     "sec"});
  const Stopwatch timer;
  uint64_t ops = 0;
  uint64_t commits = 0;
  uint64_t recoveries = 0;
  uint64_t violations = 0;
  for (uint64_t seed = first_seed; seed < first_seed + num_seeds; ++seed) {
    ChaosOptions options;
    options.seed = seed;
    options.steps = steps;
    ChaosReport report;
    const Status s = RunChaos(options, &report);
    ops += report.ops;
    commits += report.commits;
    recoveries += report.recoveries;
    if (json.enabled()) {
      json.artifact().AddPoint("ops", seed, static_cast<double>(report.ops));
      json.artifact().AddPoint("commits", seed,
                               static_cast<double>(report.commits));
      json.artifact().AddPoint("recoveries", seed,
                               static_cast<double>(report.recoveries));
    }
    if (!s.ok() || !report.violation.empty()) {
      ++violations;
      fprintf(stderr, "VIOLATION: %s\n", report.violation.c_str());
      DumpMetricsForSeed(seed);
      if (json.enabled()) {
        json.artifact().AddPoint("violations", seed, 1, report.violation);
      }
    }
  }
  table.AddRow({std::to_string(num_seeds), std::to_string(ops),
                std::to_string(commits), std::to_string(recoveries),
                std::to_string(violations),
                ResultTable::Fmt(timer.ElapsedMicros() / 1e6, 1)});
  table.Print();
  if (json.enabled()) {
    json.artifact().SetConfig("first_seed", first_seed);
    json.artifact().SetConfig("seeds", num_seeds);
    json.artifact().SetConfig("steps", static_cast<uint64_t>(steps));
    json.artifact().AddCounter("chaos.violations", violations);
  }
  json.Finish();
  if (violations > 0) {
    printf("FAILED: %llu violating seed(s); replay with "
           "--seed=<printed seed> --seeds=1\n",
           static_cast<unsigned long long>(violations));
    return 1;
  }
  printf("all %llu schedules survived the checkers\n",
         static_cast<unsigned long long>(num_seeds));
  return 0;
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_chaos (quick=%d)\n", flags.GetBool("quick", true));
  return dpr::Run(flags);
}
