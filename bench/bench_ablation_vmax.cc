// Ablation (paper §3.4): Vmax fast-forwarding. A worker that checkpoints
// 10x less often pins the approximate DPR cut; with fast-forwarding it
// catches up to Vmax within a bounded number of its own checkpoints, so
// commit latency for fast workers stays bounded.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/logging.h"
#include "dpr/finder.h"
#include "dpr/worker.h"
#include "faster/faster_store.h"
#include "harness/stats.h"

namespace dpr {
namespace {

void Run(const Flags& flags) {
  const BenchConfig config = BenchConfig::FromFlags(flags);
  BenchJsonOutput json(flags, "ablation_vmax");
  json.RecordConfig(config);
  const uint64_t fast_interval_us = 10000;
  const uint64_t slow_interval_us = 100000;  // 10x laggard
  const uint64_t run_ms = config.quick ? 1500 : 6000;

  printf("\n=== Ablation: Vmax fast-forward with a lagging worker ===\n");
  ResultTable table({"vmax-ff", "fast-worker cut", "slow-worker cut",
                     "fast-worker persisted", "cut lag of fast worker"});
  for (bool vmax : {false, true}) {
    MetadataStore metadata(std::make_unique<MemoryDevice>());
    DPR_CHECK(metadata.Recover().ok());
    auto finder = MakeDprFinder({.kind = FinderKind::kApprox,
                                 .metadata = &metadata,
                                 .vmax_fastforward = vmax});
    finder->StartCoordinator(5000);

    std::vector<std::unique_ptr<FasterStore>> stores;
    std::vector<std::unique_ptr<DprWorker>> workers;
    for (int i = 0; i < 2; ++i) {
      FasterOptions fo;
      fo.index_buckets = 1 << 10;
      stores.push_back(std::make_unique<FasterStore>(std::move(fo)));
      DprWorkerOptions wo;
      wo.worker_id = i;
      wo.finder = finder.get();
      wo.checkpoint_interval_us =
          i == 0 ? fast_interval_us : slow_interval_us;
      wo.vmax_fast_forward = vmax;
      workers.push_back(std::make_unique<DprWorker>(stores.back().get(), wo));
      DPR_CHECK(workers.back()->Start().ok());
    }
    // Keep both stores lightly busy so checkpoints carry data.
    const Stopwatch timer;
    auto s0 = stores[0]->NewSession();
    auto s1 = stores[1]->NewSession();
    uint64_t i = 0;
    while (timer.ElapsedMillis() < run_ms) {
      (void)s0->Upsert(i % 128, i);
      (void)s1->Upsert(i % 128, i);
      ++i;
      if (i % 1024 == 0) SleepMicros(1000);
    }
    for (auto& w : workers) w->Stop();
    for (auto& st : stores) st->WaitForCheckpoints();
    DPR_CHECK(finder->ComputeCut().ok());
    finder->StopCoordinator();

    DprCut cut;
    finder->GetCut(nullptr, &cut);
    const Version fast_persisted = stores[0]->LargestDurableToken();
    const Version fast_cut = CutVersion(cut, 0);
    if (json.enabled()) {
      json.artifact().AddPoint("fast_worker_cut_lag", vmax ? 1 : 0,
                               static_cast<double>(fast_persisted - fast_cut),
                               vmax ? "vmax-on" : "vmax-off");
    }
    table.AddRow({vmax ? "on" : "off", std::to_string(fast_cut),
                  std::to_string(CutVersion(cut, 1)),
                  std::to_string(fast_persisted),
                  std::to_string(fast_persisted - fast_cut)});
  }
  table.Print();
  json.Finish();
  printf("(without fast-forward the fast worker checkpoints ~10x more "
         "versions than commit; with it, version numbers re-align and the "
         "cut tracks the frontier)\n");
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  dpr::Flags flags(argc, argv);
  printf("bench_ablation_vmax (quick=%d)\n", flags.GetBool("quick", true));
  dpr::Run(flags);
  return 0;
}
