#!/usr/bin/env bash
# Static-analysis gate for the DPR tree. Three layers; the first is the
# load-bearing one and always runs, the clang layers are additive and degrade
# gracefully when their tool is absent, so the script is meaningful both on
# developer laptops (clang available) and in minimal CI images (gcc only):
#
#   1. dprlint (always runs): the repo-aware analyzer in tools/dprlint/ — a
#      real C++ lexer feeding repo-specific checks (naked std primitives,
#      raw net/storage syscalls, retired Device shims, rogue checkpoint
#      timer loops, blocking calls under locks, discarded Status returns,
#      undocumented atomic orderings, callbacks invoked under locks).
#      `dprlint --list-checks` enumerates them; DESIGN.md §4k documents the
#      escape-hatch grammar (`// dprlint: allowed(<id>) <why>`).
#   2. clang thread-safety analysis: build with -DDPR_ANALYZE=ON under clang
#      so every GUARDED_BY/REQUIRES annotation in common/sync.h is enforced
#      at compile time (-Werror=thread-safety).
#   3. clang-tidy over src/ with the repo .clang-tidy (bugprone-*,
#      concurrency-*, performance-*, modernize-use-override/nullptr).
#
# Also builds the tree with -DDPR_WERROR=ON (warnings are errors) under
# whatever compiler is configured. Exits nonzero on any violation.
#
# Usage: check_analysis.sh [--lint-only [dir...]]
#   --lint-only runs just the dprlint layer (no builds); extra args replace
#   the default scan set (src bench tests examples) — used by the ctest smoke
#   test to assert each check actually fires on a seeded violation. The
#   binary is taken from $DPRLINT if set, else the newest build*/ tree; in
#   --lint-only mode a missing binary is a hard error (build it first), in
#   full mode it is built on the spot.
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"
FAILED=0

LINT_ONLY=0
if [ "${1:-}" = "--lint-only" ]; then
  LINT_ONLY=1
  shift
fi
if [ "$#" -gt 0 ]; then
  LINT_DIRS=("$@")
else
  LINT_DIRS=(src bench tests examples)
fi

say()  { printf '==> %s\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*"; FAILED=1; }

# ---------------------------------------------------------------- layer 1
# dprlint runs first because it is cheap, dependency-free, and the layer the
# rest of the plane relies on: if a naked primitive sneaks in, neither the
# annotations nor the lock-rank checker ever see that lock.
find_dprlint() {
  if [ -n "${DPRLINT:-}" ]; then
    printf '%s' "$DPRLINT"
    return
  fi
  # Newest first so a fresh rebuild wins over a stale side build.
  ls -t build*/tools/dprlint/dprlint 2>/dev/null | head -n1
}

DPRLINT_BIN="$(find_dprlint)"
if [ -z "$DPRLINT_BIN" ] || [ ! -x "$DPRLINT_BIN" ]; then
  if [ "$LINT_ONLY" -eq 1 ]; then
    printf 'FAIL: dprlint binary not found (looked at $DPRLINT, then '
    printf 'build*/tools/dprlint/dprlint).\n'
    printf 'Build it first:  cmake -B build -S . && '
    printf 'cmake --build build --target dprlint\n'
    exit 2
  fi
  say "dprlint not built yet; building it"
  if cmake -B build -S . >/dev/null &&
     cmake --build build --target dprlint -j "$(nproc)" >/dev/null; then
    DPRLINT_BIN="build/tools/dprlint/dprlint"
  else
    fail "could not build dprlint"
  fi
fi

if [ -n "$DPRLINT_BIN" ] && [ -x "$DPRLINT_BIN" ]; then
  say "dprlint over: ${LINT_DIRS[*]}"
  if "$DPRLINT_BIN" --baseline tools/dprlint/baseline.json "${LINT_DIRS[@]}"; then
    say "dprlint clean"
  else
    fail "dprlint findings; fix them or add a justified marker: // dprlint: allowed(<check-id>) <why>"
  fi
fi

if [ "$LINT_ONLY" -eq 1 ]; then
  exit "$FAILED"
fi

# ---------------------------------------------------------------- layer 2
CLANGXX="${CLANGXX:-$(command -v clang++ || true)}"
if [ -n "$CLANGXX" ]; then
  say "clang thread-safety analysis build (DPR_ANALYZE=ON)"
  BUILD_DIR=build-analyze
  if cmake -B "$BUILD_DIR" -S . \
        -DCMAKE_CXX_COMPILER="$CLANGXX" \
        -DDPR_ANALYZE=ON -DDPR_WERROR=ON >/dev/null &&
     cmake --build "$BUILD_DIR" -j "$(nproc)"; then
    say "thread-safety analysis clean"
  else
    fail "clang -Werror=thread-safety build"
  fi
else
  say "clang++ not found; skipping thread-safety analysis layer" \
      "(runtime lock-rank checker still enforces ordering in debug runs)"
fi

# ---------------------------------------------------------------- werror
say "warnings-as-errors build (DPR_WERROR=ON)"
WERROR_DIR=build-werror
if cmake -B "$WERROR_DIR" -S . -DDPR_WERROR=ON >/dev/null &&
   cmake --build "$WERROR_DIR" -j "$(nproc)" >/dev/null 2>"$WERROR_DIR/stderr.log"; then
  say "werror build clean"
else
  tail -40 "$WERROR_DIR/stderr.log" 2>/dev/null
  fail "DPR_WERROR=ON build"
fi

# ---------------------------------------------------------------- layer 3
CLANG_TIDY="${CLANG_TIDY:-$(command -v clang-tidy || true)}"
if [ -n "$CLANG_TIDY" ]; then
  say "clang-tidy over src/"
  # Use whichever analysis-capable compile database exists.
  DB_DIR=""
  for d in build-analyze build-werror build; do
    [ -f "$d/compile_commands.json" ] && DB_DIR="$d" && break
  done
  if [ -z "$DB_DIR" ]; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    DB_DIR=build
  fi
  if find src -name '*.cc' -print0 |
       xargs -0 "$CLANG_TIDY" -p "$DB_DIR" --quiet; then
    say "clang-tidy clean"
  else
    fail "clang-tidy"
  fi
else
  say "clang-tidy not found; skipping tidy layer"
fi

[ "$FAILED" -eq 0 ] && say "all analysis layers passed"
exit "$FAILED"
