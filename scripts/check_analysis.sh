#!/usr/bin/env bash
# Static-analysis gate for the DPR tree. Three layers, strongest available
# first; each layer degrades gracefully when its tool is absent so the script
# is meaningful both on developer laptops (clang available) and in minimal CI
# images (gcc only):
#
#   1. clang thread-safety analysis: build with -DDPR_ANALYZE=ON under clang
#      so every GUARDED_BY/REQUIRES annotation in common/sync.h is enforced
#      at compile time (-Werror=thread-safety).
#   2. clang-tidy over src/ with the repo .clang-tidy (bugprone-*,
#      concurrency-*, performance-*, modernize-use-override/nullptr).
#   3. A grep lint (always runs): no naked std::mutex / std::lock_guard /
#      std::condition_variable outside common/sync.h — all concurrency must
#      go through the annotated, rank-checked dpr:: wrappers.
#
# Also builds the tree with -DDPR_WERROR=ON (warnings are errors) under
# whatever compiler is configured. Exits nonzero on any violation.
#
# Usage: check_analysis.sh [--lint-only [dir...]]
#   --lint-only runs just the grep lint (no builds); extra args replace the
#   default scan set (src bench tests examples) — used by the ctest smoke
#   test to assert the lint actually fires on a seeded violation.
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"
FAILED=0

LINT_ONLY=0
if [ "${1:-}" = "--lint-only" ]; then
  LINT_ONLY=1
  shift
fi
if [ "$#" -gt 0 ]; then
  LINT_DIRS=("$@")
else
  LINT_DIRS=(src bench tests examples)
fi

say()  { printf '==> %s\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*"; FAILED=1; }

# ---------------------------------------------------------------- layer 3
# The lint runs first because it is cheap, dependency-free, and the layer
# the rest of the plane relies on: if a naked primitive sneaks in, neither
# the annotations nor the lock-rank checker ever see that lock.
#
# Matches declarations and guards of the raw primitives. common/sync.h is
# the one allowed user (it wraps them); a line may also opt out with the
# marker comment `// sync-lint: allowed` plus a justification.
say "lint: naked std synchronization primitives outside common/sync.h"
LINT_PATTERN='std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|shared_lock|scoped_lock)\b'
lint_hits=$(grep -rEn "$LINT_PATTERN" \
    --include='*.h' --include='*.cc' \
    "${LINT_DIRS[@]}" 2>/dev/null |
  grep -v 'common/sync\.h' |
  grep -v 'sync-lint: allowed' || true)
if [ -n "$lint_hits" ]; then
  printf '%s\n' "$lint_hits"
  fail "naked std synchronization primitive(s); use dpr::Mutex/SharedMutex/CondVar from common/sync.h"
else
  say "lint clean"
fi

# Transport lint: every frame byte must leave through the flush helpers
# (TcpWriteFully / TcpWritevFully / the event-loop flush), where coalescing
# metrics and torn-frame accounting live. A raw send(2)/write(2)/writev(2)
# bypasses both, so direct calls under a net/ directory are flagged unless
# the line (or the line above it) carries `net-lint: allowed` plus a
# justification.
say "lint: raw stream writes under net/ outside the flush helpers"
net_files=$(find "${LINT_DIRS[@]}" -path '*net/*' \
    \( -name '*.cc' -o -name '*.h' \) 2>/dev/null | sort || true)
net_hits=""
if [ -n "$net_files" ]; then
  # shellcheck disable=SC2086
  net_hits=$(awk '
    FNR == 1 { prev = "" }
    /(^|[^A-Za-z0-9_.:>"])(send|write|writev|pwrite)[ \t]*\(/ {
      if (prev !~ /net-lint: allowed/ && $0 !~ /net-lint: allowed/)
        printf "%s:%d: %s\n", FILENAME, FNR, $0
    }
    { prev = $0 }
  ' $net_files || true)
fi
if [ -n "$net_hits" ]; then
  printf '%s\n' "$net_hits"
  fail "raw send(2)/write(2) in net/; route frames through TcpWriteFully/TcpWritevFully or mark the line net-lint: allowed"
else
  say "net lint clean"
fi

# Storage lint: every block I/O syscall must go through the async IoEngine
# backends under src/storage/, where submission metrics, fault probes, and
# the group-commit scheduler live. A raw pwrite(2)/pread(2)/fsync(2) outside
# storage/ bypasses all three, so direct calls are flagged unless the line
# (or the line above it, or a file-scope marker near the top) carries
# `storage-lint: allowed` plus a justification.
say "lint: raw block I/O syscalls outside storage/ backends"
storage_lint_files=$(find "${LINT_DIRS[@]}" \
    \( -name '*.cc' -o -name '*.h' \) -not -path '*storage/*' 2>/dev/null |
  sort || true)
storage_hits=""
if [ -n "$storage_lint_files" ]; then
  # shellcheck disable=SC2086
  storage_hits=$(awk '
    FNR == 1 { prev = ""; file_allowed = 0 }
    FNR <= 5 && /storage-lint: allowed/ { file_allowed = 1 }
    {
      # Only flag calls in code: prose like "one fsync (per shard)" in a
      # comment is fine, so the line-comment tail is stripped before
      # matching (the opt-out marker still matches against the full line).
      code = $0
      sub(/\/\/.*/, "", code)
      if (code ~ /(^|[^A-Za-z0-9_.:>"])(pwrite|pread|pwritev|preadv|fsync|fdatasync)[ \t]*\(/ &&
          !file_allowed && prev !~ /storage-lint: allowed/ &&
          $0 !~ /storage-lint: allowed/)
        printf "%s:%d: %s\n", FILENAME, FNR, $0
      prev = $0
    }
  ' $storage_lint_files || true)
fi
if [ -n "$storage_hits" ]; then
  printf '%s\n' "$storage_hits"
  fail "raw block I/O syscall outside src/storage/; submit through the Device/IoEngine API or mark the line storage-lint: allowed"
else
  say "storage lint clean"
fi

# Blocking-shim lint: the legacy Device::WriteAt/ReadAt/Flush member shims
# are gone; synchronous waits go through the explicit SyncIo helper so they
# are visible at the call site. This lint keeps the member-call spelling from
# coming back (Flush is too generic a name to grep for — the compiler catches
# that one since no Device::Flush exists). Escape hatch: `storage-lint:
# allowed` on the line or the line above, for unrelated APIs that legitimately
# use these method names.
say "lint: blocking Device member shims (WriteAt/ReadAt) are retired"
shim_files=$(find "${LINT_DIRS[@]}" \
    \( -name '*.cc' -o -name '*.h' \) 2>/dev/null | sort || true)
shim_hits=""
if [ -n "$shim_files" ]; then
  # shellcheck disable=SC2086
  shim_hits=$(awk '
    FNR == 1 { prev = "" }
    {
      code = $0
      sub(/\/\/.*/, "", code)
      if (code ~ /(\.|->)(WriteAt|ReadAt)[ \t]*\(/ &&
          prev !~ /storage-lint: allowed/ && $0 !~ /storage-lint: allowed/)
        printf "%s:%d: %s\n", FILENAME, FNR, $0
      prev = $0
    }
  ' $shim_files || true)
fi
if [ -n "$shim_hits" ]; then
  printf '%s\n' "$shim_hits"
  fail "blocking-shim-style member call; use SyncIo::Write/Read/Fsync or the async Submit* API (or mark the line storage-lint: allowed)"
else
  say "shim lint clean"
fi

# Checkpoint-cadence lint: checkpoint scheduling is owned by the cadence
# controller (src/ckpt/cadence.h) — a timer loop that sleeps a fixed
# checkpoint_interval and fires PerformCheckpoint/TryCommit re-creates the
# pre-controller behavior (no adaptivity, no idle skips, no RPO policy) and
# silently forks the cadence logic. Flag any sleep/wait on a
# checkpoint_interval expression inside a file that also drives checkpoints,
# outside the controller plane itself. Escape hatch: `ckpt-lint: allowed`
# plus a justification on the line or the line above (e.g. GC pacing that
# merely borrows the interval constant, or the controller-driven loop).
say "lint: fixed-interval checkpoint timer loops outside the cadence controller"
ckpt_candidates=$(find "${LINT_DIRS[@]}" -name '*.cc' \
    -not -path '*ckpt/*' 2>/dev/null | sort || true)
ckpt_files=""
if [ -n "$ckpt_candidates" ]; then
  # Only files that actually drive checkpoints can host a rogue timer loop.
  # shellcheck disable=SC2086
  ckpt_files=$(grep -lE '(PerformCheckpoint|TryCommit)[ \t]*\(' \
      $ckpt_candidates 2>/dev/null || true)
fi
ckpt_hits=""
if [ -n "$ckpt_files" ]; then
  # shellcheck disable=SC2086
  ckpt_hits=$(awk '
    FNR == 1 { prev = "" }
    {
      code = $0
      sub(/\/\/.*/, "", code)
      if (code ~ /(SleepMicros|SleepFor|sleep_for|WaitFor)[ \t]*\(/ &&
          code ~ /checkpoint_interval/ &&
          prev !~ /ckpt-lint: allowed/ && $0 !~ /ckpt-lint: allowed/)
        printf "%s:%d: %s\n", FILENAME, FNR, $0
      prev = $0
    }
  ' $ckpt_files || true)
fi
if [ -n "$ckpt_hits" ]; then
  printf '%s\n' "$ckpt_hits"
  fail "fixed-interval checkpoint timer loop; drive cadence through CkptCadenceController (src/ckpt/) or mark the line ckpt-lint: allowed"
else
  say "ckpt lint clean"
fi

if [ "$LINT_ONLY" -eq 1 ]; then
  exit "$FAILED"
fi

# ---------------------------------------------------------------- layer 1
CLANGXX="${CLANGXX:-$(command -v clang++ || true)}"
if [ -n "$CLANGXX" ]; then
  say "clang thread-safety analysis build (DPR_ANALYZE=ON)"
  BUILD_DIR=build-analyze
  if cmake -B "$BUILD_DIR" -S . \
        -DCMAKE_CXX_COMPILER="$CLANGXX" \
        -DDPR_ANALYZE=ON -DDPR_WERROR=ON >/dev/null &&
     cmake --build "$BUILD_DIR" -j "$(nproc)"; then
    say "thread-safety analysis clean"
  else
    fail "clang -Werror=thread-safety build"
  fi
else
  say "clang++ not found; skipping thread-safety analysis layer" \
      "(runtime lock-rank checker still enforces ordering in debug runs)"
fi

# ---------------------------------------------------------------- werror
say "warnings-as-errors build (DPR_WERROR=ON)"
WERROR_DIR=build-werror
if cmake -B "$WERROR_DIR" -S . -DDPR_WERROR=ON >/dev/null &&
   cmake --build "$WERROR_DIR" -j "$(nproc)" >/dev/null 2>"$WERROR_DIR/stderr.log"; then
  say "werror build clean"
else
  tail -40 "$WERROR_DIR/stderr.log" 2>/dev/null
  fail "DPR_WERROR=ON build"
fi

# ---------------------------------------------------------------- layer 2
CLANG_TIDY="${CLANG_TIDY:-$(command -v clang-tidy || true)}"
if [ -n "$CLANG_TIDY" ]; then
  say "clang-tidy over src/"
  # Use whichever analysis-capable compile database exists.
  DB_DIR=""
  for d in build-analyze build-werror build; do
    [ -f "$d/compile_commands.json" ] && DB_DIR="$d" && break
  done
  if [ -z "$DB_DIR" ]; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    DB_DIR=build
  fi
  if find src -name '*.cc' -print0 |
       xargs -0 "$CLANG_TIDY" -p "$DB_DIR" --quiet; then
    say "clang-tidy clean"
  else
    fail "clang-tidy"
  fi
else
  say "clang-tidy not found; skipping tidy layer"
fi

[ "$FAILED" -eq 0 ] && say "all analysis layers passed"
exit "$FAILED"
