#ifndef DPR_OBS_TIMELINE_H_
#define DPR_OBS_TIMELINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/sync.h"

namespace dpr {

class JsonWriter;

/// One sample on a named series: (t_seconds since the timeline's origin,
/// value), with an optional label for discrete events ("crash worker 1").
struct TimelineEvent {
  double t_seconds = 0;
  std::string series;
  double value = 0;
  std::string label;
};

/// Multi-series event recorder for timeline experiments (Fig. 16-style
/// throughput-over-time plots, chaos fault logs, recovery phase marks).
/// Generalizes the bench harness's fixed {completed,committed,aborted}
/// sampler: any number of named series, interleaved with point events,
/// serialized as the artifact's `series[]`. Mutex-guarded — samplers run at
/// interval granularity, never on the op hot path.
class Timeline {
 public:
  Timeline() = default;

  /// Records `value` on `series` at the current elapsed time.
  void Record(std::string_view series, double value,
              std::string_view label = {});
  /// Records at an explicit timestamp (samplers that already track time).
  void RecordAt(std::string_view series, double t_seconds, double value,
                std::string_view label = {});
  /// Marks a discrete event (value 1) — fault injections, phase changes.
  void Mark(std::string_view series, std::string_view label = {});

  double ElapsedSeconds() const { return clock_.ElapsedSeconds(); }
  std::vector<TimelineEvent> events() const;
  bool empty() const;

  /// Emits the artifact `series[]` value: one object per distinct series,
  /// `{"name": ..., "points": [{"x": seconds, "y": v, "label"?: ...}, ...]}`,
  /// series ordered by first appearance.
  void WriteSeriesJson(JsonWriter* w) const;

 private:
  Stopwatch clock_;
  mutable Mutex mu_{LockRank::kObs, "obs.timeline"};
  std::vector<TimelineEvent> events_ GUARDED_BY(mu_);
};

}  // namespace dpr

#endif  // DPR_OBS_TIMELINE_H_
