#include "obs/timeline.h"

#include "obs/json.h"

namespace dpr {

void Timeline::Record(std::string_view series, double value,
                      std::string_view label) {
  RecordAt(series, clock_.ElapsedSeconds(), value, label);
}

void Timeline::RecordAt(std::string_view series, double t_seconds,
                        double value, std::string_view label) {
  TimelineEvent ev;
  ev.t_seconds = t_seconds;
  ev.series = std::string(series);
  ev.value = value;
  ev.label = std::string(label);
  MutexLock guard(mu_);
  events_.push_back(std::move(ev));
}

void Timeline::Mark(std::string_view series, std::string_view label) {
  Record(series, 1.0, label);
}

std::vector<TimelineEvent> Timeline::events() const {
  MutexLock guard(mu_);
  return events_;
}

bool Timeline::empty() const {
  MutexLock guard(mu_);
  return events_.empty();
}

void Timeline::WriteSeriesJson(JsonWriter* w) const {
  const std::vector<TimelineEvent> events = this->events();
  // Distinct series names, ordered by first appearance.
  std::vector<std::string> names;
  for (const TimelineEvent& ev : events) {
    bool known = false;
    for (const std::string& n : names) {
      if (n == ev.series) {
        known = true;
        break;
      }
    }
    if (!known) names.push_back(ev.series);
  }
  w->BeginArray();
  for (const std::string& name : names) {
    w->BeginObject();
    w->Key("name").String(name);
    w->Key("points").BeginArray();
    for (const TimelineEvent& ev : events) {
      if (ev.series != name) continue;
      w->BeginObject();
      w->Key("x").Double(ev.t_seconds);
      w->Key("y").Double(ev.value);
      if (!ev.label.empty()) w->Key("label").String(ev.label);
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
}

}  // namespace dpr
