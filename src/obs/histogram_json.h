#ifndef DPR_OBS_HISTOGRAM_JSON_H_
#define DPR_OBS_HISTOGRAM_JSON_H_

#include "common/histogram.h"
#include "common/status.h"

namespace dpr {

class JsonWriter;
class JsonValue;

/// Serializes `h` as
///   {"count":..., "sum":..., "min":..., "max":..., "mean":...,
///    "p50":..., "p90":..., "p99":..., "p999":...,
///    "buckets": [[bucket_index, count], ...]}   (sparse, nonzero only)
/// The bucket array plus count/sum/min/max is lossless w.r.t. the
/// log-bucketed representation: HistogramFromJson reconstructs a Histogram
/// that merges and reports percentiles identically.
void HistogramToJson(const Histogram& h, JsonWriter* w);

/// Inverse of HistogramToJson. Derived fields (mean, percentiles) in the
/// input are ignored; they are recomputed from the buckets.
Status HistogramFromJson(const JsonValue& v, Histogram* out);

}  // namespace dpr

#endif  // DPR_OBS_HISTOGRAM_JSON_H_
