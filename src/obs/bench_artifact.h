#ifndef DPR_OBS_BENCH_ARTIFACT_H_
#define DPR_OBS_BENCH_ARTIFACT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace dpr {

/// Machine-readable result of one bench run, serialized as
///   {"bench": name, "config": {...}, "series": [...], "histograms": {...},
///    "counters": {...}, "gauges": {...}}
/// and written to the path given by --json_out as BENCH_<name>.json. Every
/// bench binary builds exactly one of these; plotting and regression tooling
/// consume the files instead of scraping stdout tables.
class BenchArtifact {
 public:
  explicit BenchArtifact(std::string bench_name);

  const std::string& bench_name() const { return bench_name_; }

  /// Config entries record the knobs that produced this run (flag values,
  /// cluster shape). Stored as strings; numeric configs also keep a numeric
  /// form so consumers need not parse.
  void SetConfig(std::string_view key, std::string_view value);
  /// Without this overload a string literal would convert to bool (the
  /// pointer-to-bool standard conversion beats the string_view one).
  void SetConfig(std::string_view key, const char* value) {
    SetConfig(key, std::string_view(value));
  }
  void SetConfig(std::string_view key, int64_t value);
  void SetConfig(std::string_view key, uint64_t value);
  void SetConfig(std::string_view key, double value);
  void SetConfig(std::string_view key, bool value);

  /// Appends one (x, y) point to the named series, creating it on first use.
  /// Series preserve insertion order of both points and names.
  void AddPoint(std::string_view series, double x, double y,
                std::string_view label = {});

  /// Folds every timeline event in as series points (x = t_seconds).
  void AddTimeline(const Timeline& timeline);

  /// Stores a finished latency histogram under `name` (replacing any prior).
  void AddHistogram(std::string_view name, const Histogram& h);
  void AddHistogram(std::string_view name, const ShardedHistogram& h);

  /// Merges a registry snapshot: histograms are added as-is, counters and
  /// gauges land in the artifact's flat counter/gauge maps.
  void AddSnapshot(const MetricsSnapshot& snapshot);

  void AddCounter(std::string_view name, uint64_t value);
  void AddGauge(std::string_view name, int64_t value);

  std::string ToJson() const;

  /// Serializes to `path` (truncating). The conventional name is
  /// BENCH_<bench_name>.json but any path is accepted.
  Status WriteToFile(const std::string& path) const;

 private:
  struct ConfigValue {
    enum class Kind { kString, kInt, kUInt, kDouble, kBool } kind;
    std::string str;
    int64_t i = 0;
    uint64_t u = 0;
    double d = 0;
    bool b = false;
  };
  struct Point {
    double x = 0;
    double y = 0;
    std::string label;
  };
  struct Series {
    std::string name;
    std::vector<Point> points;
  };

  Series* SeriesFor(std::string_view name);

  std::string bench_name_;
  std::vector<std::pair<std::string, ConfigValue>> config_;
  std::vector<Series> series_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, int64_t> gauges_;
};

}  // namespace dpr

#endif  // DPR_OBS_BENCH_ARTIFACT_H_
