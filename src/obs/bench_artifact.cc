#include "obs/bench_artifact.h"

#include <cstdio>
#include <utility>

#include "obs/histogram_json.h"
#include "obs/json.h"

namespace dpr {

BenchArtifact::BenchArtifact(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchArtifact::SetConfig(std::string_view key, std::string_view value) {
  ConfigValue v;
  v.kind = ConfigValue::Kind::kString;
  v.str = std::string(value);
  config_.emplace_back(std::string(key), std::move(v));
}

void BenchArtifact::SetConfig(std::string_view key, int64_t value) {
  ConfigValue v;
  v.kind = ConfigValue::Kind::kInt;
  v.i = value;
  config_.emplace_back(std::string(key), std::move(v));
}

void BenchArtifact::SetConfig(std::string_view key, uint64_t value) {
  ConfigValue v;
  v.kind = ConfigValue::Kind::kUInt;
  v.u = value;
  config_.emplace_back(std::string(key), std::move(v));
}

void BenchArtifact::SetConfig(std::string_view key, double value) {
  ConfigValue v;
  v.kind = ConfigValue::Kind::kDouble;
  v.d = value;
  config_.emplace_back(std::string(key), std::move(v));
}

void BenchArtifact::SetConfig(std::string_view key, bool value) {
  ConfigValue v;
  v.kind = ConfigValue::Kind::kBool;
  v.b = value;
  config_.emplace_back(std::string(key), std::move(v));
}

BenchArtifact::Series* BenchArtifact::SeriesFor(std::string_view name) {
  for (Series& s : series_) {
    if (s.name == name) return &s;
  }
  series_.emplace_back();
  series_.back().name = std::string(name);
  return &series_.back();
}

void BenchArtifact::AddPoint(std::string_view series, double x, double y,
                             std::string_view label) {
  Point p;
  p.x = x;
  p.y = y;
  p.label = std::string(label);
  SeriesFor(series)->points.push_back(std::move(p));
}

void BenchArtifact::AddTimeline(const Timeline& timeline) {
  for (const TimelineEvent& ev : timeline.events()) {
    AddPoint(ev.series, ev.t_seconds, ev.value, ev.label);
  }
}

void BenchArtifact::AddHistogram(std::string_view name, const Histogram& h) {
  histograms_[std::string(name)] = h;
}

void BenchArtifact::AddHistogram(std::string_view name,
                                 const ShardedHistogram& h) {
  h.SnapshotInto(&histograms_[std::string(name)]);
}

void BenchArtifact::AddSnapshot(const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    if (value != 0) counters_[name] = value;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (value != 0) gauges_[name] = value;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    if (h.count() != 0) histograms_[name] = h;
  }
}

void BenchArtifact::AddCounter(std::string_view name, uint64_t value) {
  counters_[std::string(name)] = value;
}

void BenchArtifact::AddGauge(std::string_view name, int64_t value) {
  gauges_[std::string(name)] = value;
}

std::string BenchArtifact::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(bench_name_);
  w.Key("config").BeginObject();
  for (const auto& [key, v] : config_) {
    w.Key(key);
    switch (v.kind) {
      case ConfigValue::Kind::kString: w.String(v.str); break;
      case ConfigValue::Kind::kInt: w.Int(v.i); break;
      case ConfigValue::Kind::kUInt: w.UInt(v.u); break;
      case ConfigValue::Kind::kDouble: w.Double(v.d); break;
      case ConfigValue::Kind::kBool: w.Bool(v.b); break;
    }
  }
  w.EndObject();
  w.Key("series").BeginArray();
  for (const Series& s : series_) {
    w.BeginObject();
    w.Key("name").String(s.name);
    w.Key("points").BeginArray();
    for (const Point& p : s.points) {
      w.BeginObject();
      w.Key("x").Double(p.x);
      w.Key("y").Double(p.y);
      if (!p.label.empty()) w.Key("label").String(p.label);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name);
    HistogramToJson(h, &w);
  }
  w.EndObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters_) w.Key(name).UInt(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges_) w.Key(name).Int(value);
  w.EndObject();
  w.EndObject();
  return w.str();
}

Status BenchArtifact::WriteToFile(const std::string& path) const {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open json_out path: " + path);
  }
  const std::string json = ToJson();
  const size_t written = fwrite(json.data(), 1, json.size(), f);
  const bool newline_ok = fputc('\n', f) != EOF;
  if (fclose(f) != 0 || written != json.size() || !newline_ok) {
    return Status::IOError("short write to json_out path: " + path);
  }
  return Status::OK();
}

}  // namespace dpr
