#include "obs/histogram_json.h"

#include "obs/json.h"

namespace dpr {

void HistogramToJson(const Histogram& h, JsonWriter* w) {
  w->BeginObject();
  w->Key("count").UInt(h.count());
  w->Key("sum").UInt(h.sum());
  w->Key("min").UInt(h.count() == 0 ? 0 : h.min());
  w->Key("max").UInt(h.max());
  w->Key("mean").Double(h.Mean());
  w->Key("p50").UInt(h.Percentile(50));
  w->Key("p90").UInt(h.Percentile(90));
  w->Key("p99").UInt(h.Percentile(99));
  w->Key("p999").UInt(h.Percentile(99.9));
  w->Key("buckets").BeginArray();
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const uint64_t n = h.bucket_count(i);
    if (n == 0) continue;
    w->BeginArray().Int(i).UInt(n).EndArray();
  }
  w->EndArray();
  w->EndObject();
}

Status HistogramFromJson(const JsonValue& v, Histogram* out) {
  out->Reset();
  if (!v.is_object()) return Status::Corruption("histogram: not an object");
  const JsonValue* count = v.Find("count");
  const JsonValue* sum = v.Find("sum");
  const JsonValue* min = v.Find("min");
  const JsonValue* max = v.Find("max");
  const JsonValue* buckets = v.Find("buckets");
  if (count == nullptr || !count->is_number() || sum == nullptr ||
      !sum->is_number() || min == nullptr || !min->is_number() ||
      max == nullptr || !max->is_number() || buckets == nullptr ||
      !buckets->is_array()) {
    return Status::Corruption("histogram: missing field");
  }
  if (count->uint_value() == 0) return Status::OK();

  uint64_t counts[Histogram::kNumBuckets] = {};
  for (const JsonValue& entry : buckets->array()) {
    if (!entry.is_array() || entry.array().size() != 2 ||
        !entry.array()[0].is_number() || !entry.array()[1].is_number()) {
      return Status::Corruption("histogram: bad bucket entry");
    }
    const uint64_t index = entry.array()[0].uint_value();
    if (index >= static_cast<uint64_t>(Histogram::kNumBuckets)) {
      return Status::Corruption("histogram: bucket index out of range");
    }
    counts[index] += entry.array()[1].uint_value();
  }
  out->AbsorbCounts(counts, Histogram::kNumBuckets, count->uint_value(),
                    sum->uint_value(), min->uint_value(), max->uint_value());
  return Status::OK();
}

}  // namespace dpr
