#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace dpr {

// ----------------------------------------------------------------- writer

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;  // the key already emitted the separating colon
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  DPR_CHECK(!first_.empty());
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  DPR_CHECK(!first_.empty());
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  DPR_CHECK(!after_key_);
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  DPR_CHECK_MSG(first_.empty() && !after_key_,
                "JsonWriter: unbalanced scopes or dangling key");
  return out_;
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  return out;
}

// ----------------------------------------------------------------- parser

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    DPR_RETURN_NOT_OK(ParseValue(out));
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return Status::OK();
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::Corruption("json: " + msg + " at offset " +
                              std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) return Error(std::string("expected '") + c + "'");
    return Status::OK();
  }

  Status ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
      case 'f': return ParseLiteral(out);
      case 'n': return ParseLiteral(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseLiteral(JsonValue* out) {
    auto match = [&](std::string_view lit) {
      if (text_.substr(pos_, lit.size()) != lit) return false;
      pos_ += lit.size();
      return true;
    };
    if (match("true")) {
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = true;
      return Status::OK();
    }
    if (match("false")) {
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = false;
      return Status::OK();
    }
    if (match("null")) {
      out->type_ = JsonValue::Type::kNull;
      return Status::OK();
    }
    return Error("bad literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("bad number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number");
    if (integral && token[0] != '-') {
      out->uint_ = strtoull(token.c_str(), nullptr, 10);
    } else {
      out->uint_ = static_cast<uint64_t>(out->number_);
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    DPR_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const long cp = strtol(hex.c_str(), nullptr, 16);
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else {
            out->push_back('?');  // non-ASCII escapes are not round-tripped
          }
          break;
        }
        default: return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out) {
    DPR_RETURN_NOT_OK(Expect('['));
    out->type_ = JsonValue::Type::kArray;
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue element;
      DPR_RETURN_NOT_OK(ParseValue(&element));
      out->array_.push_back(std::move(element));
      if (Consume(']')) return Status::OK();
      DPR_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseObject(JsonValue* out) {
    DPR_RETURN_NOT_OK(Expect('{'));
    out->type_ = JsonValue::Type::kObject;
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipSpace();
      std::string key;
      DPR_RETURN_NOT_OK(ParseString(&key));
      DPR_RETURN_NOT_OK(Expect(':'));
      JsonValue value;
      DPR_RETURN_NOT_OK(ParseValue(&value));
      out->object_.emplace(std::move(key), std::move(value));
      if (Consume('}')) return Status::OK();
      DPR_RETURN_NOT_OK(Expect(','));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Status JsonValue::Parse(std::string_view text, JsonValue* out) {
  *out = JsonValue();
  return JsonParser(text).Parse(out);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

}  // namespace dpr
