#ifndef DPR_OBS_METRICS_H_
#define DPR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/histogram.h"
#include "common/sync.h"

namespace dpr {

/// Monotone event counter. All mutation is a single relaxed fetch_add, so
/// counters may sit directly on hot paths (batch admission, op completion).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  // relaxed: monotonic counter; snapshot readers tolerate slight staleness.
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed gauge (queue depths, live-entry counts, lags).
/// Relaxed atomics only: readers (snapshots, the harness) may observe any
/// recent value but never tear or race.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  /// Raises the gauge to at least `v` (peak tracking).
  void UpdateMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  // relaxed: gauge; any recent value is valid, no cross-field ordering.
  std::atomic<int64_t> value_{0};
};

/// Concurrent latency histogram: per-thread-sharded atomic buckets merged
/// only at snapshot time. Record() takes no lock — threads are spread
/// round-robin over kShards cache-line-aligned shards, and every shard field
/// is a relaxed atomic, so two threads sharing a shard (> kShards recording
/// threads) still race benignly. Snapshot() folds the shards into a plain
/// Histogram; concurrent with recording it is a fuzzy-but-consistent-enough
/// observability view (counts and buckets may differ by in-flight records).
class ShardedHistogram {
 public:
  static constexpr uint32_t kShards = 16;

  ShardedHistogram();

  void Record(uint64_t value_us) {
    Shard& s = shards_[ThreadShard()];
    s.buckets[Histogram::BucketFor(value_us)].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(value_us, std::memory_order_relaxed);
    uint64_t seen = s.min.load(std::memory_order_relaxed);
    while (value_us < seen && !s.min.compare_exchange_weak(
                                  seen, value_us, std::memory_order_relaxed)) {
    }
    seen = s.max.load(std::memory_order_relaxed);
    while (value_us > seen && !s.max.compare_exchange_weak(
                                  seen, value_us, std::memory_order_relaxed)) {
    }
    // Count last: a snapshot that sees the count sees the bucket too, or is
    // at worst one record fuzzy — never structurally inconsistent.
    s.count.fetch_add(1, std::memory_order_relaxed);
  }

  /// Merges all shards into `out` (which is Reset first).
  void SnapshotInto(Histogram* out) const;
  Histogram Snapshot() const;
  uint64_t count() const;
  void ResetForTest();

 private:
  struct alignas(64) Shard {
    // relaxed throughout: each field is independently monotone-ish and a
    // snapshot merge may observe a sample in count but not yet in sum (or
    // vice versa) — bounded skew is the accepted cost of a lock-free Record.
    std::atomic<uint64_t> buckets[Histogram::kNumBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{~0ull};
    std::atomic<uint64_t> max{0};
  };

  /// Stable per-thread shard index, assigned round-robin on first use.
  static uint32_t ThreadShard();

  std::unique_ptr<Shard[]> shards_;
};

/// A consistent-at-a-point copy of every registered metric, suitable for
/// diffing (benches) and serializing (JsonWriter / BenchArtifact).
struct MetricsSnapshot {
  uint64_t taken_us = 0;  // monotonic clock
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram> histograms;

  /// Subtracts `base`'s counters (gauges and histograms are left absolute):
  /// the per-run delta view benches print.
  void SubtractCounters(const MetricsSnapshot& base);

  /// {"taken_us":..., "counters":{...}, "gauges":{...},
  ///  "histograms":{name:{count,sum,min,max,mean,p50,...,buckets:[[i,n]..]}}}
  std::string ToJson() const;
};

/// Process-wide registry of named metrics. Registration (name lookup) takes
/// a mutex and is meant to happen once per call site — hot paths cache the
/// returned pointer, which stays valid for the registry's lifetime (metrics
/// are never removed). Names are dotted paths, e.g. "dpr.session.op_commit_us".
class MetricsRegistry {
 public:
  /// The process-global default registry every subsystem publishes to.
  static MetricsRegistry& Default();

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  ShardedHistogram* histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric in place; registered pointers stay
  /// valid. Tests and benches isolate themselves with this — production
  /// code never resets.
  void ResetForTest();

 private:
  mutable Mutex mu_{LockRank::kObs, "metrics.registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<ShardedHistogram>, std::less<>>
      histograms_ GUARDED_BY(mu_);
};

}  // namespace dpr

#endif  // DPR_OBS_METRICS_H_
