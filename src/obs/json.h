#ifndef DPR_OBS_JSON_H_
#define DPR_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dpr {

/// Minimal streaming JSON serializer for metrics snapshots and bench
/// artifacts. Scope-aware: commas and key/value colons are inserted
/// automatically; the caller is responsible for balanced Begin/End calls
/// (DPR_CHECKed in str()).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object member key; must be followed by exactly one value (or scope).
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  /// Non-finite doubles serialize as null (JSON has no NaN/Inf).
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Finished document. Dies if scopes are unbalanced.
  const std::string& str() const;

  static std::string Escape(std::string_view raw);

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open scope: true until the first element is emitted.
  std::vector<bool> first_;
  bool after_key_ = false;
};

/// Parsed JSON document node. The parser accepts the subset JsonWriter
/// emits (strict JSON, UTF-8 passthrough, \uXXXX escapes decoded only for
/// ASCII) — enough for artifact validation and golden tests without an
/// external dependency.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  static Status Parse(std::string_view text, JsonValue* out);

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  /// Exact unsigned value when the literal was integral and in range;
  /// otherwise a truncation of number().
  uint64_t uint_value() const { return uint_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  uint64_t uint_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace dpr

#endif  // DPR_OBS_JSON_H_
