#include "obs/metrics.h"

#include "common/clock.h"
#include "obs/histogram_json.h"
#include "obs/json.h"

namespace dpr {

ShardedHistogram::ShardedHistogram()
    : shards_(std::make_unique<Shard[]>(kShards)) {}

uint32_t ShardedHistogram::ThreadShard() {
  // relaxed: shard-id allocator, uniqueness only — no ordering duty.
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void ShardedHistogram::SnapshotInto(Histogram* out) const {
  out->Reset();
  uint64_t counts[Histogram::kNumBuckets];
  for (uint32_t s = 0; s < kShards; ++s) {
    const Shard& shard = shards_[s];
    const uint64_t count = shard.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      counts[i] = shard.buckets[i].load(std::memory_order_relaxed);
    }
    out->AbsorbCounts(counts, Histogram::kNumBuckets, count,
                      shard.sum.load(std::memory_order_relaxed),
                      shard.min.load(std::memory_order_relaxed),
                      shard.max.load(std::memory_order_relaxed));
  }
}

Histogram ShardedHistogram::Snapshot() const {
  Histogram h;
  SnapshotInto(&h);
  return h;
}

uint64_t ShardedHistogram::count() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < kShards; ++s) {
    total += shards_[s].count.load(std::memory_order_relaxed);
  }
  return total;
}

void ShardedHistogram::ResetForTest() {
  for (uint32_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(~0ull, std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
  }
}

void MetricsSnapshot::SubtractCounters(const MetricsSnapshot& base) {
  for (auto& [name, value] : counters) {
    auto it = base.counters.find(name);
    if (it != base.counters.end() && it->second <= value) {
      value -= it->second;
    }
  }
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("taken_us").UInt(taken_us);
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) w.Key(name).UInt(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) w.Key(name).Int(value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms) {
    w.Key(name);
    HistogramToJson(h, &w);
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  MutexLock guard(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  MutexLock guard(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

ShardedHistogram* MetricsRegistry::histogram(std::string_view name) {
  MutexLock guard(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<ShardedHistogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.taken_us = NowMicros();
  MutexLock guard(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    h->SnapshotInto(&snap.histograms[name]);
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  MutexLock guard(mu_);
  for (auto& [name, c] : counters_) c->ResetForTest();
  for (auto& [name, g] : gauges_) g->ResetForTest();
  for (auto& [name, h] : histograms_) h->ResetForTest();
}

}  // namespace dpr
