#include "ckpt/cadence.h"

#include <algorithm>

#include "obs/metrics.h"

namespace dpr {
namespace {

struct CadenceMetrics {
  Counter* decisions;
  Counter* skips;
  Counter* fulls;
  Counter* deltas;
  Gauge* interval_us;
  Gauge* dirty_bytes;
};

const CadenceMetrics& Metrics() {
  static const CadenceMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return CadenceMetrics{r.counter("ckpt.controller.decisions"),
                          r.counter("ckpt.controller.skips"),
                          r.counter("ckpt.controller.fulls"),
                          r.counter("ckpt.controller.deltas"),
                          r.gauge("ckpt.controller.interval_us"),
                          r.gauge("ckpt.controller.dirty_bytes")};
  }();
  return m;
}

// EWMA smoothing factor for the ingest-rate estimate. High enough to track
// workload shifts within a few ticks, low enough that one bursty tick does
// not whipsaw the cadence.
constexpr double kRateAlpha = 0.3;

}  // namespace

CkptPolicy CkptPolicy::Resolve(uint64_t base_interval_us) const {
  CkptPolicy p = *this;
  if (p.min_interval_us == 0) {
    p.min_interval_us = std::max<uint64_t>(base_interval_us / 4, 1000);
  }
  if (p.max_interval_us == 0) p.max_interval_us = base_interval_us;
  if (p.max_interval_us < p.min_interval_us) {
    p.max_interval_us = p.min_interval_us;
  }
  if (p.full_every == 0) p.full_every = 1;
  return p;
}

CkptCadenceController::CkptCadenceController(const CkptPolicy& policy)
    : policy_(policy) {}

CkptDecision CkptCadenceController::Decide(const CkptSignals& signals,
                                           uint64_t now_us) {
  Metrics().decisions->Add();
  Metrics().dirty_bytes->Set(static_cast<int64_t>(signals.dirty_bytes));

  const uint64_t elapsed = now_us > last_now_us_ ? now_us - last_now_us_ : 0;
  if (last_now_us_ == 0) watermark_changed_us_ = now_us;
  if (signals.committed_watermark != last_watermark_) {
    last_watermark_ = signals.committed_watermark;
    watermark_changed_us_ = now_us;
  }

  // Ingest estimate: bytes appended during the last window. When the last
  // tick checkpointed, the dirty counter was reset to ~0, so the current
  // reading IS the window's ingest; when it skipped, only the growth is.
  uint64_t appended = signals.dirty_bytes;
  if (last_was_skip_ && signals.dirty_bytes >= last_dirty_bytes_) {
    appended = signals.dirty_bytes - last_dirty_bytes_;
  }
  if (elapsed > 0) {
    const double rate = static_cast<double>(appended) / elapsed;
    ewma_rate_ = ewma_rate_ == 0.0
                     ? rate
                     : kRateAlpha * rate + (1.0 - kRateAlpha) * ewma_rate_;
  }
  last_now_us_ = now_us;
  last_dirty_bytes_ = signals.dirty_bytes;

  CkptDecision d;
  if (!policy_.adaptive) {
    // Historical behavior: fixed cadence, every checkpoint a full
    // fold-over (no index image riding in the meta WAL).
    last_was_skip_ = false;
    d.action = CkptAction::kFull;
    d.next_delay_us = policy_.max_interval_us;
    Metrics().fulls->Add();
    Metrics().interval_us->Set(static_cast<int64_t>(d.next_delay_us));
    return d;
  }

  if (signals.dirty_bytes == 0 && issued_any_) {
    // Idle shard: nothing new to persist, so skip the checkpoint (no WAL
    // append, no fsync). DPR-safe: the cut is a per-worker vector, and an
    // idle worker's row already covers every version a peer can depend
    // on; the caller still refreshes the persisted watermark each tick.
    last_was_skip_ = true;
    d.action = CkptAction::kSkip;
    d.next_delay_us = policy_.max_interval_us;
    Metrics().skips->Add();
    Metrics().interval_us->Set(static_cast<int64_t>(d.next_delay_us));
    return d;
  }
  last_was_skip_ = false;

  // Cadence: aim for target_dirty_bytes of fresh log per checkpoint, but
  // never stretch past the configured RPO ceiling while data is at risk.
  double interval = static_cast<double>(policy_.max_interval_us);
  if (ewma_rate_ > 0.0) {
    interval = static_cast<double>(policy_.target_dirty_bytes) / ewma_rate_;
  }
  // Pressure: a deep exception list means ops are parked waiting for
  // their versions to commit, and a stale cut means the commit frontier
  // itself is lagging — both call for tighter cadence.
  if (signals.exception_list_len > policy_.exception_pressure) {
    interval *= 0.5;
  }
  const uint64_t cut_age =
      now_us > watermark_changed_us_ ? now_us - watermark_changed_us_ : 0;
  if (cut_age > 4 * policy_.max_interval_us) interval *= 0.5;
  // A congested fsync scheduler pushes the other way: adding checkpoints
  // to a saturated device only lengthens every group commit.
  if (signals.storage_queue_depth > policy_.queue_pressure) interval *= 2.0;
  const uint64_t clamped = std::clamp(
      static_cast<uint64_t>(interval), policy_.min_interval_us,
      policy_.max_interval_us);

  const bool full = !issued_any_ || since_full_ + 1 >= policy_.full_every;
  issued_any_ = true;
  since_full_ = full ? 0 : since_full_ + 1;
  d.action = full ? CkptAction::kFull : CkptAction::kDelta;
  d.next_delay_us = clamped;
  (full ? Metrics().fulls : Metrics().deltas)->Add();
  Metrics().interval_us->Set(static_cast<int64_t>(d.next_delay_us));
  return d;
}

}  // namespace dpr
