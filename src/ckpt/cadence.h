#ifndef DPR_CKPT_CADENCE_H_
#define DPR_CKPT_CADENCE_H_

#include <cstdint>

namespace dpr {

/// Recovery-point-objective policy for one shard's checkpoint cadence.
///
/// The configured `checkpoint_interval_us` (DprWorkerOptions) remains the
/// RPO ceiling: whenever the shard holds un-checkpointed data, the adaptive
/// controller never waits longer than that interval, so every existing
/// latency expectation still holds. Adaptivity works in the other two
/// directions — hot shards checkpoint *more* often (targeting
/// `target_dirty_bytes` per checkpoint), and idle shards skip the
/// checkpoint entirely (no WAL append, no fsync) while still ticking so
/// the persisted-watermark keeps refreshing.
struct CkptPolicy {
  /// false: byte-compatible with the historical behavior — one full
  /// fold-over checkpoint every `checkpoint_interval_us`, never skipped.
  bool adaptive = true;
  /// Cadence floor for hot shards. 0 derives base_interval / 4 (>= 1ms).
  uint64_t min_interval_us = 0;
  /// Cadence ceiling while dirty data exists (the RPO). 0 derives
  /// base_interval.
  uint64_t max_interval_us = 0;
  /// The controller aims for roughly this many newly dirtied log bytes
  /// per checkpoint: interval ~= target_dirty_bytes / ingest_rate.
  uint64_t target_dirty_bytes = 1 << 20;
  /// Every Nth persisted checkpoint carries a full hash-index image (a
  /// chain base); the rest are deltas. 1 = all full, 0 = treated as 1.
  uint32_t full_every = 16;
  /// Exception-list occupancy above this shortens the interval (ops are
  /// stuck uncommitted behind the cut; commit more often).
  int64_t exception_pressure = 64;
  /// storage.sched queue depth above this stretches the interval toward
  /// the RPO ceiling (the device is congested; do not pile on).
  int64_t queue_pressure = 16;

  /// Legacy shape: fixed cadence, full fold-overs, no skips.
  static CkptPolicy FixedInterval() {
    CkptPolicy p;
    p.adaptive = false;
    return p;
  }

  /// Fills the derived fields from the worker's configured interval.
  CkptPolicy Resolve(uint64_t base_interval_us) const;
};

/// Live signals sampled by the shard owner right before each decision.
/// All fields are best-effort snapshots; the controller only ever uses
/// them to pick a cadence, never for correctness.
struct CkptSignals {
  /// Log bytes appended but not yet covered by a stamped checkpoint
  /// (tail - read_only boundary). 0 means the shard is idle.
  uint64_t dirty_bytes = 0;
  /// The worker's persisted DPR watermark; staleness while dirty data
  /// exists means the cut is lagging and the cadence should tighten.
  uint64_t committed_watermark = 0;
  /// dpr.session.exception_list gauge (ops excluded from the commit
  /// prefix, waiting for their versions to commit).
  int64_t exception_list_len = 0;
  /// storage.sched.pending gauge (fsync scheduler backlog on this box).
  int64_t storage_queue_depth = 0;
};

enum class CkptAction {
  kSkip,   // no checkpoint this tick (idle shard; no I/O)
  kDelta,  // checkpoint with a delta hash-index image
  kFull,   // checkpoint with a full hash-index image (chain base)
};

struct CkptDecision {
  CkptAction action = CkptAction::kFull;
  /// Delay until the next Decide() call.
  uint64_t next_delay_us = 0;
};

/// Per-shard checkpoint cadence controller (ROADMAP "adaptive incremental
/// checkpointing"; scheduling shape follows ACIiL's interval-driven
/// checkpointing). Owns an ingest-rate EWMA and the full/delta rotation.
///
/// Not thread-safe: one controller per checkpoint timer thread.
class CkptCadenceController {
 public:
  /// `policy` must already be Resolve()d (non-zero min/max intervals).
  explicit CkptCadenceController(const CkptPolicy& policy);

  /// Decides what the tick at `now_us` should do. Call exactly once per
  /// timer tick; the controller assumes a non-skip decision is acted on.
  CkptDecision Decide(const CkptSignals& signals, uint64_t now_us);

  const CkptPolicy& policy() const { return policy_; }

 private:
  const CkptPolicy policy_;
  uint64_t last_now_us_ = 0;
  uint64_t last_dirty_bytes_ = 0;
  bool last_was_skip_ = true;
  // Bytes-per-microsecond ingest estimate, exponentially smoothed.
  double ewma_rate_ = 0.0;
  uint64_t last_watermark_ = 0;
  uint64_t watermark_changed_us_ = 0;
  // Persisted checkpoints issued since the last full; the first
  // checkpoint a controller issues is always full.
  uint32_t since_full_ = 0;
  bool issued_any_ = false;
};

}  // namespace dpr

#endif  // DPR_CKPT_CADENCE_H_
