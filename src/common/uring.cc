#include "common/uring.h"

#if DPR_HAVE_IOURING

#include <errno.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include "common/logging.h"

namespace dpr {

namespace {

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringRegister(int fd, unsigned opcode, const void* arg,
                       unsigned nr_args) {
  return static_cast<int>(
      syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

}  // namespace

int UringRing::Enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                     unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

UringRing::~UringRing() {
  if (ring_fd_ >= 0) Teardown();
}

bool UringRing::Init(uint32_t entries) {
  io_uring_params p;
  memset(&p, 0, sizeof(p));
  ring_fd_ = SysIoUringSetup(entries, &p);
  if (ring_fd_ < 0) return false;

  sq_entries_ = p.sq_entries;
  size_t sq_size = p.sq_off.array + p.sq_entries * sizeof(uint32_t);
  size_t cq_size = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  single_mmap_ = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap_ && cq_size > sq_size) sq_size = cq_size;

  sq_ring_sz_ = sq_size;
  sq_ring_ = mmap(nullptr, sq_size, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    close(ring_fd_);
    ring_fd_ = -1;
    return false;
  }
  if (single_mmap_) {
    cq_ring_ = sq_ring_;
    cq_ring_sz_ = 0;
  } else {
    cq_ring_sz_ = cq_size;
    cq_ring_ = mmap(nullptr, cq_size, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      munmap(sq_ring_, sq_ring_sz_);
      close(ring_fd_);
      ring_fd_ = -1;
      return false;
    }
  }
  sqes_sz_ = p.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(
      mmap(nullptr, sqes_sz_, PROT_READ | PROT_WRITE,
           MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    if (!single_mmap_) munmap(cq_ring_, cq_ring_sz_);
    munmap(sq_ring_, sq_ring_sz_);
    close(ring_fd_);
    ring_fd_ = -1;
    return false;
  }

  auto* sq = static_cast<char*>(sq_ring_);
  sq_head_ = reinterpret_cast<std::atomic<uint32_t>*>(sq + p.sq_off.head);
  sq_tail_ = reinterpret_cast<std::atomic<uint32_t>*>(sq + p.sq_off.tail);
  sq_mask_ = *reinterpret_cast<uint32_t*>(sq + p.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<uint32_t*>(sq + p.sq_off.array);

  auto* cq = static_cast<char*>(cq_ring_);
  cq_head_ = reinterpret_cast<std::atomic<uint32_t>*>(cq + p.cq_off.head);
  cq_tail_ = reinterpret_cast<std::atomic<uint32_t>*>(cq + p.cq_off.tail);
  cq_mask_ = *reinterpret_cast<uint32_t*>(cq + p.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
  return true;
}

void UringRing::Teardown() {
  munmap(sqes_, sqes_sz_);
  if (!single_mmap_) munmap(cq_ring_, cq_ring_sz_);
  munmap(sq_ring_, sq_ring_sz_);
  close(ring_fd_);
  ring_fd_ = -1;
}

void UringRing::PushSqe(const io_uring_sqe& sqe) {
  // relaxed tail read: the caller is the only SQ producer; the kernel side
  // only advances head, which we pair with acquire below.
  uint32_t tail = sq_tail_->load(std::memory_order_relaxed);
  while (tail - sq_head_->load(std::memory_order_acquire) >= sq_entries_) {
    SubmitPending();
  }
  const uint32_t idx = tail & sq_mask_;
  sqes_[idx] = sqe;
  sq_array_[idx] = idx;
  sq_tail_->store(tail + 1, std::memory_order_release);
  ++pending_flush_;
}

unsigned UringRing::SubmitPending() {
  unsigned enters = 0;
  while (pending_flush_ > 0) {
    const int r = Enter(ring_fd_, pending_flush_, 0, 0);
    ++enters;
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EBUSY) continue;
      DPR_CHECK_MSG(false, "io_uring_enter failed: %s", strerror(errno));
    }
    pending_flush_ -= static_cast<unsigned>(r);
  }
  return enters;
}

unsigned UringRing::SubmitAndWait(unsigned min_complete) {
  unsigned enters = 0;
  for (;;) {
    const int r = Enter(ring_fd_, pending_flush_, min_complete,
                        IORING_ENTER_GETEVENTS);
    ++enters;
    if (r >= 0) {
      pending_flush_ -= static_cast<unsigned>(r);
      if (pending_flush_ == 0) return enters;
      // Partial SQ consumption (CQ-overflow backpressure): keep flushing,
      // the wait condition was already satisfied or will re-arm next call.
      continue;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EBUSY) continue;
    DPR_CHECK_MSG(false, "io_uring_enter(submit+wait) failed: %s",
                  strerror(errno));
  }
}

void UringRing::EnterWait(unsigned min_complete) {
  const int r = Enter(ring_fd_, 0, min_complete, IORING_ENTER_GETEVENTS);
  if (r < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY) {
    DPR_CHECK_MSG(false, "io_uring_enter(GETEVENTS) failed: %s",
                  strerror(errno));
  }
}

bool UringRing::RegisterBufRing(void* ring_addr, uint32_t entries,
                                uint16_t bgid) {
// IORING_REGISTER_PBUF_RING is an enum value, not a macro, so it cannot be
// probed with #ifdef; IORING_RECV_MULTISHOT (a macro from the same header
// generation, 6.0) proxies for the whole provided-buffer-ring UAPI.
#ifdef IORING_RECV_MULTISHOT
  io_uring_buf_reg reg;
  memset(&reg, 0, sizeof(reg));
  reg.ring_addr = reinterpret_cast<uint64_t>(ring_addr);
  reg.ring_entries = entries;
  reg.bgid = bgid;
  return SysIoUringRegister(ring_fd_, IORING_REGISTER_PBUF_RING, &reg, 1) == 0;
#else
  (void)ring_addr;
  (void)entries;
  (void)bgid;
  return false;
#endif
}

void UringRing::UnregisterBufRing(uint16_t bgid) {
#ifdef IORING_RECV_MULTISHOT
  io_uring_buf_reg reg;
  memset(&reg, 0, sizeof(reg));
  reg.bgid = bgid;
  SysIoUringRegister(ring_fd_, IORING_UNREGISTER_PBUF_RING, &reg, 1);
#else
  (void)bgid;
#endif
}

bool UringRing::ProbeOpcode(uint8_t opcode) const {
  // The probe struct is variable-length (flexible ops[] tail), so it lives
  // in a raw buffer sized for every opcode this kernel could report.
  constexpr unsigned kOps = 256;
  alignas(io_uring_probe) unsigned char buf[sizeof(io_uring_probe) +
                                            kOps * sizeof(io_uring_probe_op)];
  memset(buf, 0, sizeof(buf));
  auto* probe = reinterpret_cast<io_uring_probe*>(buf);
  if (SysIoUringRegister(ring_fd_, IORING_REGISTER_PROBE, probe, kOps) != 0) {
    return false;
  }
  if (opcode > probe->last_op) return false;
  return (probe->ops[opcode].flags & IO_URING_OP_SUPPORTED) != 0;
}

}  // namespace dpr

#endif  // DPR_HAVE_IOURING
