#ifndef DPR_COMMON_HISTOGRAM_H_
#define DPR_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dpr {

/// Log-bucketed latency histogram (HdrHistogram-style, base-2 buckets with
/// linear sub-buckets). Records values in microseconds. Thread-compatible;
/// callers merge per-thread instances for concurrent recording.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value_us);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  /// p in [0, 100]; returns the approximate value at that percentile.
  uint64_t Percentile(double p) const;

  /// One-line summary: "count=... mean=...us p50=... p99=... max=...".
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 linear sub-buckets/octave
  static constexpr int kNumBuckets = 64 * (1 << kSubBucketBits);

  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace dpr

#endif  // DPR_COMMON_HISTOGRAM_H_
