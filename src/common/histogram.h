#ifndef DPR_COMMON_HISTOGRAM_H_
#define DPR_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dpr {

/// Log-bucketed latency histogram (HdrHistogram-style, base-2 buckets with
/// linear sub-buckets). Records values in microseconds. Thread-compatible;
/// callers merge per-thread instances for concurrent recording (see
/// obs::ShardedHistogram for the lock-free concurrent wrapper).
class Histogram {
 public:
  /// Bucket layout, shared with ShardedHistogram shards and the JSON
  /// serialization of snapshots.
  static constexpr int kSubBucketBits = 5;  // 32 linear sub-buckets/octave
  static constexpr int kNumBuckets = 64 * (1 << kSubBucketBits);

  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  Histogram();

  void Record(uint64_t value_us);
  void Merge(const Histogram& other);
  void Reset();

  /// Folds raw bucket counts (a ShardedHistogram shard, or a deserialized
  /// snapshot) into this histogram. `bucket_counts` holds `n` <= kNumBuckets
  /// leading bucket counters; `count`/`sum`/`min`/`max` are the shard's
  /// aggregates. A shard with count == 0 is ignored entirely so its min/max
  /// sentinels never leak into a live histogram.
  void AbsorbCounts(const uint64_t* bucket_counts, int n, uint64_t count,
                    uint64_t sum, uint64_t min, uint64_t max);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  uint64_t bucket_count(int bucket) const { return buckets_[bucket]; }
  double Mean() const;
  /// p in [0, 100]: nearest-rank percentile — the value at rank
  /// ceil(p/100 * count) (1-based), reported as that rank's bucket upper
  /// bound clamped to the recorded [min, max]. p = 0 returns the exact
  /// recorded minimum and p = 100 the exact maximum.
  uint64_t Percentile(double p) const;

  /// One-line summary: "count=... mean=...us p50=... p99=... max=...".
  std::string Summary() const;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace dpr

#endif  // DPR_COMMON_HISTOGRAM_H_
