#include "common/status.h"

namespace dpr {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kTimedOut:
      return "TimedOut";
    case Status::Code::kNotOwner:
      return "NotOwner";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kTransient:
      return "Transient";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dpr
