#ifndef DPR_COMMON_STATUS_H_
#define DPR_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace dpr {

/// Outcome of an operation. Modeled after the RocksDB/Arrow Status idiom:
/// cheap to construct for OK, carries a code plus a human-readable message
/// otherwise. No exceptions are used anywhere on hot paths.
///
/// [[nodiscard]]: silently dropping a Status is how torn-write and
/// lost-persistence bugs hide. The compiler enforces this wherever the call
/// is direct; dprlint's `status-discard` check covers the indirect cases
/// (calls through harvested signatures) on clang-less boxes too. An
/// intentional discard is spelled `(void)Foo();` with a comment saying why.
class [[nodiscard]] Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kInvalidArgument = 2,
    kIOError = 3,
    kCorruption = 4,
    kNotSupported = 5,
    kBusy = 6,
    kAborted = 7,         // request rejected because of a world-line mismatch
    kTimedOut = 8,
    kNotOwner = 9,        // key not owned by the contacted worker
    kUnavailable = 10,    // transient failure; retry later
    kTransient = 11,      // retryable transport/service hiccup
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = "") {
    return Status(Code::kNotFound, std::string(msg));
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, std::string(msg));
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, std::string(msg));
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, std::string(msg));
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, std::string(msg));
  }
  static Status Busy(std::string_view msg = "") {
    return Status(Code::kBusy, std::string(msg));
  }
  static Status Aborted(std::string_view msg = "") {
    return Status(Code::kAborted, std::string(msg));
  }
  static Status TimedOut(std::string_view msg = "") {
    return Status(Code::kTimedOut, std::string(msg));
  }
  static Status NotOwner(std::string_view msg = "") {
    return Status(Code::kNotOwner, std::string(msg));
  }
  static Status Unavailable(std::string_view msg = "") {
    return Status(Code::kUnavailable, std::string(msg));
  }
  static Status Transient(std::string_view msg = "") {
    return Status(Code::kTransient, std::string(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsNotOwner() const { return code_ == Code::kNotOwner; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsTransient() const { return code_ == Code::kTransient; }
  /// True for codes a caller may retry verbatim: the operation failed for a
  /// reason expected to clear on its own (contention, slow peer, dropped
  /// packet), as opposed to a fatal or semantic rejection.
  bool IsRetryable() const {
    return code_ == Code::kBusy || code_ == Code::kTimedOut ||
           code_ == Code::kUnavailable || code_ == Code::kTransient;
  }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Code code_;
  std::string message_;
};

/// Status-or-value result, for APIs that today return Status plus an out
/// parameter. [[nodiscard]] for the same reason as Status: a discarded
/// StatusOr silently drops both the error and the value.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a (non-OK) Status — `return Status::NotFound();` works.
  /// Constructing from an OK Status is a bug; it degrades to kNotFound so
  /// ok() can never be true without a value present.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(status.ok() ? Status::NotFound("StatusOr from OK Status")
                            : std::move(status)) {}
  /// Implicit from a value — `return computed;` works.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). (No exceptions on hot paths; callers check first,
  /// exactly as they do for Status + out-parameter APIs.)
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

/// Evaluates `expr`; returns the non-OK status from the enclosing function.
#define DPR_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::dpr::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (false)

}  // namespace dpr

#endif  // DPR_COMMON_STATUS_H_
