#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

namespace dpr {

Histogram::Histogram()
    : buckets_(kNumBuckets, 0),
      count_(0),
      sum_(0),
      min_(std::numeric_limits<uint64_t>::max()),
      max_(0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < (1u << kSubBucketBits)) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(value);
  const int octave = msb - kSubBucketBits + 1;
  const int sub =
      static_cast<int>((value >> (msb - kSubBucketBits)) & ((1 << kSubBucketBits) - 1));
  const int idx = ((octave + 1) << kSubBucketBits) + sub;
  return std::min(idx, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < (1 << kSubBucketBits)) return static_cast<uint64_t>(bucket);
  const int octave = (bucket >> kSubBucketBits) - 1;
  const int sub = bucket & ((1 << kSubBucketBits) - 1);
  const int msb = octave + kSubBucketBits - 1;
  const uint64_t base = 1ULL << msb;
  return base + (static_cast<uint64_t>(sub + 1) << (msb - kSubBucketBits)) - 1;
}

void Histogram::Record(uint64_t value_us) {
  buckets_[BucketFor(value_us)]++;
  count_++;
  sum_ += value_us;
  min_ = std::min(min_, value_us);
  max_ = std::max(max_, value_us);
}

void Histogram::Merge(const Histogram& other) {
  // An empty histogram carries min_'s "never recorded" sentinel (and a zero
  // max_); merging it must be a no-op so those sentinels cannot clobber or
  // constrain a live histogram's extremes.
  if (other.count_ == 0) return;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::AbsorbCounts(const uint64_t* bucket_counts, int n,
                             uint64_t count, uint64_t sum, uint64_t min,
                             uint64_t max) {
  if (count == 0) return;  // empty shard: min/max are sentinels, ignore
  n = std::min(n, kNumBuckets);
  for (int i = 0; i < n; ++i) buckets_[i] += bucket_counts[i];
  count_ += count;
  sum_ += sum;
  min_ = std::min(min_, min);
  max_ = std::max(max_, max);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  // p = 0 is "the smallest recorded value": answer exactly, not with the
  // first occupied bucket's upper bound (which overshoots min by up to one
  // sub-bucket). Likewise p = 100 is exactly max.
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Nearest-rank: the value at 1-based rank ceil(p/100 * count). (The old
  // `+0.5` cast rounded the rank to nearest instead of up, answering one
  // rank low for e.g. p=54, count=10, and degenerating to rank 0 for small
  // p.) Clamp to [1, count] so floating-point edge cases stay in range.
  const double exact = p / 100.0 * static_cast<double>(count_);
  uint64_t rank = static_cast<uint64_t>(std::ceil(exact));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      return std::clamp(BucketUpperBound(i), min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "count=%llu mean=%.1fus p50=%lluus p90=%lluus p99=%lluus "
           "p99.9=%lluus max=%lluus",
           static_cast<unsigned long long>(count_), Mean(),
           static_cast<unsigned long long>(Percentile(50)),
           static_cast<unsigned long long>(Percentile(90)),
           static_cast<unsigned long long>(Percentile(99)),
           static_cast<unsigned long long>(Percentile(99.9)),
           static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace dpr
