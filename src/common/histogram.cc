#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace dpr {

Histogram::Histogram()
    : buckets_(kNumBuckets, 0),
      count_(0),
      sum_(0),
      min_(std::numeric_limits<uint64_t>::max()),
      max_(0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < (1u << kSubBucketBits)) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(value);
  const int octave = msb - kSubBucketBits + 1;
  const int sub =
      static_cast<int>((value >> (msb - kSubBucketBits)) & ((1 << kSubBucketBits) - 1));
  const int idx = ((octave + 1) << kSubBucketBits) + sub;
  return std::min(idx, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < (1 << kSubBucketBits)) return static_cast<uint64_t>(bucket);
  const int octave = (bucket >> kSubBucketBits) - 1;
  const int sub = bucket & ((1 << kSubBucketBits) - 1);
  const int msb = octave + kSubBucketBits - 1;
  const uint64_t base = 1ULL << msb;
  return base + (static_cast<uint64_t>(sub + 1) << (msb - kSubBucketBits)) - 1;
}

void Histogram::Record(uint64_t value_us) {
  buckets_[BucketFor(value_us)]++;
  count_++;
  sum_ += value_us;
  min_ = std::min(min_, value_us);
  max_ = std::max(max_, value_us);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const auto threshold = static_cast<uint64_t>(
      p / 100.0 * static_cast<double>(count_) + 0.5);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= threshold && buckets_[i] > 0) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "count=%llu mean=%.1fus p50=%lluus p90=%lluus p99=%lluus "
           "p99.9=%lluus max=%lluus",
           static_cast<unsigned long long>(count_), Mean(),
           static_cast<unsigned long long>(Percentile(50)),
           static_cast<unsigned long long>(Percentile(90)),
           static_cast<unsigned long long>(Percentile(99)),
           static_cast<unsigned long long>(Percentile(99.9)),
           static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace dpr
