#include "common/hash.h"

namespace dpr {

uint64_t HashBytes(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

namespace {

struct Crc32cTable {
  uint32_t table[256];
  constexpr Crc32cTable() : table{} {
    // CRC32C (Castagnoli) polynomial, reflected.
    constexpr uint32_t kPoly = 0x82f63b78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      table[i] = crc;
    }
  }
};

constexpr Crc32cTable kCrcTable{};

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kCrcTable.table[(crc ^ p[i]) & 0xff];
  }
  return ~crc;
}

}  // namespace dpr
