#ifndef DPR_COMMON_SLICE_H_
#define DPR_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace dpr {

/// Non-owning view over a byte range; the referenced storage must outlive the
/// Slice. Thin wrapper kept for API familiarity with storage engines.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* s) : data_(s), size_(strlen(s)) {}               // NOLINT
  Slice(std::string_view sv) : data_(sv.data()), size_(sv.size()) {}  // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = 1;
    }
    return r;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() && memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

}  // namespace dpr

#endif  // DPR_COMMON_SLICE_H_
