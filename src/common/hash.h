#ifndef DPR_COMMON_HASH_H_
#define DPR_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace dpr {

/// 64-bit finalizer from MurmurHash3; good avalanche behaviour for integer
/// keys, used by the hash index and key-to-shard routing.
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// FNV-1a over an arbitrary byte range; used for string keys and metadata.
uint64_t HashBytes(const void* data, size_t n);

/// CRC32C (software, sliced) used to checksum log and checkpoint records.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace dpr

#endif  // DPR_COMMON_HASH_H_
