#include "common/logging.h"

#include <atomic>

namespace dpr {

namespace {
// relaxed: a racy level change may drop/admit a borderline message, which
// is fine; the sink itself serializes output.
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

}  // namespace dpr
