#ifndef DPR_COMMON_SYNC_H_
#define DPR_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

/// Compile-time concurrency-correctness plane.
///
/// Two cooperating layers live here:
///
///  1. Clang thread-safety annotations (the canonical macro set from
///     https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under clang
///     with -Wthread-safety (cmake -DDPR_ANALYZE=ON) every GUARDED_BY field
///     access and REQUIRES contract is checked at compile time; under other
///     compilers the macros expand to nothing and cost nothing.
///
///  2. A runtime lock-rank checker. Every dpr::Mutex/SharedMutex/SpinLatch
///     may carry a LockRank; a thread must acquire ranked locks in strictly
///     decreasing rank order (outermost subsystem first). An inversion — the
///     seed of a potential deadlock cycle — aborts immediately with the
///     acquisition stacks of both locks involved, turning "deadlocks if the
///     timing is unlucky" into a deterministic test failure. Unranked locks
///     (LockRank::kNone) skip the checker entirely and cost nothing.
///
/// All new code must use these wrappers; dprlint's `sync-prim` check (run
/// by scripts/check_analysis.sh and `ctest -L analysis`) rejects naked
/// std::mutex / std::lock_guard outside this header.

// --- thread-safety annotation macros ----------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define DPR_TS_ATTRIBUTE__(x) __attribute__((x))
#else
#define DPR_TS_ATTRIBUTE__(x)  // no-op outside clang
#endif

#define CAPABILITY(x) DPR_TS_ATTRIBUTE__(capability(x))
#define SCOPED_CAPABILITY DPR_TS_ATTRIBUTE__(scoped_lockable)
#define GUARDED_BY(x) DPR_TS_ATTRIBUTE__(guarded_by(x))
#define PT_GUARDED_BY(x) DPR_TS_ATTRIBUTE__(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) DPR_TS_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) DPR_TS_ATTRIBUTE__(acquired_after(__VA_ARGS__))
#define REQUIRES(...) DPR_TS_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DPR_TS_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) DPR_TS_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DPR_TS_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DPR_TS_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DPR_TS_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  DPR_TS_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  DPR_TS_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  DPR_TS_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) DPR_TS_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) DPR_TS_ATTRIBUTE__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  DPR_TS_ATTRIBUTE__(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) DPR_TS_ATTRIBUTE__(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  DPR_TS_ATTRIBUTE__(no_thread_safety_analysis)

namespace dpr {

// --- lock ranks -------------------------------------------------------------

/// Global lock-acquisition order, outermost first. A thread holding a lock of
/// rank R may only acquire locks of rank strictly less than R (kNone-ranked
/// locks are exempt). Two locks that can nest must therefore carry distinct
/// ranks; locks that never nest with anything may share a band or stay
/// unranked. The table mirrors the call structure documented in DESIGN.md §4f.
enum class LockRank : int {
  kNone = 0,  // unranked: checker skips this lock entirely

  // Leaf utilities — safe to take under anything.
  kObs = 20,            // obs::MetricsRegistry / Timeline
  kFault = 40,          // FaultPlane probe table
  kStorageIoWait = 44,  // stack SyncWaiter in Device blocking shims (taken by
                        // completion callbacks under any storage lock)
  kStorageEngine = 46,  // IoEngine submission queues / SQ tail (leaf-most
                        // storage lock: devices submit while holding kStorage)
  kStorage = 50,        // Device (leaf below consumers, above the engine)
  kStorageSched = 52,   // GroupCommitScheduler waiter table (taken by WAL /
                        // flush paths holding kStorageWal or kMetadata; may
                        // itself take kStorage via Device::SubmitFsync)
  kStorageWal = 55,     // WriteAheadLog tail (held across device writes)
  kExecutor = 58,       // shared request executor queue (submitted to while
                        // holding transport locks, never the reverse)
  kTransport = 60,      // tcp/in-memory transports (output queues, pending)
  kTransportLoop = 62,  // event-loop post queue + server conn registry (may
                        // precede per-conn kTransport locks on loop threads)
  kMetadata = 70,       // MetadataStore

  // DPR tracking plane.
  kDepTracker = 80,     // VersionDependencyTracker shard latches
  kSession = 100,       // DprSession
  kHarnessTopology = 105,  // harness cluster address/migration registries
                           // (taken under kClientEndpoints by the client's
                           // lazy-connect resolver; connects under it take
                           // only transport locks)
  kClientEndpoints = 108,  // dfaster client endpoint/connection registry
                           // (leaf: never nested with window/session locks)
  kClientTimer = 109,   // dfaster client retry-timer queue (leaf: taken with
                        // no other lock held — by transport callbacks
                        // scheduling retries and by the timer thread; tasks
                        // themselves run outside the lock)
  kClientWindow = 110,  // dredis/dfaster client pending-window locks

  // Finder plane (FinderCore: gate > compute > stage; remote: flush > queue
  // > snapshot — the two families never nest with each other).
  kFinderSnapshot = 112,
  kFinderStage = 114,
  kFinderQueue = 116,
  kFinderCompute = 118,
  kFinderIngestGate = 120,
  kFinderFlush = 122,

  // Store plane (flush pipeline may consult the checkpoint table).
  kStoreLog = 136,        // LogAllocator page table
  kStoreCheckpoints = 138,
  kStoreFlush = 142,      // flush/save pipeline locks, store maps

  // Worker / server plane.
  kMigrationChannel = 143,  // migration-channel rendezvous (acquired under
                            // kMigrationSeal to hand a batch to the
                            // installer thread / the RPC connection)
  kMigrationSeal = 145,  // per-partition seal state during live migration:
                         // serializes forwarded writes with drain chunks.
                         // Below kWorkerVersionLatch (taken while executing a
                         // batch under the shared latch), above store locks.
  kWorkerTimer = 148,
  kWorkerVersionLatch = 150,  // held across store checkpoints + finder reads
  kServer = 170,              // dredis/dfaster/resp server request locks

  // Cluster control plane — outermost; held across whole worker rollbacks.
  kClusterMembers = 190,
  kClusterRecovery = 200,
};

namespace lockrank {

/// Per-thread bookkeeping hooks, called by the wrappers below (and by the
/// annotated spin latches in common/latch.h). `lock` is an identity key;
/// `name` must outlive the lock (string literals only). OnAcquire aborts the
/// process on a rank inversion, printing the acquisition stack of the
/// youngest conflicting held lock alongside the current stack.
void OnAcquire(const void* lock, LockRank rank, const char* name);
void OnRelease(const void* lock, LockRank rank);

/// Number of ranked locks the calling thread currently holds (test hook).
int HeldCount();
/// Smallest rank currently held by the calling thread, or INT_MAX (test hook).
int MinHeldRank();

/// Acquisition stacks are recorded per held lock only when
/// DPR_LOCKRANK_STACKS=1 is in the environment (unwinding on every ranked
/// acquire is too slow for hot paths); the inversion report always includes
/// the *current* stack. Returns whether capture is enabled (test hook).
bool StacksEnabled();

}  // namespace lockrank

// --- mutex wrappers ---------------------------------------------------------

/// Annotated std::mutex with an optional lock rank. Exposes both Google-style
/// Lock()/Unlock() and BasicLockable lock()/unlock() so std::unique_lock and
/// CondVar interoperate (the lowercase aliases keep the rank bookkeeping).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank, const char* name = "mutex")
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    lockrank::OnAcquire(this, rank_, name_);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    // Rank bookkeeping strictly BEFORE the underlying release: the moment
    // mu_.unlock() returns, a woken waiter may destroy this Mutex (the
    // ~Session/WaitForAll pattern), so no member may be touched after it.
    lockrank::OnRelease(this, rank_);
    mu_.unlock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // A successful try-lock joins the held set like any acquire; a try-lock
    // that *would* invert ranks is still an ordering bug (the failure path
    // just hid it), so it checks too.
    lockrank::OnAcquire(this, rank_, name_);
    return true;
  }

  // BasicLockable / Lockable, for std::unique_lock<dpr::Mutex> and CondVar.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return TryLock(); }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const LockRank rank_ = LockRank::kNone;
  const char* const name_ = "mutex";
};

/// Annotated std::shared_mutex. Shared and exclusive acquisitions follow the
/// same rank discipline (a reader can participate in a deadlock cycle with a
/// writer just as easily as two writers can).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank, const char* name = "shared_mutex")
      : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    lockrank::OnAcquire(this, rank_, name_);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    // Bookkeeping before the release — see Mutex::Unlock.
    lockrank::OnRelease(this, rank_);
    mu_.unlock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockrank::OnAcquire(this, rank_, name_);
    return true;
  }
  void LockShared() ACQUIRE_SHARED() {
    lockrank::OnAcquire(this, rank_, name_);
    mu_.lock_shared();
  }
  void UnlockShared() RELEASE_SHARED() {
    // Bookkeeping before the release — see Mutex::Unlock.
    lockrank::OnRelease(this, rank_);
    mu_.unlock_shared();
  }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    lockrank::OnAcquire(this, rank_, name_);
    return true;
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_ = LockRank::kNone;
  const char* const name_ = "shared_mutex";
};

// --- scoped guards ----------------------------------------------------------

/// RAII exclusive guard over dpr::Mutex (the std::lock_guard replacement).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive guard over dpr::SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared guard over dpr::SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// --- condition variable -----------------------------------------------------

/// Annotated condition variable bound to dpr::Mutex. Built on
/// condition_variable_any so waits go through Mutex::lock()/unlock() and the
/// lock-rank bookkeeping stays exact across the wait's release/reacquire.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu, std::move(pred));
  }

  /// Returns false on timeout.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, timeout);
  }

  /// Returns pred()'s value at wakeup (false = timed out with pred false).
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Pred pred) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, timeout, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dpr

#endif  // DPR_COMMON_SYNC_H_
