#ifndef DPR_COMMON_LOGGING_H_
#define DPR_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace dpr {

/// Minimal leveled logging to stderr. Level is set once at startup (not
/// thread-safe to change while logging).
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

}  // namespace dpr

#define DPR_LOG_IMPL(level, tag, ...)                                 \
  do {                                                                \
    if (static_cast<int>(level) >=                                    \
        static_cast<int>(::dpr::GetLogLevel())) {                     \
      fprintf(stderr, "[%s %s:%d] ", tag, __FILE__, __LINE__);        \
      fprintf(stderr, __VA_ARGS__);                                   \
      fprintf(stderr, "\n");                                          \
    }                                                                 \
  } while (false)

#define DPR_DEBUG(...) DPR_LOG_IMPL(::dpr::LogLevel::kDebug, "DEBUG", __VA_ARGS__)
#define DPR_INFO(...) DPR_LOG_IMPL(::dpr::LogLevel::kInfo, "INFO", __VA_ARGS__)
#define DPR_WARN(...) DPR_LOG_IMPL(::dpr::LogLevel::kWarn, "WARN", __VA_ARGS__)
#define DPR_ERROR(...) DPR_LOG_IMPL(::dpr::LogLevel::kError, "ERROR", __VA_ARGS__)

/// Invariant check that stays on in release builds; databases prefer a loud
/// crash over silent corruption.
#define DPR_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) {                                                       \
      fprintf(stderr, "[FATAL %s:%d] check failed: %s\n", __FILE__,      \
              __LINE__, #cond);                                          \
      abort();                                                           \
    }                                                                    \
  } while (false)

#define DPR_CHECK_MSG(cond, ...)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      fprintf(stderr, "[FATAL %s:%d] check failed: %s: ", __FILE__,      \
              __LINE__, #cond);                                          \
      fprintf(stderr, __VA_ARGS__);                                      \
      fprintf(stderr, "\n");                                             \
      abort();                                                           \
    }                                                                    \
  } while (false)

#endif  // DPR_COMMON_LOGGING_H_
