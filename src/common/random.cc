#include "common/random.h"

#include <cmath>

namespace dpr {

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed,
                                   bool scramble)
    : n_(n), theta_(theta), scramble_(scramble), rng_(seed) {
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) const {
  // Exact summation is O(n); cap the work for very large key spaces with the
  // standard Euler–Maclaurin tail approximation, which keeps construction
  // cheap while staying within ~1e-4 relative error for theta in (0, 1).
  constexpr uint64_t kExactLimit = 1u << 22;
  double sum = 0.0;
  const uint64_t exact = n < kExactLimit ? n : kExactLimit;
  for (uint64_t i = 1; i <= exact; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > exact) {
    const double a = static_cast<double>(exact);
    const double b = static_cast<double>(n);
    // Integral of x^-theta from a to b plus half the endpoint corrections.
    sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
               (1.0 - theta) +
           0.5 * (1.0 / std::pow(b, theta) - 1.0 / std::pow(a, theta));
  }
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  uint64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    rank = 1;
  } else {
    rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= n_) rank = n_ - 1;
  }
  if (!scramble_) return rank;
  // Offset before mixing: Mix64(0) == 0, which would pin the hottest item
  // to key 0 and correlate skew with shard assignment.
  return Mix64(rank + 0x9e3779b97f4a7c15ULL) % n_;
}

}  // namespace dpr
