#include "common/sync.h"

#include <execinfo.h>
#include <unistd.h>

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dpr {
namespace lockrank {

namespace {

constexpr int kMaxHeld = 32;    // deeper nesting than this is itself a bug
constexpr int kMaxFrames = 24;

struct HeldLock {
  const void* lock = nullptr;
  int rank = 0;
  const char* name = nullptr;
  void* frames[kMaxFrames];
  int n_frames = 0;  // 0 unless stack capture is enabled
};

struct ThreadLockState {
  HeldLock held[kMaxHeld];
  int depth = 0;
};

ThreadLockState& State() {
  static thread_local ThreadLockState state;
  return state;
}

bool ReadStacksEnv() {
  const char* v = std::getenv("DPR_LOCKRANK_STACKS");
  return v != nullptr && v[0] == '1';
}

bool CaptureStacks() {
  // Latched once: unwinding on every ranked acquire costs microseconds, so it
  // is opt-in; the inversion report names both locks either way.
  static const bool enabled = ReadStacksEnv();
  return enabled;
}

void DumpStack(const char* label, void* const* frames, int n_frames) {
  std::fprintf(stderr, "%s\n", label);
  if (n_frames <= 0) {
    std::fprintf(stderr,
                 "  (not recorded; set DPR_LOCKRANK_STACKS=1 to capture "
                 "acquisition stacks)\n");
    return;
  }
  std::fflush(stderr);
  backtrace_symbols_fd(const_cast<void**>(frames), n_frames,
                       STDERR_FILENO);
}

[[noreturn]] void AbortOnInversion(const HeldLock& held, LockRank rank,
                                   const char* name) {
  void* now_frames[kMaxFrames];
  int now_n = backtrace(now_frames, kMaxFrames);
  std::fprintf(stderr,
               "FATAL: lock rank inversion: acquiring '%s' (rank %d) while "
               "holding '%s' (rank %d); ranked locks must be acquired in "
               "strictly decreasing rank order (see LockRank in "
               "common/sync.h)\n",
               name, static_cast<int>(rank), held.name, held.rank);
  DumpStack("--- stack of the attempted acquisition:", now_frames, now_n);
  DumpStack("--- stack where the held lock was acquired:", held.frames,
            held.n_frames);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void OnAcquire(const void* lock, LockRank rank, const char* name) {
  if (rank == LockRank::kNone) return;
  ThreadLockState& st = State();
  const int r = static_cast<int>(rank);
  // Strictly-decreasing order: abort against the lowest-ranked lock already
  // held. Equal ranks abort too — two same-rank locks that nest must be given
  // distinct ranks, else an AB/BA cycle between them is unprovable.
  int min_idx = -1;
  for (int i = 0; i < st.depth; ++i) {
    if (min_idx < 0 || st.held[i].rank < st.held[min_idx].rank) min_idx = i;
  }
  if (min_idx >= 0 && st.held[min_idx].rank <= r) {
    AbortOnInversion(st.held[min_idx], rank, name);
  }
  if (st.depth >= kMaxHeld) {
    std::fprintf(stderr,
                 "FATAL: thread holds more than %d ranked locks acquiring "
                 "'%s'\n",
                 kMaxHeld, name);
    std::abort();
  }
  HeldLock& h = st.held[st.depth++];
  h.lock = lock;
  h.rank = r;
  h.name = name;
  h.n_frames = CaptureStacks() ? backtrace(h.frames, kMaxFrames) : 0;
}

void OnRelease(const void* lock, LockRank rank) {
  if (rank == LockRank::kNone) return;
  ThreadLockState& st = State();
  // Locks are usually released LIFO, but scan in case of hand-over-hand.
  for (int i = st.depth - 1; i >= 0; --i) {
    if (st.held[i].lock == lock) {
      st.held[i] = st.held[st.depth - 1];
      --st.depth;
      return;
    }
  }
  // Releasing a ranked lock this thread never acquired: a shared latch
  // released on a different thread than it was acquired on (legal for e.g.
  // asymmetric latch hand-off). Tolerated: the acquiring thread's entry goes
  // stale only if it also skips its release, which the paired guards prevent.
}

int HeldCount() { return State().depth; }

int MinHeldRank() {
  ThreadLockState& st = State();
  int min_rank = INT_MAX;
  for (int i = 0; i < st.depth; ++i) {
    if (st.held[i].rank < min_rank) min_rank = st.held[i].rank;
  }
  return min_rank;
}

bool StacksEnabled() { return CaptureStacks(); }

}  // namespace lockrank
}  // namespace dpr
