#ifndef DPR_COMMON_CODING_H_
#define DPR_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace dpr {

/// Little-endian fixed-width encoders/decoders used by all wire and disk
/// formats in this repo (x86-64 targets; we memcpy rather than cast for
/// alignment safety).

inline void PutFixed32(std::string* dst, uint32_t v) {
  dst->append(reinterpret_cast<const char*>(&v), 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  dst->append(reinterpret_cast<const char*>(&v), 8);
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  memcpy(&v, p, 8);
  return v;
}

inline void PutLengthPrefixed(std::string* dst, Slice value) {
  PutFixed32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

/// Cursor-style reader with bounds checking; all Get* return false on
/// underflow, leaving the cursor unspecified.
class Decoder {
 public:
  explicit Decoder(Slice input) : p_(input.data()), end_(input.data() + input.size()) {}

  bool GetFixed32(uint32_t* v) {
    if (p_ + 4 > end_) return false;
    *v = DecodeFixed32(p_);
    p_ += 4;
    return true;
  }

  bool GetFixed64(uint64_t* v) {
    if (p_ + 8 > end_) return false;
    *v = DecodeFixed64(p_);
    p_ += 8;
    return true;
  }

  bool GetLengthPrefixed(Slice* out) {
    uint32_t len;
    if (!GetFixed32(&len)) return false;
    if (p_ + len > end_) return false;
    *out = Slice(p_, len);
    p_ += len;
    return true;
  }

  bool GetBytes(void* out, size_t n) {
    if (p_ + n > end_) return false;
    memcpy(out, p_, n);
    p_ += n;
    return true;
  }

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  const char* position() const { return p_; }
  void Skip(size_t n) { p_ += n; }

 private:
  const char* p_;
  const char* end_;
};

}  // namespace dpr

#endif  // DPR_COMMON_CODING_H_
