#ifndef DPR_COMMON_RANDOM_H_
#define DPR_COMMON_RANDOM_H_

#include <cstdint>

#include "common/hash.h"

namespace dpr {

/// xoshiro256** PRNG: fast, high-quality, and deterministic across platforms
/// so workload traces are reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the full state.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Zipfian-distributed key generator over [0, n) with parameter theta,
/// following the Gray et al. rejection-free method used by YCSB. Frequently
/// used with theta = 0.99 (the paper's skewed configuration). The hot items
/// are scattered across the key space by a final hash so that skew does not
/// correlate with shard assignment.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 12345,
                   bool scramble = true);

  /// Next sample in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  bool scramble_;
  Random rng_;
};

}  // namespace dpr

#endif  // DPR_COMMON_RANDOM_H_
