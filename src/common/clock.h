#ifndef DPR_COMMON_CLOCK_H_
#define DPR_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace dpr {

/// Monotonic clock helpers used for benchmarking and checkpoint timers.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t NowMicros() { return NowNanos() / 1000; }
inline uint64_t NowMillis() { return NowNanos() / 1000000; }

inline void SleepMicros(uint64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

inline void SleepMillis(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Simple elapsed-time stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(NowNanos()) {}
  void Reset() { start_ = NowNanos(); }
  uint64_t ElapsedNanos() const { return NowNanos() - start_; }
  uint64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }
  uint64_t ElapsedMillis() const { return ElapsedNanos() / 1000000; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  uint64_t start_;
};

}  // namespace dpr

#endif  // DPR_COMMON_CLOCK_H_
