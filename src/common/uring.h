#ifndef DPR_COMMON_URING_H_
#define DPR_COMMON_URING_H_

// Shared raw-syscall io_uring ring management, written against the kernel
// UAPI (<linux/io_uring.h>) rather than liburing so the build needs no extra
// dependency. Both ring users in the tree sit on this class:
//   * the storage IoEngine backend (src/storage/io_uring_engine.cc), which
//     serializes SQE production under its own mutex and drains CQEs from a
//     dedicated reaper thread, and
//   * the network transport loops (src/net/uring_net.cc), where one thread
//     owns both sides of its ring.
// Keeping the mmap/submit/drain core here means the two planes cannot fork
// subtly different ring implementations (the ISSUE-6 plumbing is the single
// source of truth for the memory-ordering contract with the kernel).
//
// Thread contract:
//   * SQ side (PushSqe / SubmitPending / SubmitAndWait) must be externally
//     serialized by the caller.
//   * CQ side (DrainCqes / CqReady) is single-consumer.
//   * EnterWait (to_submit=0) may run concurrently with the SQ side: it only
//     parks in io_uring_enter(GETEVENTS) and touches no ring indices.

#if DPR_HAVE_IOURING

#include <linux/io_uring.h>

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dpr {

class UringRing {
 public:
  UringRing() = default;
  ~UringRing();

  UringRing(const UringRing&) = delete;
  UringRing& operator=(const UringRing&) = delete;

  /// Sets up a ring with (at least) `entries` SQ slots and maps the three
  /// ring regions (SQ ring, CQ ring, SQE array; one mmap when the kernel
  /// reports IORING_FEAT_SINGLE_MMAP). Returns false — leaving the object
  /// invalid — when io_uring_setup or any mmap fails (seccomp'd container,
  /// old kernel, absurd depth), so callers can fall back gracefully.
  bool Init(uint32_t entries);
  bool valid() const { return ring_fd_ >= 0; }
  int ring_fd() const { return ring_fd_; }
  uint32_t sq_entries() const { return sq_entries_; }

  /// Copies one SQE into the next free slot. When the SQ ring is full the
  /// already-queued SQEs are flushed first (non-SQPOLL rings consume SQEs
  /// synchronously inside io_uring_enter, so a full ring clears as soon as
  /// the backlog is submitted). SQ side; externally serialized.
  void PushSqe(const io_uring_sqe& sqe);

  /// SQEs pushed but not yet handed to the kernel.
  unsigned pending() const { return pending_flush_; }

  /// Submits every pending SQE (possibly several io_uring_enter calls under
  /// EINTR/EAGAIN/EBUSY). Dies on a hard submit error — by the time SQEs are
  /// queued there is no caller left to hand the error to. Returns the number
  /// of io_uring_enter calls made (the syscall-accounting unit).
  unsigned SubmitPending();

  /// One combined submit-and-wait: flushes pending SQEs and parks until at
  /// least `min_complete` CQEs are available. Returns the number of
  /// io_uring_enter calls made. SQ side; externally serialized.
  unsigned SubmitAndWait(unsigned min_complete);

  /// Blocks until >= min_complete CQEs are available without submitting
  /// anything. Safe concurrently with the SQ side (reaper threads).
  void EnterWait(unsigned min_complete);

  bool CqReady() const {
    // relaxed head: the caller is the only CQ consumer, so its own last
    // store is visible to it; acquire on tail pairs with the kernel's
    // release publish of new CQEs.
    return cq_head_->load(std::memory_order_relaxed) !=
           cq_tail_->load(std::memory_order_acquire);
  }

  /// Drains every available CQE through `fn(const io_uring_cqe&)`. The CQ
  /// slot is released before `fn` runs (the copy is handed to fn), so fn may
  /// push SQEs — including ones that complete into the freed slot. Returns
  /// the number of CQEs consumed. Single consumer.
  template <typename Fn>
  unsigned DrainCqes(Fn&& fn) {
    // relaxed head read: we are the only CQ consumer; the ordering pair with
    // the kernel producer is the acquire on cq_tail_.
    uint32_t head = cq_head_->load(std::memory_order_relaxed);
    unsigned drained = 0;
    while (head != cq_tail_->load(std::memory_order_acquire)) {
      const io_uring_cqe cqe = cqes_[head & cq_mask_];
      ++head;
      cq_head_->store(head, std::memory_order_release);
      ++drained;
      fn(cqe);
    }
    return drained;
  }

  /// Registers a provided-buffer ring (IORING_REGISTER_PBUF_RING).
  /// `ring_addr` must be page-aligned and hold `entries` io_uring_buf slots
  /// (entries must be a power of two). Returns false when the kernel lacks
  /// the feature. Compiled out (always false) on pre-5.19 UAPI headers.
  bool RegisterBufRing(void* ring_addr, uint32_t entries, uint16_t bgid);
  void UnregisterBufRing(uint16_t bgid);

  /// IORING_REGISTER_PROBE: whether this kernel supports `opcode`.
  bool ProbeOpcode(uint8_t opcode) const;

  /// Raw io_uring_enter(2); exposed for callers that park outside the
  /// instance lock (storage reaper). Returns the syscall result; errno set.
  static int Enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                   unsigned flags);

 private:
  void Teardown();

  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  size_t sq_ring_sz_ = 0, cq_ring_sz_ = 0, sqes_sz_ = 0;
  bool single_mmap_ = false;
  uint32_t sq_entries_ = 0;

  std::atomic<uint32_t>* sq_head_ = nullptr;
  std::atomic<uint32_t>* sq_tail_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* sq_array_ = nullptr;
  std::atomic<uint32_t>* cq_head_ = nullptr;
  std::atomic<uint32_t>* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  unsigned pending_flush_ = 0;
};

}  // namespace dpr

#endif  // DPR_HAVE_IOURING

#endif  // DPR_COMMON_URING_H_
