#ifndef DPR_COMMON_LATCH_H_
#define DPR_COMMON_LATCH_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace dpr {

/// Test-and-test-and-set spin latch for short critical sections.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void Lock() {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
    }
  }

  bool TryLock() {
    return !locked_.exchange(true, std::memory_order_acquire);
  }

  void Unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

/// RAII guard for SpinLatch.
class SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch& latch) : latch_(latch) { latch_.Lock(); }
  ~SpinLatchGuard() { latch_.Unlock(); }
  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

 private:
  SpinLatch& latch_;
};

/// Reader-writer spin latch. Writers are exclusive (negative sentinel);
/// readers share. Used by the D-Redis server wrapper: checkpoints take the
/// exclusive latch while request batches take the shared latch, ensuring all
/// operations of a batch land in one version (paper §6).
class SharedSpinLatch {
 public:
  SharedSpinLatch() = default;
  SharedSpinLatch(const SharedSpinLatch&) = delete;
  SharedSpinLatch& operator=(const SharedSpinLatch&) = delete;

  void LockShared() {
    for (;;) {
      int64_t v = state_.load(std::memory_order_relaxed);
      if (v >= 0 &&
          state_.compare_exchange_weak(v, v + 1, std::memory_order_acquire)) {
        return;
      }
      std::this_thread::yield();
    }
  }

  void UnlockShared() { state_.fetch_sub(1, std::memory_order_release); }

  void LockExclusive() {
    for (;;) {
      int64_t expected = 0;
      if (state_.compare_exchange_weak(expected, -1,
                                       std::memory_order_acquire)) {
        return;
      }
      std::this_thread::yield();
    }
  }

  void UnlockExclusive() { state_.store(0, std::memory_order_release); }

 private:
  std::atomic<int64_t> state_{0};
};

}  // namespace dpr

#endif  // DPR_COMMON_LATCH_H_
