#ifndef DPR_COMMON_LATCH_H_
#define DPR_COMMON_LATCH_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/sync.h"

namespace dpr {

/// Test-and-test-and-set spin latch for short critical sections. Carries the
/// same thread-safety capability and optional lock rank as dpr::Mutex; ranked
/// latches participate in the per-thread rank checker (see common/sync.h).
class CAPABILITY("mutex") SpinLatch {
 public:
  SpinLatch() = default;
  explicit SpinLatch(LockRank rank, const char* name = "spinlatch")
      : rank_(rank), name_(name) {}
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void Lock() ACQUIRE() {
    lockrank::OnAcquire(this, rank_, name_);
    for (;;) {
      // exchange(acquire): the winner's critical section must observe every
      // write the previous holder published before its release store.
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // Spin on a relaxed load: no ordering needed while losing, the
      // acquiring exchange above resynchronizes.
      while (locked_.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
    }
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (locked_.exchange(true, std::memory_order_acquire)) return false;
    lockrank::OnAcquire(this, rank_, name_);
    return true;
  }

  void Unlock() RELEASE() {
    // Bookkeeping before the release store (see Mutex::Unlock: the store
    // publishes the section, after which the latch may be destroyed).
    lockrank::OnRelease(this, rank_);
    // release: publishes the critical section to the next acquirer.
    locked_.store(false, std::memory_order_release);
  }

 private:
  // acquire/release pair: Lock's CAS-acquire observes everything the prior
  // holder's release store in Unlock published.
  std::atomic<bool> locked_{false};
  const LockRank rank_ = LockRank::kNone;
  const char* const name_ = "spinlatch";
};

/// RAII guard for SpinLatch.
class SCOPED_CAPABILITY SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch& latch) ACQUIRE(latch) : latch_(latch) {
    latch_.Lock();
  }
  ~SpinLatchGuard() RELEASE() { latch_.Unlock(); }
  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

 private:
  SpinLatch& latch_;
};

/// Reader-writer spin latch. Writers are exclusive (negative sentinel);
/// readers share. Used by the D-Redis server wrapper: checkpoints take the
/// exclusive latch while request batches take the shared latch, ensuring all
/// operations of a batch land in one version (paper §6).
class CAPABILITY("shared_mutex") SharedSpinLatch {
 public:
  SharedSpinLatch() = default;
  explicit SharedSpinLatch(LockRank rank, const char* name = "sharedlatch")
      : rank_(rank), name_(name) {}
  SharedSpinLatch(const SharedSpinLatch&) = delete;
  SharedSpinLatch& operator=(const SharedSpinLatch&) = delete;

  void LockShared() ACQUIRE_SHARED() {
    lockrank::OnAcquire(this, rank_, name_);
    for (;;) {
      // relaxed read is fine: the CAS below is the synchronizing acquire.
      int64_t v = state_.load(std::memory_order_relaxed);
      if (v >= 0 &&
          state_.compare_exchange_weak(v, v + 1, std::memory_order_acquire)) {
        return;
      }
      std::this_thread::yield();
    }
  }

  void UnlockShared() RELEASE_SHARED() {
    // Bookkeeping before the release store — see SpinLatch::Unlock.
    lockrank::OnRelease(this, rank_);
    // release: a writer that observes count 0 must also observe this
    // reader's section (checkpoint boundary sees every admitted batch).
    state_.fetch_sub(1, std::memory_order_release);
  }

  void LockExclusive() ACQUIRE() {
    lockrank::OnAcquire(this, rank_, name_);
    for (;;) {
      int64_t expected = 0;
      // acquire: the writer must observe every drained reader's effects.
      if (state_.compare_exchange_weak(expected, -1,
                                       std::memory_order_acquire)) {
        return;
      }
      std::this_thread::yield();
    }
  }

  void UnlockExclusive() RELEASE() {
    // Bookkeeping before the release store — see SpinLatch::Unlock.
    lockrank::OnRelease(this, rank_);
    // release: readers admitted after a checkpoint/rollback must observe the
    // new version boundary the writer installed.
    state_.store(0, std::memory_order_release);
  }

 private:
  // acquire/release pair: reader/writer admission CASes with acquire;
  // releases store with release so admitted threads observe the section.
  std::atomic<int64_t> state_{0};
  const LockRank rank_ = LockRank::kNone;
  const char* const name_ = "sharedlatch";
};

}  // namespace dpr

#endif  // DPR_COMMON_LATCH_H_
