#ifndef DPR_METADATA_METADATA_STORE_H_
#define DPR_METADATA_METADATA_STORE_H_

#include <cstdint>
#include <map>
#include <memory>

#include "common/status.h"
#include "common/sync.h"
#include "dpr/types.h"
#include "storage/wal.h"

namespace dpr {

/// Lifecycle of a cluster member in the membership state machine (paper §5.3;
/// DESIGN.md §4i). Rows are durable: a worker that crashes mid-join recovers
/// into the same state and the cluster plane resumes or aborts the
/// transition. kRemoved rows are kept as tombstones so a decommissioned
/// worker id is never silently reused with stale ownership rows around.
enum class MemberState : uint8_t {
  kJoining = 0,   // registered, receiving migrated shards, owns nothing yet
  kActive = 1,    // full member, owns shards, participates in cuts
  kDraining = 2,  // decommissioning: shards migrating away, no new ownership
  kRemoved = 3,   // tombstone: fully drained and unregistered
};

const char* MemberStateName(MemberState state);

/// One in-flight shard migration, recorded durably before the dual-ownership
/// window opens so a crashed driver can be detected (and the migration
/// aborted/resumed) from the metadata service alone.
struct MigrationRow {
  WorkerId source = 0;
  WorkerId target = 0;
};

/// Durable, fault-tolerant metadata service — the stand-in for the paper's
/// Azure SQL database (Fig. 4). Holds exactly the tables DPR needs:
///
///  * the `dpr` table: worker id -> persisted version (approximate algorithm
///    rows; also the source of truth for cluster membership, §5.3);
///  * precedence-graph rows (exact algorithm): (worker, version) -> deps;
///  * the current DPR cut + world-line, updated atomically so the cut is
///    never partially read;
///  * the ownership table: virtual partition -> owner worker.
///
/// Every mutation is WAL-logged and fsync'd before returning, so the service
/// survives SimulateCrash() (which drops all volatile state and unsynced WAL
/// suffix, then replays). All methods are thread-safe.
class MetadataStore {
 public:
  /// With a `scheduler`, mutation fsyncs register as group-commit waiters on
  /// the WAL device instead of each issuing a private fsync, so concurrent
  /// metadata mutations (and anything else sharing the device) coalesce.
  explicit MetadataStore(std::unique_ptr<Device> wal_device,
                         GroupCommitScheduler* scheduler = nullptr);

  /// Rebuilds tables from the WAL. Call once after construction (and after
  /// SimulateCrash, which invokes it internally).
  Status Recover();

  // --- dpr table (approximate algorithm + membership) ---
  Status UpsertWorker(WorkerId worker, Version persisted_version);
  Status RemoveWorker(WorkerId worker);
  std::map<WorkerId, Version> GetPersistedVersions() const;
  /// SELECT min(persistedVersion) FROM dpr — kInvalidVersion if empty.
  Version MinPersistedVersion() const;
  /// SELECT max(persistedVersion) FROM dpr — used for Vmax fast-forward.
  Version MaxPersistedVersion() const;

  // --- precedence graph (exact algorithm) ---
  Status AddGraphNode(WorkerVersion wv, const DependencySet& deps);
  std::map<WorkerVersion, DependencySet> GetGraph() const;
  /// Garbage-collects graph nodes at or below the cut.
  Status PruneGraph(const DprCut& cut);

  // --- cut + world-line ---
  Status SetCut(WorldLine world_line, const DprCut& cut);
  void GetCut(WorldLine* world_line, DprCut* cut) const;
  Status SetWorldLine(WorldLine world_line);
  WorldLine GetWorldLine() const;

  // --- ownership ---
  Status SetOwner(uint64_t virtual_partition, WorkerId worker);
  std::map<uint64_t, WorkerId> GetOwnership() const;

  // --- membership state machine (cluster plane, §5.3) ---
  Status SetMemberState(WorkerId worker, MemberState state);
  std::map<WorkerId, MemberState> GetMemberStates() const;

  // --- in-flight migrations (crash-visible dual-ownership windows) ---
  Status SetMigration(uint64_t virtual_partition, WorkerId source,
                      WorkerId target);
  Status ClearMigration(uint64_t virtual_partition);
  std::map<uint64_t, MigrationRow> GetMigrations() const;

  /// Drops volatile state and the unsynced WAL suffix, then recovers;
  /// models a metadata-service crash + restart.
  void SimulateCrash();

  /// Number of WAL bytes written (observability for scalability benches).
  uint64_t WalBytes() const;

 private:
  Status LogAndApply(const std::string& record) EXCLUDES(mu_);
  void ApplyRecord(Slice record) REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kMetadata, "metadata.store"};
  // The WAL has its own internal lock (kStorage) acquired under mu_; mu_
  // additionally serializes Append+Sync+apply so a record is never applied
  // to the tables out of WAL order.
  WriteAheadLog wal_ GUARDED_BY(mu_);
  std::map<WorkerId, Version> persisted_ GUARDED_BY(mu_);  // dpr table
  // Precedence graph (exact algorithm).
  std::map<WorkerVersion, DependencySet> graph_ GUARDED_BY(mu_);
  DprCut cut_ GUARDED_BY(mu_);
  WorldLine cut_world_line_ GUARDED_BY(mu_) = kInitialWorldLine;
  WorldLine world_line_ GUARDED_BY(mu_) = kInitialWorldLine;
  std::map<uint64_t, WorkerId> ownership_ GUARDED_BY(mu_);
  std::map<WorkerId, MemberState> member_states_ GUARDED_BY(mu_);
  std::map<uint64_t, MigrationRow> migrations_ GUARDED_BY(mu_);
};

}  // namespace dpr

#endif  // DPR_METADATA_METADATA_STORE_H_
