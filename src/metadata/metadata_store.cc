#include "metadata/metadata_store.h"

#include <utility>

#include "common/coding.h"
#include "common/logging.h"

namespace dpr {

namespace {

enum RecordType : uint8_t {
  kUpsertWorker = 1,
  kRemoveWorker = 2,
  kGraphNode = 3,
  kSetCut = 4,
  kSetWorldLine = 5,
  kSetOwner = 6,
  kPruneGraph = 7,
  kSetMemberState = 8,
  kSetMigration = 9,
  kClearMigration = 10,
};

void EncodeDeps(std::string* dst, const DependencySet& deps) {
  PutFixed32(dst, static_cast<uint32_t>(deps.size()));
  for (const auto& [w, v] : deps) {
    PutFixed32(dst, w);
    PutFixed64(dst, v);
  }
}

bool DecodeDeps(Decoder* dec, DependencySet* deps) {
  uint32_t n;
  if (!dec->GetFixed32(&n)) return false;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t w;
    uint64_t v;
    if (!dec->GetFixed32(&w) || !dec->GetFixed64(&v)) return false;
    (*deps)[w] = v;
  }
  return true;
}

}  // namespace

const char* MemberStateName(MemberState state) {
  switch (state) {
    case MemberState::kJoining:
      return "joining";
    case MemberState::kActive:
      return "active";
    case MemberState::kDraining:
      return "draining";
    case MemberState::kRemoved:
      return "removed";
  }
  return "unknown";
}

MetadataStore::MetadataStore(std::unique_ptr<Device> wal_device,
                             GroupCommitScheduler* scheduler)
    : wal_(std::move(wal_device), scheduler) {}

Status MetadataStore::Recover() {
  MutexLock guard(mu_);
  persisted_.clear();
  graph_.clear();
  cut_.clear();
  cut_world_line_ = kInitialWorldLine;
  world_line_ = kInitialWorldLine;
  ownership_.clear();
  member_states_.clear();
  migrations_.clear();
  return wal_.Replay(
      [this](uint64_t /*offset*/, Slice record) { ApplyRecord(record); });
}

Status MetadataStore::LogAndApply(const std::string& record) {
  MutexLock guard(mu_);
  DPR_RETURN_NOT_OK(wal_.Append(record));
  DPR_RETURN_NOT_OK(wal_.Sync());
  ApplyRecord(record);
  return Status::OK();
}

void MetadataStore::ApplyRecord(Slice record) {
  Decoder dec(record);
  uint8_t type_byte;
  if (!dec.GetBytes(&type_byte, 1)) return;
  switch (type_byte) {
    case kUpsertWorker: {
      uint32_t w;
      uint64_t v;
      if (dec.GetFixed32(&w) && dec.GetFixed64(&v)) persisted_[w] = v;
      break;
    }
    case kRemoveWorker: {
      uint32_t w;
      if (dec.GetFixed32(&w)) persisted_.erase(w);
      break;
    }
    case kGraphNode: {
      uint32_t w;
      uint64_t v;
      DependencySet deps;
      if (dec.GetFixed32(&w) && dec.GetFixed64(&v) && DecodeDeps(&dec, &deps)) {
        graph_[WorkerVersion{w, v}] = std::move(deps);
      }
      break;
    }
    case kSetCut: {
      uint64_t wl;
      DependencySet cut;
      if (dec.GetFixed64(&wl) && DecodeDeps(&dec, &cut)) {
        cut_world_line_ = wl;
        cut_ = std::move(cut);
      }
      break;
    }
    case kSetWorldLine: {
      uint64_t wl;
      if (dec.GetFixed64(&wl)) world_line_ = wl;
      break;
    }
    case kSetOwner: {
      uint64_t vp;
      uint32_t w;
      if (dec.GetFixed64(&vp) && dec.GetFixed32(&w)) ownership_[vp] = w;
      break;
    }
    case kSetMemberState: {
      uint32_t w;
      uint8_t st;
      if (dec.GetFixed32(&w) && dec.GetBytes(&st, 1)) {
        member_states_[w] = static_cast<MemberState>(st);
      }
      break;
    }
    case kSetMigration: {
      uint64_t vp;
      uint32_t src, dst;
      if (dec.GetFixed64(&vp) && dec.GetFixed32(&src) && dec.GetFixed32(&dst)) {
        migrations_[vp] = MigrationRow{src, dst};
      }
      break;
    }
    case kClearMigration: {
      uint64_t vp;
      if (dec.GetFixed64(&vp)) migrations_.erase(vp);
      break;
    }
    case kPruneGraph: {
      DependencySet cut;
      if (DecodeDeps(&dec, &cut)) {
        for (auto it = graph_.begin(); it != graph_.end();) {
          const Version cv = CutVersion(cut, it->first.worker);
          if (it->first.version <= cv) {
            it = graph_.erase(it);
          } else {
            ++it;
          }
        }
      }
      break;
    }
    default:
      DPR_WARN("metadata: unknown WAL record type %u", type_byte);
  }
}

Status MetadataStore::UpsertWorker(WorkerId worker, Version version) {
  std::string rec(1, static_cast<char>(kUpsertWorker));
  PutFixed32(&rec, worker);
  PutFixed64(&rec, version);
  return LogAndApply(rec);
}

Status MetadataStore::RemoveWorker(WorkerId worker) {
  std::string rec(1, static_cast<char>(kRemoveWorker));
  PutFixed32(&rec, worker);
  return LogAndApply(rec);
}

std::map<WorkerId, Version> MetadataStore::GetPersistedVersions() const {
  MutexLock guard(mu_);
  return persisted_;
}

Version MetadataStore::MinPersistedVersion() const {
  MutexLock guard(mu_);
  if (persisted_.empty()) return kInvalidVersion;
  Version min = ~0ULL;
  for (const auto& [w, v] : persisted_) {
    (void)w;
    if (v < min) min = v;
  }
  return min;
}

Version MetadataStore::MaxPersistedVersion() const {
  MutexLock guard(mu_);
  Version max = kInvalidVersion;
  for (const auto& [w, v] : persisted_) {
    (void)w;
    if (v > max) max = v;
  }
  return max;
}

Status MetadataStore::AddGraphNode(WorkerVersion wv,
                                   const DependencySet& deps) {
  std::string rec(1, static_cast<char>(kGraphNode));
  PutFixed32(&rec, wv.worker);
  PutFixed64(&rec, wv.version);
  EncodeDeps(&rec, deps);
  return LogAndApply(rec);
}

std::map<WorkerVersion, DependencySet> MetadataStore::GetGraph() const {
  MutexLock guard(mu_);
  return graph_;
}

Status MetadataStore::PruneGraph(const DprCut& cut) {
  std::string rec(1, static_cast<char>(kPruneGraph));
  EncodeDeps(&rec, cut);
  return LogAndApply(rec);
}

Status MetadataStore::SetCut(WorldLine world_line, const DprCut& cut) {
  std::string rec(1, static_cast<char>(kSetCut));
  PutFixed64(&rec, world_line);
  EncodeDeps(&rec, cut);
  return LogAndApply(rec);
}

void MetadataStore::GetCut(WorldLine* world_line, DprCut* cut) const {
  MutexLock guard(mu_);
  if (world_line != nullptr) *world_line = cut_world_line_;
  if (cut != nullptr) *cut = cut_;
}

Status MetadataStore::SetWorldLine(WorldLine world_line) {
  std::string rec(1, static_cast<char>(kSetWorldLine));
  PutFixed64(&rec, world_line);
  return LogAndApply(rec);
}

WorldLine MetadataStore::GetWorldLine() const {
  MutexLock guard(mu_);
  return world_line_;
}

Status MetadataStore::SetOwner(uint64_t virtual_partition, WorkerId worker) {
  std::string rec(1, static_cast<char>(kSetOwner));
  PutFixed64(&rec, virtual_partition);
  PutFixed32(&rec, worker);
  return LogAndApply(rec);
}

std::map<uint64_t, WorkerId> MetadataStore::GetOwnership() const {
  MutexLock guard(mu_);
  return ownership_;
}

Status MetadataStore::SetMemberState(WorkerId worker, MemberState state) {
  std::string rec(1, static_cast<char>(kSetMemberState));
  PutFixed32(&rec, worker);
  rec.push_back(static_cast<char>(state));
  return LogAndApply(rec);
}

std::map<WorkerId, MemberState> MetadataStore::GetMemberStates() const {
  MutexLock guard(mu_);
  return member_states_;
}

Status MetadataStore::SetMigration(uint64_t virtual_partition, WorkerId source,
                                   WorkerId target) {
  std::string rec(1, static_cast<char>(kSetMigration));
  PutFixed64(&rec, virtual_partition);
  PutFixed32(&rec, source);
  PutFixed32(&rec, target);
  return LogAndApply(rec);
}

Status MetadataStore::ClearMigration(uint64_t virtual_partition) {
  std::string rec(1, static_cast<char>(kClearMigration));
  PutFixed64(&rec, virtual_partition);
  return LogAndApply(rec);
}

std::map<uint64_t, MigrationRow> MetadataStore::GetMigrations() const {
  MutexLock guard(mu_);
  return migrations_;
}

void MetadataStore::SimulateCrash() {
  {
    MutexLock guard(mu_);
    wal_.device()->SimulateCrash();
  }
  Status s = Recover();
  DPR_CHECK_MSG(s.ok(), "metadata recovery failed: %s", s.ToString().c_str());
}

uint64_t MetadataStore::WalBytes() const {
  MutexLock guard(mu_);
  return wal_.SizeBytes();
}

}  // namespace dpr
