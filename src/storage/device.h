#ifndef DPR_STORAGE_DEVICE_H_
#define DPR_STORAGE_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/sync.h"

namespace dpr {

/// Abstraction over a durable byte-addressable device backing a HybridLog
/// segment, a WAL, or a checkpoint file. Implementations must be thread-safe
/// for concurrent WriteAt/ReadAt on disjoint ranges.
///
/// Durability model: data is guaranteed to survive a (simulated) crash only
/// after a Flush() that follows the write returns. `SimulateCrash()` discards
/// all writes that were not covered by a completed Flush(), which lets tests
/// exercise real recovery code paths in-process.
class Device {
 public:
  virtual ~Device() = default;

  virtual Status WriteAt(uint64_t offset, const void* data, size_t n) = 0;
  virtual Status ReadAt(uint64_t offset, void* buf, size_t n) = 0;

  /// Makes all completed writes durable.
  virtual Status Flush() = 0;

  /// Current size in bytes (high-water mark of writes).
  virtual uint64_t Size() const = 0;

  /// Drops all non-durable data, as a crash would.
  virtual void SimulateCrash() = 0;

  /// Deletes all content (durable included); used to reset between runs.
  virtual void Truncate(uint64_t new_size) = 0;
};

/// Discards writes instantly and cannot be read back. Models the paper's
/// "null" storage backend: a theoretical upper bound that pays all of the
/// checkpointing/DPR CPU cost but none of the I/O cost.
class NullDevice : public Device {
 public:
  Status WriteAt(uint64_t offset, const void* data, size_t n) override;
  Status ReadAt(uint64_t offset, void* buf, size_t n) override;
  Status Flush() override { return Status::OK(); }
  uint64_t Size() const override {
    return size_.load(std::memory_order_relaxed);
  }
  void SimulateCrash() override {}
  void Truncate(uint64_t new_size) override {
    size_.store(new_size, std::memory_order_relaxed);
  }

 private:
  // relaxed: size high-water mark; file contents are published by the
  // pwrite/pread syscalls themselves, not by this counter.
  std::atomic<uint64_t> size_{0};
};

/// Memory-backed device with an explicit durable watermark: writes land in a
/// volatile buffer, Flush() copies the dirty range to the durable image.
/// Used as the "local SSD" stand-in in unit tests (fast, deterministic) and
/// as the base layer for LatencyDevice.
class MemoryDevice : public Device {
 public:
  Status WriteAt(uint64_t offset, const void* data, size_t n) override;
  Status ReadAt(uint64_t offset, void* buf, size_t n) override;
  Status Flush() override;
  uint64_t Size() const override;
  void SimulateCrash() override;
  void Truncate(uint64_t new_size) override;

 private:
  mutable Mutex mu_{LockRank::kStorage, "device.memory"};
  std::string volatile_ GUARDED_BY(mu_);  // contiguous image of all writes
  std::string durable_ GUARDED_BY(mu_);   // image as of the last Flush()
};

/// Real file-backed device using pwrite/pread/fdatasync. SimulateCrash()
/// truncates the file back to the last-synced high-water mark (writes beyond
/// it may or may not have hit media on a real crash; we model the worst
/// case of losing everything unsynced).
class FileDevice : public Device {
 public:
  /// Creates (or truncates, if `reset`) the file at `path`.
  static Status Open(const std::string& path, bool reset,
                     std::unique_ptr<FileDevice>* out);
  ~FileDevice() override;

  Status WriteAt(uint64_t offset, const void* data, size_t n) override;
  Status ReadAt(uint64_t offset, void* buf, size_t n) override;
  Status Flush() override;
  uint64_t Size() const override;
  void SimulateCrash() override;
  void Truncate(uint64_t new_size) override;

  const std::string& path() const { return path_; }

 private:
  FileDevice(std::string path, int fd);

  std::string path_;
  int fd_;
  mutable Mutex mu_{LockRank::kStorage, "device.file"};
  uint64_t size_ GUARDED_BY(mu_) = 0;  // high-water mark of writes
  // High-water mark covered by Flush().
  uint64_t durable_size_ GUARDED_BY(mu_) = 0;
};

/// Wraps another device and injects latency, modeling remote/cloud storage
/// (the paper's Azure Premium SSD backend where checkpoint persistence takes
/// ~50 ms, 2-3x local SSD). Flush blocks for `flush_latency_us` plus
/// `per_mb_us` for each MiB written since the previous flush.
class LatencyDevice : public Device {
 public:
  LatencyDevice(std::unique_ptr<Device> base, uint64_t flush_latency_us,
                uint64_t per_mb_us);

  Status WriteAt(uint64_t offset, const void* data, size_t n) override;
  Status ReadAt(uint64_t offset, void* buf, size_t n) override;
  Status Flush() override;
  uint64_t Size() const override { return base_->Size(); }
  void SimulateCrash() override { base_->SimulateCrash(); }
  void Truncate(uint64_t new_size) override { base_->Truncate(new_size); }

 private:
  std::unique_ptr<Device> base_;
  uint64_t flush_latency_us_;
  uint64_t per_mb_us_;
  // relaxed: latency-model bookkeeping only; never used for correctness.
  std::atomic<uint64_t> bytes_since_flush_{0};
};

/// Wraps another device and injects storage faults from the process-wide
/// FaultPlane: failed writes (device.write_fail), torn writes that persist
/// only a prefix of the range before erroring (device.torn_write), and slow
/// fsync (device.slow_fsync, param = stall in microseconds). `scope` keys
/// the injection points so a chaos schedule can target one worker's device.
/// Zero overhead while the plane is disabled.
class FaultDevice : public Device {
 public:
  FaultDevice(std::unique_ptr<Device> base, uint64_t scope);

  Status WriteAt(uint64_t offset, const void* data, size_t n) override;
  Status ReadAt(uint64_t offset, void* buf, size_t n) override;
  Status Flush() override;
  uint64_t Size() const override { return base_->Size(); }
  void SimulateCrash() override { base_->SimulateCrash(); }
  void Truncate(uint64_t new_size) override { base_->Truncate(new_size); }

 private:
  std::unique_ptr<Device> base_;
  const uint64_t scope_;
};

/// The paper's three storage backends.
enum class StorageBackend { kNull, kLocal, kCloud };

/// Factory: kNull -> NullDevice; kLocal -> MemoryDevice (or FileDevice when
/// `dir` is non-empty); kCloud -> LatencyDevice over the local device.
std::unique_ptr<Device> MakeDevice(StorageBackend backend,
                                   const std::string& dir = "",
                                   const std::string& name = "");

}  // namespace dpr

#endif  // DPR_STORAGE_DEVICE_H_
