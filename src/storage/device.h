#ifndef DPR_STORAGE_DEVICE_H_
#define DPR_STORAGE_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "common/status.h"
#include "common/sync.h"
#include "storage/async_io.h"

namespace dpr {

/// Abstraction over a durable byte-addressable device backing a HybridLog
/// segment, a WAL, or a checkpoint file.
///
/// The device API is asynchronous: SubmitWrite/SubmitRead/SubmitFsync enqueue
/// the operation and invoke a completion callback exactly once — inline on
/// the submitting thread for memory-backed devices and immediate failures, or
/// on an I/O engine completion thread for file-backed ones. Completions may
/// arrive out of order; callers must not submit concurrent overlapping writes
/// to the same range. Implementations invoke callbacks with no device or
/// engine locks held, so a callback may re-enter the storage plane (e.g. the
/// group-commit scheduler's waiter fan-out does).
///
/// There is deliberately no blocking member API: a call site that needs to
/// wait goes through the explicit SyncIo helper below, so a blocking
/// rendezvous is visible where it happens and cannot silently creep onto a
/// hot path. See DESIGN.md §4h.
///
/// Durability model: data is guaranteed to survive a (simulated) crash only
/// after an fsync *submitted after the write completed* itself completes.
/// `SimulateCrash()` discards all writes not covered by a completed fsync,
/// which lets tests exercise real recovery code paths in-process.
class Device {
 public:
  virtual ~Device() = default;

  // --- asynchronous primary API -------------------------------------------

  /// `data` must stay valid until `done` fires.
  virtual void SubmitWrite(uint64_t offset, const void* data, size_t n,
                           IoCallback done) = 0;
  virtual void SubmitRead(uint64_t offset, void* buf, size_t n,
                          IoCallback done) = 0;

  /// Makes durable (at least) every write whose completion was observed
  /// before this call returned, then fires `done`.
  virtual void SubmitFsync(IoCallback done) = 0;

  // --- common -------------------------------------------------------------

  /// Current size in bytes (high-water mark of completed writes).
  virtual uint64_t Size() const = 0;

  /// Drops all non-durable data, as a crash would. Callers must quiesce
  /// their own submissions first.
  virtual void SimulateCrash() = 0;

  /// Deletes all content (durable included); used to reset between runs.
  virtual void Truncate(uint64_t new_size) = 0;

  /// Coalescing identity for the group-commit fsync scheduler: devices that
  /// share physical durability (e.g. DeviceSlice views of one file) return
  /// the same root, so one fsync on the root covers them all. Fault wrappers
  /// return themselves to keep injection probes on the coalesced path.
  virtual Device* SyncRoot() { return this; }
};

/// Explicit synchronous rendezvous over the async Device API, for the call
/// sites where blocking is the point: WAL replay, checkpoint recovery, tests,
/// and tools. This replaces the old implicit Device::WriteAt/ReadAt/Flush
/// member shims — the wait now reads as a SyncIo call at the site, and
/// dprlint's `device-shim` check rejects new `.WriteAt(` / `.ReadAt(`
/// member calls so the blocking style cannot reappear under another name.
struct SyncIo {
  static Status Write(Device* device, uint64_t offset, const void* data,
                      size_t n);
  static Status Read(Device* device, uint64_t offset, void* buf, size_t n);
  static Status Fsync(Device* device);
};

/// Discards writes instantly and cannot be read back. Models the paper's
/// "null" storage backend: a theoretical upper bound that pays all of the
/// checkpointing/DPR CPU cost but none of the I/O cost.
class NullDevice : public Device {
 public:
  void SubmitWrite(uint64_t offset, const void* data, size_t n,
                   IoCallback done) override;
  void SubmitRead(uint64_t offset, void* buf, size_t n,
                  IoCallback done) override;
  void SubmitFsync(IoCallback done) override;
  uint64_t Size() const override {
    return size_.load(std::memory_order_relaxed);
  }
  void SimulateCrash() override {}
  void Truncate(uint64_t new_size) override {
    size_.store(new_size, std::memory_order_relaxed);
  }

 private:
  // relaxed: size high-water mark; nothing is retained, so there is no data
  // to publish.
  std::atomic<uint64_t> size_{0};
};

/// Memory-backed device with an explicit durable watermark: writes land in a
/// volatile buffer, fsync copies the image to the durable one. Completions
/// fire inline on the submitting thread (after the device lock is dropped).
/// Used as the "local SSD" stand-in in unit tests (fast, deterministic) and
/// as the base layer for LatencyDevice.
class MemoryDevice : public Device {
 public:
  void SubmitWrite(uint64_t offset, const void* data, size_t n,
                   IoCallback done) override;
  void SubmitRead(uint64_t offset, void* buf, size_t n,
                  IoCallback done) override;
  void SubmitFsync(IoCallback done) override;
  uint64_t Size() const override;
  void SimulateCrash() override;
  void Truncate(uint64_t new_size) override;

 private:
  mutable Mutex mu_{LockRank::kStorage, "device.memory"};
  std::string volatile_ GUARDED_BY(mu_);  // contiguous image of all writes
  std::string durable_ GUARDED_BY(mu_);   // image as of the last fsync
};

/// Real file-backed device. Writes, reads, and fsyncs are submitted to a
/// shared IoEngine (io_uring or the portable thread pool); nothing blocks on
/// the submitting thread. SimulateCrash() truncates the file back to the
/// last-synced watermark — the largest prefix with no write still in flight
/// when the covering fsync was submitted (writes beyond it may or may not
/// have hit media on a real crash; we model the worst case).
class FileDevice : public Device {
 public:
  /// Creates (or truncates, if `reset`) the file at `path`. A null `engine`
  /// selects the process-wide DefaultIoEngine().
  static Status Open(const std::string& path, bool reset,
                     std::unique_ptr<FileDevice>* out,
                     std::shared_ptr<IoEngine> engine = nullptr);
  ~FileDevice() override;

  void SubmitWrite(uint64_t offset, const void* data, size_t n,
                   IoCallback done) override;
  void SubmitRead(uint64_t offset, void* buf, size_t n,
                  IoCallback done) override;
  void SubmitFsync(IoCallback done) override;
  uint64_t Size() const override;
  void SimulateCrash() override;
  void Truncate(uint64_t new_size) override;

  const std::string& path() const { return path_; }
  IoEngine* engine() const { return engine_.get(); }

 private:
  FileDevice(std::string path, int fd, std::shared_ptr<IoEngine> engine);

  /// Blocks until no submissions are in flight (crash/truncate/destruction).
  void Drain();

  std::string path_;
  int fd_;
  std::shared_ptr<IoEngine> engine_;
  mutable Mutex mu_{LockRank::kStorage, "device.file"};
  CondVar idle_ GUARDED_BY(mu_);
  size_t inflight_ops_ GUARDED_BY(mu_) = 0;
  // Start offsets of writes still in flight; the fsync watermark cannot pass
  // the lowest one (a later-completing earlier write would otherwise be
  // claimed durable).
  std::multiset<uint64_t> inflight_writes_ GUARDED_BY(mu_);
  uint64_t size_ GUARDED_BY(mu_) = 0;  // high-water mark of completed writes
  // High-water mark covered by a completed fsync.
  uint64_t durable_size_ GUARDED_BY(mu_) = 0;
};

/// Wraps another device and injects latency, modeling remote/cloud storage
/// (the paper's Azure Premium SSD backend where checkpoint persistence takes
/// ~50 ms, 2-3x local SSD). SubmitFsync stalls the submitting thread for
/// `flush_latency_us` plus `per_mb_us` for each MiB written since the
/// previous fsync — under the group-commit scheduler that stalls only this
/// device's dispatch, exactly like a slow physical device.
class LatencyDevice : public Device {
 public:
  LatencyDevice(std::unique_ptr<Device> base, uint64_t flush_latency_us,
                uint64_t per_mb_us);

  void SubmitWrite(uint64_t offset, const void* data, size_t n,
                   IoCallback done) override;
  void SubmitRead(uint64_t offset, void* buf, size_t n,
                  IoCallback done) override;
  void SubmitFsync(IoCallback done) override;
  uint64_t Size() const override { return base_->Size(); }
  void SimulateCrash() override { base_->SimulateCrash(); }
  void Truncate(uint64_t new_size) override { base_->Truncate(new_size); }

 private:
  std::unique_ptr<Device> base_;
  uint64_t flush_latency_us_;
  uint64_t per_mb_us_;
  // relaxed: latency-model bookkeeping only; never used for correctness.
  std::atomic<uint64_t> bytes_since_flush_{0};
};

/// Wraps another device and injects storage faults from the process-wide
/// FaultPlane: failed writes (device.write_fail), torn writes that persist
/// only a prefix of the range before erroring (device.torn_write), and slow
/// fsync (device.slow_fsync, param = stall in microseconds). `scope` keys
/// the injection points so a chaos schedule can target one worker's device.
/// Probes fire on the submission path, so they behave identically under the
/// thread-pool and io_uring engines (the parity regression test pins this).
/// Zero overhead while the plane is disabled.
class FaultDevice : public Device {
 public:
  FaultDevice(std::unique_ptr<Device> base, uint64_t scope);

  void SubmitWrite(uint64_t offset, const void* data, size_t n,
                   IoCallback done) override;
  void SubmitRead(uint64_t offset, void* buf, size_t n,
                  IoCallback done) override;
  void SubmitFsync(IoCallback done) override;
  uint64_t Size() const override { return base_->Size(); }
  void SimulateCrash() override { base_->SimulateCrash(); }
  void Truncate(uint64_t new_size) override { base_->Truncate(new_size); }
  // Intentionally keeps the default SyncRoot() == this: coalesced fsyncs
  // must pass through the fault probes.

 private:
  std::unique_ptr<Device> base_;
  const uint64_t scope_;
};

/// Non-owning fixed-origin view of a shared base device, used to pack many
/// shard logs into one physical file so their fsyncs coalesce (the bench's
/// multi-shard-per-device configuration). Size() is the view's own completed
/// high-water mark; SyncRoot() forwards to the base so the group-commit
/// scheduler folds all slices of a file into one fsync. Truncate only resets
/// the view's watermark (a shared base cannot be cut); SimulateCrash crashes
/// the whole base device.
class DeviceSlice : public Device {
 public:
  DeviceSlice(Device* base, uint64_t origin);

  void SubmitWrite(uint64_t offset, const void* data, size_t n,
                   IoCallback done) override;
  void SubmitRead(uint64_t offset, void* buf, size_t n,
                  IoCallback done) override;
  void SubmitFsync(IoCallback done) override;
  uint64_t Size() const override;
  void SimulateCrash() override { base_->SimulateCrash(); }
  void Truncate(uint64_t new_size) override;
  Device* SyncRoot() override { return base_->SyncRoot(); }

 private:
  Device* base_;
  const uint64_t origin_;
  mutable Mutex mu_{LockRank::kStorage, "device.slice"};
  uint64_t size_ GUARDED_BY(mu_) = 0;
};

/// The paper's three storage backends, plus explicit async-engine pins used
/// by the backend-parity tests and benches: kThreadPool / kIoUring are
/// file-backed devices whose I/O is forced onto that engine (kIoUring
/// degrades to the thread pool when the kernel lacks io_uring).
enum class StorageBackend { kNull, kLocal, kCloud, kThreadPool, kIoUring };

/// Factory: kNull -> NullDevice; kLocal -> MemoryDevice (or FileDevice when
/// `dir` is non-empty); kCloud -> LatencyDevice over the local device;
/// kThreadPool/kIoUring -> FileDevice pinned to that engine (under `dir`, or
/// the system temp dir when empty).
std::unique_ptr<Device> MakeDevice(StorageBackend backend,
                                   const std::string& dir = "",
                                   const std::string& name = "");

}  // namespace dpr

#endif  // DPR_STORAGE_DEVICE_H_
