#include "storage/fsync_scheduler.h"

#include <utility>

#include "common/clock.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

struct SchedMetrics {
  Counter* requests;
  Counter* fsyncs;
  Counter* coalesced;
  Counter* failures;
  Gauge* pending;
  ShardedHistogram* wait_us;

  static SchedMetrics& Get() {
    static SchedMetrics m = [] {
      auto& reg = MetricsRegistry::Default();
      SchedMetrics v;
      v.requests = reg.counter("storage.sched.requests");
      v.fsyncs = reg.counter("storage.sched.fsyncs");
      v.coalesced = reg.counter("storage.sched.coalesced");
      v.failures = reg.counter("storage.sched.failures");
      v.pending = reg.gauge("storage.sched.pending");
      v.wait_us = reg.histogram("storage.sched.wait_us");
      return v;
    }();
    return m;
  }
};

}  // namespace

GroupCommitScheduler::GroupCommitScheduler() {
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

GroupCommitScheduler::~GroupCommitScheduler() {
  {
    MutexLock lock(mu_);
    // Drain: the dispatcher keeps issuing fsyncs until every registered
    // waiter has been answered, so destruction never strands a durability
    // callback.
    auto busy = [this]() REQUIRES(mu_) {
      if (inflight_fsyncs_ > 0 || !ready_.empty()) return true;
      for (const auto& kv : devices_) {
        if (kv.second.fsync_in_flight || !kv.second.pending.empty()) {
          return true;
        }
      }
      return false;
    };
    while (busy()) cv_.Wait(mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  dispatcher_.join();
}

void GroupCommitScheduler::RequestSync(Device* dev, IoCallback done) {
  Device* root = dev->SyncRoot();
  auto& m = SchedMetrics::Get();
  m.requests->Add(1);
  m.pending->Add(1);
  MutexLock lock(mu_);
  DeviceState& st = devices_[root];
  if (!st.pending.empty() || st.fsync_in_flight) {
    m.coalesced->Add(1);
    waiters_coalesced_.fetch_add(1, std::memory_order_relaxed);
  }
  if (st.pending.empty()) st.oldest_request_us = NowMicros();
  st.pending.push_back(std::move(done));
  if (!st.queued && !st.fsync_in_flight) {
    st.queued = true;
    ready_.push_back(root);
    cv_.NotifyAll();
  }
}

Status GroupCommitScheduler::SyncNow(Device* dev) {
  struct Waiter {
    Mutex mu{LockRank::kStorageIoWait, "sched.sync_now"};
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    Status status GUARDED_BY(mu);
  } waiter;
  RequestSync(dev, [&waiter](Status s) {
    MutexLock lock(waiter.mu);
    waiter.status = std::move(s);
    waiter.done = true;
    waiter.cv.NotifyAll();
  });
  MutexLock lock(waiter.mu);
  while (!waiter.done) waiter.cv.Wait(waiter.mu);
  return waiter.status;
}

uint64_t GroupCommitScheduler::fsyncs_issued() const {
  return fsyncs_issued_.load(std::memory_order_relaxed);
}

uint64_t GroupCommitScheduler::waiters_coalesced() const {
  return waiters_coalesced_.load(std::memory_order_relaxed);
}

void GroupCommitScheduler::DispatchLoop() {
  for (;;) {
    Device* root = nullptr;
    std::vector<IoCallback> batch;
    {
      MutexLock lock(mu_);
      while (ready_.empty() && !stop_) cv_.Wait(mu_);
      if (ready_.empty() && stop_) return;
      root = ready_.front();
      ready_.pop_front();
      DeviceState& st = devices_[root];
      st.queued = false;
      if (st.fsync_in_flight || st.pending.empty()) continue;
      // Snapshot the group: waiters arriving from here on belong to the
      // next fsync (this one cannot vouch for their writes).
      batch = std::move(st.pending);
      st.pending.clear();
      st.fsync_in_flight = true;
      ++inflight_fsyncs_;
      SchedMetrics::Get().wait_us->Record(NowMicros() -
                                          st.oldest_request_us);
    }
    SchedMetrics::Get().fsyncs->Add(1);
    fsyncs_issued_.fetch_add(1, std::memory_order_relaxed);
    // Submit outside the scheduler lock: a stalled device (slow-fsync
    // fault, cloud latency model) must not block dispatch for other
    // devices... though it does occupy the dispatcher for the duration of
    // a *synchronous* submit-side stall, which models a busy device queue.
    root->SubmitFsync([this, root, batch = std::move(batch)](Status s) mutable {
      OnFsyncDone(root, std::move(batch), std::move(s));
    });
  }
}

void GroupCommitScheduler::OnFsyncDone(Device* root,
                                       std::vector<IoCallback> batch,
                                       Status s) {
  auto& m = SchedMetrics::Get();
  if (!s.ok()) m.failures->Add(1);
  m.pending->Sub(static_cast<int64_t>(batch.size()));
  // Fan out with no locks held; waiters may re-enter RequestSync.
  for (auto& cb : batch) {
    if (cb) cb(s);
  }
  MutexLock lock(mu_);
  DeviceState& st = devices_[root];
  st.fsync_in_flight = false;
  --inflight_fsyncs_;
  if (!st.pending.empty() && !st.queued) {
    st.queued = true;
    ready_.push_back(root);
  }
  cv_.NotifyAll();
}

}  // namespace dpr
