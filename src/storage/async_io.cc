#include "storage/async_io.h"

#include <errno.h>
#include <string.h>
#include <unistd.h>

#include <atomic>
#include <deque>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace dpr {
namespace {

// Shared instrumentation for both backends: submission depth, completion
// latency, and the fallback counter the factory bumps.
struct IoMetrics {
  Counter* submitted;
  Counter* completed;
  Counter* errors;
  Gauge* inflight;
  ShardedHistogram* completion_us;
  Counter* fallbacks;

  static IoMetrics& Get() {
    static IoMetrics m = [] {
      auto& reg = MetricsRegistry::Default();
      IoMetrics v;
      v.submitted = reg.counter("storage.io.submitted");
      v.completed = reg.counter("storage.io.completed");
      v.errors = reg.counter("storage.io.errors");
      v.inflight = reg.gauge("storage.io.inflight");
      v.completion_us = reg.histogram("storage.io.completion_us");
      v.fallbacks = reg.counter("storage.io.engine_fallbacks");
      return v;
    }();
    return m;
  }
};

}  // namespace

namespace internal {

// Blocking execution of one IoOp with full-transfer and EINTR handling.
// This is the single place outside the io_uring ring where the raw
// positional syscalls live; both the thread-pool backend and the io_uring
// backend's last-resort paths use it.
Status ExecuteIoOp(const IoOp& op) {
  switch (op.type) {
    case IoOp::Type::kWrite: {
      const char* src = static_cast<const char*>(op.write_buf);
      size_t remaining = op.len;
      uint64_t off = op.offset;
      while (remaining > 0) {
        ssize_t n = ::pwrite(op.fd, src, remaining, static_cast<off_t>(off));
        if (n < 0) {
          if (errno == EINTR) continue;
          return Status::IOError(std::string("pwrite: ") + strerror(errno));
        }
        src += n;
        off += static_cast<uint64_t>(n);
        remaining -= static_cast<size_t>(n);
      }
      return Status::OK();
    }
    case IoOp::Type::kRead: {
      char* dst = static_cast<char*>(op.read_buf);
      size_t remaining = op.len;
      uint64_t off = op.offset;
      while (remaining > 0) {
        ssize_t n = ::pread(op.fd, dst, remaining, static_cast<off_t>(off));
        if (n < 0) {
          if (errno == EINTR) continue;
          return Status::IOError(std::string("pread: ") + strerror(errno));
        }
        if (n == 0) return Status::IOError("read past end of device");
        dst += n;
        off += static_cast<uint64_t>(n);
        remaining -= static_cast<size_t>(n);
      }
      return Status::OK();
    }
    case IoOp::Type::kFsync: {
      int rc;
      do {
        rc = ::fdatasync(op.fd);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) {
        return Status::IOError(std::string("fdatasync: ") + strerror(errno));
      }
      return Status::OK();
    }
  }
  return Status::IOError("unknown io op");
}

void NoteIoSubmitted(size_t n) {
  auto& m = IoMetrics::Get();
  m.submitted->Add(n);
  m.inflight->Add(static_cast<int64_t>(n));
}

void NoteIoCompleted(uint64_t submit_us, bool ok) {
  auto& m = IoMetrics::Get();
  m.completed->Add(1);
  if (!ok) m.errors->Add(1);
  m.inflight->Add(-1);
  m.completion_us->Record(NowMicros() - submit_us);
}

}  // namespace internal

namespace {

/// Portable backend: a bounded crew of workers draining a FIFO of blocking
/// positional syscalls. Ops on distinct fds (and disjoint ranges of one fd)
/// may run concurrently and complete out of order, matching the io_uring
/// contract, which is what the out-of-order storage tests pin down.
class ThreadPoolIoEngine : public IoEngine {
 public:
  explicit ThreadPoolIoEngine(uint32_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (uint32_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { Loop(); });
    }
  }

  ~ThreadPoolIoEngine() override {
    {
      MutexLock lock(mu_);
      stop_ = true;
      cv_.NotifyAll();
    }
    for (auto& t : workers_) t.join();
  }

  void Submit(IoOp op) override {
    internal::NoteIoSubmitted(1);
    MutexLock lock(mu_);
    queue_.push_back(Pending{std::move(op), NowMicros()});
    cv_.NotifyOne();
  }

  void SubmitBatch(std::vector<IoOp> ops) override {
    if (ops.empty()) return;
    internal::NoteIoSubmitted(ops.size());
    const uint64_t now = NowMicros();
    MutexLock lock(mu_);
    for (auto& op : ops) queue_.push_back(Pending{std::move(op), now});
    cv_.NotifyAll();
  }

  IoEngineKind kind() const override { return IoEngineKind::kThreadPool; }

 private:
  struct Pending {
    IoOp op;
    uint64_t submit_us;
  };

  void Loop() {
    for (;;) {
      Pending item;
      {
        MutexLock lock(mu_);
        while (queue_.empty() && !stop_) cv_.Wait(mu_);
        if (queue_.empty()) return;  // stop_ and drained
        item = std::move(queue_.front());
        queue_.pop_front();
      }
      Status s = internal::ExecuteIoOp(item.op);
      internal::NoteIoCompleted(item.submit_us, s.ok());
      if (item.op.done) item.op.done(std::move(s));
    }
  }

  Mutex mu_{LockRank::kStorageEngine, "storage.engine.pool"};
  CondVar cv_;
  std::deque<Pending> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace

#if !DPR_HAVE_IOURING
// The io_uring backend is compiled out (DPR_IOURING=OFF or headers absent):
// the factory degrades to the thread pool.
std::shared_ptr<IoEngine> TryMakeIoUringEngine(uint32_t /*queue_depth*/) {
  return nullptr;
}
#endif

bool IoUringSupported() {
  static const bool supported = [] {
    auto probe = TryMakeIoUringEngine(/*queue_depth=*/8);
    return probe != nullptr;
  }();
  return supported;
}

std::shared_ptr<IoEngine> MakeIoEngine(const IoEngineOptions& options) {
  if (options.kind == IoEngineKind::kIoUring ||
      options.kind == IoEngineKind::kAuto) {
    auto ring = TryMakeIoUringEngine(options.queue_depth);
    if (ring != nullptr) return ring;
    if (options.kind == IoEngineKind::kIoUring) {
      // Explicit request that could not be honored: record the fallback so
      // deployments notice they are running the portable path.
      IoMetrics::Get().fallbacks->Add(1);
      DPR_WARN(
              "io_uring engine unavailable (setup failed or compiled out); "
              "falling back to thread-pool backend");
    }
  }
  return std::make_shared<ThreadPoolIoEngine>(options.threads);
}

std::shared_ptr<IoEngine> DefaultIoEngine() {
  static std::shared_ptr<IoEngine>* engine =
      new std::shared_ptr<IoEngine>(MakeIoEngine(IoEngineOptions{}));
  return *engine;
}

}  // namespace dpr
