#ifndef DPR_STORAGE_ASYNC_IO_H_
#define DPR_STORAGE_ASYNC_IO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"

namespace dpr {

/// Completion callback for one asynchronous I/O operation. Invoked exactly
/// once, possibly inline on the submitting thread (memory-backed devices,
/// immediate failures) or on an engine completion thread. Callbacks must be
/// cheap and must not block on other I/O submitted to the same engine.
using IoCallback = std::function<void(Status)>;

/// Backend selector for MakeIoEngine.
enum class IoEngineKind {
  kAuto,        // io_uring when compiled in and the kernel accepts it,
                // otherwise the portable thread pool
  kThreadPool,  // portable blocking-syscall pool
  kIoUring,     // io_uring SQ/CQ rings; falls back to kThreadPool when
                // unavailable (compiled out, seccomp, old kernel)
};

/// One submission. `done` fires with OK after the full `len` bytes were
/// written/read (engines internally resubmit short transfers), or with
/// IOError. Fsync ops ignore offset/len.
struct IoOp {
  enum class Type : uint8_t { kWrite, kRead, kFsync };
  Type type = Type::kWrite;
  int fd = -1;
  uint64_t offset = 0;
  const void* write_buf = nullptr;  // kWrite: source (caller-owned until done)
  void* read_buf = nullptr;         // kRead: destination
  size_t len = 0;
  IoCallback done;
};

/// Asynchronous submission/completion engine over raw file descriptors.
/// Engines are shared: one engine per box serves every file-backed Device,
/// which is what lets io_uring batch SQEs across shards. Ordering contract:
/// operations may complete out of order; callers must not submit concurrent
/// overlapping writes to the same range. An fsync makes durable (at least)
/// every write whose completion was observed before the fsync was submitted.
class IoEngine {
 public:
  virtual ~IoEngine() = default;

  virtual void Submit(IoOp op) = 0;

  /// Batched submission: one queue-lock round (thread pool) or one
  /// io_uring_enter syscall (io_uring) for the whole batch.
  virtual void SubmitBatch(std::vector<IoOp> ops) = 0;

  /// The backend actually running (after any fallback).
  virtual IoEngineKind kind() const = 0;
};

struct IoEngineOptions {
  IoEngineKind kind = IoEngineKind::kAuto;
  /// Thread-pool backend: number of worker threads.
  uint32_t threads = 3;
  /// io_uring backend: SQ depth (power of two, <= 32768). Values the kernel
  /// rejects make setup fail, which exercises the thread-pool fallback.
  uint32_t queue_depth = 256;
};

/// Builds an engine per `options`. Never returns null: when the requested
/// io_uring backend cannot start, returns a thread-pool engine instead and
/// bumps the `storage.io.engine_fallbacks` counter.
std::shared_ptr<IoEngine> MakeIoEngine(const IoEngineOptions& options = {});

/// Whether the io_uring backend is compiled in AND this kernel/container
/// accepts io_uring_setup(2). Cached after the first call.
bool IoUringSupported();

/// Process-wide shared engine (kAuto), created on first use. File-backed
/// devices that are not given an explicit engine use this one, so all
/// their submissions share one ring / one pool.
std::shared_ptr<IoEngine> DefaultIoEngine();

// Implemented in io_uring_engine.cc when the backend is compiled in
// (DPR_HAVE_IOURING); returns null when setup fails. Exposed for the
// factory and for backend-forcing tests, not for general use.
std::shared_ptr<IoEngine> TryMakeIoUringEngine(uint32_t queue_depth);

}  // namespace dpr

#endif  // DPR_STORAGE_ASYNC_IO_H_
