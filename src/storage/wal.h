#ifndef DPR_STORAGE_WAL_H_
#define DPR_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "common/sync.h"
#include "storage/device.h"

namespace dpr {

class GroupCommitScheduler;

/// Append-only write-ahead log over a Device. Records are length-prefixed and
/// CRC32C-checksummed; replay stops cleanly at the first torn or missing
/// record, so a crash mid-append loses at most the unsynced suffix.
///
/// Thread-safe: appends are serialized internally. Group commit is the
/// caller's policy — batch appends, then call Sync() once. When constructed
/// with a GroupCommitScheduler, Sync()/SyncAsync() register durability
/// waiters there instead of issuing a private fsync, so logs sharing a
/// device (or a DeviceSlice of one) coalesce into one fsync per group.
class WriteAheadLog {
 public:
  explicit WriteAheadLog(std::unique_ptr<Device> device,
                         GroupCommitScheduler* scheduler = nullptr);

  /// Appends one record; returns its starting offset. Durable after the next
  /// successful Sync().
  Status Append(Slice record, uint64_t* offset = nullptr);

  /// Makes all appended records durable.
  Status Sync();

  /// Async variant: `done` fires once all records appended before this call
  /// are durable (via the scheduler's next fsync group when attached).
  void SyncAsync(IoCallback done);

  /// Invokes `visitor(offset, record)` for each intact record in order.
  /// Returns OK even if the log ends in a torn record (that suffix is
  /// silently dropped, as crash recovery requires).
  Status Replay(
      const std::function<void(uint64_t offset, Slice record)>& visitor);

  /// Discards the entire log (e.g. after a compacting checkpoint).
  Status Reset();

  uint64_t SizeBytes() const { return device_->Size(); }
  Device* device() { return device_.get(); }

 private:
  std::unique_ptr<Device> device_;
  GroupCommitScheduler* scheduler_;  // optional, not owned
  Mutex mu_{LockRank::kStorageWal, "storage.wal"};
  uint64_t tail_ GUARDED_BY(mu_) = 0;
};

}  // namespace dpr

#endif  // DPR_STORAGE_WAL_H_
