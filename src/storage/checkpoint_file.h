#ifndef DPR_STORAGE_CHECKPOINT_FILE_H_
#define DPR_STORAGE_CHECKPOINT_FILE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/device.h"

namespace dpr {

class GroupCommitScheduler;

/// Helpers for whole-blob checkpoint images: a fixed header (magic, version
/// token, length, CRC) followed by the serialized store snapshot. A blob is
/// valid only if fully written and checksummed, so a crash during Commit()
/// leaves the previous checkpoint intact (callers alternate between blob
/// slots or separate devices per version).
struct CheckpointBlob {
  /// Writes payload-then-header and makes the blob durable. With a
  /// `scheduler`, the sealing fsync registers as a group-commit waiter so
  /// blobs from shards sharing a device coalesce into one fsync.
  static Status Write(Device* device, uint64_t offset, uint64_t version_token,
                      Slice payload, GroupCommitScheduler* scheduler = nullptr);

  /// Reads and validates the blob at `offset`; on success fills `payload` and
  /// `version_token`. Returns NotFound if there is no valid blob.
  static Status Read(Device* device, uint64_t offset, std::string* payload,
                     uint64_t* version_token);
};

/// Serialized hash-index image riding inside a checkpoint meta record: a
/// pair count followed by (bucket, head-address) pairs. A full image lists
/// every non-empty bucket's sub-boundary head; a delta lists only buckets
/// dirtied since the chain base. The image is framed by the surrounding WAL
/// record (length + CRC), so it carries no checksum of its own.
struct IndexImage {
  std::vector<std::pair<uint32_t, uint64_t>> pairs;  // (bucket, head addr)

  void AppendTo(std::string* out) const;
  /// Consumes one image from `dec`. Fails (false) on a truncated record.
  bool ParseFrom(Decoder* dec);

  uint64_t EncodedSize() const { return 8 + pairs.size() * 12; }
};

}  // namespace dpr

#endif  // DPR_STORAGE_CHECKPOINT_FILE_H_
