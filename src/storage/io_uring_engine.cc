// io_uring backend for IoEngine, written against the raw kernel UAPI
// (<linux/io_uring.h>) rather than liburing so the build needs no extra
// dependency. Compiled only when cmake finds the header (DPR_IOURING=ON,
// default); otherwise async_io.cc's stub factory keeps the thread pool as
// the sole backend.
//
// Design notes:
//  - One SQ/CQ ring pair per engine, shared by every file-backed Device on
//    the box. SQE production is serialized under a kStorageEngine mutex and
//    flushed with a single io_uring_enter(2) per SubmitBatch call — that
//    syscall amortization across shards is the point of the backend.
//  - A dedicated reaper thread parks in io_uring_enter(GETEVENTS,
//    min_complete=1) and drains CQEs. Completion records are heap-allocated
//    and carried through user_data.
//  - Short transfers (res < len) are resubmitted for the remainder, so the
//    engine presents the same full-transfer contract as the thread pool.
//  - Registered buffers (IORING_REGISTER_BUFFERS) are deliberately not
//    used: callers pass arbitrary transient buffers (WAL tails, checkpoint
//    chunks), so registration would churn per-op — see DESIGN.md §4h.
//  - Shutdown: destructor waits for in-flight ops to drain, then submits a
//    NOP sentinel (user_data=0) that tells the reaper to exit.

#include "storage/async_io.h"

#if DPR_HAVE_IOURING

#include <errno.h>
#include <linux/io_uring.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "common/sync.h"

namespace dpr {

namespace internal {
Status ExecuteIoOp(const IoOp& op);
void NoteIoSubmitted(size_t n);
void NoteIoCompleted(uint64_t submit_us, bool ok);
}  // namespace internal

namespace {

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

class IoUringEngine : public IoEngine {
 public:
  // Factory: returns null when io_uring_setup or the ring mmaps fail
  // (seccomp'd container, old kernel, absurd queue depth) so MakeIoEngine
  // can fall back to the thread pool.
  static std::shared_ptr<IoUringEngine> Create(uint32_t queue_depth) {
    auto engine = std::shared_ptr<IoUringEngine>(new IoUringEngine());
    if (!engine->Init(queue_depth)) return nullptr;
    return engine;
  }

  ~IoUringEngine() override {
    if (ring_fd_ < 0) return;
    // Wait until every real op has completed, then wake the reaper with a
    // NOP sentinel so it exits after draining.
    {
      MutexLock lock(mu_);
      while (inflight_ > 0) drained_.Wait(mu_);
      stopping_ = true;
      PushSqe(MakeNopSqe());
      FlushSubmissions(1);
    }
    reaper_.join();
    TeardownRings();
  }

  void Submit(IoOp op) override {
    std::vector<IoOp> one;
    one.push_back(std::move(op));
    SubmitBatch(std::move(one));
  }

  void SubmitBatch(std::vector<IoOp> ops) override {
    if (ops.empty()) return;
    internal::NoteIoSubmitted(ops.size());
    const uint64_t now = NowMicros();
    MutexLock lock(mu_);
    inflight_ += ops.size();
    unsigned queued = 0;
    for (auto& op : ops) {
      auto* rec = new Completion{std::move(op), now};
      queued += EnqueueLocked(rec);
    }
    FlushSubmissions(queued);
  }

  IoEngineKind kind() const override { return IoEngineKind::kIoUring; }

 private:
  // Heap record carried through sqe.user_data; freed by the reaper when the
  // op fully completes (possibly after short-transfer resubmission).
  struct Completion {
    IoOp op;
    uint64_t submit_us;
  };

  IoUringEngine() = default;

  bool Init(uint32_t queue_depth) {
    io_uring_params p;
    memset(&p, 0, sizeof(p));
    ring_fd_ = SysIoUringSetup(queue_depth, &p);
    if (ring_fd_ < 0) return false;

    sq_entries_ = p.sq_entries;
    size_t sq_size = p.sq_off.array + p.sq_entries * sizeof(uint32_t);
    size_t cq_size = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    single_mmap_ = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap_ && cq_size > sq_size) sq_size = cq_size;

    sq_ring_sz_ = sq_size;
    sq_ring_ = mmap(nullptr, sq_size, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      close(ring_fd_);
      ring_fd_ = -1;
      return false;
    }
    if (single_mmap_) {
      cq_ring_ = sq_ring_;
      cq_ring_sz_ = 0;
    } else {
      cq_ring_sz_ = cq_size;
      cq_ring_ = mmap(nullptr, cq_size, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        munmap(sq_ring_, sq_ring_sz_);
        close(ring_fd_);
        ring_fd_ = -1;
        return false;
      }
    }
    sqes_sz_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        mmap(nullptr, sqes_sz_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      if (!single_mmap_) munmap(cq_ring_, cq_ring_sz_);
      munmap(sq_ring_, sq_ring_sz_);
      close(ring_fd_);
      ring_fd_ = -1;
      return false;
    }

    auto* sq = static_cast<char*>(sq_ring_);
    sq_head_ = reinterpret_cast<std::atomic<uint32_t>*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<std::atomic<uint32_t>*>(sq + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<uint32_t*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<uint32_t*>(sq + p.sq_off.array);

    auto* cq = static_cast<char*>(cq_ring_);
    cq_head_ = reinterpret_cast<std::atomic<uint32_t>*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<std::atomic<uint32_t>*>(cq + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<uint32_t*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);

    reaper_ = std::thread([this] { ReapLoop(); });
    return true;
  }

  void TeardownRings() {
    munmap(sqes_, sqes_sz_);
    if (!single_mmap_) munmap(cq_ring_, cq_ring_sz_);
    munmap(sq_ring_, sq_ring_sz_);
    close(ring_fd_);
    ring_fd_ = -1;
  }

  io_uring_sqe MakeNopSqe() {
    io_uring_sqe sqe;
    memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = IORING_OP_NOP;
    sqe.user_data = 0;  // sentinel: reaper exits after seeing this
    return sqe;
  }

  static io_uring_sqe SqeFor(const Completion* rec) {
    const IoOp& op = rec->op;
    io_uring_sqe sqe;
    memset(&sqe, 0, sizeof(sqe));
    sqe.fd = op.fd;
    sqe.user_data = reinterpret_cast<uint64_t>(rec);
    switch (op.type) {
      case IoOp::Type::kWrite:
        sqe.opcode = IORING_OP_WRITE;
        sqe.addr = reinterpret_cast<uint64_t>(op.write_buf);
        sqe.len = static_cast<uint32_t>(op.len);
        sqe.off = op.offset;
        break;
      case IoOp::Type::kRead:
        sqe.opcode = IORING_OP_READ;
        sqe.addr = reinterpret_cast<uint64_t>(op.read_buf);
        sqe.len = static_cast<uint32_t>(op.len);
        sqe.off = op.offset;
        break;
      case IoOp::Type::kFsync:
        sqe.opcode = IORING_OP_FSYNC;
        sqe.fsync_flags = IORING_FSYNC_DATASYNC;
        break;
    }
    return sqe;
  }

  // Copies one SQE into the next free slot, flushing the ring via
  // io_uring_enter when it is full. Returns the number of SQEs now pending
  // flush (always 1; the flush side effect is what matters).
  unsigned EnqueueLocked(const Completion* rec) REQUIRES(mu_) {
    PushSqe(SqeFor(rec));
    return 1;
  }

  void PushSqe(io_uring_sqe sqe) REQUIRES(mu_) {
    // Non-SQPOLL rings consume SQEs synchronously inside io_uring_enter, so
    // a full ring clears as soon as we flush what is already queued.
    // relaxed tail read: we are the only SQ producer; the kernel side only
    // advances head, which we pair with acquire below.
    uint32_t tail = sq_tail_->load(std::memory_order_relaxed);
    while (tail - sq_head_->load(std::memory_order_acquire) >= sq_entries_) {
      FlushSubmissions(0);
    }
    const uint32_t idx = tail & sq_mask_;
    sqes_[idx] = sqe;
    sq_array_[idx] = idx;
    sq_tail_->store(tail + 1, std::memory_order_release);
    ++pending_flush_;
  }

  // Submits everything between the kernel's SQ head and our tail. `hint` is
  // only for readability at call sites; the kernel reads the ring directly.
  void FlushSubmissions(unsigned /*hint*/) REQUIRES(mu_) {
    while (pending_flush_ > 0) {
      int r = SysIoUringEnter(ring_fd_, pending_flush_, 0, 0);
      if (r < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EBUSY) continue;
        DPR_CHECK_MSG(false, "io_uring_enter failed: %s", strerror(errno));
      }
      pending_flush_ -= static_cast<unsigned>(r);
    }
  }

  void ReapLoop() {
    bool stop_seen = false;
    while (!stop_seen || InflightNonZero()) {
      // relaxed head read: we are the only CQ consumer; the ordering pair
      // with the kernel producer is the acquire on cq_tail_ below.
      uint32_t head = cq_head_->load(std::memory_order_relaxed);
      if (head == cq_tail_->load(std::memory_order_acquire)) {
        int r = SysIoUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
        if (r < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY) {
          DPR_CHECK_MSG(false, "io_uring_enter(GETEVENTS) failed: %s",
                        strerror(errno));
        }
        continue;
      }
      while (head != cq_tail_->load(std::memory_order_acquire)) {
        const io_uring_cqe cqe = cqes_[head & cq_mask_];
        ++head;
        cq_head_->store(head, std::memory_order_release);
        if (cqe.user_data == 0) {
          stop_seen = true;
          continue;
        }
        HandleCqe(cqe);
      }
    }
  }

  bool InflightNonZero() {
    MutexLock lock(mu_);
    return inflight_ > 0;
  }

  void HandleCqe(const io_uring_cqe& cqe) {
    auto* rec = reinterpret_cast<Completion*>(cqe.user_data);
    // The submitter wrote *rec and published it through the SQ ring under
    // mu_, but the SQ->CQ ordering that makes the record visible here runs
    // through the kernel, outside the C++ memory model (and TSan's sight).
    // Pairing with the submitting critical section restores a real
    // happens-before edge before the record is dereferenced.
    { MutexLock lock(mu_); }
    IoOp& op = rec->op;
    const int32_t res = cqe.res;
    if (res == -EINTR || res == -EAGAIN) {
      Resubmit(rec);
      return;
    }
    Status s = Status::OK();
    if (res < 0) {
      s = Status::IOError(std::string("io_uring: ") + strerror(-res));
    } else if (op.type != IoOp::Type::kFsync &&
               static_cast<size_t>(res) < op.len) {
      if (res == 0 && op.type == IoOp::Type::kRead) {
        s = Status::IOError("read past end of device");
      } else {
        // Short transfer: advance the cursor and resubmit the remainder so
        // callers always observe full-length completions.
        const size_t n = static_cast<size_t>(res);
        op.offset += n;
        op.len -= n;
        if (op.type == IoOp::Type::kWrite) {
          op.write_buf = static_cast<const char*>(op.write_buf) + n;
        } else {
          op.read_buf = static_cast<char*>(op.read_buf) + n;
        }
        Resubmit(rec);
        return;
      }
    }
    Finish(rec, std::move(s));
  }

  void Resubmit(Completion* rec) {
    MutexLock lock(mu_);
    PushSqe(SqeFor(rec));
    FlushSubmissions(1);
  }

  // Reaper-thread context: invoke the callback with no engine locks held,
  // then drop the inflight count (the destructor waits on it).
  void Finish(Completion* rec, Status s) {
    internal::NoteIoCompleted(rec->submit_us, s.ok());
    IoCallback done = std::move(rec->op.done);
    delete rec;
    if (done) done(std::move(s));
    MutexLock lock(mu_);
    --inflight_;
    if (inflight_ == 0) drained_.NotifyAll();
  }

  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  size_t sq_ring_sz_ = 0, cq_ring_sz_ = 0, sqes_sz_ = 0;
  bool single_mmap_ = false;
  uint32_t sq_entries_ = 0;

  std::atomic<uint32_t>* sq_head_ = nullptr;
  std::atomic<uint32_t>* sq_tail_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* sq_array_ = nullptr;
  std::atomic<uint32_t>* cq_head_ = nullptr;
  std::atomic<uint32_t>* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  Mutex mu_{LockRank::kStorageEngine, "storage.engine.uring"};
  CondVar drained_;
  size_t inflight_ GUARDED_BY(mu_) = 0;
  unsigned pending_flush_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;

  std::thread reaper_;
};

}  // namespace

std::shared_ptr<IoEngine> TryMakeIoUringEngine(uint32_t queue_depth) {
  return IoUringEngine::Create(queue_depth);
}

}  // namespace dpr

#endif  // DPR_HAVE_IOURING
