// io_uring backend for IoEngine, written against the raw kernel UAPI
// (<linux/io_uring.h>) rather than liburing so the build needs no extra
// dependency. Compiled only when cmake finds the header (DPR_IOURING=ON,
// default); otherwise async_io.cc's stub factory keeps the thread pool as
// the sole backend.
//
// Design notes:
//  - One SQ/CQ ring pair per engine, shared by every file-backed Device on
//    the box. The ring mmap/submit/drain core lives in common/uring.h
//    (shared with the net transport loops); SQE production is serialized
//    under a kStorageEngine mutex and flushed with a single
//    io_uring_enter(2) per SubmitBatch call — that syscall amortization
//    across shards is the point of the backend.
//  - A dedicated reaper thread parks in io_uring_enter(GETEVENTS,
//    min_complete=1) and drains CQEs. Completion records are heap-allocated
//    and carried through user_data.
//  - Short transfers (res < len) are resubmitted for the remainder, so the
//    engine presents the same full-transfer contract as the thread pool.
//  - Registered buffers (IORING_REGISTER_BUFFERS) are deliberately not
//    used: callers pass arbitrary transient buffers (WAL tails, checkpoint
//    chunks), so registration would churn per-op — see DESIGN.md §4h.
//  - Shutdown: destructor waits for in-flight ops to drain, then submits a
//    NOP sentinel (user_data=0) that tells the reaper to exit.

#include "storage/async_io.h"

#if DPR_HAVE_IOURING

#include <errno.h>
#include <string.h>

#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "common/sync.h"
#include "common/uring.h"

namespace dpr {

namespace internal {
Status ExecuteIoOp(const IoOp& op);
void NoteIoSubmitted(size_t n);
void NoteIoCompleted(uint64_t submit_us, bool ok);
}  // namespace internal

namespace {

class IoUringEngine : public IoEngine {
 public:
  // Factory: returns null when io_uring_setup or the ring mmaps fail
  // (seccomp'd container, old kernel, absurd queue depth) so MakeIoEngine
  // can fall back to the thread pool.
  static std::shared_ptr<IoUringEngine> Create(uint32_t queue_depth) {
    auto engine = std::shared_ptr<IoUringEngine>(new IoUringEngine());
    if (!engine->Init(queue_depth)) return nullptr;
    return engine;
  }

  ~IoUringEngine() override {
    if (!ring_.valid()) return;
    // Wait until every real op has completed, then wake the reaper with a
    // NOP sentinel so it exits after draining.
    {
      MutexLock lock(mu_);
      while (inflight_ > 0) drained_.Wait(mu_);
      stopping_ = true;
      PushSqe(MakeNopSqe());
      FlushSubmissions(1);
    }
    reaper_.join();
    // ring_ teardown (munmaps + fd close) happens in its destructor.
  }

  void Submit(IoOp op) override {
    std::vector<IoOp> one;
    one.push_back(std::move(op));
    SubmitBatch(std::move(one));
  }

  void SubmitBatch(std::vector<IoOp> ops) override {
    if (ops.empty()) return;
    internal::NoteIoSubmitted(ops.size());
    const uint64_t now = NowMicros();
    MutexLock lock(mu_);
    inflight_ += ops.size();
    unsigned queued = 0;
    for (auto& op : ops) {
      auto* rec = new Completion{std::move(op), now};
      queued += EnqueueLocked(rec);
    }
    FlushSubmissions(queued);
  }

  IoEngineKind kind() const override { return IoEngineKind::kIoUring; }

 private:
  // Heap record carried through sqe.user_data; freed by the reaper when the
  // op fully completes (possibly after short-transfer resubmission).
  struct Completion {
    IoOp op;
    uint64_t submit_us;
  };

  IoUringEngine() = default;

  bool Init(uint32_t queue_depth) {
    if (!ring_.Init(queue_depth)) return false;
    reaper_ = std::thread([this] { ReapLoop(); });
    return true;
  }

  io_uring_sqe MakeNopSqe() {
    io_uring_sqe sqe;
    memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = IORING_OP_NOP;
    sqe.user_data = 0;  // sentinel: reaper exits after seeing this
    return sqe;
  }

  static io_uring_sqe SqeFor(const Completion* rec) {
    const IoOp& op = rec->op;
    io_uring_sqe sqe;
    memset(&sqe, 0, sizeof(sqe));
    sqe.fd = op.fd;
    sqe.user_data = reinterpret_cast<uint64_t>(rec);
    switch (op.type) {
      case IoOp::Type::kWrite:
        sqe.opcode = IORING_OP_WRITE;
        sqe.addr = reinterpret_cast<uint64_t>(op.write_buf);
        sqe.len = static_cast<uint32_t>(op.len);
        sqe.off = op.offset;
        break;
      case IoOp::Type::kRead:
        sqe.opcode = IORING_OP_READ;
        sqe.addr = reinterpret_cast<uint64_t>(op.read_buf);
        sqe.len = static_cast<uint32_t>(op.len);
        sqe.off = op.offset;
        break;
      case IoOp::Type::kFsync:
        sqe.opcode = IORING_OP_FSYNC;
        sqe.fsync_flags = IORING_FSYNC_DATASYNC;
        break;
    }
    return sqe;
  }

  // Copies one SQE into the next free slot, flushing the ring via
  // io_uring_enter when it is full. Returns the number of SQEs now pending
  // flush (always 1; the flush side effect is what matters).
  unsigned EnqueueLocked(const Completion* rec) REQUIRES(mu_) {
    PushSqe(SqeFor(rec));
    return 1;
  }

  void PushSqe(const io_uring_sqe& sqe) REQUIRES(mu_) { ring_.PushSqe(sqe); }

  // Submits everything between the kernel's SQ head and our tail. `hint` is
  // only for readability at call sites; the kernel reads the ring directly.
  void FlushSubmissions(unsigned /*hint*/) REQUIRES(mu_) {
    ring_.SubmitPending();
  }

  void ReapLoop() {
    bool stop_seen = false;
    while (!stop_seen || InflightNonZero()) {
      if (!ring_.CqReady()) {
        // EnterWait runs outside mu_ by contract: it only parks in
        // io_uring_enter(GETEVENTS) and touches no SQ state.
        ring_.EnterWait(1);
        continue;
      }
      ring_.DrainCqes([&](const io_uring_cqe& cqe) {
        if (cqe.user_data == 0) {
          stop_seen = true;
          return;
        }
        HandleCqe(cqe);
      });
    }
  }

  bool InflightNonZero() {
    MutexLock lock(mu_);
    return inflight_ > 0;
  }

  void HandleCqe(const io_uring_cqe& cqe) {
    auto* rec = reinterpret_cast<Completion*>(cqe.user_data);
    // The submitter wrote *rec and published it through the SQ ring under
    // mu_, but the SQ->CQ ordering that makes the record visible here runs
    // through the kernel, outside the C++ memory model (and TSan's sight).
    // Pairing with the submitting critical section restores a real
    // happens-before edge before the record is dereferenced.
    { MutexLock lock(mu_); }
    IoOp& op = rec->op;
    const int32_t res = cqe.res;
    if (res == -EINTR || res == -EAGAIN) {
      Resubmit(rec);
      return;
    }
    Status s = Status::OK();
    if (res < 0) {
      s = Status::IOError(std::string("io_uring: ") + strerror(-res));
    } else if (op.type != IoOp::Type::kFsync &&
               static_cast<size_t>(res) < op.len) {
      if (res == 0 && op.type == IoOp::Type::kRead) {
        s = Status::IOError("read past end of device");
      } else {
        // Short transfer: advance the cursor and resubmit the remainder so
        // callers always observe full-length completions.
        const size_t n = static_cast<size_t>(res);
        op.offset += n;
        op.len -= n;
        if (op.type == IoOp::Type::kWrite) {
          op.write_buf = static_cast<const char*>(op.write_buf) + n;
        } else {
          op.read_buf = static_cast<char*>(op.read_buf) + n;
        }
        Resubmit(rec);
        return;
      }
    }
    Finish(rec, std::move(s));
  }

  void Resubmit(Completion* rec) {
    MutexLock lock(mu_);
    PushSqe(SqeFor(rec));
    FlushSubmissions(1);
  }

  // Reaper-thread context: invoke the callback with no engine locks held,
  // then drop the inflight count (the destructor waits on it).
  void Finish(Completion* rec, Status s) {
    internal::NoteIoCompleted(rec->submit_us, s.ok());
    IoCallback done = std::move(rec->op.done);
    delete rec;
    if (done) done(std::move(s));
    MutexLock lock(mu_);
    --inflight_;
    if (inflight_ == 0) drained_.NotifyAll();
  }

  UringRing ring_;

  Mutex mu_{LockRank::kStorageEngine, "storage.engine.uring"};
  CondVar drained_;
  size_t inflight_ GUARDED_BY(mu_) = 0;
  unsigned pending_flush_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;

  std::thread reaper_;
};

}  // namespace

std::shared_ptr<IoEngine> TryMakeIoUringEngine(uint32_t queue_depth) {
  return IoUringEngine::Create(queue_depth);
}

}  // namespace dpr

#endif  // DPR_HAVE_IOURING
