#include "storage/checkpoint_file.h"

#include <cstring>

#include "common/hash.h"
#include "storage/fsync_scheduler.h"

namespace dpr {

namespace {
constexpr uint64_t kMagic = 0xd1c7b10bcafef00dULL;
constexpr size_t kHeaderSize = 8 + 8 + 8 + 4;  // magic, token, len, crc
}  // namespace

Status CheckpointBlob::Write(Device* device, uint64_t offset,
                             uint64_t version_token, Slice payload,
                             GroupCommitScheduler* scheduler) {
  char header[kHeaderSize];
  const uint64_t len = payload.size();
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  memcpy(header, &kMagic, 8);
  memcpy(header + 8, &version_token, 8);
  memcpy(header + 16, &len, 8);
  memcpy(header + 24, &crc, 4);
  // Payload first, header last: a torn write cannot produce a blob whose
  // header validates but whose body is incomplete.
  DPR_RETURN_NOT_OK(SyncIo::Write(device, offset + kHeaderSize,
                                  payload.data(), payload.size()));
  DPR_RETURN_NOT_OK(SyncIo::Write(device, offset, header, kHeaderSize));
  if (scheduler != nullptr) return scheduler->SyncNow(device);
  return SyncIo::Fsync(device);
}

void IndexImage::AppendTo(std::string* out) const {
  PutFixed64(out, pairs.size());
  for (const auto& [bucket, head] : pairs) {
    PutFixed32(out, bucket);
    PutFixed64(out, head);
  }
}

bool IndexImage::ParseFrom(Decoder* dec) {
  uint64_t count;
  if (!dec->GetFixed64(&count)) return false;
  if (dec->remaining() < count * 12) return false;
  pairs.clear();
  pairs.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t bucket;
    uint64_t head;
    if (!dec->GetFixed32(&bucket) || !dec->GetFixed64(&head)) return false;
    pairs.emplace_back(bucket, head);
  }
  return true;
}

Status CheckpointBlob::Read(Device* device, uint64_t offset,
                            std::string* payload, uint64_t* version_token) {
  if (device->Size() < offset + kHeaderSize) {
    return Status::NotFound("no checkpoint blob");
  }
  char header[kHeaderSize];
  DPR_RETURN_NOT_OK(SyncIo::Read(device, offset, header, kHeaderSize));
  uint64_t magic;
  uint64_t token;
  uint64_t len;
  uint32_t crc;
  memcpy(&magic, header, 8);
  memcpy(&token, header + 8, 8);
  memcpy(&len, header + 16, 8);
  memcpy(&crc, header + 24, 4);
  if (magic != kMagic) return Status::NotFound("bad checkpoint magic");
  if (device->Size() < offset + kHeaderSize + len) {
    return Status::Corruption("truncated checkpoint blob");
  }
  payload->resize(len);
  DPR_RETURN_NOT_OK(
      SyncIo::Read(device, offset + kHeaderSize, payload->data(), len));
  if (Crc32c(payload->data(), len) != crc) {
    return Status::Corruption("checkpoint blob checksum mismatch");
  }
  if (version_token != nullptr) *version_token = token;
  return Status::OK();
}

}  // namespace dpr
