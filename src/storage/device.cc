#include "storage/device.h"

// The raw positional syscalls here (open/lseek/ftruncate bookkeeping and the
// pread/pwrite backends) are the Device implementation itself, not a bypass
// of it — dprlint's storage-raw-io check exempts storage/ for this reason.

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/clock.h"
#include "common/hash.h"
#include "common/logging.h"
#include "fault/fault_plane.h"

namespace dpr {

// ------------------------------------------------------------------- SyncIo

namespace {

/// Stack-allocated rendezvous for the explicit SyncIo helper. The completion
/// may fire inline (before Wait is entered) or from an engine thread; the
/// notify happens while holding the waiter's own mutex, so the waiter cannot
/// be destroyed between the state change and the broadcast.
struct SyncWaiter {
  Mutex mu{LockRank::kStorageIoWait, "device.sync_waiter"};
  CondVar cv;
  bool done GUARDED_BY(mu) = false;
  Status status GUARDED_BY(mu);

  IoCallback Callback() {
    return [this](Status s) {
      MutexLock lock(mu);
      status = std::move(s);
      done = true;
      cv.NotifyAll();
    };
  }

  Status Wait() {
    MutexLock lock(mu);
    while (!done) cv.Wait(mu);
    return status;
  }
};

}  // namespace

Status SyncIo::Write(Device* device, uint64_t offset, const void* data,
                     size_t n) {
  SyncWaiter waiter;
  device->SubmitWrite(offset, data, n, waiter.Callback());
  return waiter.Wait();
}

Status SyncIo::Read(Device* device, uint64_t offset, void* buf, size_t n) {
  SyncWaiter waiter;
  device->SubmitRead(offset, buf, n, waiter.Callback());
  return waiter.Wait();
}

Status SyncIo::Fsync(Device* device) {
  SyncWaiter waiter;
  device->SubmitFsync(waiter.Callback());
  return waiter.Wait();
}

// ---------------------------------------------------------------- NullDevice

void NullDevice::SubmitWrite(uint64_t offset, const void* /*data*/, size_t n,
                             IoCallback done) {
  uint64_t end = offset + n;
  uint64_t cur = size_.load(std::memory_order_relaxed);
  while (end > cur &&
         !size_.compare_exchange_weak(cur, end, std::memory_order_relaxed)) {
  }
  if (done) done(Status::OK());
}

void NullDevice::SubmitRead(uint64_t /*offset*/, void* buf, size_t n,
                            IoCallback done) {
  // Nothing was retained; zero-fill so callers get deterministic bytes.
  memset(buf, 0, n);
  if (done) done(Status::OK());
}

void NullDevice::SubmitFsync(IoCallback done) {
  if (done) done(Status::OK());
}

// -------------------------------------------------------------- MemoryDevice

void MemoryDevice::SubmitWrite(uint64_t offset, const void* data, size_t n,
                               IoCallback done) {
  {
    MutexLock guard(mu_);
    if (offset + n > volatile_.size()) volatile_.resize(offset + n, '\0');
    memcpy(volatile_.data() + offset, data, n);
  }
  if (done) done(Status::OK());
}

void MemoryDevice::SubmitRead(uint64_t offset, void* buf, size_t n,
                              IoCallback done) {
  Status s;
  {
    MutexLock guard(mu_);
    if (offset + n > volatile_.size()) {
      s = Status::IOError("MemoryDevice: read past end");
    } else {
      memcpy(buf, volatile_.data() + offset, n);
    }
  }
  if (done) done(std::move(s));
}

void MemoryDevice::SubmitFsync(IoCallback done) {
  {
    MutexLock guard(mu_);
    durable_ = volatile_;
  }
  if (done) done(Status::OK());
}

uint64_t MemoryDevice::Size() const {
  MutexLock guard(mu_);
  return volatile_.size();
}

void MemoryDevice::SimulateCrash() {
  MutexLock guard(mu_);
  volatile_ = durable_;
}

void MemoryDevice::Truncate(uint64_t new_size) {
  MutexLock guard(mu_);
  volatile_.resize(new_size, '\0');
  durable_.resize(new_size < durable_.size() ? new_size : durable_.size(),
                  '\0');
}

// ---------------------------------------------------------------- FileDevice

FileDevice::FileDevice(std::string path, int fd,
                       std::shared_ptr<IoEngine> engine)
    : path_(std::move(path)), fd_(fd), engine_(std::move(engine)) {}

FileDevice::~FileDevice() {
  Drain();
  if (fd_ >= 0) close(fd_);
}

void FileDevice::Drain() {
  MutexLock guard(mu_);
  while (inflight_ops_ > 0) idle_.Wait(mu_);
}

Status FileDevice::Open(const std::string& path, bool reset,
                        std::unique_ptr<FileDevice>* out,
                        std::shared_ptr<IoEngine> engine) {
  int flags = O_RDWR | O_CREAT;
  if (reset) flags |= O_TRUNC;
  int fd = open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  if (engine == nullptr) engine = DefaultIoEngine();
  auto dev = std::unique_ptr<FileDevice>(
      new FileDevice(path, fd, std::move(engine)));
  off_t end = lseek(fd, 0, SEEK_END);
  if (end < 0) {
    return Status::IOError("lseek " + path + ": " + strerror(errno));
  }
  dev->size_ = static_cast<uint64_t>(end);
  dev->durable_size_ = dev->size_;
  *out = std::move(dev);
  return Status::OK();
}

void FileDevice::SubmitWrite(uint64_t offset, const void* data, size_t n,
                             IoCallback done) {
  {
    MutexLock guard(mu_);
    ++inflight_ops_;
    inflight_writes_.insert(offset);
  }
  IoOp op;
  op.type = IoOp::Type::kWrite;
  op.fd = fd_;
  op.offset = offset;
  op.write_buf = data;
  op.len = n;
  op.done = [this, offset, n, done = std::move(done)](Status s) {
    {
      MutexLock guard(mu_);
      inflight_writes_.erase(inflight_writes_.find(offset));
      if (s.ok() && offset + n > size_) size_ = offset + n;
      --inflight_ops_;
      if (inflight_ops_ == 0) idle_.NotifyAll();
    }
    if (done) done(std::move(s));
  };
  engine_->Submit(std::move(op));
}

void FileDevice::SubmitRead(uint64_t offset, void* buf, size_t n,
                            IoCallback done) {
  {
    MutexLock guard(mu_);
    ++inflight_ops_;
  }
  IoOp op;
  op.type = IoOp::Type::kRead;
  op.fd = fd_;
  op.offset = offset;
  op.read_buf = buf;
  op.len = n;
  op.done = [this, done = std::move(done)](Status s) {
    {
      MutexLock guard(mu_);
      --inflight_ops_;
      if (inflight_ops_ == 0) idle_.NotifyAll();
    }
    if (done) done(std::move(s));
  };
  engine_->Submit(std::move(op));
}

void FileDevice::SubmitFsync(IoCallback done) {
  uint64_t watermark;
  {
    MutexLock guard(mu_);
    ++inflight_ops_;
    // The fsync can only vouch for the prefix with no write still in
    // flight: a lower-offset write completing after us would otherwise be
    // claimed durable without having been synced.
    watermark = inflight_writes_.empty()
                    ? size_
                    : std::min<uint64_t>(size_, *inflight_writes_.begin());
  }
  IoOp op;
  op.type = IoOp::Type::kFsync;
  op.fd = fd_;
  op.done = [this, watermark, done = std::move(done)](Status s) {
    {
      MutexLock guard(mu_);
      if (s.ok() && watermark > durable_size_) durable_size_ = watermark;
      --inflight_ops_;
      if (inflight_ops_ == 0) idle_.NotifyAll();
    }
    if (done) done(std::move(s));
  };
  engine_->Submit(std::move(op));
}

uint64_t FileDevice::Size() const {
  MutexLock guard(mu_);
  return size_;
}

void FileDevice::SimulateCrash() {
  Drain();
  MutexLock guard(mu_);
  if (ftruncate(fd_, static_cast<off_t>(durable_size_)) != 0) {
    DPR_WARN("ftruncate %s failed: %s", path_.c_str(), strerror(errno));
  }
  size_ = durable_size_;
}

void FileDevice::Truncate(uint64_t new_size) {
  Drain();
  MutexLock guard(mu_);
  if (ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    DPR_WARN("ftruncate %s failed: %s", path_.c_str(), strerror(errno));
    return;
  }
  size_ = new_size;
  if (durable_size_ > new_size) durable_size_ = new_size;
}

// ------------------------------------------------------------- LatencyDevice

LatencyDevice::LatencyDevice(std::unique_ptr<Device> base,
                             uint64_t flush_latency_us, uint64_t per_mb_us)
    : base_(std::move(base)),
      flush_latency_us_(flush_latency_us),
      per_mb_us_(per_mb_us) {}

void LatencyDevice::SubmitWrite(uint64_t offset, const void* data, size_t n,
                                IoCallback done) {
  bytes_since_flush_.fetch_add(n, std::memory_order_relaxed);
  base_->SubmitWrite(offset, data, n, std::move(done));
}

void LatencyDevice::SubmitRead(uint64_t offset, void* buf, size_t n,
                               IoCallback done) {
  base_->SubmitRead(offset, buf, n, std::move(done));
}

void LatencyDevice::SubmitFsync(IoCallback done) {
  const uint64_t pending =
      bytes_since_flush_.exchange(0, std::memory_order_relaxed);
  const uint64_t delay = flush_latency_us_ + per_mb_us_ * (pending >> 20);
  if (delay > 0) SleepMicros(delay);
  base_->SubmitFsync(std::move(done));
}

// --------------------------------------------------------------- FaultDevice

FaultDevice::FaultDevice(std::unique_ptr<Device> base, uint64_t scope)
    : base_(std::move(base)), scope_(scope) {}

void FaultDevice::SubmitWrite(uint64_t offset, const void* data, size_t n,
                              IoCallback done) {
  FaultPlane& plane = FaultPlane::Instance();
  if (plane.enabled()) {
    if (plane.ShouldFire(faults::kDevWriteFail, scope_)) {
      if (done) done(Status::IOError("injected write failure"));
      return;
    }
    if (n > 0 && plane.ShouldFire(faults::kDevTornWrite, scope_)) {
      // A torn write persists a prefix and then reports failure, like a
      // sector-aligned partial write at power loss. The caller must treat
      // the range as garbage (checkpoint flushes do: an unregistered
      // checkpoint is rewritten from scratch on retry). The prefix write
      // still rides the real engine, so both backends tear identically.
      const size_t half = n > 1 ? n / 2 : 1;
      base_->SubmitWrite(offset, data, half,
                         [done = std::move(done)](Status /*prefix*/) {
                           if (done) done(Status::IOError(
                               "injected torn write"));
                         });
      return;
    }
  }
  base_->SubmitWrite(offset, data, n, std::move(done));
}

void FaultDevice::SubmitRead(uint64_t offset, void* buf, size_t n,
                             IoCallback done) {
  base_->SubmitRead(offset, buf, n, std::move(done));
}

void FaultDevice::SubmitFsync(IoCallback done) {
  uint64_t stall_us = 0;
  if (FaultPlane::Instance().ShouldFire(faults::kDevSlowFsync, scope_,
                                        &stall_us)) {
    SleepMicros(stall_us);
  }
  base_->SubmitFsync(std::move(done));
}

// --------------------------------------------------------------- DeviceSlice

DeviceSlice::DeviceSlice(Device* base, uint64_t origin)
    : base_(base), origin_(origin) {}

void DeviceSlice::SubmitWrite(uint64_t offset, const void* data, size_t n,
                              IoCallback done) {
  base_->SubmitWrite(
      origin_ + offset, data, n,
      [this, offset, n, done = std::move(done)](Status s) {
        if (s.ok()) {
          MutexLock guard(mu_);
          if (offset + n > size_) size_ = offset + n;
        }
        if (done) done(std::move(s));
      });
}

void DeviceSlice::SubmitRead(uint64_t offset, void* buf, size_t n,
                             IoCallback done) {
  uint64_t view_size;
  {
    MutexLock guard(mu_);
    view_size = size_;
  }
  if (offset + n > view_size) {
    // The base file may extend past this view (other slices' data live
    // there); bound reads by the slice's own watermark so "past end" means
    // past *this log's* end, as WAL replay expects.
    if (done) done(Status::IOError("DeviceSlice: read past end"));
    return;
  }
  base_->SubmitRead(origin_ + offset, buf, n, std::move(done));
}

void DeviceSlice::SubmitFsync(IoCallback done) {
  base_->SubmitFsync(std::move(done));
}

uint64_t DeviceSlice::Size() const {
  MutexLock guard(mu_);
  return size_;
}

void DeviceSlice::Truncate(uint64_t new_size) {
  MutexLock guard(mu_);
  size_ = new_size;
}

// -------------------------------------------------------------------- factory

namespace {

// Pinned-engine singletons for the kThreadPool / kIoUring backends, shared
// across devices so fsyncs and SQEs coalesce per box.
std::shared_ptr<IoEngine> EngineForBackend(StorageBackend backend) {
  if (backend == StorageBackend::kIoUring) {
    static std::shared_ptr<IoEngine>* uring = new std::shared_ptr<IoEngine>(
        MakeIoEngine({IoEngineKind::kIoUring, /*threads=*/3,
                      /*queue_depth=*/256}));
    return *uring;
  }
  static std::shared_ptr<IoEngine>* pool = new std::shared_ptr<IoEngine>(
      MakeIoEngine({IoEngineKind::kThreadPool, /*threads=*/3,
                    /*queue_depth=*/256}));
  return *pool;
}

std::string UniqueTempName(const std::string& name) {
  // relaxed: a name uniquifier; only the atomicity of the bump matters.
  static std::atomic<uint64_t> counter{0};
  if (!name.empty()) return name;
  char buf[64];
  snprintf(buf, sizeof(buf), "dpr_dev_%d_%llu.bin", getpid(),
           static_cast<unsigned long long>(
               counter.fetch_add(1, std::memory_order_relaxed)));
  return buf;
}

std::unique_ptr<Device> MakeRawDevice(StorageBackend backend,
                                      const std::string& dir,
                                      const std::string& name) {
  switch (backend) {
    case StorageBackend::kNull:
      return std::make_unique<NullDevice>();
    case StorageBackend::kLocal: {
      if (!dir.empty()) {
        std::unique_ptr<FileDevice> dev;
        Status s = FileDevice::Open(dir + "/" + name, /*reset=*/true, &dev);
        DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
        return dev;
      }
      return std::make_unique<MemoryDevice>();
    }
    case StorageBackend::kCloud: {
      // Paper: cloud checkpoints persist in ~50 ms, 2-3x local SSD.
      auto base = MakeRawDevice(StorageBackend::kLocal, dir, name);
      return std::make_unique<LatencyDevice>(std::move(base),
                                             /*flush_latency_us=*/50000,
                                             /*per_mb_us=*/2000);
    }
    case StorageBackend::kThreadPool:
    case StorageBackend::kIoUring: {
      const std::string d = dir.empty() ? "/tmp" : dir;
      std::unique_ptr<FileDevice> dev;
      Status s = FileDevice::Open(d + "/" + UniqueTempName(name),
                                  /*reset=*/true, &dev,
                                  EngineForBackend(backend));
      DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
      return dev;
    }
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<Device> MakeDevice(StorageBackend backend,
                                   const std::string& dir,
                                   const std::string& name) {
  auto device = MakeRawDevice(backend, dir, name);
  // Under an enabled FaultPlane every factory-made device is probed, keyed
  // by its name, so chaos schedules reach cluster-internal devices without
  // plumbing through every construction site.
  if (FaultPlane::Instance().enabled() && device != nullptr) {
    const uint64_t scope = HashBytes(name.data(), name.size());
    device = std::make_unique<FaultDevice>(std::move(device), scope);
  }
  return device;
}

}  // namespace dpr
