#include "storage/device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "common/hash.h"
#include "common/logging.h"
#include "fault/fault_plane.h"

namespace dpr {

// ---------------------------------------------------------------- NullDevice

Status NullDevice::WriteAt(uint64_t offset, const void* /*data*/, size_t n) {
  uint64_t end = offset + n;
  uint64_t cur = size_.load(std::memory_order_relaxed);
  while (end > cur &&
         !size_.compare_exchange_weak(cur, end, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Status NullDevice::ReadAt(uint64_t /*offset*/, void* buf, size_t n) {
  // Nothing was retained; zero-fill so callers get deterministic bytes.
  memset(buf, 0, n);
  return Status::OK();
}

// -------------------------------------------------------------- MemoryDevice

Status MemoryDevice::WriteAt(uint64_t offset, const void* data, size_t n) {
  MutexLock guard(mu_);
  if (offset + n > volatile_.size()) volatile_.resize(offset + n, '\0');
  memcpy(volatile_.data() + offset, data, n);
  return Status::OK();
}

Status MemoryDevice::ReadAt(uint64_t offset, void* buf, size_t n) {
  MutexLock guard(mu_);
  if (offset + n > volatile_.size()) {
    return Status::IOError("MemoryDevice: read past end");
  }
  memcpy(buf, volatile_.data() + offset, n);
  return Status::OK();
}

Status MemoryDevice::Flush() {
  MutexLock guard(mu_);
  durable_ = volatile_;
  return Status::OK();
}

uint64_t MemoryDevice::Size() const {
  MutexLock guard(mu_);
  return volatile_.size();
}

void MemoryDevice::SimulateCrash() {
  MutexLock guard(mu_);
  volatile_ = durable_;
}

void MemoryDevice::Truncate(uint64_t new_size) {
  MutexLock guard(mu_);
  volatile_.resize(new_size, '\0');
  durable_.resize(new_size < durable_.size() ? new_size : durable_.size(),
                  '\0');
}

// ---------------------------------------------------------------- FileDevice

FileDevice::FileDevice(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

FileDevice::~FileDevice() {
  if (fd_ >= 0) close(fd_);
}

Status FileDevice::Open(const std::string& path, bool reset,
                        std::unique_ptr<FileDevice>* out) {
  int flags = O_RDWR | O_CREAT;
  if (reset) flags |= O_TRUNC;
  int fd = open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  auto dev = std::unique_ptr<FileDevice>(new FileDevice(path, fd));
  off_t end = lseek(fd, 0, SEEK_END);
  if (end < 0) {
    return Status::IOError("lseek " + path + ": " + strerror(errno));
  }
  dev->size_ = static_cast<uint64_t>(end);
  dev->durable_size_ = dev->size_;
  *out = std::move(dev);
  return Status::OK();
}

Status FileDevice::WriteAt(uint64_t offset, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = n;
  uint64_t off = offset;
  while (remaining > 0) {
    ssize_t written = pwrite(fd_, p, remaining, static_cast<off_t>(off));
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite " + path_ + ": " + strerror(errno));
    }
    p += written;
    off += static_cast<uint64_t>(written);
    remaining -= static_cast<size_t>(written);
  }
  MutexLock guard(mu_);
  if (offset + n > size_) size_ = offset + n;
  return Status::OK();
}

Status FileDevice::ReadAt(uint64_t offset, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t remaining = n;
  uint64_t off = offset;
  while (remaining > 0) {
    ssize_t got = pread(fd_, p, remaining, static_cast<off_t>(off));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread " + path_ + ": " + strerror(errno));
    }
    if (got == 0) return Status::IOError("read past end of " + path_);
    p += got;
    off += static_cast<uint64_t>(got);
    remaining -= static_cast<size_t>(got);
  }
  return Status::OK();
}

Status FileDevice::Flush() {
  uint64_t watermark;
  {
    MutexLock guard(mu_);
    watermark = size_;
  }
  if (fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync " + path_ + ": " + strerror(errno));
  }
  MutexLock guard(mu_);
  if (watermark > durable_size_) durable_size_ = watermark;
  return Status::OK();
}

uint64_t FileDevice::Size() const {
  MutexLock guard(mu_);
  return size_;
}

void FileDevice::SimulateCrash() {
  MutexLock guard(mu_);
  if (ftruncate(fd_, static_cast<off_t>(durable_size_)) != 0) {
    DPR_WARN("ftruncate %s failed: %s", path_.c_str(), strerror(errno));
  }
  size_ = durable_size_;
}

void FileDevice::Truncate(uint64_t new_size) {
  MutexLock guard(mu_);
  if (ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    DPR_WARN("ftruncate %s failed: %s", path_.c_str(), strerror(errno));
    return;
  }
  size_ = new_size;
  if (durable_size_ > new_size) durable_size_ = new_size;
}

// ------------------------------------------------------------- LatencyDevice

LatencyDevice::LatencyDevice(std::unique_ptr<Device> base,
                             uint64_t flush_latency_us, uint64_t per_mb_us)
    : base_(std::move(base)),
      flush_latency_us_(flush_latency_us),
      per_mb_us_(per_mb_us) {}

Status LatencyDevice::WriteAt(uint64_t offset, const void* data, size_t n) {
  bytes_since_flush_.fetch_add(n, std::memory_order_relaxed);
  return base_->WriteAt(offset, data, n);
}

Status LatencyDevice::ReadAt(uint64_t offset, void* buf, size_t n) {
  return base_->ReadAt(offset, buf, n);
}

Status LatencyDevice::Flush() {
  const uint64_t pending =
      bytes_since_flush_.exchange(0, std::memory_order_relaxed);
  const uint64_t delay =
      flush_latency_us_ + per_mb_us_ * (pending >> 20);
  if (delay > 0) SleepMicros(delay);
  return base_->Flush();
}

// --------------------------------------------------------------- FaultDevice

FaultDevice::FaultDevice(std::unique_ptr<Device> base, uint64_t scope)
    : base_(std::move(base)), scope_(scope) {}

Status FaultDevice::WriteAt(uint64_t offset, const void* data, size_t n) {
  FaultPlane& plane = FaultPlane::Instance();
  if (plane.enabled()) {
    if (plane.ShouldFire(faults::kDevWriteFail, scope_)) {
      return Status::IOError("injected write failure");
    }
    if (n > 0 && plane.ShouldFire(faults::kDevTornWrite, scope_)) {
      // A torn write persists a prefix and then reports failure, like a
      // sector-aligned partial write at power loss. The caller must treat
      // the range as garbage (checkpoint flushes do: an unregistered
      // checkpoint is rewritten from scratch on retry).
      const size_t half = n > 1 ? n / 2 : 1;
      (void)base_->WriteAt(offset, data, half);
      return Status::IOError("injected torn write");
    }
  }
  return base_->WriteAt(offset, data, n);
}

Status FaultDevice::ReadAt(uint64_t offset, void* buf, size_t n) {
  return base_->ReadAt(offset, buf, n);
}

Status FaultDevice::Flush() {
  uint64_t stall_us = 0;
  if (FaultPlane::Instance().ShouldFire(faults::kDevSlowFsync, scope_,
                                        &stall_us)) {
    SleepMicros(stall_us);
  }
  return base_->Flush();
}

// -------------------------------------------------------------------- factory

namespace {

std::unique_ptr<Device> MakeRawDevice(StorageBackend backend,
                                      const std::string& dir,
                                      const std::string& name) {
  switch (backend) {
    case StorageBackend::kNull:
      return std::make_unique<NullDevice>();
    case StorageBackend::kLocal: {
      if (!dir.empty()) {
        std::unique_ptr<FileDevice> dev;
        Status s = FileDevice::Open(dir + "/" + name, /*reset=*/true, &dev);
        DPR_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
        return dev;
      }
      return std::make_unique<MemoryDevice>();
    }
    case StorageBackend::kCloud: {
      // Paper: cloud checkpoints persist in ~50 ms, 2-3x local SSD.
      auto base = MakeRawDevice(StorageBackend::kLocal, dir, name);
      return std::make_unique<LatencyDevice>(std::move(base),
                                             /*flush_latency_us=*/50000,
                                             /*per_mb_us=*/2000);
    }
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<Device> MakeDevice(StorageBackend backend,
                                   const std::string& dir,
                                   const std::string& name) {
  auto device = MakeRawDevice(backend, dir, name);
  // Under an enabled FaultPlane every factory-made device is probed, keyed
  // by its name, so chaos schedules reach cluster-internal devices without
  // plumbing through every construction site.
  if (FaultPlane::Instance().enabled() && device != nullptr) {
    const uint64_t scope = HashBytes(name.data(), name.size());
    device = std::make_unique<FaultDevice>(std::move(device), scope);
  }
  return device;
}

}  // namespace dpr
