#ifndef DPR_STORAGE_FSYNC_SCHEDULER_H_
#define DPR_STORAGE_FSYNC_SCHEDULER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "storage/device.h"

namespace dpr {

/// Per-box group-commit fsync scheduler.
///
/// Every durability point in the repro (WAL sync, FASTER checkpoint flush,
/// checkpoint blob seal, metadata mutation) used to issue its own fsync —
/// one per phase per shard. The scheduler instead registers each caller as a
/// *durability waiter* on the device's SyncRoot() and issues one fsync per
/// device per dispatch round: all waiters that arrived while the previous
/// fsync was in flight are absorbed by the next one.
///
/// Invariants (pinned by the storage tests):
///  - A waiter's callback fires only after a device fsync that was
///    *submitted at-or-after* RequestSync was called has completed. Waiters
///    that register while a group's fsync is already in flight join the
///    NEXT group — an in-flight fsync cannot vouch for writes it predates.
///  - One in-flight fsync per sync root at a time; groups on distinct
///    devices proceed independently, so one stalled device (slow-fsync
///    fault, cloud latency) delays only its own waiters.
///  - Callbacks are invoked with no scheduler locks held and may re-enter
///    RequestSync.
///
/// Lock rank: kStorageSched (52) — below the consumers that call in while
/// holding kStorageWal (55) or kMetadata (70), above the devices (50) the
/// dispatcher submits to.
class GroupCommitScheduler {
 public:
  GroupCommitScheduler();
  ~GroupCommitScheduler();

  GroupCommitScheduler(const GroupCommitScheduler&) = delete;
  GroupCommitScheduler& operator=(const GroupCommitScheduler&) = delete;

  /// Registers `done` as a durability waiter on `dev`'s sync root. `dev`
  /// must outlive the callback's invocation.
  void RequestSync(Device* dev, IoCallback done);

  /// Blocking convenience shim over RequestSync, for legacy callers.
  Status SyncNow(Device* dev);

  /// Test/obs hooks: this scheduler's total fsyncs issued and waiters
  /// absorbed into an already-pending group (i.e. fsyncs saved vs. the
  /// one-per-waiter world). The process-wide `storage.sched.*` metrics sum
  /// the same counters across all scheduler instances.
  uint64_t fsyncs_issued() const;
  uint64_t waiters_coalesced() const;

 private:
  struct DeviceState {
    std::vector<IoCallback> pending;
    bool fsync_in_flight = false;
    bool queued = false;  // sitting in ready_
    uint64_t oldest_request_us = 0;
  };

  void DispatchLoop();
  void OnFsyncDone(Device* root, std::vector<IoCallback> batch, Status s);

  mutable Mutex mu_{LockRank::kStorageSched, "storage.sched"};
  CondVar cv_;
  std::unordered_map<Device*, DeviceState> devices_ GUARDED_BY(mu_);
  std::deque<Device*> ready_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  uint64_t inflight_fsyncs_ GUARDED_BY(mu_) = 0;
  // relaxed: test/obs counters, never used for synchronization.
  std::atomic<uint64_t> fsyncs_issued_{0};
  std::atomic<uint64_t> waiters_coalesced_{0};

  std::thread dispatcher_;
};

}  // namespace dpr

#endif  // DPR_STORAGE_FSYNC_SCHEDULER_H_
