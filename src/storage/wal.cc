#include "storage/wal.h"

// dprlint: allowed-file(lock-blocking) the WAL serializes appends by design:
// LockRank::kStorageWal is documented as held across device writes, and
// group commit (the part worth overlapping) lives in GroupCommitScheduler.

#include <cstring>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "storage/fsync_scheduler.h"

namespace dpr {

namespace {
constexpr size_t kHeaderSize = 8;  // u32 length + u32 crc
}  // namespace

WriteAheadLog::WriteAheadLog(std::unique_ptr<Device> device,
                             GroupCommitScheduler* scheduler)
    : device_(std::move(device)),
      scheduler_(scheduler),
      tail_(device_->Size()) {}

Status WriteAheadLog::Append(Slice record, uint64_t* offset) {
  MutexLock guard(mu_);
  char header[kHeaderSize];
  const uint32_t len = static_cast<uint32_t>(record.size());
  const uint32_t crc = Crc32c(record.data(), record.size());
  memcpy(header, &len, 4);
  memcpy(header + 4, &crc, 4);
  const uint64_t start = tail_;
  DPR_RETURN_NOT_OK(SyncIo::Write(device_.get(), start, header, kHeaderSize));
  DPR_RETURN_NOT_OK(SyncIo::Write(device_.get(), start + kHeaderSize,
                                  record.data(), record.size()));
  tail_ = start + kHeaderSize + record.size();
  if (offset != nullptr) *offset = start;
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (scheduler_ != nullptr) return scheduler_->SyncNow(device_.get());
  return SyncIo::Fsync(device_.get());
}

void WriteAheadLog::SyncAsync(IoCallback done) {
  if (scheduler_ != nullptr) {
    scheduler_->RequestSync(device_.get(), std::move(done));
    return;
  }
  device_->SubmitFsync(std::move(done));
}

Status WriteAheadLog::Replay(
    const std::function<void(uint64_t, Slice)>& visitor) {
  MutexLock guard(mu_);
  const uint64_t end = device_->Size();
  uint64_t pos = 0;
  std::vector<char> buf;
  while (pos + kHeaderSize <= end) {
    char header[kHeaderSize];
    DPR_RETURN_NOT_OK(SyncIo::Read(device_.get(), pos, header, kHeaderSize));
    uint32_t len;
    uint32_t crc;
    memcpy(&len, header, 4);
    memcpy(&crc, header + 4, 4);
    if (pos + kHeaderSize + len > end) break;  // torn tail record
    buf.resize(len);
    DPR_RETURN_NOT_OK(
        SyncIo::Read(device_.get(), pos + kHeaderSize, buf.data(), len));
    if (Crc32c(buf.data(), len) != crc) break;  // corrupt tail record
    // dprlint: allowed(callback-lock) the visitor runs under mu_ by
    // contract: replay is single-threaded recovery and the lock only
    // fences tail_ against a concurrent Append.
    visitor(pos, Slice(buf.data(), len));
    pos += kHeaderSize + len;
  }
  tail_ = pos;
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  MutexLock guard(mu_);
  device_->Truncate(0);
  DPR_RETURN_NOT_OK(SyncIo::Fsync(device_.get()));
  tail_ = 0;
  return Status::OK();
}

}  // namespace dpr
