#include "faster/faster_store.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/coding.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "storage/checkpoint_file.h"
#include "storage/fsync_scheduler.h"

namespace dpr {

namespace {
// Checkpoint-metadata WAL record types.
constexpr uint8_t kMetaCheckpoint = 1;
constexpr uint8_t kMetaRollback = 2;
constexpr uint8_t kMetaBegin = 3;  // durable log-begin advance (compaction)
// Checkpoint records carrying a hash-index image (DESIGN.md §4j):
//   kMetaFullIndex: type, token, boundary, record_count, IndexImage
//   kMetaDelta:     type, token, boundary, base_token, record_count,
//                   IndexImage (only buckets dirtied since base_token)
constexpr uint8_t kMetaFullIndex = 4;
constexpr uint8_t kMetaDelta = 5;
constexpr size_t kMaxValueSize = 4096;

struct StoreMetrics {
  Counter* checkpoints_stamped;
  Counter* checkpoints_flushed;
  Counter* flush_failures;
  Gauge* flush_queue_depth;
  ShardedHistogram* stamp_us;        // metadata-only version-bump phase
  ShardedHistogram* flush_us;        // I/O phase, dequeue -> durable
  ShardedHistogram* stamp_to_durable_us;  // enqueue -> callback, total
  // ckpt.* plane: per-checkpoint byte accounting and restore-path counts.
  Counter* ckpt_full;                // durable checkpoints with a full image
  Counter* ckpt_delta;               // durable checkpoints with a delta image
  Counter* ckpt_log_bytes;           // log bytes flushed for checkpoints
  Counter* ckpt_index_bytes;         // meta-WAL bytes for checkpoint records
  Counter* ckpt_chain_restores;      // restores served from an image chain
  Counter* ckpt_scan_restores;       // restores that fell back to a log scan
  Gauge* ckpt_chain_length;          // links installed by the last restore
};

const StoreMetrics& Metrics() {
  static const StoreMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return StoreMetrics{r.counter("faster.checkpoints_stamped"),
                        r.counter("faster.checkpoints_flushed"),
                        r.counter("faster.flush_failures"),
                        r.gauge("faster.flush_queue_depth"),
                        r.histogram("faster.checkpoint.stamp_us"),
                        r.histogram("faster.checkpoint.flush_us"),
                        r.histogram("faster.checkpoint.stamp_to_durable_us"),
                        r.counter("ckpt.full"),
                        r.counter("ckpt.delta"),
                        r.counter("ckpt.log_bytes_persisted"),
                        r.counter("ckpt.index_bytes_persisted"),
                        r.counter("ckpt.chain_restores"),
                        r.counter("ckpt.scan_restores"),
                        r.gauge("ckpt.chain_length")};
  }();
  return m;
}

}  // namespace

FasterStore::FasterStore(FasterOptions options)
    : options_(std::move(options)),
      log_(options_.page_bits),
      index_(options_.index_buckets),
      meta_wal_(options_.meta_device != nullptr
                    ? std::move(options_.meta_device)
                    : std::make_unique<MemoryDevice>(),
                options_.fsync_scheduler) {
  if (options_.log_device == nullptr) {
    options_.log_device = std::make_unique<MemoryDevice>();
  }
  flush_thread_ = std::thread([this] { FlushLoop(); });
}

FasterStore::~FasterStore() {
  {
    MutexLock guard(flush_mu_);
    stop_flush_ = true;
  }
  flush_cv_.NotifyAll();
  if (flush_thread_.joinable()) flush_thread_.join();
}

// ---------------------------------------------------------------- sessions

FasterStore::Session::Session(FasterStore* store) : store_(store) {
  store_->epoch_.Protect();
}

FasterStore::Session::~Session() { store_->epoch_.Unprotect(); }

std::unique_ptr<FasterStore::Session> FasterStore::NewSession() {
  return std::unique_ptr<Session>(new Session(this));
}

void FasterStore::Session::Refresh() { store_->epoch_.Refresh(); }

Status FasterStore::Session::Read(uint64_t key, std::string* value) {
  if (++ops_since_refresh_ >= 256) {
    ops_since_refresh_ = 0;
    Refresh();
  }
  return store_->ReadInternal(key, value, nullptr);
}

Status FasterStore::Session::Read(uint64_t key, uint64_t* value) {
  if (++ops_since_refresh_ >= 256) {
    ops_since_refresh_ = 0;
    Refresh();
  }
  return store_->ReadInternal(key, nullptr, value);
}

Status FasterStore::Session::Upsert(uint64_t key, Slice value) {
  if (++ops_since_refresh_ >= 256) {
    ops_since_refresh_ = 0;
    Refresh();
  }
  return store_->UpsertInternal(key, value);
}

Status FasterStore::Session::Upsert(uint64_t key, uint64_t value) {
  return Upsert(key, Slice(reinterpret_cast<const char*>(&value), 8));
}

Status FasterStore::Session::Delete(uint64_t key) {
  if (++ops_since_refresh_ >= 256) {
    ops_since_refresh_ = 0;
    Refresh();
  }
  return store_->UpsertInternal(key, Slice(nullptr, 0));
}

Status FasterStore::Session::Rmw(uint64_t key, uint64_t delta,
                                 uint64_t* result) {
  if (++ops_since_refresh_ >= 256) {
    ops_since_refresh_ = 0;
    Refresh();
  }
  FasterStore* s = store_;
  if (s->crashed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("store crashed; awaiting restore");
  }
  for (;;) {
    const uint64_t v = s->version_.load(std::memory_order_acquire);
    LogAddress head;
    const LogAddress found = s->FindRecord(key, &head);
    if (found != kNullAddress) {
      RecordHeader* rec = s->log_.RecordAt(found);
      if (!rec->tombstone() && rec->value_size == 8 &&
          found >= s->read_only_address_.load(std::memory_order_acquire) &&
          s->rollback_state_.load(std::memory_order_acquire) ==
              static_cast<int>(RollbackState::kRest) &&
          !s->checkpoint_active_.load(std::memory_order_acquire)) {
        // In-place atomic add in the mutable region.
        std::atomic_ref<uint64_t> cell(
            *reinterpret_cast<uint64_t*>(rec->value()));
        const uint64_t updated =
            cell.fetch_add(delta, std::memory_order_acq_rel) + delta;
        if (result != nullptr) *result = updated;
        return Status::OK();
      }
    }
    // RCU: read-modify-write into a fresh record at the tail.
    uint64_t base = 0;
    if (found != kNullAddress) {
      const RecordHeader* rec = s->log_.RecordAt(found);
      if (!rec->tombstone() && rec->value_size == 8) {
        memcpy(&base, rec->value(), 8);
      }
    }
    const uint64_t updated = base + delta;
    LogAddress expected = head;
    const LogAddress fresh = s->AppendRecord(
        key, Slice(reinterpret_cast<const char*>(&updated), 8),
        /*tombstone=*/false, expected, static_cast<uint32_t>(v));
    if (s->index_.CasHead(key, &expected, fresh)) {
      if (result != nullptr) *result = updated;
      s->record_count_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    // Lost the CAS: the chain advanced; seal the orphan and retry the whole
    // RMW against the fresh head.
    s->log_.RecordAt(fresh)->SetFlag(RecordHeader::kInvalid);
  }
}

// ------------------------------------------------------------------- reads

bool FasterStore::Visible(const RecordHeader* rec) const {
  if (rec->invalid()) return false;
  const uint64_t high = ignore_high_.load(std::memory_order_acquire);
  if (high != 0) {
    const uint64_t low = ignore_low_.load(std::memory_order_acquire);
    if (rec->version > low && rec->version <= high) return false;
  }
  return true;
}

LogAddress FasterStore::FindRecord(uint64_t key, LogAddress* head_out) const {
  const LogAddress head = index_.Head(key);
  if (head_out != nullptr) *head_out = head;
  LogAddress addr = head;
  const LogAddress begin = begin_.load(std::memory_order_acquire);
  while (addr != kNullAddress && addr >= begin) {
    const RecordHeader* rec = log_.RecordAt(addr);
    if (rec->key == key && Visible(rec)) return addr;
    addr = rec->prev;
  }
  return kNullAddress;
}

Status FasterStore::ReadInternal(uint64_t key, std::string* out_str,
                                 uint64_t* out_int) {
  if (crashed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("store crashed; awaiting restore");
  }
  const LogAddress found = FindRecord(key, nullptr);
  if (found == kNullAddress) return Status::NotFound();
  const RecordHeader* rec = log_.RecordAt(found);
  if (rec->tombstone()) return Status::NotFound();
  if (out_int != nullptr) {
    if (rec->value_size != 8) {
      return Status::InvalidArgument("value is not 8 bytes");
    }
    *out_int = std::atomic_ref<const uint64_t>(
                   *reinterpret_cast<const uint64_t*>(rec->value()))
                   .load(std::memory_order_acquire);
  }
  if (out_str != nullptr) {
    // Values longer than 8 bytes are never updated in place, so this copy
    // cannot tear; 8-byte values are read atomically above the memcpy.
    if (rec->value_size == 8) {
      uint64_t v = std::atomic_ref<const uint64_t>(
                       *reinterpret_cast<const uint64_t*>(rec->value()))
                       .load(std::memory_order_acquire);
      out_str->assign(reinterpret_cast<const char*>(&v), 8);
    } else {
      out_str->assign(rec->value(), rec->value_size);
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------------ writes

LogAddress FasterStore::AppendRecord(uint64_t key, Slice value, bool tombstone,
                                     LogAddress prev, uint32_t version) {
  const uint64_t size = RecordHeader::SizeWith(
      static_cast<uint16_t>(value.size()));
  const LogAddress addr = log_.Allocate(size);
  RecordHeader* rec = log_.RecordAt(addr);
  rec->prev = prev;
  rec->key = key;
  rec->version = version;
  rec->value_size = static_cast<uint16_t>(value.size());
  rec->flags = tombstone ? RecordHeader::kTombstone : 0;
  if (!value.empty()) memcpy(rec->value(), value.data(), value.size());
  return addr;
}

Status FasterStore::UpsertInternal(uint64_t key, Slice value) {
  if (crashed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("store crashed; awaiting restore");
  }
  if (value.size() > kMaxValueSize) {
    return Status::InvalidArgument("value too large");
  }
  const bool tombstone = value.data() == nullptr;
  for (;;) {
    LogAddress head;
    const LogAddress found = FindRecord(key, &head);
    const uint64_t v = version_.load(std::memory_order_acquire);
    if (!tombstone && found != kNullAddress) {
      RecordHeader* rec = log_.RecordAt(found);
      if (!rec->tombstone() && rec->value_size == 8 && value.size() == 8 &&
          found >= read_only_address_.load(std::memory_order_acquire) &&
          rollback_state_.load(std::memory_order_acquire) ==
              static_cast<int>(RollbackState::kRest) &&
          !checkpoint_active_.load(std::memory_order_acquire)) {
        // In-place update: mutable-region records belong to the current
        // version, so no new version stamp is needed. While a checkpoint is
        // in flight the store runs in CPR's reduced-performance mode — all
        // updates take the RCU path (paper §5.5 / §7.2: frequent
        // checkpoints over slow storage keep the store in the slow path).
        std::atomic_ref<uint64_t> cell(
            *reinterpret_cast<uint64_t*>(rec->value()));
        uint64_t nv;
        memcpy(&nv, value.data(), 8);
        cell.store(nv, std::memory_order_release);
        return Status::OK();
      }
    }
    LogAddress expected = head;
    const LogAddress fresh =
        AppendRecord(key, tombstone ? Slice("", 0) : value, tombstone,
                     expected, static_cast<uint32_t>(v));
    if (tombstone) log_.RecordAt(fresh)->SetFlag(RecordHeader::kTombstone);
    if (index_.CasHead(key, &expected, fresh)) {
      record_count_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    log_.RecordAt(fresh)->SetFlag(RecordHeader::kInvalid);
  }
}

// ------------------------------------------------------------- checkpoints

Status FasterStore::PerformCheckpoint(Version target_version,
                                      PersistCallback on_persist,
                                      Version* out_token) {
  return PerformCheckpoint(target_version, std::move(on_persist), out_token,
                           CheckpointHints{});
}

Status FasterStore::PerformCheckpoint(Version target_version,
                                      PersistCallback on_persist,
                                      Version* out_token,
                                      const CheckpointHints& hints) {
  if (crashed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("store crashed");
  }
  if (rollback_state_.load(std::memory_order_acquire) !=
      static_cast<int>(RollbackState::kRest)) {
    return Status::Busy("rollback in progress");
  }
  bool expected = false;
  if (!checkpoint_active_.compare_exchange_strong(expected, true)) {
    return Status::Busy("checkpoint already in progress");
  }
  const Version token = version_.load(std::memory_order_acquire);
  if (target_version <= token) {
    checkpoint_active_.store(false, std::memory_order_release);
    return Status::InvalidArgument("target version must exceed current");
  }
  DPR_CHECK_MSG(target_version < (uint64_t{1} << 32),
                "version overflows record stamp");
  const uint64_t start_us = NowMicros();
  // Draw the boundary: everything below `boundary` belongs to versions
  // <= token and becomes immutable (fold-over); new operations run in
  // target_version above it. Metadata-only — the flush is asynchronous.
  const LogAddress boundary = log_.tail();
  read_only_address_.store(boundary, std::memory_order_release);
  version_.store(target_version, std::memory_order_release);
  const uint64_t enqueue_us = NowMicros();
  {
    MutexLock guard(flush_mu_);
    flush_queue_.push_back(FlushRequest{
        token, boundary, std::move(on_persist), enqueue_us,
        hints.index_image, hints.delta,
        record_count_.load(std::memory_order_relaxed)});
    Metrics().flush_queue_depth->Set(
        static_cast<int64_t>(flush_queue_.size()));
  }
  flush_cv_.NotifyAll();
  Metrics().checkpoints_stamped->Add();
  Metrics().stamp_us->Record(enqueue_us - start_us);
  if (out_token != nullptr) *out_token = token;
  return Status::OK();
}

Status FasterStore::FlushRange(LogAddress from, LogAddress to) {
  // The range is immutable (below the read-only boundary); copy it out in
  // page-sized chunks and submit them asynchronously — the chunks complete
  // out of order on the I/O engine, with a bounded in-flight window so a
  // huge range cannot pin unbounded copy buffers.
  constexpr size_t kMaxInflightChunks = 8;
  struct BatchState {
    Mutex mu{LockRank::kStorageIoWait, "faster.flush_batch"};
    CondVar cv;
    size_t outstanding GUARDED_BY(mu) = 0;
    Status first_error GUARDED_BY(mu);
  };
  auto state = std::make_shared<BatchState>();
  const uint64_t chunk = log_.page_size();
  LogAddress pos = from;
  while (pos < to) {
    const uint64_t page_end = (pos | (chunk - 1)) + 1;
    const uint64_t n = std::min<uint64_t>(page_end, to) - pos;
    auto buf = std::make_shared<std::vector<char>>(n);
    memcpy(buf->data(), log_.Resolve(pos), n);
    {
      MutexLock guard(state->mu);
      while (state->outstanding >= kMaxInflightChunks) {
        state->cv.Wait(state->mu);
      }
      ++state->outstanding;
    }
    // `buf` is captured by the completion, keeping the copy alive until the
    // engine is done with it.
    options_.log_device->SubmitWrite(
        pos, buf->data(), n, [state, buf](Status s) {
          MutexLock guard(state->mu);
          if (!s.ok() && state->first_error.ok()) {
            state->first_error = std::move(s);
          }
          --state->outstanding;
          state->cv.NotifyAll();
        });
    pos += n;
  }
  {
    MutexLock guard(state->mu);
    while (state->outstanding > 0) state->cv.Wait(state->mu);
    DPR_RETURN_NOT_OK(state->first_error);
  }
  if (options_.fsync_scheduler != nullptr) {
    return options_.fsync_scheduler->SyncNow(options_.log_device.get());
  }
  return SyncIo::Fsync(options_.log_device.get());
}

Status FasterStore::AppendCheckpointMeta(uint8_t type, Version token,
                                         LogAddress boundary) {
  std::string rec(1, static_cast<char>(type));
  PutFixed64(&rec, token);
  PutFixed64(&rec, boundary);
  DPR_RETURN_NOT_OK(meta_wal_.Append(rec));
  return meta_wal_.Sync();
}

void FasterStore::FlushLoop() {
  for (;;) {
    FlushRequest req;
    {
      MutexLock lock(flush_mu_);
      flush_cv_.Wait(flush_mu_,
                     [this]() REQUIRES(flush_mu_) {
                       return stop_flush_ || !flush_queue_.empty();
                     });
      if (stop_flush_ && flush_queue_.empty()) return;
      req = std::move(flush_queue_.front());
      flush_queue_.pop_front();
      Metrics().flush_queue_depth->Set(
          static_cast<int64_t>(flush_queue_.size()));
      flush_in_progress_ = true;
    }
    const uint64_t flush_start_us = NowMicros();
    const LogAddress from = flushed_until_.load(std::memory_order_acquire);
    Status s = Status::OK();
    if (req.boundary > from) s = FlushRange(from, req.boundary);
    uint64_t meta_bytes = 0;
    Version base = kInvalidVersion;
    if (s.ok()) {
      if (req.index_image) {
        // The base is chosen here, at flush time, against the *durable*
        // checkpoint set: a failed earlier flush simply widens the delta
        // (dirtiness is judged per bucket as head-version > base, which is
        // valid for any durable image base — chain versions only decrease
        // walking backwards).
        if (req.delta && !force_full_next_.load(std::memory_order_acquire)) {
          MutexLock guard(checkpoints_mu_);
          base = LargestImageBaseLocked();
        }
        const std::string rec = EncodeIndexMetaRecord(req, base);
        meta_bytes = rec.size();
        s = meta_wal_.Append(rec);
        if (s.ok()) s = meta_wal_.Sync();
      } else {
        s = AppendCheckpointMeta(kMetaCheckpoint, req.token, req.boundary);
        meta_bytes = 17;
      }
    }
    if (s.ok()) {
      {
        MutexLock guard(checkpoints_mu_);
        checkpoints_[req.token] =
            CkptEntry{req.boundary, base, req.index_image};
      }
      if (req.index_image && base == kInvalidVersion) {
        force_full_next_.store(false, std::memory_order_release);
      }
      if (req.boundary > from) {
        flushed_until_.store(req.boundary, std::memory_order_release);
      }
      const uint64_t done_us = NowMicros();
      Metrics().checkpoints_flushed->Add();
      Metrics().flush_us->Record(done_us - flush_start_us);
      if (req.enqueue_us != 0 && done_us > req.enqueue_us) {
        Metrics().stamp_to_durable_us->Record(done_us - req.enqueue_us);
      }
      if (req.boundary > from) {
        Metrics().ckpt_log_bytes->Add(req.boundary - from);
      }
      Metrics().ckpt_index_bytes->Add(meta_bytes);
      if (req.index_image) {
        (base == kInvalidVersion ? Metrics().ckpt_full
                                 : Metrics().ckpt_delta)
            ->Add();
      }
    } else {
      // Failure path invariants (regression-tested with the kDevWriteFail
      // probe): flushed_until_ stays at `from`, so the next checkpoint's
      // flush idempotently re-covers [from, its boundary); the token is
      // NOT registered durable and the callback never fires, so DPR never
      // reports it; checkpoint_active_/flush_in_progress_ are still reset
      // below, so the next PerformCheckpoint is admitted and
      // WaitForCheckpoints cannot hang on a wedged pipeline.
      Metrics().flush_failures->Add();
      DPR_ERROR("checkpoint v%llu flush failed: %s",
                static_cast<unsigned long long>(req.token),
                s.ToString().c_str());
    }
    // Fire the persistence callback before reporting idle, so
    // WaitForCheckpoints() implies the commit was reported.
    if (s.ok() && req.callback) req.callback(req.token);
    {
      MutexLock guard(flush_mu_);
      flush_in_progress_ = false;
      // Success or failure, release the checkpoint claim once the queue is
      // drained (PerformCheckpoint admits one request at a time, so the
      // queue is empty here in practice; the guard is belt-and-braces for
      // future multi-request producers).
      if (flush_queue_.empty()) {
        checkpoint_active_.store(false, std::memory_order_release);
      }
    }
    flush_idle_cv_.NotifyAll();
  }
}

// Largest durable checkpoint carrying an index image: the only valid delta
// base (dirtiness is judged against what that image already covers).
Version FasterStore::LargestImageBaseLocked() const {
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    if (it->second.has_index) return it->first;
  }
  return kInvalidVersion;
}

std::string FasterStore::EncodeIndexMetaRecord(const FlushRequest& req,
                                               Version base) {
  const bool delta = base != kInvalidVersion;
  std::string rec(1, static_cast<char>(delta ? kMetaDelta : kMetaFullIndex));
  PutFixed64(&rec, req.token);
  PutFixed64(&rec, req.boundary);
  if (delta) PutFixed64(&rec, base);
  PutFixed64(&rec, req.record_count);
  // Capture the image under epoch protection: a concurrent FinishCompaction
  // may otherwise reclaim pages below a freshly advanced begin address while
  // we walk chains into them.
  epoch_.Protect();
  const LogAddress begin = begin_.load(std::memory_order_acquire);
  IndexImage image;
  const uint64_t buckets = index_.bucket_count();
  for (uint64_t b = 0; b < buckets; ++b) {
    // Sub-boundary head: everything at or above the checkpoint boundary
    // belongs to later versions and must not leak into this image. The
    // walk only dereferences addresses >= boundary > begin, which cannot
    // be reclaimed while we are epoch-protected.
    LogAddress addr = index_.HeadAt(b);
    while (addr != kNullAddress && addr >= req.boundary) {
      addr = log_.RecordAt(addr)->prev;
    }
    if (addr == kNullAddress || addr < begin) continue;
    if (delta) {
      // Dirty iff the bucket's newest sub-boundary record was written
      // after `base`: chain versions are non-increasing walking backwards
      // (prev is always an older append), in-place updates re-stamp the
      // current version, and admission blocks them while a checkpoint is
      // active — so head version <= base implies the whole sub-boundary
      // chain is exactly what the base image already recorded.
      if (log_.RecordAt(addr)->version <= base) continue;
    }
    image.pairs.emplace_back(static_cast<uint32_t>(b), addr);
  }
  epoch_.Unprotect();
  image.AppendTo(&rec);
  return rec;
}

bool FasterStore::ResolveChainLocked(Version token,
                                     std::vector<Version>* chain) const {
  chain->clear();
  Version cur = token;
  for (;;) {
    auto it = checkpoints_.find(cur);
    if (it == checkpoints_.end() || !it->second.has_index) {
      chain->clear();
      return false;
    }
    chain->push_back(cur);
    if (it->second.base == kInvalidVersion) break;  // reached the full image
    cur = it->second.base;
  }
  std::reverse(chain->begin(), chain->end());
  return true;
}

Status FasterStore::InstallChainImages(const std::vector<Version>& chain,
                                       uint64_t* restored_record_count) {
  // Re-replay the meta WAL collecting the newest valid image payload per
  // chain token. Token numbers can recur across world lines (a rollback to
  // T revives version T+1), so this maintains the same erasure state
  // machine as checkpoint registration: a rollback drops collected images
  // above its point, a begin-advance drops images below its compaction
  // token — whatever survives is exactly what checkpoints_ says is live.
  struct Collected {
    uint8_t type = 0;
    std::string payload;  // bytes after the token field
  };
  std::map<Version, Collected> payloads;
  Status replay = meta_wal_.Replay([&](uint64_t, Slice record) {
    Decoder dec(record);
    uint8_t type;
    uint64_t token;
    if (!dec.GetBytes(&type, 1) || !dec.GetFixed64(&token)) return;
    if (type == kMetaRollback) {
      for (auto it = payloads.upper_bound(token); it != payloads.end();) {
        it = payloads.erase(it);
      }
      return;
    }
    if (type == kMetaBegin) {
      for (auto it = payloads.begin();
           it != payloads.end() && it->first < token;) {
        it = payloads.erase(it);
      }
      return;
    }
    if (type != kMetaFullIndex && type != kMetaDelta) return;
    if (!std::binary_search(chain.begin(), chain.end(), token)) return;
    payloads[token] =
        Collected{type, std::string(dec.position(), dec.remaining())};
  });
  DPR_RETURN_NOT_OK(replay);
  uint64_t record_count = 0;
  for (const Version token : chain) {
    auto it = payloads.find(token);
    if (it == payloads.end()) {
      return Status::Corruption("chain image missing from meta WAL");
    }
    // Payload cursor (the type byte and token were consumed above):
    // boundary, [base], record_count, image.
    Decoder dec(Slice(it->second.payload));
    uint64_t boundary;
    uint64_t base = kInvalidVersion;
    if (!dec.GetFixed64(&boundary)) {
      return Status::Corruption("truncated chain image");
    }
    if (it->second.type == kMetaDelta && !dec.GetFixed64(&base)) {
      return Status::Corruption("truncated chain image");
    }
    if (!dec.GetFixed64(&record_count)) {
      return Status::Corruption("truncated chain image");
    }
    IndexImage image;
    if (!image.ParseFrom(&dec)) {
      return Status::Corruption("truncated chain image");
    }
    for (const auto& [bucket, head] : image.pairs) {
      index_.SetHeadAt(bucket, head);
    }
  }
  // The anchor (last link) stamped its record count with the image.
  *restored_record_count = record_count;
  return Status::OK();
}

void FasterStore::WaitForCheckpoints() {
  MutexLock lock(flush_mu_);
  flush_idle_cv_.Wait(flush_mu_, [this]() REQUIRES(flush_mu_) {
    return flush_queue_.empty() && !flush_in_progress_;
  });
}

void FasterStore::Scan(
    const std::function<void(uint64_t, Slice)>& visitor) const {
  const LogAddress end = log_.tail();
  const uint64_t page_mask = log_.page_size() - 1;
  LogAddress pos = begin_.load(std::memory_order_acquire);
  while (pos < end) {
    if (log_.page_size() - (pos & page_mask) < sizeof(RecordHeader)) {
      pos = (pos | page_mask) + 1;
      continue;
    }
    const RecordHeader* rec = log_.RecordAt(pos);
    if (rec->key == 0 && rec->version == 0 && rec->value_size == 0 &&
        rec->LoadFlags() == 0) {
      pos = (pos | page_mask) + 1;
      continue;
    }
    // Emit only if this record is the newest visible one for its key.
    if (!rec->pad() && !rec->tombstone() && Visible(rec) &&
        FindRecord(rec->key, nullptr) == pos) {
      visitor(rec->key, Slice(rec->value(), rec->value_size));
    }
    pos += rec->size();
  }
}

Status FasterStore::StartCompaction(Version safe_token,
                                    Version* compaction_token) {
  LogAddress until = kNullAddress;
  {
    MutexLock guard(checkpoints_mu_);
    auto it = checkpoints_.find(safe_token);
    if (it == checkpoints_.end()) {
      return Status::NotFound("safe token has no durable checkpoint");
    }
    until = it->second.boundary;
  }
  const LogAddress begin = begin_.load(std::memory_order_acquire);
  if (until <= begin) {
    return Status::InvalidArgument("nothing to compact below safe token");
  }
  // Copy every live record in [begin, until) to the tail. Copies are
  // ordinary writes in the current version: if they are later rolled back,
  // the originals are still present (begin has not moved yet).
  const uint64_t page_mask = log_.page_size() - 1;
  LogAddress pos = begin;
  while (pos < until) {
    if (log_.page_size() - (pos & page_mask) < sizeof(RecordHeader)) {
      pos = (pos | page_mask) + 1;
      continue;
    }
    RecordHeader* rec = log_.RecordAt(pos);
    if (rec->key == 0 && rec->version == 0 && rec->value_size == 0 &&
        rec->LoadFlags() == 0) {
      pos = (pos | page_mask) + 1;
      continue;
    }
    const uint64_t key = rec->key;
    if (!rec->pad() && !rec->tombstone() && Visible(rec)) {
      // Conditional copy-to-tail: give up if a newer record for the key
      // appears (a concurrent writer superseded the value being copied).
      for (;;) {
        LogAddress head;
        if (FindRecord(key, &head) != pos) break;  // superseded or deleted
        const uint64_t v = version_.load(std::memory_order_acquire);
        LogAddress expected = head;
        const LogAddress copy =
            AppendRecord(key, Slice(rec->value(), rec->value_size),
                         /*tombstone=*/false, expected,
                         static_cast<uint32_t>(v));
        if (index_.CasHead(key, &expected, copy)) {
          record_count_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        log_.RecordAt(copy)->SetFlag(RecordHeader::kInvalid);
      }
    }
    pos += rec->size();
  }
  // Checkpoint the copies; `token` is the compaction checkpoint. Forced
  // full-with-image: FinishCompaction drops every older checkpoint, so this
  // token becomes the terminating base for all post-compaction delta chains
  // (an image-less compaction checkpoint would doom them to scan restores).
  Status s;
  Version token = kInvalidVersion;
  for (int attempt = 0; attempt < 64; ++attempt) {
    s = PerformCheckpoint(CurrentVersion() + 1, nullptr, &token,
                          CheckpointHints{.index_image = true, .delta = false});
    if (!s.IsBusy()) break;
    WaitForCheckpoints();  // a timer-triggered checkpoint was in flight
  }
  DPR_RETURN_NOT_OK(s);
  WaitForCheckpoints();
  {
    MutexLock guard(checkpoints_mu_);
    pending_compactions_[token] = until;
  }
  if (compaction_token != nullptr) *compaction_token = token;
  return Status::OK();
}

Status FasterStore::FinishCompaction(Version compaction_token,
                                     Version committed_watermark) {
  if (committed_watermark < compaction_token) {
    // GC only entries inside the DPR guarantee: the copies are not yet
    // covered by the committed cut, so the originals must stay restorable.
    return Status::Busy("DPR cut has not covered the compaction checkpoint");
  }
  LogAddress until = kNullAddress;
  {
    MutexLock guard(checkpoints_mu_);
    auto it = pending_compactions_.find(compaction_token);
    if (it == pending_compactions_.end()) {
      return Status::NotFound("unknown compaction token");
    }
    until = it->second;
    pending_compactions_.erase(it);
    // Checkpoints older than the compaction checkpoint can no longer be
    // restored (their images reference the truncated region); DPR never
    // rolls back below the committed cut, so dropping them is safe.
    for (auto cit = checkpoints_.begin();
         cit != checkpoints_.end() && cit->first < compaction_token;) {
      cit = checkpoints_.erase(cit);
    }
  }
  DPR_RETURN_NOT_OK(AppendCheckpointMeta(kMetaBegin, compaction_token,
                                         until));
  begin_.store(until, std::memory_order_release);
  // Reclaim memory once every thread has observed the new begin address.
  epoch_.BumpEpoch([this, until] { log_.ReleasePagesBelow(until); });
  epoch_.TryDrain();
  return Status::OK();
}

Version FasterStore::LargestDurableToken() const {
  MutexLock guard(checkpoints_mu_);
  return checkpoints_.empty() ? kInvalidVersion : checkpoints_.rbegin()->first;
}

// ---------------------------------------------------------------- rollback

Status FasterStore::RestoreCheckpoint(Version version,
                                      Version* restored_token) {
  // Quiesce the flush pipeline first so PURGE never races a checkpoint
  // flush over the same byte range.
  WaitForCheckpoints();

  Version token = kInvalidVersion;
  Version anchor = kInvalidVersion;
  LogAddress boundary = LogAllocator::kBeginAddress;
  LogAddress cover_boundary = LogAllocator::kBeginAddress;
  {
    MutexLock guard(checkpoints_mu_);
    // Restore to the largest durable token <= the requested version (cut
    // entries from the approximate finder may not be exact local tokens).
    for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
      if (it->first <= version) {
        token = it->first;
        boundary = it->second.boundary;
        break;
      }
    }
    cover_boundary = boundary;
    anchor = token;
    if (token != version) {
      // The requested version sits in a token gap (its own checkpoint flush
      // failed). The cut only ever contains reported versions, so a later
      // durable checkpoint exists whose flushed prefix contains every record
      // with version <= the request (records are version-tagged): restore
      // from it and purge the (version, cover] overshoot, instead of
      // undershooting to `token` and losing committed writes.
      auto cover = checkpoints_.upper_bound(version);
      if (cover != checkpoints_.end()) {
        token = version;
        anchor = cover->first;
        cover_boundary = cover->second.boundary;
      }
    }
  }
  Status s = crashed_.load(std::memory_order_acquire)
                 ? ColdRecover(token, boundary, cover_boundary, anchor)
                 : InMemoryRollback(token, boundary, cover_boundary);
  if (s.ok() && restored_token != nullptr) *restored_token = token;
  return s;
}

Status FasterStore::InMemoryRollback(Version token, LogAddress boundary,
                                     LogAddress cover_boundary) {
  const uint64_t v_old = version_.load(std::memory_order_acquire);
  if (token == v_old) return Status::OK();  // nothing above the target
  // THROW (Fig. 8): hide versions (token, v_old] from every lookup, stop
  // in-place updates, and move operations to v_old + 1.
  ignore_low_.store(token, std::memory_order_release);
  ignore_high_.store(v_old, std::memory_order_release);
  rollback_state_.store(static_cast<int>(RollbackState::kThrow),
                        std::memory_order_release);
  version_.store(v_old + 1, std::memory_order_release);
  // Fuzzy end of the lost versions: records appended from here on carry
  // version v_old + 1 and are never purged.
  const LogAddress purge_end = log_.tail();

  // PURGE: mark every lost record invalid so the ignore window can be lifted.
  rollback_state_.store(static_cast<int>(RollbackState::kPurge),
                        std::memory_order_release);
  LogAddress pos = std::max(boundary, begin_.load(std::memory_order_acquire));
  const uint64_t page_mask = log_.page_size() - 1;
  while (pos < purge_end) {
    if (log_.page_size() - (pos & page_mask) < sizeof(RecordHeader)) {
      pos = (pos | page_mask) + 1;  // zeroed page remainder
      continue;
    }
    RecordHeader* rec = log_.RecordAt(pos);
    if (rec->key == 0 && rec->version == 0 && rec->value_size == 0 &&
        rec->LoadFlags() == 0) {
      pos = (pos | page_mask) + 1;  // zeroed page remainder
      continue;
    }
    if (rec->version > token && rec->version <= v_old) {
      rec->SetFlag(RecordHeader::kInvalid);
    }
    pos += rec->size();
  }

  // If part of the purged range had already been flushed, rewrite it so the
  // invalid marks are durable — otherwise a later crash-recovery of a
  // post-rollback checkpoint would resurrect rolled-back records.
  const LogAddress flushed = flushed_until_.load(std::memory_order_acquire);
  if (flushed > boundary) {
    DPR_RETURN_NOT_OK(FlushRange(boundary, flushed));
  }

  // Forget rolled-back checkpoints (durably), and cancel any in-flight
  // compaction whose checkpoint was itself rolled back (its copies are now
  // invalid; the originals below begin remain authoritative).
  {
    MutexLock guard(checkpoints_mu_);
    for (auto it = checkpoints_.upper_bound(token);
         it != checkpoints_.end();) {
      it = checkpoints_.erase(it);
    }
    for (auto it = pending_compactions_.upper_bound(token);
         it != pending_compactions_.end();) {
      it = pending_compactions_.erase(it);
    }
  }
  DPR_RETURN_NOT_OK(AppendCheckpointMeta(kMetaRollback, token, boundary));
  if (cover_boundary != boundary) {
    // Mid-gap restore point: the covering checkpoint's flushed prefix plus
    // the now-durable invalid marks form a consistent durable checkpoint at
    // the restore point itself — register it, or a second crash would
    // undershoot to `boundary` and lose the (boundary, cover] prefix again.
    {
      MutexLock guard(checkpoints_mu_);
      checkpoints_[token] = CkptEntry{cover_boundary};
    }
    DPR_RETURN_NOT_OK(
        AppendCheckpointMeta(kMetaCheckpoint, token, cover_boundary));
  }

  // A delta chain must never span a rollback: the registered mid-gap entry
  // is image-less, and invalid marks changed buckets behind every base.
  force_full_next_.store(true, std::memory_order_release);

  // Nothing pre-rollback may be updated in place anymore.
  read_only_address_.store(purge_end, std::memory_order_release);
  // Back to REST: the invalid flags now carry the information the ignore
  // window provided.
  ignore_high_.store(0, std::memory_order_release);
  ignore_low_.store(0, std::memory_order_release);
  rollback_state_.store(static_cast<int>(RollbackState::kRest),
                        std::memory_order_release);
  return Status::OK();
}

Status FasterStore::ColdRecover(Version token, LogAddress boundary,
                                LogAddress cover_boundary, Version anchor) {
  log_.Clear();
  index_.Clear();
  record_count_.store(0, std::memory_order_relaxed);
  log_.RestoreTo(cover_boundary);
  // Bulk-load the durable log prefix, one log page at a time (Resolve()
  // pointers are only contiguous within a page). A boundary at the begin
  // address means no checkpoint ever flushed: restore to empty.
  std::vector<char> buf;
  LogAddress pos = begin_.load(std::memory_order_acquire);
  if (cover_boundary <= pos) pos = cover_boundary;
  while (pos < cover_boundary) {
    const uint64_t page_end = (pos | (log_.page_size() - 1)) + 1;
    const uint64_t n = std::min<uint64_t>(page_end, cover_boundary) - pos;
    buf.resize(n);
    DPR_RETURN_NOT_OK(
        SyncIo::Read(options_.log_device.get(), pos, buf.data(), n));
    memcpy(log_.Resolve(pos), buf.data(), n);
    pos += n;
  }
  // Fast path: when the anchor checkpoint (the one whose flushed prefix is
  // being restored) carries an index image, install its delta chain — base
  // first, each delta overlaying its predecessor — instead of scanning the
  // whole restored prefix. Falls back to the scan when any chain link lost
  // its image (legacy checkpoints, rollback mid-gap entries).
  std::vector<Version> chain;
  {
    MutexLock guard(checkpoints_mu_);
    ResolveChainLocked(anchor, &chain);
  }
  const uint64_t page_mask = log_.page_size() - 1;
  uint64_t chain_count = 0;
  bool chain_restored =
      !chain.empty() && InstallChainImages(chain, &chain_count).ok();
  if (chain_restored) {
    Metrics().ckpt_chain_restores->Add();
    Metrics().ckpt_chain_length->Set(static_cast<int64_t>(chain.size()));
    // Only the covering overshoot needs a walk: records with versions in
    // (token, anchor] must carry invalid marks before post-recovery
    // versions reuse the same numbers. An exact restore skips even this —
    // recovery cost is O(image), independent of log size.
    uint64_t invalidated = 0;
    pos = std::max(boundary, begin_.load(std::memory_order_acquire));
    while (pos < cover_boundary) {
      if (log_.page_size() - (pos & page_mask) < sizeof(RecordHeader)) {
        pos = (pos | page_mask) + 1;
        continue;
      }
      RecordHeader* rec = log_.RecordAt(pos);
      if (rec->key == 0 && rec->version == 0 && rec->value_size == 0 &&
          rec->LoadFlags() == 0) {
        pos = (pos | page_mask) + 1;
        continue;
      }
      if (!rec->pad() && !rec->invalid() && rec->version > token) {
        rec->SetFlag(RecordHeader::kInvalid);
        ++invalidated;
      }
      pos += rec->size();
    }
    record_count_.store(
        chain_count > invalidated ? chain_count - invalidated : 0,
        std::memory_order_relaxed);
  } else {
    if (!chain.empty()) index_.Clear();  // discard a partial install
    Metrics().ckpt_scan_restores->Add();
    // Rebuild the hash index by forward scan: the stored prev pointers are
    // internally consistent within the restored prefix, so installing each
    // record as its bucket's head in log order reproduces the chains.
    // Records in the (token, cover] overshoot get invalid marks instead —
    // they must never resurrect once post-recovery versions reuse the same
    // numbers.
    pos = begin_.load(std::memory_order_acquire);
    uint64_t records = 0;
    while (pos < cover_boundary) {
      if (log_.page_size() - (pos & page_mask) < sizeof(RecordHeader)) {
        pos = (pos | page_mask) + 1;
        continue;
      }
      RecordHeader* rec = log_.RecordAt(pos);
      if (rec->key == 0 && rec->version == 0 && rec->value_size == 0 &&
          rec->LoadFlags() == 0) {
        pos = (pos | page_mask) + 1;
        continue;
      }
      if (!rec->pad() && rec->version > token) {
        rec->SetFlag(RecordHeader::kInvalid);
      } else if (!rec->pad() && !rec->invalid() && rec->version <= token) {
        index_.SetHead(rec->key, pos);
        ++records;
      }
      pos += rec->size();
    }
    record_count_.store(records, std::memory_order_relaxed);
  }
  if (cover_boundary > boundary) {
    // Persist the overshoot's invalid marks before trusting the restore.
    const LogAddress mark_base =
        std::max(boundary, begin_.load(std::memory_order_acquire));
    if (cover_boundary > mark_base) {
      DPR_RETURN_NOT_OK(FlushRange(mark_base, cover_boundary));
    }
  }
  flushed_until_.store(cover_boundary, std::memory_order_release);
  read_only_address_.store(cover_boundary, std::memory_order_release);
  version_.store(token + 1, std::memory_order_release);
  // Forget rolled-back checkpoints durably: their boundaries point above the
  // restored tail, into a region future flushes rewrite, so a later restore
  // picking one up would parse garbage. The mid-gap restore point itself
  // becomes a checkpoint (its prefix is durable below cover, overshoot marks
  // included).
  {
    MutexLock guard(checkpoints_mu_);
    for (auto it = checkpoints_.upper_bound(token);
         it != checkpoints_.end();) {
      it = checkpoints_.erase(it);
    }
    if (cover_boundary > boundary) checkpoints_[token] = CkptEntry{cover_boundary};
  }
  DPR_RETURN_NOT_OK(AppendCheckpointMeta(kMetaRollback, token, boundary));
  if (cover_boundary > boundary) {
    DPR_RETURN_NOT_OK(
        AppendCheckpointMeta(kMetaCheckpoint, token, cover_boundary));
  }
  // Post-rollback delta chains must restart from a fresh full image: the
  // mid-gap entry above is image-less and the WAL replay state machine
  // erases images past the rollback point.
  force_full_next_.store(true, std::memory_order_release);
  // The rebuilt state carries no pending purge — clear the rollback machine
  // even if a failed in-memory rollback left it mid-THROW/PURGE before the
  // crash escalated to a cold restore.
  ignore_high_.store(0, std::memory_order_release);
  ignore_low_.store(0, std::memory_order_release);
  rollback_state_.store(static_cast<int>(RollbackState::kRest),
                        std::memory_order_release);
  crashed_.store(false, std::memory_order_release);
  return Status::OK();
}

void FasterStore::SimulateCrash() {
  WaitForCheckpoints();
  crashed_.store(true, std::memory_order_release);
  options_.log_device->SimulateCrash();
  meta_wal_.device()->SimulateCrash();
  log_.Clear();
  index_.Clear();
  // Reload durable checkpoint metadata as a restarted process would.
  {
    MutexLock guard(checkpoints_mu_);
    checkpoints_.clear();
    pending_compactions_.clear();
    begin_.store(LogAllocator::kBeginAddress, std::memory_order_release);
    Status s = meta_wal_.Replay([this](uint64_t, Slice record) {
      Decoder dec(record);
      uint8_t type;
      uint64_t token;
      uint64_t boundary;
      if (!dec.GetBytes(&type, 1) || !dec.GetFixed64(&token) ||
          !dec.GetFixed64(&boundary)) {
        return;
      }
      if (type == kMetaCheckpoint) {
        checkpoints_[token] = CkptEntry{boundary};
      } else if (type == kMetaFullIndex) {
        checkpoints_[token] = CkptEntry{boundary, kInvalidVersion, true};
      } else if (type == kMetaDelta) {
        uint64_t base;
        if (!dec.GetFixed64(&base)) return;
        checkpoints_[token] = CkptEntry{boundary, base, true};
      } else if (type == kMetaRollback) {
        for (auto it = checkpoints_.upper_bound(token);
             it != checkpoints_.end();) {
          it = checkpoints_.erase(it);
        }
      } else if (type == kMetaBegin) {
        // token = compaction checkpoint; boundary = new begin address.
        begin_.store(boundary, std::memory_order_release);
        for (auto it = checkpoints_.begin();
             it != checkpoints_.end() && it->first < token;) {
          it = checkpoints_.erase(it);
        }
      }
    });
    DPR_CHECK_MSG(s.ok(), "meta WAL replay: %s", s.ToString().c_str());
  }
}

}  // namespace dpr
