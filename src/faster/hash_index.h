#ifndef DPR_FASTER_HASH_INDEX_H_
#define DPR_FASTER_HASH_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/hash.h"
#include "faster/record.h"

namespace dpr {

/// Latch-free hash index mapping keys to the newest record of their chain on
/// the log. Each bucket holds the head address; records reached through
/// `prev` pointers form the chain (records of different keys may share a
/// bucket's chain, as in FASTER). Updates install a new head with CAS.
class HashIndex {
 public:
  /// `bucket_count` is rounded up to a power of two.
  explicit HashIndex(uint64_t bucket_count);

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  uint64_t BucketFor(uint64_t key) const {
    return Mix64(key) & (bucket_count_ - 1);
  }

  LogAddress Head(uint64_t key) const {
    return buckets_[BucketFor(key)].load(std::memory_order_acquire);
  }

  /// CAS the bucket head from `expected` to `desired`; on failure `expected`
  /// holds the observed head.
  bool CasHead(uint64_t key, LogAddress* expected, LogAddress desired) {
    return buckets_[BucketFor(key)].compare_exchange_strong(
        *expected, desired, std::memory_order_acq_rel);
  }

  /// Unconditionally sets a bucket head (single-threaded recovery rebuild).
  void SetHead(uint64_t key, LogAddress address) {
    buckets_[BucketFor(key)].store(address, std::memory_order_release);
  }

  /// Bucket-indexed accessors for checkpoint index images: a full image
  /// walks every bucket, and a chain restore reinstalls heads by bucket
  /// number without knowing the keys that hash there.
  LogAddress HeadAt(uint64_t bucket) const {
    return buckets_[bucket].load(std::memory_order_acquire);
  }

  void SetHeadAt(uint64_t bucket, LogAddress address) {
    buckets_[bucket].store(address, std::memory_order_release);
  }

  void Clear();

  uint64_t bucket_count() const { return bucket_count_; }

 private:
  uint64_t bucket_count_;
  // release on CAS-install / acquire on probe: observing a bucket address
  // implies observing the record bytes written at that address.
  std::unique_ptr<std::atomic<LogAddress>[]> buckets_;
};

}  // namespace dpr

#endif  // DPR_FASTER_HASH_INDEX_H_
