#ifndef DPR_FASTER_RECORD_H_
#define DPR_FASTER_RECORD_H_

#include <atomic>
#include <cstdint>
#include <cstring>

namespace dpr {

/// Logical address into the HybridLog. Addresses are byte offsets from the
/// start of the log and only grow; 0 is the null address (end of a hash
/// chain).
using LogAddress = uint64_t;
constexpr LogAddress kNullAddress = 0;

/// On-log record header. Records are 8-byte aligned; the value bytes follow
/// the header immediately (so an 8-byte value is itself 8-byte aligned and
/// can be updated in place with a single atomic store).
///
/// `version` is the CPR/DPR checkpoint version the record was written (or
/// last in-place-updated) in; the rollback state machine (paper Fig. 8) uses
/// it to decide which entries to ignore and then mark invalid.
struct RecordHeader {
  static constexpr uint8_t kTombstone = 1 << 0;
  static constexpr uint8_t kInvalid = 1 << 1;  // rolled back (PURGE) or pad
  static constexpr uint8_t kPad = 1 << 2;      // filler at end of a page

  LogAddress prev = kNullAddress;  // next-older record in this hash chain
  uint64_t key = 0;
  uint32_t version = 0;
  uint16_t value_size = 0;
  uint8_t flags = 0;
  uint8_t reserved = 0;

  bool tombstone() const { return (LoadFlags() & kTombstone) != 0; }
  bool invalid() const { return (LoadFlags() & kInvalid) != 0; }
  bool pad() const { return (LoadFlags() & kPad) != 0; }

  /// Flags can be set concurrently with readers (PURGE marks records invalid
  /// while lookups traverse chains), so access them atomically.
  uint8_t LoadFlags() const {
    return std::atomic_ref<const uint8_t>(flags).load(
        std::memory_order_acquire);
  }
  void SetFlag(uint8_t flag) {
    std::atomic_ref<uint8_t>(flags).fetch_or(flag, std::memory_order_acq_rel);
  }

  char* value() { return reinterpret_cast<char*>(this + 1); }
  const char* value() const { return reinterpret_cast<const char*>(this + 1); }

  /// Total record footprint in the log, 8-byte aligned.
  static uint64_t SizeWith(uint16_t value_size) {
    return (sizeof(RecordHeader) + value_size + 7) & ~uint64_t{7};
  }
  uint64_t size() const { return SizeWith(value_size); }
};

static_assert(sizeof(RecordHeader) == 24, "record header layout");

}  // namespace dpr

#endif  // DPR_FASTER_RECORD_H_
