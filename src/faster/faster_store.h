#ifndef DPR_FASTER_FASTER_STORE_H_
#define DPR_FASTER_FASTER_STORE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/sync.h"
#include "dpr/state_object.h"
#include "epoch/light_epoch.h"
#include "faster/hash_index.h"
#include "faster/log_allocator.h"
#include "storage/device.h"
#include "storage/wal.h"

namespace dpr {

struct FasterOptions {
  /// Hash buckets (rounded up to a power of two). The paper sizes this at
  /// #keys / 2.
  uint64_t index_buckets = 1 << 16;
  /// log2 of the log page size.
  uint32_t page_bits = 20;
  /// Durable image of the record log (fold-over checkpoint target).
  std::unique_ptr<Device> log_device;
  /// Small device holding the checkpoint-metadata WAL.
  std::unique_ptr<Device> meta_device;
  /// Optional per-box group-commit fsync scheduler (not owned; must outlive
  /// the store). When set, checkpoint-flush and meta-WAL fsyncs register as
  /// durability waiters there, coalescing with other shards on the device.
  GroupCommitScheduler* fsync_scheduler = nullptr;
};

/// FASTER-style single-node key-value store (paper §5.1): a latch-free hash
/// index over a HybridLog with in-place updates in the mutable region,
/// read-copy-update below the read-only boundary, CPR-style fold-over
/// checkpoints, and the paper's non-blocking rollback state machine
/// REST -> THROW -> PURGE (§5.5, Fig. 8).
///
/// Checkpoint/version protocol (StateObject contract): operations execute in
/// the current version; PerformCheckpoint(target) stamps the boundary — a
/// metadata-only step — and flushes the log prefix asynchronously on the
/// background flush thread. Callers (DprWorker) must guarantee no operation
/// is mid-flight across the PerformCheckpoint call itself (the worker's
/// version latch does); everything else — flushing, committing, rolling
/// back with concurrent readers — is non-blocking.
class FasterStore : public StateObject {
 public:
  explicit FasterStore(FasterOptions options);
  ~FasterStore() override;

  FasterStore(const FasterStore&) = delete;
  FasterStore& operator=(const FasterStore&) = delete;

  /// A session pins an epoch slot and is the unit of thread access; use one
  /// session per thread. Sessions are invalidated by SimulateCrash.
  class Session {
   public:
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    Status Read(uint64_t key, std::string* value);
    Status Read(uint64_t key, uint64_t* value);
    Status Upsert(uint64_t key, Slice value);
    Status Upsert(uint64_t key, uint64_t value);
    /// Atomic add for 8-byte values; inserts `delta` when absent.
    Status Rmw(uint64_t key, uint64_t delta, uint64_t* result = nullptr);
    Status Delete(uint64_t key);

    /// Re-publishes the epoch; call periodically from long-running loops.
    void Refresh();

   private:
    friend class FasterStore;
    explicit Session(FasterStore* store);
    FasterStore* store_;
    uint32_t ops_since_refresh_ = 0;
  };

  std::unique_ptr<Session> NewSession();

  // --- StateObject (libDPR) interface ---
  /// Legacy full fold-over: no hash-index image rides in the meta WAL and
  /// ColdRecover rebuilds the index by scanning the log.
  Status PerformCheckpoint(Version target_version, PersistCallback on_persist,
                           Version* out_token) override;
  /// Hinted variant (the cadence controller's entry point). With
  /// hints.index_image the flush thread captures a hash-index image —
  /// full, or dirty-buckets-only when hints.delta and a durable image base
  /// exists — and persists it inside the checkpoint meta record, enabling
  /// chain restores that skip the full log scan.
  Status PerformCheckpoint(Version target_version, PersistCallback on_persist,
                           Version* out_token,
                           const CheckpointHints& hints) override;
  Status RestoreCheckpoint(Version version, Version* restored_token) override;
  Version CurrentVersion() const override {
    return version_.load(std::memory_order_acquire);
  }
  void SimulateCrash() override;

  // --- introspection ---
  LogAddress tail_address() const { return log_.tail(); }
  LogAddress read_only_address() const {
    return read_only_address_.load(std::memory_order_acquire);
  }
  /// Largest checkpoint token whose image is durable.
  Version LargestDurableToken() const;

  /// Visits the newest visible version of every live key (tombstones are
  /// skipped). Concurrent-safe but sees a fuzzy snapshot; used for key
  /// migration during ownership transfer.
  void Scan(const std::function<void(uint64_t key, Slice value)>& visitor)
      const;

  // --- log compaction / garbage collection ---
  // The paper requires that only entries inside the DPR guarantee are
  // garbage-collected. Compaction is two-phase:
  //  1. StartCompaction(safe_token): copies every live record below
  //     boundary(safe_token) to the tail (as ordinary writes in the current
  //     version) and takes a checkpoint containing the copies; returns that
  //     checkpoint's token.
  //  2. FinishCompaction(token, committed_watermark): once the DPR cut
  //     covers `token`, durably advances the log begin address, drops the
  //     now-unrestorable older checkpoints, and reclaims memory via an
  //     epoch-protected drain. Rejected while the cut lags.
  Status StartCompaction(Version safe_token, Version* compaction_token);
  Status FinishCompaction(Version compaction_token,
                          Version committed_watermark);
  LogAddress begin_address() const {
    return begin_.load(std::memory_order_acquire);
  }
  /// Blocks until no checkpoint flush is in flight (test helper).
  void WaitForCheckpoints();
  uint64_t approximate_record_count() const {
    return record_count_.load(std::memory_order_relaxed);
  }

 private:
  enum class RollbackState : int { kRest = 0, kThrow = 1, kPurge = 2 };

  struct FlushRequest {
    Version token;
    LogAddress boundary;
    PersistCallback callback;
    /// Enqueue time, for the stamp→durable checkpoint-latency histogram.
    uint64_t enqueue_us = 0;
    /// CheckpointHints carried to the flush thread, which captures the
    /// image (the base is chosen at flush time, against durable state).
    bool index_image = false;
    bool delta = false;
    /// Record count at the stamp, persisted with the image so a chain
    /// restore can reinstate the counter without scanning.
    uint64_t record_count = 0;
  };

  /// One durable checkpoint. `base` links a delta image to the newest
  /// durable image checkpoint it was diffed against (kInvalidVersion for
  /// full images and image-less legacy checkpoints); `has_index` says an
  /// index image for this token exists in the meta WAL, making the token
  /// eligible as a delta base and as a chain-restore anchor.
  struct CkptEntry {
    LogAddress boundary = 0;
    Version base = kInvalidVersion;
    bool has_index = false;
  };

  Status ReadInternal(uint64_t key, std::string* out_str, uint64_t* out_int);
  Status UpsertInternal(uint64_t key, Slice value);
  // Walks `key`'s chain; returns the first visible matching record address
  // (kNullAddress if none) and the chain head observed.
  LogAddress FindRecord(uint64_t key, LogAddress* head_out) const;
  bool Visible(const RecordHeader* rec) const;
  LogAddress AppendRecord(uint64_t key, Slice value, bool tombstone,
                          LogAddress prev, uint32_t version);

  void FlushLoop();
  Status FlushRange(LogAddress from, LogAddress to);
  // `token` is the logical restore point; `boundary` is the flush boundary
  // of the largest durable checkpoint <= token (records below it all have
  // version <= token). When the restore point's own flush failed,
  // `cover_boundary` is the boundary of the next durable checkpoint above —
  // its flushed prefix still contains every record with version <= token —
  // and records in (token, cover] get purged. cover_boundary == boundary for
  // an exact-token restore.
  // `anchor` is the durable checkpoint whose boundary == cover_boundary
  // (the token itself on an exact restore): when it carries an index
  // image, recovery installs its delta chain instead of scanning the log.
  Status ColdRecover(Version token, LogAddress boundary,
                     LogAddress cover_boundary, Version anchor);
  Status InMemoryRollback(Version token, LogAddress boundary,
                          LogAddress cover_boundary);
  Status AppendCheckpointMeta(uint8_t type, Version token,
                              LogAddress boundary);

  // --- delta-checkpoint machinery (DESIGN.md §4j) ---
  // Encodes the kMetaFullIndex / kMetaDelta record for `req`, capturing
  // the index image on the flush thread. `base` (kInvalidVersion for a
  // full image) must be a durable image checkpoint. Returns the record
  // size via `bytes`.
  std::string EncodeIndexMetaRecord(const FlushRequest& req, Version base);
  // Largest durable token carrying an index image, or kInvalidVersion.
  Version LargestImageBaseLocked() const REQUIRES(checkpoints_mu_);
  // Resolves the delta chain ending at `token` (ascending, base first).
  // Fails (false) when any link lacks an image or left the durable set —
  // the caller then falls back to the full log scan.
  bool ResolveChainLocked(Version token, std::vector<Version>* chain) const
      REQUIRES(checkpoints_mu_);
  // Replays the meta WAL collecting the newest valid image payload for
  // each chain token (honoring rollback/compaction erasures), then
  // installs them ascending so deltas overlay their base.
  Status InstallChainImages(const std::vector<Version>& chain,
                            uint64_t* restored_record_count);

  FasterOptions options_;
  LightEpoch epoch_;
  LogAllocator log_;
  HashIndex index_;
  WriteAheadLog meta_wal_;

  // Store-state words read lock-free on every operation. release on the
  // writer side (version bump, checkpoint boundary install, rollback state
  // transition) / acquire on read: an op that observes the new word must
  // also observe the log/index state the transition published. They are
  // deliberately independent — in-place-update admission re-checks all of
  // them and the version latch fences batch boundaries.
  std::atomic<uint64_t> version_{1};
  std::atomic<LogAddress> begin_{LogAllocator::kBeginAddress};
  std::atomic<LogAddress> read_only_address_{LogAllocator::kBeginAddress};
  std::atomic<LogAddress> flushed_until_{LogAllocator::kBeginAddress};
  std::atomic<int> rollback_state_{static_cast<int>(RollbackState::kRest)};
  // Records with version in (ignore_low, ignore_high] are being rolled back
  // and must be ignored by all lookups (Fig. 8). Disabled when high == 0.
  // Release stores install/clear the window; lookups load-acquire high
  // first, so a nonzero high guarantees they see the matching low.
  std::atomic<uint64_t> ignore_low_{0};
  std::atomic<uint64_t> ignore_high_{0};
  // relaxed would do for these two (crash flag is a test hook checked at op
  // entry; record_count_ is a stat), but they ride the default seq_cst via
  // plain load/store at non-hot call sites.
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> record_count_{0};

  // Set after a rollback (either path): the next image checkpoint must be
  // full, because rollback invalid-marks records and registers image-less
  // covering entries — a chain must never span a world-line change.
  // release on set / acquire on the flush-thread read.
  std::atomic<bool> force_full_next_{false};

  // Durable checkpoints: token -> entry. Never nests with flush_mu_.
  mutable Mutex checkpoints_mu_{LockRank::kStoreCheckpoints,
                                "faster.checkpoints"};
  std::map<Version, CkptEntry> checkpoints_ GUARDED_BY(checkpoints_mu_);
  // In-flight compactions: compaction checkpoint token -> new begin address.
  std::map<Version, LogAddress> pending_compactions_
      GUARDED_BY(checkpoints_mu_);

  // Flush pipeline. flush_mu_ is held only for queue push/pop — never
  // across device I/O or the persistence callback.
  Mutex flush_mu_{LockRank::kStoreFlush, "faster.flush"};
  CondVar flush_cv_;
  CondVar flush_idle_cv_;
  std::deque<FlushRequest> flush_queue_ GUARDED_BY(flush_mu_);
  bool flush_in_progress_ GUARDED_BY(flush_mu_) = false;
  // CAS-claimed by PerformCheckpoint (one in flight), release-cleared when
  // the flush completes; acquire-read by the in-place-update admission check
  // so no mutation lands in a version being captured.
  std::atomic<bool> checkpoint_active_{false};
  std::thread flush_thread_;
  bool stop_flush_ GUARDED_BY(flush_mu_) = false;
};

}  // namespace dpr

#endif  // DPR_FASTER_FASTER_STORE_H_
