#include "faster/hash_index.h"

#include "common/logging.h"

namespace dpr {

namespace {
uint64_t RoundUpPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

HashIndex::HashIndex(uint64_t bucket_count)
    : bucket_count_(RoundUpPow2(bucket_count < 16 ? 16 : bucket_count)),
      buckets_(new std::atomic<LogAddress>[bucket_count_]) {
  Clear();
}

void HashIndex::Clear() {
  for (uint64_t i = 0; i < bucket_count_; ++i) {
    // relaxed: Clear runs before the index is published to other threads.
    buckets_[i].store(kNullAddress, std::memory_order_relaxed);
  }
}

}  // namespace dpr
