#include "faster/log_allocator.h"

#include <cstring>

#include "common/logging.h"

namespace dpr {

namespace {
// 64 Ki pages of (default) 1 MiB each = 64 GiB of addressable log, far above
// anything this reproduction allocates. A fixed slot array lets Resolve()
// run lock-free.
constexpr uint64_t kMaxPages = 64 * 1024;
}  // namespace

LogAllocator::LogAllocator(uint32_t page_bits)
    : page_bits_(page_bits), tail_(kBeginAddress) {
  DPR_CHECK(page_bits_ >= 12 && page_bits_ <= 30);
  pages_.resize(kMaxPages);
}

void LogAllocator::EnsurePage(uint64_t page_index) {
  DPR_CHECK_MSG(page_index < kMaxPages, "log exhausted");
  if (page_index < num_pages_.load(std::memory_order_acquire) &&
      pages_[page_index] != nullptr) {
    return;
  }
  MutexLock guard(pages_mu_);
  if (pages_[page_index] == nullptr) {
    pages_[page_index] = std::make_unique<char[]>(page_size());
    memset(pages_[page_index].get(), 0, page_size());
  }
  uint64_t n = num_pages_.load(std::memory_order_relaxed);
  if (page_index + 1 > n) {
    num_pages_.store(page_index + 1, std::memory_order_release);
  }
}

LogAddress LogAllocator::Allocate(uint64_t size) {
  DPR_CHECK(size % 8 == 0 && size > 0 && size <= page_size());
  const uint64_t page_mask = page_size() - 1;
  for (;;) {
    const uint64_t old = tail_.load(std::memory_order_acquire);
    const uint64_t offset = old & page_mask;
    if (offset + size > page_size()) {
      // Seal the page: whoever wins the CAS writes a pad record over the
      // remainder (or leaves it zeroed when smaller than a header; the
      // recovery scan skips to the page boundary either way).
      const uint64_t page_end = (old | page_mask) + 1;
      uint64_t expected = old;
      if (tail_.compare_exchange_strong(expected, page_end,
                                        std::memory_order_acq_rel)) {
        const uint64_t gap = page_end - old;
        if (gap >= sizeof(RecordHeader)) {
          EnsurePage(old >> page_bits_);
          auto* pad = RecordAt(old);
          pad->prev = kNullAddress;
          pad->key = 0;
          pad->version = 0;
          pad->value_size = static_cast<uint16_t>(gap - sizeof(RecordHeader));
          pad->flags = RecordHeader::kPad | RecordHeader::kInvalid;
        }
      }
      continue;
    }
    uint64_t expected = old;
    if (tail_.compare_exchange_strong(expected, old + size,
                                      std::memory_order_acq_rel)) {
      EnsurePage(old >> page_bits_);
      EnsurePage((old + size - 1) >> page_bits_);
      return old;
    }
  }
}

char* LogAllocator::Resolve(LogAddress address) {
  const uint64_t page_index = address >> page_bits_;
  DPR_CHECK_MSG(page_index < num_pages_.load(std::memory_order_acquire),
                "address %llu beyond allocated log",
                static_cast<unsigned long long>(address));
  char* page = pages_[page_index].get();
  return page + (address & (page_size() - 1));
}

const char* LogAllocator::Resolve(LogAddress address) const {
  return const_cast<LogAllocator*>(this)->Resolve(address);
}

void LogAllocator::RestoreTo(uint64_t size) {
  MutexLock guard(pages_mu_);
  const uint64_t needed = (size + page_size() - 1) >> page_bits_;
  for (uint64_t i = 0; i < needed; ++i) {
    if (pages_[i] == nullptr) {
      pages_[i] = std::make_unique<char[]>(page_size());
      memset(pages_[i].get(), 0, page_size());
    }
  }
  if (needed > num_pages_.load(std::memory_order_relaxed)) {
    num_pages_.store(needed, std::memory_order_release);
  }
  tail_.store(size < kBeginAddress ? kBeginAddress : size,
              std::memory_order_release);
}

void LogAllocator::ReleasePagesBelow(LogAddress address) {
  MutexLock guard(pages_mu_);
  const uint64_t first_kept = address >> page_bits_;
  for (uint64_t i = 0; i < first_kept && i < pages_.size(); ++i) {
    pages_[i].reset();
  }
}

void LogAllocator::Clear() {
  MutexLock guard(pages_mu_);
  for (auto& page : pages_) page.reset();
  num_pages_.store(0, std::memory_order_release);
  tail_.store(kBeginAddress, std::memory_order_release);
}

}  // namespace dpr
