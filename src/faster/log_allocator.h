#ifndef DPR_FASTER_LOG_ALLOCATOR_H_
#define DPR_FASTER_LOG_ALLOCATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "faster/record.h"

namespace dpr {

/// The in-memory portion of the HybridLog: a paged, append-only allocator
/// addressed by monotonically-growing logical addresses. Records never span
/// pages; the remainder of a page is sealed with a pad record. Pages are
/// allocated on demand and retained (this reproduction runs the paper's
/// memory-resident configuration; durability comes from checkpoint flushes,
/// not page eviction — see DESIGN.md).
///
/// Thread-safe: Allocate() is a lock-free fetch-add fast path with a brief
/// lock only when a new page must be materialized.
class LogAllocator {
 public:
  /// page_bits: log2 of the page size (default 1 MiB pages).
  explicit LogAllocator(uint32_t page_bits = 20);

  LogAllocator(const LogAllocator&) = delete;
  LogAllocator& operator=(const LogAllocator&) = delete;

  /// Reserves `size` bytes (8-byte aligned, <= page size) and returns the
  /// logical address. The returned region is zeroed.
  LogAddress Allocate(uint64_t size);

  /// Resolves a logical address to memory. The address must have been
  /// returned by Allocate (or lie inside a restored prefix).
  char* Resolve(LogAddress address);
  const char* Resolve(LogAddress address) const;

  RecordHeader* RecordAt(LogAddress address) {
    return reinterpret_cast<RecordHeader*>(Resolve(address));
  }
  const RecordHeader* RecordAt(LogAddress address) const {
    return reinterpret_cast<const RecordHeader*>(Resolve(address));
  }

  LogAddress tail() const { return tail_.load(std::memory_order_acquire); }
  uint64_t page_size() const { return uint64_t{1} << page_bits_; }

  /// Ensures pages covering [0, size) exist (used by crash recovery before
  /// bulk-loading a durable log prefix) and positions the tail at `size`.
  void RestoreTo(uint64_t size);

  /// Drops all pages and resets the tail to the initial address (simulated
  /// crash of the volatile cache).
  void Clear();

  /// Frees pages that lie entirely below `address` (log truncation after
  /// compaction). Callers must guarantee no thread still dereferences
  /// addresses below (epoch-protected drain).
  void ReleasePagesBelow(LogAddress address);

  /// First allocatable address (0 is reserved as the null address).
  static constexpr LogAddress kBeginAddress = 64;

 private:
  void EnsurePage(uint64_t page_index);

  const uint32_t page_bits_;
  // acquire-load + CAS: winners own [old, old+size) exclusively; the
  // record bytes are published by the hash-index release-store, not here.
  std::atomic<uint64_t> tail_;
  // Guards page materialization only; Resolve() reads slots lock-free after
  // the num_pages_ release-store publishes them.
  mutable Mutex pages_mu_{LockRank::kStoreLog, "faster.log_pages"};
  std::vector<std::unique_ptr<char[]>> pages_;
  // release on materialize / acquire in Resolve: observing the count
  // implies observing the page pointer it covers.
  std::atomic<uint64_t> num_pages_{0};
};

}  // namespace dpr

#endif  // DPR_FASTER_LOG_ALLOCATOR_H_
