#include "dpr/finder.h"

#include <utility>

#include "common/clock.h"
#include "common/logging.h"

namespace dpr {

DprFinder::~DprFinder() { StopCoordinator(); }

void DprFinder::StartCoordinator(uint64_t interval_us) {
  stop_.store(false, std::memory_order_relaxed);
  coordinator_ = std::thread([this, interval_us] {
    while (!stop_.load(std::memory_order_relaxed)) {
      Status s = ComputeCut();
      if (!s.ok()) {
        DPR_WARN("coordinator ComputeCut: %s", s.ToString().c_str());
      }
      SleepMicros(interval_us);
    }
  });
}

void DprFinder::StopCoordinator() {
  stop_.store(true, std::memory_order_relaxed);
  if (coordinator_.joinable()) coordinator_.join();
}

// ------------------------------------------------------------ GraphDprFinder

GraphDprFinder::GraphDprFinder(MetadataStore* metadata, bool persist_graph)
    : metadata_(metadata), persist_graph_(persist_graph) {
  world_line_ = metadata_->GetWorldLine();
  WorldLine cut_wl;
  metadata_->GetCut(&cut_wl, &cut_);
  if (persist_graph_) {
    // Reload durably-stored graph nodes (coordinator restart).
    for (const auto& [wv, deps] : metadata_->GetGraph()) {
      graph_[wv.worker][wv.version] = deps;
    }
  }
  for (const auto& [w, v] : metadata_->GetPersistedVersions()) {
    max_reported_[w] = v;
  }
}

Status GraphDprFinder::AddWorker(WorkerId worker, Version start_version) {
  std::lock_guard<std::mutex> guard(mu_);
  DPR_RETURN_NOT_OK(metadata_->UpsertWorker(worker, start_version));
  max_reported_[worker] = start_version;
  if (cut_.find(worker) == cut_.end()) cut_[worker] = start_version;
  return Status::OK();
}

Status GraphDprFinder::RemoveWorker(WorkerId worker) {
  std::lock_guard<std::mutex> guard(mu_);
  DPR_RETURN_NOT_OK(metadata_->RemoveWorker(worker));
  max_reported_.erase(worker);
  graph_.erase(worker);
  cut_.erase(worker);
  return Status::OK();
}

Status GraphDprFinder::ReportPersistedVersion(WorldLine world_line,
                                              WorkerVersion wv,
                                              const DependencySet& deps) {
  std::lock_guard<std::mutex> guard(mu_);
  if (world_line != world_line_) {
    return Status::Aborted("report from stale world-line");
  }
  graph_[wv.worker][wv.version] = deps;
  auto& reported = max_reported_[wv.worker];
  if (wv.version > reported) reported = wv.version;
  if (persist_graph_) {
    DPR_RETURN_NOT_OK(metadata_->AddGraphNode(wv, deps));
  }
  // Rows are maintained even in pure-exact mode; they double as the
  // membership table and power MaxPersistedVersion().
  return metadata_->UpsertWorker(wv.worker, wv.version);
}

DprCut GraphDprFinder::ComputeExactCutLocked() const {
  // Maximal fixpoint: start each worker's candidate at its largest reported
  // token and shrink until every included token's dependency set is included.
  // Monotonicity (no version depends on a larger version) guarantees the
  // fixpoint exists and only shrinks, so this terminates.
  DprCut candidate;
  for (const auto& [w, floor] : cut_) candidate[w] = floor;
  for (const auto& [w, versions] : graph_) {
    if (!versions.empty()) {
      auto it = candidate.find(w);
      const Version top = versions.rbegin()->first;
      if (it == candidate.end() || it->second < top) candidate[w] = top;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [w, cand] : candidate) {
      const Version floor = CutVersion(cut_, w);
      auto git = graph_.find(w);
      Version best = floor;
      if (git != graph_.end()) {
        // Walk tokens in (floor, cand] ascending; all must validate, since a
        // later token's checkpoint physically contains earlier versions.
        for (auto it = git->second.upper_bound(floor); it != git->second.end();
             ++it) {
          if (it->first > cand) break;
          bool ok = true;
          for (const auto& [dw, dv] : it->second) {
            if (dw == w) continue;  // self-deps are implied by the chain
            if (CutVersion(candidate, dw) < dv) {
              ok = false;
              break;
            }
          }
          if (!ok) break;
          best = it->first;
        }
      }
      if (best < cand) {
        cand = best;
        changed = true;
      }
    }
  }
  return candidate;
}

Status GraphDprFinder::ComputeCut() {
  std::lock_guard<std::mutex> guard(mu_);
  if (in_recovery_) return Status::OK();
  DprCut next = ComputeExactCutLocked();
  bool advanced = false;
  for (const auto& [w, v] : next) {
    if (v > CutVersion(cut_, w)) {
      advanced = true;
      break;
    }
  }
  if (!advanced) return Status::OK();
  DPR_RETURN_NOT_OK(metadata_->SetCut(world_line_, next));
  cut_ = std::move(next);
  if (persist_graph_) {
    DPR_RETURN_NOT_OK(metadata_->PruneGraph(cut_));
  }
  // Committed graph nodes can be garbage-collected from memory.
  for (auto& [w, versions] : graph_) {
    const Version cv = CutVersion(cut_, w);
    // Keep the node at the cut itself: it is the worker's restore point.
    versions.erase(versions.begin(), versions.lower_bound(cv));
  }
  return Status::OK();
}

void GraphDprFinder::GetCut(WorldLine* world_line, DprCut* cut) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (world_line != nullptr) *world_line = world_line_;
  if (cut != nullptr) *cut = cut_;
}

Version GraphDprFinder::MaxPersistedVersion() const {
  std::lock_guard<std::mutex> guard(mu_);
  Version max = kInvalidVersion;
  for (const auto& [w, v] : max_reported_) {
    (void)w;
    if (v > max) max = v;
  }
  return max;
}

WorldLine GraphDprFinder::CurrentWorldLine() const {
  std::lock_guard<std::mutex> guard(mu_);
  return world_line_;
}

Status GraphDprFinder::BeginRecovery(WorldLine* new_world_line, DprCut* cut) {
  std::lock_guard<std::mutex> guard(mu_);
  in_recovery_ = true;
  world_line_ += 1;
  DPR_RETURN_NOT_OK(metadata_->SetWorldLine(world_line_));
  // The committed cut is the recovery target; everything reported above it
  // is lost to the rollback.
  for (auto& [w, versions] : graph_) {
    const Version cv = CutVersion(cut_, w);
    versions.erase(versions.upper_bound(cv), versions.end());
  }
  for (auto& [w, v] : max_reported_) {
    const Version cv = CutVersion(cut_, w);
    if (v > cv) {
      v = cv;
      DPR_RETURN_NOT_OK(metadata_->UpsertWorker(w, cv));
    }
  }
  // Re-persist the cut under the new world-line so a finder restart recovers
  // into the post-failure world.
  DPR_RETURN_NOT_OK(metadata_->SetCut(world_line_, cut_));
  if (new_world_line != nullptr) *new_world_line = world_line_;
  if (cut != nullptr) *cut = cut_;
  return Status::OK();
}

Status GraphDprFinder::EndRecovery() {
  std::lock_guard<std::mutex> guard(mu_);
  in_recovery_ = false;
  return Status::OK();
}

void GraphDprFinder::SimulateCoordinatorCrash() {
  std::lock_guard<std::mutex> guard(mu_);
  graph_.clear();
  if (persist_graph_) {
    // Pure exact mode keeps the graph durable; a restarted coordinator
    // reloads it and loses nothing.
    for (const auto& [wv, deps] : metadata_->GetGraph()) {
      graph_[wv.worker][wv.version] = deps;
    }
  }
  // With persist_graph=false (hybrid), dependency info above the cut is now
  // unknown; ComputeExactCutLocked cannot advance past it until the
  // approximate fallback does.
}

// ----------------------------------------------------------- SimpleDprFinder

SimpleDprFinder::SimpleDprFinder(MetadataStore* metadata)
    : metadata_(metadata) {
  world_line_ = metadata_->GetWorldLine();
  WorldLine cut_wl;
  metadata_->GetCut(&cut_wl, &cut_);
}

Status SimpleDprFinder::AddWorker(WorkerId worker, Version start_version) {
  std::lock_guard<std::mutex> guard(mu_);
  DPR_RETURN_NOT_OK(metadata_->UpsertWorker(worker, start_version));
  if (cut_.find(worker) == cut_.end()) cut_[worker] = start_version;
  return Status::OK();
}

Status SimpleDprFinder::RemoveWorker(WorkerId worker) {
  std::lock_guard<std::mutex> guard(mu_);
  DPR_RETURN_NOT_OK(metadata_->RemoveWorker(worker));
  cut_.erase(worker);
  return Status::OK();
}

Status SimpleDprFinder::ReportPersistedVersion(WorldLine world_line,
                                               WorkerVersion wv,
                                               const DependencySet& /*deps*/) {
  std::lock_guard<std::mutex> guard(mu_);
  if (world_line != world_line_) {
    return Status::Aborted("report from stale world-line");
  }
  return metadata_->UpsertWorker(wv.worker, wv.version);
}

Status SimpleDprFinder::ComputeCut() {
  std::lock_guard<std::mutex> guard(mu_);
  if (in_recovery_) return Status::OK();
  // SELECT min(persistedVersion) FROM dpr: by monotonicity no version can
  // depend on a larger version, so every worker's prefix through Vmin is a
  // closed set (paper §3.4).
  const Version vmin = metadata_->MinPersistedVersion();
  if (vmin == kInvalidVersion) return Status::OK();
  DprCut next = cut_;
  bool advanced = false;
  for (const auto& [w, v] : metadata_->GetPersistedVersions()) {
    (void)v;
    Version& entry = next[w];
    if (vmin > entry) {
      entry = vmin;
      advanced = true;
    }
  }
  if (!advanced) return Status::OK();
  DPR_RETURN_NOT_OK(metadata_->SetCut(world_line_, next));
  cut_ = std::move(next);
  return Status::OK();
}

void SimpleDprFinder::GetCut(WorldLine* world_line, DprCut* cut) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (world_line != nullptr) *world_line = world_line_;
  if (cut != nullptr) *cut = cut_;
}

Version SimpleDprFinder::MaxPersistedVersion() const {
  return metadata_->MaxPersistedVersion();
}

WorldLine SimpleDprFinder::CurrentWorldLine() const {
  std::lock_guard<std::mutex> guard(mu_);
  return world_line_;
}

Status SimpleDprFinder::BeginRecovery(WorldLine* new_world_line, DprCut* cut) {
  std::lock_guard<std::mutex> guard(mu_);
  in_recovery_ = true;
  world_line_ += 1;
  DPR_RETURN_NOT_OK(metadata_->SetWorldLine(world_line_));
  for (const auto& [w, v] : metadata_->GetPersistedVersions()) {
    const Version cv = CutVersion(cut_, w);
    if (v > cv) {
      DPR_RETURN_NOT_OK(metadata_->UpsertWorker(w, cv));
    }
  }
  DPR_RETURN_NOT_OK(metadata_->SetCut(world_line_, cut_));
  if (new_world_line != nullptr) *new_world_line = world_line_;
  if (cut != nullptr) *cut = cut_;
  return Status::OK();
}

Status SimpleDprFinder::EndRecovery() {
  std::lock_guard<std::mutex> guard(mu_);
  in_recovery_ = false;
  return Status::OK();
}

// ----------------------------------------------------------- HybridDprFinder

Status HybridDprFinder::ReportPersistedVersion(WorldLine world_line,
                                               WorkerVersion wv,
                                               const DependencySet& deps) {
  // Base class keeps the graph in memory (persist_graph=false) and durably
  // upserts the approximate row — exactly the hybrid split.
  return GraphDprFinder::ReportPersistedVersion(world_line, wv, deps);
}

Status HybridDprFinder::ComputeCut() {
  std::lock_guard<std::mutex> guard(mu_);
  if (in_recovery_) return Status::OK();
  DprCut exact = ComputeExactCutLocked();
  // Approximate fallback: Vmin across durable rows. The union of two closed
  // token sets is closed, so the element-wise max of the exact and
  // approximate cuts is itself a valid cut.
  const Version vmin = metadata_->MinPersistedVersion();
  DprCut next = cut_;
  bool advanced = false;
  for (auto& [w, v] : next) {
    Version target = CutVersion(exact, w);
    if (vmin != kInvalidVersion && vmin > target) target = vmin;
    if (target > v) {
      v = target;
      advanced = true;
    }
  }
  if (!advanced) return Status::OK();
  DPR_RETURN_NOT_OK(metadata_->SetCut(world_line_, next));
  cut_ = std::move(next);
  for (auto& [w, versions] : graph_) {
    const Version cv = CutVersion(cut_, w);
    versions.erase(versions.begin(), versions.lower_bound(cv));
  }
  return Status::OK();
}

}  // namespace dpr
