#include "dpr/finder.h"

#include <utility>

#include "common/logging.h"

namespace dpr {

// ------------------------------------------------------------ GraphDprFinder

GraphDprFinder::GraphDprFinder(MetadataStore* metadata, bool persist_graph)
    : FinderCore(metadata, /*stage_reports=*/true),
      persist_graph_(persist_graph) {
  if (persist_graph_) {
    // Reload durably-stored graph nodes (coordinator restart).
    for (const auto& [wv, deps] : metadata_->GetGraph()) {
      graph_[wv.worker][wv.version] = deps;
    }
  }
  for (const auto& [w, v] : metadata_->GetPersistedVersions()) {
    max_reported_[w] = v;
  }
}

Status GraphDprFinder::PersistReportDurable(const WorkerVersion& wv,
                                            const DependencySet& deps) {
  if (persist_graph_) {
    DPR_RETURN_NOT_OK(metadata_->AddGraphNode(wv, deps));
  }
  // Rows are maintained even in pure-exact mode; they double as the
  // membership table and power MaxPersistedVersion().
  return metadata_->UpsertWorker(wv.worker, wv.version);
}

void GraphDprFinder::ApplyReportLocked(StagedReport&& report) {
  auto& reported = max_reported_[report.wv.worker];
  if (report.wv.version > reported) reported = report.wv.version;
  graph_[report.wv.worker][report.wv.version] = std::move(report.deps);
}

DprCut GraphDprFinder::ComputeExactCutLocked() const {
  // Maximal fixpoint: start each worker's candidate at its largest reported
  // token and shrink until every included token's dependency set is included.
  // Monotonicity (no version depends on a larger version) guarantees the
  // fixpoint exists and only shrinks, so this terminates.
  DprCut candidate;
  for (const auto& [w, floor] : cut_) candidate[w] = floor;
  for (const auto& [w, versions] : graph_) {
    if (!versions.empty()) {
      auto it = candidate.find(w);
      const Version top = versions.rbegin()->first;
      if (it == candidate.end() || it->second < top) candidate[w] = top;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [w, cand] : candidate) {
      const Version floor = CutVersion(cut_, w);
      auto git = graph_.find(w);
      Version best = floor;
      if (git != graph_.end()) {
        // Walk tokens in (floor, cand] ascending; all must validate, since a
        // later token's checkpoint physically contains earlier versions.
        for (auto it = git->second.upper_bound(floor); it != git->second.end();
             ++it) {
          if (it->first > cand) break;
          bool ok = true;
          for (const auto& [dw, dv] : it->second) {
            if (dw == w) continue;  // self-deps are implied by the chain
            if (CutVersion(candidate, dw) < dv) {
              ok = false;
              break;
            }
          }
          if (!ok) break;
          best = it->first;
        }
      }
      if (best < cand) {
        cand = best;
        changed = true;
      }
    }
  }
  return candidate;
}

Status GraphDprFinder::ComputeCandidateLocked(DprCut* next) {
  *next = ComputeExactCutLocked();
  return Status::OK();
}

Status GraphDprFinder::OnCutAdvancedLocked() {
  if (persist_graph_) {
    DPR_RETURN_NOT_OK(metadata_->PruneGraph(cut_));
  }
  // Committed graph nodes can be garbage-collected from memory.
  for (auto& [w, versions] : graph_) {
    const Version cv = CutVersion(cut_, w);
    // Keep the node at the cut itself: it is the worker's restore point.
    versions.erase(versions.begin(), versions.lower_bound(cv));
  }
  return Status::OK();
}

void GraphDprFinder::OnWorkerAddedLocked(WorkerId worker,
                                         Version start_version) {
  max_reported_[worker] = start_version;
}

void GraphDprFinder::OnWorkerRemovedLocked(WorkerId worker) {
  max_reported_.erase(worker);
  graph_.erase(worker);
}

Status GraphDprFinder::OnBeginRecoveryLocked() {
  // Reported state above the frozen cut is lost to the rollback.
  for (auto& [w, versions] : graph_) {
    const Version cv = CutVersion(cut_, w);
    versions.erase(versions.upper_bound(cv), versions.end());
  }
  for (auto& [w, v] : max_reported_) {
    const Version cv = CutVersion(cut_, w);
    if (v > cv) v = cv;
  }
  return Status::OK();
}

void GraphDprFinder::SimulateCoordinatorCrash() {
  std::lock_guard<std::mutex> guard(mu_);
  DiscardStagedLocked();
  graph_.clear();
  if (persist_graph_) {
    // Pure exact mode keeps the graph durable; a restarted coordinator
    // reloads it and loses nothing.
    for (const auto& [wv, deps] : metadata_->GetGraph()) {
      graph_[wv.worker][wv.version] = deps;
    }
  }
  // With persist_graph=false (hybrid), dependency info above the cut is now
  // unknown; ComputeExactCutLocked cannot advance past it until the
  // approximate fallback does.
}

// ----------------------------------------------------------- SimpleDprFinder

SimpleDprFinder::SimpleDprFinder(MetadataStore* metadata)
    : FinderCore(metadata, /*stage_reports=*/false) {}

Status SimpleDprFinder::PersistReportDurable(const WorkerVersion& wv,
                                             const DependencySet& /*deps*/) {
  return metadata_->UpsertWorker(wv.worker, wv.version);
}

Status SimpleDprFinder::ComputeCandidateLocked(DprCut* next) {
  // SELECT min(persistedVersion) FROM dpr: by monotonicity no version can
  // depend on a larger version, so every worker's prefix through Vmin is a
  // closed set (paper §3.4).
  *next = cut_;
  const Version vmin = metadata_->MinPersistedVersion();
  if (vmin == kInvalidVersion) return Status::OK();
  for (const auto& [w, v] : metadata_->GetPersistedVersions()) {
    (void)v;
    Version& entry = (*next)[w];
    if (vmin > entry) entry = vmin;
  }
  return Status::OK();
}

// ----------------------------------------------------------- HybridDprFinder

Status HybridDprFinder::ComputeCandidateLocked(DprCut* next) {
  DprCut exact = ComputeExactCutLocked();
  // Approximate fallback: Vmin across durable rows. The union of two closed
  // token sets is closed, so the element-wise max of the exact and
  // approximate cuts is itself a valid cut.
  const Version vmin = metadata_->MinPersistedVersion();
  *next = cut_;
  for (auto& [w, v] : *next) {
    Version target = CutVersion(exact, w);
    if (vmin != kInvalidVersion && vmin > target) target = vmin;
    if (target > v) v = target;
  }
  return Status::OK();
}

}  // namespace dpr
