#include "dpr/finder.h"

#include <utility>

#include "common/logging.h"

namespace dpr {

// ------------------------------------------------------------ GraphDprFinder

GraphDprFinder::GraphDprFinder(MetadataStore* metadata, bool persist_graph,
                               bool serve_vmax)
    : FinderCore(metadata, /*stage_reports=*/true, serve_vmax),
      persist_graph_(persist_graph) {
  if (persist_graph_) {
    // Reload durably-stored graph nodes (coordinator restart).
    for (const auto& [wv, deps] : metadata_->GetGraph()) {
      graph_[wv.worker][wv.version] = deps;
    }
  }
  for (const auto& [w, v] : metadata_->GetPersistedVersions()) {
    max_reported_[w] = v;
  }
}

Status GraphDprFinder::PersistReportDurable(const WorkerVersion& wv,
                                            const DependencySet& deps) {
  if (persist_graph_) {
    DPR_RETURN_NOT_OK(metadata_->AddGraphNode(wv, deps));
  }
  // Rows are maintained even in pure-exact mode; they double as the
  // membership table and power MaxPersistedVersion().
  return metadata_->UpsertWorker(wv.worker, wv.version);
}

void GraphDprFinder::ApplyReportLocked(StagedReport&& report) {
  auto& reported = max_reported_[report.wv.worker];
  if (report.wv.version > reported) reported = report.wv.version;
  graph_[report.wv.worker][report.wv.version] = std::move(report.deps);
}

DprCut GraphDprFinder::ComputeExactCutLocked() const {
  // Maximal fixpoint: start each worker's candidate at its largest reported
  // token and shrink until every included token's dependency set is included.
  // Monotonicity (no version depends on a larger version) guarantees the
  // fixpoint exists and only shrinks, so this terminates.
  DprCut candidate;
  for (const auto& [w, floor] : cut_) candidate[w] = floor;
  for (const auto& [w, versions] : graph_) {
    if (!versions.empty()) {
      auto it = candidate.find(w);
      const Version top = versions.rbegin()->first;
      if (it == candidate.end() || it->second < top) candidate[w] = top;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [w, cand] : candidate) {
      const Version floor = CutVersion(cut_, w);
      auto git = graph_.find(w);
      Version best = floor;
      const auto bit = blind_until_.find(w);
      const bool blind = bit != blind_until_.end() && bit->second > floor;
      if (git != graph_.end() && !blind) {
        // Walk tokens in (floor, cand] ascending; all must validate, since a
        // later token's checkpoint physically contains earlier versions.
        // A blind region ((floor, blind_until]: dependency sets lost in a
        // coordinator crash) pins the walk at the floor — a post-crash node
        // above the region would implicitly include the unknown tokens.
        for (auto it = git->second.upper_bound(floor); it != git->second.end();
             ++it) {
          if (it->first > cand) break;
          bool ok = true;
          for (const auto& [dw, dv] : it->second) {
            if (dw == w) continue;  // self-deps are implied by the chain
            if (CutVersion(candidate, dw) < dv) {
              ok = false;
              break;
            }
          }
          if (!ok) break;
          best = it->first;
        }
      }
      if (best < cand) {
        cand = best;
        changed = true;
      }
    }
  }
  return candidate;
}

Status GraphDprFinder::ComputeCandidateLocked(DprCut* next) {
  *next = ComputeExactCutLocked();
  return Status::OK();
}

Status GraphDprFinder::OnCutAdvancedLocked() {
  if (persist_graph_) {
    DPR_RETURN_NOT_OK(metadata_->PruneGraph(cut_));
  }
  // Committed graph nodes can be garbage-collected from memory.
  for (auto& [w, versions] : graph_) {
    const Version cv = CutVersion(cut_, w);
    // Keep the node at the cut itself: it is the worker's restore point.
    versions.erase(versions.begin(), versions.lower_bound(cv));
  }
  // The approximate fallback caught up past a blind region: exact precision
  // resumes from the new floor.
  for (auto it = blind_until_.begin(); it != blind_until_.end();) {
    if (CutVersion(cut_, it->first) >= it->second) {
      it = blind_until_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

void GraphDprFinder::OnWorkerAddedLocked(WorkerId worker,
                                         Version start_version) {
  max_reported_[worker] = start_version;
}

void GraphDprFinder::OnWorkerRemovedLocked(WorkerId worker) {
  max_reported_.erase(worker);
  graph_.erase(worker);
  blind_until_.erase(worker);
}

Status GraphDprFinder::OnBeginRecoveryLocked() {
  // Reported state above the frozen cut is lost to the rollback.
  for (auto& [w, versions] : graph_) {
    const Version cv = CutVersion(cut_, w);
    versions.erase(versions.upper_bound(cv), versions.end());
  }
  for (auto& [w, v] : max_reported_) {
    const Version cv = CutVersion(cut_, w);
    if (v > cv) v = cv;
  }
  // The rollback erases every reported-but-uncommitted version, blind ones
  // included: the regions dissolve with the state they described.
  blind_until_.clear();
  return Status::OK();
}

void GraphDprFinder::SimulateCoordinatorCrash() {
  MutexLock guard(mu_);
  DiscardStagedLocked();
  graph_.clear();
  if (persist_graph_) {
    // Pure exact mode keeps the graph durable; a restarted coordinator
    // reloads it and loses nothing.
    for (const auto& [wv, deps] : metadata_->GetGraph()) {
      graph_[wv.worker][wv.version] = deps;
    }
  } else {
    // Hybrid: dependency info for every reported-but-uncommitted version is
    // gone. Mark the blind region per worker so ComputeExactCutLocked stalls
    // at the cut until the approximate fallback carries it past. The durable
    // rows — not max_reported_, which lags until drain time — are the
    // crash-surviving record of what was reported: a report staged but not
    // yet drained has already bumped its row.
    for (const auto& [w, v] : metadata_->GetPersistedVersions()) {
      const Version cv = CutVersion(cut_, w);
      if (v > cv) {
        Version& blind = blind_until_[w];
        if (v > blind) blind = v;
      }
    }
  }
}

// ----------------------------------------------------------- SimpleDprFinder

SimpleDprFinder::SimpleDprFinder(MetadataStore* metadata, bool serve_vmax)
    : FinderCore(metadata, /*stage_reports=*/false, serve_vmax) {}

Status SimpleDprFinder::PersistReportDurable(const WorkerVersion& wv,
                                             const DependencySet& /*deps*/) {
  return metadata_->UpsertWorker(wv.worker, wv.version);
}

Status SimpleDprFinder::ComputeCandidateLocked(DprCut* next) {
  // SELECT min(persistedVersion) FROM dpr: by monotonicity no version can
  // depend on a larger version, so every worker's prefix through Vmin is a
  // closed set (paper §3.4).
  *next = cut_;
  const Version vmin = metadata_->MinPersistedVersion();
  if (vmin == kInvalidVersion) return Status::OK();
  for (const auto& [w, v] : metadata_->GetPersistedVersions()) {
    (void)v;
    Version& entry = (*next)[w];
    if (vmin > entry) entry = vmin;
  }
  return Status::OK();
}

// ----------------------------------------------------------- HybridDprFinder

Status HybridDprFinder::ComputeCandidateLocked(DprCut* next) {
  DprCut exact = ComputeExactCutLocked();
  // Approximate fallback: Vmin across durable rows. The union of two closed
  // token sets is closed, so the element-wise max of the exact and
  // approximate cuts is itself a valid cut.
  const Version vmin = metadata_->MinPersistedVersion();
  *next = cut_;
  for (auto& [w, v] : *next) {
    Version target = CutVersion(exact, w);
    if (vmin != kInvalidVersion && vmin > target) target = vmin;
    if (target > v) v = target;
  }
  return Status::OK();
}

// -------------------------------------------------------------------- factory

std::unique_ptr<DprFinder> MakeDprFinder(const FinderOptions& options) {
  DPR_CHECK_MSG(options.metadata != nullptr,
                "FinderOptions::metadata is required");
  switch (options.kind) {
    case FinderKind::kExact:
      return std::unique_ptr<DprFinder>(new GraphDprFinder(
          options.metadata, /*persist_graph=*/true, options.vmax_fastforward));
    case FinderKind::kApprox:
      return std::unique_ptr<DprFinder>(
          new SimpleDprFinder(options.metadata, options.vmax_fastforward));
    case FinderKind::kHybrid:
      return std::unique_ptr<DprFinder>(
          new HybridDprFinder(options.metadata, options.vmax_fastforward));
  }
  return nullptr;
}

}  // namespace dpr
