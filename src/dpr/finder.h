#ifndef DPR_DPR_FINDER_H_
#define DPR_DPR_FINDER_H_

#include <map>
#include <memory>

#include "common/status.h"
#include "dpr/finder_core.h"
#include "dpr/types.h"
#include "metadata/metadata_store.h"

namespace dpr {

/// Concrete DPR finders (paper §3.3–3.4, Fig. 4), all built on the shared
/// FinderCore state machine (world-line, recovery, cut, ingest/compute
/// split — see finder_core.h). Implementations differ in what they persist:
///
///  * GraphDprFinder  — exact: durably stores the precedence graph, computes
///    the maximal transitive closure of durable versions;
///  * SimpleDprFinder — approximate: stores only per-worker persisted version
///    numbers; the cut is min(persistedVersion), with Vmax fast-forward to
///    bound the skew a lagging worker causes;
///  * HybridDprFinder — exact cut from an in-memory graph (cheap), with the
///    approximate algorithm running durably underneath as the fault-tolerant
///    fallback after a coordinator crash.

/// Exact algorithm (Fig. 4 top). `persist_graph` controls whether graph nodes
/// are durably written to the metadata store (true for the pure exact
/// algorithm; the hybrid keeps the graph in memory only).
class GraphDprFinder : public FinderCore {
 public:
  explicit GraphDprFinder(MetadataStore* metadata, bool persist_graph = true);

  /// Simulates losing the coordinator process: the in-memory precedence
  /// graph (and any staged-but-unapplied reports) is discarded; durably
  /// persisted rows survive. With persist_graph=false this stalls exact
  /// progress until the approximate fallback (hybrid) catches up past the
  /// lost subgraph.
  void SimulateCoordinatorCrash();

 protected:
  Status PersistReportDurable(const WorkerVersion& wv,
                              const DependencySet& deps) override;
  void ApplyReportLocked(StagedReport&& report) override;
  Status ComputeCandidateLocked(DprCut* next) override;
  Status OnCutAdvancedLocked() override;
  void OnWorkerAddedLocked(WorkerId worker, Version start_version) override;
  void OnWorkerRemovedLocked(WorkerId worker) override;
  Status OnBeginRecoveryLocked() override;

  /// Computes the maximal closed cut from the in-memory graph; no I/O.
  DprCut ComputeExactCutLocked() const;

  const bool persist_graph_;
  // Per worker: persisted versions (sorted) with their dependency sets.
  // Guarded by FinderCore::mu_.
  std::map<WorkerId, std::map<Version, DependencySet>> graph_;
  // Largest version each worker has reported (guarded by mu_; applied at
  // drain time). After a coordinator crash, versions in here without graph
  // nodes have unknown dependency sets, so exact computation cannot advance
  // past them.
  std::map<WorkerId, Version> max_reported_;
};

/// Approximate algorithm (Fig. 4 bottom).
class SimpleDprFinder : public FinderCore {
 public:
  explicit SimpleDprFinder(MetadataStore* metadata);

 protected:
  Status PersistReportDurable(const WorkerVersion& wv,
                              const DependencySet& deps) override;
  Status ComputeCandidateLocked(DprCut* next) override;
};

/// Hybrid (§3.4): exact cut from an in-memory graph, approximate rows
/// persisted underneath. After SimulateCoordinatorCrash() the exact side is
/// blind to the lost subgraph, but the cut still advances at the approximate
/// algorithm's pace, and exact precision resumes past the lost region.
class HybridDprFinder : public GraphDprFinder {
 public:
  explicit HybridDprFinder(MetadataStore* metadata)
      : GraphDprFinder(metadata, /*persist_graph=*/false) {}

 protected:
  Status ComputeCandidateLocked(DprCut* next) override;
};

}  // namespace dpr

#endif  // DPR_DPR_FINDER_H_
