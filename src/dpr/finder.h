#ifndef DPR_DPR_FINDER_H_
#define DPR_DPR_FINDER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "dpr/types.h"
#include "metadata/metadata_store.h"

namespace dpr {

/// The DPR-tracking service (paper §3.3–3.4, Fig. 4): workers report
/// persisted versions (with their cross-worker dependency sets), and the
/// finder computes ever-advancing DPR cuts that it persists in the metadata
/// store. Implementations differ in what they persist:
///
///  * GraphDprFinder  — exact: durably stores the precedence graph, computes
///    the maximal transitive closure of durable versions;
///  * SimpleDprFinder — approximate: stores only per-worker persisted version
///    numbers; the cut is min(persistedVersion), with Vmax fast-forward to
///    bound the skew a lagging worker causes;
///  * HybridDprFinder — exact cut from an in-memory graph (cheap), with the
///    approximate algorithm running durably underneath as the fault-tolerant
///    fallback after a coordinator crash.
///
/// All implementations are thread-safe. Cut computation can run inline via
/// ComputeCut() (tests) or on the background coordinator thread
/// (StartCoordinator).
class DprFinder {
 public:
  virtual ~DprFinder();

  /// Registers a worker (joins the cluster at version `start_version`).
  virtual Status AddWorker(WorkerId worker, Version start_version = 0) = 0;
  /// Removes an (empty) worker from the cluster.
  virtual Status RemoveWorker(WorkerId worker) = 0;

  /// Reports that `wv.worker` made `wv.version` durable; `deps` holds, for
  /// each other worker this version's operations depend on, the largest
  /// version number depended upon.
  virtual Status ReportPersistedVersion(WorldLine world_line, WorkerVersion wv,
                                        const DependencySet& deps) = 0;

  /// Runs one round of cut computation and persists any advance.
  virtual Status ComputeCut() = 0;

  /// Latest committed cut and its world-line.
  virtual void GetCut(WorldLine* world_line, DprCut* cut) const = 0;

  /// Largest persisted version across all workers (Vmax, §3.4); workers
  /// fast-forward their next checkpoint to at least this.
  virtual Version MaxPersistedVersion() const = 0;

  /// Current world-line (advanced by BeginRecovery).
  virtual WorldLine CurrentWorldLine() const = 0;

  /// Failure handling: advances the world-line, freezes the cut as the
  /// recovery target, and discards reported state above it. Returns the cut
  /// every surviving worker must roll back to. Progress is halted until
  /// EndRecovery() is called (paper §4.1).
  virtual Status BeginRecovery(WorldLine* new_world_line,
                               DprCut* recovery_cut) = 0;
  virtual Status EndRecovery() = 0;

  /// Convenience: committed version of one worker in the latest cut.
  Version SafeVersion(WorkerId worker) const {
    WorldLine wl;
    DprCut cut;
    GetCut(&wl, &cut);
    return CutVersion(cut, worker);
  }

  /// Runs ComputeCut() every `interval_us` on a background thread.
  void StartCoordinator(uint64_t interval_us);
  void StopCoordinator();

 private:
  std::thread coordinator_;
  std::atomic<bool> stop_{false};
};

/// Exact algorithm (Fig. 4 top). `persist_graph` controls whether graph nodes
/// are durably written to the metadata store (true for the pure exact
/// algorithm; the hybrid keeps the graph in memory only).
class GraphDprFinder : public DprFinder {
 public:
  explicit GraphDprFinder(MetadataStore* metadata, bool persist_graph = true);

  Status AddWorker(WorkerId worker, Version start_version) override;
  Status RemoveWorker(WorkerId worker) override;
  Status ReportPersistedVersion(WorldLine world_line, WorkerVersion wv,
                                const DependencySet& deps) override;
  Status ComputeCut() override;
  void GetCut(WorldLine* world_line, DprCut* cut) const override;
  Version MaxPersistedVersion() const override;
  WorldLine CurrentWorldLine() const override;
  Status BeginRecovery(WorldLine* new_world_line, DprCut* cut) override;
  Status EndRecovery() override;

  /// Simulates losing the coordinator process: the in-memory precedence
  /// graph is discarded (durably persisted rows survive). With
  /// persist_graph=false this stalls exact progress until the approximate
  /// fallback (hybrid) catches up past the lost subgraph.
  void SimulateCoordinatorCrash();

 protected:
  /// Computes the maximal closed cut from the in-memory graph; no I/O.
  DprCut ComputeExactCutLocked() const;

  MetadataStore* metadata_;
  const bool persist_graph_;

  mutable std::mutex mu_;
  // Per worker: persisted versions (sorted) with their dependency sets.
  std::map<WorkerId, std::map<Version, DependencySet>> graph_;
  // Versions reported while the in-memory graph was lost; their dependency
  // sets are unknown, so exact computation cannot advance past them.
  std::map<WorkerId, Version> max_reported_;
  DprCut cut_;
  WorldLine world_line_ = kInitialWorldLine;
  bool in_recovery_ = false;
};

/// Approximate algorithm (Fig. 4 bottom).
class SimpleDprFinder : public DprFinder {
 public:
  explicit SimpleDprFinder(MetadataStore* metadata);

  Status AddWorker(WorkerId worker, Version start_version) override;
  Status RemoveWorker(WorkerId worker) override;
  Status ReportPersistedVersion(WorldLine world_line, WorkerVersion wv,
                                const DependencySet& deps) override;
  Status ComputeCut() override;
  void GetCut(WorldLine* world_line, DprCut* cut) const override;
  Version MaxPersistedVersion() const override;
  WorldLine CurrentWorldLine() const override;
  Status BeginRecovery(WorldLine* new_world_line, DprCut* cut) override;
  Status EndRecovery() override;

 private:
  MetadataStore* metadata_;
  mutable std::mutex mu_;
  DprCut cut_;
  WorldLine world_line_ = kInitialWorldLine;
  bool in_recovery_ = false;
};

/// Hybrid (§3.4): exact cut from an in-memory graph, approximate rows
/// persisted underneath. After SimulateCoordinatorCrash() the exact side is
/// blind to the lost subgraph, but the cut still advances at the approximate
/// algorithm's pace, and exact precision resumes past the lost region.
class HybridDprFinder : public GraphDprFinder {
 public:
  explicit HybridDprFinder(MetadataStore* metadata)
      : GraphDprFinder(metadata, /*persist_graph=*/false) {}

  Status ReportPersistedVersion(WorldLine world_line, WorkerVersion wv,
                                const DependencySet& deps) override;
  Status ComputeCut() override;
};

}  // namespace dpr

#endif  // DPR_DPR_FINDER_H_
