#ifndef DPR_DPR_FINDER_H_
#define DPR_DPR_FINDER_H_

#include <map>
#include <memory>

#include "common/status.h"
#include "dpr/finder_core.h"
#include "dpr/types.h"
#include "metadata/metadata_store.h"

namespace dpr {

/// Concrete DPR finders (paper §3.3–3.4, Fig. 4), all built on the shared
/// FinderCore state machine (world-line, recovery, cut, ingest/compute
/// split — see finder_core.h). Implementations differ in what they persist:
///
///  * kExact  (GraphDprFinder)  — durably stores the precedence graph,
///    computes the maximal transitive closure of durable versions;
///  * kApprox (SimpleDprFinder) — stores only per-worker persisted version
///    numbers; the cut is min(persistedVersion), with Vmax fast-forward to
///    bound the skew a lagging worker causes;
///  * kHybrid (HybridDprFinder) — exact cut from an in-memory graph (cheap),
///    with the approximate algorithm running durably underneath as the
///    fault-tolerant fallback after a coordinator crash.
///
/// Construction goes through MakeDprFinder(FinderOptions); the concrete
/// classes are not constructible directly.
enum class FinderKind {
  kExact,
  kApprox,
  kHybrid,
};

struct FinderOptions {
  FinderKind kind = FinderKind::kApprox;
  /// Durable store for cuts, world-lines, rows, and (kExact) graph nodes.
  /// Required; must outlive the finder.
  MetadataStore* metadata = nullptr;
  /// Serve Vmax to workers so their next checkpoint fast-forwards past the
  /// cluster's largest persisted version (§3.4). Disable for the ablation
  /// that measures approximate-cut skew without fast-forward.
  bool vmax_fastforward = true;
};

/// Factory for all local finder algorithms. Dies (DPR_CHECK) on a null
/// metadata store — every algorithm needs the durable table.
std::unique_ptr<DprFinder> MakeDprFinder(const FinderOptions& options);

/// Exact algorithm (Fig. 4 top). `persist_graph` controls whether graph nodes
/// are durably written to the metadata store (true for the pure exact
/// algorithm; the hybrid keeps the graph in memory only).
class GraphDprFinder : public FinderCore {
 public:
  /// Simulates losing the coordinator process: the in-memory precedence
  /// graph (and any staged-but-unapplied reports) is discarded; durably
  /// persisted rows survive. With persist_graph=false this stalls exact
  /// progress until the approximate fallback (hybrid) catches up past the
  /// lost subgraph.
  void SimulateCoordinatorCrash() override;

 protected:
  friend std::unique_ptr<DprFinder> MakeDprFinder(const FinderOptions&);

  GraphDprFinder(MetadataStore* metadata, bool persist_graph,
                 bool serve_vmax);

  Status PersistReportDurable(const WorkerVersion& wv,
                              const DependencySet& deps) override;
  void ApplyReportLocked(StagedReport&& report) override REQUIRES(mu_);
  Status ComputeCandidateLocked(DprCut* next) override REQUIRES(mu_);
  Status OnCutAdvancedLocked() override REQUIRES(mu_);
  void OnWorkerAddedLocked(WorkerId worker, Version start_version) override
      REQUIRES(mu_);
  void OnWorkerRemovedLocked(WorkerId worker) override REQUIRES(mu_);
  Status OnBeginRecoveryLocked() override REQUIRES(mu_);

  /// Computes the maximal closed cut from the in-memory graph; no I/O.
  DprCut ComputeExactCutLocked() const REQUIRES(mu_);

  const bool persist_graph_;
  // Per worker: persisted versions (sorted) with their dependency sets.
  std::map<WorkerId, std::map<Version, DependencySet>> graph_
      GUARDED_BY(mu_);
  // Largest version each worker has reported (applied at drain time). After
  // a coordinator crash, versions in here without graph nodes have unknown
  // dependency sets, so exact computation cannot advance past them.
  std::map<WorkerId, Version> max_reported_ GUARDED_BY(mu_);
  // With persist_graph=false, a coordinator crash loses the dependency sets
  // of every reported-but-uncommitted version: tokens in
  // (cut, blind_until_[w]] are blind. The exact walk must not cross a blind
  // region — later (post-crash) nodes would validate while silently
  // including the unknown-dep tokens beneath them. The region dissolves
  // once the approximate fallback raises the cut past it.
  std::map<WorkerId, Version> blind_until_ GUARDED_BY(mu_);
};

/// Approximate algorithm (Fig. 4 bottom).
class SimpleDprFinder : public FinderCore {
 protected:
  friend std::unique_ptr<DprFinder> MakeDprFinder(const FinderOptions&);

  SimpleDprFinder(MetadataStore* metadata, bool serve_vmax);

  Status PersistReportDurable(const WorkerVersion& wv,
                              const DependencySet& deps) override;
  Status ComputeCandidateLocked(DprCut* next) override REQUIRES(mu_);
};

/// Hybrid (§3.4): exact cut from an in-memory graph, approximate rows
/// persisted underneath. After SimulateCoordinatorCrash() the exact side is
/// blind to the lost subgraph, but the cut still advances at the approximate
/// algorithm's pace, and exact precision resumes past the lost region.
class HybridDprFinder : public GraphDprFinder {
 protected:
  friend std::unique_ptr<DprFinder> MakeDprFinder(const FinderOptions&);

  HybridDprFinder(MetadataStore* metadata, bool serve_vmax)
      : GraphDprFinder(metadata, /*persist_graph=*/false, serve_vmax) {}

  Status ComputeCandidateLocked(DprCut* next) override REQUIRES(mu_);
};

}  // namespace dpr

#endif  // DPR_DPR_FINDER_H_
