#include "dpr/session.h"

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

// Registered once, then every record is a relaxed atomic op — GetCommitPoint
// and the admission paths stay mutex-free on the metrics side.
struct SessionMetrics {
  ShardedHistogram* op_commit_us;
  ShardedHistogram* surviving_prefix;
  Gauge* exception_list;
  Counter* ops_committed;
  Counter* failures;
};

const SessionMetrics& Metrics() {
  static const SessionMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return SessionMetrics{r.histogram("dpr.session.op_commit_us"),
                          r.histogram("dpr.session.surviving_prefix"),
                          r.gauge("dpr.session.exception_list"),
                          r.counter("dpr.session.ops_committed"),
                          r.counter("dpr.session.failures")};
  }();
  return m;
}

}  // namespace

DprSession::DprSession(uint64_t session_id, SessionOptions options)
    : session_id_(session_id), options_(options) {}

bool DprSession::IsStaleResponseLocked(const DprResponseHeader& resp) const {
  return options_.world_line_policy ==
             SessionOptions::WorldLinePolicy::kReject &&
         resp.world_line < world_line_;
}

DprRequestHeader DprSession::MakeHeader() const {
  MutexLock guard(mu_);
  DprRequestHeader header;
  header.session_id = session_id_;
  header.world_line = world_line_;
  header.version = version_clock_;
  header.deps = deps_;
  return header;
}

void DprSession::AbsorbLocked(WorkerId worker, const DprResponseHeader& resp) {
  if (resp.world_line > observed_world_line_) {
    observed_world_line_ = resp.world_line;
  }
  if (resp.status != DprResponseHeader::BatchStatus::kOk) return;
  // A pre-recovery straggler's watermark and version clock describe a
  // world-line the rollback already erased; absorbing them would mix
  // pre- and post-recovery state (§4.2, Fig. 5).
  if (IsStaleResponseLocked(resp)) return;
  if (resp.executed_version > version_clock_) {
    version_clock_ = resp.executed_version;
  }
  Version& wm = watermarks_[worker];
  if (resp.persisted_version > wm) wm = resp.persisted_version;
  // Dependencies on committed versions are satisfied forever; prune them so
  // headers stay small.
  for (auto it = deps_.begin(); it != deps_.end();) {
    auto wit = watermarks_.find(it->first);
    if (wit != watermarks_.end() && it->second <= wit->second) {
      it = deps_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t DprSession::RecordBatch(WorkerId worker, uint64_t n,
                                 const DprResponseHeader& resp) {
  MutexLock guard(mu_);
  const uint64_t start = next_seqno_;
  next_seqno_ += n;
  // A stale (pre-recovery) response records vacuously: the rollback erased
  // any effect, so the segment carries no version and no dependency.
  const Version version =
      IsStaleResponseLocked(resp) ? kInvalidVersion : resp.executed_version;
  segments_.push_back(Segment{start, n, worker, version, /*resolved=*/true,
                              NowMicros()});
  if (version != kInvalidVersion) {
    MergeDependency(&deps_, WorkerVersion{worker, version});
  }
  AbsorbLocked(worker, resp);
  return start;
}

uint64_t DprSession::IssuePending(WorkerId worker, uint64_t n) {
  MutexLock guard(mu_);
  const uint64_t start = next_seqno_;
  next_seqno_ += n;
  segments_.push_back(Segment{start, n, worker, kInvalidVersion,
                              /*resolved=*/false, NowMicros()});
  return start;
}

void DprSession::ResolvePending(uint64_t start_seqno,
                                const DprResponseHeader& resp) {
  MutexLock guard(mu_);
  // Unresolved segments cluster at the tail (bounded by the client window);
  // scan backwards so resolution stays O(window) even when the committed
  // prefix cannot advance and the deque grows.
  for (auto rit = segments_.rbegin(); rit != segments_.rend(); ++rit) {
    Segment& seg = *rit;
    if (seg.start == start_seqno && !seg.resolved) {
      seg.resolved = true;
      seg.version = IsStaleResponseLocked(resp) ? kInvalidVersion
                                                : resp.executed_version;
      // Failed/rejected ops (and pre-recovery stragglers) resolve with
      // version 0: they had no surviving effect, so they commit vacuously
      // and contribute no dependency.
      if (seg.version != kInvalidVersion) {
        MergeDependency(&deps_, WorkerVersion{seg.worker, seg.version});
      }
      AbsorbLocked(seg.worker, resp);
      return;
    }
  }
  DPR_WARN("ResolvePending: no pending segment at seqno %llu",
           static_cast<unsigned long long>(start_seqno));
}

void DprSession::ObserveWatermark(WorkerId worker,
                                  const DprResponseHeader& resp) {
  MutexLock guard(mu_);
  AbsorbLocked(worker, resp);
}

DprSession::CommitPoint DprSession::ComputePointLocked(
    const DprCut& committed, bool drop_committed) {
  CommitPoint point;
  // Phase 1: extend the frontier. A resolved-but-uncommitted segment stops
  // it; an unresolved (PENDING) segment is skipped per relaxed DPR — ops
  // after it cannot depend on it, so the prefix may exclude it.
  uint64_t frontier = reported_prefix_;
  // Strict CPR/DPR is a zero cap: an unresolved operation gates everything
  // after it, so operations commit in start order with no exception list.
  const uint64_t cap = options_.strict ? 0 : options_.exception_list_cap;
  uint64_t skipped = 0;
  for (const auto& seg : segments_) {
    if (seg.resolved) {
      if (CutVersion(committed, seg.worker) >= seg.version) {
        frontier = std::max(frontier, seg.start + seg.count);
      } else {
        break;
      }
    } else {
      // relaxed: unresolved segments are skipped (exception list), up to
      // the configured cap of skipped-over operations.
      skipped += seg.count;
      if (skipped > cap) break;
    }
  }
  // Never regress a previously-reported prefix (a segment that has since
  // resolved into an uncommitted version must not pull it back).
  point.prefix_end = std::max(frontier, reported_prefix_);
  reported_prefix_ = point.prefix_end;
  // Phase 2: the exception list — anything below the prefix that is not
  // (yet) committed.
  for (const auto& seg : segments_) {
    if (seg.start >= point.prefix_end) break;
    const bool is_committed =
        seg.resolved && CutVersion(committed, seg.worker) >= seg.version;
    if (!is_committed) {
      const uint64_t end = std::min(seg.start + seg.count, point.prefix_end);
      for (uint64_t s = seg.start; s < end; ++s) point.excluded.push_back(s);
    }
  }
  Metrics().exception_list->Set(static_cast<int64_t>(point.excluded.size()));
  if (drop_committed) {
    const uint64_t now_us = NowMicros();
    while (!segments_.empty()) {
      const Segment& seg = segments_.front();
      const bool is_committed =
          seg.resolved && CutVersion(committed, seg.worker) >= seg.version;
      if (is_committed && seg.start + seg.count <= point.prefix_end) {
        if (now_us > seg.issued_us) {
          Metrics().op_commit_us->Record(now_us - seg.issued_us);
        }
        Metrics().ops_committed->Add(seg.count);
        segments_.pop_front();
      } else {
        break;
      }
    }
  }
  return point;
}

DprSession::CommitPoint DprSession::GetCommitPoint() {
  MutexLock guard(mu_);
  return ComputePointLocked(watermarks_, /*drop_committed=*/true);
}

uint64_t DprSession::next_seqno() const {
  MutexLock guard(mu_);
  return next_seqno_;
}

bool DprSession::needs_failure_handling() const {
  MutexLock guard(mu_);
  return observed_world_line_ > world_line_;
}

WorldLine DprSession::observed_world_line() const {
  MutexLock guard(mu_);
  return observed_world_line_;
}

WorldLine DprSession::world_line() const {
  MutexLock guard(mu_);
  return world_line_;
}

std::string DprSession::DebugString() const {
  MutexLock guard(mu_);
  std::string out = "session " + std::to_string(session_id_) +
                    " wl=" + std::to_string(world_line_) +
                    " Vs=" + std::to_string(version_clock_) +
                    " next=" + std::to_string(next_seqno_) +
                    " reported=" + std::to_string(reported_prefix_) + "\n";
  out += "  watermarks:";
  for (const auto& [w, v] : watermarks_) {
    out += " (" + std::to_string(w) + "->" + std::to_string(v) + ")";
  }
  out += "\n  segments:";
  for (const auto& seg : segments_) {
    out += " [" + std::to_string(seg.start) + "+" +
           std::to_string(seg.count) + " w" + std::to_string(seg.worker) +
           " v" + std::to_string(seg.version) +
           (seg.resolved ? "" : " PENDING") + "]";
  }
  out += "\n";
  return out;
}

DprSession::CommitPoint DprSession::HandleFailure(WorldLine new_world_line,
                                                  const DprCut& recovery_cut) {
  MutexLock guard(mu_);
  // The surviving prefix is the commit point evaluated at the recovery cut:
  // exactly the operations whose versions made it into the cut survive.
  CommitPoint survivors = ComputePointLocked(recovery_cut,
                                             /*drop_committed=*/false);
  Metrics().failures->Add();
  Metrics().surviving_prefix->Record(survivors.prefix_end);
  // Everything in flight or above the prefix is gone; the session restarts
  // its order on the new world-line. The version clock is retained: workers
  // resume in versions strictly above anything pre-failure, so monotonicity
  // is preserved across the world-line shift.
  segments_.clear();
  deps_.clear();
  // ComputePointLocked above published the pre-rollback exception-list
  // occupancy; with the segments discarded the list is empty — re-zero the
  // gauge or it leaks the stale count until the next commit-point query.
  Metrics().exception_list->Set(0);
  for (auto& [w, v] : watermarks_) {
    const Version cv = CutVersion(recovery_cut, w);
    if (v > cv) v = cv;
  }
  world_line_ = new_world_line;
  if (observed_world_line_ < new_world_line) {
    observed_world_line_ = new_world_line;
  }
  reported_prefix_ = survivors.prefix_end;
  return survivors;
}

}  // namespace dpr
