#include "dpr/finder_core.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"

namespace dpr {

// ---------------------------------------------------------------- DprFinder

DprFinder::~DprFinder() { StopCoordinator(); }

void DprFinder::StartCoordinator(uint64_t interval_us) {
  stop_.store(false, std::memory_order_relaxed);
  coordinator_ = std::thread([this, interval_us] {
    while (!stop_.load(std::memory_order_relaxed)) {
      Status s = ComputeCut();
      if (!s.ok()) {
        DPR_WARN("coordinator ComputeCut: %s", s.ToString().c_str());
      }
      SleepMicros(interval_us);
    }
  });
}

void DprFinder::StopCoordinator() {
  stop_.store(true, std::memory_order_relaxed);
  if (coordinator_.joinable()) coordinator_.join();
}

Version DprFinder::SafeVersion(WorkerId worker) const {
  WorldLine wl;
  DprCut cut;
  GetCut(&wl, &cut);
  return CutVersion(cut, worker);
}

// ---------------------------------------------------------------- FinderCore

FinderCore::FinderCore(MetadataStore* metadata, bool stage_reports,
                       bool serve_vmax)
    : metadata_(metadata),
      stage_reports_(stage_reports),
      serve_vmax_(serve_vmax) {
  world_line_.store(metadata_->GetWorldLine(), std::memory_order_release);
  WorldLine cut_wl;
  metadata_->GetCut(&cut_wl, &cut_);
  vmax_.store(metadata_->MaxPersistedVersion(), std::memory_order_release);
}

Status FinderCore::AddWorker(WorkerId worker, Version start_version) {
  std::lock_guard<std::mutex> guard(mu_);
  DPR_RETURN_NOT_OK(metadata_->UpsertWorker(worker, start_version));
  if (cut_.find(worker) == cut_.end()) cut_[worker] = start_version;
  Version cur = vmax_.load(std::memory_order_relaxed);
  while (start_version > cur &&
         !vmax_.compare_exchange_weak(cur, start_version,
                                      std::memory_order_release)) {
  }
  OnWorkerAddedLocked(worker, start_version);
  return Status::OK();
}

Status FinderCore::RemoveWorker(WorkerId worker) {
  std::lock_guard<std::mutex> guard(mu_);
  DPR_RETURN_NOT_OK(metadata_->RemoveWorker(worker));
  cut_.erase(worker);
  OnWorkerRemovedLocked(worker);
  return Status::OK();
}

Status FinderCore::ReportPersistedVersion(WorldLine world_line,
                                          WorkerVersion wv,
                                          const DependencySet& deps) {
  std::shared_lock<std::shared_mutex> gate(ingest_gate_);
  if (world_line != world_line_.load(std::memory_order_acquire)) {
    reports_stale_.fetch_add(1, std::memory_order_relaxed);
    return Status::Aborted("report from stale world-line");
  }
  DPR_RETURN_NOT_OK(PersistReportDurable(wv, deps));
  Version cur = vmax_.load(std::memory_order_relaxed);
  while (wv.version > cur &&
         !vmax_.compare_exchange_weak(cur, wv.version,
                                      std::memory_order_release)) {
  }
  if (stage_reports_) {
    size_t depth;
    {
      std::lock_guard<std::mutex> guard(stage_mu_);
      staged_.push_back(StagedReport{wv, deps});
      depth = staged_.size();
    }
    uint64_t peak = staged_peak_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !staged_peak_.compare_exchange_weak(peak, depth,
                                               std::memory_order_relaxed)) {
    }
  }
  reports_ingested_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void FinderCore::ApplyReportLocked(StagedReport&& /*report*/) {}

Status FinderCore::OnCutAdvancedLocked() { return Status::OK(); }

void FinderCore::OnWorkerAddedLocked(WorkerId /*worker*/,
                                     Version /*start_version*/) {}

void FinderCore::OnWorkerRemovedLocked(WorkerId /*worker*/) {}

Status FinderCore::OnBeginRecoveryLocked() { return Status::OK(); }

void FinderCore::DrainStagedLocked() {
  std::vector<StagedReport> batch;
  {
    std::lock_guard<std::mutex> guard(stage_mu_);
    batch.swap(staged_);
  }
  for (auto& report : batch) {
    ApplyReportLocked(std::move(report));
  }
}

void FinderCore::DiscardStagedLocked() {
  std::lock_guard<std::mutex> guard(stage_mu_);
  staged_.clear();
}

Status FinderCore::ComputeCut() {
  std::lock_guard<std::mutex> guard(mu_);
  if (in_recovery_) return Status::OK();
  DrainStagedLocked();
  DprCut next;
  DPR_RETURN_NOT_OK(ComputeCandidateLocked(&next));
  bool advanced = false;
  for (const auto& [w, v] : next) {
    if (v > CutVersion(cut_, w)) {
      advanced = true;
      break;
    }
  }
  if (!advanced) return Status::OK();
  DPR_RETURN_NOT_OK(
      metadata_->SetCut(world_line_.load(std::memory_order_acquire), next));
  cut_ = std::move(next);
  cut_advances_.fetch_add(1, std::memory_order_relaxed);
  return OnCutAdvancedLocked();
}

void FinderCore::GetCut(WorldLine* world_line, DprCut* cut) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (world_line != nullptr) {
    *world_line = world_line_.load(std::memory_order_acquire);
  }
  if (cut != nullptr) *cut = cut_;
}

Version FinderCore::MaxPersistedVersion() const {
  if (!serve_vmax_) return kInvalidVersion;
  return vmax_.load(std::memory_order_acquire);
}

WorldLine FinderCore::CurrentWorldLine() const {
  return world_line_.load(std::memory_order_acquire);
}

Version FinderCore::SafeVersion(WorkerId worker) const {
  std::lock_guard<std::mutex> guard(mu_);
  return CutVersion(cut_, worker);
}

Status FinderCore::BeginRecovery(WorldLine* new_world_line, DprCut* cut) {
  // Close the ingest gate: no report may slip a durable row in between the
  // world-line bump and the above-cut trim below.
  std::unique_lock<std::shared_mutex> gate(ingest_gate_);
  std::lock_guard<std::mutex> guard(mu_);
  in_recovery_ = true;
  const WorldLine next_wl =
      world_line_.load(std::memory_order_relaxed) + 1;
  DPR_RETURN_NOT_OK(metadata_->SetWorldLine(next_wl));
  world_line_.store(next_wl, std::memory_order_release);
  // The committed cut is the recovery target; everything reported above it —
  // staged, in-memory, or durable rows — is lost to the rollback.
  DiscardStagedLocked();
  DPR_RETURN_NOT_OK(OnBeginRecoveryLocked());
  Version max_row = kInvalidVersion;
  for (const auto& [w, v] : metadata_->GetPersistedVersions()) {
    const Version cv = CutVersion(cut_, w);
    if (v > cv) {
      DPR_RETURN_NOT_OK(metadata_->UpsertWorker(w, cv));
      max_row = std::max(max_row, cv);
    } else {
      max_row = std::max(max_row, v);
    }
  }
  vmax_.store(max_row, std::memory_order_release);
  // Re-persist the cut under the new world-line so a finder restart recovers
  // into the post-failure world.
  DPR_RETURN_NOT_OK(metadata_->SetCut(next_wl, cut_));
  if (new_world_line != nullptr) *new_world_line = next_wl;
  if (cut != nullptr) *cut = cut_;
  return Status::OK();
}

Status FinderCore::EndRecovery() {
  std::lock_guard<std::mutex> guard(mu_);
  in_recovery_ = false;
  return Status::OK();
}

FinderCoreStats FinderCore::core_stats() const {
  FinderCoreStats s;
  s.reports_ingested = reports_ingested_.load(std::memory_order_relaxed);
  s.reports_stale = reports_stale_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> guard(stage_mu_);
    s.staged_depth = staged_.size();
  }
  s.staged_peak = staged_peak_.load(std::memory_order_relaxed);
  s.cut_advances = cut_advances_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dpr
