#include "dpr/finder_core.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

/// Bound on reports awaiting a report→cut-advance latency sample: a cut that
/// stops advancing (partition, recovery) must not leak memory while reports
/// keep arriving. Overflow drops the oldest — their samples are lost, which
/// only biases the histogram *down* during stalls it already makes obvious
/// through the cut-age gauge.
constexpr size_t kCutLatencyPendingCap = 4096;

struct FinderMetrics {
  Counter* reports_ingested;
  Counter* reports_stale;
  Counter* cut_advances;
  Gauge* staged_depth;
  Gauge* staged_peak;
  Gauge* cut_age_us;
  ShardedHistogram* report_to_cut_us;
};

const FinderMetrics& Metrics() {
  static const FinderMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return FinderMetrics{r.counter("dpr.finder.reports_ingested"),
                         r.counter("dpr.finder.reports_stale"),
                         r.counter("dpr.finder.cut_advances"),
                         r.gauge("dpr.finder.staged_depth"),
                         r.gauge("dpr.finder.staged_peak"),
                         r.gauge("dpr.finder.cut_age_us"),
                         r.histogram("dpr.finder.report_to_cut_us")};
  }();
  return m;
}

}  // namespace

// ---------------------------------------------------------------- DprFinder

DprFinder::~DprFinder() { StopCoordinator(); }

void DprFinder::StartCoordinator(uint64_t interval_us) {
  stop_.store(false, std::memory_order_relaxed);
  coordinator_ = std::thread([this, interval_us] {
    while (!stop_.load(std::memory_order_relaxed)) {
      Status s = ComputeCut();
      if (!s.ok()) {
        DPR_WARN("coordinator ComputeCut: %s", s.ToString().c_str());
      }
      SleepMicros(interval_us);
    }
  });
}

void DprFinder::StopCoordinator() {
  stop_.store(true, std::memory_order_relaxed);
  if (coordinator_.joinable()) coordinator_.join();
}

Version DprFinder::SafeVersion(WorkerId worker) const {
  WorldLine wl;
  DprCut cut;
  GetCut(&wl, &cut);
  return CutVersion(cut, worker);
}

// ---------------------------------------------------------------- FinderCore

FinderCore::FinderCore(MetadataStore* metadata, bool stage_reports,
                       bool serve_vmax)
    : metadata_(metadata),
      stage_reports_(stage_reports),
      serve_vmax_(serve_vmax) {
  world_line_.store(metadata_->GetWorldLine(), std::memory_order_release);
  WorldLine cut_wl;
  metadata_->GetCut(&cut_wl, &cut_);
  vmax_.store(metadata_->MaxPersistedVersion(), std::memory_order_release);
}

Status FinderCore::AddWorker(WorkerId worker, Version start_version) {
  MutexLock guard(mu_);
  DPR_RETURN_NOT_OK(metadata_->UpsertWorker(worker, start_version));
  if (cut_.find(worker) == cut_.end()) cut_[worker] = start_version;
  Version cur = vmax_.load(std::memory_order_relaxed);
  while (start_version > cur &&
         !vmax_.compare_exchange_weak(cur, start_version,
                                      std::memory_order_release)) {
  }
  OnWorkerAddedLocked(worker, start_version);
  return Status::OK();
}

Status FinderCore::RemoveWorker(WorkerId worker) {
  MutexLock guard(mu_);
  DPR_RETURN_NOT_OK(metadata_->RemoveWorker(worker));
  cut_.erase(worker);
  OnWorkerRemovedLocked(worker);
  return Status::OK();
}

Status FinderCore::ReportPersistedVersion(WorldLine world_line,
                                          WorkerVersion wv,
                                          const DependencySet& deps) {
  ReaderMutexLock gate(ingest_gate_);
  if (world_line != world_line_.load(std::memory_order_acquire)) {
    reports_stale_.fetch_add(1, std::memory_order_relaxed);
    Metrics().reports_stale->Add();
    return Status::Aborted("report from stale world-line");
  }
  DPR_RETURN_NOT_OK(PersistReportDurable(wv, deps));
  Version cur = vmax_.load(std::memory_order_relaxed);
  while (wv.version > cur &&
         !vmax_.compare_exchange_weak(cur, wv.version,
                                      std::memory_order_release)) {
  }
  if (stage_reports_) {
    size_t depth;
    {
      MutexLock guard(stage_mu_);
      staged_.push_back(StagedReport{wv, deps, NowMicros()});
      depth = staged_.size();
    }
    uint64_t peak = staged_peak_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !staged_peak_.compare_exchange_weak(peak, depth,
                                               std::memory_order_relaxed)) {
    }
    Metrics().staged_depth->Set(static_cast<int64_t>(depth));
    Metrics().staged_peak->UpdateMax(static_cast<int64_t>(depth));
  }
  reports_ingested_.fetch_add(1, std::memory_order_relaxed);
  Metrics().reports_ingested->Add();
  return Status::OK();
}

void FinderCore::ApplyReportLocked(StagedReport&& /*report*/) {}

Status FinderCore::OnCutAdvancedLocked() { return Status::OK(); }

void FinderCore::OnWorkerAddedLocked(WorkerId /*worker*/,
                                     Version /*start_version*/) {}

void FinderCore::OnWorkerRemovedLocked(WorkerId /*worker*/) {}

Status FinderCore::OnBeginRecoveryLocked() { return Status::OK(); }

void FinderCore::DrainStagedLocked() {
  std::vector<StagedReport> batch;
  {
    MutexLock guard(stage_mu_);
    batch.swap(staged_);
  }
  if (!batch.empty()) Metrics().staged_depth->Set(0);
  for (auto& report : batch) {
    cut_latency_pending_.emplace_back(report.wv, report.ingest_us);
    ApplyReportLocked(std::move(report));
  }
  while (cut_latency_pending_.size() > kCutLatencyPendingCap) {
    cut_latency_pending_.pop_front();
  }
}

void FinderCore::DiscardStagedLocked() {
  MutexLock guard(stage_mu_);
  staged_.clear();
  Metrics().staged_depth->Set(0);
  cut_latency_pending_.clear();
}

Status FinderCore::ComputeCut() {
  MutexLock guard(mu_);
  if (in_recovery_) return Status::OK();
  DrainStagedLocked();
  DprCut next;
  DPR_RETURN_NOT_OK(ComputeCandidateLocked(&next));
  bool advanced = false;
  for (const auto& [w, v] : next) {
    if (v > CutVersion(cut_, w)) {
      advanced = true;
      break;
    }
  }
  const uint64_t now_us = NowMicros();
  const uint64_t last = last_advance_us_.load(std::memory_order_relaxed);
  if (!advanced) {
    // How long the committed cut has been stuck — the staleness a client
    // commit waits behind.
    if (last != 0) {
      Metrics().cut_age_us->Set(static_cast<int64_t>(now_us - last));
    }
    return Status::OK();
  }
  DPR_RETURN_NOT_OK(
      metadata_->SetCut(world_line_.load(std::memory_order_acquire), next));
  cut_ = std::move(next);
  cut_advances_.fetch_add(1, std::memory_order_relaxed);
  Metrics().cut_advances->Add();
  last_advance_us_.store(now_us, std::memory_order_relaxed);
  Metrics().cut_age_us->Set(0);
  // Reports the new cut covers have completed their report→cut round trip.
  while (!cut_latency_pending_.empty()) {
    const auto& [wv, ingest_us] = cut_latency_pending_.front();
    if (CutVersion(cut_, wv.worker) < wv.version) break;
    if (now_us > ingest_us) {
      Metrics().report_to_cut_us->Record(now_us - ingest_us);
    }
    cut_latency_pending_.pop_front();
  }
  return OnCutAdvancedLocked();
}

void FinderCore::GetCut(WorldLine* world_line, DprCut* cut) const {
  MutexLock guard(mu_);
  if (world_line != nullptr) {
    *world_line = world_line_.load(std::memory_order_acquire);
  }
  if (cut != nullptr) *cut = cut_;
}

Version FinderCore::MaxPersistedVersion() const {
  if (!serve_vmax_) return kInvalidVersion;
  return vmax_.load(std::memory_order_acquire);
}

WorldLine FinderCore::CurrentWorldLine() const {
  return world_line_.load(std::memory_order_acquire);
}

Version FinderCore::SafeVersion(WorkerId worker) const {
  MutexLock guard(mu_);
  return CutVersion(cut_, worker);
}

Status FinderCore::BeginRecovery(WorldLine* new_world_line, DprCut* cut) {
  // Close the ingest gate: no report may slip a durable row in between the
  // world-line bump and the above-cut trim below.
  WriterMutexLock gate(ingest_gate_);
  MutexLock guard(mu_);
  in_recovery_ = true;
  const WorldLine next_wl =
      world_line_.load(std::memory_order_relaxed) + 1;
  DPR_RETURN_NOT_OK(metadata_->SetWorldLine(next_wl));
  world_line_.store(next_wl, std::memory_order_release);
  // The committed cut is the recovery target; everything reported above it —
  // staged, in-memory, or durable rows — is lost to the rollback.
  DiscardStagedLocked();
  DPR_RETURN_NOT_OK(OnBeginRecoveryLocked());
  Version max_row = kInvalidVersion;
  for (const auto& [w, v] : metadata_->GetPersistedVersions()) {
    const Version cv = CutVersion(cut_, w);
    if (v > cv) {
      DPR_RETURN_NOT_OK(metadata_->UpsertWorker(w, cv));
      max_row = std::max(max_row, cv);
    } else {
      max_row = std::max(max_row, v);
    }
  }
  vmax_.store(max_row, std::memory_order_release);
  // Re-persist the cut under the new world-line so a finder restart recovers
  // into the post-failure world.
  DPR_RETURN_NOT_OK(metadata_->SetCut(next_wl, cut_));
  if (new_world_line != nullptr) *new_world_line = next_wl;
  if (cut != nullptr) *cut = cut_;
  return Status::OK();
}

Status FinderCore::EndRecovery() {
  MutexLock guard(mu_);
  in_recovery_ = false;
  return Status::OK();
}

FinderCoreStats FinderCore::core_stats() const {
  FinderCoreStats s;
  s.reports_ingested = reports_ingested_.load(std::memory_order_relaxed);
  s.reports_stale = reports_stale_.load(std::memory_order_relaxed);
  {
    MutexLock guard(stage_mu_);
    s.staged_depth = staged_.size();
  }
  s.staged_peak = staged_peak_.load(std::memory_order_relaxed);
  s.cut_advances = cut_advances_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dpr
