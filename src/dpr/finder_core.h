#ifndef DPR_DPR_FINDER_CORE_H_
#define DPR_DPR_FINDER_CORE_H_

#include <atomic>
#include <deque>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "dpr/types.h"
#include "metadata/metadata_store.h"

namespace dpr {

/// The DPR-tracking service (paper §3.3–3.4, Fig. 4): workers report
/// persisted versions (with their cross-worker dependency sets), and the
/// finder computes ever-advancing DPR cuts that it persists in the metadata
/// store.
///
/// All implementations are thread-safe. Cut computation can run inline via
/// ComputeCut() (tests) or on the background coordinator thread
/// (StartCoordinator).
class DprFinder {
 public:
  virtual ~DprFinder();

  /// Registers a worker (joins the cluster at version `start_version`).
  virtual Status AddWorker(WorkerId worker, Version start_version = 0) = 0;
  /// Removes an (empty) worker from the cluster.
  virtual Status RemoveWorker(WorkerId worker) = 0;

  /// Reports that `wv.worker` made `wv.version` durable; `deps` holds, for
  /// each other worker this version's operations depend on, the largest
  /// version number depended upon.
  virtual Status ReportPersistedVersion(WorldLine world_line, WorkerVersion wv,
                                        const DependencySet& deps) = 0;

  /// Runs one round of cut computation and persists any advance.
  virtual Status ComputeCut() = 0;

  /// Latest committed cut and its world-line.
  virtual void GetCut(WorldLine* world_line, DprCut* cut) const = 0;

  /// Largest persisted version across all workers (Vmax, §3.4); workers
  /// fast-forward their next checkpoint to at least this.
  virtual Version MaxPersistedVersion() const = 0;

  /// Current world-line (advanced by BeginRecovery).
  virtual WorldLine CurrentWorldLine() const = 0;

  /// Failure handling: advances the world-line, freezes the cut as the
  /// recovery target, and discards reported state above it. Returns the cut
  /// every surviving worker must roll back to. Progress is halted until
  /// EndRecovery() is called (paper §4.1).
  virtual Status BeginRecovery(WorldLine* new_world_line,
                               DprCut* recovery_cut) = 0;
  virtual Status EndRecovery() = 0;

  /// Convenience: committed version of one worker in the latest cut.
  /// Implementations override this with a fast path that avoids
  /// materializing the whole cut.
  virtual Version SafeVersion(WorkerId worker) const;

  /// Chaos hook: models losing the coordinator process without losing the
  /// durable metadata. Implementations that keep per-report in-memory state
  /// discard it (see GraphDprFinder); the default is a no-op because an
  /// algorithm computing from durable rows alone loses nothing.
  virtual void SimulateCoordinatorCrash() {}

  /// Runs ComputeCut() every `interval_us` on a background thread.
  void StartCoordinator(uint64_t interval_us);
  void StopCoordinator();

 private:
  std::thread coordinator_;
  // relaxed flag: coordinator loop-exit signal; join is the barrier.
  std::atomic<bool> stop_{false};
};

/// One worker report staged by the ingest side, awaiting application to the
/// compute side's in-memory structures.
struct StagedReport {
  WorkerVersion wv;
  DependencySet deps;
  /// Ingest-side timestamp, for the report→cut-advance latency histogram.
  uint64_t ingest_us = 0;
};

/// Observability counters for the finder's ingest/compute split.
struct FinderCoreStats {
  uint64_t reports_ingested = 0;  // accepted ReportPersistedVersion calls
  uint64_t reports_stale = 0;     // rejected: world-line mismatch
  uint64_t staged_depth = 0;      // reports staged, not yet drained (gauge)
  uint64_t staged_peak = 0;       // max staged_depth observed
  uint64_t cut_advances = 0;      // ComputeCut rounds that advanced the cut
};

/// The state machine shared by all local finder implementations: world-line
/// and recovery handling, the committed cut, Vmax tracking, and the
/// ingest/compute split.
///
/// Ingest side (ReportPersistedVersion): validates the report's world-line
/// against an atomic, performs the algorithm's durable write
/// (PersistReportDurable — the metadata store serializes internally), bumps
/// the atomic Vmax, and appends the report to a small staging buffer. It
/// never takes the compute lock, so reports do not serialize against cut
/// computation.
///
/// Compute side (ComputeCut): under the compute lock `mu_`, drains the
/// staging buffer into the algorithm's in-memory structures
/// (ApplyReportLocked) and asks the algorithm for a candidate cut
/// (ComputeCandidateLocked); any advance is persisted and garbage-collection
/// hooks run.
///
/// Recovery closes the ingest gate exclusively (a shared_mutex reports pass
/// through in shared mode) so no report can interleave with the world-line
/// bump and the above-cut trim.
class FinderCore : public DprFinder {
 public:
  Status AddWorker(WorkerId worker, Version start_version) override;
  Status RemoveWorker(WorkerId worker) override;
  Status ReportPersistedVersion(WorldLine world_line, WorkerVersion wv,
                                const DependencySet& deps) override;
  Status ComputeCut() override;
  void GetCut(WorldLine* world_line, DprCut* cut) const override;
  Version MaxPersistedVersion() const override;
  WorldLine CurrentWorldLine() const override;
  Version SafeVersion(WorkerId worker) const override;
  Status BeginRecovery(WorldLine* new_world_line, DprCut* cut) override;
  Status EndRecovery() override;

  FinderCoreStats core_stats() const;

 protected:
  /// `stage_reports` is false for algorithms with no in-memory per-report
  /// state (the approximate finder computes from durable rows only).
  /// `serve_vmax` implements FinderOptions::vmax_fastforward: when false,
  /// MaxPersistedVersion() reports kInvalidVersion so workers never
  /// fast-forward (§3.4 ablation), though Vmax is still tracked internally
  /// for recovery bookkeeping.
  FinderCore(MetadataStore* metadata, bool stage_reports,
             bool serve_vmax = true);

  // --- algorithm hooks -----------------------------------------------------
  /// Ingest side, no lock held: the report's durable write (graph node row,
  /// dpr-table row). Must be safe to run concurrently with the compute side.
  virtual Status PersistReportDurable(const WorkerVersion& wv,
                                      const DependencySet& deps) = 0;
  /// Compute side, mu_ held: folds one staged report into in-memory state.
  virtual void ApplyReportLocked(StagedReport&& report) REQUIRES(mu_);
  /// Compute side, mu_ held: the algorithm's candidate next cut.
  virtual Status ComputeCandidateLocked(DprCut* next) REQUIRES(mu_) = 0;
  /// Compute side, mu_ held: GC after the cut advanced to the new `cut_`.
  virtual Status OnCutAdvancedLocked() REQUIRES(mu_);
  /// mu_ held: membership changes.
  virtual void OnWorkerAddedLocked(WorkerId worker, Version start_version)
      REQUIRES(mu_);
  virtual void OnWorkerRemovedLocked(WorkerId worker) REQUIRES(mu_);
  /// mu_ held, ingest gate closed: discard in-memory state above the frozen
  /// cut. (Durable dpr-table rows are trimmed by the core.)
  virtual Status OnBeginRecoveryLocked() REQUIRES(mu_);

  // --- helpers for subclasses (mu_ held) -----------------------------------
  /// Applies all staged reports to in-memory state via ApplyReportLocked.
  void DrainStagedLocked() REQUIRES(mu_);
  /// Drops staged reports without applying them (recovery, coordinator
  /// crash: they are lost to the rollback / the lost process).
  void DiscardStagedLocked() REQUIRES(mu_);

  MetadataStore* metadata_;
  /// Compute lock: guards cut_, in_recovery_, and subclass in-memory state.
  mutable Mutex mu_{LockRank::kFinderCompute, "finder.compute"};
  DprCut cut_ GUARDED_BY(mu_);
  bool in_recovery_ GUARDED_BY(mu_) = false;

 private:
  const bool stage_reports_;
  const bool serve_vmax_;
  /// Served lock-free to report filtering. release on recovery-install /
  /// acquire on read: observing world line w implies observing the cut
  /// reset that created it. vmax_ advances by relaxed CAS max-merge (only
  /// the max matters; the metadata write that makes it durable is fenced
  /// by mu_).
  std::atomic<WorldLine> world_line_;
  std::atomic<Version> vmax_{kInvalidVersion};
  /// Reports pass in shared mode; BeginRecovery closes it exclusively.
  /// Ranked above the compute lock: recovery acquires gate → mu_.
  mutable SharedMutex ingest_gate_{LockRank::kFinderIngestGate,
                                   "finder.ingest_gate"};
  /// Staging buffer (MPSC): its lock is held only for an append or a swap,
  /// never during cut computation or metadata I/O. Ranked below the compute
  /// lock (DrainStagedLocked acquires mu_ → stage_mu_).
  mutable Mutex stage_mu_{LockRank::kFinderStage, "finder.stage"};
  std::vector<StagedReport> staged_ GUARDED_BY(stage_mu_);

  /// relaxed: monotonic stat counters for obs export only.
  std::atomic<uint64_t> reports_ingested_{0};
  std::atomic<uint64_t> reports_stale_{0};
  std::atomic<uint64_t> staged_peak_{0};
  std::atomic<uint64_t> cut_advances_{0};

  /// Drained reports not yet covered by the cut, awaiting their
  /// report→cut-advance latency sample (mu_ held; capped so a stalled cut
  /// cannot grow it without bound).
  std::deque<std::pair<WorkerVersion, uint64_t>> cut_latency_pending_
      GUARDED_BY(mu_);
  /// When the committed cut last advanced, for the cut-age gauge
  /// (relaxed: a monotonic timestamp read only by the stats path).
  std::atomic<uint64_t> last_advance_us_{0};
};

}  // namespace dpr

#endif  // DPR_DPR_FINDER_CORE_H_
