#ifndef DPR_DPR_STATE_OBJECT_H_
#define DPR_DPR_STATE_OBJECT_H_

#include <functional>

#include "common/status.h"
#include "dpr/types.h"

namespace dpr {

/// The paper's abstract shard (§3): any cache-store that supports versioned
/// group commit and restore. Op() is not part of this interface — operations
/// are store-specific and executed by the surrounding worker while it holds
/// the version latch; this interface only exposes the commit/restore hooks
/// libDPR needs.
///
/// Version semantics: the store executes operations in its current version v.
/// PerformCheckpoint(target) atomically advances the version to `target`
/// (> v) and captures the effects of all operations executed in versions
/// <= v; the resulting durable token is v. Checkpoints are asynchronous:
/// the call returns once the version boundary is drawn, and `on_persistent`
/// fires (possibly on another thread) when the image is durable.
///
/// Restore semantics: RestoreCheckpoint(version) restores store state to the
/// largest durable token <= `version` (cut entries from the approximate
/// algorithm need not be exact local tokens; rounding down is safe because
/// any version that executed operations becomes a token before the worker's
/// row can advance past it — see DESIGN.md). The store's current version then
/// resumes strictly above any pre-rollback version.
/// Advice the cadence controller attaches to a checkpoint request. Hints
/// are best-effort: a store that only knows full fold-overs ignores them,
/// and a store asked for a delta with no usable base persists a full image
/// instead. Correctness never depends on a hint being honored.
struct CheckpointHints {
  /// Persist a hash-index image with the checkpoint meta record so a
  /// restore can skip the full log scan (FasterStore: WAL record types
  /// kMetaFullIndex / kMetaDelta).
  bool index_image = false;
  /// Persist only the index buckets dirtied since the newest durable
  /// image checkpoint (the chain base) instead of a full image.
  bool delta = false;
};

class StateObject {
 public:
  virtual ~StateObject() = default;

  using PersistCallback = std::function<void(Version token)>;

  /// Begins a checkpoint; returns the token (the pre-advance version) via
  /// `out_token`. Returns Busy if a checkpoint/rollback is in flight.
  virtual Status PerformCheckpoint(Version target_version,
                                   PersistCallback on_persistent,
                                   Version* out_token) = 0;

  /// Hinted variant used by the cadence controller. The default ignores
  /// the hints, so stores without incremental support need no changes.
  virtual Status PerformCheckpoint(Version target_version,
                                   PersistCallback on_persistent,
                                   Version* out_token,
                                   const CheckpointHints& /*hints*/) {
    return PerformCheckpoint(target_version, std::move(on_persistent),
                             out_token);
  }

  /// Rolls back to the largest durable token <= `version` and resumes
  /// execution in a fresh version above everything pre-rollback. Fills
  /// `restored_token` with the token actually restored.
  virtual Status RestoreCheckpoint(Version version,
                                   Version* restored_token) = 0;

  /// The version new operations currently execute in.
  virtual Version CurrentVersion() const = 0;

  /// Simulates a process crash: volatile state is dropped; only durable
  /// checkpoints survive. Used by failure-injection tests and benches.
  virtual void SimulateCrash() = 0;
};

}  // namespace dpr

#endif  // DPR_DPR_STATE_OBJECT_H_
