#include "dpr/worker.h"

#include <utility>

#include "common/clock.h"
#include "common/logging.h"

namespace dpr {

DprWorker::DprWorker(StateObject* state_object,
                     const DprWorkerOptions& options)
    : state_object_(state_object), options_(options) {
  DPR_CHECK(state_object_ != nullptr);
  DPR_CHECK(options_.finder != nullptr);
  DPR_CHECK(options_.worker_id != kInvalidWorker);
}

DprWorker::~DprWorker() { Stop(); }

Status DprWorker::Start() {
  world_line_.store(options_.finder->CurrentWorldLine(),
                    std::memory_order_release);
  DPR_RETURN_NOT_OK(options_.finder->AddWorker(options_.worker_id, 0));
  stop_.store(false, std::memory_order_release);
  if (options_.checkpoint_interval_us > 0) {
    timer_ = std::thread([this] { TimerLoop(); });
  }
  return Status::OK();
}

void DprWorker::Stop() {
  stop_.store(true, std::memory_order_release);
  if (timer_.joinable()) timer_.join();
}

void DprWorker::TimerLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    SleepMicros(options_.checkpoint_interval_us);
    if (stop_.load(std::memory_order_acquire)) break;
    Status s = TryCommit(0);
    if (!s.ok() && !s.IsBusy() && !s.IsUnavailable()) {
      DPR_WARN("worker %u commit: %s", options_.worker_id,
               s.ToString().c_str());
    }
    RefreshPersistedWatermark();
  }
}

Status DprWorker::BeginBatch(const DprRequestHeader& header,
                             Version* out_version) {
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const WorldLine my_wl = world_line_.load(std::memory_order_acquire);
    if (header.world_line < my_wl) {
      // Client is on a pre-failure world-line; it must compute its surviving
      // prefix before operating in the new world (paper §4.2).
      return Status::Aborted("stale client world-line");
    }
    if (header.world_line > my_wl || in_recovery_.load()) {
      // This worker has not rolled back yet; make the client retry instead
      // of mixing world-lines.
      return Status::Unavailable("worker behind client world-line");
    }
    version_latch_.LockShared();
    if (in_recovery_.load(std::memory_order_acquire) ||
        world_line_.load(std::memory_order_acquire) != my_wl) {
      version_latch_.UnlockShared();
      continue;
    }
    const Version v = state_object_->CurrentVersion();
    if (v < header.version) {
      // Progress rule (§3.2): execute only in a version >= the client's Vs;
      // fast-forward by committing up to it.
      version_latch_.UnlockShared();
      Status s = TryCommit(header.version);
      if (!s.ok() && !s.IsBusy()) return s;
      std::this_thread::yield();
      continue;
    }
    {
      std::lock_guard<std::mutex> guard(deps_mu_);
      DependencySet& deps = version_deps_[v];
      for (const auto& [dw, dv] : header.deps) {
        if (dw == options_.worker_id) continue;  // self-deps are implicit
        MergeDependency(&deps, WorkerVersion{dw, dv});
      }
    }
    *out_version = v;
    return Status::OK();  // caller executes the batch, then EndBatch()
  }
  return Status::Unavailable("could not admit batch");
}

void DprWorker::EndBatch() { version_latch_.UnlockShared(); }

void DprWorker::FillResponse(Version executed_version,
                             DprResponseHeader::BatchStatus status,
                             DprResponseHeader* resp) const {
  resp->status = status;
  resp->world_line = world_line_.load(std::memory_order_acquire);
  resp->executed_version = executed_version;
  resp->persisted_version =
      persisted_watermark_.load(std::memory_order_acquire);
}

Status DprWorker::TryCommit(Version target_version) {
  if (in_recovery_.load(std::memory_order_acquire)) {
    return Status::Unavailable("mid-recovery");
  }
  version_latch_.LockExclusive();
  const Version cur = state_object_->CurrentVersion();
  Version target = target_version;
  if (target == 0) {
    target = cur + 1;
    if (options_.vmax_fast_forward) {
      const Version vmax = options_.finder->MaxPersistedVersion();
      if (vmax + 1 > target) target = vmax + 1;  // catch up to the cluster
    }
  }
  if (target <= cur) {
    version_latch_.UnlockExclusive();
    return Status::OK();  // someone already advanced past the target
  }
  const WorldLine wl = world_line_.load(std::memory_order_acquire);
  Version token = kInvalidVersion;
  Status s = state_object_->PerformCheckpoint(
      target, [this, wl](Version t) { OnCheckpointPersistent(wl, t); },
      &token);
  version_latch_.UnlockExclusive();
  return s;
}

void DprWorker::OnCheckpointPersistent(WorldLine world_line, Version token) {
  DependencySet deps;
  {
    std::lock_guard<std::mutex> guard(deps_mu_);
    // The report covers every version in (last_reported, token]; fold their
    // dependency sets together (versions are cumulative prefixes).
    auto it = version_deps_.begin();
    while (it != version_deps_.end() && it->first <= token) {
      MergeDependencies(&deps, it->second);
      it = version_deps_.erase(it);
    }
    if (token > last_reported_) last_reported_ = token;
  }
  Status s = options_.finder->ReportPersistedVersion(
      world_line, WorkerVersion{options_.worker_id, token}, deps);
  if (!s.ok() && !s.IsAborted()) {
    DPR_WARN("worker %u report v%llu: %s", options_.worker_id,
             static_cast<unsigned long long>(token), s.ToString().c_str());
  }
  RefreshPersistedWatermark();
}

void DprWorker::RefreshPersistedWatermark() {
  const Version safe = options_.finder->SafeVersion(options_.worker_id);
  Version cur = persisted_watermark_.load(std::memory_order_relaxed);
  while (safe > cur && !persisted_watermark_.compare_exchange_weak(
                           cur, safe, std::memory_order_release)) {
  }
}

Status DprWorker::Rollback(WorldLine new_world_line, Version safe_version) {
  return RollbackInternal(new_world_line, safe_version, /*crash=*/false);
}

Status DprWorker::CrashAndRestore(WorldLine new_world_line,
                                  Version safe_version) {
  return RollbackInternal(new_world_line, safe_version, /*crash=*/true);
}

Status DprWorker::RollbackInternal(WorldLine new_world_line,
                                   Version safe_version, bool crash) {
  in_recovery_.store(true, std::memory_order_release);
  // Quiesce in-flight batches before touching store state: a simulated
  // crash drops the volatile log, which no concurrently-executing batch may
  // still be reading.
  version_latch_.LockExclusive();
  if (crash) state_object_->SimulateCrash();
  Version restored = kInvalidVersion;
  Status s = state_object_->RestoreCheckpoint(safe_version, &restored);
  if (s.ok()) {
    {
      std::lock_guard<std::mutex> guard(deps_mu_);
      version_deps_.clear();
      last_reported_ = restored;
    }
    world_line_.store(new_world_line, std::memory_order_release);
  }
  version_latch_.UnlockExclusive();
  in_recovery_.store(false, std::memory_order_release);
  RefreshPersistedWatermark();
  return s;
}

}  // namespace dpr
