#include "dpr/worker.h"

#include <chrono>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

struct WorkerMetrics {
  Counter* batches;
  Counter* admission_retries;
  Counter* admission_timeouts;
  Counter* checkpoints;
  Counter* rollbacks;
  Gauge* vmax_lag;
};

const WorkerMetrics& Metrics() {
  static const WorkerMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return WorkerMetrics{r.counter("dpr.worker.batches"),
                         r.counter("dpr.worker.admission_retries"),
                         r.counter("dpr.worker.admission_timeouts"),
                         r.counter("dpr.worker.checkpoints"),
                         r.counter("dpr.worker.rollbacks"),
                         r.gauge("dpr.worker.vmax_lag")};
  }();
  return m;
}

/// Admission-control retry policy for BeginBatch. Attempts are consumed by
/// benign races (a checkpoint or rollback slipping in between the world-line
/// check and the latch) and by version fast-forwards; the first few retries
/// just yield, after which the wait backs off exponentially so a worker
/// stuck mid-recovery is not hammered by a busy loop.
constexpr int kAdmissionMaxAttempts = 256;
constexpr int kAdmissionYieldAttempts = 16;
constexpr uint64_t kAdmissionBackoffInitialUs = 10;
constexpr uint64_t kAdmissionBackoffMaxUs = 1000;

void AdmissionBackoff(int attempt) {
  if (attempt < kAdmissionYieldAttempts) {
    std::this_thread::yield();
    return;
  }
  uint64_t delay = kAdmissionBackoffInitialUs;
  for (int i = kAdmissionYieldAttempts; i < attempt; ++i) {
    delay *= 2;
    if (delay >= kAdmissionBackoffMaxUs) {
      delay = kAdmissionBackoffMaxUs;
      break;
    }
  }
  SleepMicros(delay);
}

}  // namespace

DprWorker::DprWorker(StateObject* state_object,
                     const DprWorkerOptions& options)
    : state_object_(state_object),
      options_(options),
      deps_(options.dep_tracker_shards) {
  DPR_CHECK(state_object_ != nullptr);
  DPR_CHECK(options_.finder != nullptr);
  DPR_CHECK(options_.worker_id != kInvalidWorker);
}

DprWorker::~DprWorker() { Stop(); }

Status DprWorker::Start() {
  world_line_.store(options_.finder->CurrentWorldLine(),
                    std::memory_order_release);
  DPR_RETURN_NOT_OK(options_.finder->AddWorker(options_.worker_id, 0));
  stop_.store(false, std::memory_order_release);
  if (options_.checkpoint_interval_us > 0) {
    timer_ = std::thread([this] { TimerLoop(); });
  }
  return Status::OK();
}

void DprWorker::Stop() {
  {
    MutexLock guard(timer_mu_);
    stop_.store(true, std::memory_order_release);
  }
  timer_cv_.NotifyAll();
  if (timer_.joinable()) timer_.join();
}

void DprWorker::TimerLoop() {
  // Cadence is owned by the controller (src/ckpt/): every tick samples the
  // live signals, asks for a decision, and sleeps whatever the controller
  // returns — checkpoint_interval_us only seeds the first wait and bounds
  // the cadence via CkptPolicy::Resolve.
  // dprlint: allowed(ckpt-interval) this IS the controller-driven loop.
  CkptCadenceController controller(
      options_.ckpt_policy.Resolve(options_.checkpoint_interval_us));
  uint64_t delay_us = options_.checkpoint_interval_us;
  while (true) {
    {
      // Interruptible wait: Stop() flips stop_ under timer_mu_ and notifies,
      // so shutdown returns immediately instead of sleeping out the interval.
      MutexLock lock(timer_mu_);
      timer_cv_.WaitFor(
          timer_mu_, std::chrono::microseconds(delay_us),
          [this] { return stop_.load(std::memory_order_acquire); });
      if (stop_.load(std::memory_order_acquire)) return;
    }
    // Work runs outside timer_mu_ so Stop() never blocks on a checkpoint.
    CkptSignals signals;
    if (options_.ckpt_signals) {
      signals = options_.ckpt_signals();
    } else {
      // No sampler: assume always-dirty so the controller never skips.
      signals.dirty_bytes = 1;
      signals.committed_watermark =
          persisted_watermark_.load(std::memory_order_acquire);
    }
    const CkptDecision decision = controller.Decide(signals, NowMicros());
    delay_us = decision.next_delay_us;
    if (decision.action != CkptAction::kSkip) {
      const bool delta = decision.action == CkptAction::kDelta;
      Status s = TryCommit(
          0, CheckpointHints{.index_image = controller.policy().adaptive,
                             .delta = delta});
      if (!s.ok() && !s.IsRetryable()) {
        DPR_WARN("worker %u commit: %s", options_.worker_id,
                 s.ToString().c_str());
      }
    }
    // Skipped ticks still refresh: commit-point propagation must not stall
    // on an idle shard (responses piggyback this watermark).
    RefreshPersistedWatermark();
  }
}

Status DprWorker::BeginBatch(const DprRequestHeader& header,
                             Version* out_version) {
  for (int attempt = 0; attempt < kAdmissionMaxAttempts; ++attempt) {
    const WorldLine my_wl = world_line_.load(std::memory_order_acquire);
    if (header.world_line < my_wl) {
      // Client is on a pre-failure world-line; it must compute its surviving
      // prefix before operating in the new world (paper §4.2).
      return Status::Aborted("stale client world-line");
    }
    if (header.world_line > my_wl || in_recovery_.load()) {
      // This worker has not rolled back yet; make the client retry instead
      // of mixing world-lines.
      return Status::Transient("worker behind client world-line");
    }
    version_latch_.LockShared();
    if (in_recovery_.load(std::memory_order_acquire) ||
        world_line_.load(std::memory_order_acquire) != my_wl) {
      version_latch_.UnlockShared();
      Metrics().admission_retries->Add();
      AdmissionBackoff(attempt);
      continue;
    }
    const Version v = state_object_->CurrentVersion();
    if (v < header.version) {
      // Progress rule (§3.2): execute only in a version >= the client's Vs;
      // fast-forward by committing up to it.
      version_latch_.UnlockShared();
      Status s = TryCommit(header.version);
      if (!s.ok() && !s.IsBusy()) return s;
      Metrics().admission_retries->Add();
      AdmissionBackoff(attempt);
      continue;
    }
    // Record the batch's cross-worker dependencies against the version it
    // executes in. Striped by session — no global mutex on the hot path.
    deps_.Record(header.session_id, v, header.deps, options_.worker_id);
    *out_version = v;
    Metrics().batches->Add();
    return Status::OK();  // caller executes the batch, then EndBatch()
  }
  Metrics().admission_timeouts->Add();
  if (in_recovery_.load(std::memory_order_acquire)) {
    return Status::TimedOut("batch admission timed out during recovery");
  }
  return Status::TimedOut("batch admission timed out");
}

void DprWorker::EndBatch() { version_latch_.UnlockShared(); }

void DprWorker::FillResponse(Version executed_version,
                             DprResponseHeader::BatchStatus status,
                             DprResponseHeader* resp) const {
  resp->status = status;
  resp->world_line = world_line_.load(std::memory_order_acquire);
  resp->executed_version = executed_version;
  resp->persisted_version =
      persisted_watermark_.load(std::memory_order_acquire);
}

Status DprWorker::TryCommit(Version target_version,
                            const CheckpointHints& hints) {
  if (in_recovery_.load(std::memory_order_acquire)) {
    return Status::Unavailable("mid-recovery");
  }
  version_latch_.LockExclusive();
  const Version cur = state_object_->CurrentVersion();
  Version target = target_version;
  if (target == 0) {
    target = cur + 1;
    if (options_.vmax_fast_forward) {
      const Version vmax = options_.finder->MaxPersistedVersion();
      // How far this worker trails the cluster's fastest checkpointer — the
      // quantity Vmax fast-forward exists to bound (§5.2).
      Metrics().vmax_lag->Set(vmax > cur ? static_cast<int64_t>(vmax - cur)
                                         : 0);
      if (vmax + 1 > target) target = vmax + 1;  // catch up to the cluster
    }
  }
  if (target <= cur) {
    version_latch_.UnlockExclusive();
    return Status::OK();  // someone already advanced past the target
  }
  const WorldLine wl = world_line_.load(std::memory_order_acquire);
  Version token = kInvalidVersion;
  Status s = state_object_->PerformCheckpoint(
      target, [this, wl](Version t) { OnCheckpointPersistent(wl, t); },
      &token, hints);
  version_latch_.UnlockExclusive();
  return s;
}

void DprWorker::OnCheckpointPersistent(WorldLine world_line, Version token) {
  Metrics().checkpoints->Add();
  // The report covers every version in (last_reported, token]; fold their
  // dependency sets together (versions are cumulative prefixes).
  DependencySet deps = deps_.DrainUpTo(token);
  Version reported = last_reported_.load(std::memory_order_relaxed);
  while (token > reported && !last_reported_.compare_exchange_weak(
                                 reported, token, std::memory_order_release)) {
  }
  Status s = options_.finder->ReportPersistedVersion(
      world_line, WorkerVersion{options_.worker_id, token}, deps);
  if (!s.ok() && !s.IsAborted()) {
    DPR_WARN("worker %u report v%llu: %s", options_.worker_id,
             static_cast<unsigned long long>(token), s.ToString().c_str());
    // The report never reached the tracking plane, and the drained set was
    // the only record of what (last_reported, token] depends on. Re-stage it
    // at `token` so the next successful report folds it back in — dropping
    // it here lets a later report advance the cut past `token` without its
    // dependencies, breaking dependency closure (P2). Skipped when a
    // rollback intervened (Aborted above, or the world-line check here):
    // the tracker was cleared and these deps describe an erased world-line.
    if (!deps.empty() &&
        world_line_.load(std::memory_order_acquire) == world_line) {
      deps_.Record(/*session_id=*/0, token, deps, options_.worker_id);
    }
  }
  RefreshPersistedWatermark();
}

void DprWorker::RefreshPersistedWatermark() {
  const Version safe = options_.finder->SafeVersion(options_.worker_id);
  Version cur = persisted_watermark_.load(std::memory_order_relaxed);
  while (safe > cur && !persisted_watermark_.compare_exchange_weak(
                           cur, safe, std::memory_order_release)) {
  }
}

Status DprWorker::Rollback(WorldLine new_world_line, Version safe_version) {
  return RollbackInternal(new_world_line, safe_version, /*crash=*/false);
}

Status DprWorker::CrashAndRestore(WorldLine new_world_line,
                                  Version safe_version) {
  return RollbackInternal(new_world_line, safe_version, /*crash=*/true);
}

Status DprWorker::RollbackInternal(WorldLine new_world_line,
                                   Version safe_version, bool crash) {
  Metrics().rollbacks->Add();
  in_recovery_.store(true, std::memory_order_release);
  // Quiesce in-flight batches before touching store state: a simulated
  // crash drops the volatile log, which no concurrently-executing batch may
  // still be reading.
  version_latch_.LockExclusive();
  if (crash) state_object_->SimulateCrash();
  Version restored = kInvalidVersion;
  Status s = state_object_->RestoreCheckpoint(safe_version, &restored);
  if (s.ok()) {
    // Tracked dependencies belong to the rolled-back world-line.
    deps_.Clear();
    last_reported_.store(restored, std::memory_order_release);
    world_line_.store(new_world_line, std::memory_order_release);
  }
  version_latch_.UnlockExclusive();
  in_recovery_.store(false, std::memory_order_release);
  RefreshPersistedWatermark();
  return s;
}

}  // namespace dpr
