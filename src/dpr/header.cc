#include "dpr/header.h"

#include "common/coding.h"

namespace dpr {

void DprRequestHeader::EncodeTo(std::string* dst) const {
  PutFixed64(dst, session_id);
  PutFixed64(dst, world_line);
  PutFixed64(dst, version);
  PutFixed32(dst, static_cast<uint32_t>(deps.size()));
  for (const auto& [w, v] : deps) {
    PutFixed32(dst, w);
    PutFixed64(dst, v);
  }
}

bool DprRequestHeader::DecodeFrom(Slice input, size_t* consumed) {
  Decoder dec(input);
  uint32_t n;
  if (!dec.GetFixed64(&session_id) || !dec.GetFixed64(&world_line) ||
      !dec.GetFixed64(&version) || !dec.GetFixed32(&n)) {
    return false;
  }
  if (n > dec.remaining() / 12) return false;  // 12 wire bytes per dep
  deps.clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t w;
    uint64_t v;
    if (!dec.GetFixed32(&w) || !dec.GetFixed64(&v)) return false;
    deps[w] = v;
  }
  if (consumed != nullptr) *consumed = input.size() - dec.remaining();
  return true;
}

void DprResponseHeader::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(status));
  PutFixed64(dst, world_line);
  PutFixed64(dst, executed_version);
  PutFixed64(dst, persisted_version);
}

bool DprResponseHeader::DecodeFrom(Slice input, size_t* consumed) {
  Decoder dec(input);
  uint8_t status_byte;
  if (!dec.GetBytes(&status_byte, 1) || !dec.GetFixed64(&world_line) ||
      !dec.GetFixed64(&executed_version) ||
      !dec.GetFixed64(&persisted_version)) {
    return false;
  }
  status = static_cast<BatchStatus>(status_byte);
  if (consumed != nullptr) *consumed = input.size() - dec.remaining();
  return true;
}

}  // namespace dpr
