#ifndef DPR_DPR_WORKER_H_
#define DPR_DPR_WORKER_H_

#include <atomic>
#include <functional>
#include <thread>

#include "ckpt/cadence.h"
#include "common/latch.h"
#include "common/status.h"
#include "common/sync.h"
#include "dpr/dep_tracker.h"
#include "dpr/finder.h"
#include "dpr/header.h"
#include "dpr/state_object.h"
#include "dpr/types.h"

namespace dpr {

struct DprWorkerOptions {
  WorkerId worker_id = kInvalidWorker;
  DprFinder* finder = nullptr;
  /// Period of the background commit timer; 0 disables it (manual TryCommit
  /// only, as tests prefer).
  uint64_t checkpoint_interval_us = 100000;
  /// Enable Vmax fast-forwarding (§3.4): each timer tick targets at least the
  /// global max persisted version so a lagging worker catches up.
  bool vmax_fast_forward = true;
  /// Lock stripes in the per-version dependency tracker (rounded up to a
  /// power of two); sessions hash to stripes, so admission of concurrent
  /// batches from different sessions never contends on one lock.
  uint32_t dep_tracker_shards = VersionDependencyTracker::kDefaultShards;
  /// Checkpoint cadence policy (src/ckpt/). Zero-valued intervals derive
  /// from checkpoint_interval_us, which stays the RPO ceiling; set
  /// adaptive=false for the historical fixed-interval full fold-overs.
  CkptPolicy ckpt_policy;
  /// Signal sampler polled before every cadence decision (dirty bytes,
  /// exception-list occupancy, fsync queue depth). Unset: the controller
  /// assumes the store is always dirty — no idle skips, cadence at the RPO
  /// ceiling — so signal-less workers keep checkpointing unconditionally.
  std::function<CkptSignals()> ckpt_signals;
};

/// Server-side libDPR (paper §6): wraps any StateObject with the DPR
/// protocol. Request batches pass through BeginBatch()/EndBatch(), which
///  * validate the client's world-line against the worker's,
///  * fast-forward the worker's version when the client has seen a larger
///    one (the progress guarantee of §3.2),
///  * merge the batch's dependency set into the version it executes in, and
///  * hold the shared version latch so an entire batch lands in one version
///    (checkpoints take it exclusively, briefly, to draw the boundary).
/// A background timer triggers Commit() periodically; persistence callbacks
/// report (version, deps) to the DprFinder off the critical path.
///
/// Dependency bookkeeping is sharded (VersionDependencyTracker): BeginBatch
/// records into a lock-striped structure keyed by session hash and takes no
/// process-global mutex; the stripes are merged only when a checkpoint
/// persists and the folded set is reported to the finder.
class DprWorker {
 public:
  DprWorker(StateObject* state_object, const DprWorkerOptions& options);
  ~DprWorker();

  DprWorker(const DprWorker&) = delete;
  DprWorker& operator=(const DprWorker&) = delete;

  /// Registers with the finder and starts the commit timer (if configured).
  Status Start();
  void Stop();

  /// Admission control for one request batch. On OK, `*out_version` is the
  /// version every operation of the batch executes in, and the caller must
  /// execute the batch and then call EndBatch(). Failure modes:
  ///  * Aborted   — client world-line is stale; respond kWorldLineShift.
  ///  * Transient — worker mid-recovery or behind the client's world-line;
  ///                respond kRetryLater.
  Status BeginBatch(const DprRequestHeader& header, Version* out_version);
  void EndBatch();

  /// Fills a response header for a batch that executed in `executed_version`
  /// (or for a rejection, using the status mapped from BeginBatch()).
  void FillResponse(Version executed_version,
                    DprResponseHeader::BatchStatus status,
                    DprResponseHeader* resp) const;

  /// Triggers a commit now. target 0 means current+1 (with Vmax
  /// fast-forward when enabled). Returns Busy if the store is already
  /// checkpointing; that is benign (the timer will retry). `hints` are
  /// forwarded to the store (see CheckpointHints); the default asks for
  /// the store's legacy full fold-over.
  Status TryCommit(Version target_version = 0,
                   const CheckpointHints& hints = CheckpointHints{});

  /// Rolls the store back to `safe_version` on world-line `new_world_line`
  /// (invoked by the cluster manager during recovery, §4).
  Status Rollback(WorldLine new_world_line, Version safe_version);

  /// Marks this worker as failed-and-restarted: volatile state is dropped,
  /// then the store is restored like any other rollback.
  Status CrashAndRestore(WorldLine new_world_line, Version safe_version);

  WorkerId id() const { return options_.worker_id; }
  StateObject* state_object() { return state_object_; }
  WorldLine world_line() const {
    return world_line_.load(std::memory_order_acquire);
  }
  /// This worker's committed watermark (refreshed from the finder by the
  /// timer thread; piggybacked on every response).
  Version persisted_watermark() const {
    return persisted_watermark_.load(std::memory_order_acquire);
  }
  void RefreshPersistedWatermark();

  /// Largest token reported to the finder on the current world-line.
  Version last_reported() const {
    return last_reported_.load(std::memory_order_acquire);
  }
  /// Counters from the sharded dependency tracker.
  DepTrackerStats dep_tracker_stats() const { return deps_.stats(); }

 private:
  void TimerLoop();
  Status RollbackInternal(WorldLine new_world_line, Version safe_version,
                          bool crash);
  void OnCheckpointPersistent(WorldLine world_line, Version token);

  StateObject* state_object_;
  DprWorkerOptions options_;

  /// Batches hold this shared for their whole execution (BeginBatch →
  /// EndBatch, same thread); checkpoints and rollbacks take it exclusively.
  /// Ranked above every store/finder lock acquired underneath it.
  SharedSpinLatch version_latch_{LockRank::kWorkerVersionLatch,
                                 "worker.version_latch"};
  /// Recovery state read on every batch admission. release on store /
  /// acquire on load: a batch that observes the new world line (or the
  /// recovery flag) must also observe the rollback it announces.
  std::atomic<uint64_t> world_line_{kInitialWorldLine};
  std::atomic<uint64_t> persisted_watermark_{kInvalidVersion};
  std::atomic<bool> in_recovery_{false};

  /// Dependency sets accumulated per (uncommitted) version, striped by
  /// session; merged only at checkpoint-persist time.
  VersionDependencyTracker deps_;
  /// Largest token already reported to the finder. Relaxed load + release
  /// CAS max-merge: the value is advisory dedup state; the report payload
  /// itself rides the RPC, not this cell.
  std::atomic<uint64_t> last_reported_{kInvalidVersion};

  /// Commit-timer thread, woken early by Stop() so shutdown does not wait
  /// out a full checkpoint interval.
  std::thread timer_;
  Mutex timer_mu_{LockRank::kWorkerTimer, "worker.timer"};
  CondVar timer_cv_;
  /// relaxed-set under timer_mu_, acquire-checked by the timer predicate;
  /// the CondVar wakeup is the actual handoff.
  std::atomic<bool> stop_{true};
};

}  // namespace dpr

#endif  // DPR_DPR_WORKER_H_
