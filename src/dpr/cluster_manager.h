#ifndef DPR_DPR_CLUSTER_MANAGER_H_
#define DPR_DPR_CLUSTER_MANAGER_H_

#include <functional>
#include <map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "dpr/finder.h"
#include "dpr/types.h"
#include "dpr/worker.h"

namespace dpr {

/// The external failure-handling entity the paper assumes (§4.1, a stand-in
/// for Kubernetes / Service Fabric): detects (or, here, is told about)
/// failures, restarts failed workers from their last checkpoint, and
/// orchestrates the cluster-wide rollback to the last DPR cut — halting DPR
/// progress, instructing every worker to roll back, and resuming progress
/// once all report completion.
class ClusterManager {
 public:
  explicit ClusterManager(DprFinder* finder) : finder_(finder) {}

  void RegisterWorker(DprWorker* worker);
  void UnregisterWorker(WorkerId worker_id);

  /// Processes one failure event: workers in `failed` crash-and-restore
  /// (losing volatile state), all others roll back to the recovery cut.
  /// Serialized internally; a failure arriving mid-recovery is handled as a
  /// second failure-and-recovery sequence, exactly as in the paper's nested
  /// failure experiment (Fig. 16).
  Status HandleFailure(const std::vector<WorkerId>& failed);

  /// Latest world-line and the cut it recovered to; sessions use this to
  /// compute surviving prefixes.
  void GetRecoveryInfo(WorldLine* world_line, DprCut* cut) const;

  /// Recovery cut of a specific world-line (sessions that lag several
  /// failures behind resolve against their next world-line's cut).
  bool GetRecoveryCut(WorldLine world_line, DprCut* cut) const;

  /// Registers a callback fired (with the new world-line) after every
  /// completed recovery sequence. The cluster plane hooks this to abort
  /// in-flight migrations promptly instead of waiting for their world-line
  /// fence. Runs on the recovering thread with recovery_mu_ held but no
  /// other lock; the listener may take anything ranked below it.
  void SetRecoveryListener(std::function<void(WorldLine)> listener);

 private:
  DprFinder* finder_;
  mutable Mutex mu_{LockRank::kClusterMembers, "cluster.members"};
  std::map<WorkerId, DprWorker*> workers_ GUARDED_BY(mu_);
  std::map<WorldLine, DprCut> recovery_cuts_ GUARDED_BY(mu_);
  std::function<void(WorldLine)> recovery_listener_ GUARDED_BY(mu_);
  // Serializes HandleFailure. Ranked above every other lock in the system:
  // recovery holds it across worker rollbacks, which descend through the
  // worker version latch into store and finder locks.
  Mutex recovery_mu_{LockRank::kClusterRecovery, "cluster.recovery"};
};

}  // namespace dpr

#endif  // DPR_DPR_CLUSTER_MANAGER_H_
