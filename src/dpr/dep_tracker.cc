#include "dpr/dep_tracker.h"

#include <utility>

#include "obs/metrics.h"

namespace dpr {

namespace {

uint32_t RoundUpPow2(uint32_t n) {
  if (n < 2) return 1;
  uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Process-wide mirrors of the per-instance stats (summed across trackers),
// so bench artifacts and chaos dumps see the tracking plane without plumbing
// instance pointers. Relaxed atomics only — Record() runs under the shared
// version latch on the batch admission path.
struct TrackerMetrics {
  Counter* records;
  Counter* empty_records;
  Counter* drains;
  Gauge* live_entries;
  Gauge* live_entries_peak;
};

const TrackerMetrics& Metrics() {
  static const TrackerMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return TrackerMetrics{r.counter("dpr.dep_tracker.records"),
                          r.counter("dpr.dep_tracker.empty_records"),
                          r.counter("dpr.dep_tracker.drains"),
                          r.gauge("dpr.dep_tracker.live_entries"),
                          r.gauge("dpr.dep_tracker.live_entries_peak")};
  }();
  return m;
}

}  // namespace

VersionDependencyTracker::VersionDependencyTracker(uint32_t shards) {
  const uint32_t count = RoundUpPow2(shards == 0 ? kDefaultShards : shards);
  shard_mask_ = count - 1;
  shards_ = std::make_unique<Shard[]>(count);
}

void VersionDependencyTracker::Record(uint64_t session_id, Version version,
                                      const DependencySet& deps,
                                      WorkerId self) {
  // Fast path: a batch with no cross-worker dependencies records nothing
  // (self-deps are implied by the version chain) and takes no lock.
  bool any = false;
  for (const auto& [dw, dv] : deps) {
    (void)dv;
    if (dw != self) {
      any = true;
      break;
    }
  }
  if (!any) {
    empty_records_.fetch_add(1, std::memory_order_relaxed);
    Metrics().empty_records->Add();
    return;
  }
  Shard& shard = shards_[ShardOf(session_id)];
  {
    SpinLatchGuard guard(shard.latch);
    auto [it, inserted] = shard.deps.try_emplace(version);
    if (inserted) {
      live_entries_.fetch_add(1, std::memory_order_relaxed);
      Gauge* live = Metrics().live_entries;
      live->Add(1);
      Metrics().live_entries_peak->UpdateMax(live->value());
    }
    for (const auto& [dw, dv] : deps) {
      if (dw == self) continue;
      MergeDependency(&it->second, WorkerVersion{dw, dv});
    }
  }
  records_.fetch_add(1, std::memory_order_relaxed);
  Metrics().records->Add();
}

DependencySet VersionDependencyTracker::DrainUpTo(Version token) {
  DependencySet merged;
  const uint32_t count = shard_mask_ + 1;
  for (uint32_t i = 0; i < count; ++i) {
    Shard& shard = shards_[i];
    SpinLatchGuard guard(shard.latch);
    auto it = shard.deps.begin();
    int64_t removed = 0;
    while (it != shard.deps.end() && it->first <= token) {
      MergeDependencies(&merged, it->second);
      it = shard.deps.erase(it);
      ++removed;
    }
    if (removed != 0) {
      live_entries_.fetch_sub(removed, std::memory_order_relaxed);
      Metrics().live_entries->Sub(removed);
    }
  }
  drains_.fetch_add(1, std::memory_order_relaxed);
  Metrics().drains->Add();
  return merged;
}

void VersionDependencyTracker::Clear() {
  const uint32_t count = shard_mask_ + 1;
  for (uint32_t i = 0; i < count; ++i) {
    Shard& shard = shards_[i];
    SpinLatchGuard guard(shard.latch);
    const int64_t removed = static_cast<int64_t>(shard.deps.size());
    shard.deps.clear();
    if (removed != 0) {
      live_entries_.fetch_sub(removed, std::memory_order_relaxed);
      Metrics().live_entries->Sub(removed);
    }
  }
}

DepTrackerStats VersionDependencyTracker::stats() const {
  DepTrackerStats s;
  s.records = records_.load(std::memory_order_relaxed);
  s.empty_records = empty_records_.load(std::memory_order_relaxed);
  s.drains = drains_.load(std::memory_order_relaxed);
  const int64_t live = live_entries_.load(std::memory_order_relaxed);
  s.live_entries = live > 0 ? static_cast<uint64_t>(live) : 0;
  s.shards = shard_mask_ + 1;
  return s;
}

}  // namespace dpr
