#ifndef DPR_DPR_DEP_TRACKER_H_
#define DPR_DPR_DEP_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>

#include "common/hash.h"
#include "common/latch.h"
#include "dpr/types.h"

namespace dpr {

/// Counters exported through harness/stats (all monotonically increasing
/// except `live_entries`, a point-in-time gauge).
struct DepTrackerStats {
  uint64_t records = 0;        // Record() calls that carried cross-worker deps
  uint64_t empty_records = 0;  // Record() calls with nothing to merge (no lock)
  uint64_t drains = 0;         // DrainUpTo() calls
  uint64_t live_entries = 0;   // (version -> deps) entries currently staged
  uint32_t shards = 0;
};

/// Lock-striped accumulator of per-version dependency sets, the worker-side
/// ingest half of the DPR tracking plane (paper §3.3: tracking must stay off
/// the critical path).
///
/// Request batches call Record() concurrently under the worker's *shared*
/// version latch; striping by client-session hash means two sessions only
/// contend when they hash to the same shard, so there is no process-global
/// mutex on the batch admission path. Batches that carry no cross-worker
/// dependencies (the common case for single-shard sessions) touch no lock at
/// all. The per-version sets are merged across shards only at
/// checkpoint-persist time (DrainUpTo), which runs on the persistence
/// callback thread — already off the critical path.
class VersionDependencyTracker {
 public:
  static constexpr uint32_t kDefaultShards = 16;

  explicit VersionDependencyTracker(uint32_t shards = kDefaultShards);

  VersionDependencyTracker(const VersionDependencyTracker&) = delete;
  VersionDependencyTracker& operator=(const VersionDependencyTracker&) =
      delete;

  /// Merges `deps` (ignoring entries on `self`, which are implicit) into the
  /// dependency set accumulated for `version`. Striped by `session_id`.
  void Record(uint64_t session_id, Version version, const DependencySet& deps,
              WorkerId self);

  /// Folds together and removes every recorded set with version <= `token`
  /// across all shards — the checkpoint-persist-time merge. The returned set
  /// covers all versions the checkpoint physically contains.
  DependencySet DrainUpTo(Version token);

  /// Discards everything (rollback: uncommitted dependency state is void).
  void Clear();

  DepTrackerStats stats() const;

 private:
  // Padded to a cache line so shard latches never false-share.
  struct alignas(64) Shard {
    SpinLatch latch{LockRank::kDepTracker, "dep_tracker.shard"};
    std::map<Version, DependencySet> deps GUARDED_BY(latch);
  };

  uint32_t ShardOf(uint64_t session_id) const {
    return static_cast<uint32_t>(Mix64(session_id)) & shard_mask_;
  }

  uint32_t shard_mask_;  // shard count rounded up to a power of two, minus 1
  std::unique_ptr<Shard[]> shards_;
  // relaxed: monotonic stat counters for obs export only; the dependency
  // data itself is fenced by the per-shard latches above.
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> empty_records_{0};
  std::atomic<uint64_t> drains_{0};
  std::atomic<int64_t> live_entries_{0};
};

}  // namespace dpr

#endif  // DPR_DPR_DEP_TRACKER_H_
