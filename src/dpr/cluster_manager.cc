#include "dpr/cluster_manager.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "fault/fault_plane.h"

namespace dpr {

namespace {

/// Retry a finder recovery RPC while it fails with a retryable code. The
/// finder may sit behind a flaky transport (RemoteDprFinder) or shed load
/// under an injected error burst; giving up mid-recovery would leave the
/// finder wedged in_recovery with no one to complete the sequence, so this
/// rides out bounded bursts before surfacing the error.
constexpr int kRecoveryRpcAttempts = 64;
constexpr uint64_t kRecoveryBackoffInitialUs = 100;
constexpr uint64_t kRecoveryBackoffMaxUs = 5000;

template <typename Fn>
Status RetryRecoveryRpc(Fn&& fn) {
  uint64_t backoff = kRecoveryBackoffInitialUs;
  Status s;
  for (int attempt = 0; attempt < kRecoveryRpcAttempts; ++attempt) {
    s = fn();
    if (s.ok() || !s.IsRetryable()) return s;
    SleepMicros(backoff);
    backoff = std::min(backoff * 2, kRecoveryBackoffMaxUs);
  }
  return s;
}

}  // namespace

void ClusterManager::RegisterWorker(DprWorker* worker) {
  MutexLock guard(mu_);
  workers_[worker->id()] = worker;
}

void ClusterManager::UnregisterWorker(WorkerId worker_id) {
  MutexLock guard(mu_);
  workers_.erase(worker_id);
}

void ClusterManager::SetRecoveryListener(
    std::function<void(WorldLine)> listener) {
  MutexLock guard(mu_);
  recovery_listener_ = std::move(listener);
}

Status ClusterManager::HandleFailure(const std::vector<WorkerId>& failed) {
  // Serialize whole recovery sequences; a nested failure waits here and then
  // runs as its own world-line shift.
  MutexLock recovery_guard(recovery_mu_);

  WorldLine new_world_line;
  DprCut recovery_cut;
  DPR_RETURN_NOT_OK(RetryRecoveryRpc(
      [&] { return finder_->BeginRecovery(&new_world_line, &recovery_cut); }));
  {
    MutexLock guard(mu_);
    recovery_cuts_[new_world_line] = recovery_cut;
  }

  // Snapshot the worker set so rollback RPCs run without holding mu_.
  std::vector<DprWorker*> workers;
  {
    MutexLock guard(mu_);
    workers.reserve(workers_.size());
    for (auto& [id, w] : workers_) workers.push_back(w);
  }

  Status result = Status::OK();
  for (DprWorker* worker : workers) {
    const Version safe = CutVersion(recovery_cut, worker->id());
    bool crashed = std::find(failed.begin(), failed.end(), worker->id()) !=
                   failed.end();
    // Injected escalation: a survivor dies mid-recovery (e.g. the rollback
    // races a power loss). Crash-and-restore is strictly stronger than a
    // rollback — the cut contains only durably-reported versions — so the
    // recovery sequence absorbs the escalation without a new world-line.
    if (!crashed && FaultPlane::Instance().ShouldFire(
                        faults::kClusterRollbackCrash, worker->id())) {
      crashed = true;
    }
    Status s = crashed ? worker->CrashAndRestore(new_world_line, safe)
                       : worker->Rollback(new_world_line, safe);
    if (!s.ok()) {
      DPR_ERROR("worker %u rollback to v%llu failed: %s", worker->id(),
                static_cast<unsigned long long>(safe), s.ToString().c_str());
      result = s;
    }
  }

  DPR_RETURN_NOT_OK(RetryRecoveryRpc([&] { return finder_->EndRecovery(); }));

  // Recovery is complete: tell the cluster plane so in-flight migrations
  // abort now instead of at their world-line fence. Copy the listener out so
  // it runs without mu_ (it may call back into metadata / workers).
  std::function<void(WorldLine)> listener;
  {
    MutexLock guard(mu_);
    listener = recovery_listener_;
  }
  // dprlint: allowed(callback-lock) recovery_mu_ is the recovery-epoch
  // serializer, not a data lock; the listener contract is non-blocking
  // (migration abort flags), and running it inside the epoch keeps "recovery
  // finished" and "migrations told" one atomic event for the next failure.
  if (listener) listener(new_world_line);
  return result;
}

void ClusterManager::GetRecoveryInfo(WorldLine* world_line,
                                     DprCut* cut) const {
  MutexLock guard(mu_);
  if (recovery_cuts_.empty()) {
    if (world_line != nullptr) *world_line = kInitialWorldLine;
    if (cut != nullptr) cut->clear();
    return;
  }
  auto it = recovery_cuts_.rbegin();
  if (world_line != nullptr) *world_line = it->first;
  if (cut != nullptr) *cut = it->second;
}

bool ClusterManager::GetRecoveryCut(WorldLine world_line, DprCut* cut) const {
  MutexLock guard(mu_);
  auto it = recovery_cuts_.find(world_line);
  if (it == recovery_cuts_.end()) return false;
  if (cut != nullptr) *cut = it->second;
  return true;
}

}  // namespace dpr
