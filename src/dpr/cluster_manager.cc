#include "dpr/cluster_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace dpr {

void ClusterManager::RegisterWorker(DprWorker* worker) {
  std::lock_guard<std::mutex> guard(mu_);
  workers_[worker->id()] = worker;
}

void ClusterManager::UnregisterWorker(WorkerId worker_id) {
  std::lock_guard<std::mutex> guard(mu_);
  workers_.erase(worker_id);
}

Status ClusterManager::HandleFailure(const std::vector<WorkerId>& failed) {
  // Serialize whole recovery sequences; a nested failure waits here and then
  // runs as its own world-line shift.
  std::lock_guard<std::mutex> recovery_guard(recovery_mu_);

  WorldLine new_world_line;
  DprCut recovery_cut;
  DPR_RETURN_NOT_OK(finder_->BeginRecovery(&new_world_line, &recovery_cut));
  {
    std::lock_guard<std::mutex> guard(mu_);
    recovery_cuts_[new_world_line] = recovery_cut;
  }

  // Snapshot the worker set so rollback RPCs run without holding mu_.
  std::vector<DprWorker*> workers;
  {
    std::lock_guard<std::mutex> guard(mu_);
    workers.reserve(workers_.size());
    for (auto& [id, w] : workers_) workers.push_back(w);
  }

  Status result = Status::OK();
  for (DprWorker* worker : workers) {
    const Version safe = CutVersion(recovery_cut, worker->id());
    const bool crashed = std::find(failed.begin(), failed.end(),
                                   worker->id()) != failed.end();
    Status s = crashed ? worker->CrashAndRestore(new_world_line, safe)
                       : worker->Rollback(new_world_line, safe);
    if (!s.ok()) {
      DPR_ERROR("worker %u rollback to v%llu failed: %s", worker->id(),
                static_cast<unsigned long long>(safe), s.ToString().c_str());
      result = s;
    }
  }

  DPR_RETURN_NOT_OK(finder_->EndRecovery());
  return result;
}

void ClusterManager::GetRecoveryInfo(WorldLine* world_line,
                                     DprCut* cut) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (recovery_cuts_.empty()) {
    if (world_line != nullptr) *world_line = kInitialWorldLine;
    if (cut != nullptr) cut->clear();
    return;
  }
  auto it = recovery_cuts_.rbegin();
  if (world_line != nullptr) *world_line = it->first;
  if (cut != nullptr) *cut = it->second;
}

bool ClusterManager::GetRecoveryCut(WorldLine world_line, DprCut* cut) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = recovery_cuts_.find(world_line);
  if (it == recovery_cuts_.end()) return false;
  if (cut != nullptr) *cut = it->second;
  return true;
}

}  // namespace dpr
