#ifndef DPR_DPR_FINDER_SERVICE_H_
#define DPR_DPR_FINDER_SERVICE_H_

#include <memory>

#include "dpr/finder.h"
#include "net/rpc.h"

namespace dpr {

/// Exposes a DprFinder over RPC so workers in other processes participate in
/// DPR tracking — the deployment shape of the paper's evaluation (shards are
/// separate machines; here, separate processes on one box over TCP).
///
/// Wire format: [u8 method][method-specific payload]; responses are
/// [u8 status-code][payload]. Small and synchronous: every call is off the
/// workers' critical path by construction (reports happen at checkpoint
/// completion, cut reads on a timer).
class DprFinderServer {
 public:
  DprFinderServer(DprFinder* finder, std::unique_ptr<RpcServer> server);
  ~DprFinderServer();

  Status Start();
  void Stop();
  const std::string& address() const { return address_; }

 private:
  void Handle(Slice request, std::string* response);

  DprFinder* finder_;
  std::unique_ptr<RpcServer> server_;
  std::string address_;
};

/// Client-side stub: a DprFinder implementation backed by a connection to a
/// DprFinderServer. Cut reads are cached briefly (watermarks are published
/// lazily anyway), everything else is a synchronous RPC.
class RemoteDprFinder : public DprFinder {
 public:
  explicit RemoteDprFinder(std::unique_ptr<RpcConnection> conn);

  Status AddWorker(WorkerId worker, Version start_version) override;
  Status RemoveWorker(WorkerId worker) override;
  Status ReportPersistedVersion(WorldLine world_line, WorkerVersion wv,
                                const DependencySet& deps) override;
  Status ComputeCut() override;
  void GetCut(WorldLine* world_line, DprCut* cut) const override;
  Version MaxPersistedVersion() const override;
  WorldLine CurrentWorldLine() const override;
  Status BeginRecovery(WorldLine* new_world_line, DprCut* cut) override;
  Status EndRecovery() override;

 private:
  Status Call(uint8_t method, Slice payload, std::string* response) const;

  std::unique_ptr<RpcConnection> conn_;
};

}  // namespace dpr

#endif  // DPR_DPR_FINDER_SERVICE_H_
