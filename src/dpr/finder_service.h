#ifndef DPR_DPR_FINDER_SERVICE_H_
#define DPR_DPR_FINDER_SERVICE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <thread>

#include "common/sync.h"
#include "dpr/finder.h"
#include "net/rpc.h"

namespace dpr {

/// Exposes a DprFinder over RPC so workers in other processes participate in
/// DPR tracking — the deployment shape of the paper's evaluation (shards are
/// separate machines; here, separate processes on one box over TCP).
///
/// Wire format: [u8 method][method-specific payload]; responses are
/// [u8 status-code][payload]. Reports arrive batched (kReportBatch) and
/// cut/world-line/Vmax reads are served as one combined snapshot (kSnapshot),
/// so a loaded cluster costs the finder a handful of RPCs per flush interval
/// rather than one per checkpoint.
class DprFinderServer {
 public:
  DprFinderServer(DprFinder* finder, std::unique_ptr<RpcServer> server);
  ~DprFinderServer();

  Status Start();
  void Stop();
  const std::string& address() const { return address_; }

 private:
  void Handle(Slice request, std::string* response);

  DprFinder* finder_;
  std::unique_ptr<RpcServer> server_;
  std::string address_;
};

struct RemoteDprFinderOptions {
  /// Background flush cadence; a flush also fires as soon as
  /// `max_batch_size` reports are pending.
  uint64_t flush_interval_us = 2'000;
  /// Reports per kReportBatch RPC.
  size_t max_batch_size = 256;
  /// How long SafeVersion() may serve from the cached snapshot before
  /// refreshing it. Watermarks are published lazily anyway (paper §4.2), so
  /// staleness here only delays commit acknowledgement, never correctness.
  uint64_t snapshot_ttl_us = 2'000;
  /// Transport-error handling: a failed batch send is retried with bounded
  /// exponential backoff; the batch is never dropped (reports re-queue at
  /// the front on exhaustion).
  int max_send_attempts = 8;
  uint64_t retry_backoff_us = 200;
  uint64_t retry_backoff_max_us = 50'000;
};

/// Observability counters for the client-side report path.
struct RemoteFinderStats {
  uint64_t reports_enqueued = 0;   // ReportPersistedVersion calls accepted
  uint64_t reports_stale = 0;      // rejected client-side: world-line mismatch
  uint64_t batches_sent = 0;       // successful kReportBatch RPCs
  uint64_t reports_sent = 0;       // reports carried by those batches
  uint64_t reports_rejected = 0;   // rejected server-side (stale at arrival)
  uint64_t send_retries = 0;       // transport errors retried
  uint64_t snapshot_refreshes = 0; // kSnapshot RPCs issued
  uint64_t pending_depth = 0;      // reports queued, not yet flushed (gauge)

  double ReportsPerBatch() const {
    return batches_sent == 0
               ? 0.0
               : static_cast<double>(reports_sent) / batches_sent;
  }
};

/// Client-side stub: a DprFinder implementation backed by a connection to a
/// DprFinderServer.
///
/// Reports are asynchronous: ReportPersistedVersion validates the world-line
/// against the cached snapshot, enqueues the report, and returns; a
/// background flusher drains the queue in kReportBatch RPCs with
/// retry/backoff on transport errors. Reads (GetCut, MaxPersistedVersion,
/// CurrentWorldLine) flush pending reports and refresh the snapshot first,
/// so read-after-report behaves exactly like the local finder; SafeVersion
/// is the fast path and serves from the snapshot within its TTL. Control
/// operations (AddWorker, recovery) are synchronous RPCs preceded by a
/// flush.
class RemoteDprFinder : public DprFinder {
 public:
  explicit RemoteDprFinder(std::unique_ptr<RpcConnection> conn,
                           RemoteDprFinderOptions options = {});
  ~RemoteDprFinder() override;

  Status AddWorker(WorkerId worker, Version start_version) override;
  Status RemoveWorker(WorkerId worker) override;
  Status ReportPersistedVersion(WorldLine world_line, WorkerVersion wv,
                                const DependencySet& deps) override;
  Status ComputeCut() override;
  void GetCut(WorldLine* world_line, DprCut* cut) const override;
  Version MaxPersistedVersion() const override;
  WorldLine CurrentWorldLine() const override;
  Version SafeVersion(WorkerId worker) const override;
  Status BeginRecovery(WorldLine* new_world_line, DprCut* cut) override;
  Status EndRecovery() override;

  /// Synchronously drains the pending-report queue (retrying transport
  /// errors). Called internally before every read/control RPC; public so
  /// tests and shutdown paths can force the queue empty.
  Status Flush();

  RemoteFinderStats stats() const;

 private:
  struct PendingReport {
    WorldLine world_line;
    WorkerVersion wv;
    DependencySet deps;
  };

  struct Snapshot {
    WorldLine world_line = kInitialWorldLine;
    DprCut cut;
    Version vmax = kInvalidVersion;
    uint64_t fetched_us = 0;  // 0 = never fetched / invalidated
  };

  Status Call(uint8_t method, Slice payload, std::string* response) const;
  /// Sends one encoded batch, retrying transport errors and retryable
  /// server-side codes with backoff. Returns the server's status (OK even
  /// when some reports were rejected as stale — those are counted, not
  /// errors) or Transient after exhausting attempts.
  Status SendBatch(const std::vector<PendingReport>& batch) const;
  /// Drains the queue under flush_mu_; on failure re-queues the unsent batch
  /// at the front so no report is lost.
  Status FlushPending() const;
  /// Re-fetches the snapshot (kSnapshot RPC) if `force` or the TTL expired.
  Status RefreshSnapshot(bool force) const;
  void InvalidateSnapshot() const;
  void FlusherLoop();

  std::unique_ptr<RpcConnection> conn_;
  const RemoteDprFinderOptions options_;

  /// Pending-report queue (append under queue_mu_, drained by flushes).
  mutable Mutex queue_mu_{LockRank::kFinderQueue, "finder.remote.queue"};
  mutable CondVar queue_cv_;
  mutable std::deque<PendingReport> pending_ GUARDED_BY(queue_mu_);
  bool stop_ GUARDED_BY(queue_mu_) = false;

  /// Serializes batch sending so the background flusher and explicit
  /// Flush() calls cannot reorder or double-send reports. Ranked above
  /// queue_mu_: FlushPending holds it while popping/re-queuing batches.
  mutable Mutex flush_mu_{LockRank::kFinderFlush, "finder.remote.flush"};

  /// Leaf lock (never held while calling anything that locks).
  mutable Mutex snap_mu_{LockRank::kFinderSnapshot, "finder.remote.snap"};
  mutable Snapshot snapshot_ GUARDED_BY(snap_mu_);

  /// relaxed: monotonic stat counters for obs export only; queue contents
  /// are fenced by queue_mu_.
  mutable std::atomic<uint64_t> reports_enqueued_{0};
  mutable std::atomic<uint64_t> reports_stale_{0};
  mutable std::atomic<uint64_t> batches_sent_{0};
  mutable std::atomic<uint64_t> reports_sent_{0};
  mutable std::atomic<uint64_t> reports_rejected_{0};
  mutable std::atomic<uint64_t> send_retries_{0};
  mutable std::atomic<uint64_t> snapshot_refreshes_{0};

  std::thread flusher_;
};

}  // namespace dpr

#endif  // DPR_DPR_FINDER_SERVICE_H_
