#include "dpr/finder_service.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/coding.h"
#include "common/logging.h"
#include "fault/fault_plane.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

// Retry causes are split by status taxonomy so a chaos run can tell "the
// coordinator was slow" (timeouts) from "the link was flapping" (transient).
struct RemoteMetrics {
  Counter* batches_sent;
  Counter* reports_sent;
  Counter* reports_rejected;
  Counter* retries_timeout;
  Counter* retries_transient;
  Counter* retries_other;
  Counter* batches_abandoned;
  Gauge* pending_depth;
};

const RemoteMetrics& Metrics() {
  static const RemoteMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return RemoteMetrics{r.counter("dpr.remote.batches_sent"),
                         r.counter("dpr.remote.reports_sent"),
                         r.counter("dpr.remote.reports_rejected"),
                         r.counter("dpr.remote.retries_timeout"),
                         r.counter("dpr.remote.retries_transient"),
                         r.counter("dpr.remote.retries_other"),
                         r.counter("dpr.remote.batches_abandoned"),
                         r.gauge("dpr.remote.pending_depth")};
  }();
  return m;
}

enum Method : uint8_t {
  kAddWorker = 1,
  kRemoveWorker = 2,
  kReport = 3,
  kComputeCut = 4,
  kGetCut = 5,
  kMaxPersisted = 6,
  kWorldLine = 7,
  kBeginRecovery = 8,
  kEndRecovery = 9,
  kReportBatch = 10,
  kSnapshot = 11,
};

void EncodeCut(std::string* dst, const DprCut& cut) {
  PutFixed32(dst, static_cast<uint32_t>(cut.size()));
  for (const auto& [w, v] : cut) {
    PutFixed32(dst, w);
    PutFixed64(dst, v);
  }
}

bool DecodeCut(Decoder* dec, DprCut* cut) {
  uint32_t n;
  if (!dec->GetFixed32(&n)) return false;
  if (n > dec->remaining() / 12) return false;
  cut->clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t w;
    uint64_t v;
    if (!dec->GetFixed32(&w) || !dec->GetFixed64(&v)) return false;
    (*cut)[w] = v;
  }
  return true;
}

}  // namespace

// ------------------------------------------------------------ server side

DprFinderServer::DprFinderServer(DprFinder* finder,
                                 std::unique_ptr<RpcServer> server)
    : finder_(finder), server_(std::move(server)) {}

DprFinderServer::~DprFinderServer() { Stop(); }

Status DprFinderServer::Start() {
  DPR_RETURN_NOT_OK(server_->Start(
      [this](Slice request, std::string* response) {
        Handle(request, response);
      }));
  address_ = server_->address();
  return Status::OK();
}

void DprFinderServer::Stop() {
  if (server_ != nullptr) server_->Stop();
}

void DprFinderServer::Handle(Slice request, std::string* response) {
  // Injected RPC error burst: the request reaches the service but fails
  // before dispatch, as if an overloaded coordinator shed it. Clients see a
  // retryable code, exercising every caller's retry policy.
  if (FaultPlane::Instance().ShouldFire(faults::kFinderRpcError)) {
    response->push_back(static_cast<char>(Status::Code::kTransient));
    return;
  }
  Decoder dec(Slice(request.data() + 1, request.size() - 1));
  uint8_t method = request.empty() ? 0 : static_cast<uint8_t>(request.data()[0]);
  Status status;
  std::string payload;
  switch (method) {
    case kAddWorker: {
      uint32_t w;
      uint64_t start;
      if (dec.GetFixed32(&w) && dec.GetFixed64(&start)) {
        status = finder_->AddWorker(w, start);
      } else {
        status = Status::InvalidArgument("bad AddWorker");
      }
      break;
    }
    case kRemoveWorker: {
      uint32_t w;
      status = dec.GetFixed32(&w) ? finder_->RemoveWorker(w)
                                  : Status::InvalidArgument("bad Remove");
      break;
    }
    case kReport: {
      uint64_t wl;
      uint32_t w;
      uint64_t v;
      DprCut deps;
      if (dec.GetFixed64(&wl) && dec.GetFixed32(&w) && dec.GetFixed64(&v) &&
          DecodeCut(&dec, &deps)) {
        status = finder_->ReportPersistedVersion(wl, WorkerVersion{w, v},
                                                 deps);
      } else {
        status = Status::InvalidArgument("bad Report");
      }
      break;
    }
    case kReportBatch: {
      // [u64 world_line][u32 count] count × ([u32 w][u64 v][deps]).
      // Response payload: [u32 processed][u32 rejected]. Stale reports are
      // rejected individually (counted), not an error for the batch.
      uint64_t wl;
      uint32_t count;
      if (!dec.GetFixed64(&wl) || !dec.GetFixed32(&count)) {
        status = Status::InvalidArgument("bad ReportBatch");
        break;
      }
      uint32_t processed = 0;
      uint32_t rejected = 0;
      for (uint32_t i = 0; i < count && status.ok(); ++i) {
        uint32_t w;
        uint64_t v;
        DprCut deps;
        if (!dec.GetFixed32(&w) || !dec.GetFixed64(&v) ||
            !DecodeCut(&dec, &deps)) {
          status = Status::InvalidArgument("bad ReportBatch entry");
          break;
        }
        Status r =
            finder_->ReportPersistedVersion(wl, WorkerVersion{w, v}, deps);
        if (r.ok()) {
          ++processed;
        } else if (r.IsAborted()) {
          ++rejected;
        } else {
          status = r;
        }
      }
      PutFixed32(&payload, processed);
      PutFixed32(&payload, rejected);
      break;
    }
    case kComputeCut:
      status = finder_->ComputeCut();
      break;
    case kGetCut: {
      WorldLine wl;
      DprCut cut;
      finder_->GetCut(&wl, &cut);
      PutFixed64(&payload, wl);
      EncodeCut(&payload, cut);
      break;
    }
    case kMaxPersisted:
      PutFixed64(&payload, finder_->MaxPersistedVersion());
      break;
    case kWorldLine:
      PutFixed64(&payload, finder_->CurrentWorldLine());
      break;
    case kSnapshot: {
      // World-line, cut, and Vmax in one round trip; clients cache this.
      WorldLine wl;
      DprCut cut;
      finder_->GetCut(&wl, &cut);
      PutFixed64(&payload, wl);
      EncodeCut(&payload, cut);
      PutFixed64(&payload, finder_->MaxPersistedVersion());
      break;
    }
    case kBeginRecovery: {
      WorldLine wl;
      DprCut cut;
      status = finder_->BeginRecovery(&wl, &cut);
      if (status.ok()) {
        PutFixed64(&payload, wl);
        EncodeCut(&payload, cut);
      }
      break;
    }
    case kEndRecovery:
      status = finder_->EndRecovery();
      break;
    default:
      status = Status::InvalidArgument("unknown finder method");
  }
  response->push_back(static_cast<char>(status.code()));
  response->append(payload);
}

// ------------------------------------------------------------ client side

RemoteDprFinder::RemoteDprFinder(std::unique_ptr<RpcConnection> conn,
                                 RemoteDprFinderOptions options)
    : conn_(std::move(conn)), options_(options) {
  flusher_ = std::thread([this] { FlusherLoop(); });
}

RemoteDprFinder::~RemoteDprFinder() {
  {
    MutexLock guard(queue_mu_);
    stop_ = true;
  }
  queue_cv_.NotifyAll();
  if (flusher_.joinable()) flusher_.join();
}

Status RemoteDprFinder::Call(uint8_t method, Slice payload,
                             std::string* response) const {
  std::string request(1, static_cast<char>(method));
  request.append(payload.data(), payload.size());
  std::string raw;
  DPR_RETURN_NOT_OK(conn_->Call(request, &raw));
  if (raw.empty()) return Status::Corruption("empty finder response");
  const auto code = static_cast<Status::Code>(raw[0]);
  if (code != Status::Code::kOk) return Status(code, "finder error");
  if (response != nullptr) response->assign(raw.data() + 1, raw.size() - 1);
  return Status::OK();
}

Status RemoteDprFinder::SendBatch(
    const std::vector<PendingReport>& batch) const {
  std::string request(1, static_cast<char>(kReportBatch));
  PutFixed64(&request, batch.front().world_line);
  PutFixed32(&request, static_cast<uint32_t>(batch.size()));
  for (const PendingReport& r : batch) {
    PutFixed32(&request, r.wv.worker);
    PutFixed64(&request, r.wv.version);
    EncodeCut(&request, r.deps);
  }
  // Transport errors are retried with bounded exponential backoff.
  // Re-sending is safe: reports are idempotent upserts server-side, so a
  // batch whose response was lost can be applied twice without harm.
  uint64_t backoff = options_.retry_backoff_us;
  Status last = Status::OK();
  const int attempts = std::max(1, options_.max_send_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      send_retries_.fetch_add(1, std::memory_order_relaxed);
      if (last.IsTimedOut()) {
        Metrics().retries_timeout->Add();
      } else if (last.IsTransient()) {
        Metrics().retries_transient->Add();
      } else {
        Metrics().retries_other->Add();
      }
      SleepMicros(backoff);
      backoff = std::min(backoff * 2, options_.retry_backoff_max_us);
    }
    std::string raw;
    last = conn_->Call(request, &raw);
    if (!last.ok()) continue;  // transport error: retry
    if (raw.empty()) return Status::Corruption("empty finder response");
    const auto code = static_cast<Status::Code>(raw[0]);
    if (code != Status::Code::kOk) {
      last = Status(code, "finder error");
      // A retryable server-side code (busy/overloaded coordinator) rides
      // the same backoff loop as a transport error; anything else is a
      // semantic rejection that retrying will not fix.
      if (last.IsRetryable()) continue;
      return last;
    }
    Decoder dec(Slice(raw.data() + 1, raw.size() - 1));
    uint32_t processed = 0;
    uint32_t rejected = 0;
    if (!dec.GetFixed32(&processed) || !dec.GetFixed32(&rejected)) {
      return Status::Corruption("bad ReportBatch response");
    }
    batches_sent_.fetch_add(1, std::memory_order_relaxed);
    reports_sent_.fetch_add(batch.size(), std::memory_order_relaxed);
    reports_rejected_.fetch_add(rejected, std::memory_order_relaxed);
    Metrics().batches_sent->Add();
    Metrics().reports_sent->Add(batch.size());
    Metrics().reports_rejected->Add(rejected);
    return Status::OK();
  }
  Metrics().batches_abandoned->Add();
  return Status::Transient("finder report batch not delivered: " +
                           last.ToString());
}

Status RemoteDprFinder::FlushPending() const {
  MutexLock flush_guard(flush_mu_);
  bool sent_any = false;
  Status result = Status::OK();
  while (true) {
    std::vector<PendingReport> batch;
    {
      MutexLock guard(queue_mu_);
      if (pending_.empty()) break;
      // One batch carries one world-line (reports spanning a recovery are
      // split; the stale half gets rejected server-side).
      const WorldLine wl = pending_.front().world_line;
      while (!pending_.empty() && batch.size() < options_.max_batch_size &&
             pending_.front().world_line == wl) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
    }
    Status s = SendBatch(batch);
    if (!s.ok()) {
      // Undelivered: re-queue at the front, preserving report order. No
      // WorkerVersion is ever dropped on a transport failure.
      MutexLock guard(queue_mu_);
      for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
        pending_.push_front(std::move(*it));
      }
      result = s;
      break;
    }
    sent_any = true;
  }
  {
    MutexLock guard(queue_mu_);
    Metrics().pending_depth->Set(static_cast<int64_t>(pending_.size()));
  }
  // Anything the server just ingested may move Vmax/cut; drop the cached
  // snapshot so the next read observes our own reports.
  if (sent_any) InvalidateSnapshot();
  return result;
}

Status RemoteDprFinder::Flush() { return FlushPending(); }

Status RemoteDprFinder::RefreshSnapshot(bool force) const {
  MutexLock guard(snap_mu_);
  const uint64_t now = NowMicros();
  if (!force && snapshot_.fetched_us != 0 &&
      now - snapshot_.fetched_us < options_.snapshot_ttl_us) {
    return Status::OK();
  }
  std::string payload;
  DPR_RETURN_NOT_OK(Call(kSnapshot, Slice(), &payload));
  Decoder dec(payload);
  uint64_t wl;
  DprCut cut;
  uint64_t vmax;
  if (!dec.GetFixed64(&wl) || !DecodeCut(&dec, &cut) ||
      !dec.GetFixed64(&vmax)) {
    return Status::Corruption("bad Snapshot response");
  }
  snapshot_.world_line = wl;
  snapshot_.cut = std::move(cut);
  snapshot_.vmax = vmax;
  snapshot_.fetched_us = NowMicros();
  snapshot_refreshes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void RemoteDprFinder::InvalidateSnapshot() const {
  MutexLock guard(snap_mu_);
  snapshot_.fetched_us = 0;
}

void RemoteDprFinder::FlusherLoop() {
  while (true) {
    bool stopping;
    {
      MutexLock lock(queue_mu_);
      queue_cv_.WaitFor(
          queue_mu_, std::chrono::microseconds(options_.flush_interval_us),
          [this]() REQUIRES(queue_mu_) {
            return stop_ || pending_.size() >= options_.max_batch_size;
          });
      stopping = stop_;
    }
    // On persistent transport failure FlushPending leaves the batch queued
    // and we come back around — the wait above doubles as pacing.
    Status s = FlushPending();
    if (!s.ok() && !stopping) {
      DPR_WARN("finder report flush: %s", s.ToString().c_str());
    }
    if (stopping) return;  // final drain done
  }
}

Status RemoteDprFinder::AddWorker(WorkerId worker, Version start_version) {
  DPR_RETURN_NOT_OK(FlushPending());
  std::string payload;
  PutFixed32(&payload, worker);
  PutFixed64(&payload, start_version);
  DPR_RETURN_NOT_OK(Call(kAddWorker, payload, nullptr));
  InvalidateSnapshot();
  return Status::OK();
}

Status RemoteDprFinder::RemoveWorker(WorkerId worker) {
  DPR_RETURN_NOT_OK(FlushPending());
  std::string payload;
  PutFixed32(&payload, worker);
  DPR_RETURN_NOT_OK(Call(kRemoveWorker, payload, nullptr));
  InvalidateSnapshot();
  return Status::OK();
}

Status RemoteDprFinder::ReportPersistedVersion(WorldLine world_line,
                                               WorkerVersion wv,
                                               const DependencySet& deps) {
  // Validate the world-line client-side against the cached snapshot so a
  // stale reporter learns synchronously, like with a local finder. A report
  // from a world-line the snapshot has not caught up to forces one refresh
  // before the verdict.
  Status s = RefreshSnapshot(/*force=*/false);
  WorldLine known;
  {
    MutexLock guard(snap_mu_);
    known = snapshot_.world_line;
  }
  if (world_line != known || !s.ok()) {
    DPR_RETURN_NOT_OK(RefreshSnapshot(/*force=*/true));
    MutexLock guard(snap_mu_);
    if (world_line != snapshot_.world_line) {
      reports_stale_.fetch_add(1, std::memory_order_relaxed);
      return Status::Aborted("report from stale world-line");
    }
  }
  size_t depth;
  {
    MutexLock guard(queue_mu_);
    pending_.push_back(PendingReport{world_line, wv, deps});
    depth = pending_.size();
  }
  reports_enqueued_.fetch_add(1, std::memory_order_relaxed);
  Metrics().pending_depth->Set(static_cast<int64_t>(depth));
  // The timer flushes small queues; a full batch is worth waking the
  // flusher for immediately.
  if (depth >= options_.max_batch_size) queue_cv_.NotifyOne();
  return Status::OK();
}

Status RemoteDprFinder::ComputeCut() {
  DPR_RETURN_NOT_OK(FlushPending());
  DPR_RETURN_NOT_OK(Call(kComputeCut, Slice(), nullptr));
  InvalidateSnapshot();
  return Status::OK();
}

void RemoteDprFinder::GetCut(WorldLine* world_line, DprCut* cut) const {
  if (!FlushPending().ok() || !RefreshSnapshot(/*force=*/false).ok()) {
    if (cut != nullptr) cut->clear();
    return;
  }
  MutexLock guard(snap_mu_);
  if (world_line != nullptr) *world_line = snapshot_.world_line;
  if (cut != nullptr) *cut = snapshot_.cut;
}

Version RemoteDprFinder::MaxPersistedVersion() const {
  if (!FlushPending().ok() || !RefreshSnapshot(/*force=*/false).ok()) {
    return kInvalidVersion;
  }
  MutexLock guard(snap_mu_);
  return snapshot_.vmax;
}

WorldLine RemoteDprFinder::CurrentWorldLine() const {
  if (!RefreshSnapshot(/*force=*/true).ok()) return kInitialWorldLine;
  MutexLock guard(snap_mu_);
  return snapshot_.world_line;
}

Version RemoteDprFinder::SafeVersion(WorkerId worker) const {
  // The fast path: no flush, snapshot served within its TTL. Watermarks lag
  // reality anyway; a slightly stale cut only delays commit acks.
  (void)RefreshSnapshot(/*force=*/false);
  MutexLock guard(snap_mu_);
  return CutVersion(snapshot_.cut, worker);
}

Status RemoteDprFinder::BeginRecovery(WorldLine* new_world_line,
                                      DprCut* cut) {
  // Best-effort flush: anything still queued is from the failing world-line
  // and is about to be lost to the rollback regardless.
  (void)FlushPending();
  std::string payload;
  DPR_RETURN_NOT_OK(Call(kBeginRecovery, Slice(), &payload));
  Decoder dec(payload);
  uint64_t wl;
  DprCut parsed;
  if (!dec.GetFixed64(&wl) || !DecodeCut(&dec, &parsed)) {
    return Status::Corruption("bad BeginRecovery response");
  }
  {
    // Pending reports all predate the new world-line: drop them instead of
    // shipping them to certain rejection.
    MutexLock guard(queue_mu_);
    pending_.clear();
  }
  {
    MutexLock guard(snap_mu_);
    snapshot_.world_line = wl;
    snapshot_.cut = parsed;
    snapshot_.vmax = kInvalidVersion;
    snapshot_.fetched_us = 0;  // force a refresh before the next read
  }
  if (new_world_line != nullptr) *new_world_line = wl;
  if (cut != nullptr) *cut = std::move(parsed);
  return Status::OK();
}

Status RemoteDprFinder::EndRecovery() {
  return Call(kEndRecovery, Slice(), nullptr);
}

RemoteFinderStats RemoteDprFinder::stats() const {
  RemoteFinderStats s;
  s.reports_enqueued = reports_enqueued_.load(std::memory_order_relaxed);
  s.reports_stale = reports_stale_.load(std::memory_order_relaxed);
  s.batches_sent = batches_sent_.load(std::memory_order_relaxed);
  s.reports_sent = reports_sent_.load(std::memory_order_relaxed);
  s.reports_rejected = reports_rejected_.load(std::memory_order_relaxed);
  s.send_retries = send_retries_.load(std::memory_order_relaxed);
  s.snapshot_refreshes = snapshot_refreshes_.load(std::memory_order_relaxed);
  {
    MutexLock guard(queue_mu_);
    s.pending_depth = pending_.size();
  }
  return s;
}

}  // namespace dpr
