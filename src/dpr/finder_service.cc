#include "dpr/finder_service.h"

#include <utility>

#include "common/coding.h"
#include "common/logging.h"

namespace dpr {

namespace {

enum Method : uint8_t {
  kAddWorker = 1,
  kRemoveWorker = 2,
  kReport = 3,
  kComputeCut = 4,
  kGetCut = 5,
  kMaxPersisted = 6,
  kWorldLine = 7,
  kBeginRecovery = 8,
  kEndRecovery = 9,
};

void EncodeCut(std::string* dst, const DprCut& cut) {
  PutFixed32(dst, static_cast<uint32_t>(cut.size()));
  for (const auto& [w, v] : cut) {
    PutFixed32(dst, w);
    PutFixed64(dst, v);
  }
}

bool DecodeCut(Decoder* dec, DprCut* cut) {
  uint32_t n;
  if (!dec->GetFixed32(&n)) return false;
  if (n > dec->remaining() / 12) return false;
  cut->clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t w;
    uint64_t v;
    if (!dec->GetFixed32(&w) || !dec->GetFixed64(&v)) return false;
    (*cut)[w] = v;
  }
  return true;
}

}  // namespace

// ------------------------------------------------------------ server side

DprFinderServer::DprFinderServer(DprFinder* finder,
                                 std::unique_ptr<RpcServer> server)
    : finder_(finder), server_(std::move(server)) {}

DprFinderServer::~DprFinderServer() { Stop(); }

Status DprFinderServer::Start() {
  DPR_RETURN_NOT_OK(server_->Start(
      [this](Slice request, std::string* response) {
        Handle(request, response);
      }));
  address_ = server_->address();
  return Status::OK();
}

void DprFinderServer::Stop() {
  if (server_ != nullptr) server_->Stop();
}

void DprFinderServer::Handle(Slice request, std::string* response) {
  Decoder dec(Slice(request.data() + 1, request.size() - 1));
  uint8_t method = request.empty() ? 0 : static_cast<uint8_t>(request.data()[0]);
  Status status;
  std::string payload;
  switch (method) {
    case kAddWorker: {
      uint32_t w;
      uint64_t start;
      if (dec.GetFixed32(&w) && dec.GetFixed64(&start)) {
        status = finder_->AddWorker(w, start);
      } else {
        status = Status::InvalidArgument("bad AddWorker");
      }
      break;
    }
    case kRemoveWorker: {
      uint32_t w;
      status = dec.GetFixed32(&w) ? finder_->RemoveWorker(w)
                                  : Status::InvalidArgument("bad Remove");
      break;
    }
    case kReport: {
      uint64_t wl;
      uint32_t w;
      uint64_t v;
      DprCut deps;
      if (dec.GetFixed64(&wl) && dec.GetFixed32(&w) && dec.GetFixed64(&v) &&
          DecodeCut(&dec, &deps)) {
        status = finder_->ReportPersistedVersion(wl, WorkerVersion{w, v},
                                                 deps);
      } else {
        status = Status::InvalidArgument("bad Report");
      }
      break;
    }
    case kComputeCut:
      status = finder_->ComputeCut();
      break;
    case kGetCut: {
      WorldLine wl;
      DprCut cut;
      finder_->GetCut(&wl, &cut);
      PutFixed64(&payload, wl);
      EncodeCut(&payload, cut);
      break;
    }
    case kMaxPersisted:
      PutFixed64(&payload, finder_->MaxPersistedVersion());
      break;
    case kWorldLine:
      PutFixed64(&payload, finder_->CurrentWorldLine());
      break;
    case kBeginRecovery: {
      WorldLine wl;
      DprCut cut;
      status = finder_->BeginRecovery(&wl, &cut);
      if (status.ok()) {
        PutFixed64(&payload, wl);
        EncodeCut(&payload, cut);
      }
      break;
    }
    case kEndRecovery:
      status = finder_->EndRecovery();
      break;
    default:
      status = Status::InvalidArgument("unknown finder method");
  }
  response->push_back(static_cast<char>(status.code()));
  response->append(payload);
}

// ------------------------------------------------------------ client side

RemoteDprFinder::RemoteDprFinder(std::unique_ptr<RpcConnection> conn)
    : conn_(std::move(conn)) {}

Status RemoteDprFinder::Call(uint8_t method, Slice payload,
                             std::string* response) const {
  std::string request(1, static_cast<char>(method));
  request.append(payload.data(), payload.size());
  std::string raw;
  DPR_RETURN_NOT_OK(conn_->Call(request, &raw));
  if (raw.empty()) return Status::Corruption("empty finder response");
  const auto code = static_cast<Status::Code>(raw[0]);
  if (code != Status::Code::kOk) return Status(code, "finder error");
  if (response != nullptr) response->assign(raw.data() + 1, raw.size() - 1);
  return Status::OK();
}

Status RemoteDprFinder::AddWorker(WorkerId worker, Version start_version) {
  std::string payload;
  PutFixed32(&payload, worker);
  PutFixed64(&payload, start_version);
  return Call(kAddWorker, payload, nullptr);
}

Status RemoteDprFinder::RemoveWorker(WorkerId worker) {
  std::string payload;
  PutFixed32(&payload, worker);
  return Call(kRemoveWorker, payload, nullptr);
}

Status RemoteDprFinder::ReportPersistedVersion(WorldLine world_line,
                                               WorkerVersion wv,
                                               const DependencySet& deps) {
  std::string payload;
  PutFixed64(&payload, world_line);
  PutFixed32(&payload, wv.worker);
  PutFixed64(&payload, wv.version);
  EncodeCut(&payload, deps);
  return Call(kReport, payload, nullptr);
}

Status RemoteDprFinder::ComputeCut() {
  return Call(kComputeCut, Slice(), nullptr);
}

void RemoteDprFinder::GetCut(WorldLine* world_line, DprCut* cut) const {
  std::string payload;
  if (!Call(kGetCut, Slice(), &payload).ok()) {
    if (cut != nullptr) cut->clear();
    return;
  }
  Decoder dec(payload);
  uint64_t wl = kInitialWorldLine;
  DprCut parsed;
  if (dec.GetFixed64(&wl) && DecodeCut(&dec, &parsed)) {
    if (world_line != nullptr) *world_line = wl;
    if (cut != nullptr) *cut = std::move(parsed);
  }
}

Version RemoteDprFinder::MaxPersistedVersion() const {
  std::string payload;
  if (!Call(kMaxPersisted, Slice(), &payload).ok() || payload.size() < 8) {
    return kInvalidVersion;
  }
  return DecodeFixed64(payload.data());
}

WorldLine RemoteDprFinder::CurrentWorldLine() const {
  std::string payload;
  if (!Call(kWorldLine, Slice(), &payload).ok() || payload.size() < 8) {
    return kInitialWorldLine;
  }
  return DecodeFixed64(payload.data());
}

Status RemoteDprFinder::BeginRecovery(WorldLine* new_world_line,
                                      DprCut* cut) {
  std::string payload;
  DPR_RETURN_NOT_OK(Call(kBeginRecovery, Slice(), &payload));
  Decoder dec(payload);
  uint64_t wl;
  DprCut parsed;
  if (!dec.GetFixed64(&wl) || !DecodeCut(&dec, &parsed)) {
    return Status::Corruption("bad BeginRecovery response");
  }
  if (new_world_line != nullptr) *new_world_line = wl;
  if (cut != nullptr) *cut = std::move(parsed);
  return Status::OK();
}

Status RemoteDprFinder::EndRecovery() {
  return Call(kEndRecovery, Slice(), nullptr);
}

}  // namespace dpr
