#ifndef DPR_DPR_SESSION_H_
#define DPR_DPR_SESSION_H_

#include <cstdint>
#include <string>
#include <deque>
#include <vector>

#include "common/sync.h"
#include "dpr/header.h"
#include "dpr/types.h"

namespace dpr {

/// Client-side session policies, swept by chaos schedules.
struct SessionOptions {
  /// Strict CPR/DPR ordering (§5.4): the commit point never passes over an
  /// unresolved PENDING operation, so recovered prefixes have no exception
  /// list (at the cost of blocking commits on stragglers). Default is
  /// relaxed DPR, the FASTER default. Equivalent to exception_list_cap = 0.
  bool strict = false;

  /// Relaxed DPR only: the largest number of unresolved operations the
  /// committed prefix may skip over. Once the scan has skipped this many,
  /// the prefix stops advancing until they resolve — bounding the exception
  /// list the application must reconcile after a failure.
  uint64_t exception_list_cap = ~0ull;

  /// What to do with a response carrying an OLDER world-line than the
  /// session's (a pre-recovery straggler arriving after HandleFailure).
  enum class WorldLinePolicy : uint8_t {
    /// Record the operation vacuously: the rollback already erased any
    /// effect it had, so it must contribute neither dependencies nor
    /// watermark/version-clock advances. This prevents pre-/post-recovery
    /// mixing (§4.2, Fig. 5).
    kReject,
    /// Absorb it as if current — the pre-world-line-check legacy behavior,
    /// kept only so tests can demonstrate the mixing anomaly.
    kTrusting,
  };
  WorldLinePolicy world_line_policy = WorldLinePolicy::kReject;
};

/// Client-side libDPR: tracks one session's SessionOrder, version clock,
/// dependency set, commit watermarks, and world-line (paper §3, §5.4, §6).
///
/// Operations are numbered by *start* order (relaxed DPR). A batch either
/// completes synchronously (RecordBatch) or is issued as PENDING
/// (IssuePending) and resolved later (ResolvePending); unresolved operations
/// below the committed prefix are surfaced in the exception list, exactly as
/// relaxed CPR/DPR prescribes.
///
/// Thread-safety: all methods are internally synchronized so a background
/// completion thread may resolve pendings while the session issues new ops.
class DprSession {
 public:
  explicit DprSession(uint64_t session_id, SessionOptions options = {});

  uint64_t session_id() const { return session_id_; }
  bool strict() const { return options_.strict; }
  const SessionOptions& options() const { return options_; }

  /// Header to attach to the next outgoing batch.
  DprRequestHeader MakeHeader() const;

  /// Records `n` operations that completed synchronously at `worker`;
  /// returns the first seqno. Absorbs the response's commit watermark.
  uint64_t RecordBatch(WorkerId worker, uint64_t n,
                       const DprResponseHeader& resp);

  /// Assigns seqnos to `n` operations issued (start-time order) whose
  /// results are not yet known. Later ops do not depend on them until
  /// ResolvePending.
  uint64_t IssuePending(WorkerId worker, uint64_t n);

  /// Resolves a pending batch previously issued at `start_seqno`.
  void ResolvePending(uint64_t start_seqno, const DprResponseHeader& resp);

  /// Absorbs commit-watermark/world-line info from any response.
  void ObserveWatermark(WorkerId worker, const DprResponseHeader& resp);

  /// Commit status reported to the application.
  struct CommitPoint {
    /// All ops with seqno < prefix_end are committed…
    uint64_t prefix_end = 0;
    /// …except these (pending or not-yet-committed ops the prefix skipped).
    std::vector<uint64_t> excluded;
  };
  CommitPoint GetCommitPoint();

  uint64_t next_seqno() const;

  /// True once any response revealed a newer world-line; the application
  /// must call HandleFailure before issuing more operations.
  bool needs_failure_handling() const;
  WorldLine observed_world_line() const;
  WorldLine world_line() const;

  /// Computes the surviving prefix at the recovery cut, resets in-flight
  /// state, and moves the session onto `new_world_line`. Returned
  /// CommitPoint::excluded lists the *lost* operations below the prefix.
  CommitPoint HandleFailure(WorldLine new_world_line,
                            const DprCut& recovery_cut);

  /// Human-readable dump of internal state (segments, watermarks, clocks)
  /// for diagnostics.
  std::string DebugString() const;

 private:
  struct Segment {
    uint64_t start = 0;
    uint64_t count = 0;
    WorkerId worker = kInvalidWorker;
    Version version = kInvalidVersion;
    bool resolved = false;
    /// Issue time, for the op→commit latency histogram when the committed
    /// prefix passes over this segment.
    uint64_t issued_us = 0;
  };

  CommitPoint ComputePointLocked(const DprCut& committed,
                                 bool drop_committed) REQUIRES(mu_);
  void AbsorbLocked(WorkerId worker, const DprResponseHeader& resp)
      REQUIRES(mu_);
  /// True when `resp` is a pre-recovery straggler the session must not
  /// absorb (world_line_policy == kReject).
  bool IsStaleResponseLocked(const DprResponseHeader& resp) const
      REQUIRES(mu_);

  const uint64_t session_id_;
  const SessionOptions options_;
  mutable Mutex mu_{LockRank::kSession, "dpr.session"};
  uint64_t next_seqno_ GUARDED_BY(mu_) = 0;
  WorldLine world_line_ GUARDED_BY(mu_) = kInitialWorldLine;
  WorldLine observed_world_line_ GUARDED_BY(mu_) = kInitialWorldLine;
  Version version_clock_ GUARDED_BY(mu_) = kInvalidVersion;  // Vs (§3.2)
  DependencySet deps_ GUARDED_BY(mu_);     // uncommitted per-worker max
  DprCut watermarks_ GUARDED_BY(mu_);      // per-worker committed versions
  std::deque<Segment> segments_ GUARDED_BY(mu_);
  uint64_t reported_prefix_ GUARDED_BY(mu_) = 0;  // keeps GetCommitPoint
                                                  // monotone
};

}  // namespace dpr

#endif  // DPR_DPR_SESSION_H_
