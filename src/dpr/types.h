#ifndef DPR_DPR_TYPES_H_
#define DPR_DPR_TYPES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace dpr {

/// Identifies one StateObject shard (the paper's "worker").
using WorkerId = uint32_t;
constexpr WorkerId kInvalidWorker = ~0u;

/// Checkpoint version number. Versions are per-worker and monotone; the DPR
/// version clock (paper §3.2) guarantees no version ever depends on a larger
/// version number, across all workers.
using Version = uint64_t;
constexpr Version kInvalidVersion = 0;  // versions start at 1

/// World-line id (paper §4.2): a viewstamp-like counter incremented on every
/// failure. Requests and state tagged with different world-lines must not
/// interact.
using WorldLine = uint64_t;
constexpr WorldLine kInitialWorldLine = 1;

/// A commit token "A-m": version m of worker A (paper §3, Figure 2).
struct WorkerVersion {
  WorkerId worker = kInvalidWorker;
  Version version = kInvalidVersion;

  friend bool operator==(const WorkerVersion&, const WorkerVersion&) = default;
  friend auto operator<=>(const WorkerVersion&, const WorkerVersion&) = default;
};

/// A DPR-cut (paper Def. 3.1): for every live worker, the largest version
/// number whose effects are guaranteed recoverable. Recovering every worker
/// to its cut entry yields a prefix-consistent global state.
using DprCut = std::map<WorkerId, Version>;

/// Returns the cut entry for `worker`, or kInvalidVersion when absent.
inline Version CutVersion(const DprCut& cut, WorkerId worker) {
  auto it = cut.find(worker);
  return it == cut.end() ? kInvalidVersion : it->second;
}

/// Compact dependency set carried by client requests: for each worker the
/// session has touched, the largest version it operated in. (Tokens capture
/// prefixes, so depending on A-m subsumes depending on A-k for k < m.)
using DependencySet = std::map<WorkerId, Version>;

inline void MergeDependency(DependencySet* deps, WorkerVersion wv) {
  auto [it, inserted] = deps->emplace(wv.worker, wv.version);
  if (!inserted && it->second < wv.version) it->second = wv.version;
}

inline void MergeDependencies(DependencySet* into, const DependencySet& from) {
  for (const auto& [w, v] : from) {
    MergeDependency(into, WorkerVersion{w, v});
  }
}

}  // namespace dpr

#endif  // DPR_DPR_TYPES_H_
