#ifndef DPR_DPR_HEADER_H_
#define DPR_DPR_HEADER_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "dpr/types.h"

namespace dpr {

/// DPR header prepended to every request batch (paper §6, Fig. 9): carries
/// the session's world-line, its version clock Vs, and the compacted
/// dependency set of uncommitted prior operations.
struct DprRequestHeader {
  uint64_t session_id = 0;
  WorldLine world_line = kInitialWorldLine;
  Version version = kInvalidVersion;  // Vs: largest version the session saw
  DependencySet deps;                 // per-worker max uncommitted version

  void EncodeTo(std::string* dst) const;
  bool DecodeFrom(Slice input, size_t* consumed = nullptr);
};

/// Per-batch response header: which version the batch executed in, the
/// worker's world-line, and its committed watermark (the piggybacked commit
/// notification that lets clients learn prefix durability lazily).
struct DprResponseHeader {
  enum class BatchStatus : uint8_t {
    kOk = 0,
    kWorldLineShift = 1,  // worker is on a newer world-line: session must
                          // compute its surviving prefix before continuing
    kRetryLater = 2,      // worker mid-recovery or behind the client's
                          // world-line; client should retry
  };

  BatchStatus status = BatchStatus::kOk;
  WorldLine world_line = kInitialWorldLine;
  Version executed_version = kInvalidVersion;   // version the batch ran in
  Version persisted_version = kInvalidVersion;  // worker's committed watermark

  void EncodeTo(std::string* dst) const;
  bool DecodeFrom(Slice input, size_t* consumed = nullptr);
};

}  // namespace dpr

#endif  // DPR_DPR_HEADER_H_
