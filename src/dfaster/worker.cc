#include "dfaster/worker.h"

#include <utility>

#include "common/clock.h"
#include "common/logging.h"

namespace dpr {

DFasterWorker::DFasterWorker(DFasterWorkerConfig config)
    : config_(std::move(config)),
      owners_(YcsbWorkload::kNumPartitions) {
  for (uint32_t vp = 0; vp < YcsbWorkload::kNumPartitions; ++vp) {
    owners_[vp].store(config_.start_empty
                          ? kInvalidWorker
                          : YcsbWorkload::DefaultOwner(vp,
                                                       config_.num_workers),
                      std::memory_order_relaxed);
  }
  store_ = std::make_unique<FasterStore>(std::move(config_.faster));
  if (config_.mode == RecoverabilityMode::kDpr) {
    config_.dpr.worker_id = config_.id;
    dpr_worker_ = std::make_unique<DprWorker>(store_.get(), config_.dpr);
  }
}

DFasterWorker::~DFasterWorker() { Stop(); }

Status DFasterWorker::Start(std::unique_ptr<RpcServer> server) {
  stop_.store(false, std::memory_order_release);
  if (dpr_worker_ != nullptr) {
    DPR_RETURN_NOT_OK(dpr_worker_->Start());
  } else if (config_.mode == RecoverabilityMode::kEventual &&
             config_.dpr.checkpoint_interval_us > 0) {
    eventual_timer_ = std::thread([this] { EventualTimerLoop(); });
  }
  if (config_.compaction_threshold_bytes > 0 && dpr_worker_ != nullptr) {
    gc_thread_ = std::thread([this] { GcLoop(); });
  }
  if (server != nullptr) {
    server_ = std::move(server);
    DPR_RETURN_NOT_OK(server_->Start(
        [this](Slice request, std::string* response) {
          ExecuteBatch(request, response);
        }));
    address_ = server_->address();
  }
  return Status::OK();
}

void DFasterWorker::Stop() {
  if (stop_.exchange(true)) return;
  if (server_ != nullptr) server_->Stop();
  if (dpr_worker_ != nullptr) dpr_worker_->Stop();
  if (eventual_timer_.joinable()) eventual_timer_.join();
  if (gc_thread_.joinable()) gc_thread_.join();
  store_->WaitForCheckpoints();
}

void DFasterWorker::EventualTimerLoop() {
  // "No DPR": checkpoint on a local timer without coordination or reporting.
  while (!stop_.load(std::memory_order_acquire)) {
    SleepMicros(config_.dpr.checkpoint_interval_us);
    if (stop_.load(std::memory_order_acquire)) break;
    Version token;
    Status s = store_->PerformCheckpoint(store_->CurrentVersion() + 1,
                                         nullptr, &token);
    if (!s.ok() && !s.IsBusy()) {
      DPR_WARN("eventual checkpoint: %s", s.ToString().c_str());
    }
  }
}

void DFasterWorker::GcLoop() {
  // Two-phase GC driven by the DPR watermark: start a compaction when the
  // reclaimable prefix exceeds the threshold; finish it once the committed
  // cut covers the compaction checkpoint (only entries inside the DPR
  // guarantee are ever dropped).
  while (!stop_.load(std::memory_order_acquire)) {
    SleepMicros(config_.dpr.checkpoint_interval_us + 1000);
    if (stop_.load(std::memory_order_acquire)) break;
    const Version watermark = dpr_worker_->persisted_watermark();
    if (pending_compaction_ != kInvalidVersion) {
      Status s = store_->FinishCompaction(pending_compaction_, watermark);
      if (s.ok() || s.IsNotFound()) pending_compaction_ = kInvalidVersion;
      continue;
    }
    if (watermark == kInvalidVersion) continue;
    const uint64_t reclaimable =
        store_->read_only_address() - store_->begin_address();
    if (reclaimable < config_.compaction_threshold_bytes) continue;
    Version token;
    Status s = store_->StartCompaction(watermark, &token);
    if (s.ok()) {
      pending_compaction_ = token;
    } else if (!s.IsNotFound() && !s.IsBusy() &&
               s.code() != Status::Code::kInvalidArgument) {
      DPR_WARN("worker %u compaction: %s", config_.id,
               s.ToString().c_str());
    }
  }
}

bool DFasterWorker::OwnsPartition(uint32_t partition) const {
  return owners_[partition].load(std::memory_order_acquire) == config_.id;
}

void DFasterWorker::DisownPartition(uint32_t partition) {
  owners_[partition].store(kInvalidWorker, std::memory_order_release);
}

void DFasterWorker::AdoptPartition(uint32_t partition) {
  owners_[partition].store(config_.id, std::memory_order_release);
}

uint32_t DFasterWorker::OwnedPartitionCount() const {
  uint32_t count = 0;
  for (uint32_t vp = 0; vp < YcsbWorkload::kNumPartitions; ++vp) {
    if (OwnsPartition(vp)) ++count;
  }
  return count;
}

void DFasterWorker::RunOps(const KvBatchRequest& request, Version /*version*/,
                           KvBatchResponse* response, bool check_ownership) {
  auto session = store_->NewSession();
  response->results.resize(request.ops.size());
  for (size_t i = 0; i < request.ops.size(); ++i) {
    const KvOp& op = request.ops[i];
    KvOpResult& out = response->results[i];
    if (check_ownership &&
        !OwnsPartition(YcsbWorkload::PartitionOf(op.key))) {
      out.result = KvResult::kNotOwner;
      continue;
    }
    Status s;
    switch (op.type) {
      case KvOp::Type::kRead:
        s = session->Read(op.key, &out.value);
        break;
      case KvOp::Type::kUpsert:
        s = session->Upsert(op.key, op.value);
        break;
      case KvOp::Type::kRmw:
        s = session->Rmw(op.key, op.value, &out.value);
        break;
      case KvOp::Type::kDelete:
        s = session->Delete(op.key);
        break;
    }
    if (s.ok()) {
      out.result = KvResult::kOk;
    } else if (s.IsNotFound()) {
      out.result = KvResult::kNotFound;
    } else {
      out.result = KvResult::kError;
    }
  }
}

void DFasterWorker::ExecuteBatch(const KvBatchRequest& request,
                                 KvBatchResponse* response) {
  ExecuteBatchInternal(request, response, /*check_ownership=*/true);
}

Status DFasterWorker::InstallMigratedData(const KvBatchRequest& request,
                                          KvBatchResponse* response) {
  ExecuteBatchInternal(request, response, /*check_ownership=*/false);
  return response->header.status == DprResponseHeader::BatchStatus::kOk
             ? Status::OK()
             : Status::Unavailable("migration batch rejected");
}

void DFasterWorker::ExecuteBatchInternal(const KvBatchRequest& request,
                                         KvBatchResponse* response,
                                         bool check_ownership) {
  if (dpr_worker_ == nullptr) {
    // kNone / kEventual: no admission control, no commit tracking.
    RunOps(request, store_->CurrentVersion(), response, check_ownership);
    response->header.status = DprResponseHeader::BatchStatus::kOk;
    response->header.world_line = kInitialWorldLine;
    response->header.executed_version = store_->CurrentVersion();
    response->header.persisted_version = store_->LargestDurableToken();
    return;
  }
  Version version = kInvalidVersion;
  Status admit = dpr_worker_->BeginBatch(request.header, &version);
  if (!admit.ok()) {
    const auto status = admit.IsAborted()
                            ? DprResponseHeader::BatchStatus::kWorldLineShift
                            : DprResponseHeader::BatchStatus::kRetryLater;
    dpr_worker_->FillResponse(kInvalidVersion, status, &response->header);
    response->results.clear();
    return;
  }
  RunOps(request, version, response, check_ownership);
  dpr_worker_->EndBatch();
  dpr_worker_->FillResponse(version, DprResponseHeader::BatchStatus::kOk,
                            &response->header);
}

void DFasterWorker::ExecuteBatch(Slice request, std::string* response) {
  KvBatchRequest req;
  KvBatchResponse resp;
  if (!req.DecodeFrom(request)) {
    resp.header.status = DprResponseHeader::BatchStatus::kRetryLater;
    resp.EncodeTo(response);
    return;
  }
  ExecuteBatch(req, &resp);
  resp.EncodeTo(response);
}

}  // namespace dpr
